#!/usr/bin/env bash
# Tier-1 verification: configure with warnings-as-errors, build
# everything, run the test suite tier by tier (ctest labels: tier1,
# fuzz, golden).  This is what CI runs; run it locally before pushing.
#
# Usage: scripts/check.sh [build-dir]     (default: build-check)
#        scripts/check.sh --tsan [build-dir]
#        scripts/check.sh --coverage [build-dir]
#
# --tsan (or CHECK_TSAN=1) configures with -DEVAL_TSAN=ON and runs the
# concurrency-sensitive test subset (exec, stats, core, cmp) under
# ThreadSanitizer instead of the full Werror build.
#
# --coverage (or CHECK_COVERAGE=1) configures with -DEVAL_COVERAGE=ON,
# runs the tier1+fuzz tests, and reports line coverage over src/ with
# gcovr, enforcing the ratchet threshold below.  Degrades to a warning
# if gcovr is not installed.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

# Line-coverage ratchet: raise when coverage improves, never lower.
coverage_floor=70

mode="build"
case "${1:-}" in
  --tsan)     mode="tsan";     shift ;;
  --coverage) mode="coverage"; shift ;;
esac
[[ "${CHECK_TSAN:-0}" == "1" ]] && mode="tsan"
[[ "${CHECK_COVERAGE:-0}" == "1" ]] && mode="coverage"

if [[ "$mode" == "tsan" ]]; then
    build_dir="${1:-$repo_root/build-tsan}"
    cmake -B "$build_dir" -S "$repo_root" -DEVAL_TSAN=ON
    cmake --build "$build_dir" -j"$(nproc)"
    # Exercise the parallel layer for real: the determinism test and the
    # stats test both fan out on multi-thread pools.
    EVAL_THREADS=4 ctest --test-dir "$build_dir" --output-on-failure \
        -R 'exec_|stats_|core_|cmp_'
    echo "check.sh: TSan tests passed"
    exit 0
fi

if [[ "$mode" == "coverage" ]]; then
    build_dir="${1:-$repo_root/build-coverage}"
    cmake -B "$build_dir" -S "$repo_root" -DEVAL_COVERAGE=ON
    cmake --build "$build_dir" -j"$(nproc)"
    ctest --test-dir "$build_dir" --output-on-failure -j"$(nproc)" \
        -L 'tier1|fuzz'
    if command -v gcovr >/dev/null 2>&1; then
        gcovr --root "$repo_root" --filter "$repo_root/src/" \
            --exclude-throw-branches \
            --fail-under-line "$coverage_floor" \
            --print-summary "$build_dir"
        echo "check.sh: coverage >= ${coverage_floor}% line floor"
    else
        echo "check.sh: WARNING gcovr not found, skipping coverage report"
    fi
    exit 0
fi

build_dir="${1:-$repo_root/build-check}"

cmake -B "$build_dir" -S "$repo_root" -DEVAL_WERROR=ON
cmake --build "$build_dir" -j"$(nproc)"

# Tier 1 (fast unit/integration) and fuzz first: fail fast before the
# slower golden tier, and keep per-tier timing visible.
ctest --test-dir "$build_dir" --output-on-failure -j"$(nproc)" -L tier1
ctest --test-dir "$build_dir" --output-on-failure -j"$(nproc)" -L fuzz

# Golden tier: bit-stability, paper anchors, differential runs.  Diff
# artifacts land in EVAL_GOLDEN_DIFF_DIR (default: golden-diffs/) on
# mismatch; CI uploads them.
ctest --test-dir "$build_dir" --output-on-failure -L golden

echo "check.sh: all tiers passed"
