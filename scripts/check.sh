#!/usr/bin/env bash
# Tier-1 verification: configure with warnings-as-errors, build
# everything, run the test suite tier by tier (ctest labels: tier1,
# fuzz, golden).  This is what CI runs; run it locally before pushing.
#
# Usage: scripts/check.sh [build-dir]     (default: build-check)
#        scripts/check.sh --tsan [build-dir]
#        scripts/check.sh --asan [build-dir]
#        scripts/check.sh --ubsan [build-dir]
#        scripts/check.sh --lint [build-dir]
#        scripts/check.sh --tidy [build-dir]
#        scripts/check.sh --coverage [build-dir]
#        scripts/check.sh --bench-track [build-dir]
#        scripts/check.sh --perf-smoke [build-dir]
#        scripts/check.sh --obs-smoke [build-dir]
#        scripts/check.sh --shard-smoke [build-dir]
#        scripts/check.sh --prof-smoke [build-dir]
#
# --tsan (or CHECK_TSAN=1) configures with -DEVAL_TSAN=ON and runs the
# concurrency-sensitive test subset (exec, stats, core, cmp, obs)
# under ThreadSanitizer instead of the full Werror build.
#
# --asan / --ubsan (or CHECK_ASAN=1 / CHECK_UBSAN=1) configure with
# -DEVAL_ASAN=ON / -DEVAL_UBSAN=ON and run the tier-1 suite under
# AddressSanitizer(+Leak) / UndefinedBehaviorSanitizer.  Together with
# --tsan these form the sanitizer matrix (TESTING.md "Static analysis
# and sanitizers").
#
# --lint (or CHECK_LINT=1) builds the eval-lint analyzer (tools/lint),
# self-tests it against the fixture corpus (the violating tree MUST
# fail, the clean tree MUST pass, the baseline demo tree MUST fail
# only on its fresh finding), then lints the real tree against the
# layering manifest (tools/lint/layers.toml).  Writes lint-report.json
# and lint.sarif into the build dir; CI uploads the SARIF to code
# scanning and keeps the JSON as a failure artifact.  If
# tools/lint/baseline.txt exists it is applied, so adopting a new pass
# never requires fixing every historical finding at once.
#
# --tidy (or CHECK_TIDY=1) runs clang-tidy over src/ with the curated
# .clang-tidy config, using the build dir's compile_commands.json.
# Degrades to a warning if clang-tidy is not installed.
#
# --coverage (or CHECK_COVERAGE=1) configures with -DEVAL_COVERAGE=ON,
# runs the tier1+fuzz tests, and reports line coverage over src/ with
# gcovr, enforcing the ratchet threshold below.  Degrades to a warning
# if gcovr is not installed.
#
# --bench-track (or CHECK_BENCH_TRACK=1) builds the benches and the
# benchtrack CLI, runs a fast bench set (EVAL_FAST=1) capturing their
# BENCH_JSON footers, ingests them into bench/history/, and emits a
# regression report (bench-report.md / bench-report.json in the build
# dir).  Fails when a gated metric (wall_clock_s) regresses more than
# the noise threshold vs the recent history window.  See TESTING.md
# "Tracking bench regressions".
#
# --perf-smoke (or CHECK_PERF_SMOKE=1) runs a fast bench set twice --
# once with EVAL_PE_TABLE=1 (the bench-default fast-scale tables) and
# once with EVAL_PE_TABLE=0 (exact mode, the golden configuration) --
# and gates each run with benchtrack against its own history
# (bench/history for table mode, bench/history-exact for exact mode;
# the two modes have different cost profiles, so they must never share
# a regression baseline).  See TESTING.md "Perf smoke".
#
# --obs-smoke (or CHECK_OBS_SMOKE=1) is the live-telemetry end-to-end
# check: it runs a fast bench with EVAL_STATUS_OUT set, polls the
# status file through `eval_top --once --json` while the bench runs
# (every readable frame must parse and carry a monotone seq — the
# rename-into-place contract), then asserts the final snapshot is
# marked final with every tracker at 100% and that at least two
# snapshots were published over the run.
#
# --prof-smoke (or CHECK_PROF_SMOKE=1) is the span-profiling
# end-to-end check (DESIGN.md §5j): a fast 2-shard fig13 with tracing
# must leave one merged Perfetto timeline plus a fleet profile.json
# behind; eval_prof tree/flame must render it and a self-compare
# `diff --gate` must exit 0; then a synthetic +20% wall-clock
# regression with one grown span, fed through benchtrack, must trip
# the gate AND render a Blame section naming that span.
#
# --shard-smoke (or CHECK_SHARD_SMOKE=1) is the sharded-campaign
# end-to-end drill: it runs a small 2-shard fig13 with a crash
# injected into shard 0 mid-run (SIGKILL after its first checkpoint,
# before the next -- the harshest torn state), asserts the supervisor
# fails, resumes with --resume, and byte-compares the merged outputs
# against both an uninterrupted 2-shard run and the monolithic
# reference.  Then it runs bench_shard_scaling (EVAL_FAST=1) and
# gates its throughput against bench/history via benchtrack.  See
# TESTING.md "Shard equivalence".

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

# Line-coverage ratchet: raise when coverage improves, never lower.
coverage_floor=70

mode="build"
case "${1:-}" in
  --tsan)     mode="tsan";     shift ;;
  --asan)     mode="asan";     shift ;;
  --ubsan)    mode="ubsan";    shift ;;
  --lint)     mode="lint";     shift ;;
  --tidy)     mode="tidy";     shift ;;
  --coverage) mode="coverage"; shift ;;
  --bench-track) mode="bench-track"; shift ;;
  --perf-smoke) mode="perf-smoke"; shift ;;
  --obs-smoke) mode="obs-smoke"; shift ;;
  --shard-smoke) mode="shard-smoke"; shift ;;
  --prof-smoke) mode="prof-smoke"; shift ;;
esac
[[ "${CHECK_TSAN:-0}" == "1" ]] && mode="tsan"
[[ "${CHECK_ASAN:-0}" == "1" ]] && mode="asan"
[[ "${CHECK_UBSAN:-0}" == "1" ]] && mode="ubsan"
[[ "${CHECK_LINT:-0}" == "1" ]] && mode="lint"
[[ "${CHECK_TIDY:-0}" == "1" ]] && mode="tidy"
[[ "${CHECK_COVERAGE:-0}" == "1" ]] && mode="coverage"
[[ "${CHECK_BENCH_TRACK:-0}" == "1" ]] && mode="bench-track"
[[ "${CHECK_PERF_SMOKE:-0}" == "1" ]] && mode="perf-smoke"
[[ "${CHECK_OBS_SMOKE:-0}" == "1" ]] && mode="obs-smoke"
[[ "${CHECK_SHARD_SMOKE:-0}" == "1" ]] && mode="shard-smoke"
[[ "${CHECK_PROF_SMOKE:-0}" == "1" ]] && mode="prof-smoke"

if [[ "$mode" == "tsan" ]]; then
    build_dir="${1:-$repo_root/build-tsan}"
    cmake -B "$build_dir" -S "$repo_root" -DEVAL_TSAN=ON
    cmake --build "$build_dir" -j"$(nproc)"
    # Exercise the parallel layer for real: the determinism test and the
    # stats test both fan out on multi-thread pools.
    EVAL_THREADS=4 ctest --test-dir "$build_dir" --output-on-failure \
        -R 'exec_|stats_|core_|cmp_|obs_|lint_'
    echo "check.sh: TSan tests passed"
    exit 0
fi

if [[ "$mode" == "asan" || "$mode" == "ubsan" ]]; then
    build_dir="${1:-$repo_root/build-$mode}"
    flag="EVAL_ASAN"
    [[ "$mode" == "ubsan" ]] && flag="EVAL_UBSAN"
    cmake -B "$build_dir" -S "$repo_root" -D${flag}=ON
    cmake --build "$build_dir" -j"$(nproc)"
    # halt_on_error so a leak/UB finding fails the run, not just logs.
    ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
        ctest --test-dir "$build_dir" --output-on-failure -j"$(nproc)" \
            -L tier1
    echo "check.sh: tier-1 tests passed under ${mode}"
    exit 0
fi

if [[ "$mode" == "lint" ]]; then
    build_dir="${1:-$repo_root/build-check}"
    cmake -B "$build_dir" -S "$repo_root"
    cmake --build "$build_dir" -j"$(nproc)" --target eval_lint
    lint_bin="$build_dir/tools/lint/eval_lint"

    # Self-test the gate before trusting it: the violating fixture
    # corpus must fail (exit 1), the clean corpus must pass (exit 0),
    # and the baseline demo tree must fail only on its fresh finding.
    if "$lint_bin" --root "$repo_root/tests/lint/fixtures/violating" \
        > /dev/null; then
        echo "check.sh: ERROR eval-lint passed the violating fixture corpus"
        exit 1
    fi
    "$lint_bin" --root "$repo_root/tests/lint/fixtures/clean" > /dev/null
    baseline_tree="$repo_root/tests/lint/fixtures/baseline"
    if "$lint_bin" --root "$baseline_tree" \
        --baseline "$baseline_tree/baseline.txt" > /dev/null; then
        echo "check.sh: ERROR eval-lint ignored the fresh finding" \
             "in the baseline demo tree"
        exit 1
    fi
    "$lint_bin" --root "$baseline_tree" \
        --baseline "$baseline_tree/baseline-all.txt" > /dev/null

    # The real tree (fixtures excluded: they are violating on purpose).
    # An optional tools/lint/baseline.txt grandfathers historical
    # findings during incremental adoption of a new pass.
    lint_args=(--root "$repo_root"
               --exclude tests/lint/fixtures
               --json "$build_dir/lint-report.json"
               --sarif "$build_dir/lint.sarif")
    if [[ -f "$repo_root/tools/lint/baseline.txt" ]]; then
        lint_args+=(--baseline "$repo_root/tools/lint/baseline.txt")
    fi
    # No explicit paths: a path-scoped run skips the stale-manifest
    # checks (lay-unused-edge), and the merge gate must include them.
    "$lint_bin" "${lint_args[@]}"
    echo "check.sh: eval-lint clean" \
         "(report: $build_dir/lint-report.json, sarif: $build_dir/lint.sarif)"
    exit 0
fi

if [[ "$mode" == "tidy" ]]; then
    build_dir="${1:-$repo_root/build-check}"
    if ! command -v clang-tidy >/dev/null 2>&1; then
        echo "check.sh: WARNING clang-tidy not found, skipping tidy pass"
        exit 0
    fi
    cmake -B "$build_dir" -S "$repo_root" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
    # Headers are covered through the .cc files that include them
    # (HeaderFilterRegex in .clang-tidy).
    mapfile -t tidy_sources < <(find "$repo_root/src" -name '*.cc' | sort)
    clang-tidy -p "$build_dir" --quiet "${tidy_sources[@]}"
    echo "check.sh: clang-tidy clean"
    exit 0
fi

if [[ "$mode" == "coverage" ]]; then
    build_dir="${1:-$repo_root/build-coverage}"
    cmake -B "$build_dir" -S "$repo_root" -DEVAL_COVERAGE=ON
    cmake --build "$build_dir" -j"$(nproc)"
    ctest --test-dir "$build_dir" --output-on-failure -j"$(nproc)" \
        -L 'tier1|fuzz'
    if command -v gcovr >/dev/null 2>&1; then
        gcovr --root "$repo_root" --filter "$repo_root/src/" \
            --exclude-throw-branches \
            --fail-under-line "$coverage_floor" \
            --print-summary "$build_dir"
        echo "check.sh: coverage >= ${coverage_floor}% line floor"
    else
        echo "check.sh: WARNING gcovr not found, skipping coverage report"
    fi
    exit 0
fi

if [[ "$mode" == "bench-track" ]]; then
    build_dir="${1:-$repo_root/build-check}"
    # Fast, representative bench set; override with BENCH_TRACK_SET.
    bench_set=(${BENCH_TRACK_SET:-bench_fig01_vats bench_fig10_frequency \
               bench_area_overhead bench_parallel_scaling})
    history_dir="${BENCH_TRACK_HISTORY:-$repo_root/bench/history}"

    cmake -B "$build_dir" -S "$repo_root"
    build_dir="$(cd "$build_dir" && pwd)" # benches run from a scratch cwd
    cmake --build "$build_dir" -j"$(nproc)" --target benchtrack \
        "${bench_set[@]}"

    # Run each bench in a scratch dir (benches drop manifest.json and
    # telemetry beside themselves) and keep the raw stdout: benchtrack
    # parses the BENCH_JSON footer straight out of it.
    run_dir="$build_dir/bench-track"
    rm -rf "$run_dir" && mkdir -p "$run_dir"
    for bench in "${bench_set[@]}"; do
        echo "check.sh: running $bench"
        (cd "$run_dir" && EVAL_FAST=1 "$build_dir/bench/$bench" \
            > "$bench.stdout")
    done

    "$build_dir/tools/benchtrack/benchtrack" ingest \
        --history "$history_dir" "$run_dir"/*.stdout
    "$build_dir/tools/benchtrack/benchtrack" report \
        --history "$history_dir" \
        --window "${BENCH_TRACK_WINDOW:-5}" \
        --threshold "${BENCH_TRACK_THRESHOLD:-10}" \
        --markdown "$build_dir/bench-report.md" \
        --json "$build_dir/bench-report.json" \
        --gate
    echo "check.sh: bench tracking passed" \
         "(report: $build_dir/bench-report.md)"
    exit 0
fi

if [[ "$mode" == "perf-smoke" ]]; then
    build_dir="${1:-$repo_root/build-check}"
    # Fast kernel-sensitive set; override with PERF_SMOKE_SET.
    bench_set=(${PERF_SMOKE_SET:-bench_inner_loop bench_fig01_vats})

    cmake -B "$build_dir" -S "$repo_root"
    build_dir="$(cd "$build_dir" && pwd)" # benches run from a scratch cwd
    cmake --build "$build_dir" -j"$(nproc)" --target benchtrack \
        "${bench_set[@]}"

    # Two passes: table mode (the bench default) and exact mode (the
    # golden configuration).  Each mode gates against its own history
    # directory -- the exact path is intentionally slower, so sharing a
    # baseline would mask regressions in one mode behind the other.
    for table in 1 0; do
        if [[ "$table" == "1" ]]; then
            label="table"
            history_dir="${BENCH_TRACK_HISTORY:-$repo_root/bench/history}"
        else
            label="exact"
            history_dir="${BENCH_TRACK_HISTORY_EXACT:-$repo_root/bench/history-exact}"
        fi
        run_dir="$build_dir/perf-smoke-$label"
        rm -rf "$run_dir" && mkdir -p "$run_dir"
        for bench in "${bench_set[@]}"; do
            echo "check.sh: running $bench (EVAL_PE_TABLE=$table)"
            (cd "$run_dir" && EVAL_FAST=1 EVAL_PE_TABLE=$table \
                "$build_dir/bench/$bench" > "$bench.stdout")
        done
        "$build_dir/tools/benchtrack/benchtrack" ingest \
            --history "$history_dir" "$run_dir"/*.stdout
        "$build_dir/tools/benchtrack/benchtrack" report \
            --history "$history_dir" \
            --window "${BENCH_TRACK_WINDOW:-5}" \
            --threshold "${BENCH_TRACK_THRESHOLD:-10}" \
            --markdown "$build_dir/perf-report-$label.md" \
            --json "$build_dir/perf-report-$label.json" \
            --gate
        echo "check.sh: perf smoke ($label mode) passed" \
             "(report: $build_dir/perf-report-$label.md)"
    done
    exit 0
fi

if [[ "$mode" == "obs-smoke" ]]; then
    build_dir="${1:-$repo_root/build-check}"
    bench="${OBS_SMOKE_BENCH:-bench_cmp_mixes}"

    cmake -B "$build_dir" -S "$repo_root"
    build_dir="$(cd "$build_dir" && pwd)" # bench runs from a scratch cwd
    cmake --build "$build_dir" -j"$(nproc)" --target "$bench" eval_top

    top_bin="$build_dir/tools/eval_top/eval_top"
    run_dir="$build_dir/obs-smoke"
    rm -rf "$run_dir" && mkdir -p "$run_dir"
    status="$run_dir/status.json"

    (cd "$run_dir" && EVAL_FAST=1 EVAL_MANIFEST= \
        EVAL_STATUS_OUT="$status" EVAL_STATUS_INTERVAL_MS=50 \
        "$build_dir/bench/$bench" > bench.stdout 2>&1) &
    bench_pid=$!

    # Tail the status file through the dashboard while the bench runs.
    # Every readable frame must parse (eval_top exits 0) and carry a
    # seq no lower than the previous one: rename-into-place means a
    # reader never sees a torn or stale-after-fresh document.
    last_seq=0
    observed=0
    while kill -0 "$bench_pid" 2>/dev/null; do
        if [[ -f "$status" ]]; then
            if ! frame="$("$top_bin" --once --json "$status")"; then
                echo "check.sh: ERROR eval_top could not read $status"
                kill "$bench_pid" 2>/dev/null || true
                exit 1
            fi
            seq_now="$(sed -n 's/^ *"seq": \([0-9][0-9]*\),*$/\1/p' \
                       <<< "$frame" | head -n1)"
            if [[ -n "$seq_now" ]]; then
                if (( seq_now < last_seq )); then
                    echo "check.sh: ERROR status seq went backwards" \
                         "($last_seq -> $seq_now)"
                    kill "$bench_pid" 2>/dev/null || true
                    exit 1
                fi
                if (( seq_now > last_seq )); then
                    observed=$((observed + 1))
                fi
                last_seq="$seq_now"
            fi
        fi
        sleep 0.05
    done
    wait "$bench_pid"

    # The exit path publishes one last snapshot: final=true, every
    # tracker complete.  seq counts every published sample, so the
    # ">= 2 snapshots" gate reads it straight off the final frame.
    final_frame="$("$top_bin" --once --json "$status")"
    final_seq="$(sed -n 's/^ *"seq": \([0-9][0-9]*\),*$/\1/p' \
                 <<< "$final_frame" | head -n1)"
    if ! grep -q '"final": true' <<< "$final_frame"; then
        echo "check.sh: ERROR final status snapshot not marked final"
        exit 1
    fi
    if grep '"fraction":' <<< "$final_frame" \
            | grep -qv '"fraction": 1\.0'; then
        echo "check.sh: ERROR a tracker finished below 100%:"
        grep -B3 '"fraction":' <<< "$final_frame"
        exit 1
    fi
    if [[ -z "$final_seq" ]] || (( final_seq < 2 )); then
        echo "check.sh: ERROR only ${final_seq:-0} snapshots published" \
             "(want >= 2: periodic samples plus the final flush)"
        exit 1
    fi
    echo "check.sh: obs smoke passed ($final_seq snapshots published," \
         "$observed distinct frames observed live, status: $status)"
    exit 0
fi

if [[ "$mode" == "prof-smoke" ]]; then
    build_dir="${1:-$repo_root/build-check}"

    cmake -B "$build_dir" -S "$repo_root"
    build_dir="$(cd "$build_dir" && pwd)" # runs happen in scratch dirs
    cmake --build "$build_dir" -j"$(nproc)" --target eval_cli \
        eval_prof benchtrack

    cli="$build_dir/examples/eval_cli"
    prof="$build_dir/tools/eval_prof/eval_prof"
    bt="$build_dir/tools/benchtrack/benchtrack"
    run_dir="$build_dir/prof-smoke"
    rm -rf "$run_dir" && mkdir -p "$run_dir"

    # 1. Fast 2-shard campaign with tracing on: the supervisor must
    #    merge the per-shard traces/profiles into one fleet timeline
    #    (--trace-spans) plus <trace-spans>.profile.json.
    echo "check.sh: prof smoke -- 2-shard traced fig13"
    (cd "$run_dir" && "$cli" fig13 --chips=6 --seed=7 \
        --sim-insts=20000 --apps=gzip,swim --scheme=exh --shards=2 \
        --out=fleet --manifest= --trace-spans="$run_dir/fleet.json" \
        > fig13.stdout 2>&1) || {
        echo "check.sh: ERROR traced sharded fig13 failed"
        cat "$run_dir/fig13.stdout"
        exit 1
    }
    profile="$run_dir/fleet.profile.json"
    for artifact in "$run_dir/fleet.json" "$profile" \
        "$run_dir/fleet/trace/shard-0.json" \
        "$run_dir/fleet/trace/profile-shard-1.json"; do
        if [[ ! -s "$artifact" ]]; then
            echo "check.sh: ERROR missing telemetry artifact $artifact"
            exit 1
        fi
    done

    # 2. eval_prof must render the fleet profile, and a self-compare
    #    diff has nothing to gate on.
    echo "check.sh: prof smoke -- eval_prof tree/flame/diff"
    "$prof" tree "$profile" > /dev/null
    "$prof" tree "$profile" --bottom-up --top=10 > /dev/null
    "$prof" flame "$profile" --out="$run_dir/stacks.txt"
    [[ -s "$run_dir/stacks.txt" ]]
    "$prof" diff "$profile" "$profile" --gate > /dev/null

    # 3. Blame drill: four steady footers, then a +20% wall-clock
    #    entry where one span's self time grew to match.  The gate
    #    must trip (exit 1) and the report must blame that span.
    echo "check.sh: prof smoke -- benchtrack blame drill"
    hist="$run_dir/history"
    footers="$run_dir/footers.jsonl"
    for _ in 1 2 3 4; do
        printf '%s\n' '{"bench": "prof_smoke", "wall_clock_s": 10.0, "span_self_ms": {"fig13.sweep": 8000.0, "thermal.solve": 1500.0}}'
    done > "$footers"
    printf '%s\n' '{"bench": "prof_smoke", "wall_clock_s": 12.0, "span_self_ms": {"fig13.sweep": 8100.0, "thermal.solve": 3400.0}}' \
        >> "$footers"
    "$bt" ingest --history "$hist" "$footers" > /dev/null
    if "$bt" report --history "$hist" \
        --markdown "$run_dir/blame.md" --gate > /dev/null; then
        echo "check.sh: ERROR benchtrack missed the +20% regression"
        exit 1
    fi
    if ! grep -q '^## Blame: prof_smoke' "$run_dir/blame.md"; then
        echo "check.sh: ERROR blame section missing from report"
        cat "$run_dir/blame.md"
        exit 1
    fi
    if ! grep -A6 '^## Blame: prof_smoke' "$run_dir/blame.md" \
            | grep -q 'thermal.solve'; then
        echo "check.sh: ERROR blame did not name the grown span"
        cat "$run_dir/blame.md"
        exit 1
    fi
    echo "check.sh: prof smoke passed" \
         "(fleet profile: $profile, blame: $run_dir/blame.md)"
    exit 0
fi

if [[ "$mode" == "shard-smoke" ]]; then
    build_dir="${1:-$repo_root/build-check}"
    history_dir="${BENCH_TRACK_HISTORY:-$repo_root/bench/history}"

    cmake -B "$build_dir" -S "$repo_root"
    build_dir="$(cd "$build_dir" && pwd)" # runs happen in scratch dirs
    cmake --build "$build_dir" -j"$(nproc)" --target eval_cli \
        benchtrack bench_shard_scaling

    cli="$build_dir/examples/eval_cli"
    run_dir="$build_dir/shard-smoke"
    rm -rf "$run_dir" && mkdir -p "$run_dir"
    # Small but checkpoint-heavy: 6 chips / 2 shards gives each shard
    # 3 chips, and --checkpoint-every=1 forces a checkpoint between
    # every chip so the injected SIGKILL lands on a torn run with a
    # usable prior checkpoint.  --manifest= silences the default
    # manifest path (workers would race on it).
    campaign=(fig13 --chips=6 --seed=7 --sim-insts=20000
              --apps=gzip,swim --scheme=exh --checkpoint-every=1
              --manifest=)

    # 1. Crash drill: SIGKILL shard 0 after 2 chips (its second
    #    checkpoint is never written).  The supervisor must report
    #    the dead worker and fail.
    echo "check.sh: shard smoke -- crash drill (SIGKILL shard 0)"
    if (cd "$run_dir" && EVAL_SHARD_ABORT_AFTER=2 EVAL_SHARD_ABORT_SHARD=0 \
        "$cli" "${campaign[@]}" --shards=2 --out=sharded \
        > crash.stdout 2>&1); then
        echo "check.sh: ERROR supervisor survived a SIGKILLed worker"
        cat "$run_dir/crash.stdout"
        exit 1
    fi

    # 2. Resume: shard 1's completed result is reused, shard 0 picks
    #    up from its surviving checkpoint and finishes.
    echo "check.sh: shard smoke -- resume after crash"
    (cd "$run_dir" && "$cli" "${campaign[@]}" --shards=2 --out=sharded \
        --resume > resume.stdout 2>&1) || {
        echo "check.sh: ERROR resume after crash failed"
        cat "$run_dir/resume.stdout"
        exit 1
    }

    # 3. References: an uninterrupted 2-shard run and the monolithic
    #    path.  All three merged outputs must be byte-identical --
    #    the same bit-identity contract shard_differential_test
    #    proves in-process, here across real fork/exec + crash/resume.
    echo "check.sh: shard smoke -- uninterrupted + monolithic references"
    (cd "$run_dir" && "$cli" "${campaign[@]}" --shards=2 --out=ref \
        > ref.stdout 2>&1)
    (cd "$run_dir" && "$cli" "${campaign[@]}" --out=mono \
        > mono.stdout 2>&1)
    for artifact in merged.snap merged.stats.json; do
        for other in ref mono; do
            if ! cmp -s "$run_dir/sharded/$artifact" \
                       "$run_dir/$other/$artifact"; then
                echo "check.sh: ERROR $artifact differs" \
                     "(resumed sharded vs $other)"
                exit 1
            fi
        done
    done
    echo "check.sh: shard smoke -- merged outputs bit-identical" \
         "(resumed == uninterrupted == monolithic)"

    # 4. Throughput history: bench_shard_scaling re-proves the
    #    identity at shards {1,2,4} and reports chips/s; benchtrack
    #    gates it against the recent history window like the other
    #    tracked benches.
    bench_dir="$build_dir/shard-smoke-bench"
    rm -rf "$bench_dir" && mkdir -p "$bench_dir"
    echo "check.sh: running bench_shard_scaling"
    (cd "$bench_dir" && EVAL_FAST=1 EVAL_MANIFEST= \
        "$build_dir/bench/bench_shard_scaling" \
        > bench_shard_scaling.stdout)
    "$build_dir/tools/benchtrack/benchtrack" ingest \
        --history "$history_dir" "$bench_dir"/*.stdout
    "$build_dir/tools/benchtrack/benchtrack" report \
        --history "$history_dir" \
        --window "${BENCH_TRACK_WINDOW:-5}" \
        --threshold "${BENCH_TRACK_THRESHOLD:-10}" \
        --markdown "$build_dir/shard-bench-report.md" \
        --json "$build_dir/shard-bench-report.json" \
        --gate
    echo "check.sh: shard smoke passed" \
         "(report: $build_dir/shard-bench-report.md)"
    exit 0
fi

build_dir="${1:-$repo_root/build-check}"

cmake -B "$build_dir" -S "$repo_root" -DEVAL_WERROR=ON
cmake --build "$build_dir" -j"$(nproc)"

# Tier 1 (fast unit/integration) and fuzz first: fail fast before the
# slower golden tier, and keep per-tier timing visible.
ctest --test-dir "$build_dir" --output-on-failure -j"$(nproc)" -L tier1
ctest --test-dir "$build_dir" --output-on-failure -j"$(nproc)" -L fuzz

# Golden tier: bit-stability, paper anchors, differential runs.  Diff
# artifacts land in EVAL_GOLDEN_DIFF_DIR (default: golden-diffs/) on
# mismatch; CI uploads them.
ctest --test-dir "$build_dir" --output-on-failure -L golden

echo "check.sh: all tiers passed"
