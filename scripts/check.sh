#!/usr/bin/env bash
# Tier-1 verification: configure with warnings-as-errors, build
# everything, run the full test suite.  This is what CI runs; run it
# locally before pushing.
#
# Usage: scripts/check.sh [build-dir]   (default: build-check)

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build-check}"

cmake -B "$build_dir" -S "$repo_root" -DEVAL_WERROR=ON
cmake --build "$build_dir" -j"$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure -j"$(nproc)"

echo "check.sh: all tests passed"
