#!/usr/bin/env bash
# Tier-1 verification: configure with warnings-as-errors, build
# everything, run the full test suite.  This is what CI runs; run it
# locally before pushing.
#
# Usage: scripts/check.sh [build-dir]   (default: build-check)
#        scripts/check.sh --tsan [build-dir]
#
# --tsan (or CHECK_TSAN=1) configures with -DEVAL_TSAN=ON and runs the
# concurrency-sensitive test subset (exec, stats, core, cmp) under
# ThreadSanitizer instead of the full Werror build.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

tsan="${CHECK_TSAN:-0}"
if [[ "${1:-}" == "--tsan" ]]; then
    tsan=1
    shift
fi

if [[ "$tsan" == "1" ]]; then
    build_dir="${1:-$repo_root/build-tsan}"
    cmake -B "$build_dir" -S "$repo_root" -DEVAL_TSAN=ON
    cmake --build "$build_dir" -j"$(nproc)"
    # Exercise the parallel layer for real: the determinism test and the
    # stats test both fan out on multi-thread pools.
    EVAL_THREADS=4 ctest --test-dir "$build_dir" --output-on-failure \
        -R 'exec_|stats_|core_|cmp_'
    echo "check.sh: TSan tests passed"
    exit 0
fi

build_dir="${1:-$repo_root/build-check}"

cmake -B "$build_dir" -S "$repo_root" -DEVAL_WERROR=ON
cmake --build "$build_dir" -j"$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure -j"$(nproc)"

echo "check.sh: all tests passed"
