#!/usr/bin/env bash
# Changed-files-only lint hook: runs eval-lint over just the C++ files
# the working tree touches (staged, unstaged, and untracked), so the
# feedback loop stays sub-second even though the analyzer indexes the
# whole default tree for cross-TU context (layering, exception
# contracts).  Findings are only *emitted* for the changed files;
# manifest-anchored staleness checks (lay-unused-edge) are deferred to
# the full-tree gate in scripts/check.sh --lint.
#
# Usage: scripts/precommit.sh [base-ref]
#
# With base-ref (e.g. origin/main), lints files changed since that
# ref instead of the working-tree delta — useful in CI for PR-scoped
# runs.  Install as a hook with:
#
#     ln -s ../../scripts/precommit.sh .git/hooks/pre-commit

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
base_ref="${1:-}"

# Collect candidate files: staged + unstaged + untracked, or the diff
# against the base ref when one is given.
if [[ -n "$base_ref" ]]; then
    mapfile -t changed < <(git -C "$repo_root" diff --name-only \
        --diff-filter=d "$base_ref")
else
    mapfile -t changed < <({
        git -C "$repo_root" diff --name-only --diff-filter=d HEAD 2>/dev/null \
            || git -C "$repo_root" diff --name-only --diff-filter=d --cached
        git -C "$repo_root" ls-files --others --exclude-standard
    } | sort -u)
fi

# Keep only lintable C++ sources inside the default scan set, minus
# the fixture corpora (violating on purpose).
lintable=()
for f in "${changed[@]}"; do
    case "$f" in
        tests/lint/fixtures/*) continue ;;
        src/*|bench/*|tests/*|examples/*|tools/*) ;;
        *) continue ;;
    esac
    case "$f" in
        *.cc|*.cpp|*.cxx|*.hh|*.h|*.hpp) lintable+=("$f") ;;
    esac
done

if [[ ${#lintable[@]} -eq 0 ]]; then
    echo "precommit.sh: no changed C++ files to lint"
    exit 0
fi

# Find (or build) the lint binary: prefer an existing build dir so the
# hook never triggers a full configure on its own.
lint_bin=""
for dir in build-check build; do
    if [[ -x "$repo_root/$dir/tools/lint/eval_lint" ]]; then
        lint_bin="$repo_root/$dir/tools/lint/eval_lint"
        break
    fi
done
if [[ -z "$lint_bin" ]]; then
    echo "precommit.sh: building eval_lint (first run)"
    cmake -B "$repo_root/build-check" -S "$repo_root" > /dev/null
    cmake --build "$repo_root/build-check" -j"$(nproc)" \
        --target eval_lint > /dev/null
    lint_bin="$repo_root/build-check/tools/lint/eval_lint"
fi

echo "precommit.sh: linting ${#lintable[@]} changed file(s)"
"$lint_bin" --root "$repo_root" --exclude tests/lint/fixtures \
    "${lintable[@]}"
