#!/usr/bin/env bash
# Regenerate the golden reference files in tests/golden/data/.
#
# Usage: scripts/regen_goldens.sh [build-dir]   (default: build)
#
# Protocol (see TESTING.md):
#   1. record the goldens from the current tree,
#   2. record them a second time and require byte-identical output
#      (catches nondeterminism before it can be committed),
#   3. re-run the golden tier in compare mode to prove the new goldens
#      are self-consistent.
#
# Only commit regenerated goldens together with the change that
# justifies them, and mention the regeneration in the commit message.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
data_dir="$repo_root/tests/golden/data"

if [[ ! -d "$build_dir" ]]; then
    cmake -B "$build_dir" -S "$repo_root"
fi
cmake --build "$build_dir" -j"$(nproc)" \
    --target golden_compare_test golden_paper_anchor_test

recorders=(
    "$build_dir/tests/golden_compare_test"
    "$build_dir/tests/golden_paper_anchor_test"
)

record_all() {
    for bin in "${recorders[@]}"; do
        EVAL_GOLDEN_MODE=record "$bin" >/dev/null
    done
}

echo "regen_goldens: recording pass 1"
record_all
pass1="$(sha256sum "$data_dir"/*.golden)"

echo "regen_goldens: recording pass 2 (determinism check)"
record_all
pass2="$(sha256sum "$data_dir"/*.golden)"

if [[ "$pass1" != "$pass2" ]]; then
    echo "regen_goldens: ERROR recorded goldens differ between runs:" >&2
    diff <(echo "$pass1") <(echo "$pass2") >&2 || true
    exit 1
fi

echo "regen_goldens: verifying in compare mode"
ctest --test-dir "$build_dir" --output-on-failure -L golden

echo "regen_goldens: goldens regenerated and verified:"
echo "$pass2"
