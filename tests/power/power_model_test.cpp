/** Tests for the Eq 7/8 power models, knobs, and Vt0 calibration. */

#include <gtest/gtest.h>

#include "power/knobs.hh"
#include "power/power_model.hh"
#include "power/vt0_calibration.hh"

namespace eval {
namespace {

TEST(DynamicPower, ScalesQuadraticallyWithVdd)
{
    const double p1 = dynamicPower(1e-12, 0.5, 1.0, 4e9);
    const double p2 = dynamicPower(1e-12, 0.5, 1.2, 4e9);
    EXPECT_NEAR(p2 / p1, 1.44, 1e-9);
}

TEST(DynamicPower, LinearInActivityAndFrequency)
{
    const double base = dynamicPower(1e-12, 0.5, 1.0, 4e9);
    EXPECT_NEAR(dynamicPower(1e-12, 1.0, 1.0, 4e9), 2.0 * base, 1e-12);
    EXPECT_NEAR(dynamicPower(1e-12, 0.5, 1.0, 8e9), 2.0 * base, 1e-12);
}

TEST(StaticPower, GrowsWithTemperature)
{
    const double cold = staticPower(1e-3, 1.0, 45.0, 0.15);
    const double hot = staticPower(1e-3, 1.0, 95.0, 0.15);
    EXPECT_GT(hot, cold * 2.0);
}

TEST(StaticPower, ShrinksExponentiallyWithVt)
{
    const double lowVt = staticPower(1e-3, 1.0, 70.0, 0.12);
    const double highVt = staticPower(1e-3, 1.0, 70.0, 0.18);
    EXPECT_GT(lowVt / highVt, 5.0);
}

TEST(Calibration, MeetsChipTargets)
{
    ProcessParams params;
    PowerCalibration cal;
    const auto table = calibratePower(params, cal);

    double dyn = 0.0, sta = 0.0;
    const double tK = celsiusToKelvin(cal.calibrationTempC);
    const OperatingConditions calOp{params.vddNominal, 0.0,
                                    cal.calibrationTempC};
    const double vtEff = effectiveVt(params, params.vtMean, calOp);
    for (const auto &p : table) {
        dyn += dynamicPower(p.kdyn, p.alphaRef, params.vddNominal,
                            params.freqNominal);
        sta += p.ksta * params.vddNominal * tK * tK *
               std::exp(-kQOverK * vtEff / tK);
    }
    EXPECT_NEAR(dyn, cal.coreDynamicTargetW, 0.02 * cal.coreDynamicTargetW);
    EXPECT_NEAR(sta, cal.coreStaticTargetW, 0.02 * cal.coreStaticTargetW);
}

TEST(Calibration, AllConstantsPositive)
{
    const auto table = calibratePower(ProcessParams{}, PowerCalibration{});
    for (const auto &p : table) {
        EXPECT_GT(p.kdyn, 0.0);
        EXPECT_GT(p.ksta, 0.0);
        EXPECT_GT(p.alphaRef, 0.0);
    }
}

TEST(KnobRange, Figure7aRanges)
{
    KnobSpace ks;
    EXPECT_DOUBLE_EQ(ks.vdd.lo(), 0.80);
    EXPECT_DOUBLE_EQ(ks.vdd.hi(), 1.20);
    EXPECT_DOUBLE_EQ(ks.vdd.step(), 0.05);
    EXPECT_DOUBLE_EQ(ks.vbb.lo(), -0.50);
    EXPECT_DOUBLE_EQ(ks.vbb.hi(), 0.50);
    EXPECT_DOUBLE_EQ(ks.freq.step(), 0.1e9);
    EXPECT_GE(ks.freq.lo(), 2.4e9 - 1.0);
}

TEST(KnobRange, QuantizeVariants)
{
    KnobRange r(0.0, 1.0, 0.1);
    EXPECT_NEAR(r.quantize(0.44), 0.4, 1e-12);
    EXPECT_NEAR(r.quantize(0.46), 0.5, 1e-12);
    EXPECT_NEAR(r.quantizeDown(0.49), 0.4, 1e-12);
    EXPECT_NEAR(r.quantizeDown(0.50), 0.5, 1e-12);
    EXPECT_NEAR(r.quantizeUp(0.41), 0.5, 1e-12);
    EXPECT_NEAR(r.quantizeUp(0.40), 0.4, 1e-12);
    EXPECT_NEAR(r.quantize(-5.0), 0.0, 1e-12);
    EXPECT_NEAR(r.quantize(5.0), 1.0, 1e-12);
}

TEST(KnobSpace, CapabilityFiltering)
{
    KnobSpace ks;
    ks.hasAsv = false;
    ks.hasAbb = false;
    EXPECT_EQ(ks.vddCandidates(1.0).size(), 1u);
    EXPECT_DOUBLE_EQ(ks.vddCandidates(1.0)[0], 1.0);
    EXPECT_EQ(ks.vbbCandidates().size(), 1u);
    EXPECT_DOUBLE_EQ(ks.vbbCandidates()[0], 0.0);

    ks.hasAsv = true;
    ks.hasAbb = true;
    EXPECT_EQ(ks.vddCandidates(1.0).size(), 9u);
    EXPECT_EQ(ks.vbbCandidates().size(), 21u);
}

TEST(Vt0Calibration, RecoversTrueVt0)
{
    ProcessParams params;
    const auto table = calibratePower(params, PowerCalibration{});
    TesterConfig cfg;
    cfg.currentNoiseRel = 0.0;   // noiseless meter
    Rng rng(1);
    for (double trueVt0 : {0.13, 0.15, 0.17}) {
        const double measured = measureVt0(
            params, table[0], trueVt0, cfg, rng);
        EXPECT_NEAR(measured, trueVt0, 1e-6);
    }
}

TEST(Vt0Calibration, NoiseStaysSmall)
{
    ProcessParams params;
    const auto table = calibratePower(params, PowerCalibration{});
    TesterConfig cfg;   // default 1% meter noise
    Rng rng(2);
    double worst = 0.0;
    for (int i = 0; i < 200; ++i) {
        const double m = measureVt0(params, table[3], 0.15, cfg, rng);
        worst = std::max(worst, std::abs(m - 0.15));
    }
    // 1% current error maps to ~ (kT/q) * 1% ~ 0.3 mV.
    EXPECT_LT(worst, 0.002);
}

} // namespace
} // namespace eval
