/** Tests for eval_prof: tree/bottom-up rendering, collapsed-stack
 *  flamegraph output, and profile diff (ordering, gate semantics,
 *  self-compare). */

#include <gtest/gtest.h>

#include "eval_prof.hh"

namespace eval {
namespace {

using prof::DiffRow;
using prof::collapsedStacks;
using prof::diffProfiles;
using prof::formatNs;
using prof::hasRegression;
using prof::renderDiff;
using prof::renderTree;
using prof::runEvalProf;

/** A profile with a root, two children, and a grandchild. */
SpanProfile
sampleProfile()
{
    SpanProfile p;
    auto add = [&p](const std::string &path, const std::string &name,
                    std::uint64_t count, std::uint64_t incl,
                    std::uint64_t self) {
        ProfileBucket b;
        b.path = path;
        b.name = name;
        b.count = count;
        b.inclNs = incl;
        b.selfNs = self;
        p[path] = b;
    };
    add("root", "root", 1, 10000000, 1000000);
    add("root;hot", "hot", 4, 6000000, 5000000);
    add("root;cold", "cold", 2, 3000000, 2000000);
    add("root;hot;leaf", "leaf", 8, 1000000, 1000000);
    return p;
}

TEST(EvalProfFormat, FormatNsPicksHumanUnits)
{
    EXPECT_EQ(formatNs(12), "12ns");
    EXPECT_EQ(formatNs(4500), "4.5us");
    EXPECT_EQ(formatNs(6200000), "6.2ms");
    EXPECT_EQ(formatNs(2338000000ull), "2.338s");
}

TEST(EvalProfTree, TopDownOrdersChildrenByInclusive)
{
    const std::string out = renderTree(sampleProfile(), false, 0);
    const std::size_t root = out.find("root");
    const std::size_t hot = out.find("hot");
    const std::size_t leaf = out.find("leaf");
    const std::size_t cold = out.find("cold");
    ASSERT_NE(root, std::string::npos);
    ASSERT_NE(hot, std::string::npos);
    ASSERT_NE(leaf, std::string::npos);
    ASSERT_NE(cold, std::string::npos);
    // DFS: root, then hot (larger inclusive) with its leaf, then cold.
    EXPECT_LT(root, hot);
    EXPECT_LT(hot, leaf);
    EXPECT_LT(leaf, cold);
    EXPECT_NE(out.find("x4"), std::string::npos);
}

TEST(EvalProfTree, TopCapsLinesAndCountsTheRest)
{
    const std::string out = renderTree(sampleProfile(), false, 2);
    EXPECT_NE(out.find("... (2 more)"), std::string::npos);
}

TEST(EvalProfTree, BottomUpRanksLeavesBySelfTime)
{
    const std::string out = renderTree(sampleProfile(), true, 0);
    // hot has the most self time, so it leads; the call site lists
    // its parent chain.
    const std::size_t hot = out.find("hot");
    const std::size_t fromRoot = out.find("from root");
    ASSERT_NE(hot, std::string::npos);
    ASSERT_NE(fromRoot, std::string::npos);
    EXPECT_LT(hot, fromRoot);
    EXPECT_NE(out.find("(root)"), std::string::npos);
}

TEST(EvalProfFlame, CollapsedStacksEmitSelfMicroseconds)
{
    const std::string out = collapsedStacks(sampleProfile());
    EXPECT_NE(out.find("root;hot 5000\n"), std::string::npos);
    EXPECT_NE(out.find("root;hot;leaf 1000\n"), std::string::npos);
    EXPECT_NE(out.find("root 1000\n"), std::string::npos);
    // Sub-microsecond self time is dropped, not rendered as 0.
    SpanProfile p = sampleProfile();
    p["root;hot"].selfNs = 300;
    EXPECT_EQ(collapsedStacks(p).find("root;hot "), std::string::npos);
}

TEST(EvalProfDiff, SelfCompareIsAllZeroAndNeverGates)
{
    const SpanProfile p = sampleProfile();
    const std::vector<DiffRow> rows = diffProfiles(p, p);
    ASSERT_EQ(rows.size(), p.size());
    for (const DiffRow &row : rows) {
        EXPECT_EQ(row.deltaSelfNs, 0);
        EXPECT_EQ(row.oldCount, row.newCount);
    }
    EXPECT_FALSE(hasRegression(rows, 0.0));
}

TEST(EvalProfDiff, SortsByAbsoluteDeltaAndGatesOnGrowth)
{
    SpanProfile before = sampleProfile();
    SpanProfile after = sampleProfile();
    after["root;hot"].selfNs += 3000000;  // +60%
    after["root;cold"].selfNs -= 1500000; // -75% (improvement)
    const std::vector<DiffRow> rows = diffProfiles(before, after);
    ASSERT_GE(rows.size(), 2u);
    EXPECT_EQ(rows[0].path, "root;hot");
    EXPECT_EQ(rows[0].deltaSelfNs, 3000000);
    EXPECT_EQ(rows[1].path, "root;cold");
    EXPECT_TRUE(hasRegression(rows, 10.0));
    EXPECT_FALSE(hasRegression(rows, 70.0));
    // Shrinking self time is never a regression (hot improved when
    // diffing the other way; it sorts first on |delta|).
    const std::vector<DiffRow> improved = diffProfiles(after, before);
    ASSERT_EQ(improved[0].path, "root;hot");
    EXPECT_FALSE(hasRegression(
        std::vector<DiffRow>{improved[0]}, 0.0));
}

TEST(EvalProfDiff, NewPathsAreMarkedButNeverGate)
{
    SpanProfile before = sampleProfile();
    SpanProfile after = sampleProfile();
    ProfileBucket fresh;
    fresh.path = "root;fresh";
    fresh.name = "fresh";
    fresh.count = 1;
    fresh.inclNs = 9000000;
    fresh.selfNs = 9000000;
    after[fresh.path] = fresh;
    const std::vector<DiffRow> rows = diffProfiles(before, after);
    EXPECT_EQ(rows[0].path, "root;fresh");
    EXPECT_NE(renderDiff(rows, 0).find("(new)"), std::string::npos);
    EXPECT_FALSE(hasRegression(rows, 10.0));
}

TEST(EvalProfDiff, RenderCapsRows)
{
    const SpanProfile p = sampleProfile();
    const std::string out = renderDiff(diffProfiles(p, p), 1);
    EXPECT_NE(out.find("... (3 more)"), std::string::npos);
}

TEST(EvalProfCli, UsageAndMissingFileExitTwo)
{
    EXPECT_EQ(runEvalProf({}), 2);
    EXPECT_EQ(runEvalProf({"tree"}), 2);
    EXPECT_EQ(runEvalProf({"bogus", "x"}), 2);
    EXPECT_EQ(runEvalProf({"tree", "/nonexistent/profile.json"}), 2);
    EXPECT_EQ(runEvalProf({"diff", "/nonexistent/a", "/nonexistent/b"}),
              2);
}

} // namespace
} // namespace eval
