/** Tests for the BBV phase detector and the phase table. */

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "arch/isa.hh"
#include "phase/phase_detector.hh"
#include "phase/phase_table.hh"
#include "workload/generator.hh"

namespace eval {
namespace {

TEST(Bbv, AccumulatesAndNormalizes)
{
    BbvAccumulator bbv;
    bbv.note(0x1000, 8);
    bbv.note(0x2000, 8);
    const auto v = bbv.normalized();
    double sum = 0.0;
    for (double x : v)
        sum += x;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_EQ(bbv.blocksSeen(), 2u);
}

TEST(Bbv, EmptyNormalizesToZero)
{
    BbvAccumulator bbv;
    for (double x : bbv.normalized())
        EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(Bbv, CountersSaturate)
{
    BbvAccumulator bbv;
    for (int i = 0; i < 1000; ++i)
        bbv.note(0x1000, 64);
    // Saturation means no overflow and still a valid distribution.
    const auto v = bbv.normalized();
    double sum = 0.0;
    for (double x : v)
        sum += x;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Bbv, ResetClears)
{
    BbvAccumulator bbv;
    bbv.note(0x1000, 4);
    bbv.reset();
    EXPECT_EQ(bbv.blocksSeen(), 0u);
}

TEST(Detector, SameBbvSamePhase)
{
    PhaseDetector det;
    BbvAccumulator bbv;
    bbv.note(0x1000, 8);
    bbv.note(0x2040, 4);

    const auto d1 = det.endInterval(bbv);
    EXPECT_TRUE(d1.isNewPhase);
    const auto d2 = det.endInterval(bbv);
    EXPECT_FALSE(d2.isNewPhase);
    EXPECT_EQ(d2.phaseId, d1.phaseId);
    EXPECT_FALSE(d2.changed);
}

TEST(Detector, DistinctBbvNewPhase)
{
    PhaseDetector det;
    BbvAccumulator a, b;
    a.note(0x1000, 8);
    for (int i = 0; i < 8; ++i)
        b.note(0x99000 + i * 4096, 8);

    const auto d1 = det.endInterval(a);
    const auto d2 = det.endInterval(b);
    EXPECT_TRUE(d2.isNewPhase);
    EXPECT_NE(d2.phaseId, d1.phaseId);
    EXPECT_TRUE(d2.changed);
}

TEST(Detector, TableCapacityRespected)
{
    PhaseDetector det(0.05, 4);
    Rng rng(3);
    for (int p = 0; p < 10; ++p) {
        BbvAccumulator bbv;
        for (int i = 0; i < 16; ++i)
            bbv.note(rng.next(), 8);
        det.endInterval(bbv);
    }
    EXPECT_LE(det.numPhases(), 4u);
}

TEST(Detector, RecognizesWorkloadPhases)
{
    // Stream a 3-phase application through the detector and check the
    // detector's phase ids track the generator's ground truth.
    const AppProfile &app = appByName("gcc");
    SyntheticTrace trace(app, 5);
    PhaseDetector det(0.25, 16);

    const int intervalOps = 20000;
    std::map<std::size_t, std::map<std::size_t, int>> confusion;
    MicroOp op;
    std::uint64_t lastBranchPc = 0;
    std::uint32_t blockLen = 0;
    for (int interval = 0; interval < 60; ++interval) {
        BbvAccumulator bbv;
        const std::size_t truth = trace.currentPhase();
        for (int i = 0; i < intervalOps; ++i) {
            trace.next(op);
            ++blockLen;
            if (op.cls == OpClass::Branch) {
                lastBranchPc = op.pc;
                bbv.note(lastBranchPc, blockLen);
                blockLen = 0;
            }
        }
        const auto d = det.endInterval(bbv);
        ++confusion[truth][d.phaseId];
    }

    // Majority detected id per ground-truth phase must be distinct.
    std::set<std::size_t> majors;
    for (const auto &[truth, detected] : confusion) {
        std::size_t best = 0;
        int bestCount = -1;
        for (const auto &[id, count] : detected) {
            if (count > bestCount) {
                bestCount = count;
                best = id;
            }
        }
        majors.insert(best);
    }
    EXPECT_EQ(majors.size(), confusion.size());
}

TEST(PhaseTable, SaveLookupInvalidate)
{
    PhaseTable<int> table;
    EXPECT_FALSE(table.lookup(3).has_value());
    table.save(3, 42);
    ASSERT_TRUE(table.lookup(3).has_value());
    EXPECT_EQ(*table.lookup(3), 42);
    table.save(3, 43);
    EXPECT_EQ(*table.lookup(3), 43);
    EXPECT_EQ(table.size(), 1u);
    table.invalidate();
    EXPECT_FALSE(table.lookup(3).has_value());
}

} // namespace
} // namespace eval
