/** Tests for the Eq 6-9 electro-thermal solver and sensors. */

#include <cmath>

#include <gtest/gtest.h>

#include "power/power_model.hh"
#include "thermal/sensors.hh"
#include "util/statistics.hh"
#include "thermal/thermal_model.hh"

namespace eval {
namespace {

struct Fixture
{
    ProcessParams params;
    std::array<SubsystemPowerParams, kNumSubsystems> power{
        calibratePower(params, PowerCalibration{})};
    ThermalModel thermal{params};
};

TEST(ThermalModel, SmallBlocksHaveHigherRth)
{
    Fixture f;
    EXPECT_GT(f.thermal.rth(SubsystemId::IntALU),
              f.thermal.rth(SubsystemId::Dcache));
    EXPECT_GT(f.thermal.rth(SubsystemId::DTLB),
              f.thermal.rth(SubsystemId::Icache));
}

TEST(ThermalModel, SubsystemAboveHeatsink)
{
    Fixture f;
    const auto st = f.thermal.solveSubsystem(
        f.power[static_cast<std::size_t>(SubsystemId::IntALU)],
        SubsystemId::IntALU, f.params.vtMean, 1.0, 0.0, 4e9, 0.6, 65.0);
    EXPECT_GT(st.tempC, 65.0);
    EXPECT_LT(st.tempC, 95.0);
    EXPECT_FALSE(st.runaway);
    EXPECT_GT(st.pdyn, 0.0);
    EXPECT_GT(st.psta, 0.0);
}

TEST(ThermalModel, SatisfiesEq6AtFixedPoint)
{
    Fixture f;
    const SubsystemId id = SubsystemId::IntQ;
    const auto &pp = f.power[static_cast<std::size_t>(id)];
    const auto st = f.thermal.solveSubsystem(pp, id, f.params.vtMean, 1.1,
                                             0.0, 4.5e9, 0.8, 68.0);
    EXPECT_NEAR(st.tempC, 68.0 + f.thermal.rth(id) * (st.pdyn + st.psta),
                0.05);
}

TEST(ThermalModel, HigherVddRunsHotter)
{
    Fixture f;
    const SubsystemId id = SubsystemId::FPUnit;
    const auto &pp = f.power[static_cast<std::size_t>(id)];
    const auto lo = f.thermal.solveSubsystem(pp, id, f.params.vtMean, 0.9,
                                             0.0, 4e9, 0.5, 65.0);
    const auto hi = f.thermal.solveSubsystem(pp, id, f.params.vtMean, 1.2,
                                             0.0, 4e9, 0.5, 65.0);
    EXPECT_GT(hi.tempC, lo.tempC);
    EXPECT_GT(hi.pdyn, lo.pdyn);
    EXPECT_GT(hi.psta, lo.psta);
}

TEST(ThermalModel, ForwardBiasLeaksMore)
{
    Fixture f;
    const SubsystemId id = SubsystemId::IntReg;
    const auto &pp = f.power[static_cast<std::size_t>(id)];
    const auto noBias = f.thermal.solveSubsystem(
        pp, id, f.params.vtMean, 1.0, 0.0, 4e9, 0.5, 65.0);
    const auto fbb = f.thermal.solveSubsystem(
        pp, id, f.params.vtMean, 1.0, 0.4, 4e9, 0.5, 65.0);
    EXPECT_GT(fbb.psta, noBias.psta);
    // And reverse bias saves leakage.
    const auto rbb = f.thermal.solveSubsystem(
        pp, id, f.params.vtMean, 1.0, -0.4, 4e9, 0.5, 65.0);
    EXPECT_LT(rbb.psta, noBias.psta);
}

TEST(ThermalModel, LeakageFeedbackRaisesTemperature)
{
    Fixture f;
    const SubsystemId id = SubsystemId::IntALU;
    const auto &pp = f.power[static_cast<std::size_t>(id)];
    const auto st = f.thermal.solveSubsystem(pp, id, f.params.vtMean, 1.0,
                                             0.0, 4e9, 0.6, 65.0);
    // Temperature must exceed the leakage-free estimate.
    EXPECT_GT(st.tempC, 65.0 + f.thermal.rth(id) * st.pdyn);
}

TEST(Heatsink, TracksChipPower)
{
    HeatsinkModel hs;
    EXPECT_NEAR(hs.tempC(0.0), hs.ambientC, 1e-12);
    EXPECT_NEAR(hs.tempC(120.0), hs.ambientC + 30.0, 1e-12);
    // The paper's TH_MAX=70C corresponds to ~PMAX on all four cores.
    EXPECT_LE(hs.tempC(4 * 30.0), 70.0 + 1e-9);
}

TEST(Sensors, NoisySensorClampsAndCenters)
{
    NoisySensor s(0.5, 0.0, 100.0);
    Rng rng(5);
    RunningStats stats;
    for (int i = 0; i < 20000; ++i)
        stats.add(s.read(50.0, rng));
    EXPECT_NEAR(stats.mean(), 50.0, 0.05);
    EXPECT_NEAR(stats.stddev(), 0.5, 0.05);
    for (int i = 0; i < 100; ++i) {
        EXPECT_GE(s.read(-1000.0, rng), 0.0);
        EXPECT_LE(s.read(1000.0, rng), 100.0);
    }
}

TEST(Sensors, PeRateNeverNegative)
{
    SensorSuite suite;
    Rng rng(7);
    EXPECT_DOUBLE_EQ(suite.readPeRate(0.0, rng), 0.0);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(suite.readPeRate(1e-5, rng), 0.0);
}

/** Property: solver converges over the whole knob space. */
class SolverSweep
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(SolverSweep, ProducesFiniteState)
{
    Fixture f;
    const auto [vdd, vbb] = GetParam();
    // Maximum supply plus strong forward bias can genuinely run away
    // thermally; the solver must then *report* runaway, never produce
    // non-finite state.
    const bool mayRunAway = vbb > 0.25 && vdd > 1.1;
    for (std::size_t i = 0; i < kNumSubsystems; ++i) {
        const auto id = static_cast<SubsystemId>(i);
        const auto st = f.thermal.solveSubsystem(
            f.power[i], id, f.params.vtMean, vdd, vbb, 4e9,
            f.power[i].alphaRef, 70.0);
        EXPECT_TRUE(std::isfinite(st.tempC)) << "subsystem " << i;
        EXPECT_TRUE(std::isfinite(st.psta)) << "subsystem " << i;
        if (!mayRunAway) {
            EXPECT_FALSE(st.runaway) << "subsystem " << i;
            EXPECT_GT(st.tempC, 60.0);
            EXPECT_LT(st.tempC, 130.0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Knobs, SolverSweep,
    ::testing::Combine(::testing::Values(0.8, 1.0, 1.2),
                       ::testing::Values(-0.5, 0.0, 0.5)));

} // namespace
} // namespace eval
