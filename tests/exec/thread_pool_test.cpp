/** Tests for the work-stealing thread pool (src/exec). */

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/thread_pool.hh"

using namespace eval;

TEST(ThreadPool, PoolOfOneEqualsSerial)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1u);
    std::vector<int> hits(100, 0);
    pool.parallelFor(0, hits.size(), 1,
                     [&](std::size_t i) { hits[i]++; });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce)
{
    ThreadPool pool(4);
    const std::size_t n = 10000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(0, n, 7, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, NonZeroFirstIndex)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(50);
    pool.parallelFor(10, 50, 4, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_EQ(hits[i].load(), 0);
    for (std::size_t i = 10; i < 50; ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, EmptyAndReversedRangesAreNoOps)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(5, 5, 1, [&](std::size_t) { ++calls; });
    pool.parallelFor(9, 3, 1, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, RangeSmallerThanGrainRunsInline)
{
    ThreadPool pool(4);
    // 3 indices with grain 16: the pool should not bother fanning out.
    std::vector<int> hits(3, 0);
    pool.parallelFor(0, 3, 16, [&](std::size_t i) { hits[i]++; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 3);
}

TEST(ThreadPool, GrainZeroIsTreatedAsOne)
{
    ThreadPool pool(2);
    std::vector<std::atomic<int>> hits(64);
    pool.parallelFor(0, 64, 0, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < 64; ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ExceptionPropagatesToSubmitter)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(0, 1000, 1,
                         [](std::size_t i) {
                             if (i == 373)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // The pool survives the exception and runs the next region.
    std::atomic<int> count{0};
    pool.parallelFor(0, 100, 1, [&](std::size_t) {
        count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ExceptionCancelsRemainingWork)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    try {
        pool.parallelFor(0, 100000, 1, [&](std::size_t i) {
            if (i == 0)
                throw std::runtime_error("early");
            ran.fetch_add(1, std::memory_order_relaxed);
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &) {
    }
    // Cancellation is chunk-granular, so some work may run, but the
    // bulk of the region must have been dropped.
    EXPECT_LT(ran.load(), 100000 - 1);
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(32 * 32);
    pool.parallelFor(0, 32, 1, [&](std::size_t i) {
        EXPECT_TRUE(pool.insideThisPool());
        // Nested region on the same pool: must not deadlock; runs
        // serially inside this task.
        pool.parallelFor(0, 32, 1, [&](std::size_t j) {
            hits[i * 32 + j].fetch_add(1, std::memory_order_relaxed);
        });
    });
    for (std::size_t k = 0; k < hits.size(); ++k)
        EXPECT_EQ(hits[k].load(), 1);
    EXPECT_FALSE(pool.insideThisPool());
}

TEST(ThreadPool, ParallelMapPreservesIndexOrder)
{
    ThreadPool pool(4);
    const auto out = pool.parallelMap(
        std::size_t{257}, [](std::size_t i) { return 3 * i + 1; });
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], 3 * i + 1);
}

TEST(ThreadPool, ParallelMapOverItems)
{
    ThreadPool pool(3);
    const std::vector<int> items = {5, 7, 11, 13};
    const auto out =
        pool.parallelMap(items, [](int v) { return v * v; });
    ASSERT_EQ(out.size(), items.size());
    for (std::size_t i = 0; i < items.size(); ++i)
        EXPECT_EQ(out[i], items[i] * items[i]);
}

TEST(ThreadPool, ConcurrentSubmittersSerialize)
{
    // Two threads submitting top-level regions to one pool: regions
    // must serialize, not corrupt each other.
    ThreadPool pool(4);
    std::atomic<int> total{0};
    std::vector<std::thread> submitters;
    for (int s = 0; s < 3; ++s) {
        submitters.emplace_back([&pool, &total] {
            for (int r = 0; r < 5; ++r) {
                pool.parallelFor(0, 100, 8, [&](std::size_t) {
                    total.fetch_add(1, std::memory_order_relaxed);
                });
            }
        });
    }
    for (auto &t : submitters)
        t.join();
    EXPECT_EQ(total.load(), 3 * 5 * 100);
}

TEST(ThreadPool, GlobalPoolDefaultsToSerial)
{
    // The library default is one context until someone opts in.
    EXPECT_GE(globalThreads(), 1u);
    EXPECT_GE(defaultThreads(), 1u);
}

TEST(ThreadPool, SetGlobalThreadsResizes)
{
    setGlobalThreads(3);
    EXPECT_EQ(globalThreads(), 3u);
    EXPECT_EQ(globalPool().size(), 3u);
    setGlobalThreads(1);
    EXPECT_EQ(globalPool().size(), 1u);
}
