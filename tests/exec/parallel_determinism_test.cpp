/**
 * Regression test for the determinism contract of the parallel
 * execution layer: the same experiment run serially and with a
 * 4-thread pool must produce bit-identical metrics (Rng::split chip
 * streams + per-slot writes + serial-order accumulation).
 */

#include <vector>

#include <gtest/gtest.h>

#include "cmp/cmp_system.hh"
#include "core/eval.hh"
#include "exec/thread_pool.hh"

using namespace eval;

namespace {

ExperimentConfig
smallConfig()
{
    ExperimentConfig cfg;
    cfg.seed = 42;
    cfg.chips = 3;
    cfg.simInsts = 20000;
    return cfg;
}

/** The bench_cmp_mixes inner loop: per-chip CMP runs fanned out on
 *  the global pool, accumulated in chip order. */
std::vector<CmpRunResult>
runMixOverChips(std::size_t threads)
{
    setGlobalThreads(threads);
    ExperimentContext ctx(smallConfig());
    const WorkloadMix mix = mixedMix();
    auto perChip = globalPool().parallelMap(
        static_cast<std::size_t>(ctx.config().chips),
        [&ctx, &mix](std::size_t chip) {
            CmpSystem cmp(ctx, chip);
            return cmp.runMix(mix, EnvironmentKind::TS_ASV,
                              AdaptScheme::ExhDyn);
        });
    setGlobalThreads(1);
    return perChip;
}

} // namespace

TEST(ParallelDeterminism, ChipPopulationIdenticalAcrossThreads)
{
    ProcessParams params;
    ChipFactory serialFactory(params, 7);
    setGlobalThreads(1);
    const std::vector<Chip> serial = serialFactory.manufacture(8);

    ChipFactory parallelFactory(params, 7);
    setGlobalThreads(4);
    const std::vector<Chip> parallel = parallelFactory.manufacture(8);
    setGlobalThreads(1);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t c = 0; c < serial.size(); ++c) {
        EXPECT_EQ(serial[c].id(), parallel[c].id());
        for (std::size_t core = 0; core < 4; ++core) {
            for (std::size_t s = 0; s < kNumSubsystems; ++s) {
                const auto id = static_cast<SubsystemId>(s);
                EXPECT_EQ(serial[c].subsystemVtSys(core, id),
                          parallel[c].subsystemVtSys(core, id))
                    << "chip " << c << " core " << core << " sub " << s;
                EXPECT_EQ(serial[c].subsystemLeffSys(core, id),
                          parallel[c].subsystemLeffSys(core, id));
            }
        }
    }
}

TEST(ParallelDeterminism, CmpMixMetricsIdenticalAcrossThreads)
{
    const std::vector<CmpRunResult> serial = runMixOverChips(1);
    const std::vector<CmpRunResult> parallel = runMixOverChips(4);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t c = 0; c < serial.size(); ++c) {
        EXPECT_EQ(serial[c].throughputRel, parallel[c].throughputRel)
            << "chip " << c;
        EXPECT_EQ(serial[c].chipPowerW, parallel[c].chipPowerW);
        EXPECT_EQ(serial[c].heatsinkC, parallel[c].heatsinkC);
        EXPECT_EQ(serial[c].throttleSteps, parallel[c].throttleSteps);
        for (std::size_t core = 0; core < 4; ++core) {
            EXPECT_EQ(serial[c].coreFreqRel[core],
                      parallel[c].coreFreqRel[core]);
            EXPECT_EQ(serial[c].corePerfRel[core],
                      parallel[c].corePerfRel[core]);
            EXPECT_EQ(serial[c].corePowerW[core],
                      parallel[c].corePowerW[core]);
        }
    }
}

TEST(ParallelDeterminism, RngSplitMatchesForkWithoutAdvancing)
{
    Rng parent(123);
    Rng split1 = parent.split(9);
    Rng fork1 = parent.fork(9);
    // split == fork for the same label, and neither advances the
    // parent, so repeated splits agree.
    Rng split2 = parent.split(9);
    for (int i = 0; i < 64; ++i) {
        const double a = split1.uniform();
        const double b = fork1.uniform();
        const double c = split2.uniform();
        EXPECT_EQ(a, b);
        EXPECT_EQ(a, c);
    }
}

TEST(ParallelDeterminism, RngSplitStreamsAreDecorrelated)
{
    Rng parent(2026);
    Rng a = parent.split(1);
    Rng b = parent.split(2);
    double corr = 0.0;
    const int n = 4096;
    for (int i = 0; i < n; ++i)
        corr += (a.uniform() - 0.5) * (b.uniform() - 0.5);
    corr /= n * (1.0 / 12.0);   // normalize by uniform variance
    EXPECT_LT(std::abs(corr), 0.1);
}
