/** Tests for span profile aggregation: (parent-path, name) bucket
 *  counts, inclusive vs self time attribution, exactness under ring
 *  eviction, multi-thread fold, selfTimeByName, and the profile.json
 *  export schema consumed by tools/eval_prof and the shard merge. */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "trace/span_tracer.hh"
#include "valid/json_value.hh"

namespace eval {
namespace {

/** Reset the global tracer around every test. */
class SpanProfileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        SpanTracer &tracer = SpanTracer::global();
        tracer.setEnabled(false);
        tracer.clear();
        tracer.setRingCapacity(SpanTracer::kDefaultRingCapacity);
    }

    void
    TearDown() override
    {
        SetUp();
    }
};

const ProfileBucket *
findBucket(const std::vector<ProfileBucket> &buckets,
           const std::string &path)
{
    for (const ProfileBucket &b : buckets)
        if (b.path == path)
            return &b;
    return nullptr;
}

void
spinFor(std::chrono::microseconds us)
{
    const auto until = std::chrono::steady_clock::now() + us;
    while (std::chrono::steady_clock::now() < until) {
    }
}

TEST_F(SpanProfileTest, DisabledTracerAggregatesNothing)
{
    SpanTracer &tracer = SpanTracer::global();
    {
        ScopedSpan span("profile.disabled");
    }
    EXPECT_TRUE(tracer.snapshotProfile().empty());
}

TEST_F(SpanProfileTest, BucketsKeyOnParentPathAndCountClosures)
{
    SpanTracer &tracer = SpanTracer::global();
    tracer.setEnabled(true);
    for (int i = 0; i < 3; ++i) {
        ScopedSpan outer("outer");
        {
            ScopedSpan inner("leaf");
        }
        {
            ScopedSpan other("other");
            ScopedSpan inner("leaf");
        }
    }
    tracer.setEnabled(false);

    const auto buckets = tracer.snapshotProfile();
    const ProfileBucket *outer = findBucket(buckets, "outer");
    const ProfileBucket *leaf = findBucket(buckets, "outer;leaf");
    const ProfileBucket *deep = findBucket(buckets, "outer;other;leaf");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(leaf, nullptr);
    ASSERT_NE(deep, nullptr);
    EXPECT_EQ(outer->count, 3u);
    EXPECT_EQ(leaf->count, 3u);
    EXPECT_EQ(deep->count, 3u);
    EXPECT_EQ(outer->name, "outer");
    EXPECT_EQ(leaf->name, "leaf");
    EXPECT_EQ(deep->name, "leaf");
    // Same leaf name under different parents stays in distinct
    // buckets; snapshotProfile is sorted by path.
    for (std::size_t i = 1; i < buckets.size(); ++i)
        EXPECT_LT(buckets[i - 1].path, buckets[i].path);
}

TEST_F(SpanProfileTest, SelfTimeExcludesDirectChildren)
{
    SpanTracer &tracer = SpanTracer::global();
    tracer.setEnabled(true);
    {
        ScopedSpan outer("outer");
        spinFor(std::chrono::microseconds(200));
        {
            ScopedSpan inner("inner");
            spinFor(std::chrono::microseconds(500));
        }
        spinFor(std::chrono::microseconds(200));
    }
    tracer.setEnabled(false);

    const auto buckets = tracer.snapshotProfile();
    const ProfileBucket *outer = findBucket(buckets, "outer");
    const ProfileBucket *inner = findBucket(buckets, "outer;inner");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    // Inclusive covers the whole scope; self excludes the child.
    EXPECT_GE(outer->inclNs, inner->inclNs);
    EXPECT_EQ(outer->selfNs, outer->inclNs - inner->inclNs);
    // A leaf's self time IS its inclusive time.
    EXPECT_EQ(inner->selfNs, inner->inclNs);
    // The child spun ~500us of the outer ~900us scope, so outer self
    // must be strictly less than outer inclusive.
    EXPECT_LT(outer->selfNs, outer->inclNs);
}

TEST_F(SpanProfileTest, ProfileCountsAreExactUnderRingEviction)
{
    SpanTracer &tracer = SpanTracer::global();
    tracer.setRingCapacity(16);
    tracer.setEnabled(true);
    constexpr int kSpans = 300;
    for (int i = 0; i < kSpans; ++i) {
        ScopedSpan span("evicted.loop");
    }
    tracer.setEnabled(false);

    EXPECT_GT(tracer.droppedCount(), 0u);
    EXPECT_LE(tracer.eventCount(), 17u);
    const auto buckets = tracer.snapshotProfile();
    const ProfileBucket *loop = findBucket(buckets, "evicted.loop");
    ASSERT_NE(loop, nullptr);
    EXPECT_EQ(loop->count, static_cast<std::uint64_t>(kSpans));
}

TEST_F(SpanProfileTest, ThreadsFoldIntoSharedBuckets)
{
    SpanTracer &tracer = SpanTracer::global();
    tracer.setEnabled(true);
    constexpr int kThreads = 4;
    constexpr int kPerThread = 25;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([] {
            for (int i = 0; i < kPerThread; ++i) {
                ScopedSpan outer("mt.outer");
                ScopedSpan inner("mt.inner");
            }
        });
    }
    for (std::thread &w : workers)
        w.join();
    tracer.setEnabled(false);

    const auto buckets = tracer.snapshotProfile();
    const ProfileBucket *outer = findBucket(buckets, "mt.outer");
    const ProfileBucket *inner =
        findBucket(buckets, "mt.outer;mt.inner");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(outer->count,
              static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(inner->count,
              static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST_F(SpanProfileTest, SelfTimeByNameFoldsAcrossParents)
{
    SpanTracer &tracer = SpanTracer::global();
    tracer.setEnabled(true);
    {
        ScopedSpan a("ctx.a");
        ScopedSpan leaf("shared.leaf");
        spinFor(std::chrono::microseconds(100));
    }
    {
        ScopedSpan b("ctx.b");
        ScopedSpan leaf("shared.leaf");
        spinFor(std::chrono::microseconds(100));
    }
    tracer.setEnabled(false);

    const auto byName = tracer.selfTimeByName();
    std::uint64_t leafSelf = 0;
    bool found = false;
    for (const auto &[name, selfNs] : byName) {
        if (name == "shared.leaf") {
            leafSelf = selfNs;
            found = true;
        }
    }
    ASSERT_TRUE(found);

    const auto buckets = tracer.snapshotProfile();
    const ProfileBucket *underA = findBucket(buckets, "ctx.a;shared.leaf");
    const ProfileBucket *underB = findBucket(buckets, "ctx.b;shared.leaf");
    ASSERT_NE(underA, nullptr);
    ASSERT_NE(underB, nullptr);
    EXPECT_EQ(leafSelf, underA->selfNs + underB->selfNs);
    // Sorted by self time descending.
    for (std::size_t i = 1; i < byName.size(); ++i)
        EXPECT_GE(byName[i - 1].second, byName[i].second);
}

TEST_F(SpanProfileTest, ProfileJsonMatchesSchemaAndSnapshot)
{
    SpanTracer &tracer = SpanTracer::global();
    tracer.setEnabled(true);
    {
        ScopedSpan outer("json.outer");
        ScopedSpan inner("json.inner");
    }
    tracer.setEnabled(false);

    const JsonValue doc = JsonValue::parse(tracer.profileJson());
    EXPECT_EQ(doc.at("schema_version").asInt(), 1);
    const auto &spans = doc.at("spans").asArray();
    const auto buckets = tracer.snapshotProfile();
    ASSERT_EQ(spans.size(), buckets.size());
    for (std::size_t i = 0; i < spans.size(); ++i) {
        EXPECT_EQ(spans[i].at("path").asString(), buckets[i].path);
        EXPECT_EQ(spans[i].at("name").asString(), buckets[i].name);
        EXPECT_EQ(spans[i].at("count").asUint(), buckets[i].count);
        EXPECT_EQ(spans[i].at("incl_ns").asUint(), buckets[i].inclNs);
        EXPECT_EQ(spans[i].at("self_ns").asUint(), buckets[i].selfNs);
    }
}

TEST_F(SpanProfileTest, WriteProfileJsonProducesALoadableFile)
{
    SpanTracer &tracer = SpanTracer::global();
    tracer.setEnabled(true);
    {
        ScopedSpan span("file.span");
    }
    tracer.setEnabled(false);

    const std::string path =
        ::testing::TempDir() + "/span_profile_test.json";
    ASSERT_TRUE(tracer.writeProfileJson(path));
    std::ifstream in(path);
    std::stringstream text;
    text << in.rdbuf();
    const JsonValue doc = JsonValue::parse(text.str());
    EXPECT_EQ(doc.at("spans").asArray().size(), 1u);
    std::remove(path.c_str());
}

TEST_F(SpanProfileTest, ClearDropsProfileBuckets)
{
    SpanTracer &tracer = SpanTracer::global();
    tracer.setEnabled(true);
    {
        ScopedSpan span("clear.me");
    }
    tracer.setEnabled(false);
    ASSERT_FALSE(tracer.snapshotProfile().empty());
    tracer.clear();
    EXPECT_TRUE(tracer.snapshotProfile().empty());
}

} // namespace
} // namespace eval
