/** Tests for the span tracer: disabled-path inertness, nesting and
 *  arg round-trip through the Perfetto trace_event JSON writer,
 *  multi-thread interleaving, and ring eviction. */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "cmp/cmp_system.hh"
#include "core/eval.hh"
#include "trace/span_tracer.hh"
#include "valid/json_value.hh"

namespace eval {
namespace {

/** Reset the global tracer around every test. */
class SpanTracerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        SpanTracer &tracer = SpanTracer::global();
        tracer.setEnabled(false);
        tracer.clear();
        tracer.setRingCapacity(SpanTracer::kDefaultRingCapacity);
    }

    void
    TearDown() override
    {
        SetUp();
    }
};

/** Find the first "X" event with @p name; nullptr when absent. */
const JsonValue *
findEvent(const JsonValue &doc, const std::string &name)
{
    for (const JsonValue &ev : doc.at("traceEvents").asArray()) {
        if (ev.at("ph").asString() == "X" &&
            ev.at("name").asString() == name) {
            return &ev;
        }
    }
    return nullptr;
}

TEST_F(SpanTracerTest, DisabledTracerRecordsNothing)
{
    SpanTracer &tracer = SpanTracer::global();
    ASSERT_FALSE(tracer.enabled());
    {
        ScopedSpan span("test.disabled");
        span.arg("ignored", 42);
        EXPECT_STREQ(SpanTracer::currentSpanName(), "");
    }
    EXPECT_EQ(tracer.eventCount(), 0u);
    EXPECT_EQ(tracer.droppedCount(), 0u);
}

TEST_F(SpanTracerTest, CurrentSpanNameTracksTheOpenStack)
{
    SpanTracer &tracer = SpanTracer::global();
    tracer.setEnabled(true);
    EXPECT_STREQ(SpanTracer::currentSpanName(), "");
    {
        ScopedSpan outer("test.outer");
        EXPECT_STREQ(SpanTracer::currentSpanName(), "test.outer");
        {
            ScopedSpan inner("test.inner");
            EXPECT_STREQ(SpanTracer::currentSpanName(), "test.inner");
        }
        EXPECT_STREQ(SpanTracer::currentSpanName(), "test.outer");
    }
    EXPECT_STREQ(SpanTracer::currentSpanName(), "");
}

TEST_F(SpanTracerTest, NestedSpansAndArgsRoundTripThroughJson)
{
    SpanTracer &tracer = SpanTracer::global();
    tracer.setEnabled(true);
    {
        ScopedSpan outer("test.outer");
        outer.arg("count", std::size_t{7});
        outer.arg("signed", -3);
        outer.arg("ratio", 0.25);
        outer.arg("flag", true);
        outer.arg("label", std::string("phase-a"));
        {
            ScopedSpan inner("test.inner");
            inner.arg("note", "nested");
        }
    }
    tracer.setEnabled(false);
    ASSERT_EQ(tracer.eventCount(), 2u);

    // Stored events: inner closes first, nests one level deep, and is
    // time-contained by the outer span.
    const std::vector<SpanEvent> events = tracer.snapshotEvents();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].name, "test.outer");
    EXPECT_EQ(events[0].depth, 0);
    EXPECT_EQ(events[1].name, "test.inner");
    EXPECT_EQ(events[1].depth, 1);
    EXPECT_LE(events[0].startNs, events[1].startNs);
    EXPECT_LE(events[1].startNs + events[1].durNs,
              events[0].startNs + events[0].durNs);

    // Exported JSON: well-formed trace_event document whose args
    // survive with their types.
    const JsonValue doc = JsonValue::parse(tracer.traceEventJson());
    EXPECT_EQ(doc.at("displayTimeUnit").asString(), "ms");
    const JsonValue *outer = findEvent(doc, "test.outer");
    ASSERT_NE(outer, nullptr);
    EXPECT_EQ(outer->at("args").at("count").asInt(), 7);
    EXPECT_EQ(outer->at("args").at("signed").asInt(), -3);
    EXPECT_DOUBLE_EQ(outer->at("args").at("ratio").asDouble(), 0.25);
    EXPECT_TRUE(outer->at("args").at("flag").asBool());
    EXPECT_EQ(outer->at("args").at("label").asString(), "phase-a");
    const JsonValue *inner = findEvent(doc, "test.inner");
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(inner->at("args").at("note").asString(), "nested");
    EXPECT_GE(inner->at("ts").asDouble(), outer->at("ts").asDouble());
}

TEST_F(SpanTracerTest, ThreadsGetDistinctTidsAndMetadata)
{
    SpanTracer &tracer = SpanTracer::global();
    tracer.setEnabled(true);

    // Two explicit worker threads (the host may be single-core, so
    // never rely on hardware_concurrency for the multi-thread case).
    std::atomic<int> started{0};
    auto work = [&started](const char *name) {
        started.fetch_add(1);
        while (started.load() < 2) {
        }
        for (int i = 0; i < 4; ++i) {
            ScopedSpan span(name);
            span.arg("iter", i);
        }
    };
    std::thread a(work, "test.worker_a");
    std::thread b(work, "test.worker_b");
    a.join();
    b.join();
    tracer.setEnabled(false);

    std::set<int> tids;
    for (const SpanEvent &ev : tracer.snapshotEvents())
        tids.insert(ev.tid);
    EXPECT_GE(tids.size(), 2u);

    // The export carries per-thread metadata and X events on at least
    // two distinct tids.
    const JsonValue doc = JsonValue::parse(tracer.traceEventJson());
    std::set<int> jsonTids;
    std::set<int> namedTids;
    for (const JsonValue &ev : doc.at("traceEvents").asArray()) {
        if (ev.at("ph").asString() == "X")
            jsonTids.insert(static_cast<int>(ev.at("tid").asInt()));
        if (ev.at("ph").asString() == "M" &&
            ev.at("name").asString() == "thread_name") {
            namedTids.insert(static_cast<int>(ev.at("tid").asInt()));
        }
    }
    EXPECT_GE(jsonTids.size(), 2u);
    for (int tid : jsonTids)
        EXPECT_TRUE(namedTids.count(tid)) << "no thread_name for tid "
                                          << tid;
}

TEST_F(SpanTracerTest, FullRingEvictsOldestAndCountsDrops)
{
    SpanTracer &tracer = SpanTracer::global();
    tracer.setRingCapacity(16);
    tracer.setEnabled(true);
    for (int i = 0; i < 100; ++i) {
        ScopedSpan span("test.evict");
        span.arg("i", i);
    }
    tracer.setEnabled(false);

    EXPECT_EQ(tracer.eventCount(), 16u);
    EXPECT_EQ(tracer.droppedCount(), 84u);

    // The survivors are the most recent window.
    const std::vector<SpanEvent> events = tracer.snapshotEvents();
    ASSERT_EQ(events.size(), 16u);
    EXPECT_EQ(events.front().args.at(0).second, "84");
    EXPECT_EQ(events.back().args.at(0).second, "99");

    tracer.clear();
    EXPECT_EQ(tracer.eventCount(), 0u);
    EXPECT_EQ(tracer.droppedCount(), 0u);
}

TEST_F(SpanTracerTest, RealPipelineSpansCoverSubsystemsAcrossThreads)
{
    SpanTracer &tracer = SpanTracer::global();
    tracer.setEnabled(true);

    // A tiny but real experiment: two chips' CMP mixes, one per
    // explicit thread (the host may be single-core, so the pool's
    // own workers cannot be relied on to take work).  This is the
    // pipeline `eval_cli run --trace-spans` traces.
    ExperimentConfig cfg;
    cfg.seed = 42;
    cfg.chips = 2;
    cfg.simInsts = 10000;
    ExperimentContext ctx(cfg);
    const WorkloadMix mix = mixedMix();
    auto runChip = [&ctx, &mix](std::size_t chip) {
        CmpSystem cmp(ctx, chip);
        cmp.runMix(mix, EnvironmentKind::TS_ASV, AdaptScheme::ExhDyn);
    };
    std::thread a(runChip, 0);
    std::thread b(runChip, 1);
    a.join();
    b.join();
    tracer.setEnabled(false);

    std::set<std::string> subsystems;
    std::set<int> tids;
    for (const SpanEvent &ev : tracer.snapshotEvents()) {
        subsystems.insert(ev.name.substr(0, ev.name.find('.')));
        tids.insert(ev.tid);
    }
    // cmp, controller, optimizer, fuzzy, thermal, pe at minimum.
    EXPECT_GE(subsystems.size(), 5u)
        << ::testing::PrintToString(subsystems);
    EXPECT_GE(tids.size(), 2u);

    // And the export is loadable trace_event JSON carrying the same.
    const JsonValue doc = JsonValue::parse(tracer.traceEventJson());
    std::set<std::string> jsonSubsystems;
    for (const JsonValue &ev : doc.at("traceEvents").asArray()) {
        if (ev.at("ph").asString() == "X") {
            const std::string &name = ev.at("name").asString();
            jsonSubsystems.insert(name.substr(0, name.find('.')));
        }
    }
    EXPECT_GE(jsonSubsystems.size(), 5u);
}

TEST_F(SpanTracerTest, WriteJsonProducesALoadableFile)
{
    SpanTracer &tracer = SpanTracer::global();
    tracer.setEnabled(true);
    {
        ScopedSpan span("test.write");
    }
    tracer.setEnabled(false);

    const std::string path =
        ::testing::TempDir() + "span_tracer_test.json";
    ASSERT_TRUE(tracer.writeJson(path));
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream os;
    os << in.rdbuf();
    const JsonValue doc = JsonValue::parse(os.str());
    EXPECT_NE(findEvent(doc, "test.write"), nullptr);
    std::remove(path.c_str());

    EXPECT_FALSE(tracer.writeJson("/nonexistent-dir/spans.json"));
}

} // namespace
} // namespace eval
