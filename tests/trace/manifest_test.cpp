/** Tests for run provenance: manifest content, the config hash, and
 *  the crash-safe ExitFlush registry. */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include <sys/wait.h>
#include <unistd.h>

#include "trace/exit_flush.hh"
#include "trace/manifest.hh"
#include "valid/json_value.hh"

namespace eval {
namespace {

/** The manifest is process-global; reset it around every test. */
class ManifestTest : public ::testing::Test
{
  protected:
    void SetUp() override { RunManifest::global().reset(); }
    void TearDown() override { RunManifest::global().reset(); }
};

TEST_F(ManifestTest, Fnv1aMatchesKnownVectors)
{
    // Published FNV-1a 64-bit test vectors.
    EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
    EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ULL);
}

TEST_F(ManifestTest, BuildIdentityIsNeverEmpty)
{
    EXPECT_NE(std::string(buildGitSha()), "");
    EXPECT_NE(std::string(buildType()), "");
    EXPECT_NE(std::string(buildCompiler()), "");
    EXPECT_NE(std::string(buildSanitizer()), "");
    EXPECT_GT(peakRssKb(), 0);
}

TEST_F(ManifestTest, JsonCarriesEverythingThatWasSet)
{
    RunManifest &m = RunManifest::global();
    m.setTool("manifest_test");
    m.setSeed(12345);
    m.setThreads(3);
    m.setConfig("seed=12345;chips=2");
    m.addStage("warmup", 0.25);
    m.addStage("run", 1.5);
    m.setOutput("stats", "stats.json");
    m.setOutput("stats", "stats2.json"); // overwrite, not duplicate

    const JsonValue doc = JsonValue::parse(m.json());
    EXPECT_EQ(doc.at("schema_version").asInt(), 1);
    EXPECT_EQ(doc.at("tool").asString(), "manifest_test");
    EXPECT_EQ(doc.at("build").at("type").asString(), buildType());
    EXPECT_EQ(doc.at("run").at("seed").asInt(), 12345);
    EXPECT_EQ(doc.at("run").at("threads").asInt(), 3);
    EXPECT_EQ(doc.at("run").at("config").asString(),
              "seed=12345;chips=2");

    // config_hash is the FNV-1a of the fingerprint, rendered 0x%016llx.
    char expect[32];
    std::snprintf(expect, sizeof expect, "0x%016llx",
                  static_cast<unsigned long long>(
                      fnv1a("seed=12345;chips=2")));
    EXPECT_EQ(doc.at("run").at("config_hash").asString(), expect);

    ASSERT_EQ(doc.at("stages").size(), 2u);
    EXPECT_EQ(doc.at("stages").asArray()[1].at("name").asString(),
              "run");
    EXPECT_DOUBLE_EQ(
        doc.at("stages").asArray()[1].at("wall_s").asDouble(), 1.5);
    ASSERT_EQ(doc.at("outputs").size(), 1u);
    EXPECT_EQ(doc.at("outputs").at("stats").asString(), "stats2.json");
    EXPECT_GT(doc.at("peak_rss_kb").asInt(), 0);
}

TEST_F(ManifestTest, ResetForgetsRunStateButNotBuildIdentity)
{
    RunManifest &m = RunManifest::global();
    m.setTool("before");
    m.addStage("s", 1.0);
    m.reset();
    const JsonValue doc = JsonValue::parse(m.json());
    EXPECT_NE(doc.at("tool").asString(), "before");
    EXPECT_EQ(doc.at("stages").size(), 0u);
    EXPECT_EQ(doc.at("git_sha").asString(), buildGitSha());
}

TEST_F(ManifestTest, WriteProducesAParsableFile)
{
    RunManifest &m = RunManifest::global();
    m.setTool("manifest_test");
    const std::string path = ::testing::TempDir() + "manifest_test.json";
    ASSERT_TRUE(m.write(path));
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream os;
    os << in.rdbuf();
    EXPECT_EQ(JsonValue::parse(os.str()).at("tool").asString(),
              "manifest_test");
    std::remove(path.c_str());
    EXPECT_FALSE(m.write("/nonexistent-dir/manifest.json"));
}

TEST(ExitFlushTest, ClosuresRunOnceAndClear)
{
    ExitFlush &flush = ExitFlush::global();
    flush.runNow(); // drain anything a prior test registered

    int runs = 0;
    flush.add("test.counter", [&runs] { ++runs; });
    EXPECT_EQ(flush.pending(), 1u);
    flush.runNow();
    EXPECT_EQ(runs, 1);
    EXPECT_EQ(flush.pending(), 0u);
    flush.runNow(); // second call must not re-run the closure
    EXPECT_EQ(runs, 1);
}

TEST(ExitFlushTest, RemoveUnregistersWithoutRunning)
{
    ExitFlush &flush = ExitFlush::global();
    flush.runNow();

    int runs = 0;
    const int id = flush.add("test.removed", [&runs] { ++runs; });
    flush.add("test.kept", [&runs] { runs += 10; });
    flush.remove(id);
    EXPECT_EQ(flush.pending(), 1u);
    flush.runNow();
    EXPECT_EQ(runs, 10);
}

TEST(ExitFlushTest, ThrowingClosureDoesNotBlockOthers)
{
    ExitFlush &flush = ExitFlush::global();
    flush.runNow();

    bool ran = false;
    flush.add("test.throws", [] { throw std::runtime_error("boom"); });
    flush.add("test.after", [&ran] { ran = true; });
    flush.runNow();
    EXPECT_TRUE(ran);
    EXPECT_EQ(flush.pending(), 0u);
}

TEST(PeakRssTest, CountsReapedChildrenNotJustSelf)
{
    // The shard supervisor's memory peak lives in its forked workers.
    // Fork a child that touches ~128 MiB, reap it, and require the
    // reported peak to cover it — RUSAGE_SELF alone would miss it.
    const long before = peakRssKb();
    ASSERT_GT(before, 0);

    constexpr std::size_t kBytes = 128u << 20;
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: touch every page so ru_maxrss actually grows.
        volatile char *block =
            static_cast<char *>(std::malloc(kBytes));
        if (block == nullptr)
            _exit(1);
        std::memset(const_cast<char *>(block), 0x5a, kBytes);
        _exit(block[kBytes - 1] == 0x5a ? 0 : 1);
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0);

    // The child peaked at >= 128 MiB; allow generous slack for the
    // parent's own footprint comparisons by only requiring growth to
    // most of the child's allocation.
    const long after = peakRssKb();
    EXPECT_GE(after, static_cast<long>(kBytes >> 10));
    EXPECT_GE(after, before);
}

} // namespace
} // namespace eval
