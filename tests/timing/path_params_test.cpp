/** Tests for per-subsystem path-population defaults (array geometry,
 *  redundancy repair, and the SRAM-Razor L1 margin). */

#include <gtest/gtest.h>

#include "timing/error_model.hh"
#include "timing/path_population.hh"
#include "variation/chip.hh"

namespace eval {
namespace {

struct Fixture
{
    ProcessParams params;
    ChipFactory factory{params, 321};
    Chip chip{factory.manufacture()};
};

TEST(PathParams, CachesGetRazorMarginAndRepair)
{
    const PathPopulationParams dc = defaultPathParams(SubsystemId::Dcache);
    EXPECT_DOUBLE_EQ(dc.structuralScale, kRazorL1Margin);
    EXPECT_GT(dc.memoryRepairedFraction, 0.0);
    EXPECT_EQ(dc.memoryTotalCells, 65536u);

    const PathPopulationParams iq = defaultPathParams(SubsystemId::IntQ);
    EXPECT_DOUBLE_EQ(iq.structuralScale, 1.0);
    EXPECT_DOUBLE_EQ(iq.memoryRepairedFraction, 0.0);
}

TEST(PathParams, SmallArraysHaveShallowerTails)
{
    // A 128-row register file cannot contain a 4.5-sigma cell; its
    // worst path is set by its own size.  The 8K-cell queue CAM digs
    // deeper into the tail, so (same location, same structural wall)
    // its fvar is lower.
    Fixture f;
    const OperatingConditions corner =
        OperatingConditions::nominal(f.params);

    auto fvarWithCells = [&f, &corner](std::size_t cells) {
        PathPopulationParams pp;
        pp.memoryTotalCells = cells;
        Rng rng = f.chip.forkRng(0x7A11);   // identical draw stream
        const PathPopulation pop = buildPathPopulation(
            f.chip, 0, SubsystemId::IntReg, pp, rng);
        return StageErrorModel(f.params, std::move(pop)).fvar(corner);
    };
    EXPECT_GT(fvarWithCells(128), fvarWithCells(8192));
}

TEST(PathParams, RepairRaisesCacheFvar)
{
    Fixture f;
    const OperatingConditions corner =
        OperatingConditions::nominal(f.params);

    auto fvarWithRepair = [&f, &corner](double repaired) {
        PathPopulationParams pp = defaultPathParams(SubsystemId::Dcache);
        pp.memoryRepairedFraction = repaired;
        Rng rng = f.chip.forkRng(0xD0C7);
        const PathPopulation pop = buildPathPopulation(
            f.chip, 0, SubsystemId::Dcache, pp, rng);
        return StageErrorModel(f.params, std::move(pop)).fvar(corner);
    };
    EXPECT_GT(fvarWithRepair(0.01), fvarWithRepair(0.0));
}

TEST(PathParams, RazorMarginSpeedsCachesByItsFactor)
{
    Fixture f;
    const OperatingConditions corner =
        OperatingConditions::nominal(f.params);
    PathPopulationParams with = defaultPathParams(SubsystemId::Icache);
    PathPopulationParams without = with;
    without.structuralScale = 1.0;

    Rng rngA = f.chip.forkRng(0x1CA);
    Rng rngB = f.chip.forkRng(0x1CA);
    StageErrorModel a(f.params,
                      buildPathPopulation(f.chip, 0, SubsystemId::Icache,
                                          with, rngA));
    StageErrorModel b(f.params,
                      buildPathPopulation(f.chip, 0, SubsystemId::Icache,
                                          without, rngB));
    EXPECT_NEAR(a.fvar(corner) * kRazorL1Margin, b.fvar(corner),
                0.01 * b.fvar(corner));
}

TEST(PathParams, EveryMemoryTypeHasGeometry)
{
    for (std::size_t i = 0; i < kNumSubsystems; ++i) {
        const auto id = static_cast<SubsystemId>(i);
        const PathPopulationParams pp = defaultPathParams(id);
        EXPECT_GE(pp.memoryTotalCells, 64u) << i;
        EXPECT_GT(pp.structuralScale, 0.5) << i;
    }
}

} // namespace
} // namespace eval
