/** Tests for the alpha-power delay model and Eq 9 Vt modulation. */

#include <gtest/gtest.h>

#include "timing/alpha_power.hh"

namespace eval {
namespace {

ProcessParams
params()
{
    return ProcessParams{};
}

TEST(EffectiveVt, NominalConditions)
{
    const ProcessParams p = params();
    const OperatingConditions corner = OperatingConditions::nominal(p);
    const double vt = effectiveVt(p, p.vtMean, corner);
    // At the design corner only the temperature term is active.
    EXPECT_NEAR(vt,
                p.vtMean + p.k1 * (p.tempNominalC - p.vtRefTempC), 1e-12);
}

TEST(EffectiveVt, ForwardBodyBiasLowersVt)
{
    const ProcessParams p = params();
    OperatingConditions op = OperatingConditions::nominal(p);
    const double base = effectiveVt(p, p.vtMean, op);
    op.vbb = 0.5;   // FBB
    EXPECT_LT(effectiveVt(p, p.vtMean, op), base);
    op.vbb = -0.5;  // RBB
    EXPECT_GT(effectiveVt(p, p.vtMean, op), base);
}

TEST(EffectiveVt, HigherVddLowersVtViaDibl)
{
    const ProcessParams p = params();
    OperatingConditions op = OperatingConditions::nominal(p);
    const double base = effectiveVt(p, p.vtMean, op);
    op.vdd = 1.2;
    EXPECT_LT(effectiveVt(p, p.vtMean, op), base);
}

TEST(GateDelay, UnityAtCorner)
{
    const ProcessParams p = params();
    const OperatingConditions corner = OperatingConditions::nominal(p);
    EXPECT_NEAR(gateDelayFactor(p, p.vtMean, p.leffMean, corner), 1.0,
                1e-12);
}

TEST(GateDelay, HigherVtIsSlower)
{
    const ProcessParams p = params();
    const OperatingConditions corner = OperatingConditions::nominal(p);
    EXPECT_GT(gateDelayFactor(p, p.vtMean + 0.02, p.leffMean, corner),
              1.0);
    EXPECT_LT(gateDelayFactor(p, p.vtMean - 0.02, p.leffMean, corner),
              1.0);
}

TEST(GateDelay, LongerChannelIsSlower)
{
    const ProcessParams p = params();
    const OperatingConditions corner = OperatingConditions::nominal(p);
    EXPECT_GT(gateDelayFactor(p, p.vtMean, 1.05, corner), 1.0);
    EXPECT_LT(gateDelayFactor(p, p.vtMean, 0.95, corner), 1.0);
}

TEST(GateDelay, HigherVddIsFaster)
{
    const ProcessParams p = params();
    OperatingConditions op = OperatingConditions::nominal(p);
    op.vdd = 1.2;
    EXPECT_LT(gateDelayFactor(p, p.vtMean, p.leffMean, op), 1.0);
    op.vdd = 0.8;
    EXPECT_GT(gateDelayFactor(p, p.vtMean, p.leffMean, op), 1.0);
}

TEST(GateDelay, HotterIsSlower)
{
    const ProcessParams p = params();
    OperatingConditions op = OperatingConditions::nominal(p);
    op.tempC = 55.0;   // cooler than the 85C corner
    EXPECT_LT(gateDelayFactor(p, p.vtMean, p.leffMean, op), 1.0);
    op.tempC = 100.0;
    EXPECT_GT(gateDelayFactor(p, p.vtMean, p.leffMean, op), 1.0);
}

TEST(GateDelay, ForwardBiasIsFaster)
{
    const ProcessParams p = params();
    OperatingConditions op = OperatingConditions::nominal(p);
    op.vbb = 0.5;
    EXPECT_LT(gateDelayFactor(p, p.vtMean, p.leffMean, op), 1.0);
}

TEST(GateDelay, NonFunctionalWhenVddBelowVt)
{
    ProcessParams p = params();
    OperatingConditions op = OperatingConditions::nominal(p);
    op.vdd = 0.10;   // below threshold
    EXPECT_GE(gateDelayFactor(p, p.vtMean, p.leffMean, op),
              kNonFunctionalDelayFactor);
}

TEST(GateDelay, VariationGainAmplifiesDeviationOnly)
{
    ProcessParams weak = params();
    weak.delayVariationGain = 1.0;
    ProcessParams strong = params();
    strong.delayVariationGain = 3.0;
    const OperatingConditions corner =
        OperatingConditions::nominal(weak);

    // Nominal device: gain must not matter.
    EXPECT_NEAR(gateDelayFactor(strong, strong.vtMean, 1.0, corner),
                gateDelayFactor(weak, weak.vtMean, 1.0, corner), 1e-12);

    // Deviant device: stronger gain, stronger slowdown.
    const double dWeak =
        gateDelayFactor(weak, weak.vtMean + 0.01, 1.0, corner);
    const double dStrong =
        gateDelayFactor(strong, strong.vtMean + 0.01, 1.0, corner);
    EXPECT_GT(dStrong, dWeak);
}

/** Property sweep: delay decreases monotonically with Vdd. */
class VddSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(VddSweep, MonotoneInVdd)
{
    const ProcessParams p = params();
    const double vt0 = GetParam();
    double prev = 1e12;
    for (double vdd = 0.80; vdd <= 1.21; vdd += 0.05) {
        OperatingConditions op{vdd, 0.0, 70.0};
        const double d = gateDelayFactor(p, vt0, 1.0, op);
        EXPECT_LT(d, prev) << "vdd " << vdd;
        prev = d;
    }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, VddSweep,
                         ::testing::Values(0.12, 0.15, 0.18, 0.21));

} // namespace
} // namespace eval
