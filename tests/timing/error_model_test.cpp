/** Tests for path populations and the VATS PE(f) error model. */

#include <gtest/gtest.h>

#include "timing/error_model.hh"
#include "timing/path_population.hh"
#include "variation/chip.hh"

namespace eval {
namespace {

struct Fixture
{
    ProcessParams params;
    ChipFactory factory{params, 99};
    Chip chip{factory.manufacture()};
    Chip ideal{factory.manufactureIdeal()};
};

PathPopulation
build(const Chip &chip, SubsystemId id, PathPopulationParams pp = {})
{
    Rng rng = chip.forkRng(0x1234 +
                           static_cast<std::uint64_t>(id) * 7);
    return buildPathPopulation(chip, 0, id, pp, rng);
}

TEST(PathPopulation, IdealChipMeetsNominalPeriodExactly)
{
    Fixture f;
    const PathPopulation pop = build(f.ideal, SubsystemId::Decode);
    double maxDelay = 0.0;
    for (const auto &p : pop.paths)
        maxDelay = std::max(maxDelay, p.delayRef);
    // The critical-path wall: slowest structural path == Tnom.
    EXPECT_NEAR(maxDelay, 1.0 / f.params.freqNominal,
                0.01 / f.params.freqNominal);
}

TEST(PathPopulation, VariationMakesSomePathsSlower)
{
    Fixture f;
    const PathPopulation pop = build(f.chip, SubsystemId::Icache);
    double maxDelay = 0.0;
    for (const auto &p : pop.paths)
        maxDelay = std::max(maxDelay, p.delayRef);
    // With a 4+ sigma memory tail the slowest cell should exceed Tnom.
    EXPECT_GT(maxDelay, 1.0 / f.params.freqNominal);
}

TEST(PathPopulation, SubsystemMeansTrackTheMap)
{
    Fixture f;
    const PathPopulation pop = build(f.chip, SubsystemId::Dcache);
    const double expected = f.chip.subsystemVtSys(0, SubsystemId::Dcache);
    EXPECT_NEAR(pop.vt0Mean, expected, 1e-12);
}

TEST(PathPopulation, LowSlopeKeepsSlowestStructuralPath)
{
    Fixture f;
    PathPopulationParams normal;
    PathPopulationParams low;
    low.lowSlope = true;
    // Use the ideal chip so only the structural transform acts.
    const PathPopulation a = build(f.ideal, SubsystemId::IntALU, normal);
    const PathPopulation b = build(f.ideal, SubsystemId::IntALU, low);
    auto maxOf = [](const PathPopulation &p) {
        double m = 0.0;
        for (const auto &path : p.paths)
            m = std::max(m, path.delayRef);
        return m;
    };
    auto meanOf = [](const PathPopulation &p) {
        double s = 0.0;
        for (const auto &path : p.paths)
            s += path.delayRef;
        return s / p.paths.size();
    };
    EXPECT_NEAR(maxOf(a), maxOf(b), 0.02 * maxOf(a));
    EXPECT_LT(meanOf(b), meanOf(a));   // bulk moved away from the wall
}

TEST(PathPopulation, ShiftFactorScalesAllDelays)
{
    Fixture f;
    PathPopulationParams shifted;
    shifted.shiftFactor = 0.92;
    const PathPopulation a = build(f.ideal, SubsystemId::IntQ);
    const PathPopulation b = build(f.ideal, SubsystemId::IntQ, shifted);
    ASSERT_EQ(a.paths.size(), b.paths.size());
    for (std::size_t i = 0; i < a.paths.size(); ++i)
        EXPECT_NEAR(b.paths[i].delayRef, 0.92 * a.paths[i].delayRef,
                    1e-15);
}

TEST(StageErrorModel, ZeroErrorsBelowFvar)
{
    Fixture f;
    StageErrorModel model(f.params, build(f.chip, SubsystemId::Icache));
    const OperatingConditions corner =
        OperatingConditions::nominal(f.params);
    const double fvar = model.fvar(corner);
    EXPECT_DOUBLE_EQ(
        model.errorRatePerAccess(1.0 / (0.99 * fvar), corner), 0.0);
    EXPECT_GT(model.errorRatePerAccess(1.0 / (1.05 * fvar), corner),
              0.0);
}

TEST(StageErrorModel, ErrorRateMonotoneInFrequency)
{
    Fixture f;
    StageErrorModel model(f.params, build(f.chip, SubsystemId::Decode));
    const OperatingConditions corner =
        OperatingConditions::nominal(f.params);
    double prev = -1.0;
    for (double fr = 0.7; fr <= 1.6; fr += 0.05) {
        const double pe = model.errorRatePerAccess(
            1.0 / (fr * f.params.freqNominal), corner);
        EXPECT_GE(pe, prev);
        prev = pe;
    }
    EXPECT_GT(prev, 0.5);   // deep overclock fails nearly always
}

TEST(StageErrorModel, MemoryOnsetSteeperThanLogic)
{
    // Figure 8(a): memory structures have a rapid error onset, logic a
    // gradual one.  5% past the error-free frequency, a memory array
    // is already failing on most accesses while logic still errs
    // rarely.
    Fixture f;
    StageErrorModel mem(f.params, build(f.chip, SubsystemId::Icache));
    StageErrorModel logic(f.params, build(f.chip, SubsystemId::Decode));
    const OperatingConditions corner =
        OperatingConditions::nominal(f.params);

    auto peBeyondFvar = [&corner](const StageErrorModel &m, double fr) {
        const double f = fr * m.fvar(corner);
        return m.errorRatePerAccess(1.0 / f, corner);
    };
    // 10% past fvar a memory array fails orders of magnitude more
    // often than logic does.
    EXPECT_GT(peBeyondFvar(mem, 1.10), 20.0 * peBeyondFvar(logic, 1.10));
    // Just past fvar, logic errs rarely (the gradual onset TS needs).
    EXPECT_LT(peBeyondFvar(logic, 1.03), 1e-2);
}

TEST(StageErrorModel, HigherVddShiftsCurveRight)
{
    Fixture f;
    StageErrorModel model(f.params, build(f.chip, SubsystemId::IntReg));
    OperatingConditions low = OperatingConditions::nominal(f.params);
    OperatingConditions high = low;
    high.vdd = 1.2;
    EXPECT_GT(model.fvar(high), model.fvar(low));
}

TEST(StageErrorModel, CoolerShiftsCurveRight)
{
    Fixture f;
    StageErrorModel model(f.params, build(f.chip, SubsystemId::IntReg));
    OperatingConditions hot = OperatingConditions::nominal(f.params);
    OperatingConditions cool = hot;
    cool.tempC = 50.0;
    EXPECT_GT(model.fvar(cool), model.fvar(hot));
}

TEST(StageErrorModel, MaxFrequencyForErrorRateRespectsBudget)
{
    Fixture f;
    StageErrorModel model(f.params, build(f.chip, SubsystemId::Decode));
    const OperatingConditions corner =
        OperatingConditions::nominal(f.params);
    for (double budget : {1e-6, 1e-4, 1e-2}) {
        const double fmax = model.maxFrequencyForErrorRate(budget, corner);
        EXPECT_LE(model.errorRatePerAccess(1.0 / fmax, corner),
                  budget * (1.0 + 1e-9));
    }
}

TEST(StageErrorModel, BudgetZeroGivesFvar)
{
    Fixture f;
    StageErrorModel model(f.params, build(f.chip, SubsystemId::DTLB));
    const OperatingConditions corner =
        OperatingConditions::nominal(f.params);
    EXPECT_NEAR(model.maxFrequencyForErrorRate(0.0, corner),
                model.fvar(corner), 1e-3 * model.fvar(corner));
}

TEST(StageErrorModel, WholePopulationWithinBudgetIsUnbounded)
{
    // A budget of 1.0 lets every path fail, so no path constrains the
    // clock and the stage reports the unbounded-frequency sentinel.
    Fixture f;
    StageErrorModel model(f.params, build(f.chip, SubsystemId::IntALU));
    const OperatingConditions corner =
        OperatingConditions::nominal(f.params);
    EXPECT_EQ(model.maxFrequencyForErrorRate(1.0, corner), 1.0e12);
}

TEST(StageErrorModel, NonFunctionalCornerRatesZeroFrequency)
{
    // Vdd below the effective threshold: the stage cannot switch at
    // any frequency, whatever the budget.
    Fixture f;
    StageErrorModel model(f.params, build(f.chip, SubsystemId::Decode));
    const OperatingConditions dead{0.05, 0.0, f.params.tempNominalC};
    EXPECT_EQ(model.maxFrequencyForErrorRate(1e-4, dead), 0.0);
}

TEST(StageErrorModel, BudgetExactlyOnLevelKeepsTheTieInclusive)
{
    // The legacy walk treated PE == budget as within budget (it kept
    // walking down).  Query with budgets equal to precomputed levels
    // and check the returned frequency still meets the budget, and
    // that nudging the budget just below the level strictly lowers
    // (or keeps) the rated frequency.
    Fixture f;
    StageErrorModel model(f.params, build(f.chip, SubsystemId::Icache));
    const OperatingConditions corner =
        OperatingConditions::nominal(f.params);
    const PeSurface &s = model.surface();
    const std::size_t n = s.numPaths();
    for (std::size_t k = 1; k < n; k += n / 11 + 1) {
        const double budget = s.level(k);
        if (budget <= 0.0 || budget >= 1.0)
            continue;
        const double atLevel =
            model.maxFrequencyForErrorRate(budget, corner);
        const double below = model.maxFrequencyForErrorRate(
            budget * (1.0 - 1e-9), corner);
        EXPECT_LE(model.errorRatePerAccess(1.0 / atLevel, corner),
                  budget * (1.0 + 1e-9));
        EXPECT_LE(below, atLevel);
    }
}

/**
 * Differential table-vs-exact contract over a dense (period, Vdd, T)
 * grid.  A relative delay-scale error of delta is exactly a backward
 * perturbation of the queried period, so table-mode PE must sit
 * between the exact PE at periods perturbed by +/- delta
 * (kScaleRelErrorBound).  PE is nonincreasing in period, hence the
 * bracket orientation.
 */
TEST(StageErrorModel, TableModeWithinBackwardErrorBracket)
{
    const bool cacheWas = peCacheEnabled();
    const bool tableWas = peTableEnabled();
    // The memo key does not include the mode, so keep it off while
    // toggling table mode back and forth.
    setPeCacheEnabled(false);

    Fixture f;
    StageErrorModel model(f.params, build(f.chip, SubsystemId::Dcache));
    const double delta = PeSurface::kScaleRelErrorBound;
    const double tNom = 1.0 / f.params.freqNominal;
    for (double vdd = 0.8; vdd <= 1.2; vdd += 0.1) {
        for (double t = 45.0; t <= 105.0; t += 20.0) {
            const OperatingConditions op{vdd, 0.0, t};
            for (double pr = 0.6; pr <= 1.4; pr += 0.02) {
                const double period = pr * tNom;
                setPeTableEnabled(false);
                const double lo =
                    model.errorRatePerAccess(period * (1.0 + delta), op);
                const double hi =
                    model.errorRatePerAccess(period * (1.0 - delta), op);
                setPeTableEnabled(true);
                const double table =
                    model.errorRatePerAccess(period, op);
                ASSERT_GE(table, lo) << "vdd=" << vdd << " T=" << t
                                     << " period=" << period;
                ASSERT_LE(table, hi) << "vdd=" << vdd << " T=" << t
                                     << " period=" << period;
            }
        }
    }

    setPeCacheEnabled(cacheWas);
    setPeTableEnabled(tableWas);
}

TEST(PipelineModel, Eq4SumsActivityWeightedRates)
{
    const std::vector<double> pe{1e-4, 2e-4, 0.0};
    const std::vector<double> rho{1.0, 0.5, 3.0};
    EXPECT_NEAR(processorErrorRate(pe, rho), 1e-4 + 1e-4, 1e-12);
}

/** Property sweep: the error model behaves sanely for every subsystem. */
class AllSubsystems : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(AllSubsystems, FvarWithinPlausibleBand)
{
    Fixture f;
    const auto id = static_cast<SubsystemId>(GetParam());
    StageErrorModel model(f.params, build(f.chip, id));
    const OperatingConditions corner =
        OperatingConditions::nominal(f.params);
    const double fr = model.fvar(corner) / f.params.freqNominal;
    EXPECT_GT(fr, 0.5);
    EXPECT_LT(fr, 1.3);
}

INSTANTIATE_TEST_SUITE_P(Ids, AllSubsystems,
                         ::testing::Range<std::size_t>(0,
                                                       kNumSubsystems));

} // namespace
} // namespace eval
