/** Tests for retuning cycles, the dynamic controller, and Static. */

#include <gtest/gtest.h>

#include "core/environment.hh"
#include "stats/stats.hh"

namespace eval {
namespace {

struct Fixture
{
    ExperimentConfig cfg;
    std::unique_ptr<ExperimentContext> ctx;
    EnvCapabilities caps = environmentCaps(EnvironmentKind::TS_ASV);

    Fixture()
    {
        cfg.chips = 2;
        ctx = std::make_unique<ExperimentContext>(cfg);
    }

    CoreSystemModel &core() { return ctx->coreModel(0, 0); }

    PhaseCharacterization
    phase(const std::string &app, std::size_t idx = 0)
    {
        return ctx->characterizations().get(appByName(app))
            .phases[idx].chr;
    }
};

TEST(Retuning, TooAggressiveConfigIsThrottled)
{
    Fixture f;
    RetuningController ret(f.cfg.constraints, f.caps.knobSpace(), true);
    const PhaseCharacterization ph = f.phase("gzip");

    OperatingPoint op = nominalOperatingPoint(f.cfg.process);
    op.freq = 5.6e9;   // far beyond feasible at nominal voltage
    const RetuneResult res = ret.retune(f.core(), op, ph.act, 65.0);
    EXPECT_EQ(res.outcome, RetuneOutcome::Error);
    EXPECT_LT(res.op.freq, 5.6e9);
    EXPECT_GT(res.steps, 0u);
    EXPECT_TRUE(res.eval.meets(f.cfg.constraints));
}

TEST(Retuning, ConservativeConfigIsRampedUp)
{
    Fixture f;
    RetuningController ret(f.cfg.constraints, f.caps.knobSpace(), true);
    const PhaseCharacterization ph = f.phase("gzip");

    OperatingPoint op = nominalOperatingPoint(f.cfg.process);
    op.freq = 2.4e9;   // far below what the chip can do
    const RetuneResult res = ret.retune(f.core(), op, ph.act, 65.0);
    EXPECT_EQ(res.outcome, RetuneOutcome::LowFreq);
    EXPECT_GT(res.op.freq, 2.4e9);
    EXPECT_TRUE(res.eval.meets(f.cfg.constraints));
}

TEST(Retuning, FinalConfigurationAlwaysMeetsConstraints)
{
    Fixture f;
    RetuningController ret(f.cfg.constraints, f.caps.knobSpace(), true);
    const PhaseCharacterization ph = f.phase("mcf");
    for (double freq : {2.4e9, 3.2e9, 4.0e9, 4.8e9, 5.6e9}) {
        OperatingPoint op = nominalOperatingPoint(f.cfg.process);
        op.freq = freq;
        const RetuneResult res = ret.retune(f.core(), op, ph.act, 65.0);
        EXPECT_TRUE(res.eval.meets(f.cfg.constraints)) << freq;
        const double sensed =
            ret.sensedPower(f.core(), res.eval, res.op.freq);
        EXPECT_LE(sensed, f.cfg.constraints.pMaxW + 1e-9) << freq;
    }
}

TEST(Retuning, ConvergesToSameFrequencyFromBothSides)
{
    // The retuned frequency is the top of the feasible band, so it
    // should not depend on whether we started too high or too low.
    Fixture f;
    RetuningController ret(f.cfg.constraints, f.caps.knobSpace(), true);
    const PhaseCharacterization ph = f.phase("gzip");

    OperatingPoint lo = nominalOperatingPoint(f.cfg.process);
    lo.freq = 2.4e9;
    OperatingPoint hi = lo;
    hi.freq = 5.6e9;
    const RetuneResult fromLo = ret.retune(f.core(), lo, ph.act, 65.0);
    const RetuneResult fromHi = ret.retune(f.core(), hi, ph.act, 65.0);
    EXPECT_NEAR(fromLo.op.freq, fromHi.op.freq, 0.101e9);
}

TEST(DynamicController, SavedConfigurationReused)
{
    Fixture f;
    ExhaustiveOptimizer exh(f.caps, f.cfg.constraints);
    DynamicController ctl(exh, f.caps, f.cfg.constraints, f.cfg.recovery);
    const PhaseCharacterization ph = f.phase("gzip");
    f.core().setAppType(false);

    const PhaseAdaptation first = ctl.adaptPhase(f.core(), 0, ph, 65.0);
    EXPECT_FALSE(first.reusedSaved);
    const PhaseAdaptation second = ctl.adaptPhase(f.core(), 0, ph, 65.0);
    EXPECT_TRUE(second.reusedSaved);
    EXPECT_NEAR(second.op.freq, first.op.freq, 0.101e9);

    ctl.invalidateSaved();
    const PhaseAdaptation third = ctl.adaptPhase(f.core(), 0, ph, 65.0);
    EXPECT_FALSE(third.reusedSaved);
}

TEST(DynamicController, DistinctPhasesTrackedSeparately)
{
    Fixture f;
    ExhaustiveOptimizer exh(f.caps, f.cfg.constraints);
    DynamicController ctl(exh, f.caps, f.cfg.constraints, f.cfg.recovery);
    f.core().setAppType(false);

    const PhaseAdaptation a = ctl.adaptPhase(f.core(), 0,
                                             f.phase("gcc", 0), 65.0);
    const PhaseAdaptation b = ctl.adaptPhase(f.core(), 1,
                                             f.phase("gcc", 1), 65.0);
    EXPECT_FALSE(a.reusedSaved);
    EXPECT_FALSE(b.reusedSaved);
}

TEST(DynamicController, ExhaustiveChoiceNeedsLittleRetuning)
{
    Fixture f;
    ExhaustiveOptimizer exh(f.caps, f.cfg.constraints);
    DynamicController ctl(exh, f.caps, f.cfg.constraints, f.cfg.recovery);
    f.core().setAppType(false);
    const PhaseAdaptation res = ctl.adaptPhase(f.core(), 0,
                                               f.phase("gzip"), 65.0);
    // The exhaustive pick is near-optimal: few single-step moves.
    EXPECT_LE(res.retuneSteps, 4u);
}

TEST(DynamicController, TracedRunRecordsOneDecisionPerPhase)
{
    Fixture f;
    ExhaustiveOptimizer exh(f.caps, f.cfg.constraints);
    DynamicController ctl(exh, f.caps, f.cfg.constraints, f.cfg.recovery);
    f.core().setAppType(false);

    DecisionTrace &trace = DecisionTrace::global();
    trace.clear();
    trace.setEnabled(true);

    const std::size_t phases = 3;
    for (std::size_t p = 0; p < phases; ++p)
        ctl.adaptPhase(f.core(), p, f.phase("gcc", p % 2), 65.0);
    // Re-adapting a known phase reuses the saved config; that reuse is
    // a decision too and must be traced.
    ctl.adaptPhase(f.core(), 0, f.phase("gcc", 0), 65.0);

    trace.setEnabled(false);
    ASSERT_EQ(trace.size(), phases + 1);
    for (std::size_t i = 0; i < phases; ++i) {
        EXPECT_FALSE(trace.at(i).reusedSaved) << i;
        EXPECT_EQ(trace.at(i).phaseId, i);
        EXPECT_GT(trace.at(i).freqHz, 0.0);
        EXPECT_FALSE(trace.at(i).outcome.empty());
    }
    EXPECT_TRUE(trace.at(phases).reusedSaved);
    trace.clear();
}

TEST(StaticQualifier, ConfigurationSafeUnderStress)
{
    Fixture f;
    ExhaustiveOptimizer exh(f.caps, f.cfg.constraints);
    StaticQualifier q(exh, f.caps, f.cfg.constraints, f.cfg.recovery);
    const PhaseCharacterization stress = stressCharacterization(
        f.ctx->powerParams(), f.cfg.recovery, f.cfg.process.freqNominal);

    const OperatingPoint op = q.qualify(f.core(), stress,
                                        f.cfg.constraints.thMaxC);
    const CoreEvaluation ev = f.core().evaluate(op, stress.act,
                                                f.cfg.constraints.thMaxC);
    EXPECT_TRUE(ev.meets(f.cfg.constraints));
}

TEST(Timeline, OverheadIsSmall)
{
    TimelineParams tl;
    // One adaptation with a handful of retuning steps costs well under
    // 0.1% of a 120ms phase (Sec 4.3.3).
    EXPECT_LT(tl.overheadFraction(8), 1e-3);
    EXPECT_GT(tl.overheadFraction(8), 0.0);
    EXPECT_GT(tl.overheadFraction(100), tl.overheadFraction(0));
}

TEST(Outcomes, NamesAreStable)
{
    EXPECT_STREQ(retuneOutcomeName(RetuneOutcome::NoChange), "NoChange");
    EXPECT_STREQ(retuneOutcomeName(RetuneOutcome::LowFreq), "LowFreq");
    EXPECT_STREQ(retuneOutcomeName(RetuneOutcome::Error), "Error");
    EXPECT_STREQ(retuneOutcomeName(RetuneOutcome::Temp), "Temp");
    EXPECT_STREQ(retuneOutcomeName(RetuneOutcome::Power), "Power");
}

} // namespace
} // namespace eval
