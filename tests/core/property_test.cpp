/**
 * Cross-cutting property tests: invariants that must hold for any
 * seed, chip, and application — the contracts the benches rely on.
 */

#include <gtest/gtest.h>

#include "core/environment.hh"

namespace eval {
namespace {

/** Sweep over master seeds: one context per seed. */
class SeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    ExperimentContext &
    ctx()
    {
        static std::map<std::uint64_t,
                        std::unique_ptr<ExperimentContext>> cache;
        auto it = cache.find(GetParam());
        if (it == cache.end()) {
            ExperimentConfig cfg;
            cfg.seed = GetParam();
            cfg.chips = 2;
            cfg.simInsts = 50000;
            it = cache
                     .emplace(GetParam(),
                              std::make_unique<ExperimentContext>(cfg))
                     .first;
        }
        return *it->second;
    }
};

TEST_P(SeedSweep, AdaptedConfigurationAlwaysMeetsConstraints)
{
    const Constraints &c = ctx().config().constraints;
    for (auto env : {EnvironmentKind::TS, EnvironmentKind::TS_ASV,
                     EnvironmentKind::ALL}) {
        const AppRunResult r = ctx().runApp(0, 0, appByName("gzip"), env,
                                            AdaptScheme::ExhDyn);
        EXPECT_LE(r.pePerInstr, c.peMax * 1.01) << environmentName(env);
        EXPECT_LE(r.powerW, c.pMaxW * 1.02) << environmentName(env);
        EXPECT_GT(r.freqRel, 0.5) << environmentName(env);
    }
}

TEST_P(SeedSweep, EnvironmentOrderingHolds)
{
    const AppRunResult base = ctx().runApp(
        1, 0, appByName("swim"), EnvironmentKind::Baseline,
        AdaptScheme::Static);
    const AppRunResult ts = ctx().runApp(1, 0, appByName("swim"),
                                         EnvironmentKind::TS,
                                         AdaptScheme::ExhDyn);
    const AppRunResult asv = ctx().runApp(1, 0, appByName("swim"),
                                          EnvironmentKind::TS_ASV,
                                          AdaptScheme::ExhDyn);
    EXPECT_GT(ts.freqRel, base.freqRel);
    EXPECT_GE(asv.freqRel, ts.freqRel * 0.999);
}

TEST_P(SeedSweep, RunsAreDeterministic)
{
    const AppRunResult a = ctx().runApp(0, 1, appByName("mcf"),
                                        EnvironmentKind::TS_ASV,
                                        AdaptScheme::FuzzyDyn);
    const AppRunResult b = ctx().runApp(0, 1, appByName("mcf"),
                                        EnvironmentKind::TS_ASV,
                                        AdaptScheme::FuzzyDyn);
    EXPECT_DOUBLE_EQ(a.freqRel, b.freqRel);
    EXPECT_DOUBLE_EQ(a.perfRel, b.perfRel);
    EXPECT_DOUBLE_EQ(a.powerW, b.powerW);
}

TEST_P(SeedSweep, SubsystemErrorCurvesMonotone)
{
    CoreSystemModel &core = ctx().coreModel(0, 0);
    const OperatingConditions op{1.0, 0.0, 70.0};
    for (std::size_t i = 0; i < kNumSubsystems; ++i) {
        const auto id = static_cast<SubsystemId>(i);
        const StageErrorModel &m = core.subsystem(id).errorModel(false);
        double prev = -1.0;
        for (double fr = 0.8; fr <= 1.4; fr += 0.05) {
            const double pe = m.errorRatePerAccess(
                1.0 / (fr * ctx().config().process.freqNominal), op);
            EXPECT_GE(pe, prev) << "subsystem " << i << " fr " << fr;
            prev = pe;
        }
    }
}

TEST_P(SeedSweep, FuzzyPredictionsStayOnTheGrid)
{
    const EnvCapabilities caps = environmentCaps(EnvironmentKind::TS_ASV);
    const CoreFuzzySystem &fc = ctx().coreFuzzy(0, 0, caps);
    CoreSystemModel &core = ctx().coreModel(0, 0);
    FuzzyOptimizer opt(fc);
    const KnobSpace ks = caps.knobSpace();
    Rng rng(GetParam() ^ 0xF00D);
    for (int k = 0; k < 50; ++k) {
        const auto id = static_cast<SubsystemId>(
            rng.uniformInt(kNumSubsystems));
        const double th = rng.uniform(45.0, 70.0);
        const double a = rng.uniform(0.05, 1.5);
        const double f = opt.maxFrequency(core, id, false, a, th);
        EXPECT_GE(f, ks.freq.lo());
        EXPECT_LE(f, ks.freq.hi());
        const auto knobs = opt.minimizePower(core, id, false, f, a, th);
        ASSERT_TRUE(knobs.has_value());
        EXPECT_GE(knobs->vdd, ks.vdd.lo());
        EXPECT_LE(knobs->vdd, ks.vdd.hi());
        EXPECT_DOUBLE_EQ(knobs->vbb, 0.0);
    }
}

TEST_P(SeedSweep, BaselineNeverExceedsManagedExhaustive)
{
    for (int chip = 0; chip < 2; ++chip) {
        const AppRunResult base = ctx().runApp(
            chip, 2, appByName("crafty"), EnvironmentKind::Baseline,
            AdaptScheme::Static);
        const AppRunResult managed = ctx().runApp(
            chip, 2, appByName("crafty"), EnvironmentKind::TS_ASV_Q_FU,
            AdaptScheme::ExhDyn);
        EXPECT_LE(base.freqRel, managed.freqRel) << "chip " << chip;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 7u, 42u, 1234u));

} // namespace
} // namespace eval
