/** Tests for the Eq 5 performance model. */

#include <gtest/gtest.h>

#include "core/perf_model.hh"

namespace eval {
namespace {

PerfInputs
sample()
{
    PerfInputs in;
    in.cpiComp = 0.8;
    in.missesPerInst = 2e-3;
    in.memPenaltySec = 150.0 / 4e9;
    in.recoveryPenaltyCycles = 14.0;
    return in;
}

TEST(PerfModel, CpiComposition)
{
    const PerfInputs in = sample();
    const double cpi = cpiAt(4e9, 0.0, in);
    EXPECT_NEAR(cpi, 0.8 + 2e-3 * 150.0, 1e-9);
}

TEST(PerfModel, MissPenaltyGrowsWithFrequency)
{
    const PerfInputs in = sample();
    EXPECT_GT(cpiAt(5e9, 0.0, in), cpiAt(4e9, 0.0, in));
    // The *cycle* count grows but wall-clock memory time is fixed:
    // performance must still improve with f (sub-linearly).
    EXPECT_GT(performance(5e9, 0.0, in), performance(4e9, 0.0, in));
    EXPECT_LT(performance(5e9, 0.0, in),
              performance(4e9, 0.0, in) * 5.0 / 4.0);
}

TEST(PerfModel, ErrorsAddRecoveryCycles)
{
    const PerfInputs in = sample();
    const double clean = cpiAt(4e9, 0.0, in);
    const double faulty = cpiAt(4e9, 1e-2, in);
    EXPECT_NEAR(faulty - clean, 1e-2 * 14.0, 1e-12);
}

TEST(PerfModel, SmallPeHasNegligibleCost)
{
    // Sec 4.1: at PE = 1e-4, CPIrec is negligible.
    const PerfInputs in = sample();
    const double clean = performance(4e9, 0.0, in);
    const double tiny = performance(4e9, 1e-4, in);
    EXPECT_GT(tiny / clean, 0.998);
}

TEST(PerfModel, HugePeKillsPerformance)
{
    const PerfInputs in = sample();
    const double clean = performance(4e9, 0.0, in);
    const double dead = performance(4e9, 0.5, in);
    EXPECT_LT(dead / clean, 0.2);
}

TEST(PerfModel, FromStatsRoundTrip)
{
    CoreStats stats;
    stats.cycles = 100000;
    stats.instructions = 80000;
    stats.l2Misses = 200;
    stats.memStallCycles = 20000;
    const PerfInputs in = PerfInputs::fromStats(stats, 4e9, 14.0);
    EXPECT_NEAR(in.cpiComp, 1.0, 1e-9);
    EXPECT_NEAR(in.missesPerInst, 200.0 / 80000.0, 1e-12);
    EXPECT_NEAR(in.memPenaltySec, 100.0 / 4e9, 1e-18);
    // Eq 5 at the characterization frequency reproduces measured CPI.
    EXPECT_NEAR(cpiAt(4e9, 0.0, in), stats.cpi(), 1e-9);
}

} // namespace
} // namespace eval
