/** Tests for the Freq/Power algorithms and the whole-core optimizer. */

#include <gtest/gtest.h>

#include "core/environment.hh"
#include "core/optimizer.hh"

namespace eval {
namespace {

struct Fixture
{
    ExperimentConfig cfg;
    std::unique_ptr<ExperimentContext> ctx;

    Fixture()
    {
        cfg.chips = 2;
        ctx = std::make_unique<ExperimentContext>(cfg);
    }

    CoreSystemModel &core() { return ctx->coreModel(0, 0); }

    PhaseCharacterization
    phase(const std::string &app)
    {
        return ctx->characterizations()
            .get(appByName(app))
            .phases[0]
            .chr;
    }
};

TEST(Exhaustive, FmaxWithinKnobGrid)
{
    Fixture f;
    EnvCapabilities caps = environmentCaps(EnvironmentKind::TS_ASV);
    ExhaustiveOptimizer exh(caps, f.cfg.constraints);
    const KnobSpace ks = caps.knobSpace();
    for (std::size_t i = 0; i < kNumSubsystems; ++i) {
        const auto id = static_cast<SubsystemId>(i);
        const double fmax = exh.maxFrequency(f.core(), id, false, 0.4,
                                             65.0);
        EXPECT_GE(fmax, ks.freq.lo());
        EXPECT_LE(fmax, ks.freq.hi());
        // Grid-aligned.
        EXPECT_NEAR(fmax, ks.freq.quantize(fmax), 1.0);
    }
}

TEST(Exhaustive, AsvRaisesFmax)
{
    Fixture f;
    EnvCapabilities tsOnly = environmentCaps(EnvironmentKind::TS);
    EnvCapabilities withAsv = environmentCaps(EnvironmentKind::TS_ASV);
    ExhaustiveOptimizer plain(tsOnly, f.cfg.constraints);
    ExhaustiveOptimizer asv(withAsv, f.cfg.constraints);
    const double f0 = plain.maxFrequency(f.core(), SubsystemId::Icache,
                                         false, 0.25, 65.0);
    const double f1 = asv.maxFrequency(f.core(), SubsystemId::Icache,
                                       false, 0.25, 65.0);
    EXPECT_GT(f1, f0);
}

TEST(Exhaustive, CoolerHeatsinkRaisesFmax)
{
    Fixture f;
    EnvCapabilities caps = environmentCaps(EnvironmentKind::TS_ASV);
    ExhaustiveOptimizer exh(caps, f.cfg.constraints);
    const double warm = exh.maxFrequency(f.core(), SubsystemId::IntQ,
                                         false, 0.5, 70.0);
    const double cool = exh.maxFrequency(f.core(), SubsystemId::IntQ,
                                         false, 0.5, 50.0);
    EXPECT_GE(cool, warm);
}

TEST(Exhaustive, FmaxRespectsConstraints)
{
    Fixture f;
    EnvCapabilities caps = environmentCaps(EnvironmentKind::TS_ASV);
    ExhaustiveOptimizer exh(caps, f.cfg.constraints);
    const SubsystemId id = SubsystemId::Dcache;
    const double alphaF = 0.35;
    const double thC = 65.0;
    const double fmax = exh.maxFrequency(f.core(), id, false, alphaF, thC);
    // Some knob setting must satisfy both constraints at fmax.
    const auto knobs = exh.minimizePower(f.core(), id, false, fmax,
                                         alphaF, thC);
    ASSERT_TRUE(knobs.has_value());
    const auto sol = f.core().evaluateSubsystem(id, false, fmax, *knobs,
                                                alphaF, alphaF, thC);
    EXPECT_LE(sol.thermal.tempC, f.cfg.constraints.tMaxC + 1e-9);
    EXPECT_LE(sol.peAccess,
              perAccessErrorBudget(f.cfg.constraints, alphaF) + 1e-15);
}

TEST(Exhaustive, PowerAlgorithmMinimizes)
{
    Fixture f;
    EnvCapabilities caps = environmentCaps(EnvironmentKind::TS_ASV);
    ExhaustiveOptimizer exh(caps, f.cfg.constraints);
    const SubsystemId id = SubsystemId::Decode;
    const double fcore = 3.0e9;

    const auto best = exh.minimizePower(f.core(), id, false, fcore, 0.8,
                                        65.0);
    ASSERT_TRUE(best.has_value());
    const auto bestSol = f.core().evaluateSubsystem(id, false, fcore,
                                                    *best, 0.8, 0.8, 65.0);

    // Any other feasible setting must not be cheaper.
    const KnobSpace ks = caps.knobSpace();
    const double budget = perAccessErrorBudget(f.cfg.constraints, 0.8);
    for (double vdd : ks.vddCandidates(1.0)) {
        SubsystemKnobs k{vdd, 0.0};
        const auto sol = f.core().evaluateSubsystem(id, false, fcore, k,
                                                    0.8, 0.8, 65.0);
        if (sol.functional && sol.thermal.tempC <= f.cfg.constraints.tMaxC &&
            sol.peAccess <= budget) {
            EXPECT_GE(sol.thermal.power(),
                      bestSol.thermal.power() - 1e-9);
        }
    }
}

TEST(Exhaustive, InfeasibleFrequencyReturnsNullopt)
{
    Fixture f;
    EnvCapabilities caps = environmentCaps(EnvironmentKind::TS);
    ExhaustiveOptimizer exh(caps, f.cfg.constraints);
    // 5.6 GHz without any voltage help is far past every subsystem.
    const auto k = exh.minimizePower(f.core(), SubsystemId::Icache, false,
                                     5.6e9, 0.3, 70.0);
    EXPECT_FALSE(k.has_value());
}

TEST(PerAccessBudget, ScalesInverselyWithActivity)
{
    Constraints c;
    EXPECT_GT(perAccessErrorBudget(c, 0.1), perAccessErrorBudget(c, 1.0));
    // At alpha=1 the budget is PEMAX/n divided by the conservative
    // CPI assumption.
    EXPECT_NEAR(perAccessErrorBudget(c, 1.0),
                c.peMax / kNumSubsystems / 1.3, 1e-12);
}

TEST(CoreOptimizer, ProducesFeasibleConfiguration)
{
    Fixture f;
    EnvCapabilities caps = environmentCaps(EnvironmentKind::TS_ASV_Q_FU);
    ExhaustiveOptimizer exh(caps, f.cfg.constraints);
    CoreOptimizer opt(exh, caps, f.cfg.constraints, f.cfg.recovery);
    const PhaseCharacterization ph = f.phase("swim");
    f.core().setAppType(true);

    const AdaptationResult res = opt.choose(f.core(), ph, 65.0);
    EXPECT_TRUE(res.feasible);
    EXPECT_GT(res.predictedPerf, 0.0);

    const CoreEvaluation ev = f.core().evaluate(res.op, ph.act, 65.0);
    EXPECT_LE(ev.pePerInstruction, f.cfg.constraints.peMax * 1.001);
    EXPECT_LE(ev.maxTempC, f.cfg.constraints.tMaxC + 1e-6);
    EXPECT_LE(ev.totalPowerW, f.cfg.constraints.pMaxW);
}

TEST(CoreOptimizer, FrequencyIsMinOfSubsystemLimits)
{
    Fixture f;
    EnvCapabilities caps = environmentCaps(EnvironmentKind::TS_ASV);
    ExhaustiveOptimizer exh(caps, f.cfg.constraints);
    CoreOptimizer opt(exh, caps, f.cfg.constraints, f.cfg.recovery);
    const PhaseCharacterization ph = f.phase("gzip");
    f.core().setAppType(false);

    const AdaptationResult res = opt.choose(f.core(), ph, 65.0);
    double fmaxMin = 1e30;
    for (double fm : res.fmax)
        fmaxMin = std::min(fmaxMin, fm);
    EXPECT_LE(res.op.freq, fmaxMin + 1.0);
}

TEST(CoreOptimizer, QueueAndFuDisabledWithoutCapability)
{
    Fixture f;
    EnvCapabilities caps = environmentCaps(EnvironmentKind::TS_ASV);
    ExhaustiveOptimizer exh(caps, f.cfg.constraints);
    CoreOptimizer opt(exh, caps, f.cfg.constraints, f.cfg.recovery);
    const AdaptationResult res = opt.choose(f.core(), f.phase("gzip"),
                                            65.0);
    EXPECT_FALSE(res.op.smallQueue);
    EXPECT_FALSE(res.op.lowSlopeFu);
}

TEST(CoreOptimizer, HigherDimensionalEnvironmentsDoNotLoseFrequency)
{
    // Adding techniques can only help (Figure 10 monotonicity).
    Fixture f;
    f.core().setAppType(false);
    const PhaseCharacterization ph = f.phase("crafty");
    auto freqOf = [&f, &ph](EnvironmentKind env) {
        EnvCapabilities caps = environmentCaps(env);
        ExhaustiveOptimizer exh(caps, f.cfg.constraints);
        CoreOptimizer opt(exh, caps, f.cfg.constraints, f.cfg.recovery);
        return opt.choose(f.core(), ph, 65.0).op.freq;
    };
    const double ts = freqOf(EnvironmentKind::TS);
    const double asv = freqOf(EnvironmentKind::TS_ASV);
    const double asvQfu = freqOf(EnvironmentKind::TS_ASV_Q_FU);
    EXPECT_GE(asv, ts);
    EXPECT_GE(asvQfu, asv * 0.999);
}

} // namespace
} // namespace eval
