/** Tests for the per-core EVAL system model. */

#include <gtest/gtest.h>

#include "core/environment.hh"
#include "core/subsystem_model.hh"

namespace eval {
namespace {

struct Fixture
{
    ExperimentConfig cfg;
    std::unique_ptr<ExperimentContext> ctx;

    Fixture()
    {
        cfg.chips = 2;
        ctx = std::make_unique<ExperimentContext>(cfg);
    }

    CoreSystemModel &core() { return ctx->coreModel(0, 0); }

    ActivityVector
    activity()
    {
        ActivityVector act;
        for (std::size_t i = 0; i < kNumSubsystems; ++i) {
            act.alpha[i] = ctx->powerParams()[i].alphaRef;
            act.rho[i] = act.alpha[i];
        }
        return act;
    }
};

TEST(SubsystemModel, AlternatesOnlyWhereExpected)
{
    Fixture f;
    for (std::size_t i = 0; i < kNumSubsystems; ++i) {
        const auto id = static_cast<SubsystemId>(i);
        const bool expectAlt =
            id == SubsystemId::IntALU || id == SubsystemId::FPUnit ||
            id == SubsystemId::IntQ || id == SubsystemId::FPQ;
        EXPECT_EQ(f.core().subsystem(id).hasAlternate(), expectAlt) << i;
    }
}

TEST(SubsystemModel, PowerFactors)
{
    Fixture f;
    EXPECT_DOUBLE_EQ(
        f.core().subsystem(SubsystemId::IntALU).powerFactor(true), 1.30);
    EXPECT_DOUBLE_EQ(
        f.core().subsystem(SubsystemId::IntQ).powerFactor(true), 0.85);
    EXPECT_DOUBLE_EQ(
        f.core().subsystem(SubsystemId::Dcache).powerFactor(true), 1.0);
    EXPECT_DOUBLE_EQ(
        f.core().subsystem(SubsystemId::IntALU).powerFactor(false), 1.0);
}

TEST(SubsystemModel, MeasuredVt0CloseToTruth)
{
    Fixture f;
    for (std::size_t i = 0; i < kNumSubsystems; ++i) {
        const auto &sub = f.core().subsystem(static_cast<SubsystemId>(i));
        EXPECT_NEAR(sub.vt0Measured(), sub.vt0True(), 0.003) << i;
    }
}

TEST(SubsystemModel, AppTypeSelectsTechniqueTargets)
{
    Fixture f;
    f.core().setAppType(false);
    EXPECT_EQ(f.core().fuSubsystem(), SubsystemId::IntALU);
    EXPECT_EQ(f.core().queueSubsystem(), SubsystemId::IntQ);
    f.core().setAppType(true);
    EXPECT_EQ(f.core().fuSubsystem(), SubsystemId::FPUnit);
    EXPECT_EQ(f.core().queueSubsystem(), SubsystemId::FPQ);
}

TEST(SubsystemModel, UsesAlternateFollowsOperatingPoint)
{
    Fixture f;
    f.core().setAppType(false);
    OperatingPoint op = nominalOperatingPoint(f.cfg.process);
    EXPECT_FALSE(f.core().usesAlternate(SubsystemId::IntALU, op));
    op.lowSlopeFu = true;
    op.smallQueue = true;
    EXPECT_TRUE(f.core().usesAlternate(SubsystemId::IntALU, op));
    EXPECT_TRUE(f.core().usesAlternate(SubsystemId::IntQ, op));
    EXPECT_FALSE(f.core().usesAlternate(SubsystemId::FPUnit, op));
    EXPECT_FALSE(f.core().usesAlternate(SubsystemId::Dcache, op));
}

TEST(SubsystemModel, EvaluationAggregatesSubsystems)
{
    Fixture f;
    const OperatingPoint op = nominalOperatingPoint(f.cfg.process);
    const CoreEvaluation ev = f.core().evaluate(op, f.activity(), 65.0);
    EXPECT_TRUE(ev.functional);
    EXPECT_GT(ev.subsystemPowerW, 5.0);
    EXPECT_GT(ev.totalPowerW, ev.subsystemPowerW);
    EXPECT_GT(ev.maxTempC, 65.0);
    double sum = 0.0;
    for (std::size_t i = 0; i < kNumSubsystems; ++i)
        sum += ev.thermal[i].power();
    EXPECT_NEAR(sum, ev.subsystemPowerW, 1e-9);
}

TEST(SubsystemModel, HigherFrequencyMoreErrorsMorePower)
{
    Fixture f;
    OperatingPoint slow = nominalOperatingPoint(f.cfg.process);
    slow.freq = 3.0e9;
    OperatingPoint fast = slow;
    fast.freq = 5.0e9;
    const CoreEvaluation evSlow = f.core().evaluate(slow, f.activity(),
                                                    65.0);
    const CoreEvaluation evFast = f.core().evaluate(fast, f.activity(),
                                                    65.0);
    EXPECT_GE(evFast.pePerInstruction, evSlow.pePerInstruction);
    EXPECT_GT(evFast.totalPowerW, evSlow.totalPowerW);
}

TEST(SubsystemModel, SmallQueueLowersItsErrorRate)
{
    Fixture f;
    f.core().setAppType(false);
    OperatingPoint op = nominalOperatingPoint(f.cfg.process);
    op.freq = 4.2e9;   // into the error region
    const auto idx = static_cast<std::size_t>(SubsystemId::IntQ);

    const CoreEvaluation large = f.core().evaluate(op, f.activity(), 65.0);
    op.smallQueue = true;
    const CoreEvaluation small = f.core().evaluate(op, f.activity(), 65.0);
    EXPECT_LE(small.peAccess[idx], large.peAccess[idx]);
}

TEST(SubsystemModel, ConstraintChecks)
{
    Constraints c;
    CoreEvaluation ev;
    ev.maxTempC = 80.0;
    ev.totalPowerW = 20.0;
    ev.pePerInstruction = 1e-5;
    EXPECT_TRUE(ev.meets(c));
    ev.maxTempC = 90.0;
    EXPECT_TRUE(ev.violatesTemp(c));
    EXPECT_FALSE(ev.meets(c));
    ev.maxTempC = 80.0;
    ev.totalPowerW = 31.0;
    EXPECT_TRUE(ev.violatesPower(c));
    ev.totalPowerW = 20.0;
    ev.pePerInstruction = 2e-4;
    EXPECT_TRUE(ev.violatesError(c));
}

TEST(SubsystemModel, IdealChipBaselineIsNominal)
{
    Fixture f;
    // Guardband-free variation; the droop guardband still applies, so
    // the ideal chip rates slightly below nominal but above 90%.
    const double fr = f.ctx->idealCoreModel().baselineFrequency() /
                      f.cfg.process.freqNominal;
    EXPECT_GT(fr, 0.90);
    EXPECT_LE(fr, 1.0 + 1e-9);
}

} // namespace
} // namespace eval
