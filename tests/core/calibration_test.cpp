/**
 * Calibration guardrails: the headline bands from the paper that the
 * model constants are tuned to reproduce (see DESIGN.md Sec 6).
 * If a model change moves these, the figures move with them.
 */

#include <gtest/gtest.h>

#include "core/environment.hh"
#include "util/statistics.hh"

namespace eval {
namespace {

class CalibrationTest : public ::testing::Test
{
  protected:
    static ExperimentContext &
    ctx()
    {
        static ExperimentConfig cfg = [] {
            ExperimentConfig c;
            c.chips = 12;
            c.simInsts = 160000;
            return c;
        }();
        static ExperimentContext context(cfg);
        return context;
    }
};

TEST_F(CalibrationTest, BaselineFrequencyBand)
{
    // Paper: Baseline cycles at ~78% of the no-variation frequency.
    RunningStats fr;
    for (int c = 0; c < ctx().config().chips; ++c) {
        fr.add(ctx().coreModel(c, c % 4).baselineFrequency() /
               ctx().config().process.freqNominal);
    }
    EXPECT_GT(fr.mean(), 0.70);
    EXPECT_LT(fr.mean(), 0.85);
}

TEST_F(CalibrationTest, NoVarPowerBand)
{
    // Paper Figure 12: NoVar averages ~25W against a 30W cap.
    RunningStats p;
    for (const char *app : {"gzip", "crafty", "swim", "mcf"}) {
        p.add(ctx().runApp(0, 0, appByName(app), EnvironmentKind::NoVar,
                           AdaptScheme::Static).powerW);
    }
    EXPECT_GT(p.mean(), 15.0);
    EXPECT_LT(p.mean(), 28.0);
}

TEST_F(CalibrationTest, NoVarWithinThermalEnvelope)
{
    CoreSystemModel &ideal = ctx().idealCoreModel();
    const auto &chr = ctx().characterizations().get(appByName("crafty"));
    const OperatingPoint op =
        nominalOperatingPoint(ctx().config().process);
    const CoreEvaluation ev = ideal.evaluate(op, chr.phases[0].chr.act,
                                             65.0);
    EXPECT_LE(ev.maxTempC, ctx().config().constraints.tMaxC);
    EXPECT_DOUBLE_EQ(ev.pePerInstruction, 0.0);
}

TEST_F(CalibrationTest, BaselinePowerBelowNoVar)
{
    // Paper Figure 12: Baseline ~17W (it runs slower).
    const double base = ctx().runApp(1, 1, appByName("crafty"),
                                     EnvironmentKind::Baseline,
                                     AdaptScheme::Static).powerW;
    const double novar = ctx().runApp(1, 1, appByName("crafty"),
                                      EnvironmentKind::NoVar,
                                      AdaptScheme::Static).powerW;
    EXPECT_LT(base, novar);
}

TEST_F(CalibrationTest, MemorySubsystemsLimitFrequency)
{
    // Figure 8(a): the leftmost (limiting) PE curves belong to memory
    // subsystems.  Check the rated-frequency minimum is a memory or
    // mixed stage on most chips.
    int memLimited = 0;
    const int chips = ctx().config().chips;
    for (int c = 0; c < chips; ++c) {
        CoreSystemModel &core = ctx().coreModel(c, 0);
        const OperatingConditions corner{
            ctx().config().process.vddNominal, 0.0,
            ctx().config().process.tempNominalC};
        double fmin = 1e30;
        StageType limiting = StageType::Logic;
        for (std::size_t i = 0; i < kNumSubsystems; ++i) {
            const auto id = static_cast<SubsystemId>(i);
            const double f =
                core.subsystem(id).errorModel(false).fvar(corner);
            if (f < fmin) {
                fmin = f;
                limiting = core.subsystem(id).info().type;
            }
        }
        if (limiting != StageType::Logic)
            ++memLimited;
    }
    EXPECT_GE(memLimited, chips * 3 / 4);
}

TEST_F(CalibrationTest, SuiteCpiSpreadIsRealistic)
{
    // Compute-bound and memory-bound applications must separate.
    const auto &crafty = ctx().characterizations().get(appByName("crafty"));
    const auto &mcf = ctx().characterizations().get(appByName("mcf"));
    const double cpiCrafty = crafty.phases[0].chr.perfFull.cpiComp;
    const double mrMcf = mcf.phases[0].chr.perfFull.missesPerInst;
    const double mrCrafty = crafty.phases[0].chr.perfFull.missesPerInst;
    EXPECT_LT(cpiCrafty, 1.3);
    EXPECT_GT(mrMcf, 4.0 * mrCrafty);
}

} // namespace
} // namespace eval
