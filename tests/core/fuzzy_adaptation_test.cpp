/** Tests for the per-chip fuzzy controller system (Sec 4.3.1). */

#include <gtest/gtest.h>

#include "core/environment.hh"
#include "util/statistics.hh"

namespace eval {
namespace {

class FuzzyAdaptationTest : public ::testing::Test
{
  protected:
    static ExperimentContext &
    ctx()
    {
        static ExperimentConfig cfg = [] {
            ExperimentConfig c;
            c.chips = 2;
            c.simInsts = 50000;
            return c;
        }();
        static ExperimentContext context(cfg);
        return context;
    }
};

TEST_F(FuzzyAdaptationTest, TrainsAndPredictsWithinGrid)
{
    const EnvCapabilities caps = environmentCaps(EnvironmentKind::TS_ASV);
    const CoreFuzzySystem &fc = ctx().coreFuzzy(0, 0, caps);
    EXPECT_TRUE(fc.trained());

    const KnobSpace ks = caps.knobSpace();
    FuzzyOptimizer opt(fc);
    CoreSystemModel &core = ctx().coreModel(0, 0);
    for (std::size_t i = 0; i < kNumSubsystems; ++i) {
        const auto id = static_cast<SubsystemId>(i);
        const double f = opt.maxFrequency(
            core, id, false, core.subsystem(id).power().alphaRef, 65.0);
        EXPECT_GE(f, ks.freq.lo());
        EXPECT_LE(f, ks.freq.hi());
    }
}

TEST_F(FuzzyAdaptationTest, PredictionsTrackExhaustive)
{
    const EnvCapabilities caps = environmentCaps(EnvironmentKind::TS_ASV);
    const CoreFuzzySystem &fc = ctx().coreFuzzy(0, 1, caps);
    CoreSystemModel &core = ctx().coreModel(0, 1);
    ExhaustiveOptimizer exh(caps, ctx().config().constraints);

    Rng rng(5);
    RunningStats relErr;
    for (int k = 0; k < 40; ++k) {
        const auto id = static_cast<SubsystemId>(
            rng.uniformInt(kNumSubsystems));
        const double th = rng.uniform(48.0, 70.0);
        const double a = core.subsystem(id).power().alphaRef *
                         rng.uniform(0.3, 1.8);
        const double fe = exh.maxFrequency(core, id, false, a, th);
        const double ff = fc.predictFmax(id, th, a, false);
        if (fe > 0.0)
            relErr.add(std::abs(ff - fe) / fe);
    }
    // Paper Table 2 reports ~4%; allow slack for smaller training sets.
    EXPECT_LT(relErr.mean(), 0.06);
}

TEST_F(FuzzyAdaptationTest, VddPredictionsQuantizedAndBounded)
{
    const EnvCapabilities caps = environmentCaps(EnvironmentKind::TS_ASV);
    FuzzyOptimizer opt(ctx().coreFuzzy(1, 0, caps));
    CoreSystemModel &core = ctx().coreModel(1, 0);
    const KnobSpace ks = caps.knobSpace();

    for (double fcore : {2.5e9, 3.2e9, 4.0e9}) {
        const auto k = opt.minimizePower(core, SubsystemId::Dcache, false,
                                         fcore, 0.3, 65.0);
        ASSERT_TRUE(k.has_value());
        EXPECT_GE(k->vdd, ks.vdd.lo());
        EXPECT_LE(k->vdd, ks.vdd.hi());
        EXPECT_NEAR(k->vdd, ks.vdd.quantize(k->vdd), 1e-12);
        EXPECT_DOUBLE_EQ(k->vbb, 0.0);   // no ABB in this environment
    }
}

TEST_F(FuzzyAdaptationTest, AbbEnvironmentProducesBiases)
{
    const EnvCapabilities caps =
        environmentCaps(EnvironmentKind::TS_ASV_ABB);
    FuzzyOptimizer opt(ctx().coreFuzzy(1, 1, caps));
    CoreSystemModel &core = ctx().coreModel(1, 1);
    const KnobSpace ks = caps.knobSpace();
    const auto k = opt.minimizePower(core, SubsystemId::IntQ, false,
                                     3.0e9, 0.5, 65.0);
    ASSERT_TRUE(k.has_value());
    EXPECT_GE(k->vbb, ks.vbb.lo());
    EXPECT_LE(k->vbb, ks.vbb.hi());
}

TEST_F(FuzzyAdaptationTest, HigherActivityLowersPredictedFmax)
{
    const EnvCapabilities caps = environmentCaps(EnvironmentKind::TS_ASV);
    const CoreFuzzySystem &fc = ctx().coreFuzzy(0, 0, caps);
    // Hotter (more active) subsystems can sustain less frequency; the
    // controller must have learned the trend.
    const SubsystemId id = SubsystemId::IntALU;
    const double lo = fc.predictFmax(id, 65.0, 0.2, false);
    const double hi = fc.predictFmax(id, 65.0, 1.1, false);
    EXPECT_GE(lo, hi * 0.98);
}

} // namespace
} // namespace eval
