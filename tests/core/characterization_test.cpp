/** Tests for the workload-characterization cache. */

#include <gtest/gtest.h>

#include "core/characterization.hh"

namespace eval {
namespace {

struct Fixture
{
    RecoveryModel recovery;
    CharacterizationCache cache{recovery, 4e9, 123, 150000};
};

TEST(Characterization, PhasesMatchProfileScript)
{
    Fixture f;
    EXPECT_EQ(f.cache.get(appByName("gcc")).phases.size(), 3u);
    EXPECT_EQ(f.cache.get(appByName("crafty")).phases.size(), 1u);
    EXPECT_EQ(f.cache.get(appByName("gzip")).phases.size(), 2u);
}

TEST(Characterization, CachedObjectIsStable)
{
    Fixture f;
    const AppCharacterization &a = f.cache.get(appByName("swim"));
    const AppCharacterization &b = f.cache.get(appByName("swim"));
    EXPECT_EQ(&a, &b);
}

TEST(Characterization, WeightsSumToOne)
{
    Fixture f;
    const auto &chr = f.cache.get(appByName("gcc"));
    EXPECT_NEAR(chr.totalWeight(), 1.0, 1e-9);
}

TEST(Characterization, SmallQueueCostsIpc)
{
    Fixture f;
    const auto &chr = f.cache.get(appByName("crafty"));
    for (const auto &phase : chr.phases) {
        // The 3/4 queue extracts no more ILP than the full queue.
        EXPECT_GE(phase.chr.perfSmall.cpiComp,
                  phase.chr.perfFull.cpiComp * 0.99);
    }
}

TEST(Characterization, FpFlagPropagates)
{
    Fixture f;
    EXPECT_TRUE(f.cache.get(appByName("swim")).isFp);
    EXPECT_FALSE(f.cache.get(appByName("gzip")).isFp);
    EXPECT_TRUE(f.cache.get(appByName("swim")).phases[0].chr.isFp);
}

TEST(Characterization, ActivityConsistentWithType)
{
    Fixture f;
    const auto &fp = f.cache.get(appByName("swim")).phases[0].chr.act;
    const auto &nt = f.cache.get(appByName("gzip")).phases[0].chr.act;
    EXPECT_GT(fp.alphaOf(SubsystemId::FPUnit), 0.0);
    EXPECT_DOUBLE_EQ(nt.alphaOf(SubsystemId::FPUnit), 0.0);
    EXPECT_GT(nt.alphaOf(SubsystemId::IntALU),
              fp.alphaOf(SubsystemId::IntALU));
}

TEST(Characterization, PhasesDiffer)
{
    Fixture f;
    const auto &chr = f.cache.get(appByName("gcc"));
    // The memory-heavy phase (index 1) must show a higher miss rate.
    EXPECT_GT(chr.phases[1].chr.perfFull.missesPerInst,
              chr.phases[2].chr.perfFull.missesPerInst);
}

} // namespace
} // namespace eval
