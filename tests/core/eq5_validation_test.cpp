/**
 * Closes the loop between the analytic Eq 5 performance model (which
 * every optimizer decision uses) and the cycle-level simulator: when
 * the core actually suffers checker recoveries at rate PE, its
 * measured CPI must match CPIcomp + mr*mp + PE*rp.
 */

#include <gtest/gtest.h>

#include "arch/core.hh"
#include "core/perf_model.hh"
#include "workload/generator.hh"

namespace eval {
namespace {

struct Measurement
{
    CoreStats clean;
    CoreStats faulty;
};

Measurement
measure(const std::string &appName, double errorRate, unsigned penalty)
{
    Measurement m;
    {
        CoreConfig cfg;
        SyntheticTrace t(appByName(appName), 77);
        t.pinPhase(0);
        Core core(cfg, 5);
        core.run(t, 120000);
        m.clean = core.run(t, 120000);
    }
    {
        CoreConfig cfg;
        SyntheticTrace t(appByName(appName), 77);
        t.pinPhase(0);
        Core core(cfg, 5);
        core.run(t, 120000);
        core.setErrorInjection(errorRate, penalty);
        m.faulty = core.run(t, 120000);
    }
    return m;
}

/** Sweep (application x injected error rate). */
class Eq5Sweep
    : public ::testing::TestWithParam<std::tuple<std::string, double>>
{
};

TEST_P(Eq5Sweep, AnalyticModelPredictsSimulatedCpi)
{
    const auto [app, rate] = GetParam();
    const unsigned penalty = 14;
    const Measurement m = measure(app, rate, penalty);

    // Build Eq 5 inputs from the clean run, then predict the faulty
    // run's CPI at the same frequency.
    const PerfInputs in = PerfInputs::fromStats(m.clean, 4e9, penalty);
    const double measuredRate =
        static_cast<double>(m.faulty.errorRecoveries) /
        static_cast<double>(m.faulty.instructions);
    const double predicted = cpiAt(4e9, measuredRate, in);

    // The analytic model ignores second-order effects (replayed work
    // warming caches, partial overlap of recovery with memory stalls),
    // so allow a modest band.
    EXPECT_NEAR(predicted, m.faulty.cpi(), 0.12 * m.faulty.cpi())
        << "app " << app << " rate " << rate;
}

TEST_P(Eq5Sweep, RecoveriesDegradeNotDestroy)
{
    const auto [app, rate] = GetParam();
    const Measurement m = measure(app, rate, 14);
    EXPECT_LE(m.faulty.ipc(), m.clean.ipc() * 1.001);
    // At PE <= 1e-2 the slowdown stays bounded (Sec 4.1's argument).
    if (rate <= 1e-2) {
        EXPECT_GT(m.faulty.ipc(), 0.6 * m.clean.ipc());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Eq5Sweep,
    ::testing::Combine(::testing::Values("gzip", "swim", "mcf"),
                       ::testing::Values(1e-4, 1e-3, 1e-2)));

TEST(Eq5Validation, NegligibleAtPaperTarget)
{
    // Sec 4.1: at PE_MAX = 1e-4 err/inst the recovery CPI is
    // negligible: measured directly in simulation.
    const Measurement m = measure("gzip", 1e-4, 14);
    EXPECT_NEAR(m.faulty.cpi(), m.clean.cpi(), 0.02 * m.clean.cpi());
}

} // namespace
} // namespace eval
