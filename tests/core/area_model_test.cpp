/** Tests for the Figure 7(d) area accounting. */

#include <gtest/gtest.h>

#include "core/area_model.hh"

namespace eval {
namespace {

TEST(AreaModel, TotalMatchesPaper)
{
    // Figure 7(d): 10.6% total without ABB.
    EXPECT_NEAR(totalAreaOverheadPercent(AreaModelConfig{}), 10.6, 0.2);
}

TEST(AreaModel, ItemizedEntriesMatchFigure7d)
{
    const auto items = areaOverhead(AreaModelConfig{});
    auto find = [&items](const std::string &name) {
        for (const auto &i : items) {
            if (i.source == name)
                return i.areaPercent;
        }
        ADD_FAILURE() << "missing " << name;
        return -1.0;
    };
    EXPECT_NEAR(find("IntALU Repl"), 0.7, 0.05);
    EXPECT_NEAR(find("FPAdd/Mul Repl"), 2.5, 0.05);
    EXPECT_DOUBLE_EQ(find("I-Queue Resize"), 0.0);
    EXPECT_DOUBLE_EQ(find("ASV"), 0.0);
    EXPECT_NEAR(find("Phase Detector"), 0.3, 1e-9);
    EXPECT_NEAR(find("Sensors"), 0.1, 1e-9);
    EXPECT_NEAR(find("Checker"), 7.0, 1e-9);
}

TEST(AreaModel, AbbAddsItsShare)
{
    AreaModelConfig cfg;
    cfg.includeAbb = true;
    EXPECT_NEAR(totalAreaOverheadPercent(cfg), 12.6, 0.2);
}

TEST(AreaModel, TotalIsSumOfItems)
{
    const auto items = areaOverhead(AreaModelConfig{});
    double sum = 0.0;
    for (std::size_t i = 0; i + 1 < items.size(); ++i)
        sum += items[i].areaPercent;
    EXPECT_NEAR(items.back().areaPercent, sum, 1e-12);
}

} // namespace
} // namespace eval
