/** Tests for the dynamic-retiming baseline (Sec 7 comparison). */

#include <gtest/gtest.h>

#include "core/environment.hh"
#include "core/retiming.hh"
#include "util/statistics.hh"

namespace eval {
namespace {

class RetimingTest : public ::testing::Test
{
  protected:
    static ExperimentContext &
    ctx()
    {
        static ExperimentConfig cfg = [] {
            ExperimentConfig c;
            c.chips = 6;
            c.simInsts = 50000;
            return c;
        }();
        static ExperimentContext context(cfg);
        return context;
    }
};

TEST_F(RetimingTest, BeatsBaselineOnEveryChip)
{
    for (int chip = 0; chip < ctx().config().chips; ++chip) {
        CoreSystemModel &core = ctx().coreModel(chip, 0);
        EXPECT_GT(retimedFrequency(core), core.baselineFrequency())
            << "chip " << chip;
    }
}

TEST_F(RetimingTest, GainInPaperBand)
{
    // Sec 7: dynamic retiming gains ~10-20% over the worst-case
    // design; EVAL's framing depends on this being meaningfully less
    // than its own gains.
    RunningStats gain;
    for (int chip = 0; chip < ctx().config().chips; ++chip) {
        CoreSystemModel &core = ctx().coreModel(chip, 0);
        gain.add(retimedFrequency(core) / core.baselineFrequency() - 1.0);
    }
    EXPECT_GT(gain.mean(), 0.05);
    EXPECT_LT(gain.mean(), 0.30);
}

TEST_F(RetimingTest, EfficiencyMonotone)
{
    CoreSystemModel &core = ctx().coreModel(0, 0);
    double prev = 0.0;
    for (double eff : {0.0, 0.3, 0.6, 0.9}) {
        RetimingConfig cfg;
        cfg.slackPassEfficiency = eff;
        const double f = retimedFrequency(core, cfg);
        EXPECT_GE(f, prev);
        prev = f;
    }
    // Zero efficiency degenerates to the baseline rating.
    RetimingConfig none;
    none.slackPassEfficiency = 0.0;
    EXPECT_NEAR(retimedFrequency(core, none), core.baselineFrequency(),
                0.01 * core.baselineFrequency());
}

TEST_F(RetimingTest, StaysBelowEvalDynamic)
{
    // The headline Sec 7 claim: EVAL outperforms retiming.
    CoreSystemModel &core = ctx().coreModel(1, 1);
    const double retimed =
        retimedFrequency(core) / ctx().config().process.freqNominal;
    const AppRunResult ev = ctx().runApp(1, 1, appByName("gzip"),
                                         EnvironmentKind::TS_ASV_Q_FU,
                                         AdaptScheme::ExhDyn);
    EXPECT_GT(ev.freqRel, retimed);
}

} // namespace
} // namespace eval
