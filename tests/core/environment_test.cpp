/** Integration tests for Table 1 environments and the run driver. */

#include <gtest/gtest.h>

#include "core/environment.hh"

namespace eval {
namespace {

class EnvironmentTest : public ::testing::Test
{
  protected:
    static ExperimentContext &
    ctx()
    {
        static ExperimentConfig cfg = [] {
            ExperimentConfig c;
            c.chips = 3;
            c.simInsts = 60000;
            return c;
        }();
        static ExperimentContext context(cfg);
        return context;
    }
};

TEST_F(EnvironmentTest, CapsMatchTable1)
{
    EXPECT_FALSE(environmentCaps(EnvironmentKind::Baseline).timingSpec);
    EXPECT_TRUE(environmentCaps(EnvironmentKind::TS).timingSpec);
    EXPECT_FALSE(environmentCaps(EnvironmentKind::TS).asv);
    EXPECT_TRUE(environmentCaps(EnvironmentKind::TS_ASV).asv);
    EXPECT_TRUE(environmentCaps(EnvironmentKind::TS_ASV_ABB).abb);
    EXPECT_TRUE(environmentCaps(EnvironmentKind::TS_ASV_Q).queueResize);
    EXPECT_TRUE(
        environmentCaps(EnvironmentKind::TS_ASV_Q_FU).fuReplication);
    const EnvCapabilities all = environmentCaps(EnvironmentKind::ALL);
    EXPECT_TRUE(all.asv && all.abb && all.queueResize &&
                all.fuReplication);
}

TEST_F(EnvironmentTest, NoVarIsUnity)
{
    const AppRunResult res = ctx().runApp(
        0, 0, appByName("gzip"), EnvironmentKind::NoVar,
        AdaptScheme::Static);
    EXPECT_DOUBLE_EQ(res.freqRel, 1.0);
    EXPECT_DOUBLE_EQ(res.perfRel, 1.0);
    EXPECT_GT(res.powerW, 10.0);
    EXPECT_LT(res.powerW, 30.0);
    EXPECT_DOUBLE_EQ(res.pePerInstr, 0.0);
}

TEST_F(EnvironmentTest, BaselineSlowerThanNoVar)
{
    const AppRunResult res = ctx().runApp(
        0, 0, appByName("gzip"), EnvironmentKind::Baseline,
        AdaptScheme::Static);
    EXPECT_LT(res.freqRel, 1.0);
    EXPECT_GT(res.freqRel, 0.55);
    EXPECT_LT(res.perfRel, 1.0);
}

TEST_F(EnvironmentTest, TimingSpeculationBeatsBaseline)
{
    const AppRunResult base = ctx().runApp(
        1, 0, appByName("swim"), EnvironmentKind::Baseline,
        AdaptScheme::Static);
    const AppRunResult ts = ctx().runApp(
        1, 0, appByName("swim"), EnvironmentKind::TS,
        AdaptScheme::ExhDyn);
    EXPECT_GT(ts.freqRel, base.freqRel);
    EXPECT_GT(ts.perfRel, base.perfRel);
}

TEST_F(EnvironmentTest, AsvBeatsTsAlone)
{
    const AppRunResult ts = ctx().runApp(
        1, 1, appByName("gzip"), EnvironmentKind::TS,
        AdaptScheme::ExhDyn);
    const AppRunResult asv = ctx().runApp(
        1, 1, appByName("gzip"), EnvironmentKind::TS_ASV,
        AdaptScheme::ExhDyn);
    EXPECT_GE(asv.freqRel, ts.freqRel);
}

TEST_F(EnvironmentTest, PeConstraintHolds)
{
    for (auto env : {EnvironmentKind::TS, EnvironmentKind::TS_ASV,
                     EnvironmentKind::TS_ASV_Q_FU}) {
        const AppRunResult res = ctx().runApp(
            0, 1, appByName("mcf"), env, AdaptScheme::ExhDyn);
        EXPECT_LE(res.pePerInstr, ctx().config().constraints.peMax * 1.01)
            << environmentName(env);
    }
}

TEST_F(EnvironmentTest, PowerConstraintHolds)
{
    const AppRunResult res = ctx().runApp(
        2, 0, appByName("crafty"), EnvironmentKind::TS_ASV_Q_FU,
        AdaptScheme::ExhDyn);
    EXPECT_LE(res.powerW, ctx().config().constraints.pMaxW * 1.02);
}

TEST_F(EnvironmentTest, FuzzyCloseToExhaustive)
{
    const AppRunResult fz = ctx().runApp(
        0, 2, appByName("swim"), EnvironmentKind::TS_ASV,
        AdaptScheme::FuzzyDyn);
    const AppRunResult ex = ctx().runApp(
        0, 2, appByName("swim"), EnvironmentKind::TS_ASV,
        AdaptScheme::ExhDyn);
    EXPECT_LE(fz.freqRel, ex.freqRel * 1.02);
    EXPECT_GE(fz.freqRel, ex.freqRel * 0.80);
}

TEST_F(EnvironmentTest, OutcomesOnlyForNewPhases)
{
    const AppProfile &app = appByName("gcc");   // three phases
    const AppRunResult res = ctx().runApp(1, 2, app,
                                          EnvironmentKind::TS_ASV,
                                          AdaptScheme::FuzzyDyn);
    EXPECT_EQ(res.outcomes.size(), 3u);
}

TEST_F(EnvironmentTest, SelectedAppsHonoursEnv)
{
    setenv("EVAL_APPS", "swim,gzip", 1);
    const auto apps = ctx().selectedApps();
    unsetenv("EVAL_APPS");
    ASSERT_EQ(apps.size(), 2u);
    EXPECT_EQ(apps[0]->name, "swim");
    EXPECT_EQ(apps[1]->name, "gzip");
    EXPECT_EQ(ctx().selectedApps().size(), specSuite().size());
}

TEST_F(EnvironmentTest, NamesRoundTrip)
{
    EXPECT_STREQ(environmentName(EnvironmentKind::TS_ASV_Q_FU),
                 "TS+ASV+Q+FU");
    EXPECT_STREQ(adaptSchemeName(AdaptScheme::FuzzyDyn), "Fuzzy-Dyn");
}

} // namespace
} // namespace eval
