/** Randomized robustness of the shard-checkpoint codec: arbitrary
 *  truncations and single-byte flips of a valid checkpoint file must
 *  either be rejected with SnapshotError or decode to a checkpoint
 *  whose accumulator payload is bit-identical to the original (the
 *  integrity digest makes silently-different statistics impossible).
 *  Never a crash, never an abort. */

#include <gtest/gtest.h>

#include <fstream>

#include "shard/campaign.hh"
#include "util/random.hh"
#include "valid/checkpoint.hh"
#include "valid/snapshot.hh"

namespace eval {
namespace {

/** A small but non-trivial checkpoint (mid-range cursor, nonzero
 *  tallies in several cells, fractional good-shares). */
ShardCheckpoint
makeCheckpoint()
{
    CampaignAccumulator acc(5);
    Rng rng(42);
    for (std::uint64_t chip = 5; chip < 9; ++chip) {
        ChipCampaignResult r;
        for (std::size_t e = 0; e < kNumVoltageEnvs; ++e)
            for (std::size_t o = 0; o < kNumRetuneOutcomes; ++o)
                r.outcomes[e][o] = rng.next() % 7;
        acc.addChip(chip, r);
    }
    ShardCheckpoint cp;
    cp.campaignFingerprint = "fuzz-campaign;scheme=Exh-Dyn";
    cp.shardIndex = 1;
    cp.shardCount = 4;
    cp.rangeBegin = 5;
    cp.rangeEnd = 12;
    cp.nextChip = 9;
    cp.accumulator = acc.toPayload();
    return cp;
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

class CheckpointFuzzTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "checkpoint_fuzz.snap";
        original_ = makeCheckpoint();
        ASSERT_TRUE(
            writeCheckpointFile(path_, original_, /*binary=*/true));
        good_ = fileBytes(path_);
        ASSERT_FALSE(good_.empty());
        refAccumulator_ = encodeBinary(original_.accumulator);
    }

    /** The fuzz oracle: mutated bytes either throw SnapshotError or
     *  decode with a bit-identical accumulator payload. */
    void
    expectRejectedOrAccumulatorIntact(const std::string &mutated)
    {
        writeBytes(path_, mutated);
        try {
            const ShardCheckpoint cp = readCheckpointFile(path_);
            EXPECT_EQ(encodeBinary(cp.accumulator), refAccumulator_)
                << "decoded checkpoint carries silently-corrupted "
                   "statistics";
        } catch (const SnapshotError &) {
            // The expected outcome for almost every mutation.
        }
    }

    std::string path_;
    ShardCheckpoint original_;
    std::string good_;
    std::string refAccumulator_;
};

TEST_F(CheckpointFuzzTest, RoundTripsWhenUntouched)
{
    const ShardCheckpoint cp = readCheckpointFile(path_);
    EXPECT_EQ(cp.campaignFingerprint, original_.campaignFingerprint);
    EXPECT_EQ(cp.shardIndex, original_.shardIndex);
    EXPECT_EQ(cp.shardCount, original_.shardCount);
    EXPECT_EQ(cp.rangeBegin, original_.rangeBegin);
    EXPECT_EQ(cp.rangeEnd, original_.rangeEnd);
    EXPECT_EQ(cp.nextChip, original_.nextChip);
    EXPECT_EQ(encodeBinary(cp.accumulator), refAccumulator_);
}

TEST_F(CheckpointFuzzTest, EveryTruncationIsRejected)
{
    // A truncated file can never carry the full payload, so every
    // prefix must throw — this is the torn-write case the atomic
    // rename prevents, simulated byte by byte.
    for (std::size_t len = 0; len < good_.size();
         len += std::max<std::size_t>(1, good_.size() / 200)) {
        writeBytes(path_, good_.substr(0, len));
        EXPECT_THROW(readCheckpointFile(path_), SnapshotError)
            << "prefix of " << len << " bytes decoded";
    }
}

TEST_F(CheckpointFuzzTest, SingleByteFlipsNeverCorruptStatistics)
{
    Rng rng(7);
    for (int trial = 0; trial < 400; ++trial) {
        std::string mutated = good_;
        const std::size_t pos = rng.next() % mutated.size();
        const auto mask =
            static_cast<char>(1 << (rng.next() % 8));
        mutated[pos] = static_cast<char>(mutated[pos] ^ mask);
        expectRejectedOrAccumulatorIntact(mutated);
    }
}

TEST_F(CheckpointFuzzTest, RandomGarbageIsRejected)
{
    Rng rng(13);
    for (int trial = 0; trial < 100; ++trial) {
        std::string garbage(rng.next() % 256, '\0');
        for (char &c : garbage)
            c = static_cast<char>(rng.next() & 0xFF);
        writeBytes(path_, garbage);
        EXPECT_THROW(readCheckpointFile(path_), SnapshotError);
    }
}

TEST_F(CheckpointFuzzTest, InvalidCoordinatesAreRejected)
{
    // Structurally valid snapshots with incoherent coordinates must
    // be refused by the validator, not trusted downstream.
    ShardCheckpoint bad = original_;
    bad.nextChip = bad.rangeEnd + 1; // cursor past the range
    ASSERT_TRUE(writeCheckpointFile(path_, bad, true));
    EXPECT_THROW(readCheckpointFile(path_), SnapshotError);

    bad = original_;
    bad.shardIndex = bad.shardCount; // index out of range
    ASSERT_TRUE(writeCheckpointFile(path_, bad, true));
    EXPECT_THROW(readCheckpointFile(path_), SnapshotError);

    bad = original_;
    bad.rangeEnd = bad.rangeBegin - 1; // inverted range
    bad.nextChip = bad.rangeEnd;
    ASSERT_TRUE(writeCheckpointFile(path_, bad, true));
    EXPECT_THROW(readCheckpointFile(path_), SnapshotError);
}

} // namespace
} // namespace eval
