/**
 * Property-based fuzz tests for the environment config parsers and
 * the argument parser: random valid inputs parse losslessly, random
 * hostile inputs never crash (the env parsers fall back; the arg
 * parser exits through EVAL_FATAL — a defined, testable path).
 */

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/arg_parser.hh"
#include "util/config.hh"
#include "util/random.hh"

using namespace eval;

namespace {

constexpr const char *kVar = "EVAL_FUZZ_TEST_VAR";

class EnvGuard : public ::testing::Test
{
  protected:
    void TearDown() override { ::unsetenv(kVar); }

    void
    setVar(const std::string &value)
    {
        ::setenv(kVar, value.c_str(), 1);
    }
};

using ConfigFuzz = EnvGuard;

std::string
randomGarbage(Rng &rng, std::size_t maxLen)
{
    const std::size_t len = rng.uniformInt(maxLen + 1);
    std::string s;
    s.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
        // Printable ASCII plus separators the parsers care about.
        static const char pool[] =
            "0123456789aAzZ+-.,eE xX_=\"\\/#!\t";
        s.push_back(pool[rng.uniformInt(sizeof(pool) - 1)]);
    }
    return s;
}

std::string
joinCsv(const std::vector<std::string> &items)
{
    std::string out;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0)
            out += ",";
        out += items[i];
    }
    return out;
}

} // namespace

TEST_F(ConfigFuzz, EnvIntNeverCrashesAndHonestFallback)
{
    Rng rng(0xC0FFEE);
    for (int i = 0; i < 2000; ++i) {
        setVar(randomGarbage(rng, 24));
        (void)envInt(kVar, -1);
        (void)envDouble(kVar, -1.0);
        (void)envBool(kVar, false);
        (void)envString(kVar, "");
    }
    // Valid values round-trip exactly.
    for (int i = 0; i < 500; ++i) {
        const std::int64_t v =
            static_cast<std::int64_t>(rng.next() >> 1) *
            (rng.uniformInt(2) ? 1 : -1);
        setVar(std::to_string(v));
        EXPECT_EQ(envInt(kVar, 0), v);
    }
}

TEST_F(ConfigFuzz, SplitCsvNeverCrashesAndIsIdempotent)
{
    Rng rng(0xBEEF);
    for (int i = 0; i < 2000; ++i) {
        const std::string input = randomGarbage(rng, 48);
        const std::vector<std::string> once = splitCsvList(input);
        // Tokens are trimmed and non-empty.
        for (const std::string &t : once) {
            EXPECT_FALSE(t.empty());
            EXPECT_NE(t.front(), ' ');
            EXPECT_NE(t.back(), ' ');
        }
        // split(join(split(x))) == split(x): parse-print-parse fixpoint
        // for every token that survives (commas inside tokens cannot
        // occur by construction of the split).
        const std::vector<std::string> twice =
            splitCsvList(joinCsv(once));
        EXPECT_EQ(twice, once) << "input: " << input;
    }
}

TEST_F(ConfigFuzz, RunConfigFromEnvToleratesGarbage)
{
    Rng rng(0xFEED);
    for (int i = 0; i < 200; ++i) {
        ::setenv("EVAL_CHIPS", randomGarbage(rng, 12).c_str(), 1);
        ::setenv("EVAL_SEED", randomGarbage(rng, 12).c_str(), 1);
        ::setenv("EVAL_APPS", randomGarbage(rng, 32).c_str(), 1);
        ::setenv("EVAL_FAST", randomGarbage(rng, 4).c_str(), 1);
        const RunConfig cfg = RunConfig::fromEnv();
        // Whatever the garbage, the config stays usable.
        EXPECT_GE(cfg.chips, 0);
    }
    ::unsetenv("EVAL_CHIPS");
    ::unsetenv("EVAL_SEED");
    ::unsetenv("EVAL_APPS");
    ::unsetenv("EVAL_FAST");
}

TEST(ArgParserFuzz, WellFormedOptionsRoundTrip)
{
    Rng rng(0xABCD);
    for (int i = 0; i < 500; ++i) {
        const std::int64_t value =
            static_cast<std::int64_t>(rng.uniformInt(1000000));
        const std::string valueStr = std::to_string(value);
        const std::string eq = "--key=" + valueStr;
        const char *argv[] = {"prog",     "--flag", eq.c_str(),
                              "--other",  valueStr.c_str(), "pos"};
        ArgParser args(6, argv);
        EXPECT_TRUE(args.getBool("flag"));
        EXPECT_EQ(args.getInt("key", -1), value);
        EXPECT_EQ(args.getInt("other", -1), value);
        ASSERT_EQ(args.positional().size(), 1u);
        EXPECT_EQ(args.positional()[0], "pos");
        EXPECT_TRUE(args.unusedKeys().empty());
    }
}

TEST(ArgParserFuzz, MalformedOptionExitsCleanly)
{
    // "--" alone (empty option name) and a non-numeric value for a
    // numeric option are user errors: the parser must exit through
    // EVAL_FATAL, never crash or misparse.
    const char *emptyName[] = {"prog", "--"};
    EXPECT_EXIT(ArgParser(2, emptyName), ::testing::ExitedWithCode(1),
                "empty option name");

    const char *badInt[] = {"prog", "--chips", "many"};
    EXPECT_EXIT(
        {
            ArgParser args(3, badInt);
            (void)args.getInt("chips", 0);
        },
        ::testing::ExitedWithCode(1), "expects an integer");
}

TEST(ArgParserFuzz, RandomArgvNeverCorruptsMemory)
{
    Rng rng(0x5EED5);
    for (int i = 0; i < 300; ++i) {
        // Build a random argv of positional-looking tokens (no leading
        // "--" so the parser cannot hit its fatal path) and verify the
        // parse is total and faithful.
        std::vector<std::string> words;
        const std::size_t n = 1 + rng.uniformInt(6);
        for (std::size_t w = 0; w < n; ++w) {
            std::string token = randomGarbage(rng, 16);
            while (token.rfind("--", 0) == 0)
                token.erase(0, 1);
            if (token.empty())
                token = "x";
            words.push_back(std::move(token));
        }
        std::vector<const char *> argv{"prog"};
        for (const std::string &w : words)
            argv.push_back(w.c_str());
        ArgParser args(static_cast<int>(argv.size()), argv.data());
        EXPECT_EQ(args.positional().size(), words.size());
    }
}
