/**
 * Fuzz tests for the binary trace-file reader: random valid traces
 * survive a record -> load -> record round trip bit-exactly, and
 * random corruption of any byte is rejected through the defined error
 * paths (EVAL_FATAL exit / EVAL_ASSERT abort), never via memory
 * corruption or silent misparse.
 */

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.hh"
#include "workload/trace_file.hh"

using namespace eval;

namespace {

/** Replays a fixed vector of micro-ops (the fuzz corpus source). */
class VectorTrace : public TraceSource
{
  public:
    explicit VectorTrace(std::vector<MicroOp> ops)
        : ops_(std::move(ops))
    {
    }

    bool
    next(MicroOp &op) override
    {
        if (cursor_ >= ops_.size())
            return false;
        op = ops_[cursor_++];
        return true;
    }

  private:
    std::vector<MicroOp> ops_;
    std::size_t cursor_ = 0;
};

std::vector<MicroOp>
randomOps(Rng &rng, std::size_t count)
{
    std::vector<MicroOp> ops;
    ops.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        MicroOp op;
        op.cls = static_cast<OpClass>(rng.uniformInt(kNumOpClasses));
        op.pc = rng.next();
        op.addr = rng.next();
        op.taken = rng.uniformInt(2) != 0;
        op.src1Dist = static_cast<std::uint16_t>(rng.uniformInt(1 << 16));
        op.src2Dist = static_cast<std::uint16_t>(rng.uniformInt(1 << 16));
        ops.push_back(op);
    }
    return ops;
}

bool
sameOp(const MicroOp &a, const MicroOp &b)
{
    return a.cls == b.cls && a.pc == b.pc && a.addr == b.addr &&
           a.taken == b.taken && a.src1Dist == b.src1Dist &&
           a.src2Dist == b.src2Dist;
}

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void
writeBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

} // namespace

TEST(TraceFuzz, RecordLoadRecordIsBitExact)
{
    Rng rng(0x7ACE);
    for (int round = 0; round < 20; ++round) {
        const std::size_t count = rng.uniformInt(200);
        const std::vector<MicroOp> ops = randomOps(rng, count);
        const std::string path1 = tempPath("trace_fuzz_a.bin");
        const std::string path2 = tempPath("trace_fuzz_b.bin");

        VectorTrace source(ops);
        ASSERT_EQ(recordTrace(source, count, path1), count);

        FileTrace loaded(path1);
        ASSERT_EQ(loaded.size(), count);
        MicroOp op;
        for (std::size_t i = 0; i < count; ++i) {
            ASSERT_TRUE(loaded.next(op));
            EXPECT_TRUE(sameOp(op, ops[i])) << "op " << i;
        }
        EXPECT_FALSE(loaded.next(op)) << "non-looping trace must end";

        // Second generation: replay the loaded trace into a new file;
        // the bytes must match the first file exactly.
        loaded.rewind();
        ASSERT_EQ(recordTrace(loaded, count, path2), count);
        EXPECT_EQ(fileBytes(path1), fileBytes(path2));

        std::remove(path1.c_str());
        std::remove(path2.c_str());
    }
}

TEST(TraceFuzz, LoopingTraceWrapsAround)
{
    Rng rng(0x100B);
    const std::vector<MicroOp> ops = randomOps(rng, 7);
    const std::string path = tempPath("trace_fuzz_loop.bin");
    VectorTrace source(ops);
    ASSERT_EQ(recordTrace(source, ops.size(), path), ops.size());

    FileTrace looped(path, /*loop=*/true);
    MicroOp op;
    for (std::size_t i = 0; i < 3 * ops.size(); ++i) {
        ASSERT_TRUE(looped.next(op));
        EXPECT_TRUE(sameOp(op, ops[i % ops.size()]));
    }
    std::remove(path.c_str());
}

TEST(TraceFuzzDeath, MissingFileExits)
{
    EXPECT_EXIT({ FileTrace t(tempPath("no_such_trace.bin")); },
                ::testing::ExitedWithCode(1), "cannot open trace file");
}

TEST(TraceFuzzDeath, BadMagicExits)
{
    const std::string path = tempPath("trace_fuzz_magic.bin");
    writeBytes(path, "NOTATRACEFILE_AT_ALL____________");
    EXPECT_EXIT({ FileTrace t(path); }, ::testing::ExitedWithCode(1),
                "not an EVAL trace file");
    std::remove(path.c_str());
}

TEST(TraceFuzzDeath, TruncationAndCorruptionAreRejected)
{
    Rng rng(0xDEAD);
    const std::vector<MicroOp> ops = randomOps(rng, 16);
    const std::string path = tempPath("trace_fuzz_corrupt.bin");
    VectorTrace source(ops);
    ASSERT_EQ(recordTrace(source, ops.size(), path), ops.size());
    const std::string good = fileBytes(path);

    // Truncation anywhere inside the record area must exit.
    for (std::size_t cut : {good.size() - 1, good.size() - 13,
                            std::size_t{17}}) {
        writeBytes(path, good.substr(0, cut));
        EXPECT_EXIT({ FileTrace t(path); }, ::testing::ExitedWithCode(1),
                    "truncated trace file");
    }

    // A header shorter than the magic fails the magic check.
    writeBytes(path, good.substr(0, 4));
    EXPECT_EXIT({ FileTrace t(path); }, ::testing::ExitedWithCode(1),
                "not an EVAL trace file");

    // A corrupt op-class byte trips the EVAL_ASSERT (abort).  The
    // class byte of record i sits at offset 16 + 24*i + 20.
    std::string corrupt = good;
    corrupt[16 + 20] = static_cast<char>(0xFF);
    writeBytes(path, corrupt);
    EXPECT_DEATH({ FileTrace t(path); }, "corrupt op class");

    // An absurd header count trips the corrupt-header EVAL_ASSERT.
    std::string hugeCount = good;
    for (std::size_t i = 0; i < 8; ++i)
        hugeCount[8 + i] = static_cast<char>(0xFF);
    writeBytes(path, hugeCount);
    EXPECT_DEATH({ FileTrace t(path); }, "corrupt trace header");

    std::remove(path.c_str());
}

TEST(TraceFuzzDeath, RandomByteFlipsNeverCorruptSilently)
{
    Rng rng(0xF11F5);
    const std::vector<MicroOp> ops = randomOps(rng, 8);
    const std::string path = tempPath("trace_fuzz_flip.bin");
    VectorTrace source(ops);
    ASSERT_EQ(recordTrace(source, ops.size(), path), ops.size());
    const std::string good = fileBytes(path);

    for (int round = 0; round < 40; ++round) {
        std::string mutated = good;
        const std::size_t pos = rng.uniformInt(mutated.size());
        const char flip = static_cast<char>(1 + rng.uniformInt(255));
        mutated[pos] = static_cast<char>(mutated[pos] ^ flip);
        writeBytes(path, mutated);

        // Either the file still parses (the flip hit a payload byte:
        // same op count, every class in range) or it dies through a
        // defined path.  Running the load in a child makes both
        // outcomes observable without killing the test.
        EXPECT_EXIT(
            {
                FileTrace trace(path);
                MicroOp op;
                std::uint64_t n = 0;
                while (trace.next(op))
                    ++n;
                std::exit(n == trace.size() ? 0 : 2);
            },
            [](int status) {
                // Clean parse, fatal exit, or assert abort — anything
                // but silent inconsistency (exit code 2).
                if (WIFEXITED(status))
                    return WEXITSTATUS(status) == 0 ||
                           WEXITSTATUS(status) == 1;
                return WIFSIGNALED(status) && WTERMSIG(status) == SIGABRT;
            },
            "");
    }
    std::remove(path.c_str());
}
