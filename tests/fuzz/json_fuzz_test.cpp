/**
 * Fuzz tests for the JSON parser backing the snapshot subsystem:
 * random hostile input must throw JsonParseError (never crash or
 * hang), random generated documents must survive dump -> parse ->
 * dump byte-exactly, and deep nesting must hit the recursion cap.
 */

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "util/random.hh"
#include "valid/json_value.hh"

using namespace eval;

namespace {

std::string
randomJsonish(Rng &rng, std::size_t maxLen)
{
    static const char pool[] =
        "{}[]\",:0123456789.eE+-truefalsnu\\ \t\n";
    const std::size_t len = rng.uniformInt(maxLen + 1);
    std::string s;
    s.reserve(len);
    for (std::size_t i = 0; i < len; ++i)
        s.push_back(pool[rng.uniformInt(sizeof(pool) - 1)]);
    return s;
}

JsonValue
randomValue(Rng &rng, int depth)
{
    switch (depth > 3 ? rng.uniformInt(5) : rng.uniformInt(7)) {
      case 0:
        return JsonValue();
      case 1:
        return JsonValue(rng.uniformInt(2) != 0);
      case 2:
        return JsonValue(static_cast<std::int64_t>(rng.next()));
      case 3:
        // Mix magnitudes so subnormals and huge values both appear.
        return JsonValue(rng.gaussian() *
                         std::pow(10.0, rng.uniform(-300.0, 300.0)));
      case 4: {
        std::string s;
        const std::size_t n = rng.uniformInt(12);
        for (std::size_t i = 0; i < n; ++i)
            s.push_back(static_cast<char>(rng.uniformInt(0x60) + 0x20));
        return JsonValue(std::move(s));
      }
      case 5: {
        JsonValue arr = JsonValue::array();
        const std::size_t n = rng.uniformInt(5);
        for (std::size_t i = 0; i < n; ++i)
            arr.push(randomValue(rng, depth + 1));
        return arr;
      }
      default: {
        JsonValue obj = JsonValue::object();
        const std::size_t n = rng.uniformInt(5);
        for (std::size_t i = 0; i < n; ++i) {
            obj.set("k" + std::to_string(i) + "_" +
                        std::to_string(rng.uniformInt(1000)),
                    randomValue(rng, depth + 1));
        }
        return obj;
      }
    }
}

} // namespace

TEST(JsonFuzz, HostileInputThrowsNeverCrashes)
{
    Rng rng(0x15AAC);
    int parsed = 0, rejected = 0;
    for (int i = 0; i < 5000; ++i) {
        const std::string text = randomJsonish(rng, 64);
        try {
            (void)JsonValue::parse(text);
            ++parsed;
        } catch (const JsonParseError &e) {
            EXPECT_LE(e.offset(), text.size());
            ++rejected;
        }
    }
    // Sanity: the corpus actually exercises the error paths.
    EXPECT_GT(rejected, 0);
    (void)parsed;
}

TEST(JsonFuzz, GeneratedDocumentsRoundTripByteExactly)
{
    Rng rng(0x90112);
    for (int i = 0; i < 400; ++i) {
        const JsonValue doc = randomValue(rng, 0);
        const std::string compact = doc.dump();
        const std::string pretty = doc.dump(2);
        const JsonValue fromCompact = JsonValue::parse(compact);
        const JsonValue fromPretty = JsonValue::parse(pretty);
        EXPECT_EQ(fromCompact, doc);
        EXPECT_EQ(fromPretty, doc);
        EXPECT_EQ(fromCompact.dump(), compact);
        EXPECT_EQ(fromPretty.dump(2), pretty);
    }
}

TEST(JsonFuzz, DeepNestingHitsRecursionCapNotStack)
{
    const std::string deepArray(4096, '[');
    EXPECT_THROW(JsonValue::parse(deepArray), JsonParseError);
    std::string balanced;
    for (int i = 0; i < 1000; ++i)
        balanced += "[";
    for (int i = 0; i < 1000; ++i)
        balanced += "]";
    EXPECT_THROW(JsonValue::parse(balanced), JsonParseError);
}
