/**
 * @file
 * Unit tests for the stats subsystem: instrument semantics, registry
 * registration rules, JSON/CSV snapshots, and the decision trace ring.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "stats/stats.hh"

using namespace eval;

namespace {

/**
 * Minimal JSON reader for the round-trip test: validates syntax and
 * records every "group.leaf"-style path to a scalar.  Supports the
 * subset the registry emits (objects, strings, numbers, null).
 */
class MiniJsonReader
{
  public:
    bool
    parse(const std::string &text)
    {
        text_ = &text;
        pos_ = 0;
        if (!parseValue(""))
            return false;
        skipWs();
        return pos_ == text.size();
    }

    bool
    hasScalar(const std::string &path) const
    {
        for (const auto &[p, v] : scalars_) {
            (void)v;
            if (p == path)
                return true;
        }
        return false;
    }

    std::string
    scalar(const std::string &path) const
    {
        for (const auto &[p, v] : scalars_) {
            if (p == path)
                return v;
        }
        return "";
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_->size() &&
               std::isspace(static_cast<unsigned char>((*text_)[pos_]))) {
            ++pos_;
        }
    }

    bool
    parseString(std::string &out)
    {
        skipWs();
        if (pos_ >= text_->size() || (*text_)[pos_] != '"')
            return false;
        ++pos_;
        out.clear();
        while (pos_ < text_->size() && (*text_)[pos_] != '"')
            out.push_back((*text_)[pos_++]);
        if (pos_ >= text_->size())
            return false;
        ++pos_;   // closing quote
        return true;
    }

    bool
    parseValue(const std::string &path)
    {
        skipWs();
        if (pos_ >= text_->size())
            return false;
        const char c = (*text_)[pos_];
        if (c == '{')
            return parseObject(path);
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            scalars_.emplace_back(path, s);
            return true;
        }
        // number / null / bool token
        std::string token;
        while (pos_ < text_->size() &&
               (std::isalnum(static_cast<unsigned char>((*text_)[pos_])) ||
                (*text_)[pos_] == '-' || (*text_)[pos_] == '+' ||
                (*text_)[pos_] == '.' || (*text_)[pos_] == 'e' ||
                (*text_)[pos_] == 'E')) {
            token.push_back((*text_)[pos_++]);
        }
        if (token.empty())
            return false;
        scalars_.emplace_back(path, token);
        return true;
    }

    bool
    parseObject(const std::string &path)
    {
        ++pos_;   // '{'
        skipWs();
        if (pos_ < text_->size() && (*text_)[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (pos_ >= text_->size() || (*text_)[pos_] != ':')
                return false;
            ++pos_;
            if (!parseValue(path.empty() ? key : path + "." + key))
                return false;
            skipWs();
            if (pos_ >= text_->size())
                return false;
            if ((*text_)[pos_] == ',') {
                ++pos_;
                continue;
            }
            if ((*text_)[pos_] == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    const std::string *text_ = nullptr;
    std::size_t pos_ = 0;
    std::vector<std::pair<std::string, std::string>> scalars_;
};

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (!line.empty())
            lines.push_back(line);
    }
    return lines;
}

TEST(CounterTest, IncrementAndReset)
{
    StatRegistry reg;
    Counter &c = reg.counter("core.retunes");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);

    // Idempotent registration: same name, same instrument.
    EXPECT_EQ(&reg.counter("core.retunes"), &c);
    EXPECT_EQ(reg.size(), 1u);

    reg.reset();
    EXPECT_EQ(c.value(), 0u);      // reference survives reset
    EXPECT_TRUE(reg.has("core.retunes"));
}

TEST(GaugeTest, SetOverwrites)
{
    StatRegistry reg;
    Gauge &g = reg.gauge("chip.heatsink_c");
    g.set(55.0);
    g.set(61.5);
    EXPECT_DOUBLE_EQ(g.value(), 61.5);
    reg.reset();
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(HistogramStatTest, MomentsAndQuantiles)
{
    StatRegistry reg;
    HistogramStat &h = reg.histogram("perf.cpi", 0.0, 10.0, 100);
    for (int i = 1; i <= 100; ++i)
        h.add(i / 10.0);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_NEAR(h.mean(), 5.05, 1e-9);
    EXPECT_NEAR(h.min(), 0.1, 1e-9);
    EXPECT_NEAR(h.max(), 10.0, 1e-9);
    EXPECT_NEAR(h.quantile(0.5), 5.0, 0.2);
    EXPECT_LT(h.quantile(0.5), h.quantile(0.9));
    EXPECT_LE(h.quantile(0.9), h.quantile(0.99));

    h.reset();
    EXPECT_EQ(h.count(), 0u);
    h.add(3.0);
    EXPECT_NEAR(h.mean(), 3.0, 1e-9);
}

TEST(TimerStatTest, SampleAccumulation)
{
    StatRegistry reg;
    TimerStat &t = reg.timer("profile.solve");
    EXPECT_EQ(t.calls(), 0u);
    EXPECT_DOUBLE_EQ(t.meanNs(), 0.0);

    t.addSample(100);
    t.addSample(300);
    t.addSample(200);
    EXPECT_EQ(t.calls(), 3u);
    EXPECT_EQ(t.totalNs(), 600u);
    EXPECT_EQ(t.minNs(), 100u);
    EXPECT_EQ(t.maxNs(), 300u);
    EXPECT_DOUBLE_EQ(t.meanNs(), 200.0);

    t.reset();
    EXPECT_EQ(t.calls(), 0u);
    EXPECT_EQ(t.minNs(), 0u);
}

TEST(ScopedTimerTest, GatedOnProfilingFlag)
{
    StatRegistry reg;
    TimerStat &t = reg.timer("profile.region");

    setProfilingEnabled(false);
    {
        ScopedTimer timer(t);
    }
    EXPECT_EQ(t.calls(), 0u);      // disabled: no sample taken

    setProfilingEnabled(true);
    {
        ScopedTimer timer(t);
    }
    setProfilingEnabled(false);
    EXPECT_EQ(t.calls(), 1u);
}

TEST(StatRegistryDeathTest, TypeClashIsFatal)
{
    StatRegistry reg;
    reg.counter("a.b");
    EXPECT_EXIT(reg.gauge("a.b"), ::testing::ExitedWithCode(1),
                "already registered");
}

TEST(StatRegistryDeathTest, HierarchyClashIsFatal)
{
    StatRegistry reg;
    reg.counter("a.b");
    // "a.b" is a leaf; it cannot also be a group.
    EXPECT_EXIT(reg.counter("a.b.c"), ::testing::ExitedWithCode(1),
                "conflicts with the hierarchy");
    EXPECT_EXIT(reg.counter("a"), ::testing::ExitedWithCode(1),
                "conflicts with the hierarchy");
}

TEST(StatRegistryTest, JsonRoundTrip)
{
    StatRegistry reg;
    reg.counter("controller.adaptations").inc(7);
    reg.gauge("chip.thermal.heatsink_c").set(58.25);
    reg.histogram("perf.cpi", 0.0, 4.0, 16).add(1.5);
    reg.timer("profile.opt").addSample(2500);

    const std::string text = reg.json();
    MiniJsonReader json;
    ASSERT_TRUE(json.parse(text)) << text;

    EXPECT_EQ(json.scalar("controller.adaptations.type"), "counter");
    EXPECT_EQ(json.scalar("controller.adaptations.value"), "7");
    EXPECT_EQ(json.scalar("chip.thermal.heatsink_c.type"), "gauge");
    EXPECT_EQ(json.scalar("chip.thermal.heatsink_c.value"), "58.25");
    EXPECT_EQ(json.scalar("perf.cpi.count"), "1");
    EXPECT_TRUE(json.hasScalar("perf.cpi.p50"));
    EXPECT_TRUE(json.hasScalar("perf.cpi.p95"));
    EXPECT_EQ(json.scalar("profile.opt.calls"), "1");
    EXPECT_TRUE(json.hasScalar("profile.opt.mean_us"));
}

TEST(StatRegistryTest, CsvShape)
{
    StatRegistry reg;
    reg.counter("x.count").inc(3);
    reg.gauge("x.level").set(1.25);
    reg.timer("y.timer").addSample(1000);

    const auto lines = splitLines(reg.csv());
    ASSERT_EQ(lines.size(), 4u);   // header + 3 instruments
    EXPECT_EQ(lines[0],
              "name,type,count,value,mean,min,max,p50,p90,p95,p99");
    for (std::size_t i = 1; i < lines.size(); ++i) {
        std::size_t commas = 0;
        for (char c : lines[i])
            commas += (c == ',');
        EXPECT_EQ(commas, 10u) << lines[i];
    }
    EXPECT_EQ(lines[1].rfind("x.count,counter,,3", 0), 0u);
}

TEST(DecisionTraceTest, DisabledRecordIsNoOp)
{
    DecisionTrace trace(8);
    DecisionRecord r;
    trace.record(r);
    EXPECT_EQ(trace.size(), 0u);
    EXPECT_EQ(trace.totalRecorded(), 0u);
}

TEST(DecisionTraceTest, RingOverflowKeepsNewestOldestFirst)
{
    DecisionTrace trace(4);
    trace.setEnabled(true);
    for (int i = 0; i < 6; ++i) {
        DecisionRecord r;
        r.phaseId = static_cast<std::uint64_t>(i);
        trace.record(r);
    }
    EXPECT_EQ(trace.size(), 4u);
    EXPECT_EQ(trace.totalRecorded(), 6u);
    // Oldest surviving record is decision #2 (0 and 1 overwritten).
    EXPECT_EQ(trace.at(0).phaseId, 2u);
    EXPECT_EQ(trace.at(3).phaseId, 5u);
    // Sequence numbers are stamped monotonically.
    EXPECT_EQ(trace.at(0).sequence + 3, trace.at(3).sequence);
}

TEST(DecisionTraceTest, ContextStampingAndJsonl)
{
    DecisionTrace trace(8);
    trace.setEnabled(true);
    trace.setContext(3, 1);
    DecisionRecord r;
    r.phaseId = 9;
    r.outcome = "NoChange";
    trace.record(r);
    EXPECT_EQ(trace.at(0).chip, 3);
    EXPECT_EQ(trace.at(0).core, 1);

    const auto lines = splitLines(trace.jsonl());
    ASSERT_EQ(lines.size(), 1u);
    MiniJsonReader json;
    ASSERT_TRUE(json.parse(lines[0])) << lines[0];
    EXPECT_EQ(json.scalar("chip"), "3");
    EXPECT_EQ(json.scalar("core"), "1");
    EXPECT_EQ(json.scalar("phase_id"), "9");
    EXPECT_EQ(json.scalar("outcome"), "NoChange");

    trace.clear();
    EXPECT_EQ(trace.size(), 0u);
}

} // namespace
