/** Property tests for the mergeable accumulators behind the sharded
 *  Monte Carlo driver (DESIGN.md Sec 5h): Counter / Histogram /
 *  SampleSet merge() must be associative and order-preserving, so any
 *  split of a serial accumulation into contiguous shards — at any
 *  split points, merged in any association — reproduces the unsharded
 *  result *exactly* (u64 / bit-for-bit doubles, not approximately). */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "stats/stat_registry.hh"
#include "util/random.hh"
#include "util/statistics.hh"

namespace eval {
namespace {

/** Random strictly-increasing split points partitioning [0, n). */
std::vector<std::size_t>
randomSplits(Rng &rng, std::size_t n, std::size_t parts)
{
    std::vector<std::size_t> cuts{0};
    for (std::size_t i = 1; i < parts; ++i)
        cuts.push_back(rng.next() % (n + 1));
    cuts.push_back(n);
    std::sort(cuts.begin(), cuts.end());
    return cuts;
}

TEST(MergePropertyTest, CounterMergeIsExactAndAssociative)
{
    Rng rng(2024);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<std::uint64_t> values(40);
        for (auto &v : values)
            v = rng.next() % 1000000;

        Counter serial;
        for (std::uint64_t v : values)
            serial.inc(v);

        const auto cuts = randomSplits(rng, values.size(), 4);
        std::vector<std::unique_ptr<Counter>> parts;
        for (std::size_t p = 0; p + 1 < cuts.size(); ++p) {
            parts.push_back(std::make_unique<Counter>());
            for (std::size_t i = cuts[p]; i < cuts[p + 1]; ++i)
                parts.back()->inc(values[i]);
        }

        // Left fold: ((p0 + p1) + p2) + p3.
        Counter left;
        for (const auto &p : parts)
            left.merge(*p);

        // Right fold: p0 + (p3 + p2 + p1) — different association
        // and a different inner order; a u64 sum cannot tell.
        Counter tail;
        for (std::size_t p = parts.size(); p-- > 1;)
            tail.merge(*parts[p]);
        Counter right;
        right.merge(*parts[0]);
        right.merge(tail);

        EXPECT_EQ(left.value(), serial.value());
        EXPECT_EQ(right.value(), serial.value());
    }
}

TEST(MergePropertyTest, HistogramMergeMatchesSerialExactly)
{
    Rng rng(7);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<double> xs(60);
        for (auto &x : xs)
            x = rng.uniform(-0.2, 1.2); // exercise the clamp bins too

        Histogram serial(0.0, 1.0, 16);
        for (double x : xs)
            serial.add(x, 1.0); // campaign adds are always weight-1

        const auto cuts = randomSplits(rng, xs.size(), 5);
        Histogram merged(0.0, 1.0, 16);
        for (std::size_t p = 0; p + 1 < cuts.size(); ++p) {
            Histogram part(0.0, 1.0, 16);
            for (std::size_t i = cuts[p]; i < cuts[p + 1]; ++i)
                part.add(xs[i], 1.0);
            merged.merge(part);
        }

        ASSERT_EQ(merged.bins(), serial.bins());
        for (std::size_t b = 0; b < serial.bins(); ++b) {
            // Integer-valued weights below 2^53: bin-wise double
            // addition is exact, so bit-for-bit equality holds.
            EXPECT_EQ(merged.count(b), serial.count(b)) << "bin " << b;
        }
        for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0})
            EXPECT_EQ(merged.quantile(q), serial.quantile(q))
                << "quantile " << q;
    }
}

TEST(MergePropertyTest, SampleSetMergePreservesOrder)
{
    Rng rng(99);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<double> xs(48);
        for (auto &x : xs)
            x = rng.uniform();

        SampleSet serial;
        for (double x : xs)
            serial.add(x);

        const auto cuts = randomSplits(rng, xs.size(), 4);
        SampleSet merged;
        for (std::size_t p = 0; p + 1 < cuts.size(); ++p) {
            SampleSet part;
            for (std::size_t i = cuts[p]; i < cuts[p + 1]; ++i)
                part.add(xs[i]);
            merged.merge(part);
        }

        // Ordered append: the merged sample vector IS the serial one,
        // element for element — the strongest possible equivalence
        // (every derived statistic follows for free).
        ASSERT_EQ(merged.samples().size(), serial.samples().size());
        for (std::size_t i = 0; i < xs.size(); ++i)
            EXPECT_EQ(merged.samples()[i], serial.samples()[i]);
        for (double p : {0.5, 0.9, 0.99})
            EXPECT_EQ(merged.percentile(p), serial.percentile(p));
        EXPECT_EQ(merged.mean(), serial.mean());
    }
}

TEST(MergePropertyTest, SampleSetMergeAssociativity)
{
    Rng rng(5);
    std::vector<double> xs(30);
    for (auto &x : xs)
        x = rng.uniform();

    // (a + b) + c  vs  a + (b + c) with contiguous a, b, c.
    SampleSet a, b, c;
    for (std::size_t i = 0; i < 10; ++i)
        a.add(xs[i]);
    for (std::size_t i = 10; i < 20; ++i)
        b.add(xs[i]);
    for (std::size_t i = 20; i < 30; ++i)
        c.add(xs[i]);

    SampleSet leftAssoc = a;
    leftAssoc.merge(b);
    leftAssoc.merge(c);

    SampleSet bc = b;
    bc.merge(c);
    SampleSet rightAssoc = a;
    rightAssoc.merge(bc);

    ASSERT_EQ(leftAssoc.samples().size(), xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
        EXPECT_EQ(leftAssoc.samples()[i], xs[i]);
        EXPECT_EQ(rightAssoc.samples()[i], xs[i]);
    }
}

} // namespace
} // namespace eval
