/**
 * Concurrency tests for the stats layer: instruments and the decision
 * trace must tolerate updates from parallel per-chip tasks without
 * losing counts or corrupting state.
 */

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/thread_pool.hh"
#include "stats/decision_trace.hh"
#include "stats/stat_registry.hh"

using namespace eval;

TEST(StatsConcurrency, CounterIncrementsAreNotLost)
{
    Counter &c = StatRegistry::global().counter("test.conc_counter");
    c.reset();
    ThreadPool pool(4);
    pool.parallelFor(0, 100000, 64, [&](std::size_t) { c.inc(); });
    EXPECT_EQ(c.value(), 100000u);
}

TEST(StatsConcurrency, HistogramSamplesAreNotLost)
{
    HistogramStat &h =
        StatRegistry::global().histogram("test.conc_hist", 0.0, 1.0, 10);
    h.reset();
    ThreadPool pool(4);
    pool.parallelFor(0, 20000, 32, [&](std::size_t i) {
        h.add(static_cast<double>(i % 100) / 100.0);
    });
    EXPECT_EQ(h.count(), 20000u);
    EXPECT_NEAR(h.mean(), 0.495, 1e-9);
}

TEST(StatsConcurrency, TimerSamplesAreNotLost)
{
    TimerStat &t = StatRegistry::global().timer("test.conc_timer");
    t.reset();
    ThreadPool pool(4);
    pool.parallelFor(0, 5000, 16,
                     [&](std::size_t) { t.addSample(1000); });
    EXPECT_EQ(t.calls(), 5000u);
    EXPECT_EQ(t.totalNs(), 5000u * 1000u);
}

TEST(StatsConcurrency, TraceRecordsCarryPerThreadContext)
{
    DecisionTrace trace(1 << 16);
    trace.setEnabled(true);
    ThreadPool pool(4);
    pool.parallelFor(0, 64, 1, [&](std::size_t chip) {
        trace.setContext(static_cast<int>(chip), 0);
        for (int k = 0; k < 8; ++k) {
            DecisionRecord r;
            r.phaseId = static_cast<std::uint64_t>(k);
            r.outcome = "NoChange";
            trace.record(std::move(r));
        }
    });
    EXPECT_EQ(trace.totalRecorded(), 64u * 8u);
    EXPECT_EQ(trace.size(), 64u * 8u);

    // Every record must be stamped with the chip of the task that
    // produced it (thread-local context), whatever the interleaving.
    std::vector<int> perChip(64, 0);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const DecisionRecord &r = trace.at(i);
        ASSERT_GE(r.chip, 0);
        ASSERT_LT(r.chip, 64);
        ++perChip[static_cast<std::size_t>(r.chip)];
    }
    for (int n : perChip)
        EXPECT_EQ(n, 8);
}

TEST(StatsConcurrency, TraceSequenceStampsAreUnique)
{
    DecisionTrace trace(4096);
    trace.setEnabled(true);
    ThreadPool pool(4);
    pool.parallelFor(0, 1000, 8, [&](std::size_t) {
        DecisionRecord r;
        r.outcome = "LowFreq";
        trace.record(std::move(r));
    });
    std::vector<bool> seen(1000, false);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const std::uint64_t seq = trace.at(i).sequence;
        ASSERT_LT(seq, 1000u);
        EXPECT_FALSE(seen[seq]);
        seen[seq] = true;
    }
}

TEST(StatsConcurrency, DisabledTraceRecordIsCheap)
{
    // Contract: record() on a disabled trace takes no lock and stores
    // nothing (one relaxed atomic load on the hot path).
    DecisionTrace trace;
    trace.setEnabled(false);
    ThreadPool pool(4);
    pool.parallelFor(0, 10000, 64, [&](std::size_t) {
        DecisionRecord r;
        trace.record(std::move(r));
    });
    EXPECT_EQ(trace.totalRecorded(), 0u);
    EXPECT_EQ(trace.size(), 0u);
}
