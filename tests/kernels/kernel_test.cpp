/**
 * Kernel-layer equivalence suite: every fast path in src/kernels/
 * must either be bit-identical to the legacy expression it replaced
 * (scaleExact, upperBoundIndex, lockstep thermal solves, the SoA
 * corner-delay pass, the thermal memo) or stay within the bound it
 * advertises (PowTable, scaleFast vs kScaleRelErrorBound).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "kernels/alpha_power.hh"
#include "kernels/fast_math.hh"
#include "kernels/path_soa.hh"
#include "kernels/pe_surface.hh"
#include "kernels/thermal_batch.hh"
#include "thermal/thermal_model.hh"
#include "timing/error_model.hh"
#include "timing/path_population.hh"
#include "variation/chip.hh"

namespace eval {
namespace {

struct Fixture
{
    ProcessParams params;
    ChipFactory factory{params, 77};
    Chip chip{factory.manufacture()};
};

StageErrorModel
makeModel(const Fixture &f, SubsystemId id)
{
    Rng rng = f.chip.forkRng(0x5150 +
                             static_cast<std::uint64_t>(id) * 13);
    return StageErrorModel(
        f.params, buildPathPopulation(f.chip, 0, id, {}, rng));
}

/** Restores the kernel toggles around a test body. */
class ToggleGuard
{
  public:
    ToggleGuard()
        : cache_(peCacheEnabled()), table_(peTableEnabled()),
          thermal_(thermalCacheEnabled())
    {
    }
    ~ToggleGuard()
    {
        setPeCacheEnabled(cache_);
        setPeTableEnabled(table_);
        setThermalCacheEnabled(thermal_);
    }

  private:
    bool cache_;
    bool table_;
    bool thermal_;
};

// ---------------------------------------------------------------------------
// PowTable
// ---------------------------------------------------------------------------

TEST(PowTable, MeasuredBoundHoldsOnResample)
{
    // The same (exponent, range, size) the PE surface installs for
    // the overdrive term; its measured error must clear the asserted
    // bound with margin (half of it, per the DESIGN.md derivation).
    const PowTable &t = powTableFor(1.75, 0.25, 1.5, 4096);
    ASSERT_GT(t.maxRelError(), 0.0);
    EXPECT_LT(t.maxRelError(), 0.5 * PeSurface::kScaleRelErrorBound);
    // Resample at points the builder did not necessarily hit; the
    // measured bound was taken over a dense per-segment sweep, so a
    // small margin absorbs sampling phase.
    for (int i = 0; i <= 10000; ++i) {
        const double x = 0.25 + (1.5 - 0.25) * i / 10000.0;
        const double rel = std::abs(t(x) / std::pow(x, 1.75) - 1.0);
        EXPECT_LE(rel, 1.10 * t.maxRelError() + 1e-15) << "x=" << x;
    }
}

TEST(PowTable, OutOfRangeFallsBackToExactPow)
{
    const PowTable &t = powTableFor(1.75, 0.25, 1.5, 4096);
    for (double x : {0.01, 0.249, 1.51, 3.0, 10.0}) {
        const double exact = std::pow(x, 1.75);
        EXPECT_EQ(t(x), exact) << "x=" << x;
    }
}

TEST(PowTable, RegistryReturnsSameTableForSameKey)
{
    const PowTable &a = powTableFor(1.5, 0.5, 2.0, 256);
    const PowTable &b = powTableFor(1.5, 0.5, 2.0, 256);
    EXPECT_EQ(&a, &b);
    const PowTable &c = powTableFor(1.5, 0.5, 2.0, 512);
    EXPECT_NE(&a, &c);
}

// ---------------------------------------------------------------------------
// PeSurface
// ---------------------------------------------------------------------------

TEST(PeSurface, UpperBoundIndexMatchesStdUpperBound)
{
    Fixture f;
    const StageErrorModel model = makeModel(f, SubsystemId::Icache);
    const PeSurface &s = model.surface();
    const std::vector<double> &d = s.delays();
    ASSERT_FALSE(d.empty());

    auto expected = [&d](double t) {
        return static_cast<std::size_t>(
            std::upper_bound(d.begin(), d.end(), t) - d.begin());
    };
    // Dense thresholds spanning below the fastest path to beyond the
    // slowest, plus the exact delay values themselves (tie sites the
    // bucket scan must handle identically).
    const double lo = 0.5 * d.front();
    const double hi = 1.5 * d.back();
    for (int i = 0; i <= 20000; ++i) {
        const double t = lo + (hi - lo) * i / 20000.0;
        ASSERT_EQ(s.upperBoundIndex(t), expected(t)) << "t=" << t;
    }
    for (double t : d)
        ASSERT_EQ(s.upperBoundIndex(t), expected(t)) << "t=" << t;
}

TEST(PeSurface, FirstIndexWithinBudgetMatchesLinearWalk)
{
    Fixture f;
    const StageErrorModel model = makeModel(f, SubsystemId::Decode);
    const PeSurface &s = model.surface();
    const std::size_t n = s.numPaths();

    auto walk = [&s, n](double budget) {
        // Legacy semantics: walk from the slowest path down while the
        // PE of letting one more path fail stays within budget (ties
        // keep walking).
        std::size_t i = n;
        while (i > 0 && s.level(i - 1) <= budget)
            --i;
        return i;
    };
    std::vector<double> budgets{0.0, 1e-12, 1e-8, 1e-6, 1e-4,
                                1e-2, 0.5, 1.0};
    for (std::size_t k = 0; k < n; k += n / 37 + 1) {
        budgets.push_back(s.level(k));           // exact boundary ties
        budgets.push_back(s.level(k) * (1.0 - 1e-12));
    }
    for (double b : budgets)
        EXPECT_EQ(s.firstIndexWithinBudget(b), walk(b)) << "budget=" << b;
}

TEST(PeSurface, FastScaleWithinAssertedBound)
{
    Fixture f;
    const StageErrorModel model = makeModel(f, SubsystemId::IntReg);
    const PeSurface &s = model.surface();
    for (double vdd = 0.70; vdd <= 1.25; vdd += 0.025) {
        for (double vbb = -0.30; vbb <= 0.30; vbb += 0.15) {
            for (double t = 40.0; t <= 110.0; t += 7.0) {
                const OperatingConditions op{vdd, vbb, t};
                const double exact = s.scaleExact(op);
                const double fast = s.scaleFast(op);
                if (exact >= kNonFunctionalDelayFactor) {
                    EXPECT_GE(fast, kNonFunctionalDelayFactor);
                    continue;
                }
                EXPECT_LE(std::abs(fast / exact - 1.0),
                          PeSurface::kScaleRelErrorBound)
                    << "vdd=" << vdd << " vbb=" << vbb << " T=" << t;
            }
        }
    }
}

TEST(PeSurface, ExactScaleBacksDelayScale)
{
    Fixture f;
    const StageErrorModel model = makeModel(f, SubsystemId::Dcache);
    for (double vdd : {0.8, 1.0, 1.15}) {
        const OperatingConditions op{vdd, 0.05, 90.0};
        EXPECT_EQ(model.delayScale(op), model.surface().scaleExact(op));
    }
}

// ---------------------------------------------------------------------------
// SoA corner-delay kernel
// ---------------------------------------------------------------------------

TEST(PathSoA, CornerPathDelaysMatchScalarLoopBitwise)
{
    ProcessParams p;
    const OperatingConditions corner{p.vddNominal, 0.0, p.tempNominalC};
    const double tNom = 1.0 / p.freqNominal;
    const std::size_t n = 257;   // odd size exercises the loop tail

    std::vector<double> fraction(n), vt0(n), leff(n), got(n);
    for (std::size_t i = 0; i < n; ++i) {
        // Deterministic spread around the nominal point.
        const double u = static_cast<double>(i) / (n - 1);
        fraction[i] = 0.3 + 0.7 * u;
        vt0[i] = p.vtMean * (0.85 + 0.3 * u);
        leff[i] = 0.9 + 0.2 * (1.0 - u);
    }
    cornerPathDelays(p, tNom, fraction.data(), vt0.data(), leff.data(),
                     got.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
        const double want =
            fraction[i] * tNom * gateDelayFactor(p, vt0[i], leff[i], corner);
        ASSERT_EQ(got[i], want) << "i=" << i;
    }
}

// ---------------------------------------------------------------------------
// Batched thermal solves
// ---------------------------------------------------------------------------

std::vector<SubsystemThermalRequest>
makeRequests(const ProcessParams &p)
{
    std::vector<SubsystemThermalRequest> reqs;
    for (std::size_t i = 0; i < kNumSubsystems; ++i) {
        SubsystemThermalRequest r;
        r.id = static_cast<SubsystemId>(i);
        r.power.kdyn = 2.0e-10 * (1.0 + 0.1 * i);
        r.power.ksta = 4.0e-8 * (1.0 + 0.05 * i);
        r.vt0 = p.vtMean * (0.9 + 0.02 * i);
        r.vdd = 0.9 + 0.02 * (i % 5);
        r.vbb = -0.1 + 0.05 * (i % 4);
        r.freqHz = p.freqNominal * (0.8 + 0.03 * i);
        r.alphaF = 0.2 + 0.05 * (i % 3);
        reqs.push_back(r);
    }
    return reqs;
}

TEST(ThermalBatch, LockstepBatchMatchesScalarBitwise)
{
    ToggleGuard guard;
    setThermalCacheEnabled(false);

    ProcessParams p;
    ThermalModel model(p);
    const auto reqs = makeRequests(p);
    const double thC = 55.0;

    std::vector<SubsystemThermalState> batch(reqs.size());
    model.solveMany(reqs.data(), batch.data(), reqs.size(), thC);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        const auto &r = reqs[i];
        const SubsystemThermalState one = model.solveSubsystem(
            r.power, r.id, r.vt0, r.vdd, r.vbb, r.freqHz, r.alphaF, thC);
        ASSERT_EQ(batch[i].tempC, one.tempC) << "i=" << i;
        ASSERT_EQ(batch[i].pdyn, one.pdyn) << "i=" << i;
        ASSERT_EQ(batch[i].psta, one.psta) << "i=" << i;
        ASSERT_EQ(batch[i].vtEff, one.vtEff) << "i=" << i;
        ASSERT_EQ(batch[i].runaway, one.runaway) << "i=" << i;
    }
}

TEST(ThermalBatch, MemoHitsAreBitExact)
{
    ToggleGuard guard;
    ProcessParams p;
    ThermalModel model(p);
    const auto reqs = makeRequests(p);
    const double thC = 62.5;

    setThermalCacheEnabled(false);
    std::vector<SubsystemThermalState> cold(reqs.size());
    model.solveMany(reqs.data(), cold.data(), reqs.size(), thC);

    setThermalCacheEnabled(true);
    std::vector<SubsystemThermalState> warm(reqs.size());
    std::vector<SubsystemThermalState> hit(reqs.size());
    model.solveMany(reqs.data(), warm.data(), reqs.size(), thC);
    model.solveMany(reqs.data(), hit.data(), reqs.size(), thC);

    for (std::size_t i = 0; i < reqs.size(); ++i) {
        ASSERT_EQ(cold[i].tempC, warm[i].tempC) << "i=" << i;
        ASSERT_EQ(cold[i].tempC, hit[i].tempC) << "i=" << i;
        ASSERT_EQ(cold[i].psta, hit[i].psta) << "i=" << i;
        ASSERT_EQ(cold[i].vtEff, hit[i].vtEff) << "i=" << i;
        ASSERT_EQ(cold[i].runaway, hit[i].runaway) << "i=" << i;
    }
}

TEST(ThermalBatch, SaltSeparatesModels)
{
    // Two models must never share memo entries even for identical
    // lane inputs; different process constants give different solves.
    ToggleGuard guard;
    setThermalCacheEnabled(true);

    ProcessParams a;
    ProcessParams b = a;
    b.tempNominalC = 95.0;   // shifts the Eq 9 Vt reference
    ThermalModel ma(a);
    ThermalModel mb(b);
    const auto reqs = makeRequests(a);

    std::vector<SubsystemThermalState> ra(reqs.size()), rb(reqs.size());
    ma.solveMany(reqs.data(), ra.data(), reqs.size(), 60.0);
    mb.solveMany(reqs.data(), rb.data(), reqs.size(), 60.0);

    setThermalCacheEnabled(false);
    std::vector<SubsystemThermalState> rbCold(reqs.size());
    mb.solveMany(reqs.data(), rbCold.data(), reqs.size(), 60.0);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        // b's answers must match its own cold solve, not a's memo.
        ASSERT_EQ(rb[i].tempC, rbCold[i].tempC) << "i=" << i;
        ASSERT_EQ(rb[i].psta, rbCold[i].psta) << "i=" << i;
    }
}

} // namespace
} // namespace eval
