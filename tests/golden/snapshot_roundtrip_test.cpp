/**
 * Round-trip fidelity contract for the domain serializers: every
 * toSnapshot/fromSnapshot pair must reproduce the object exactly —
 * through the JSON text encoding AND the compact binary encoding —
 * and re-serialization must be byte-identical (the property the
 * golden digests rely on).
 */

#include <gtest/gtest.h>

#include "core/environment.hh"
#include "util/random.hh"
#include "valid/serializers.hh"
#include "variation/chip.hh"

using namespace eval;

namespace {

/** Serialize -> text -> parse -> serialize must be byte-identical;
 *  same through the binary codec. */
void
expectStableEncodings(const JsonValue &snap)
{
    const JsonValue fromText = JsonValue::parse(snap.dump(2));
    EXPECT_EQ(fromText, snap);
    EXPECT_EQ(fromText.dump(2), snap.dump(2));
    const JsonValue fromBinary = decodeBinary(encodeBinary(snap));
    EXPECT_EQ(fromBinary, snap);
    EXPECT_EQ(encodeBinary(fromBinary), encodeBinary(snap));
}

Chip
makeChip(std::uint64_t seed)
{
    ChipFactory factory(ProcessParams{}, seed);
    return factory.manufacture();
}

} // namespace

TEST(SnapshotRoundTrip, RngState)
{
    Rng rng(123);
    rng.gaussian();          // populate the Box-Muller cache
    (void)rng.uniform();
    const Rng::State state = rng.state();
    const Rng::State back = rngStateFromJson(toJson(state));
    EXPECT_EQ(back.words, state.words);
    EXPECT_EQ(back.hasCachedGaussian, state.hasCachedGaussian);
    EXPECT_EQ(back.cachedGaussian, state.cachedGaussian);

    // The restored generator continues the exact stream.
    Rng restored = Rng::fromState(back);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(restored.next(), rng.next());
}

TEST(SnapshotRoundTrip, VariationMap)
{
    const Chip chip = makeChip(99);
    const VariationMap &map = chip.map();
    const JsonValue snap = toSnapshot(map);
    expectStableEncodings(snap);

    const VariationMap back = variationMapFromSnapshot(
        decodeBinary(encodeBinary(JsonValue::parse(snap.dump()))));
    EXPECT_EQ(back.gridSize(), map.gridSize());
    EXPECT_EQ(back.vtSystematicField(), map.vtSystematicField());
    EXPECT_EQ(back.leffSystematicField(), map.leffSystematicField());
    // Restored map serializes to the same bytes.
    EXPECT_EQ(encodeBinary(toSnapshot(back)), encodeBinary(snap));
}

TEST(SnapshotRoundTrip, Chip)
{
    const Chip chip = makeChip(7);
    const JsonValue snap = toSnapshot(chip);
    expectStableEncodings(snap);

    const Chip back = chipFromSnapshot(snap);
    EXPECT_EQ(back.id(), chip.id());
    EXPECT_EQ(back.floorplan().numCores(), chip.floorplan().numCores());
    for (std::size_t i = 0; i < kNumSubsystems; ++i) {
        const auto id = static_cast<SubsystemId>(i);
        EXPECT_EQ(back.subsystemVtSys(0, id), chip.subsystemVtSys(0, id));
        EXPECT_EQ(back.subsystemLeffSys(0, id),
                  chip.subsystemLeffSys(0, id));
    }
    // The chip-local rng stream is preserved exactly.
    Rng a = chip.forkRng(5), b = back.forkRng(5);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), b.next());
    EXPECT_EQ(encodeBinary(toSnapshot(back)), encodeBinary(snap));
}

TEST(SnapshotRoundTrip, Characterization)
{
    ExperimentConfig cfg;
    cfg.seed = 3;
    cfg.chips = 1;
    cfg.simInsts = 40000;
    cfg.apps = {"gzip"};
    ExperimentContext ctx(cfg);
    const AppCharacterization &chr =
        ctx.characterizations().get(*ctx.selectedApps()[0]);

    const JsonValue snap = toSnapshot(chr);
    expectStableEncodings(snap);

    const AppCharacterization back = characterizationFromSnapshot(snap);
    EXPECT_EQ(back.name, chr.name);
    EXPECT_EQ(back.isFp, chr.isFp);
    ASSERT_EQ(back.phases.size(), chr.phases.size());
    for (std::size_t p = 0; p < chr.phases.size(); ++p) {
        EXPECT_EQ(back.phases[p].weight, chr.phases[p].weight);
        EXPECT_EQ(back.phases[p].chr.act.alpha,
                  chr.phases[p].chr.act.alpha);
        EXPECT_EQ(back.phases[p].chr.perfFull.cpiComp,
                  chr.phases[p].chr.perfFull.cpiComp);
    }
    EXPECT_EQ(encodeBinary(toSnapshot(back)), encodeBinary(snap));
}

TEST(SnapshotRoundTrip, AdaptationResult)
{
    AdaptationResult result;
    result.op.freq = 3.8125e9;
    for (std::size_t i = 0; i < kNumSubsystems; ++i) {
        result.op.knobs[i].vdd = 0.9 + 0.01 * static_cast<double>(i);
        result.op.knobs[i].vbb = -0.05;
        result.fmax[i] = 4.0e9 - 1e7 * static_cast<double>(i);
    }
    result.op.lowSlopeFu = true;
    result.op.smallQueue = false;
    result.feasible = true;
    result.predictedPerf = 2.34e9;
    result.predictedPe = 1.0 / 3.0e6;

    const JsonValue snap = toSnapshot(result);
    expectStableEncodings(snap);

    const AdaptationResult back = adaptationResultFromSnapshot(snap);
    EXPECT_EQ(back.op.freq, result.op.freq);
    EXPECT_EQ(back.op.lowSlopeFu, result.op.lowSlopeFu);
    EXPECT_EQ(back.op.smallQueue, result.op.smallQueue);
    EXPECT_EQ(back.feasible, result.feasible);
    EXPECT_EQ(back.predictedPerf, result.predictedPerf);
    EXPECT_EQ(back.predictedPe, result.predictedPe);
    EXPECT_EQ(back.fmax, result.fmax);
    for (std::size_t i = 0; i < kNumSubsystems; ++i) {
        EXPECT_EQ(back.op.knobs[i].vdd, result.op.knobs[i].vdd);
        EXPECT_EQ(back.op.knobs[i].vbb, result.op.knobs[i].vbb);
    }
}

TEST(SnapshotRoundTrip, StaleKindVersionFailsLoudly)
{
    JsonValue snap = toSnapshot(makeChip(1));
    snap.set("kind_version", 9999);
    EXPECT_THROW(chipFromSnapshot(snap), SnapshotError);
    snap.set("kind_version", 1);
    snap.set("kind", "variation_map");
    EXPECT_THROW(chipFromSnapshot(snap), SnapshotError);
}
