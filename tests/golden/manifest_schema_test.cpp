/** Golden pin of the run-manifest schema (manifest.hh).
 *
 *  Manifest *values* vary per machine (git SHA, compiler, flags,
 *  RSS), so this golden pins the schema SHAPE instead: every key
 *  path and its JSON type, values elided.  Renaming, removing, or
 *  re-typing a field trips the compare; additions require re-record
 *  plus a schema_version bump (reviewed via the golden diff).
 *
 *  Re-record after an intentional change:
 *      EVAL_GOLDEN_MODE=record ctest -R golden_manifest_schema_test
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "trace/manifest.hh"
#include "valid/golden.hh"
#include "valid/json_value.hh"

namespace eval {
namespace {

const char *
typeName(JsonValue::Type t)
{
    switch (t) {
      case JsonValue::Type::Null:   return "null";
      case JsonValue::Type::Bool:   return "bool";
      case JsonValue::Type::Int:    return "int";
      case JsonValue::Type::Double: return "double";
      case JsonValue::Type::String: return "string";
      case JsonValue::Type::Array:  return "array";
      case JsonValue::Type::Object: return "object";
    }
    return "?";
}

/** One "path: type" line per node, keys in document order; array
 *  element shape is taken from the first element. */
void
describeShape(const JsonValue &v, const std::string &path,
              std::string &out)
{
    out += path + ": " + typeName(v.type()) + "\n";
    if (v.type() == JsonValue::Type::Object) {
        for (const auto &[key, child] : v.asObject())
            describeShape(child, path + "." + key, out);
    } else if (v.type() == JsonValue::Type::Array && v.size() > 0) {
        describeShape(v.asArray()[0], path + "[]", out);
    }
}

TEST(ManifestSchemaGolden, ShapeMatchesRecordedSchema)
{
    // A representative manifest: every optional section populated so
    // the element shapes of stages/outputs are part of the pin.
    RunManifest &m = RunManifest::global();
    m.reset();
    m.setTool("manifest_schema_test");
    m.setSeed(1);
    m.setThreads(2);
    m.setConfig("seed=1;chips=1");
    m.addStage("run", 0.125);
    m.setOutput("stats", "stats.json");

    std::string shape;
    describeShape(JsonValue::parse(m.json()), "manifest", shape);
    m.reset();

    const std::string goldenPath =
        goldenDataDir() + "/manifest_schema.golden";
    if (goldenRecordMode()) {
        std::ofstream out(goldenPath, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << goldenPath;
        out << shape;
        ASSERT_TRUE(out.good());
        GTEST_SKIP() << "recorded " << goldenPath;
    }

    std::ifstream in(goldenPath, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing " << goldenPath
        << " — record with EVAL_GOLDEN_MODE=record";
    std::ostringstream os;
    os << in.rdbuf();
    EXPECT_EQ(shape, os.str())
        << "manifest schema drifted; if intentional, bump "
           "schema_version and re-record (EVAL_GOLDEN_MODE=record)";
}

} // namespace
} // namespace eval
