/**
 * Differential determinism suite: the same experiment must produce
 * bit-identical metrics whether it runs serially or on 2/4/8 threads,
 * and with the PE memo and thermal memo caches on or off.  Three
 * experiments cover the layers where parallelism and caching live:
 * chip manufacture (Rng::split fan-out), the optimizer (PE/thermal
 * cache hot paths), and the end-to-end managed sweep (per-chip
 * parallelMap + lazy shared caches).
 */

#include <gtest/gtest.h>

#include "valid/differential.hh"

using namespace eval;

namespace {

void
expectDeterministic(const std::string &experiment)
{
    const DifferentialReport report = runDifferential(experiment);
    EXPECT_TRUE(report.allIdentical()) << report.summary();
    // 3 thread counts + the PE-cache and thermal-cache toggles.
    EXPECT_EQ(report.checks.size(), 5u);
}

} // namespace

TEST(Differential, ChipPopulation)
{
    expectDeterministic("chip_population");
}

TEST(Differential, OptimizerDecisions)
{
    expectDeterministic("optimizer_decisions");
}

TEST(Differential, SweepMicro) { expectDeterministic("sweep_micro"); }

/**
 * Fuzzy-vs-exhaustive bounded-gap contract: the fuzzy controllers
 * approximate the exhaustive optimizer, so under the preferred
 * environment their mean relative frequency must stay within a
 * bounded gap (EXPERIMENTS.md documents the full-scale gap; the
 * micro config is noisier, hence the margin).
 */
TEST(Differential, FuzzyTracksExhaustive)
{
    const GoldenFile run = runValidationExperiment("sweep_micro");
    const GoldenMetric *fuzzy = run.find("pref_fuzzy_freq_rel");
    const GoldenMetric *exh = run.find("pref_exh_freq_rel");
    ASSERT_NE(fuzzy, nullptr);
    ASSERT_NE(exh, nullptr);
    EXPECT_NEAR(fuzzy->value, exh->value, 0.12)
        << "fuzzy controller drifted away from the exhaustive optimizer";
}
