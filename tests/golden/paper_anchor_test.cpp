/**
 * Paper-anchor goldens: beyond bit-stability, the headline numbers
 * must stay inside the bands the EVAL paper (and EXPERIMENTS.md)
 * establish.  Two layers:
 *  - checkGolden() pins the exact values with a relative tolerance
 *    (1e-9) so silent drift is caught;
 *  - hard assertions pin the physical bands, so even a deliberate
 *    golden regeneration cannot land outside the paper's story.
 *
 * Bands (documented in TESTING.md):
 *  - Baseline mean relative frequency ~78% of nominal (Fig 10):
 *    accept [0.70, 0.85] on the micro config.
 *  - The preferred scheme (TS+ASV+Queue+FU, fuzzy) recovers a large
 *    fraction of the loss: gain over Baseline >= 0.10.
 *  - Power stays under the 30W PMAX constraint.
 *  - Fig 13 shape: under the conservative voltage environments (A: TS
 *    only, B: TS+ABB) every adaptation lands in NoChange/LowFreq —
 *    nothing to overclock, so nothing can trip the error budget.  The
 *    ASV environments (C, D) overclock aggressively and the micro
 *    config (60k insts, 3 chips) pushes many invocations into the
 *    Error outcome — more than the paper's full-scale Fig 13, which
 *    keeps NoChange+LowFreq above ~50%; that is the documented
 *    divergence, so C/D get looser floors (>= 0.30 / >= 0.20).
 *    Thermal violations are rare everywhere (<= 5%).
 */

#include <gtest/gtest.h>

#include "valid/experiments.hh"

using namespace eval;

namespace {

double
metric(const GoldenFile &run, const std::string &name)
{
    const GoldenMetric *m = run.find(name);
    EXPECT_NE(m, nullptr) << "missing metric " << name;
    return m != nullptr ? m->value : 0.0;
}

} // namespace

TEST(PaperAnchor, HeadlineNumbers)
{
    const GoldenFile run = runValidationExperiment("paper_headline");

    const GoldenCheckResult result = checkGolden(run);
    if (!result.recorded) {
        EXPECT_TRUE(result.ok) << result.message;
    }

    const double baseline = metric(run, "baseline_freq_rel");
    const double preferred = metric(run, "preferred_freq_rel");
    const double gain = metric(run, "freq_gain");

    EXPECT_GE(baseline, 0.70) << "baseline frequency too low vs Fig 10";
    EXPECT_LE(baseline, 0.85) << "baseline frequency too high vs Fig 10";
    EXPECT_GE(gain, 0.10)
        << "preferred scheme no longer recovers the variation loss";
    EXPECT_EQ(gain, preferred - baseline);

    EXPECT_LE(metric(run, "preferred_power_w"), 30.0)
        << "preferred scheme exceeds the PMAX constraint";
    EXPECT_LE(metric(run, "novar_power_w"), 30.0);

    // NoVar is the perfRel reference: its own relative performance is
    // 1 by construction, and the variation-afflicted runs cannot beat
    // a sane bound around it.
    EXPECT_NEAR(metric(run, "novar_perf_rel"), 1.0, 1e-9);
    EXPECT_GT(metric(run, "preferred_perf_rel"), 0.5);
}

TEST(PaperAnchor, Fig13OutcomeDistribution)
{
    const GoldenFile run = runValidationExperiment("fig13_micro");

    const GoldenCheckResult result = checkGolden(run);
    if (!result.recorded) {
        EXPECT_TRUE(result.ok) << result.message;
    }

    const struct {
        const char *tag;
        double minGoodShare; ///< NoChange+LowFreq floor
    } envs[] = {
        {"a_ts", 0.90},
        {"b_ts_abb", 0.90},
        // ASV overclocking trades LowFreq for Error outcomes on the
        // micro config — the documented divergence from the paper's
        // >= 50% line (see the header comment and TESTING.md).
        {"c_ts_asv", 0.30},
        {"d_ts_abb_asv", 0.20},
    };
    for (const auto &env : envs) {
        const std::string tag(env.tag);
        const double total = metric(run, tag + "_invocations");
        ASSERT_GT(total, 0.0) << tag;
        const double good = metric(run, tag + "_out_no_change") +
                            metric(run, tag + "_out_low_freq");
        EXPECT_GE(good / total, env.minGoodShare)
            << tag << ": NoChange+LowFreq no longer dominate";
        EXPECT_LE(metric(run, tag + "_out_temp") / total, 0.05)
            << tag << ": thermal violations should be rare";
    }
}
