/**
 * The golden-compare suite: run each validation experiment and check
 * it against the committed golden file (or rewrite the golden in
 * record mode — see scripts/regen_goldens.sh).  Includes the negative
 * control: a deliberate 1% error-model perturbation MUST break the
 * optimizer-decision golden, proving the suite has teeth.
 */

#include <gtest/gtest.h>

#include "valid/experiments.hh"

using namespace eval;

namespace {

void
runAndCheck(const std::string &name)
{
    const GoldenCheckResult result =
        checkGolden(runValidationExperiment(name));
    if (result.recorded) {
        GTEST_SKIP() << "recorded " << result.goldenPath;
    }
    EXPECT_TRUE(result.ok) << result.message;
}

} // namespace

TEST(GoldenCompare, ChipPopulation) { runAndCheck("chip_population"); }

TEST(GoldenCompare, OptimizerDecisions)
{
    runAndCheck("optimizer_decisions");
}

TEST(GoldenCompare, SweepMicro) { runAndCheck("sweep_micro"); }

TEST(GoldenCompare, Fig13Micro) { runAndCheck("fig13_micro"); }

/**
 * Negative control: scale the error-model gain by 1% and the
 * optimizer-decision golden must FAIL.  If this test ever sees a
 * clean compare, the golden metrics have lost their sensitivity to
 * the error model and the whole suite is decorative.
 */
TEST(GoldenCompare, DetectsErrorModelPerturbation)
{
    if (goldenRecordMode())
        GTEST_SKIP() << "record mode: goldens are being rewritten";

    ExperimentTweaks tweaks;
    tweaks.delayVariationGainScale = 1.01;
    const GoldenCheckResult result = checkGolden(
        runValidationExperiment("optimizer_decisions", tweaks));
    EXPECT_FALSE(result.ok)
        << "a 1% error-model perturbation went undetected";
    EXPECT_FALSE(result.diffs.empty());
}

/** Same sensitivity check for the end-to-end sweep path. */
TEST(GoldenCompare, SweepDetectsErrorModelPerturbation)
{
    if (goldenRecordMode())
        GTEST_SKIP() << "record mode: goldens are being rewritten";

    ExperimentTweaks tweaks;
    tweaks.delayVariationGainScale = 1.01;
    const GoldenCheckResult result =
        checkGolden(runValidationExperiment("sweep_micro", tweaks));
    EXPECT_FALSE(result.ok)
        << "a 1% error-model perturbation went undetected";
}
