/** Golden pin of the live-status schema (metrics_sampler.hh).
 *
 *  Status *values* vary per run (pid, RSS, rates), so this golden
 *  pins the schema SHAPE: every key path and its JSON type, values
 *  elided.  The snapshot is built by hand — not via sampleNow() — so
 *  the shape is a pure function of statusJson() and records every
 *  section populated (progress rows, stats entries).  Renaming,
 *  removing, or re-typing a field trips the compare; additions
 *  require re-record plus a schema_version bump.
 *
 *  Re-record after an intentional change:
 *      EVAL_GOLDEN_MODE=record ctest -R golden_status_schema_test
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "obs/metrics_sampler.hh"
#include "valid/golden.hh"
#include "valid/json_value.hh"

namespace eval {
namespace {

const char *
typeName(JsonValue::Type t)
{
    switch (t) {
      case JsonValue::Type::Null:   return "null";
      case JsonValue::Type::Bool:   return "bool";
      case JsonValue::Type::Int:    return "int";
      case JsonValue::Type::Double: return "double";
      case JsonValue::Type::String: return "string";
      case JsonValue::Type::Array:  return "array";
      case JsonValue::Type::Object: return "object";
    }
    return "?";
}

/** One "path: type" line per node, keys in document order; array
 *  element shape is taken from the first element. */
void
describeShape(const JsonValue &v, const std::string &path,
              std::string &out)
{
    out += path + ": " + typeName(v.type()) + "\n";
    if (v.type() == JsonValue::Type::Object) {
        for (const auto &[key, child] : v.asObject())
            describeShape(child, path + "." + key, out);
    } else if (v.type() == JsonValue::Type::Array && v.size() > 0) {
        describeShape(v.asArray()[0], path + "[]", out);
    }
}

TEST(StatusSchemaGolden, ShapeMatchesRecordedSchema)
{
    // A representative snapshot with every section populated,
    // including the awkward numeric cases: an unknown ETA (-1), a
    // zero rate, and a complete fraction — all of which must still
    // serialize as JSON doubles for shape stability.
    StatusSnapshot snap;
    snap.seq = 3;
    snap.final = false;
    snap.tool = "status_schema_test";
    snap.pid = 12345;
    snap.uptimeS = 1.5;
    snap.intervalMs = 500;
    snap.resources.rssKb = 4096;
    snap.resources.peakRssKb = 8192;
    snap.resources.cpuUserS = 0.25;
    snap.resources.cpuSysS = 0.0;
    snap.resources.threads = 4;

    ProgressSample running;
    running.name = "chips";
    running.total = 100;
    running.done = 40;
    running.fraction = 0.4;
    running.ratePerS = 12.5;
    running.etaS = 4.8;
    running.elapsedS = 3.2;
    snap.progress.push_back(running);

    ProgressSample fresh;
    fresh.name = "manufacture";
    fresh.total = 10;
    fresh.done = 0;
    fresh.fraction = 0.0;
    fresh.ratePerS = 0.0;
    fresh.etaS = -1.0; // unknown: still a double in the document
    fresh.elapsedS = 0.0;
    snap.progress.push_back(fresh);

    snap.stats.emplace_back("chip.count", 40.0);
    snap.stats.emplace_back("perf.cpi.mean", 1.25);

    std::string shape;
    describeShape(
        JsonValue::parse(MetricsSampler::statusJson(snap)), "status",
        shape);

    const std::string goldenPath =
        goldenDataDir() + "/status_schema.golden";
    if (goldenRecordMode()) {
        std::ofstream out(goldenPath, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << goldenPath;
        out << shape;
        ASSERT_TRUE(out.good());
        GTEST_SKIP() << "recorded " << goldenPath;
    }

    std::ifstream in(goldenPath, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing " << goldenPath
        << " — record with EVAL_GOLDEN_MODE=record";
    std::ostringstream os;
    os << in.rdbuf();
    EXPECT_EQ(shape, os.str())
        << "status schema drifted; if intentional, bump "
           "schema_version and re-record (EVAL_GOLDEN_MODE=record)";
}

} // namespace
} // namespace eval
