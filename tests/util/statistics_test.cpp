/** Tests for streaming statistics (util/statistics.hh). */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "util/random.hh"
#include "util/statistics.hh"

namespace eval {
namespace {

TEST(RunningStats, Empty)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance of the classic dataset is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSingleStream)
{
    Rng rng(3);
    RunningStats whole, a, b;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.gaussian(3.0, 2.0);
        whole.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a, b;
    a.add(1.0);
    a.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Histogram, BinningAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(5.5);
    h.add(5.6);
    h.add(-100.0);   // clamps into the first bin
    h.add(100.0);    // clamps into the last bin
    EXPECT_DOUBLE_EQ(h.count(0), 2.0);
    EXPECT_DOUBLE_EQ(h.count(5), 2.0);
    EXPECT_DOUBLE_EQ(h.count(9), 1.0);
    EXPECT_DOUBLE_EQ(h.totalWeight(), 5.0);
}

TEST(Histogram, WeightedQuantile)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
    EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
}

TEST(Histogram, RenderContainsBars)
{
    Histogram h(0.0, 2.0, 2);
    h.add(0.5);
    h.add(0.6);
    h.add(1.5);
    const std::string s = h.render(10);
    EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(SampleSet, Percentiles)
{
    SampleSet s;
    for (int i = 1; i <= 100; ++i)
        s.add(static_cast<double>(i));
    EXPECT_NEAR(s.percentile(0.0), 1.0, 1e-12);
    EXPECT_NEAR(s.percentile(1.0), 100.0, 1e-12);
    EXPECT_NEAR(s.percentile(0.5), 50.5, 1e-9);
    EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

TEST(SampleSet, PercentileUnsortedInput)
{
    SampleSet s;
    for (double x : {9.0, 1.0, 5.0, 3.0, 7.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.percentile(0.5), 5.0);
}

TEST(Histogram, EmptyHistogramIsNanFree)
{
    Histogram h(0.0, 10.0, 4);
    EXPECT_DOUBLE_EQ(h.totalWeight(), 0.0);
    for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
        const double v = h.quantile(q);
        EXPECT_FALSE(std::isnan(v)) << "q=" << q;
        EXPECT_DOUBLE_EQ(v, 0.0); // empty -> lo()
    }
    EXPECT_NO_THROW((void)h.render(10));
}

TEST(Histogram, SingleSampleQuantiles)
{
    Histogram h(0.0, 10.0, 10);
    h.add(3.5);
    // q = 0 is the distribution's low edge by definition; every
    // positive quantile must land inside the lone sample's bin.
    EXPECT_FALSE(std::isnan(h.quantile(0.0)));
    EXPECT_GE(h.quantile(0.0), 0.0);
    EXPECT_LE(h.quantile(0.0), 4.0);
    for (double q : {0.25, 0.5, 0.75, 1.0}) {
        const double v = h.quantile(q);
        EXPECT_FALSE(std::isnan(v));
        EXPECT_GE(v, 3.0) << "q=" << q; // inside the sample's bin
        EXPECT_LE(v, 4.0) << "q=" << q;
    }
}

TEST(Histogram, NanAndInfInputsAreHandled)
{
    Histogram h(0.0, 10.0, 10);
    h.add(std::nan(""));                   // dropped
    h.add(5.0, std::nan(""));              // dropped
    EXPECT_DOUBLE_EQ(h.totalWeight(), 0.0);
    h.add(std::numeric_limits<double>::infinity());   // clamps high
    h.add(-std::numeric_limits<double>::infinity());  // clamps low
    EXPECT_DOUBLE_EQ(h.count(0), 1.0);
    EXPECT_DOUBLE_EQ(h.count(9), 1.0);
    EXPECT_FALSE(std::isnan(h.quantile(0.5)));
}

TEST(HistogramDeath, DegenerateRangeIsRejected)
{
    // A zero-width range would make every bin boundary identical and
    // quantiles meaningless; the constructor asserts it away rather
    // than producing NaNs downstream.
    EXPECT_DEATH({ Histogram h(5.0, 5.0, 3); }, "hi > lo");
    EXPECT_DEATH({ Histogram h(0.0, 1.0, 0); }, "bins > 0");
}

TEST(SampleSet, EmptyPercentileIsZeroNotNan)
{
    SampleSet s;
    EXPECT_TRUE(s.empty());
    for (double p : {0.0, 0.5, 1.0}) {
        const double v = s.percentile(p);
        EXPECT_FALSE(std::isnan(v));
        EXPECT_DOUBLE_EQ(v, 0.0);
    }
}

TEST(SampleSet, SingleSamplePercentilesAreTheSample)
{
    SampleSet s;
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 42.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.5), 42.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 42.0);
}

} // namespace
} // namespace eval
