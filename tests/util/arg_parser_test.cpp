/** Tests for the command-line argument parser. */

#include <gtest/gtest.h>

#include "util/arg_parser.hh"

namespace eval {
namespace {

ArgParser
parse(std::initializer_list<const char *> args)
{
    std::vector<const char *> argv{"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, PositionalArguments)
{
    const ArgParser p = parse({"run", "extra"});
    ASSERT_EQ(p.positional().size(), 2u);
    EXPECT_EQ(p.positional()[0], "run");
    EXPECT_EQ(p.positional()[1], "extra");
}

TEST(ArgParser, SpaceSeparatedValue)
{
    const ArgParser p = parse({"--app", "swim"});
    EXPECT_TRUE(p.has("app"));
    EXPECT_EQ(p.getString("app", "x"), "swim");
}

TEST(ArgParser, EqualsSeparatedValue)
{
    const ArgParser p = parse({"--chips=12"});
    EXPECT_EQ(p.getInt("chips", 0), 12);
}

TEST(ArgParser, BareFlagIsTrue)
{
    const ArgParser p = parse({"--fast"});
    EXPECT_TRUE(p.getBool("fast"));
    EXPECT_FALSE(p.getBool("slow"));
}

TEST(ArgParser, FlagFollowedByOption)
{
    const ArgParser p = parse({"--fast", "--app", "mcf"});
    EXPECT_TRUE(p.getBool("fast"));
    EXPECT_EQ(p.getString("app", ""), "mcf");
}

TEST(ArgParser, NumericParsing)
{
    const ArgParser p = parse({"--seed", "42", "--scale", "1.5"});
    EXPECT_EQ(p.getInt("seed", 0), 42);
    EXPECT_DOUBLE_EQ(p.getDouble("scale", 0.0), 1.5);
    EXPECT_EQ(p.getInt("missing", 7), 7);
    EXPECT_DOUBLE_EQ(p.getDouble("missing", 2.5), 2.5);
}

TEST(ArgParser, MalformedIntegerIsFatal)
{
    EXPECT_DEATH(
        {
            const ArgParser p = parse({"--chips", "twelve"});
            p.getInt("chips", 0);
        },
        "expects an integer");
}

TEST(ArgParser, UnusedKeysDetected)
{
    const ArgParser p = parse({"--app", "swim", "--typo", "1"});
    (void)p.getString("app", "");
    const auto unused = p.unusedKeys();
    ASSERT_EQ(unused.size(), 1u);
    EXPECT_EQ(unused[0], "typo");
}

TEST(ArgParser, MixedPositionalAndOptions)
{
    const ArgParser p = parse({"sweep", "--chips", "3", "tail"});
    ASSERT_EQ(p.positional().size(), 2u);
    EXPECT_EQ(p.positional()[0], "sweep");
    EXPECT_EQ(p.positional()[1], "tail");
    EXPECT_EQ(p.getInt("chips", 0), 3);
}

} // namespace
} // namespace eval
