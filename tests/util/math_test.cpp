/** Tests for numeric helpers (util/math_utils.hh). */

#include <cmath>

#include <gtest/gtest.h>

#include "util/math_utils.hh"

namespace eval {
namespace {

TEST(NormalCdf, KnownValues)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(1.0), 0.8413447460685429, 1e-9);
    EXPECT_NEAR(normalCdf(-1.0), 1.0 - 0.8413447460685429, 1e-9);
    EXPECT_NEAR(normalCdf(3.0), 0.9986501019683699, 1e-9);
}

TEST(NormalCdf, ScaledForm)
{
    EXPECT_NEAR(normalCdf(10.0, 10.0, 2.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(12.0, 10.0, 2.0), normalCdf(1.0), 1e-12);
}

TEST(NormalQuantile, InvertsCdf)
{
    for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
        const double x = normalQuantile(p);
        EXPECT_NEAR(normalCdf(x), p, 1e-6) << "p=" << p;
    }
}

TEST(NormalQuantile, TailAccuracy)
{
    EXPECT_NEAR(normalQuantile(1e-4), -3.719016485, 1e-5);
    EXPECT_NEAR(normalQuantile(1.0 - 1e-4), 3.719016485, 1e-5);
}

TEST(LerpClamp, Basics)
{
    EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.0), 2.0);
    EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(Interpolate, PiecewiseLinear)
{
    const std::vector<double> xs{0.0, 1.0, 2.0};
    const std::vector<double> ys{0.0, 10.0, 40.0};
    EXPECT_DOUBLE_EQ(interpolate(xs, ys, 0.5), 5.0);
    EXPECT_DOUBLE_EQ(interpolate(xs, ys, 1.5), 25.0);
    // Flat extrapolation.
    EXPECT_DOUBLE_EQ(interpolate(xs, ys, -1.0), 0.0);
    EXPECT_DOUBLE_EQ(interpolate(xs, ys, 3.0), 40.0);
}

TEST(FixedPoint, ConvergesToRoot)
{
    // x = cos(x) has the Dottie number as its fixed point.
    bool converged = false;
    const double x = fixedPoint([](double v) { return std::cos(v); }, 0.5,
                                1.0, 1e-10, 500, &converged);
    EXPECT_TRUE(converged);
    EXPECT_NEAR(x, 0.7390851332151607, 1e-7);
}

TEST(FixedPoint, DampingStabilizesDivergentMap)
{
    // x -> 3.2 - x oscillates undamped; damping finds x = 1.6.
    bool converged = false;
    const double x = fixedPoint([](double v) { return 3.2 - v; }, 0.0, 0.5,
                                1e-10, 500, &converged);
    EXPECT_TRUE(converged);
    EXPECT_NEAR(x, 1.6, 1e-6);
}

TEST(GoldenSection, FindsParabolaPeak)
{
    const double x = goldenSectionMax(
        [](double v) { return -(v - 2.5) * (v - 2.5); }, 0.0, 10.0, 1e-7);
    EXPECT_NEAR(x, 2.5, 1e-5);
}

/** Property sweep: quantile/CDF round trip across the unit interval. */
class QuantileRoundTrip : public ::testing::TestWithParam<double>
{
};

TEST_P(QuantileRoundTrip, CdfOfQuantileIsIdentity)
{
    const double p = GetParam();
    EXPECT_NEAR(normalCdf(normalQuantile(p)), p, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, QuantileRoundTrip,
                         ::testing::Values(1e-6, 1e-4, 0.02, 0.3, 0.5,
                                           0.7, 0.98, 1.0 - 1e-4,
                                           1.0 - 1e-6));

} // namespace
} // namespace eval
