/** Tests for log filtering: levels, quiet mode, timestamps, and
 *  thread/span context prefixes. */

#include <gtest/gtest.h>

#include "trace/span_tracer.hh"
#include "util/logging.hh"

namespace eval {
namespace {

/** Restore global logging state around each test. */
class LoggingTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setQuiet(false);
        setMinLogLevel(LogLevel::Inform);
        setLogTimestamps(false);
        setLogThreads(false);
    }

    void
    TearDown() override
    {
        setQuiet(false);
        setMinLogLevel(LogLevel::Inform);
        setLogTimestamps(false);
        setLogThreads(false);
        SpanTracer::global().setEnabled(false);
        SpanTracer::global().clear();
    }

    std::string
    captured(void (*emit)())
    {
        ::testing::internal::CaptureStderr();
        emit();
        return ::testing::internal::GetCapturedStderr();
    }
};

TEST_F(LoggingTest, InformPrintsAtDefaultLevel)
{
    const std::string out = captured([] { inform("hello ", 42); });
    EXPECT_EQ(out, "[info] hello 42\n");
}

TEST_F(LoggingTest, MinLevelFiltersBelow)
{
    setMinLogLevel(LogLevel::Warn);
    EXPECT_EQ(captured([] { inform("dropped"); }), "");
    EXPECT_EQ(captured([] { warn("kept"); }), "[warn] kept\n");

    setMinLogLevel(LogLevel::Fatal);
    EXPECT_EQ(captured([] { warn("dropped too"); }), "");
}

TEST_F(LoggingTest, QuietSuppressesEverythingBelowFatal)
{
    setQuiet(true);
    EXPECT_TRUE(isQuiet());
    EXPECT_EQ(captured([] { inform("x"); }), "");
    EXPECT_EQ(captured([] { warn("y"); }), "");
    setQuiet(false);
    EXPECT_FALSE(isQuiet());
}

TEST_F(LoggingTest, TimestampPrefixShape)
{
    setLogTimestamps(true);
    EXPECT_TRUE(logTimestamps());
    const std::string out = captured([] { warn("stamped"); });
    // "+S.mmms [warn] stamped\n" — monotonic seconds since process
    // start (the span-trace clock), not wall-clock time of day.
    ASSERT_GE(out.size(), 8u);
    EXPECT_EQ(out[0], '+');
    const std::size_t dot = out.find('.');
    ASSERT_NE(dot, std::string::npos);
    EXPECT_EQ(out.substr(dot + 4, 2), "s ");
    EXPECT_NE(out.find("s [warn] stamped\n"), std::string::npos);
}

TEST_F(LoggingTest, ThreadPrefixCarriesTidAndOpenSpan)
{
    setLogThreads(true);
    EXPECT_TRUE(logThreads());

    // No span open: "[tN] " only.
    std::string out = captured([] { warn("plain"); });
    ASSERT_EQ(out.rfind("[t", 0), 0u) << out;
    EXPECT_NE(out.find("] [warn] plain\n"), std::string::npos) << out;
    EXPECT_EQ(out.find(' '), out.find("] ") + 1) << out;

    // With an open span, the innermost span name rides along.
    SpanTracer::global().setEnabled(true);
    {
        ScopedSpan span("test.logging");
        out = captured([] { warn("spanned"); });
    }
    SpanTracer::global().setEnabled(false);
    ASSERT_EQ(out.rfind("[t", 0), 0u) << out;
    EXPECT_NE(out.find(" test.logging] [warn] spanned\n"),
              std::string::npos)
        << out;
}

TEST_F(LoggingTest, ThreadPrefixComposesWithTimestamp)
{
    setLogThreads(true);
    setLogTimestamps(true);
    const std::string out = captured([] { warn("both"); });
    // Timestamp first, then thread context, then the level tag.
    EXPECT_EQ(out[0], '+') << out;
    const std::size_t tpos = out.find("[t");
    const std::size_t lpos = out.find("[warn]");
    ASSERT_NE(tpos, std::string::npos) << out;
    ASSERT_NE(lpos, std::string::npos) << out;
    EXPECT_LT(tpos, lpos) << out;
}

TEST_F(LoggingTest, FatalStillTerminatesWhenQuiet)
{
    setQuiet(true);
    EXPECT_EXIT(EVAL_FATAL("bad config"),
                ::testing::ExitedWithCode(1), "bad config");
}

} // namespace
} // namespace eval
