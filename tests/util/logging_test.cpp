/** Tests for log filtering: levels, quiet mode, timestamps. */

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace eval {
namespace {

/** Restore global logging state around each test. */
class LoggingTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setQuiet(false);
        setMinLogLevel(LogLevel::Inform);
        setLogTimestamps(false);
    }

    void
    TearDown() override
    {
        setQuiet(false);
        setMinLogLevel(LogLevel::Inform);
        setLogTimestamps(false);
    }

    std::string
    captured(void (*emit)())
    {
        ::testing::internal::CaptureStderr();
        emit();
        return ::testing::internal::GetCapturedStderr();
    }
};

TEST_F(LoggingTest, InformPrintsAtDefaultLevel)
{
    const std::string out = captured([] { inform("hello ", 42); });
    EXPECT_EQ(out, "[info] hello 42\n");
}

TEST_F(LoggingTest, MinLevelFiltersBelow)
{
    setMinLogLevel(LogLevel::Warn);
    EXPECT_EQ(captured([] { inform("dropped"); }), "");
    EXPECT_EQ(captured([] { warn("kept"); }), "[warn] kept\n");

    setMinLogLevel(LogLevel::Fatal);
    EXPECT_EQ(captured([] { warn("dropped too"); }), "");
}

TEST_F(LoggingTest, QuietSuppressesEverythingBelowFatal)
{
    setQuiet(true);
    EXPECT_TRUE(isQuiet());
    EXPECT_EQ(captured([] { inform("x"); }), "");
    EXPECT_EQ(captured([] { warn("y"); }), "");
    setQuiet(false);
    EXPECT_FALSE(isQuiet());
}

TEST_F(LoggingTest, TimestampPrefixShape)
{
    setLogTimestamps(true);
    EXPECT_TRUE(logTimestamps());
    const std::string out = captured([] { warn("stamped"); });
    // "HH:MM:SS.mmm [warn] stamped\n"
    ASSERT_GE(out.size(), 13u);
    EXPECT_EQ(out[2], ':');
    EXPECT_EQ(out[5], ':');
    EXPECT_EQ(out[8], '.');
    EXPECT_EQ(out[12], ' ');
    EXPECT_NE(out.find("[warn] stamped\n"), std::string::npos);
}

TEST_F(LoggingTest, FatalStillTerminatesWhenQuiet)
{
    setQuiet(true);
    EXPECT_EXIT(EVAL_FATAL("bad config"),
                ::testing::ExitedWithCode(1), "bad config");
}

} // namespace
} // namespace eval
