/** Tests for table/CSV formatting (util/table.hh, util/csv.hh). */

#include <gtest/gtest.h>

#include "util/csv.hh"
#include "util/table.hh"

namespace eval {
namespace {

TEST(Format, Doubles)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(1.0, 0), "1");
    EXPECT_EQ(formatPercent(0.145, 1), "14.5%");
}

TEST(TablePrinter, RendersHeaderAndRows)
{
    TablePrinter t("demo");
    t.header({"name", "value"});
    t.row({"alpha", "1"});
    t.rowValues("beta", {2.5, 3.5}, 1);
    const std::string s = t.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("2.5"), std::string::npos);
    EXPECT_NE(s.find("3.5"), std::string::npos);
}

TEST(TablePrinter, CsvOutput)
{
    TablePrinter t("csvdemo");
    t.header({"a", "b"});
    t.row({"1", "2"});
    const std::string csv = t.csv();
    EXPECT_NE(csv.find("# csvdemo"), std::string::npos);
    EXPECT_NE(csv.find("a,b"), std::string::npos);
    EXPECT_NE(csv.find("1,2"), std::string::npos);
}

TEST(TablePrinter, RaggedRowsAreTolerated)
{
    TablePrinter t("ragged");
    t.header({"x", "y", "z"});
    t.row({"only-one"});
    EXPECT_NE(t.str().find("only-one"), std::string::npos);
}

TEST(SeriesSet, CsvBlock)
{
    SeriesSet s("curves", "f");
    const std::size_t a = s.addSeries("pe");
    const std::size_t b = s.addSeries("perf");
    s.addSample(1.0);
    s.setValue(a, 0.1);
    s.setValue(b, 0.9);
    s.addSample(2.0);
    s.setValue(a, 0.2);

    const std::string csv = s.csv(3);
    EXPECT_NE(csv.find("# curves"), std::string::npos);
    EXPECT_NE(csv.find("f,pe,perf"), std::string::npos);
    EXPECT_NE(csv.find("1,0.1,0.9"), std::string::npos);
    // Missing value renders as an empty cell.
    EXPECT_NE(csv.find("2,0.2,"), std::string::npos);
}

TEST(SeriesSet, SeriesAddedAfterSamplesBackfillsNan)
{
    SeriesSet s("late", "x");
    s.addSample(1.0);
    const std::size_t idx = s.addSeries("l");
    s.addSample(2.0);
    s.setValue(idx, 5.0);
    const std::string csv = s.csv();
    EXPECT_NE(csv.find("1,"), std::string::npos);
    EXPECT_NE(csv.find("2,5"), std::string::npos);
}

} // namespace
} // namespace eval
