/** Tests for environment-driven configuration (util/config.hh). */

#include <cstdlib>

#include <gtest/gtest.h>

#include "util/config.hh"

namespace eval {
namespace {

class ConfigTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        unsetenv("EVAL_TEST_INT");
        unsetenv("EVAL_TEST_DOUBLE");
        unsetenv("EVAL_TEST_STR");
        unsetenv("EVAL_TEST_BOOL");
        unsetenv("EVAL_CHIPS");
        unsetenv("EVAL_SEED");
        unsetenv("EVAL_FAST");
        unsetenv("EVAL_APPS");
    }
};

TEST_F(ConfigTest, IntFallbackAndParse)
{
    EXPECT_EQ(envInt("EVAL_TEST_INT", 5), 5);
    setenv("EVAL_TEST_INT", "42", 1);
    EXPECT_EQ(envInt("EVAL_TEST_INT", 5), 42);
    setenv("EVAL_TEST_INT", "not-a-number", 1);
    EXPECT_EQ(envInt("EVAL_TEST_INT", 5), 5);
}

TEST_F(ConfigTest, DoubleParse)
{
    EXPECT_DOUBLE_EQ(envDouble("EVAL_TEST_DOUBLE", 1.5), 1.5);
    setenv("EVAL_TEST_DOUBLE", "2.25", 1);
    EXPECT_DOUBLE_EQ(envDouble("EVAL_TEST_DOUBLE", 1.5), 2.25);
}

TEST_F(ConfigTest, StringAndBool)
{
    EXPECT_EQ(envString("EVAL_TEST_STR", "dflt"), "dflt");
    setenv("EVAL_TEST_STR", "abc", 1);
    EXPECT_EQ(envString("EVAL_TEST_STR", "dflt"), "abc");

    EXPECT_FALSE(envBool("EVAL_TEST_BOOL", false));
    for (const char *v : {"1", "true", "yes", "on"}) {
        setenv("EVAL_TEST_BOOL", v, 1);
        EXPECT_TRUE(envBool("EVAL_TEST_BOOL", false)) << v;
    }
    setenv("EVAL_TEST_BOOL", "0", 1);
    EXPECT_FALSE(envBool("EVAL_TEST_BOOL", true));
}

TEST_F(ConfigTest, SplitCsvListTrims)
{
    const auto v = splitCsvList(" a, b ,c,, d ");
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v[0], "a");
    EXPECT_EQ(v[1], "b");
    EXPECT_EQ(v[2], "c");
    EXPECT_EQ(v[3], "d");
    EXPECT_TRUE(splitCsvList("").empty());
}

TEST_F(ConfigTest, RunConfigFromEnv)
{
    setenv("EVAL_CHIPS", "7", 1);
    setenv("EVAL_SEED", "99", 1);
    setenv("EVAL_FAST", "1", 1);
    setenv("EVAL_APPS", "swim,mcf", 1);
    const RunConfig cfg = RunConfig::fromEnv();
    EXPECT_EQ(cfg.chips, 7);
    EXPECT_EQ(cfg.seed, 99u);
    EXPECT_TRUE(cfg.fast);
    ASSERT_EQ(cfg.apps.size(), 2u);
    EXPECT_EQ(cfg.apps[0], "swim");
}

TEST_F(ConfigTest, RunConfigClampsChips)
{
    setenv("EVAL_CHIPS", "-3", 1);
    EXPECT_EQ(RunConfig::fromEnv().chips, 1);
}

} // namespace
} // namespace eval
