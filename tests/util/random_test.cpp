/** Tests for the deterministic PRNG (util/random.hh). */

#include <gtest/gtest.h>

#include "util/random.hh"
#include "util/statistics.hh"

namespace eval {
namespace {

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntWithinBound)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.uniformInt(17), 17u);
}

TEST(Rng, UniformIntCoversAllResidues)
{
    Rng rng(13);
    std::array<int, 8> seen{};
    for (int i = 0; i < 4000; ++i)
        ++seen[rng.uniformInt(8)];
    for (int count : seen)
        EXPECT_GT(count, 300);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(17);
    RunningStats stats;
    for (int i = 0; i < 200000; ++i)
        stats.add(rng.gaussian());
    EXPECT_NEAR(stats.mean(), 0.0, 0.02);
    EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, GaussianScaled)
{
    Rng rng(19);
    RunningStats stats;
    for (int i = 0; i < 100000; ++i)
        stats.add(rng.gaussian(5.0, 2.0));
    EXPECT_NEAR(stats.mean(), 5.0, 0.05);
    EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(23);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkIsDeterministic)
{
    Rng a(5), b(5);
    Rng fa = a.fork(100);
    Rng fb = b.fork(100);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(fa.next(), fb.next());
}

TEST(Rng, ForkLabelsIndependent)
{
    Rng parent(5);
    Rng f1 = parent.fork(1);
    Rng f2 = parent.fork(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (f1.next() == f2.next());
    EXPECT_LT(same, 2);
}

TEST(RngSplit, SplitDoesNotAdvanceParent)
{
    Rng parent(31), clone(31);
    // Splitting (any number of times, any label) is const: the parent
    // stream continues exactly as if no split had happened.
    (void)parent.split(0);
    (void)parent.split(1);
    (void)parent.split(0xFFFFFFFFFFFFFFFFULL);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(parent.next(), clone.next());
}

TEST(RngSplit, SplitIsAPureFunctionOfStateAndId)
{
    const Rng parent(37);
    Rng a = parent.split(12);
    Rng b = parent.split(12);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngSplit, DistinctIdsGiveIndependentStreams)
{
    const Rng parent(41);
    Rng a = parent.split(1);
    Rng b = parent.split(2);
    Rng c = parent.split(1 + (1ULL << 32)); // far-apart labels too
    int sameAb = 0, sameAc = 0;
    for (int i = 0; i < 64; ++i) {
        const std::uint64_t va = a.next();
        sameAb += (va == b.next());
        sameAc += (va == c.next());
    }
    EXPECT_LT(sameAb, 2);
    EXPECT_LT(sameAc, 2);
}

TEST(RngSplit, ChildDiffersFromParentStream)
{
    Rng parent(43);
    Rng child = parent.split(0);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (parent.next() == child.next());
    EXPECT_LT(same, 2);
}

TEST(RngSplit, ForkIsSplit)
{
    Rng parent(47), other(47);
    Rng f = parent.fork(9);
    Rng s = other.split(9);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(f.next(), s.next());
}

/**
 * Golden seed constants: these exact outputs are what every committed
 * golden file and chip population is built on.  If this test fails,
 * the PRNG algorithm changed and ALL goldens must be regenerated
 * (scripts/regen_goldens.sh) — do not update these literals casually.
 */
TEST(RngSplit, GoldenSeedConstantsLocked)
{
    Rng r1(1);
    EXPECT_EQ(r1.next(), 0xcfc5d07f6f03c29bULL);
    EXPECT_EQ(r1.next(), 0xbf424132963fe08dULL);
    EXPECT_EQ(r1.next(), 0x19a37d5757aaf520ULL);
    EXPECT_EQ(r1.next(), 0xbf08119f05cd56d6ULL);

    Rng child = Rng(42).split(7);
    EXPECT_EQ(child.next(), 0x937a3c3bac6c1b20ULL);
    EXPECT_EQ(child.next(), 0x3b263716b81996c0ULL);
    EXPECT_EQ(child.next(), 0x6d0e3ce80f23650bULL);
    EXPECT_EQ(child.next(), 0x21d77cea26682bbbULL);

    // The chip-population experiment seed.
    Rng pop(20080642);
    EXPECT_EQ(pop.next(), 0xf440675a4257ad09ULL);
}

/** Property sweep: uniformInt stays unbiased across bounds. */
class UniformIntSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(UniformIntSweep, MeanNearHalfBound)
{
    const std::uint64_t bound = GetParam();
    Rng rng(29 + bound);
    RunningStats stats;
    for (int i = 0; i < 50000; ++i)
        stats.add(static_cast<double>(rng.uniformInt(bound)));
    const double expected = (static_cast<double>(bound) - 1.0) / 2.0;
    EXPECT_NEAR(stats.mean(), expected,
                0.02 * static_cast<double>(bound) + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Bounds, UniformIntSweep,
                         ::testing::Values(2, 3, 7, 16, 100, 1000));

} // namespace
} // namespace eval
