/** Tests for the deterministic PRNG (util/random.hh). */

#include <gtest/gtest.h>

#include "util/random.hh"
#include "util/statistics.hh"

namespace eval {
namespace {

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntWithinBound)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.uniformInt(17), 17u);
}

TEST(Rng, UniformIntCoversAllResidues)
{
    Rng rng(13);
    std::array<int, 8> seen{};
    for (int i = 0; i < 4000; ++i)
        ++seen[rng.uniformInt(8)];
    for (int count : seen)
        EXPECT_GT(count, 300);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(17);
    RunningStats stats;
    for (int i = 0; i < 200000; ++i)
        stats.add(rng.gaussian());
    EXPECT_NEAR(stats.mean(), 0.0, 0.02);
    EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, GaussianScaled)
{
    Rng rng(19);
    RunningStats stats;
    for (int i = 0; i < 100000; ++i)
        stats.add(rng.gaussian(5.0, 2.0));
    EXPECT_NEAR(stats.mean(), 5.0, 0.05);
    EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(23);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkIsDeterministic)
{
    Rng a(5), b(5);
    Rng fa = a.fork(100);
    Rng fb = b.fork(100);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(fa.next(), fb.next());
}

TEST(Rng, ForkLabelsIndependent)
{
    Rng parent(5);
    Rng f1 = parent.fork(1);
    Rng f2 = parent.fork(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (f1.next() == f2.next());
    EXPECT_LT(same, 2);
}

/** Property sweep: uniformInt stays unbiased across bounds. */
class UniformIntSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(UniformIntSweep, MeanNearHalfBound)
{
    const std::uint64_t bound = GetParam();
    Rng rng(29 + bound);
    RunningStats stats;
    for (int i = 0; i < 50000; ++i)
        stats.add(static_cast<double>(rng.uniformInt(bound)));
    const double expected = (static_cast<double>(bound) - 1.0) / 2.0;
    EXPECT_NEAR(stats.mean(), expected,
                0.02 * static_cast<double>(bound) + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Bounds, UniformIntSweep,
                         ::testing::Values(2, 3, 7, 16, 100, 1000));

} // namespace
} // namespace eval
