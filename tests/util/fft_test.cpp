/** Tests for the FFT used by the correlated-field generator. */

#include <cmath>

#include <gtest/gtest.h>

#include "util/fft.hh"
#include "util/random.hh"

namespace eval {
namespace {

TEST(Fft, PowerOfTwoPredicate)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(1000));
}

TEST(Fft, DeltaTransformsToConstant)
{
    std::vector<Complex> data(8, Complex(0.0, 0.0));
    data[0] = Complex(1.0, 0.0);
    fft(data, false);
    for (const auto &v : data) {
        EXPECT_NEAR(v.real(), 1.0, 1e-12);
        EXPECT_NEAR(v.imag(), 0.0, 1e-12);
    }
}

TEST(Fft, RoundTripRecoversSignal)
{
    Rng rng(1);
    std::vector<Complex> data(64);
    std::vector<Complex> orig(64);
    for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = Complex(rng.gaussian(), rng.gaussian());
        orig[i] = data[i];
    }
    fft(data, false);
    fft(data, true);
    for (std::size_t i = 0; i < data.size(); ++i) {
        EXPECT_NEAR(data[i].real() / 64.0, orig[i].real(), 1e-9);
        EXPECT_NEAR(data[i].imag() / 64.0, orig[i].imag(), 1e-9);
    }
}

TEST(Fft, MatchesDirectDftOnSmallInput)
{
    Rng rng(2);
    const std::size_t n = 16;
    std::vector<Complex> data(n);
    for (auto &v : data)
        v = Complex(rng.gaussian(), rng.gaussian());
    std::vector<Complex> reference(n);
    for (std::size_t k = 0; k < n; ++k) {
        Complex acc(0.0, 0.0);
        for (std::size_t j = 0; j < n; ++j) {
            const double ang = -2.0 * M_PI * static_cast<double>(j * k) /
                               static_cast<double>(n);
            acc += data[j] * Complex(std::cos(ang), std::sin(ang));
        }
        reference[k] = acc;
    }
    fft(data, false);
    for (std::size_t k = 0; k < n; ++k) {
        EXPECT_NEAR(data[k].real(), reference[k].real(), 1e-9);
        EXPECT_NEAR(data[k].imag(), reference[k].imag(), 1e-9);
    }
}

TEST(Fft, ParsevalHolds)
{
    Rng rng(3);
    const std::size_t n = 128;
    std::vector<Complex> data(n);
    double timeEnergy = 0.0;
    for (auto &v : data) {
        v = Complex(rng.gaussian(), rng.gaussian());
        timeEnergy += std::norm(v);
    }
    fft(data, false);
    double freqEnergy = 0.0;
    for (const auto &v : data)
        freqEnergy += std::norm(v);
    EXPECT_NEAR(freqEnergy / static_cast<double>(n), timeEnergy, 1e-6);
}

TEST(Fft2d, RoundTrip)
{
    Rng rng(4);
    const std::size_t rows = 8, cols = 16;
    std::vector<Complex> data(rows * cols);
    std::vector<Complex> orig(rows * cols);
    for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = Complex(rng.gaussian(), rng.gaussian());
        orig[i] = data[i];
    }
    fft2d(data, rows, cols, false);
    fft2d(data, rows, cols, true);
    const double norm = static_cast<double>(rows * cols);
    for (std::size_t i = 0; i < data.size(); ++i) {
        EXPECT_NEAR(data[i].real() / norm, orig[i].real(), 1e-9);
        EXPECT_NEAR(data[i].imag() / norm, orig[i].imag(), 1e-9);
    }
}

TEST(Fft2d, SeparableSignalTransformsSeparably)
{
    // A constant image transforms to a single DC spike.
    const std::size_t n = 8;
    std::vector<Complex> data(n * n, Complex(1.0, 0.0));
    fft2d(data, n, n, false);
    EXPECT_NEAR(data[0].real(), static_cast<double>(n * n), 1e-9);
    for (std::size_t i = 1; i < data.size(); ++i)
        EXPECT_NEAR(std::abs(data[i]), 0.0, 1e-9);
}

} // namespace
} // namespace eval
