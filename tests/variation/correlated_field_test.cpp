/** Statistical tests for the correlated-field generator. */

#include <cmath>

#include <gtest/gtest.h>

#include "util/statistics.hh"
#include "variation/correlated_field.hh"

namespace eval {
namespace {

TEST(SphericalCorrelation, Endpoints)
{
    EXPECT_DOUBLE_EQ(sphericalCorrelation(0.0, 0.5), 1.0);
    EXPECT_DOUBLE_EQ(sphericalCorrelation(0.5, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(sphericalCorrelation(0.9, 0.5), 0.0);
}

TEST(SphericalCorrelation, MonotoneDecreasing)
{
    double prev = 1.1;
    for (double r = 0.0; r <= 0.5; r += 0.01) {
        const double c = sphericalCorrelation(r, 0.5);
        EXPECT_LT(c, prev);
        prev = c;
    }
}

TEST(CorrelatedField, UnitVarianceAndZeroMean)
{
    CorrelatedFieldGenerator gen(32, 0.5);
    Rng rng(11);
    RunningStats stats;
    for (int s = 0; s < 60; ++s) {
        const auto field = gen.sample(rng);
        for (double v : field)
            stats.add(v);
    }
    EXPECT_NEAR(stats.mean(), 0.0, 0.05);
    EXPECT_NEAR(stats.stddev(), 1.0, 0.05);
}

TEST(CorrelatedField, SpatialCorrelationMatchesTarget)
{
    const std::size_t n = 32;
    const double phi = 0.5;
    CorrelatedFieldGenerator gen(n, phi);
    Rng rng(13);

    // Estimate correlation at a few pixel lags along x.
    const std::size_t lags[] = {1, 4, 8, 16};
    RunningStats cov[4];
    for (int s = 0; s < 200; ++s) {
        const auto f = gen.sample(rng);
        for (std::size_t li = 0; li < 4; ++li) {
            const std::size_t lag = lags[li];
            for (std::size_t y = 0; y < n; ++y) {
                for (std::size_t x = 0; x + lag < n; ++x)
                    cov[li].add(f[y * n + x] * f[y * n + x + lag]);
            }
        }
    }
    for (std::size_t li = 0; li < 4; ++li) {
        const double dist = static_cast<double>(lags[li]) / n;
        const double expected = sphericalCorrelation(dist, phi);
        EXPECT_NEAR(cov[li].mean(), expected, 0.08)
            << "lag " << lags[li];
    }
}

TEST(CorrelatedField, PairCrossCorrelation)
{
    CorrelatedFieldGenerator gen(32, 0.5);
    Rng rng(17);
    for (double rho : {0.0, 0.5, 0.9}) {
        RunningStats cross;
        for (int s = 0; s < 100; ++s) {
            const auto [a, b] = gen.samplePair(rng, rho);
            for (std::size_t i = 0; i < a.size(); ++i)
                cross.add(a[i] * b[i]);
        }
        EXPECT_NEAR(cross.mean(), rho, 0.06) << "rho " << rho;
    }
}

TEST(CorrelatedField, DeterministicGivenRngState)
{
    CorrelatedFieldGenerator gen(16, 0.5);
    Rng a(5), b(5);
    const auto fa = gen.sample(a);
    const auto fb = gen.sample(b);
    ASSERT_EQ(fa.size(), fb.size());
    for (std::size_t i = 0; i < fa.size(); ++i)
        EXPECT_DOUBLE_EQ(fa[i], fb[i]);
}

/** Property: unit variance holds across grid sizes and ranges. */
class FieldSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>>
{
};

TEST_P(FieldSweep, UnitVariance)
{
    const auto [n, phi] = GetParam();
    CorrelatedFieldGenerator gen(n, phi);
    Rng rng(23 + n);
    RunningStats stats;
    for (int s = 0; s < 120; ++s) {
        for (double v : gen.sample(rng))
            stats.add(v);
    }
    // Long-range fields have few independent samples per draw, so the
    // sample-standard-deviation estimate itself is noisier.
    EXPECT_NEAR(stats.stddev(), 1.0, 0.06 + 0.08 * phi);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FieldSweep,
    ::testing::Combine(::testing::Values<std::size_t>(16, 32, 64),
                       ::testing::Values(0.1, 0.3, 0.5, 0.9)));

} // namespace
} // namespace eval
