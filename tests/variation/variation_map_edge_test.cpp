/** Edge-case tests for the variation map and floorplan sampling. */

#include <cmath>

#include <gtest/gtest.h>

#include "util/statistics.hh"
#include "variation/chip.hh"

namespace eval {
namespace {

struct Fixture
{
    ProcessParams params;
    ChipFactory factory{params, 55};
    Chip chip{factory.manufacture()};
};

TEST(VariationMapEdge, CornersAndOutOfRangeClamp)
{
    Fixture f;
    const VariationMap &map = f.chip.map();
    // All four corners are valid and coordinates clamp outside [0,1].
    for (double x : {0.0, 1.0}) {
        for (double y : {0.0, 1.0}) {
            const double v = map.vtSystematicAt(x, y);
            EXPECT_GT(v, 0.05);
            EXPECT_LT(v, 0.30);
        }
    }
    EXPECT_DOUBLE_EQ(map.vtSystematicAt(-0.5, 0.3),
                     map.vtSystematicAt(0.0, 0.3));
    EXPECT_DOUBLE_EQ(map.vtSystematicAt(1.7, 0.3),
                     map.vtSystematicAt(1.0, 0.3));
}

TEST(VariationMapEdge, BilinearIsContinuous)
{
    Fixture f;
    const VariationMap &map = f.chip.map();
    // Tiny coordinate steps produce tiny value steps (no seams).
    double prev = map.vtSystematicAt(0.0, 0.42);
    for (double x = 0.001; x <= 1.0; x += 0.001) {
        const double v = map.vtSystematicAt(x, 0.42);
        EXPECT_LT(std::abs(v - prev), 0.004) << "x=" << x;
        prev = v;
    }
}

TEST(VariationMapEdge, RectMeanBetweenLocalExtremes)
{
    Fixture f;
    for (const auto &info : f.chip.floorplan().coreSubsystems(0)) {
        const double mean = f.chip.map().vtSystematicMean(info.rect);
        double lo = 1e9, hi = -1e9;
        for (int i = 0; i < 25; ++i) {
            const double x =
                info.rect.x0 + info.rect.width() * (i % 5) / 4.0;
            const double y =
                info.rect.y0 + info.rect.height() * (i / 5) / 4.0;
            const double v = f.chip.map().vtSystematicAt(x, y);
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
        EXPECT_GE(mean, lo - 1e-3) << info.name;
        EXPECT_LE(mean, hi + 1e-3) << info.name;
    }
}

TEST(VariationMapEdge, NearbySubsystemsAreCorrelated)
{
    // Spatial correlation: a subsystem's mean Vt should be closer to
    // its neighbours on the same die than to the same subsystem on
    // other dies, on average.
    ProcessParams params;
    ChipFactory factory(params, 77);
    RunningStats withinDie, acrossDies;
    std::vector<Chip> chips = factory.manufacture(24);
    for (std::size_t c = 0; c < chips.size(); ++c) {
        const double a = chips[c].subsystemVtSys(0, SubsystemId::IntQ);
        const double b =
            chips[c].subsystemVtSys(0, SubsystemId::IntReg);
        withinDie.add(std::abs(a - b));
        const double other =
            chips[(c + 1) % chips.size()].subsystemVtSys(
                0, SubsystemId::IntReg);
        acrossDies.add(std::abs(a - other));
    }
    EXPECT_LT(withinDie.mean(), acrossDies.mean());
}

TEST(VariationMapEdge, FourCoreQuadrantsDiffer)
{
    Fixture f;
    // The same subsystem in different quadrants sees different
    // systematic silicon (that is the whole CMP-variation premise).
    const double c0 = f.chip.subsystemVtSys(0, SubsystemId::Icache);
    const double c3 = f.chip.subsystemVtSys(3, SubsystemId::Icache);
    EXPECT_NE(c0, c3);
}

} // namespace
} // namespace eval
