/** Tests for floorplan, variation maps, and chip manufacturing. */

#include <gtest/gtest.h>

#include "util/statistics.hh"
#include "variation/chip.hh"

namespace eval {
namespace {

TEST(Floorplan, HasAllSubsystems)
{
    Floorplan plan(4);
    EXPECT_EQ(plan.numCores(), 4u);
    for (std::size_t core = 0; core < 4; ++core) {
        EXPECT_EQ(plan.coreSubsystems(core).size(), kNumSubsystems);
    }
}

TEST(Floorplan, RectanglesInsideChip)
{
    Floorplan plan(4);
    for (std::size_t core = 0; core < 4; ++core) {
        for (const auto &info : plan.coreSubsystems(core)) {
            EXPECT_GE(info.rect.x0, -1e-9) << info.name;
            EXPECT_GE(info.rect.y0, -1e-9) << info.name;
            EXPECT_LE(info.rect.x1, 1.0 + 1e-9) << info.name;
            EXPECT_LE(info.rect.y1, 1.0 + 1e-9) << info.name;
            EXPECT_GT(info.rect.area(), 0.0) << info.name;
        }
    }
}

TEST(Floorplan, CoresOccupyDistinctQuadrants)
{
    Floorplan plan(4);
    // Icache of core 0 and core 1 must not overlap.
    const Rect &a = plan.subsystem(0, SubsystemId::Icache).rect;
    const Rect &b = plan.subsystem(1, SubsystemId::Icache).rect;
    const bool disjoint = a.x1 <= b.x0 || b.x1 <= a.x0 || a.y1 <= b.y0 ||
                          b.y1 <= a.y0;
    EXPECT_TRUE(disjoint);
}

TEST(Floorplan, TypesMatchFigure7)
{
    Floorplan plan(1);
    EXPECT_EQ(plan.subsystem(0, SubsystemId::Dcache).type,
              StageType::Memory);
    EXPECT_EQ(plan.subsystem(0, SubsystemId::IntALU).type,
              StageType::Logic);
    EXPECT_EQ(plan.subsystem(0, SubsystemId::IntQ).type,
              StageType::Mixed);
    EXPECT_EQ(plan.subsystem(0, SubsystemId::BranchPred).type,
              StageType::Mixed);
    EXPECT_EQ(plan.subsystem(0, SubsystemId::Decode).type,
              StageType::Logic);
}

TEST(Floorplan, IdByNameRoundTrip)
{
    Floorplan plan(1);
    for (const auto &info : plan.coreSubsystems(0))
        EXPECT_EQ(Floorplan::idByName(info.name), info.id);
}

TEST(VariationMap, FlatMapHasNoVariation)
{
    ProcessParams params;
    const VariationMap map = VariationMap::flat(params);
    EXPECT_DOUBLE_EQ(map.vtSystematicAt(0.1, 0.9), params.vtMean);
    EXPECT_DOUBLE_EQ(map.leffSystematicAt(0.7, 0.2), params.leffMean);
}

TEST(VariationMap, SystematicStatisticsMatchParams)
{
    ProcessParams params;
    CorrelatedFieldGenerator gen(params.gridSize, params.phi);
    Rng rng(3);
    RunningStats vt;
    for (int s = 0; s < 30; ++s) {
        VariationMap map(params, gen, rng);
        for (int i = 0; i < 200; ++i) {
            const double x = (i % 20) / 20.0;
            const double y = (i / 20) / 10.0;
            vt.add(map.vtSystematicAt(x, y));
        }
    }
    EXPECT_NEAR(vt.mean(), params.vtMean, 0.003);
    EXPECT_NEAR(vt.stddev(), params.vtSigmaSys(), 0.002);
}

TEST(ChipFactory, Deterministic)
{
    ProcessParams params;
    ChipFactory f1(params, 42), f2(params, 42);
    const Chip a = f1.manufacture();
    const Chip b = f2.manufacture();
    EXPECT_EQ(a.id(), b.id());
    EXPECT_DOUBLE_EQ(a.subsystemVtSys(0, SubsystemId::Icache),
                     b.subsystemVtSys(0, SubsystemId::Icache));
}

TEST(ChipFactory, ChipsDiffer)
{
    ProcessParams params;
    ChipFactory factory(params, 42);
    const Chip a = factory.manufacture();
    const Chip b = factory.manufacture();
    EXPECT_NE(a.subsystemVtSys(0, SubsystemId::Icache),
              b.subsystemVtSys(0, SubsystemId::Icache));
}

TEST(ChipFactory, IdealChipIsFlat)
{
    ProcessParams params;
    ChipFactory factory(params, 42);
    const Chip ideal = factory.manufactureIdeal();
    EXPECT_DOUBLE_EQ(ideal.subsystemVtSys(0, SubsystemId::Icache),
                     params.vtMean);
    EXPECT_DOUBLE_EQ(ideal.map().vtSigmaRandom(), 0.0);
}

TEST(ChipFactory, PopulationSpreadIsPlausible)
{
    ProcessParams params;
    ChipFactory factory(params, 7);
    RunningStats vt;
    for (const Chip &chip : factory.manufacture(40))
        vt.add(chip.subsystemVtSys(0, SubsystemId::Dcache));
    // Subsystem means average the field, so spread is below the raw
    // sigma_sys but clearly nonzero.
    EXPECT_GT(vt.stddev(), 0.2 * params.vtSigmaSys());
    EXPECT_LT(vt.stddev(), 1.2 * params.vtSigmaSys());
    EXPECT_NEAR(vt.mean(), params.vtMean, 0.005);
}

} // namespace
} // namespace eval
