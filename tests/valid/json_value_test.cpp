#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include <gtest/gtest.h>

#include "valid/json_value.hh"

using namespace eval;

TEST(JsonValue, ScalarRoundTrip)
{
    EXPECT_EQ(JsonValue::parse("null").type(), JsonValue::Type::Null);
    EXPECT_TRUE(JsonValue::parse("true").asBool());
    EXPECT_FALSE(JsonValue::parse("false").asBool());
    EXPECT_EQ(JsonValue::parse("42").asInt(), 42);
    EXPECT_EQ(JsonValue::parse("-7").asInt(), -7);
    EXPECT_DOUBLE_EQ(JsonValue::parse("2.5").asDouble(), 2.5);
    EXPECT_EQ(JsonValue::parse("\"hi\"").asString(), "hi");
}

TEST(JsonValue, ExactDoubleRoundTrip)
{
    const double values[] = {0.0,
                             -0.0,
                             1.0 / 3.0,
                             6.62607015e-34,
                             1e308,
                             5e-324,
                             std::numeric_limits<double>::max(),
                             std::numeric_limits<double>::epsilon(),
                             -123456.789012345678};
    for (double v : values) {
        const JsonValue round =
            JsonValue::parse(JsonValue(v).dump());
        std::uint64_t a, b;
        const double r = round.asDouble();
        std::memcpy(&a, &v, sizeof(a));
        std::memcpy(&b, &r, sizeof(b));
        EXPECT_EQ(a, b) << "value " << formatExactDouble(v);
    }
}

TEST(JsonValue, NonFiniteTokens)
{
    EXPECT_TRUE(std::isnan(JsonValue::parse("NaN").asDouble()));
    EXPECT_EQ(JsonValue::parse("Infinity").asDouble(),
              std::numeric_limits<double>::infinity());
    EXPECT_EQ(JsonValue::parse("-Infinity").asDouble(),
              -std::numeric_limits<double>::infinity());
    EXPECT_EQ(JsonValue(std::nan("")).dump(), "NaN");
}

TEST(JsonValue, Int64Exactness)
{
    const std::int64_t big = 9007199254740993; // 2^53 + 1
    EXPECT_EQ(JsonValue::parse(JsonValue(big).dump()).asInt(), big);
    const std::uint64_t umax = 0xFFFFFFFFFFFFFFFFULL;
    EXPECT_EQ(JsonValue(umax).asUint(), umax);
}

TEST(JsonValue, ObjectOrderPreserved)
{
    JsonValue o = JsonValue::object();
    o.set("zebra", 1);
    o.set("alpha", 2);
    o.set("mid", 3);
    EXPECT_EQ(o.dump(), "{\"zebra\": 1, \"alpha\": 2, \"mid\": 3}");
    // Overwrite keeps the original position.
    o.set("zebra", 9);
    EXPECT_EQ(o.dump(), "{\"zebra\": 9, \"alpha\": 2, \"mid\": 3}");
}

TEST(JsonValue, NestedDumpParseDump)
{
    JsonValue o = JsonValue::object();
    JsonValue arr = JsonValue::array();
    arr.push(1);
    arr.push(0.5);
    arr.push("s");
    arr.push(JsonValue());
    o.set("list", arr);
    JsonValue inner = JsonValue::object();
    inner.set("flag", true);
    o.set("inner", inner);

    const std::string once = o.dump(2);
    const std::string twice = JsonValue::parse(once).dump(2);
    EXPECT_EQ(once, twice);
    EXPECT_EQ(JsonValue::parse(once), o);
}

TEST(JsonValue, StringEscapes)
{
    const JsonValue v("line\n\ttab \"quote\" back\\slash");
    EXPECT_EQ(JsonValue::parse(v.dump()).asString(), v.asString());
    EXPECT_EQ(JsonValue::parse("\"\\u0041\\u00e9\"").asString(),
              "A\xc3\xa9");
}

TEST(JsonValue, ParseErrors)
{
    const char *bad[] = {"",       "{",      "[1,",  "tru",
                         "\"abc",  "01",     "1.2.3", "{\"a\" 1}",
                         "[1] []", "{\"a\":}"};
    for (const char *text : bad)
        EXPECT_THROW(JsonValue::parse(text), JsonParseError) << text;
}

TEST(JsonValue, TypeMismatchThrows)
{
    const JsonValue i(3);
    EXPECT_THROW(i.asString(), std::runtime_error);
    EXPECT_THROW(i.asArray(), std::runtime_error);
    EXPECT_NO_THROW(i.asDouble()); // Int promotes to double
    const JsonValue d(3.5);
    EXPECT_THROW(d.asInt(), std::runtime_error);
}

TEST(JsonValue, EqualityBitExactOnDoubles)
{
    EXPECT_EQ(JsonValue(std::nan("")), JsonValue(std::nan("")));
    EXPECT_NE(JsonValue(0.0), JsonValue(-0.0));
    EXPECT_NE(JsonValue(1), JsonValue(1.0)); // Int vs Double differ
}
