#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "valid/golden.hh"

using namespace eval;

namespace {

/** Scoped env var (restores the previous value on destruction). */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const std::string &value) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old != nullptr) {
            hadOld_ = true;
            old_ = old;
        }
        ::setenv(name, value.c_str(), 1);
    }

    ~ScopedEnv()
    {
        if (hadOld_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }

  private:
    const char *name_;
    bool hadOld_ = false;
    std::string old_;
};

GoldenFile
sampleGolden()
{
    GoldenFile g("sample_exp");
    g.addExact("count", 12.0);
    g.addExact("digest", 4503599627370495.0);
    g.addRelative("freq_rel", 1e-9, 0.77923456789012345);
    g.add("power_w", MetricKind::Absolute, 0.05, 27.71);
    return g;
}

} // namespace

TEST(GoldenFile, SerializeParseRoundTrip)
{
    const GoldenFile g = sampleGolden();
    const GoldenFile back = GoldenFile::parse(g.serialize());
    EXPECT_EQ(back.name(), "sample_exp");
    EXPECT_TRUE(compareBitIdentical(g, back));
    EXPECT_TRUE(compareGolden(g, back).empty());
}

TEST(GoldenFile, ParseRejectsMalformedInput)
{
    EXPECT_THROW(GoldenFile::parse(""), std::runtime_error);
    EXPECT_THROW(GoldenFile::parse("not a golden\n"),
                 std::runtime_error);
    EXPECT_THROW(
        GoldenFile::parse("# eval golden file v1\nmetric x bad 0 1\n"),
        std::runtime_error);
    EXPECT_THROW(
        GoldenFile::parse("# eval golden file v1\nmetric x exact 0\n"),
        std::runtime_error);
    EXPECT_THROW(GoldenFile::parse(
                     "# eval golden file v1\nmetric x exact 0 1 extra\n"),
                 std::runtime_error);
}

TEST(GoldenFile, ExactMetricsPinBits)
{
    GoldenFile expected("t"), actual("t");
    expected.addExact("m", 1.0);
    actual.addExact("m", std::nextafter(1.0, 2.0)); // one ulp off fails
    EXPECT_EQ(compareGolden(expected, actual).size(), 1u);
    actual = GoldenFile("t");
    actual.addExact("m", 1.0);
    EXPECT_TRUE(compareGolden(expected, actual).empty());
}

TEST(GoldenFile, RelativeToleranceIsRelative)
{
    GoldenFile expected("t");
    expected.addRelative("m", 1e-6, 1000.0);
    GoldenFile within("t"), outside("t");
    within.addRelative("m", 1e-6, 1000.0005);
    outside.addRelative("m", 1e-6, 1000.01);
    EXPECT_TRUE(compareGolden(expected, within).empty());
    EXPECT_EQ(compareGolden(expected, outside).size(), 1u);
}

TEST(GoldenFile, AbsoluteTolerance)
{
    GoldenFile expected("t");
    expected.add("m", MetricKind::Absolute, 0.1, 5.0);
    GoldenFile within("t"), outside("t");
    within.add("m", MetricKind::Absolute, 0.1, 5.09);
    outside.add("m", MetricKind::Absolute, 0.1, 5.2);
    EXPECT_TRUE(compareGolden(expected, within).empty());
    EXPECT_EQ(compareGolden(expected, outside).size(), 1u);
}

TEST(GoldenFile, MissingAndUnexpectedMetricsAreDiffs)
{
    GoldenFile expected("t"), actual("t");
    expected.addExact("only_expected", 1.0);
    actual.addExact("only_actual", 2.0);
    const auto diffs = compareGolden(expected, actual);
    ASSERT_EQ(diffs.size(), 2u);
    EXPECT_EQ(diffs[0].metric, "only_expected");
    EXPECT_EQ(diffs[1].metric, "only_actual");
}

TEST(GoldenCheck, RecordThenCompare)
{
    const std::string dir = testing::TempDir() + "golden_harness_rt";
    ScopedEnv dirEnv("EVAL_GOLDEN_DIR", dir);

    {
        ScopedEnv modeEnv("EVAL_GOLDEN_MODE", "record");
        const GoldenCheckResult rec = checkGolden(sampleGolden());
        EXPECT_TRUE(rec.ok);
        EXPECT_TRUE(rec.recorded);
    }
    {
        ScopedEnv modeEnv("EVAL_GOLDEN_MODE", "compare");
        const GoldenCheckResult cmp = checkGolden(sampleGolden());
        EXPECT_TRUE(cmp.ok) << cmp.message;
        EXPECT_FALSE(cmp.recorded);
    }
}

TEST(GoldenCheck, MismatchWritesDiffArtifact)
{
    const std::string dir = testing::TempDir() + "golden_harness_diff";
    const std::string diffDir = dir + "/artifacts";
    ScopedEnv dirEnv("EVAL_GOLDEN_DIR", dir);
    ScopedEnv diffEnv("EVAL_GOLDEN_DIFF_DIR", diffDir);

    {
        ScopedEnv modeEnv("EVAL_GOLDEN_MODE", "record");
        ASSERT_TRUE(checkGolden(sampleGolden()).ok);
    }
    GoldenFile drifted = sampleGolden();
    GoldenFile changed("sample_exp");
    for (const GoldenMetric &m : drifted.metrics()) {
        changed.add(m.name, m.kind, m.eps,
                    m.name == "count" ? m.value + 1.0 : m.value);
    }
    ScopedEnv modeEnv("EVAL_GOLDEN_MODE", "compare");
    const GoldenCheckResult cmp = checkGolden(changed);
    EXPECT_FALSE(cmp.ok);
    ASSERT_EQ(cmp.diffs.size(), 1u);
    EXPECT_EQ(cmp.diffs[0].metric, "count");
    ASSERT_FALSE(cmp.diffPath.empty());
    std::ifstream report(cmp.diffPath);
    ASSERT_TRUE(report.good());
    std::ostringstream buf;
    buf << report.rdbuf();
    EXPECT_NE(buf.str().find("count"), std::string::npos);
}

TEST(GoldenCheck, MissingGoldenFailsWithHint)
{
    ScopedEnv dirEnv("EVAL_GOLDEN_DIR",
                     testing::TempDir() + "golden_harness_missing");
    ScopedEnv modeEnv("EVAL_GOLDEN_MODE", "compare");
    const GoldenCheckResult cmp = checkGolden(sampleGolden());
    EXPECT_FALSE(cmp.ok);
    EXPECT_NE(cmp.message.find("record"), std::string::npos);
}

TEST(GoldenFile, DuplicateMetricNameAborts)
{
    GoldenFile g("t");
    g.addExact("m", 1.0);
    EXPECT_DEATH(g.addExact("m", 2.0), "duplicate");
}
