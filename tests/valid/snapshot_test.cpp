#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "valid/snapshot.hh"

using namespace eval;

namespace {

JsonValue
samplePayload()
{
    JsonValue p = JsonValue::object();
    p.set("count", 3);
    p.set("scale", 0.1);
    JsonValue arr = JsonValue::array();
    arr.push(std::int64_t{-5});
    arr.push(1.0 / 3.0);
    arr.push("text");
    arr.push(true);
    arr.push(JsonValue());
    p.set("items", arr);
    return p;
}

std::string
tempPath(const char *name)
{
    return testing::TempDir() + name;
}

} // namespace

TEST(Snapshot, EnvelopeRoundTrip)
{
    const JsonValue snap = makeSnapshot("sample", 3, samplePayload());
    const JsonValue &payload = snapshotPayload(snap, "sample", 3);
    EXPECT_EQ(payload, samplePayload());
}

TEST(Snapshot, EnvelopeMismatchesThrow)
{
    JsonValue snap = makeSnapshot("sample", 3, samplePayload());
    EXPECT_THROW(snapshotPayload(snap, "other", 3), SnapshotError);
    EXPECT_THROW(snapshotPayload(snap, "sample", 4), SnapshotError);
    snap.set("magic", "WRONG");
    EXPECT_THROW(snapshotPayload(snap, "sample", 3), SnapshotError);
    snap.set("magic", "EVALSNAP");
    snap.set("format_version", 999);
    EXPECT_THROW(snapshotPayload(snap, "sample", 3), SnapshotError);
    EXPECT_THROW(snapshotPayload(JsonValue(1), "sample", 3),
                 SnapshotError);
}

TEST(Snapshot, BinaryRoundTripIsExact)
{
    const JsonValue snap = makeSnapshot("sample", 1, samplePayload());
    const std::string bytes = encodeBinary(snap);
    EXPECT_EQ(decodeBinary(bytes), snap);
    // Encoding is deterministic.
    EXPECT_EQ(encodeBinary(snap), bytes);
}

TEST(Snapshot, BinaryRejectsCorruption)
{
    const std::string bytes =
        encodeBinary(makeSnapshot("sample", 1, samplePayload()));
    EXPECT_THROW(decodeBinary("XXXX"), SnapshotError);
    EXPECT_THROW(decodeBinary(bytes.substr(0, bytes.size() / 2)),
                 SnapshotError);
    EXPECT_THROW(decodeBinary(bytes + "extra"), SnapshotError);
    std::string wrongVersion = bytes;
    wrongVersion[4] = 99;
    EXPECT_THROW(decodeBinary(wrongVersion), SnapshotError);
}

TEST(Snapshot, FileRoundTripBothEncodings)
{
    const JsonValue snap = makeSnapshot("sample", 1, samplePayload());
    for (bool binary : {false, true}) {
        const std::string path = tempPath(
            binary ? "snapshot_test.bin" : "snapshot_test.json");
        ASSERT_TRUE(writeSnapshotFile(path, snap, binary));
        EXPECT_EQ(readSnapshotFile(path), snap);
        std::remove(path.c_str());
    }
}

TEST(Snapshot, ReadMissingFileThrows)
{
    EXPECT_THROW(readSnapshotFile(tempPath("no_such_snapshot")),
                 SnapshotError);
}

TEST(Snapshot, DigestProperties)
{
    EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
    EXPECT_NE(fnv1a("a"), fnv1a("b"));
    const double d = digest53("some payload");
    EXPECT_EQ(d, static_cast<double>(static_cast<std::uint64_t>(d)));
    EXPECT_LT(d, 9007199254740992.0); // < 2^53: exactly representable
}
