/** Tests for the out-of-order core model. */

#include <gtest/gtest.h>

#include "arch/core.hh"
#include "workload/generator.hh"

namespace eval {
namespace {

/** Trace of identical independent ALU ops. */
class IndependentAluTrace : public TraceSource
{
  public:
    bool
    next(MicroOp &op) override
    {
        op = MicroOp{};
        op.cls = OpClass::IntAlu;
        op.pc = 0x1000 + (count_++ % 512) * 4;
        op.src1Dist = 0;
        op.src2Dist = 0;
        return true;
    }

  private:
    std::uint64_t count_ = 0;
};

/** Serial dependency chain: each op needs the previous one. */
class SerialChainTrace : public TraceSource
{
  public:
    bool
    next(MicroOp &op) override
    {
        op = MicroOp{};
        op.cls = OpClass::IntAlu;
        op.pc = 0x2000;
        op.src1Dist = 1;
        return true;
    }
};

TEST(Core, IndependentOpsApproachIssueWidth)
{
    CoreConfig cfg;
    Core core(cfg, 1);
    IndependentAluTrace trace;
    core.run(trace, 5000);   // warm the instruction cache
    const CoreStats s = core.run(trace, 30000);
    // 3-wide with 3 ALUs: IPC should be close to 3.
    EXPECT_GT(s.ipc(), 2.5);
}

TEST(Core, SerialChainRunsAtOneIpcMax)
{
    CoreConfig cfg;
    Core core(cfg, 1);
    SerialChainTrace trace;
    const CoreStats s = core.run(trace, 20000);
    EXPECT_LE(s.ipc(), 1.05);
    EXPECT_GT(s.ipc(), 0.5);
}

TEST(Core, SmallerQueueNeverFaster)
{
    const AppProfile &app = appByName("crafty");
    double ipcFull, ipcSmall;
    {
        CoreConfig cfg;
        SyntheticTrace t(app, 7);
        t.pinPhase(0);
        Core core(cfg, 2);
        core.run(t, 40000);
        ipcFull = core.run(t, 80000).ipc();
    }
    {
        CoreConfig cfg;
        cfg.queueCapacityFraction = 0.75;
        SyntheticTrace t(app, 7);
        t.pinPhase(0);
        Core core(cfg, 2);
        core.run(t, 40000);
        ipcSmall = core.run(t, 80000).ipc();
    }
    EXPECT_LE(ipcSmall, ipcFull * 1.02);
}

TEST(Core, ErrorInjectionCostsPerformance)
{
    const AppProfile &app = appByName("gzip");
    auto runWith = [&app](double errProb) {
        CoreConfig cfg;
        SyntheticTrace t(app, 9);
        t.pinPhase(0);
        Core core(cfg, 3);
        core.setErrorInjection(errProb, 14);
        core.run(t, 30000);
        return core.run(t, 60000);
    };
    const CoreStats clean = runWith(0.0);
    const CoreStats faulty = runWith(0.02);
    EXPECT_EQ(clean.errorRecoveries, 0u);
    EXPECT_GT(faulty.errorRecoveries, 500u);
    EXPECT_LT(faulty.ipc(), clean.ipc());
}

TEST(Core, ErrorRateMatchesInjection)
{
    const AppProfile &app = appByName("gzip");
    CoreConfig cfg;
    SyntheticTrace t(app, 9);
    t.pinPhase(0);
    Core core(cfg, 3);
    core.setErrorInjection(0.01, 14);
    const CoreStats s = core.run(t, 100000);
    const double measured = static_cast<double>(s.errorRecoveries) /
                            static_cast<double>(s.instructions);
    EXPECT_NEAR(measured, 0.01, 0.002);
}

TEST(Core, CpiDecompositionConsistent)
{
    const AppProfile &app = appByName("mcf");
    CoreConfig cfg;
    SyntheticTrace t(app, 11);
    t.pinPhase(0);
    Core core(cfg, 4);
    core.run(t, 60000);
    const CoreStats s = core.run(t, 120000);
    EXPECT_GT(s.cpiComp(), 0.3);
    EXPECT_LE(s.cpiComp(), s.cpi());
    EXPECT_NEAR(s.cpiComp() +
                    s.missesPerInstruction() * s.missPenaltyCycles(),
                s.cpi(), 0.02 * s.cpi());
}

TEST(Core, ActivityCountsPopulated)
{
    const AppProfile &app = appByName("swim");
    CoreConfig cfg;
    SyntheticTrace t(app, 13);
    t.pinPhase(0);
    Core core(cfg, 5);
    const CoreStats s = core.run(t, 60000);
    EXPECT_GT(s.alpha(SubsystemId::Icache), 0.0);
    EXPECT_GT(s.alpha(SubsystemId::IntALU), 0.0);
    EXPECT_GT(s.alpha(SubsystemId::FPUnit), 0.0);   // swim is FP
    EXPECT_GT(s.rho(SubsystemId::Dcache), 0.1);
    // An FP app exercises the FP queue; an int app must not.
    const AppProfile &intApp = appByName("gzip");
    SyntheticTrace ti(intApp, 13);
    ti.pinPhase(0);
    Core coreInt(cfg, 5);
    const CoreStats si = coreInt.run(ti, 60000);
    EXPECT_DOUBLE_EQ(si.alpha(SubsystemId::FPQ), 0.0);
}

TEST(Core, MemBoundAppsShowMemStalls)
{
    CoreConfig cfg;
    SyntheticTrace t(appByName("mcf"), 17);
    t.pinPhase(0);
    Core core(cfg, 6);
    core.run(t, 60000);
    const CoreStats s = core.run(t, 60000);
    EXPECT_GT(s.memStallCycles, 0u);
    EXPECT_GT(s.missPenaltyCycles(), 20.0);
    EXPECT_LT(s.missPenaltyCycles(),
              static_cast<double>(cfg.memLat.memory) + 2.0);
}

TEST(Core, FuReplicationAddsBranchLoopCycle)
{
    // With many mispredicted branches, the +1 redirect cycle of the
    // replicated-FU pipeline must cost measurable CPI.
    const AppProfile &app = appByName("gcc");
    auto cpiWith = [&app](bool repl) {
        CoreConfig cfg;
        cfg.fuReplicated = repl;
        SyntheticTrace t(app, 23);
        t.pinPhase(0);
        Core core(cfg, 7);
        core.run(t, 40000);
        return core.run(t, 80000).cpi();
    };
    const double plain = cpiWith(false);
    const double repl = cpiWith(true);
    EXPECT_GE(repl, plain);
    EXPECT_LT(repl, plain * 1.1);   // "modest impact" (Sec 5)
}

TEST(Core, DeterministicRuns)
{
    const AppProfile &app = appByName("vpr");
    auto run = [&app]() {
        CoreConfig cfg;
        SyntheticTrace t(app, 29);
        t.pinPhase(0);
        Core core(cfg, 8);
        return core.run(t, 50000);
    };
    const CoreStats a = run();
    const CoreStats b = run();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
}

/** Property sweep: every suite app simulates cleanly with sane CPI. */
class SuiteSweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SuiteSweep, RunsWithPlausibleCpi)
{
    const AppProfile &app = appByName(GetParam());
    CoreConfig cfg;
    SyntheticTrace t(app, 31);
    Core core(cfg, 9);
    const CoreStats s = core.run(t, 40000);
    EXPECT_GT(s.cpi(), 0.34);
    EXPECT_LT(s.cpi(), 12.0);
    EXPECT_EQ(s.instructions, 40000u);
}

INSTANTIATE_TEST_SUITE_P(
    Apps, SuiteSweep,
    ::testing::Values("gzip", "mcf", "crafty", "eon", "bzip2", "swim",
                      "art", "lucas", "mesa", "sixtrack"));

} // namespace
} // namespace eval
