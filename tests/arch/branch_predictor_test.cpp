/** Tests for the gshare branch predictor. */

#include <gtest/gtest.h>

#include "arch/branch_predictor.hh"
#include "util/random.hh"

namespace eval {
namespace {

TEST(Gshare, LearnsAlwaysTaken)
{
    GsharePredictor bp(12, 4);
    int wrong = 0;
    for (int i = 0; i < 1000; ++i)
        wrong += bp.predictAndUpdate(0x400000, true);
    EXPECT_LT(wrong, 5);
}

TEST(Gshare, LearnsAlwaysNotTaken)
{
    GsharePredictor bp(12, 4);
    int wrong = 0;
    for (int i = 0; i < 1000; ++i)
        wrong += bp.predictAndUpdate(0x400100, false);
    EXPECT_LT(wrong, 5);
}

TEST(Gshare, TracksBiasedBranches)
{
    GsharePredictor bp(12, 4);
    Rng rng(3);
    int wrong = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const std::uint64_t pc = 0x400000 + (rng.uniformInt(64) * 4);
        wrong += bp.predictAndUpdate(pc, rng.bernoulli(0.95));
    }
    // A 95%-biased branch should mispredict well under 15%.
    EXPECT_LT(static_cast<double>(wrong) / n, 0.15);
}

TEST(Gshare, RandomBranchesNearChance)
{
    GsharePredictor bp(12, 4);
    Rng rng(5);
    int wrong = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        wrong += bp.predictAndUpdate(0x400500, rng.bernoulli(0.5));
    const double rate = static_cast<double>(wrong) / n;
    EXPECT_GT(rate, 0.35);
    EXPECT_LT(rate, 0.65);
}

TEST(Gshare, CountsPredictions)
{
    GsharePredictor bp(12, 4);
    for (int i = 0; i < 10; ++i)
        bp.predictAndUpdate(0x1000, true);
    EXPECT_EQ(bp.predictions(), 10u);
    EXPECT_LE(bp.mispredictions(), 10u);
}

TEST(Gshare, DistinguishesManyBranches)
{
    GsharePredictor bp(12, 4);
    // Two interleaved opposite-bias branches must both be learned.
    int wrong = 0;
    for (int i = 0; i < 2000; ++i) {
        wrong += bp.predictAndUpdate(0x4000, true);
        wrong += bp.predictAndUpdate(0x8000, false);
    }
    EXPECT_LT(wrong, 100);
}

} // namespace
} // namespace eval
