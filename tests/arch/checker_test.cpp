/** Tests for the checker-architecture models (Sec 3.1). */

#include <gtest/gtest.h>

#include "arch/checker.hh"
#include "arch/core.hh"
#include "core/perf_model.hh"
#include "workload/generator.hh"

namespace eval {
namespace {

TEST(Checker, StandardParameterizations)
{
    const CheckerModel diva = CheckerModel::diva();
    const CheckerModel razor = CheckerModel::razor();
    const CheckerModel paceline = CheckerModel::paceline();

    // Recovery penalty ordering: Razor's local replay is cheapest,
    // Paceline's core re-sync most expensive.
    EXPECT_LT(razor.recoveryPenaltyCycles, diva.recoveryPenaltyCycles);
    EXPECT_LT(diva.recoveryPenaltyCycles,
              paceline.recoveryPenaltyCycles);

    // Diva's rp equals the branch misprediction penalty (Sec 3.1):
    // the frontend depth plus resolve loop of the default core.
    const CoreConfig core;
    EXPECT_NEAR(diva.recoveryPenaltyCycles, core.frontendDepth + 4.0,
                4.0);
    EXPECT_EQ(CheckerModel::all().size(), 3u);
}

TEST(Checker, Names)
{
    EXPECT_STREQ(checkerKindName(CheckerKind::Diva), "Diva");
    EXPECT_STREQ(checkerKindName(CheckerKind::Razor), "Razor");
    EXPECT_STREQ(checkerKindName(CheckerKind::Paceline), "Paceline");
}

TEST(Checker, RecoveryPenaltyShapesPerformanceAtHighPe)
{
    // At PE = 1e-4 (the paper's target) the checker choice barely
    // matters; at PE = 1e-2 it decides who wins (the Sec 4.1 logic).
    PerfInputs in;
    in.cpiComp = 0.8;
    in.missesPerInst = 2e-3;
    in.memPenaltySec = 150.0 / 4e9;

    auto perfWith = [&in](const CheckerModel &c, double pe) {
        PerfInputs local = in;
        local.recoveryPenaltyCycles = c.recoveryPenaltyCycles;
        return performance(4e9, pe, local);
    };

    const double tiny = 1e-4;
    EXPECT_NEAR(perfWith(CheckerModel::paceline(), tiny) /
                    perfWith(CheckerModel::razor(), tiny),
                1.0, 0.03);

    const double heavy = 1e-2;
    EXPECT_LT(perfWith(CheckerModel::paceline(), heavy),
              0.6 * perfWith(CheckerModel::razor(), heavy));
}

TEST(Checker, SimulatedRecoveryMatchesModel)
{
    // Inject errors with each checker's penalty and confirm the core's
    // slowdown ranks the same way the models predict.
    auto ipcWith = [](unsigned penalty) {
        CoreConfig cfg;
        SyntheticTrace t(appByName("gzip"), 5);
        t.pinPhase(0);
        Core core(cfg, 7);
        core.run(t, 60000);
        core.setErrorInjection(5e-3, penalty);
        return core.run(t, 60000).ipc();
    };
    const double razor = ipcWith(2);
    const double diva = ipcWith(14);
    const double paceline = ipcWith(250);
    EXPECT_GT(razor, diva);
    EXPECT_GT(diva, paceline);
}

} // namespace
} // namespace eval
