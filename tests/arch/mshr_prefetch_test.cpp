/** Tests for the MSHR limit and next-line prefetcher. */

#include <gtest/gtest.h>

#include "arch/core.hh"
#include "workload/generator.hh"

namespace eval {
namespace {

/** Pointer-chase-free stream of independent loads over a huge region:
 *  memory-level parallelism limited only by the MSHRs. */
class IndependentMissTrace : public TraceSource
{
  public:
    bool
    next(MicroOp &op) override
    {
        op = MicroOp{};
        op.cls = OpClass::Load;
        op.pc = 0x1000 + (count_ % 64) * 4;
        op.addr = 0x40000000ULL + count_ * 4096;   // always misses
        ++count_;
        return true;
    }

  private:
    std::uint64_t count_ = 0;
};

double
ipcWithMshrs(unsigned mshrs)
{
    CoreConfig cfg;
    cfg.mshrs = mshrs;
    Core core(cfg, 1);
    IndependentMissTrace trace;
    core.run(trace, 1000);
    return core.run(trace, 4000).ipc();
}

TEST(Mshr, MoreMshrsMoreMemoryParallelism)
{
    const double narrow = ipcWithMshrs(1);
    const double medium = ipcWithMshrs(4);
    const double wide = ipcWithMshrs(16);
    EXPECT_GT(medium, 2.0 * narrow);
    EXPECT_GT(wide, 1.5 * medium);
}

TEST(Mshr, SingleMshrSerializesMisses)
{
    // One MSHR: one ~209-cycle miss at a time.
    const double ipc = ipcWithMshrs(1);
    EXPECT_LT(ipc, 1.2 / 200.0);
}

/** Pure sequential stream: every line is touched front to back. */
class StreamTrace : public TraceSource
{
  public:
    bool
    next(MicroOp &op) override
    {
        op = MicroOp{};
        // Alternate ALU and load so the core is not purely mem-bound.
        if (count_ % 2 == 0) {
            op.cls = OpClass::IntAlu;
        } else {
            op.cls = OpClass::Load;
            op.addr = 0x40000000ULL + (count_ / 2) * 8;
        }
        op.pc = 0x1000 + (count_ % 128) * 4;
        ++count_;
        return true;
    }

  private:
    std::uint64_t count_ = 0;
};

TEST(Prefetch, HelpsStreamingWorkload)
{
    auto missesPerK = [](bool prefetch) {
        CoreConfig cfg;
        cfg.prefetchNextLine = prefetch;
        StreamTrace t;
        Core core(cfg, 2);
        const CoreStats s = core.run(t, 100000);
        return 1000.0 * static_cast<double>(s.l1dMisses) /
               static_cast<double>(s.instructions);
    };
    // Sequential streams hit in L1 once the next line is prefetched.
    EXPECT_LT(missesPerK(true), 0.6 * missesPerK(false));
}

TEST(Prefetch, OffByDefault)
{
    CoreConfig cfg;
    EXPECT_FALSE(cfg.prefetchNextLine);
    EXPECT_EQ(cfg.mshrs, 16u);
}

} // namespace
} // namespace eval
