/** Tests for the cache model and hierarchy. */

#include <gtest/gtest.h>

#include "arch/cache.hh"

namespace eval {
namespace {

TEST(Cache, HitAfterFill)
{
    Cache c({1024, 64, 2});
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x103F));   // same line
    EXPECT_FALSE(c.access(0x1040));  // next line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEviction)
{
    // 2-way, 64B lines, 2 sets (256B total).
    Cache c({256, 64, 2});
    // Three lines mapping to set 0 (line addresses 0, 128, 256).
    c.access(0);
    c.access(128);
    c.access(0);      // touch 0 so 128 is LRU
    c.access(256);    // evicts 128
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(128));
    EXPECT_TRUE(c.contains(256));
}

TEST(Cache, ContainsDoesNotAllocate)
{
    Cache c({1024, 64, 2});
    EXPECT_FALSE(c.contains(0x2000));
    EXPECT_FALSE(c.contains(0x2000));
    EXPECT_EQ(c.misses(), 0u);
}

TEST(Cache, FullyExercisesAllSets)
{
    Cache c({64 * 1024, 64, 2});
    // Fill exactly the capacity and verify everything still fits.
    for (std::uint64_t a = 0; a < 64 * 1024; a += 64)
        c.access(a);
    for (std::uint64_t a = 0; a < 64 * 1024; a += 64)
        EXPECT_TRUE(c.contains(a)) << a;
}

TEST(Cache, WorkingSetLargerThanCapacityThrashes)
{
    Cache c({4096, 64, 2});
    for (int pass = 0; pass < 3; ++pass) {
        for (std::uint64_t a = 0; a < 16 * 4096; a += 64)
            c.access(a);
    }
    // Sequential sweep over 16x capacity should miss nearly always.
    const double hitRate = static_cast<double>(c.hits()) /
                           static_cast<double>(c.hits() + c.misses());
    EXPECT_LT(hitRate, 0.05);
}

TEST(Hierarchy, LevelsAndLatencies)
{
    Cache l2({1024 * 1024, 64, 8});
    MemLatencies lat;
    CacheHierarchy h({64 * 1024, 64, 2}, l2, lat);

    const auto first = h.access(0x5000);
    EXPECT_EQ(first.level, MemLevel::Memory);
    EXPECT_EQ(first.latency, lat.memory);

    const auto second = h.access(0x5000);
    EXPECT_EQ(second.level, MemLevel::L1);
    EXPECT_EQ(second.latency, lat.l1);
    EXPECT_EQ(h.l2Misses(), 1u);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    Cache l2({1024 * 1024, 64, 8});
    MemLatencies lat;
    CacheHierarchy h({1024, 64, 2}, l2, lat);   // tiny L1

    h.access(0x0);
    // Evict 0x0 from L1 by filling its set.
    h.access(0x0 + 1024);
    h.access(0x0 + 2048);
    const auto res = h.access(0x0);
    EXPECT_EQ(res.level, MemLevel::L2);
    EXPECT_EQ(res.latency, lat.l2);
}

TEST(Hierarchy, SharedL2BetweenTwoL1s)
{
    Cache l2({1024 * 1024, 64, 8});
    MemLatencies lat;
    CacheHierarchy i({1024, 64, 2}, l2, lat);
    CacheHierarchy d({1024, 64, 2}, l2, lat);

    i.access(0x9000);                    // fills shared L2
    const auto res = d.access(0x9000);   // other side hits L2
    EXPECT_EQ(res.level, MemLevel::L2);
}

} // namespace
} // namespace eval
