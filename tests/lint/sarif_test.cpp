/**
 * @file
 * Golden-shape tests for the SARIF 2.1.0 exporter: the document is
 * valid JSON (round-tripped through the repo's strict parser) and
 * carries the fields the SARIF 2.1.0 schema requires on this shape —
 * $schema/version, tool.driver with the full rule catalog, results
 * with ruleId/ruleIndex/message/locations, originalUriBaseIds, and
 * baselineState when a baseline is in play.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "baseline.hh"
#include "lint.hh"
#include "sarif.hh"
#include "valid/json_value.hh"

namespace {

using eval::JsonValue;
using eval::lint::baselineKey;
using eval::lint::Diagnostic;
using eval::lint::ruleCatalog;
using eval::lint::toSarif;

const std::vector<Diagnostic> kDiags = {
    {"src/core/x.cc", 12, "det-entropy", "rand() on a model path"},
    {"layers.toml", 3, "lay-unused-edge", "stale edge"},
};

TEST(LintSarif, DocumentShapeMatchesSarif210)
{
    const JsonValue doc = JsonValue::parse(
        toSarif(kDiags, nullptr, "file:///repo/"));

    EXPECT_EQ(doc.at("$schema").asString(),
              "https://json.schemastore.org/sarif-2.1.0.json");
    EXPECT_EQ(doc.at("version").asString(), "2.1.0");

    const auto &runs = doc.at("runs").asArray();
    ASSERT_EQ(runs.size(), 1u);
    const JsonValue &run = runs[0];

    const JsonValue &driver = run.at("tool").at("driver");
    EXPECT_EQ(driver.at("name").asString(), "eval-lint");
    EXPECT_TRUE(driver.has("informationUri"));

    EXPECT_EQ(run.at("originalUriBaseIds").at("SRCROOT").at("uri")
                  .asString(),
              "file:///repo/");

    const auto &results = run.at("results").asArray();
    ASSERT_EQ(results.size(), kDiags.size());
    const JsonValue &r0 = results[0];
    EXPECT_EQ(r0.at("ruleId").asString(), "det-entropy");
    EXPECT_EQ(r0.at("level").asString(), "error");
    EXPECT_EQ(r0.at("message").at("text").asString(),
              "rand() on a model path");
    // No baseline in play: baselineState must be absent entirely.
    EXPECT_FALSE(r0.has("baselineState"));

    const JsonValue &loc = r0.at("locations").asArray()[0];
    const JsonValue &phys = loc.at("physicalLocation");
    EXPECT_EQ(phys.at("artifactLocation").at("uri").asString(),
              "src/core/x.cc");
    EXPECT_EQ(phys.at("artifactLocation").at("uriBaseId").asString(),
              "SRCROOT");
    EXPECT_EQ(phys.at("region").at("startLine").asInt(), 12);
}

TEST(LintSarif, RulesArrayMirrorsTheCatalogInOrder)
{
    const JsonValue doc =
        JsonValue::parse(toSarif({}, nullptr, "file:///repo/"));
    const auto &rules =
        doc.at("runs").asArray()[0].at("tool").at("driver").at("rules")
            .asArray();
    const auto &catalog = ruleCatalog();
    ASSERT_EQ(rules.size(), catalog.size());
    for (std::size_t i = 0; i < catalog.size(); ++i) {
        EXPECT_EQ(rules[i].at("id").asString(), catalog[i].id);
        EXPECT_FALSE(rules[i].at("shortDescription").at("text")
                         .asString()
                         .empty());
    }
}

TEST(LintSarif, RuleIndexPointsIntoTheRulesArray)
{
    const JsonValue doc = JsonValue::parse(
        toSarif(kDiags, nullptr, "file:///repo/"));
    const JsonValue &run = doc.at("runs").asArray()[0];
    const auto &rules =
        run.at("tool").at("driver").at("rules").asArray();
    for (const JsonValue &result : run.at("results").asArray()) {
        const auto idx =
            static_cast<std::size_t>(result.at("ruleIndex").asInt());
        ASSERT_LT(idx, rules.size());
        EXPECT_EQ(rules[idx].at("id").asString(),
                  result.at("ruleId").asString());
    }
}

TEST(LintSarif, BaselineStateSplitsNewFromUnchanged)
{
    std::set<std::string> baselined = {baselineKey(kDiags[1])};
    const JsonValue doc = JsonValue::parse(
        toSarif(kDiags, &baselined, "file:///repo/"));
    const auto &results =
        doc.at("runs").asArray()[0].at("results").asArray();
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].at("baselineState").asString(), "new");
    EXPECT_EQ(results[1].at("baselineState").asString(), "unchanged");
}

TEST(LintSarif, NoRootUriOmitsUriBaseIds)
{
    const JsonValue doc = JsonValue::parse(toSarif(kDiags, nullptr, ""));
    const JsonValue &run = doc.at("runs").asArray()[0];
    EXPECT_FALSE(run.has("originalUriBaseIds"));
    const JsonValue &artifact = run.at("results").asArray()[0]
                                    .at("locations").asArray()[0]
                                    .at("physicalLocation")
                                    .at("artifactLocation");
    EXPECT_FALSE(artifact.has("uriBaseId"));
}

TEST(LintSarif, MessagesWithSpecialCharactersStayValidJson)
{
    const std::vector<Diagnostic> diags = {
        {"src/a b.cc", 0, "det-entropy",
         "quote \" backslash \\ newline \n tab \t control \x01 done"},
    };
    const JsonValue doc = JsonValue::parse(toSarif(diags, nullptr, ""));
    const JsonValue &r =
        doc.at("runs").asArray()[0].at("results").asArray()[0];
    EXPECT_EQ(r.at("message").at("text").asString(),
              "quote \" backslash \\ newline \n tab \t control \x01 done");
    // line 0 is clamped to the schema's minimum of 1.
    EXPECT_EQ(r.at("locations").asArray()[0].at("physicalLocation")
                  .at("region").at("startLine").asInt(),
              1);
}

} // namespace
