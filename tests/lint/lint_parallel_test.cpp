/**
 * @file
 * Determinism of the parallel scan: runLint() findings must be
 * byte-identical at every --jobs setting (the lint_ test-name prefix
 * puts this suite in the TSan tier, so the scan's thread-safety is
 * checked under the race detector too).
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "lint.hh"

namespace {

using eval::lint::Diagnostic;
using eval::lint::Options;
using eval::lint::runLint;

const std::string kFixtures = EVAL_LINT_FIXTURES;

std::vector<Diagnostic>
lintWithJobs(unsigned jobs)
{
    Options opts;
    opts.root = kFixtures + "/violating";
    opts.jobs = jobs;
    std::string error;
    auto diags = runLint(opts, &error);
    EXPECT_EQ(error, "") << "jobs=" << jobs;
    return diags;
}

TEST(LintParallel, FindingsAreIdenticalAtEveryJobCount)
{
    const auto serial = lintWithJobs(1);
    ASSERT_FALSE(serial.empty());
    for (unsigned jobs : {2u, 4u, 8u}) {
        const auto parallel = lintWithJobs(jobs);
        EXPECT_EQ(serial, parallel) << "jobs=" << jobs;
    }
}

TEST(LintParallel, AutoJobCountMatchesSerial)
{
    // jobs = 0 resolves to EVAL_THREADS / hardware concurrency.
    EXPECT_EQ(lintWithJobs(1), lintWithJobs(0));
}

TEST(LintParallel, OrderIsSortedByFileLineRule)
{
    const auto diags = lintWithJobs(4);
    for (std::size_t i = 1; i < diags.size(); ++i) {
        const auto &a = diags[i - 1];
        const auto &b = diags[i];
        EXPECT_LE(std::tie(a.file, a.line, a.rule),
                  std::tie(b.file, b.line, b.rule))
            << a.file << ":" << a.line << " vs " << b.file << ":"
            << b.line;
    }
}

} // namespace
