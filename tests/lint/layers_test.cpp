/**
 * @file
 * Tests for the layering-manifest parser (tools/lint/layers.toml):
 * the TOML subset it accepts, the structural errors it rejects (so
 * the manifest cannot silently half-load), and the DAG check over the
 * declared `uses` edges.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "layers.hh"

namespace {

using eval::lint::checkLayerDag;
using eval::lint::LayersManifest;
using eval::lint::parseLayers;

LayersManifest
parseOk(const std::string &text)
{
    std::vector<std::string> errors;
    const LayersManifest m = parseLayers(text, errors);
    EXPECT_TRUE(errors.empty())
        << (errors.empty() ? "" : errors.front());
    return m;
}

std::vector<std::string>
parseErrors(const std::string &text)
{
    std::vector<std::string> errors;
    (void)parseLayers(text, errors);
    return errors;
}

TEST(LintLayers, ParsesModulesUsesThrowsAndExceptions)
{
    const LayersManifest m = parseOk(
        "# comment\n"
        "[modules.util]\n"
        "uses = []\n"
        "\n"
        "[modules.core]\n"
        "uses = [\n"
        "  \"util\", \"timing\",\n"
        "]\n"
        "\n"
        "[modules.timing]\n"
        "uses = [\"util\"]\n"
        "throws = [\"TimingError\"]\n"
        "\n"
        "[modules.cmp]\n"
        "uses = []\n"
        "\n"
        "[exceptions]\n"
        "edges = [\n"
        "  \"core/eval.hh -> cmp : umbrella header\",\n"
        "]\n");
    ASSERT_EQ(m.modules.size(), 4u);

    const auto &core = m.modules.at("core");
    ASSERT_EQ(core.uses.size(), 2u);
    EXPECT_EQ(core.uses[0].to, "util");
    EXPECT_EQ(core.uses[1].to, "timing");
    EXPECT_FALSE(core.throwsDeclared);

    const auto &timing = m.modules.at("timing");
    EXPECT_TRUE(timing.throwsDeclared);
    ASSERT_EQ(timing.throws_.size(), 1u);
    EXPECT_EQ(timing.throws_[0], "TimingError");

    ASSERT_EQ(m.exceptions.size(), 1u);
    EXPECT_EQ(m.exceptions[0].file, "core/eval.hh");
    EXPECT_EQ(m.exceptions[0].to, "cmp");
    EXPECT_EQ(m.exceptions[0].why, "umbrella header");
}

TEST(LintLayers, EdgeLinesPointAtTheDeclaration)
{
    const LayersManifest m = parseOk(
        "[modules.a]\n"
        "uses = [\n"
        "  \"b\",\n"
        "]\n"
        "[modules.b]\n"
        "uses = []\n");
    // Edges anchor at their `uses = [` key line, so lay-unused-edge
    // findings land on the declaration even for multi-line arrays.
    EXPECT_EQ(m.modules.at("a").uses.at(0).line, 2);
    EXPECT_EQ(m.modules.at("a").line, 1);
    EXPECT_EQ(m.modules.at("b").line, 5);
}

TEST(LintLayers, RejectsUnknownSyntax)
{
    EXPECT_FALSE(parseErrors("[modules.a]\nuses = 3\n").empty());
    EXPECT_FALSE(parseErrors("not a key line\n").empty());
    EXPECT_FALSE(parseErrors("[modules.a]\ncolor = [\"red\"]\n").empty());
    EXPECT_FALSE(parseErrors("uses = [\"a\"]\n").empty()); // outside table
    EXPECT_FALSE(
        parseErrors("[modules.a]\nuses = []\n[modules.a]\nuses = []\n")
            .empty()); // duplicate table
}

TEST(LintLayers, RejectsMalformedExceptionEdge)
{
    const auto errors = parseErrors(
        "[exceptions]\n"
        "edges = [\"core/eval.hh cmp\"]\n"); // missing "->" and ": why"
    ASSERT_FALSE(errors.empty());
    EXPECT_NE(errors.front().find("exception edge"), std::string::npos);
}

TEST(LintLayers, RejectsUsesCycles)
{
    const auto errors = parseErrors(
        "[modules.a]\n"
        "uses = [\"b\"]\n"
        "[modules.b]\n"
        "uses = [\"c\"]\n"
        "[modules.c]\n"
        "uses = [\"a\"]\n");
    ASSERT_FALSE(errors.empty());
    EXPECT_NE(errors.front().find("cycle"), std::string::npos);
}

TEST(LintLayers, DagCheckAcceptsADag)
{
    std::vector<std::string> errors;
    const LayersManifest m = parseLayers(
        "[modules.a]\n"
        "uses = [\"b\", \"c\"]\n"
        "[modules.b]\n"
        "uses = [\"c\"]\n"
        "[modules.c]\n"
        "uses = []\n",
        errors);
    EXPECT_TRUE(errors.empty());
    checkLayerDag(m, errors);
    EXPECT_TRUE(errors.empty());
}

} // namespace
