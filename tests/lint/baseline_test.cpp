/**
 * @file
 * Tests for finding baselines: the file format (tabs, comments,
 * malformed-entry rejection), the fresh/baselined/stale partition,
 * renderBaseline round-trips, and the CLI contract on the
 * fixtures/baseline demo tree — one baselined + one fresh finding,
 * exit 1 only for the fresh one.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "baseline.hh"
#include "lint.hh"

namespace {

namespace fs = std::filesystem;

using eval::lint::applyBaseline;
using eval::lint::Baseline;
using eval::lint::baselineKey;
using eval::lint::Diagnostic;
using eval::lint::loadBaseline;
using eval::lint::renderBaseline;

const std::string kFixtures = EVAL_LINT_FIXTURES;

fs::path
writeTemp(const std::string &name, const std::string &content)
{
    const fs::path path = fs::temp_directory_path() / name;
    std::ofstream out(path);
    out << content;
    return path;
}

TEST(LintBaseline, KeyIsRuleFileLine)
{
    EXPECT_EQ(baselineKey({"src/a.cc", 12, "det-entropy", "msg"}),
              "det-entropy\tsrc/a.cc\t12");
}

TEST(LintBaseline, LoadSkipsCommentsAndBlanks)
{
    const fs::path path = writeTemp(
        "eval_lint_baseline_ok.txt",
        "# header comment\n"
        "\n"
        "det-entropy\tsrc/a.cc\t12\n"
        "num-float-eq\tsrc/b.cc\t3\n");
    std::string error;
    const Baseline b = loadBaseline(path, &error);
    fs::remove(path);
    ASSERT_TRUE(b.loaded) << error;
    ASSERT_EQ(b.keys.size(), 2u);
    EXPECT_EQ(b.keys[0], "det-entropy\tsrc/a.cc\t12");
}

TEST(LintBaseline, MalformedEntryFailsTheLoad)
{
    const fs::path path = writeTemp("eval_lint_baseline_bad.txt",
                                    "det-entropy src/a.cc\n");
    std::string error;
    const Baseline b = loadBaseline(path, &error);
    fs::remove(path);
    EXPECT_FALSE(b.loaded);
    EXPECT_FALSE(error.empty());
}

TEST(LintBaseline, MissingFileFailsTheLoad)
{
    std::string error;
    const Baseline b =
        loadBaseline(fs::temp_directory_path() / "eval_lint_nope.txt",
                     &error);
    EXPECT_FALSE(b.loaded);
    EXPECT_FALSE(error.empty());
}

TEST(LintBaseline, ApplyPartitionsFreshBaselinedStale)
{
    const std::vector<Diagnostic> diags = {
        {"src/a.cc", 12, "det-entropy", "old hit"},
        {"src/b.cc", 3, "num-float-eq", "new hit"},
    };
    Baseline b;
    b.loaded = true;
    b.keys = {"det-entropy\tsrc/a.cc\t12",
              "det-wallclock\tsrc/gone.cc\t9"};
    const auto split = applyBaseline(diags, b);
    ASSERT_EQ(split.fresh.size(), 1u);
    EXPECT_EQ(split.fresh[0].file, "src/b.cc");
    ASSERT_EQ(split.baselined.size(), 1u);
    EXPECT_EQ(split.baselined[0].file, "src/a.cc");
    ASSERT_EQ(split.stale.size(), 1u);
    EXPECT_EQ(split.stale[0], "det-wallclock\tsrc/gone.cc\t9");
}

TEST(LintBaseline, RenderRoundTripsThroughLoad)
{
    const std::vector<Diagnostic> diags = {
        {"src/a.cc", 12, "det-entropy", "msg"},
        {"src/b.cc", 3, "num-float-eq", "msg"},
    };
    const fs::path path = writeTemp("eval_lint_baseline_rt.txt",
                                    renderBaseline(diags));
    std::string error;
    const Baseline b = loadBaseline(path, &error);
    fs::remove(path);
    ASSERT_TRUE(b.loaded) << error;
    ASSERT_EQ(b.keys.size(), 2u);
    EXPECT_EQ(b.keys[0], baselineKey(diags[0]));
    EXPECT_EQ(b.keys[1], baselineKey(diags[1]));
    // Everything rendered is baselined on re-apply; nothing is stale.
    const auto split = applyBaseline(diags, b);
    EXPECT_TRUE(split.fresh.empty());
    EXPECT_TRUE(split.stale.empty());
}

// ---------------------------------------------------------------------------
// CLI contract on the demo tree (the workflow TESTING.md documents).
// ---------------------------------------------------------------------------

int
runBinary(const std::string &args)
{
    const std::string cmd = std::string(EVAL_LINT_BIN) + " " + args +
                            " > /dev/null 2>&1";
    const int status = std::system(cmd.c_str());
    return WEXITSTATUS(status);
}

TEST(LintBaselineCli, FreshFindingFailsBaselinedOneDoesNot)
{
    const std::string tree = kFixtures + "/baseline";
    // No baseline: both findings are fresh.
    EXPECT_EQ(runBinary("--root " + tree), 1);
    // Partial baseline: the det-wallclock finding is still fresh.
    EXPECT_EQ(runBinary("--root " + tree + " --baseline " + tree +
                        "/baseline.txt"),
              1);
    // Full baseline: nothing fresh left.
    EXPECT_EQ(runBinary("--root " + tree + " --baseline " + tree +
                        "/baseline-all.txt"),
              0);
}

TEST(LintBaselineCli, WriteBaselineZeroesTheNextRun)
{
    const std::string tree = kFixtures + "/baseline";
    const fs::path out =
        fs::temp_directory_path() / "eval_lint_written_baseline.txt";
    EXPECT_EQ(runBinary("--root " + tree + " --write-baseline " +
                        out.string()),
              0);
    EXPECT_EQ(runBinary("--root " + tree + " --baseline " + out.string()),
              0);
    fs::remove(out);
}

TEST(LintBaselineCli, BaselineAndWriteBaselineAreExclusive)
{
    const std::string tree = kFixtures + "/baseline";
    EXPECT_EQ(runBinary("--root " + tree + " --baseline " + tree +
                        "/baseline.txt --write-baseline /tmp/x.txt"),
              2);
    EXPECT_EQ(runBinary("--root " + tree +
                        " --baseline /does/not/exist.txt"),
              2);
}

} // namespace
