/**
 * @file
 * Tests for phase 2 of the semantic analyzer: runProjectPasses() over
 * synthetic FileIndex sets — layering edges and their exceptions,
 * include cycles, exception contracts, the relaxed-atomics audit, and
 * the determinism data-flow check on parallel regions.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint.hh"
#include "passes.hh"

namespace {

using eval::lint::buildFileIndex;
using eval::lint::Diagnostic;
using eval::lint::LayersManifest;
using eval::lint::parseLayers;
using eval::lint::PassOptions;
using eval::lint::ProjectIndex;
using eval::lint::runProjectPasses;

int
countRule(const std::vector<Diagnostic> &diags, const std::string &rule)
{
    return static_cast<int>(
        std::count_if(diags.begin(), diags.end(),
                      [&](const Diagnostic &d) { return d.rule == rule; }));
}

LayersManifest
manifest(const std::string &text)
{
    std::vector<std::string> errors;
    LayersManifest m = parseLayers(text, errors);
    EXPECT_TRUE(errors.empty())
        << (errors.empty() ? "" : errors.front());
    return m;
}

std::vector<Diagnostic>
run(const ProjectIndex &index, const LayersManifest &m,
    bool fullTree = true)
{
    PassOptions opts;
    opts.fullTree = fullTree;
    opts.manifestRel = "layers.toml";
    return runProjectPasses(index, m, {}, opts);
}

// ---------------------------------------------------------------------------
// Layering
// ---------------------------------------------------------------------------

TEST(LintPasses, UndeclaredCrossModuleIncludeIsLayEdge)
{
    ProjectIndex index;
    index.files.push_back(buildFileIndex(
        "src/stats/x.cc", "#include \"thermal/solver.hh\"\n"));
    index.files.push_back(
        buildFileIndex("src/thermal/solver.hh", "#pragma once\n"));
    const auto diags = run(
        index, manifest("[modules.stats]\nuses = []\n"
                        "[modules.thermal]\nuses = []\n"),
        /*fullTree=*/false);
    ASSERT_EQ(countRule(diags, "lay-edge"), 1);
    const auto it =
        std::find_if(diags.begin(), diags.end(), [](const Diagnostic &d) {
            return d.rule == "lay-edge";
        });
    EXPECT_EQ(it->file, "src/stats/x.cc");
    EXPECT_EQ(it->line, 1);
    EXPECT_NE(it->message.find("stats -> thermal"), std::string::npos);
}

TEST(LintPasses, DeclaredEdgeAndExceptionAreSilent)
{
    ProjectIndex index;
    index.files.push_back(buildFileIndex(
        "src/core/x.cc", "#include \"util/math.hh\"\n"));
    index.files.push_back(buildFileIndex(
        "src/util/fft.cc", "#include \"exec/thread_pool.hh\"\n"));
    index.files.push_back(buildFileIndex("src/exec/y.cc", ""));
    const auto diags = run(
        index,
        manifest("[modules.core]\nuses = [\"util\"]\n"
                 "[modules.util]\nuses = []\n"
                 "[modules.exec]\nuses = []\n"
                 "[exceptions]\n"
                 "edges = [\"util/fft.cc -> exec : pool fan-out\"]\n"));
    EXPECT_EQ(countRule(diags, "lay-edge"), 0);
    EXPECT_EQ(countRule(diags, "lay-unused-edge"), 0);
}

TEST(LintPasses, SameModuleAndNonModuleIncludesAreSilent)
{
    ProjectIndex index;
    index.files.push_back(buildFileIndex(
        "src/core/x.cc",
        "#include \"core/other.hh\"\n"   // same module
        "#include \"helper.hh\"\n"       // same directory
        "#include <vector>\n"            // angled
        "#include \"gtest/gtest.h\"\n")); // not a declared module
    const auto diags =
        run(index, manifest("[modules.core]\nuses = []\n"),
            /*fullTree=*/false);
    EXPECT_EQ(countRule(diags, "lay-edge"), 0);
}

TEST(LintPasses, UndeclaredModuleIsLayModule)
{
    ProjectIndex index;
    index.files.push_back(buildFileIndex("src/rogue/x.cc", "int x;\n"));
    const auto diags =
        run(index, manifest("[modules.core]\nuses = []\n"),
            /*fullTree=*/false);
    EXPECT_EQ(countRule(diags, "lay-module"), 1);
}

TEST(LintPasses, StaleManifestEntriesOnlyReportOnFullTreeRuns)
{
    ProjectIndex index;
    index.files.push_back(buildFileIndex("src/core/x.cc", "int x;\n"));
    const LayersManifest m =
        manifest("[modules.core]\nuses = [\"util\"]\n"
                 "[modules.util]\nuses = []\n");
    // Full tree: the unexercised core -> util edge and the fileless
    // util table are both stale.
    EXPECT_EQ(countRule(run(index, m, true), "lay-unused-edge"), 2);
    // Changed-files run: out-of-scope users may exercise them; silent.
    EXPECT_EQ(countRule(run(index, m, false), "lay-unused-edge"), 0);
}

TEST(LintPasses, IncludeCycleIsReportedOnce)
{
    ProjectIndex index;
    index.files.push_back(buildFileIndex(
        "src/core/a.hh", "#pragma once\n#include \"b.hh\"\n"));
    index.files.push_back(buildFileIndex(
        "src/core/b.hh", "#pragma once\n#include \"a.hh\"\n"));
    const auto diags =
        run(index, manifest("[modules.core]\nuses = []\n"));
    EXPECT_EQ(countRule(diags, "lay-cycle"), 1);
}

TEST(LintPasses, ManifestErrorsBecomeLayManifestFindings)
{
    ProjectIndex index;
    PassOptions opts;
    opts.manifestRel = "tools/lint/layers.toml";
    const auto diags = runProjectPasses(
        index, LayersManifest{}, {"line 7: unknown module key 'color'"},
        opts);
    ASSERT_EQ(countRule(diags, "lay-manifest"), 1);
    EXPECT_EQ(diags[0].file, "tools/lint/layers.toml");
    EXPECT_EQ(diags[0].line, 7);
    EXPECT_NE(diags[0].message.find("unknown module key"),
              std::string::npos);
}

// ---------------------------------------------------------------------------
// Exception contracts
// ---------------------------------------------------------------------------

TEST(LintPasses, ThrowOutsideContractIsExcContract)
{
    ProjectIndex index;
    index.files.push_back(buildFileIndex(
        "src/valid/x.cc",
        "void f() { throw std::runtime_error(\"boom\"); }\n"));
    const auto diags = run(
        index,
        manifest("[modules.valid]\nuses = []\n"
                 "throws = [\"SnapshotError\"]\n"),
        /*fullTree=*/false);
    EXPECT_EQ(countRule(diags, "exc-contract"), 1);
}

TEST(LintPasses, DeclaredThrowsPassThroughsAndRethrowsAreSilent)
{
    ProjectIndex index;
    index.files.push_back(buildFileIndex(
        "src/valid/x.cc",
        "void f(bool b, SnapshotError err) {\n"
        "    if (b)\n"
        "        throw SnapshotError(\"declared\");\n"
        "    throw err;\n" // pass-through of a checked object
        "    try { f(b, err); } catch (...) { throw; }\n"
        "}\n"));
    const auto diags = run(
        index,
        manifest("[modules.valid]\nuses = []\n"
                 "throws = [\"SnapshotError\"]\n"),
        /*fullTree=*/false);
    EXPECT_EQ(countRule(diags, "exc-contract"), 0);
}

TEST(LintPasses, NoThrowsKeyMeansMayNotThrow)
{
    ProjectIndex index;
    index.files.push_back(buildFileIndex(
        "src/core/x.cc", "void f() { throw CoreError(\"boom\"); }\n"));
    const auto diags =
        run(index, manifest("[modules.core]\nuses = []\n"),
            /*fullTree=*/false);
    EXPECT_EQ(countRule(diags, "exc-contract"), 1);
}

// ---------------------------------------------------------------------------
// Atomics audit
// ---------------------------------------------------------------------------

TEST(LintPasses, RelaxedAtomicNeedsAllowanceOrCountersOnly)
{
    const std::string body =
        "void t(std::atomic<int> &c) {\n"
        "    c.fetch_add(1, std::memory_order_relaxed);\n"
        "    c.load(std::memory_order_acquire);\n" // ordered: fine
        "}\n";
    ProjectIndex bare;
    bare.files.push_back(buildFileIndex("src/obs/x.cc", body));
    EXPECT_EQ(
        countRule(run(bare, LayersManifest{}, false), "atomics-relaxed"),
        1);

    ProjectIndex marked;
    marked.files.push_back(buildFileIndex(
        "src/obs/x.cc",
        "// eval-lint: counters-only monotone ticks, test fixture\n" +
            body));
    EXPECT_EQ(
        countRule(run(marked, LayersManifest{}, false), "atomics-relaxed"),
        0);

    // Outside src/ the audit does not apply (bench and tests measure,
    // they are not the model).
    ProjectIndex bench;
    bench.files.push_back(buildFileIndex("bench/x.cpp", body));
    EXPECT_EQ(
        countRule(run(bench, LayersManifest{}, false), "atomics-relaxed"),
        0);
}

// ---------------------------------------------------------------------------
// Determinism data-flow
// ---------------------------------------------------------------------------

std::vector<Diagnostic>
runFlow(const std::string &body)
{
    ProjectIndex index;
    index.files.push_back(buildFileIndex("src/core/x.cc", body));
    return run(index, LayersManifest{}, false);
}

TEST(LintPasses, ByRefMutationInParallelBodyIsFlagged)
{
    const auto diags = runFlow(
        "void f(std::vector<double> &out, std::size_t n) {\n"
        "    parallelFor(0, n, 1, [&](std::size_t i) {\n"
        "        out.push_back(static_cast<double>(i));\n"
        "    });\n"
        "}\n");
    ASSERT_EQ(countRule(diags, "det-par-capture"), 1);
    EXPECT_EQ(diags[0].line, 3);
    EXPECT_NE(diags[0].message.find("'out'"), std::string::npos);
}

TEST(LintPasses, MemberChainMutationFlagsTheRootCapture)
{
    // runs.base.resize(...) mutates `runs`, the captured object.
    const auto diags = runFlow(
        "void f(Runs &runs, std::size_t n) {\n"
        "    parallelFor(0, n, 1, [&runs](std::size_t i) {\n"
        "        runs.base.resize(i);\n"
        "    });\n"
        "}\n");
    ASSERT_EQ(countRule(diags, "det-par-capture"), 1);
    EXPECT_NE(diags[0].message.find("'runs'"), std::string::npos);
}

TEST(LintPasses, SharedScalarAccumulationIsFlagged)
{
    const auto diags = runFlow(
        "void f(double &sum, std::size_t n) {\n"
        "    parallelFor(0, n, 1, [&](std::size_t i) {\n"
        "        sum += static_cast<double>(i);\n"
        "    });\n"
        "}\n");
    EXPECT_EQ(countRule(diags, "det-par-capture"), 1);
}

TEST(LintPasses, SlotWritesLocalsAndCallResultsAreSilent)
{
    const auto diags = runFlow(
        "void f(std::vector<double> &out, std::size_t n) {\n"
        "    parallelFor(0, n, 1, [&](std::size_t i) {\n"
        "        std::vector<double> scratch;\n"
        "        scratch.push_back(1.0);\n"     // local: fine
        "        double acc = 0.0;\n"
        "        acc += scratch.front();\n"     // local: fine
        "        lookup(i).push_back(acc);\n"   // call-result root: fine
        "        out[i] = acc;\n"               // slot write: fine
        "    });\n"
        "}\n");
    EXPECT_EQ(countRule(diags, "det-par-capture"), 0);
}

TEST(LintPasses, ByValueCaptureIsSilent)
{
    const auto diags = runFlow(
        "void f(std::vector<double> out, std::size_t n) {\n"
        "    parallelFor(0, n, 1, [out](std::size_t i) mutable {\n"
        "        out.push_back(static_cast<double>(i));\n"
        "    });\n"
        "}\n");
    EXPECT_EQ(countRule(diags, "det-par-capture"), 0);
}

} // namespace
