// Fixture: a historical finding accepted in the tree's baseline file.
#include <cstdlib>

namespace fixture {

int
legacyNoise()
{
    return rand(); // det-entropy, baselined in baseline.txt
}

} // namespace fixture
