// Fixture: a finding NOT in baseline.txt — the one fresh finding that
// must make the run exit 1.
#include <chrono>

namespace fixture {

long
wallNow()
{
    return std::chrono::steady_clock::now().time_since_epoch().count();
}

} // namespace fixture
