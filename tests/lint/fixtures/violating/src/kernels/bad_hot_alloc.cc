// Fixture: every allocation shape perf-hot-alloc bans inside the
// kernel layer — raw new, a C allocator, make_unique with explicit
// template arguments, std::function, unreserved push_back, and a
// sized vector local.
#include <cstdlib>
#include <functional>
#include <memory>
#include <vector>

namespace fixture {

struct Lane
{
    double delay = 0.0;
};

double
accumulate(std::size_t n)
{
    Lane *heap = new Lane[n];                    // perf-hot-alloc (new)
    void *raw = std::malloc(n);                  // perf-hot-alloc (malloc)
    auto owned = std::make_unique<Lane>();       // perf-hot-alloc (make_unique)
    std::function<double(double)> op =           // perf-hot-alloc (function)
        [](double x) { return x + 1.0; };
    std::vector<double> scratch(n);              // perf-hot-alloc (sized vector)
    std::vector<double> grown;
    for (std::size_t i = 0; i < n; ++i)
        grown.push_back(scratch[i]);             // perf-hot-alloc (push_back)
    double sum = op(owned->delay);
    for (double v : grown)
        sum += v;
    delete[] heap;
    std::free(raw);
    return sum;
}

} // namespace fixture
