// Fixture: a src/ module with no [modules.undeclared] table in the
// tree's layers.toml (lay-module).  Otherwise clean.

namespace fixture {

int
widgetId()
{
    return 7;
}

} // namespace fixture
