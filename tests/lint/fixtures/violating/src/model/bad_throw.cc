// Fixture: module 'model' declares no throws contract in layers.toml,
// so a constructed throw is an exc-contract finding.
#include <stdexcept>

namespace fixture {

void
failModel(bool bad)
{
    if (bad)
        throw std::runtime_error("model failure"); // exc-contract
}

} // namespace fixture
