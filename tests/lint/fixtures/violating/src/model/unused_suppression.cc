// Fixture: a well-formed suppression with nothing to suppress must be
// reported as lint-unused-suppression so stale allowances are audited.
namespace fixture {

double
harmless()
{
    // eval-lint: allow(det-entropy) there is no entropy call here, so
    // this allowance is stale and must be flagged.
    const double x = 0.5;
    return x;
}

} // namespace fixture
