// Fixture: exact float equality (num-float-eq) and float narrowing on
// a model path (num-float-narrow).
namespace fixture {

double
blend(double frac)
{
    if (frac == 1.0)        // num-float-eq
        return 1.0;
    if (0.5 != frac)        // num-float-eq (literal on the left)
        return 0.0;
    if (frac == 1e-4)       // num-float-eq (exponent literal)
        return 2.0;
    const float narrowed =  // num-float-narrow
        static_cast<float>(frac); // num-float-narrow
    return narrowed;
}

} // namespace fixture
