// Fixture: a relaxed atomic access with neither an audited inline
// allowance nor the counters-only file marker.
#include <atomic>
#include <cstdint>

namespace fixture {

std::atomic<std::uint64_t> ticks{0};

void
tick()
{
    ticks.fetch_add(1, std::memory_order_relaxed); // atomics-relaxed
}

} // namespace fixture
