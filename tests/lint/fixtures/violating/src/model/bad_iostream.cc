// Fixture: direct console I/O in library code (hyg-iostream).
#include <cstdio>
#include <iostream>

namespace fixture {

void
report(double value)
{
    std::cout << "value = " << value << '\n'; // hyg-iostream
    std::cerr << "done\n";                    // hyg-iostream
    std::printf("%f\n", value);               // hyg-iostream
}

} // namespace fixture
