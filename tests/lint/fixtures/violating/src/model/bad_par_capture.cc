// Fixture: a by-reference capture grown order-dependently inside a
// parallel region — the result depends on the thread schedule.
#include <cstddef>
#include <vector>

namespace fixture {

template <typename Fn>
void
parallelFor(std::size_t first, std::size_t last, std::size_t grain, Fn &&fn)
{
    (void)grain;
    for (std::size_t i = first; i < last; ++i)
        fn(i);
}

std::vector<double>
collect(std::size_t n)
{
    std::vector<double> out;
    parallelFor(0, n, 1, [&](std::size_t i) {
        out.push_back(static_cast<double>(i)); // det-par-capture
    });
    return out;
}

} // namespace fixture
