// Fixture: unordered container in model code (det-unordered).  The
// #include line itself must NOT be flagged; the declaration must.
#include <string>
#include <unordered_map>

namespace fixture {

double
accumulate()
{
    std::unordered_map<std::string, double> weights; // det-unordered
    weights["a"] = 0.5;
    double sum = 0.0;
    for (const auto &[k, v] : weights)
        sum += v;
    return sum;
}

} // namespace fixture
