// Fixture: Rng drawn inside a parallel region from a shared stream
// (det-shared-rng).  No Rng::split in the region, so every draw is a
// schedule-dependent race on the generator state.
#include <cstddef>
#include <vector>

namespace fixture {

struct Rng
{
    double uniform() { return 0.5; }
    double gaussian() { return 0.0; }
};

template <typename Fn>
void
parallelFor(std::size_t first, std::size_t last, std::size_t grain, Fn &&fn)
{
    (void)grain;
    for (std::size_t i = first; i < last; ++i)
        fn(i);
}

std::vector<double>
sampleMany(Rng &rng, std::size_t n)
{
    std::vector<double> out(n);
    parallelFor(0, n, 1, [&](std::size_t i) {
        out[i] = rng.uniform() + rng.gaussian(); // det-shared-rng x2
    });
    return out;
}

} // namespace fixture
