// Fixture: a file outside src/kernels/ that opts into the hot-kernel
// allocation rule with the marker comment, then allocates anyway.
// eval-lint: hot-path
#include <cstddef>

namespace fixture {

double *
makeBuffer(std::size_t n)
{
    return new double[n]; // perf-hot-alloc (new, via hot-path marker)
}

} // namespace fixture
