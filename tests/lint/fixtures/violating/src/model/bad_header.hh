// Fixture: header with no #pragma once (hyg-pragma-once) and a
// header-scope using-directive (hyg-using-namespace).
#ifndef FIXTURE_BAD_HEADER_HH
#define FIXTURE_BAD_HEADER_HH

#include <string>

using namespace std; // hyg-using-namespace

namespace fixture {

inline string
greet()
{
    return "hi";
}

} // namespace fixture

#endif // FIXTURE_BAD_HEADER_HH
