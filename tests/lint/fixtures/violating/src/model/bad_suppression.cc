// Fixture: suppression misuse.  Each case must surface as
// lint-bad-suppression, and the finding it tried to hide must
// still be reported.
#include <cstdlib>

namespace fixture {

int
noise()
{
    // Case 1: no justification text at all.
    const int a = std::rand(); // eval-lint: allow(det-entropy)

    // Case 2: unknown rule id.
    const int b = std::rand(); // eval-lint: allow(not-a-rule) because

    // Case 3: empty rule list.
    const int c = std::rand(); // eval-lint: allow() shrug

    return a + b + c;
}

} // namespace fixture
