// Fixture: every banned entropy/time source (det-entropy) plus a
// wall-clock type on a model path (det-wallclock).
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

double
sampleNoise()
{
    std::srand(42);                       // det-entropy (srand)
    std::random_device dev;               // det-entropy (random_device)
    const double r = std::rand() / 32768.0; // det-entropy (rand)
    const auto t = std::time(nullptr);    // det-entropy (time)
    const auto now =
        std::chrono::steady_clock::now(); // det-wallclock
    (void)dev;
    (void)t;
    (void)now;
    return r;
}

} // namespace fixture
