// Fixture: span handles escaping their scope (obs-span-leak).
// Deliberately not compilable — the lint corpus is text-only.

namespace fixture {

class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *) {}
};

ScopedSpan *
leakySpan()
{
    return new ScopedSpan("model.step"); // obs-span-leak (heap)
}

void
holdSpan(ScopedSpan &span)               // obs-span-leak (reference)
{
    (void)span;
}

void
rawHandles()
{
    const auto h = beginSpanImpl("model.raw"); // obs-span-leak
    endSpanImpl("model.raw", h);               // obs-span-leak
}

} // namespace fixture
