#pragma once
// Fixture: the other half of the mutual include pair (lay-cycle is
// reported once, on the edge that closes the cycle).
#include "cycle_a.hh"

namespace fixture {
inline int cycleB() { return 2; }
} // namespace fixture
