#pragma once
// Fixture: half of a mutual include pair — the file-level include
// graph must be acyclic (lay-cycle).
#include "cycle_b.hh"

namespace fixture {
inline int cycleA() { return 1; }
} // namespace fixture
