// Fixture: a quoted include crossing the module boundary
// model -> kernels with no declared edge in layers.toml.
#include "kernels/tile.hh" // lay-edge

namespace fixture {

int
modelLeansOnKernels()
{
    return 1;
}

} // namespace fixture
