// Fixture: a bench fan-out that never reports progress
// (obs-progress-units).  Without a ProgressTracker::tick in the
// region the status file shows nothing moving for the whole run.
#include <cstddef>
#include <vector>

namespace fixture {

template <typename Fn>
void
parallelFor(std::size_t first, std::size_t last, std::size_t grain, Fn &&fn)
{
    (void)grain;
    for (std::size_t i = first; i < last; ++i)
        fn(i);
}

template <typename Fn>
std::vector<double>
parallelMap(std::size_t n, Fn &&fn)
{
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = fn(i);
    return out;
}

double
silentSweep(std::size_t chips)
{
    double sum = 0.0;
    parallelFor(0, chips, 1, [&](std::size_t i) { // obs-progress-units
        sum += static_cast<double>(i);
    });
    const auto perChip =
        parallelMap(chips, [](std::size_t chip) { // obs-progress-units
            return static_cast<double>(chip) * 2.0;
        });
    for (double v : perChip)
        sum += v;
    return sum;
}

} // namespace fixture
