// Fixture: kernel code that honors perf-hot-alloc — fixed-size stack
// lanes, reserve before push_back, and an audited suppression for the
// one construction-time allocation.
#include <cstddef>
#include <vector>

namespace fixture {

double
lockstep(const double *in, std::size_t n)
{
    constexpr std::size_t kMaxLanes = 64;
    double lanes[kMaxLanes] = {};
    std::vector<double> out;
    out.reserve(n);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; i += kMaxLanes) {
        const std::size_t m = (n - i < kMaxLanes) ? n - i : kMaxLanes;
        for (std::size_t j = 0; j < m; ++j)
            lanes[j] = in[i + j] * 2.0;
        for (std::size_t j = 0; j < m; ++j) {
            out.push_back(lanes[j]);
            sum += lanes[j];
        }
    }
    // eval-lint: allow(perf-hot-alloc) construction-time scratch,
    // sized once per call rather than grown inside the lane loop
    std::vector<double> scratch(n);
    for (std::size_t i = 0; i < n; ++i)
        scratch[i] = sum;
    return scratch.empty() ? sum : scratch.back();
}

} // namespace fixture
