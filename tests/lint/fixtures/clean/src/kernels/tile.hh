#pragma once
// Fixture: a kernels header exercising the clean tree's declared
// model -> kernels edge.  src/kernels is hot, so no allocation here.

namespace fixture {

inline double
tileScale()
{
    return 1.0;
}

} // namespace fixture
