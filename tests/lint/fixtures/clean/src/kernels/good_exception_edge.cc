// Fixture: a kernels -> model include with no declared edge, allowed
// through the per-file [exceptions] entry in the tree's layers.toml.
// No allocation: src/kernels is hot.
#include "model/good.hh"

namespace fixture {

double
kernelPeeksAtModel(double x)
{
    return x;
}

} // namespace fixture
