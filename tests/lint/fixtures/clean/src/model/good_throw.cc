// Fixture: constructed throws name the contract type declared in
// layers.toml; re-raising a caught object is pass-through and a bare
// rethrow is always allowed.
#include <stdexcept>
#include <string>

namespace fixture {

struct ModelError : std::runtime_error
{
    explicit ModelError(const std::string &what) : std::runtime_error(what)
    {
    }
};

void
check(bool ok)
{
    if (!ok)
        throw ModelError("fixture model failure");
}

void
reraise(const ModelError &err)
{
    try {
        throw err; // pass-through of an already-checked object
    } catch (...) {
        throw; // bare rethrow: always allowed
    }
}

} // namespace fixture
