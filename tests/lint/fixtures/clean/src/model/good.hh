// Fixture: a hygienic header — #pragma once, no using-directives, no
// console I/O, double-throughout.
#pragma once

#include <cstddef>

namespace fixture {

double blend(double frac, std::size_t n);

} // namespace fixture
