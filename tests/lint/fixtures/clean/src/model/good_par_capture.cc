// Fixture: parallel bodies that stay deterministic — slot-indexed
// writes into a presized buffer, and mutation of lambda-locals only.
#include <cstddef>
#include <vector>

namespace fixture {

template <typename Fn>
void
parallelFor(std::size_t first, std::size_t last, std::size_t grain, Fn &&fn)
{
    (void)grain;
    for (std::size_t i = first; i < last; ++i)
        fn(i);
}

std::vector<double>
fill(std::size_t n)
{
    std::vector<double> out(n);
    parallelFor(0, n, 1, [&](std::size_t i) {
        std::vector<double> scratch;
        scratch.push_back(static_cast<double>(i)); // local: fine
        double acc = 0.0;
        acc += scratch.front(); // local accumulation: fine
        out[i] = acc;           // slot-indexed write: fine
    });
    return out;
}

} // namespace fixture
