// Fixture: exercises the declared model -> kernels edge, keeping the
// clean manifest free of lay-unused-edge findings.
#include "kernels/tile.hh"

namespace fixture {

double
modelUsesTile()
{
    return tileScale();
}

} // namespace fixture
