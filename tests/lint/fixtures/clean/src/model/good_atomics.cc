// Fixture: a relaxed atomic with an audited per-site allowance.
#include <atomic>
#include <cstdint>

namespace fixture {

std::atomic<std::uint64_t> ticks{0};

void
tick()
{
    // eval-lint: allow(atomics-relaxed) fixture: monotone tick with no
    // payload to order against; the total is read only after join.
    ticks.fetch_add(1, std::memory_order_relaxed);
}

} // namespace fixture
