#pragma once
// Fixture: a counters-only file — every relaxed access here is a
// monotone observational counter off the model path.
// eval-lint: counters-only fixture: monotone counters nothing on the
// model path ever reads back.

#include <atomic>
#include <cstdint>

namespace fixture {

inline std::atomic<std::uint64_t> &
counter()
{
    static std::atomic<std::uint64_t> c{0};
    return c;
}

inline void
bump()
{
    counter().fetch_add(1, std::memory_order_relaxed);
}

} // namespace fixture
