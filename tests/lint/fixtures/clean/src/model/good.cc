// Fixture: model code that honors every rule — split-derived Rng
// streams inside the parallel region, tolerance comparison instead of
// float equality, and a justified (therefore used) suppression for an
// unordered container that never reaches an accumulation path.
#include <cmath>
#include <cstddef>
#include <unordered_set>
#include <vector>

namespace fixture {

struct Rng
{
    double uniform() { return 0.5; }
    Rng split(std::size_t) const { return *this; }
};

template <typename Fn>
void
parallelFor(std::size_t first, std::size_t last, std::size_t grain, Fn &&fn)
{
    (void)grain;
    for (std::size_t i = first; i < last; ++i)
        fn(i);
}

double
blend(double frac, std::size_t n)
{
    // eval-lint: allow(det-unordered) membership probe only: the set
    // is never iterated, so its order cannot reach results or output.
    std::unordered_set<std::size_t> seen;
    seen.insert(n);

    Rng master;
    std::vector<double> out(n);
    parallelFor(0, n, 1, [&](std::size_t i) {
        Rng local = master.split(i);
        out[i] = local.uniform();
    });

    double sum = 0.0;
    for (double v : out)
        sum += v;
    if (std::abs(frac - 1.0) < 1e-12)
        sum += 1.0;
    return sum;
}

class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *) {}
};

double
tracedBlend(double frac, std::size_t n)
{
    // RAII span on the stack: opens and closes with this scope, so
    // obs-span-leak has nothing to say.
    ScopedSpan span("model.blend");
    return blend(frac, n);
}

} // namespace fixture
