// Fixture: wall-clock reads are legitimate OUTSIDE src/ — tests and
// benches measure real time.  det-wallclock must not fire here.
#include <chrono>

namespace fixture {

long
elapsedNs()
{
    const auto t0 = std::chrono::steady_clock::now();
    const auto t1 = std::chrono::steady_clock::now();
    return static_cast<long>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
}

} // namespace fixture
