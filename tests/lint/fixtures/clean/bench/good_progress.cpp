// Fixture: bench fan-outs that satisfy obs-progress-units — one by
// ticking a ProgressTracker inside the region, one via the audited
// suppression form for work whose progress is reported elsewhere.
#include <cstddef>
#include <vector>

namespace fixture {

struct ProgressTracker
{
    void addTotal(std::size_t) {}
    void tick() {}
};

template <typename Fn>
std::vector<double>
parallelMap(std::size_t n, Fn &&fn)
{
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = fn(i);
    return out;
}

double
reportedSweep(std::size_t chips)
{
    ProgressTracker progress;
    progress.addTotal(chips);
    const auto perChip = parallelMap(chips, [&](std::size_t chip) {
        progress.tick();
        return static_cast<double>(chip);
    });
    double sum = 0.0;
    for (double v : perChip)
        sum += v;
    return sum;
}

double
warmup(std::size_t apps)
{
    // eval-lint: allow(obs-progress-units) cache warm-up; the callee
    // reports phase-level progress through its own tracker
    const auto warmed = parallelMap(
        apps, [](std::size_t a) { return static_cast<double>(a); });
    double sum = 0.0;
    for (double v : warmed)
        sum += v;
    return sum;
}

} // namespace fixture
