/**
 * @file
 * Tests for phase 1 of the semantic analyzer: buildFileIndex() on
 * in-memory sources — include edges, declarations, throw/catch sites,
 * memory-order uses, and parallelFor/parallelMap lambda regions.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "index.hh"

namespace {

using eval::lint::buildFileIndex;
using eval::lint::DeclSite;
using eval::lint::FileIndex;
using eval::lint::moduleOf;

TEST(LintIndex, ModuleOf)
{
    EXPECT_EQ(moduleOf("src/core/eval.cc"), "core");
    EXPECT_EQ(moduleOf("src/util/fft.cc"), "util");
    EXPECT_EQ(moduleOf("src/loose.cc"), "");
    EXPECT_EQ(moduleOf("bench/bench.cpp"), "");
    EXPECT_EQ(moduleOf("tools/lint/lint.cc"), "");
}

TEST(LintIndex, IncludesRecordPathLineAndAngled)
{
    const FileIndex idx = buildFileIndex(
        "src/core/x.cc",
        "#include \"timing/error_model.hh\"\n"
        "#include <vector>\n"
        "  #  include \"local.hh\"\n"
        "// #include \"commented_out.hh\" is still an include line\n");
    ASSERT_EQ(idx.includes.size(), 3u);
    EXPECT_EQ(idx.includes[0].path, "timing/error_model.hh");
    EXPECT_EQ(idx.includes[0].line, 1);
    EXPECT_FALSE(idx.includes[0].angled);
    EXPECT_EQ(idx.includes[1].path, "vector");
    EXPECT_TRUE(idx.includes[1].angled);
    EXPECT_EQ(idx.includes[2].path, "local.hh");
    EXPECT_EQ(idx.includes[2].line, 3);
}

TEST(LintIndex, HeaderFlagAndModule)
{
    EXPECT_TRUE(buildFileIndex("src/core/x.hh", "int x;\n").header);
    EXPECT_FALSE(buildFileIndex("src/core/x.cc", "int x;\n").header);
    EXPECT_EQ(buildFileIndex("src/thermal/solver.cc", "").module,
              "thermal");
}

TEST(LintIndex, ThrowSitesRecordTypeAndRethrow)
{
    const FileIndex idx = buildFileIndex(
        "src/valid/x.cc",
        "void f() {\n"
        "    throw SnapshotError(\"bad\");\n"
        "    throw std::runtime_error(\"worse\");\n"
        "    try { g(); } catch (...) { throw; }\n"
        "    throw err;\n"
        "}\n");
    ASSERT_EQ(idx.throwSites.size(), 4u);
    EXPECT_EQ(idx.throwSites[0].type, "SnapshotError");
    EXPECT_EQ(idx.throwSites[0].line, 2);
    EXPECT_EQ(idx.throwSites[1].type, "std::runtime_error");
    EXPECT_TRUE(idx.throwSites[2].rethrow);
    EXPECT_EQ(idx.throwSites[3].type, "err");

    ASSERT_EQ(idx.catchSites.size(), 1u);
    EXPECT_EQ(idx.catchSites[0].type, "...");
}

TEST(LintIndex, CatchSiteTypeDropsQualifiers)
{
    const FileIndex idx = buildFileIndex(
        "src/valid/x.cc",
        "void f() {\n"
        "    try { g(); } catch (const SnapshotError &e) { (void)e; }\n"
        "}\n");
    ASSERT_EQ(idx.catchSites.size(), 1u);
    EXPECT_EQ(idx.catchSites[0].type, "SnapshotError");
}

TEST(LintIndex, AtomicsRecordEveryMemoryOrderSpelling)
{
    const FileIndex idx = buildFileIndex(
        "src/obs/x.cc",
        "void f(std::atomic<int> &a) {\n"
        "    a.fetch_add(1, std::memory_order_relaxed);\n"
        "    a.load(std::memory_order::acquire);\n"
        "    a.store(2, std::memory_order_seq_cst);\n"
        "}\n");
    ASSERT_EQ(idx.atomics.size(), 3u);
    EXPECT_EQ(idx.atomics[0].order, "relaxed");
    EXPECT_EQ(idx.atomics[0].line, 2);
    EXPECT_EQ(idx.atomics[1].order, "acquire");
    EXPECT_EQ(idx.atomics[2].order, "seq_cst");
}

TEST(LintIndex, TokensInCommentsAndStringsAreNotIndexed)
{
    const FileIndex idx = buildFileIndex(
        "src/core/x.cc",
        "// throw SnapshotError in a comment\n"
        "const char *s = \"memory_order_relaxed\";\n"
        "/* parallelFor(0, n, 1, [&](std::size_t i) {}) */\n");
    EXPECT_TRUE(idx.throwSites.empty());
    EXPECT_TRUE(idx.atomics.empty());
    EXPECT_TRUE(idx.regions.empty());
}

TEST(LintIndex, ParallelRegionCapturesParamsAndBody)
{
    const FileIndex idx = buildFileIndex(
        "src/core/x.cc",
        "void f(std::vector<double> &out, std::size_t n) {\n"
        "    parallelFor(0, n, 1, [&out, total](std::size_t i) {\n"
        "        out[i] = 2.0 * static_cast<double>(i);\n"
        "    });\n"
        "}\n");
    ASSERT_EQ(idx.regions.size(), 1u);
    const auto &region = idx.regions[0];
    EXPECT_EQ(region.entry, "parallelFor");
    EXPECT_EQ(region.line, 2);
    EXPECT_EQ(region.captures, "&out, total");
    ASSERT_EQ(region.params.size(), 1u);
    EXPECT_EQ(region.params[0], "i");
    EXPECT_NE(region.body.find("out[i]"), std::string::npos);
    // bodyOffset maps back into the file: the body starts on line 2.
    EXPECT_EQ(idx.lineAt(region.bodyOffset), 2);
}

TEST(LintIndex, SubscriptBeforeLambdaIsNotARegion)
{
    // The '[' of args[0] must not be mistaken for a lambda introducer.
    const FileIndex idx = buildFileIndex(
        "src/core/x.cc",
        "void f(std::vector<int> &args, std::size_t n) {\n"
        "    parallelMap(args[0], [&](std::size_t i) { use(i); });\n"
        "}\n");
    ASSERT_EQ(idx.regions.size(), 1u);
    EXPECT_EQ(idx.regions[0].entry, "parallelMap");
    EXPECT_EQ(idx.regions[0].captures, "&");
}

TEST(LintIndex, DeclsRecordNamespacesTypesAndFunctions)
{
    const FileIndex idx = buildFileIndex(
        "src/core/x.cc",
        "namespace eval {\n"
        "struct Widget { int v; };\n"
        "class Gadget;\n"
        "enum class Mode { A, B };\n"
        "int\n"
        "frob(int x)\n"
        "{\n"
        "    return x;\n"
        "}\n"
        "} // namespace eval\n");
    auto has = [&](DeclSite::Kind kind, const std::string &name) {
        return std::any_of(idx.decls.begin(), idx.decls.end(),
                           [&](const DeclSite &d) {
                               return d.kind == kind && d.name == name;
                           });
    };
    EXPECT_TRUE(has(DeclSite::Kind::Namespace, "eval"));
    EXPECT_TRUE(has(DeclSite::Kind::Struct, "Widget"));
    EXPECT_TRUE(has(DeclSite::Kind::Class, "Gadget"));
    EXPECT_TRUE(has(DeclSite::Kind::Enum, "Mode"));
    EXPECT_TRUE(has(DeclSite::Kind::Function, "frob"));
}

} // namespace
