/**
 * @file
 * Tests for eval-lint: rule detection on the fixture corpus, inline
 * suppression handling (including rejection of unjustified or unknown
 * suppressions), exit codes of both the library and the installed
 * binary, and the merge gate itself — the real tree must lint clean.
 *
 * The fixtures are two miniature repo trees under
 * tests/lint/fixtures/{violating,clean}; rule path-scoping works on
 * paths relative to each tree's root, so fixtures exercise src/-only
 * rules without touching real sources.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "lint.hh"

namespace {

using eval::lint::Diagnostic;
using eval::lint::lintSource;
using eval::lint::Options;
using eval::lint::runLint;

const std::string kFixtures = EVAL_LINT_FIXTURES;
const std::string kRepoRoot = EVAL_LINT_REPO_ROOT;

int
countRule(const std::vector<Diagnostic> &diags, const std::string &rule)
{
    return static_cast<int>(
        std::count_if(diags.begin(), diags.end(),
                      [&](const Diagnostic &d) { return d.rule == rule; }));
}

bool
hasFinding(const std::vector<Diagnostic> &diags, const std::string &file,
           int line, const std::string &rule)
{
    return std::any_of(diags.begin(), diags.end(), [&](const Diagnostic &d) {
        return d.file == file && d.line == line && d.rule == rule;
    });
}

std::vector<Diagnostic>
lintFixtureTree(const std::string &which)
{
    Options opts;
    opts.root = kFixtures + "/" + which;
    std::string error;
    auto diags = runLint(opts, &error);
    EXPECT_EQ(error, "");
    return diags;
}

// ---------------------------------------------------------------------------
// Violating corpus: every rule fires with the right id at the right
// place, and the finding count is stable.
// ---------------------------------------------------------------------------

TEST(LintCorpus, ViolatingTreeTripsEveryRule)
{
    const auto diags = lintFixtureTree("violating");
    EXPECT_EQ(eval::lint::exitCodeFor(diags), 1);

    EXPECT_EQ(countRule(diags, "det-entropy"), 7); // 4 + 3 under bad supps
    EXPECT_EQ(countRule(diags, "det-wallclock"), 1);
    EXPECT_EQ(countRule(diags, "det-unordered"), 1);
    EXPECT_EQ(countRule(diags, "det-shared-rng"), 2);
    EXPECT_EQ(countRule(diags, "det-par-capture"), 2); // push_back + sum +=
    EXPECT_EQ(countRule(diags, "num-float-eq"), 3);
    EXPECT_EQ(countRule(diags, "num-float-narrow"), 2);
    EXPECT_EQ(countRule(diags, "hyg-pragma-once"), 1);
    EXPECT_EQ(countRule(diags, "hyg-using-namespace"), 1);
    EXPECT_EQ(countRule(diags, "hyg-iostream"), 3);
    EXPECT_EQ(countRule(diags, "obs-span-leak"), 5);
    EXPECT_EQ(countRule(diags, "obs-progress-units"), 2);
    EXPECT_EQ(countRule(diags, "perf-hot-alloc"), 7); // 6 kernel + 1 marker
    EXPECT_EQ(countRule(diags, "lay-edge"), 1);
    EXPECT_EQ(countRule(diags, "lay-cycle"), 1);
    EXPECT_EQ(countRule(diags, "lay-module"), 1);
    // One of each stale flavor: unexercised edge, fileless module,
    // unmatched exception entry.
    EXPECT_EQ(countRule(diags, "lay-unused-edge"), 3);
    EXPECT_EQ(countRule(diags, "exc-contract"), 1);
    EXPECT_EQ(countRule(diags, "atomics-relaxed"), 1);
    // 3 bad allow() forms + the bare hot-path marker
    EXPECT_EQ(countRule(diags, "lint-bad-suppression"), 4);
    EXPECT_EQ(countRule(diags, "lint-unused-suppression"), 1);

    EXPECT_TRUE(hasFinding(diags, "src/model/bad_entropy.cc", 15,
                           "det-entropy"));
    EXPECT_TRUE(hasFinding(diags, "src/model/bad_header.hh", 1,
                           "hyg-pragma-once"));
    EXPECT_TRUE(hasFinding(diags, "src/model/bad_header.hh", 8,
                           "hyg-using-namespace"));
    EXPECT_TRUE(hasFinding(diags, "src/model/bad_unordered.cc", 11,
                           "det-unordered"));
    EXPECT_TRUE(hasFinding(diags, "src/model/bad_span_leak.cc", 15,
                           "obs-span-leak"));
    EXPECT_TRUE(hasFinding(diags, "bench/bad_no_progress.cpp", 32,
                           "obs-progress-units"));
    EXPECT_TRUE(hasFinding(diags, "bench/bad_no_progress.cpp", 36,
                           "obs-progress-units"));
    EXPECT_TRUE(hasFinding(diags, "src/kernels/bad_hot_alloc.cc", 20,
                           "perf-hot-alloc"));
    EXPECT_TRUE(hasFinding(diags, "src/kernels/bad_hot_alloc.cc", 23,
                           "perf-hot-alloc"));
    EXPECT_TRUE(hasFinding(diags, "src/kernels/bad_hot_alloc.cc", 28,
                           "perf-hot-alloc"));
    EXPECT_TRUE(hasFinding(diags, "src/model/bad_hot_marker.cc", 11,
                           "perf-hot-alloc"));
    // The bare hot-path marker still marks the file (so the alloc above
    // fires) but is itself flagged for its missing justification.
    EXPECT_TRUE(hasFinding(diags, "src/model/bad_hot_marker.cc", 3,
                           "lint-bad-suppression"));

    // Project passes: layering, cycles, contracts, atomics, data-flow.
    EXPECT_TRUE(hasFinding(diags, "src/model/bad_layer.cc", 3, "lay-edge"));
    EXPECT_TRUE(hasFinding(diags, "src/model/cycle_b.hh", 4, "lay-cycle"));
    EXPECT_TRUE(hasFinding(diags, "src/undeclared/widget.cc", 1,
                           "lay-module"));
    EXPECT_TRUE(hasFinding(diags, "layers.toml", 15, "lay-unused-edge"));
    EXPECT_TRUE(hasFinding(diags, "layers.toml", 17, "lay-unused-edge"));
    EXPECT_TRUE(hasFinding(diags, "layers.toml", 21, "lay-unused-edge"));
    EXPECT_TRUE(hasFinding(diags, "src/model/bad_throw.cc", 11,
                           "exc-contract"));
    EXPECT_TRUE(hasFinding(diags, "src/model/bad_atomics.cc", 13,
                           "atomics-relaxed"));
    EXPECT_TRUE(hasFinding(diags, "src/model/bad_par_capture.cc", 22,
                           "det-par-capture"));
    EXPECT_TRUE(hasFinding(diags, "bench/bad_no_progress.cpp", 33,
                           "det-par-capture"));
}

TEST(LintCorpus, CleanTreeIsClean)
{
    const auto diags = lintFixtureTree("clean");
    for (const auto &d : diags)
        ADD_FAILURE() << eval::lint::formatDiagnostic(d);
    EXPECT_EQ(eval::lint::exitCodeFor(diags), 0);
}

TEST(LintCorpus, IncludeLinesAreNotUnorderedFindings)
{
    const auto diags = lintFixtureTree("violating");
    // bad_unordered.cc has #include <unordered_map> on line 4; only
    // the declaration on line 11 may be reported.
    EXPECT_FALSE(hasFinding(diags, "src/model/bad_unordered.cc", 4,
                            "det-unordered"));
}

// ---------------------------------------------------------------------------
// Suppression semantics (library-level, on in-memory sources)
// ---------------------------------------------------------------------------

TEST(LintSuppression, JustifiedSuppressionSilencesAndIsUsed)
{
    const auto diags = lintSource(
        "src/x.cc",
        "void f() {\n"
        "    // eval-lint: allow(det-entropy) fixture: justified\n"
        "    (void)rand();\n"
        "}\n");
    EXPECT_TRUE(diags.empty())
        << (diags.empty() ? ""
                          : eval::lint::formatDiagnostic(diags.front()));
}

TEST(LintSuppression, TrailingCommentCoversItsOwnLine)
{
    const auto diags = lintSource(
        "src/x.cc",
        "void f() {\n"
        "    (void)rand(); // eval-lint: allow(det-entropy) fixture ok\n"
        "}\n");
    EXPECT_TRUE(diags.empty());
}

TEST(LintSuppression, MultiLineJustificationStillCoversNextCodeLine)
{
    const auto diags = lintSource(
        "src/x.cc",
        "void f() {\n"
        "    // eval-lint: allow(det-entropy) a justification that\n"
        "    // continues on a second comment line before the code\n"
        "    (void)rand();\n"
        "}\n");
    EXPECT_TRUE(diags.empty());
}

TEST(LintSuppression, MissingJustificationIsRejected)
{
    const auto diags = lintSource(
        "src/x.cc",
        "void f() {\n"
        "    (void)rand(); // eval-lint: allow(det-entropy)\n"
        "}\n");
    EXPECT_EQ(countRule(diags, "lint-bad-suppression"), 1);
    // The suppression is void, so the original finding survives too.
    EXPECT_EQ(countRule(diags, "det-entropy"), 1);
}

TEST(LintSuppression, UnknownRuleIsRejected)
{
    const auto diags = lintSource(
        "src/x.cc",
        "// eval-lint: allow(no-such-rule) why not\n"
        "int x;\n");
    EXPECT_EQ(countRule(diags, "lint-bad-suppression"), 1);
}

TEST(LintSuppression, AuditRulesAreNotSuppressible)
{
    const auto diags = lintSource(
        "src/x.cc",
        "// eval-lint: allow(lint-unused-suppression) nice try\n"
        "int x;\n");
    EXPECT_EQ(countRule(diags, "lint-bad-suppression"), 1);
}

TEST(LintSuppression, UnusedSuppressionIsReported)
{
    const auto diags = lintSource(
        "src/x.cc",
        "// eval-lint: allow(det-entropy) nothing here draws entropy\n"
        "int x;\n");
    EXPECT_EQ(countRule(diags, "lint-unused-suppression"), 1);
}

TEST(LintSuppression, SuppressionOnlyCoversItsRule)
{
    const auto diags = lintSource(
        "src/x.cc",
        "void f() {\n"
        "    // eval-lint: allow(num-float-eq) wrong rule for this line\n"
        "    (void)rand();\n"
        "}\n");
    EXPECT_EQ(countRule(diags, "det-entropy"), 1);
    EXPECT_EQ(countRule(diags, "lint-unused-suppression"), 1);
}

TEST(LintSuppression, CommaListCoversMultipleRules)
{
    const auto diags = lintSource(
        "src/x.cc",
        "void f() {\n"
        "    // eval-lint: allow(det-entropy, num-float-eq) fixture: both\n"
        "    if (rand() == 1.0) {}\n"
        "}\n");
    EXPECT_TRUE(diags.empty());
}

TEST(LintSuppression, BlockCommentsAreProseNotSuppressions)
{
    // Docs may quote the syntax inside /* */ without activating it —
    // and without being flagged as malformed.
    const auto diags = lintSource(
        "src/x.cc",
        "/* The syntax is: eval-lint: allow(rule) justification */\n"
        "int x;\n");
    EXPECT_TRUE(diags.empty());
}

TEST(LintSuppression, BlockCommentSuppressionDoesNotSilence)
{
    // The allow() form is honored only in line comments; quoting it in
    // a block comment right above the finding must not suppress it.
    const auto diags = lintSource(
        "src/x.cc",
        "void f() {\n"
        "    /* eval-lint: allow(det-entropy) quoted, not active */\n"
        "    (void)rand();\n"
        "}\n");
    EXPECT_EQ(countRule(diags, "det-entropy"), 1);
    EXPECT_EQ(countRule(diags, "lint-bad-suppression"), 0);
    EXPECT_EQ(countRule(diags, "lint-unused-suppression"), 0);
}

TEST(LintSuppression, RawStringSuppressionIsInert)
{
    // A suppression spelled inside a raw string literal is data, not a
    // directive: the finding on the next line survives, and the quoted
    // text is neither "bad" nor "unused".
    const auto diags = lintSource(
        "src/x.cc",
        "const char *doc =\n"
        "    R\"(// eval-lint: allow(det-entropy) quoted example)\";\n"
        "int noise() { return rand(); }\n");
    EXPECT_EQ(countRule(diags, "det-entropy"), 1);
    EXPECT_EQ(countRule(diags, "lint-bad-suppression"), 0);
    EXPECT_EQ(countRule(diags, "lint-unused-suppression"), 0);
}

TEST(LintSuppression, RawStringFileMarkerIsInert)
{
    // A counters-only marker inside a raw string must not mark the
    // file: the relaxed atomic still needs a real allowance.
    const auto diags = lintSource(
        "src/x.cc",
        "#include <atomic>\n"
        "const char *doc = R\"(eval-lint: counters-only quoted)\";\n"
        "std::atomic<int> c{0};\n"
        "void t() { c.fetch_add(1, std::memory_order_relaxed); }\n");
    EXPECT_EQ(countRule(diags, "atomics-relaxed"), 1);
}

TEST(LintSuppression, BlockCommentHotPathMarkerIsInert)
{
    // hot-path in a block comment must not opt the file into the
    // hot-kernel allocation rule.
    const auto diags = lintSource(
        "src/model/x.cc",
        "/* eval-lint: hot-path quoted in prose */\n"
        "double *f(unsigned n) { return new double[n]; }\n");
    EXPECT_EQ(countRule(diags, "perf-hot-alloc"), 0);
}

// ---------------------------------------------------------------------------
// Rule edges
// ---------------------------------------------------------------------------

TEST(LintRules, TokensInsideStringsAndCommentsDoNotFire)
{
    const auto diags = lintSource(
        "src/x.cc",
        "// rand() in a comment\n"
        "const char *s = \"rand() in a string\";\n"
        "/* srand(42) in a block comment */\n");
    EXPECT_TRUE(diags.empty());
}

TEST(LintRules, PathScopingExemptsTheSanctionedLayers)
{
    EXPECT_TRUE(lintSource("src/util/random.cc", "int x = rand();\n")
                    .empty());
    EXPECT_TRUE(lintSource("src/stats/t.cc",
                           "auto t = steady_clock::now();\n")
                    .empty());
    EXPECT_TRUE(lintSource("tests/t.cc",
                           "auto t = steady_clock::now();\n")
                    .empty());
    EXPECT_EQ(countRule(lintSource("src/core/t.cc",
                                   "auto t = steady_clock::now();\n"),
                        "det-wallclock"),
              1);
}

TEST(LintRules, SplitDerivedStreamsPassSharedRng)
{
    const auto diags = lintSource(
        "src/x.cc",
        "void f() {\n"
        "    parallelFor(0, n, 1, [&](std::size_t i) {\n"
        "        auto local = master.split(i);\n"
        "        out[i] = local.uniform();\n"
        "    });\n"
        "}\n");
    EXPECT_EQ(countRule(diags, "det-shared-rng"), 0);
}

TEST(LintRules, SpanLeakFlagsEscapesButNotStackSpans)
{
    // Stack RAII spans are the sanctioned pattern.
    EXPECT_TRUE(lintSource("src/core/t.cc",
                           "void f() {\n"
                           "    ScopedSpan span(\"core.f\");\n"
                           "    span.arg(\"n\", 1);\n"
                           "}\n")
                    .empty());
    // Heap spans, span references, and the raw handle API leak.
    EXPECT_EQ(countRule(lintSource("src/core/t.cc",
                                   "auto *s = new ScopedSpan(\"x\");\n"),
                        "obs-span-leak"),
              1);
    EXPECT_EQ(countRule(lintSource("src/core/t.cc",
                                   "void g(ScopedSpan &span);\n"),
                        "obs-span-leak"),
              1);
    EXPECT_EQ(countRule(lintSource("bench/b.cpp",
                                   "auto h = beginSpanImpl(\"x\");\n"),
                        "obs-span-leak"),
              1);
    // The tracer's own implementation owns the raw API.
    EXPECT_TRUE(lintSource("src/trace/span_tracer.cc",
                           "auto h = beginSpanImpl(\"x\");\n")
                    .empty());
}

TEST(LintRules, FloatEqCatchesBothSidesAndExponents)
{
    const std::string src = "void f(double x) {\n"
                            "    if (x == 0.5) {}\n"
                            "    if (1e-6 != x) {}\n"
                            "    if (x <= 0.5) {}\n" // NOT equality
                            "    if (x == y) {}\n"   // untyped: not flagged
                            "}\n";
    const auto diags = lintSource("src/x.cc", src);
    EXPECT_EQ(countRule(diags, "num-float-eq"), 2);
}

TEST(LintRules, HeaderRulesOnlyApplyToHeaders)
{
    EXPECT_EQ(countRule(lintSource("src/x.cc", "int x;\n"),
                        "hyg-pragma-once"),
              0);
    EXPECT_EQ(countRule(lintSource("src/x.hh", "int x;\n"),
                        "hyg-pragma-once"),
              1);
    EXPECT_EQ(countRule(lintSource("src/x.hh", "#pragma once\nint x;\n"),
                        "hyg-pragma-once"),
              0);
}

TEST(LintRules, CatalogKnowsEveryReportedRule)
{
    for (const char *rule :
         {"det-entropy", "det-wallclock", "det-unordered", "det-shared-rng",
          "det-par-capture", "num-float-eq", "num-float-narrow",
          "hyg-pragma-once", "hyg-using-namespace", "hyg-iostream",
          "obs-span-leak", "obs-progress-units", "perf-hot-alloc",
          "lay-edge", "lay-cycle", "lay-module", "lay-unused-edge",
          "lay-manifest", "exc-contract", "atomics-relaxed",
          "lint-bad-suppression", "lint-unused-suppression"})
        EXPECT_TRUE(eval::lint::isKnownRule(rule)) << rule;
    EXPECT_FALSE(eval::lint::isKnownRule("no-such-rule"));
}

// ---------------------------------------------------------------------------
// Binary-level exit codes (the contract scripts/check.sh relies on)
// ---------------------------------------------------------------------------

int
runBinary(const std::string &args)
{
    const std::string cmd = std::string(EVAL_LINT_BIN) + " " + args +
                            " > /dev/null 2>&1";
    const int status = std::system(cmd.c_str());
    return WEXITSTATUS(status);
}

TEST(LintBinary, ExitCodes)
{
    EXPECT_EQ(runBinary("--root " + kFixtures + "/violating"), 1);
    EXPECT_EQ(runBinary("--root " + kFixtures + "/clean"), 0);
    EXPECT_EQ(runBinary("--root " + kFixtures + "/does-not-exist"), 2);
    EXPECT_EQ(runBinary("--no-such-flag"), 2);
    EXPECT_EQ(runBinary("--list-rules"), 0);
}

// ---------------------------------------------------------------------------
// Root normalization: `--root tree`, `--root tree/`, and a symlink to
// the tree must scope rules identically and report identical findings.
// ---------------------------------------------------------------------------

std::vector<Diagnostic>
lintRoot(const std::string &root)
{
    Options opts;
    opts.root = root;
    std::string error;
    auto diags = runLint(opts, &error);
    EXPECT_EQ(error, "") << "root: " << root;
    return diags;
}

TEST(LintRoot, TrailingSlashDoesNotChangeFindings)
{
    const auto plain = lintRoot(kFixtures + "/violating");
    const auto slashed = lintRoot(kFixtures + "/violating/");
    ASSERT_FALSE(plain.empty());
    EXPECT_EQ(plain, slashed);
}

TEST(LintRoot, SymlinkedRootDoesNotChangeFindings)
{
    namespace fs = std::filesystem;
    const fs::path link =
        fs::temp_directory_path() / "eval_lint_root_symlink_test";
    std::error_code ec;
    fs::remove(link, ec);
    fs::create_directory_symlink(kFixtures + "/violating", link, ec);
    if (ec)
        GTEST_SKIP() << "cannot create symlink: " << ec.message();

    const auto plain = lintRoot(kFixtures + "/violating");
    const auto viaLink = lintRoot(link.string());
    fs::remove(link, ec);

    ASSERT_FALSE(plain.empty());
    // Identical findings with identical (relative) paths: rule scoping
    // is anchored at the canonicalized root, not its spelling.
    EXPECT_EQ(plain, viaLink);
}

// ---------------------------------------------------------------------------
// The merge gate: the real tree lints clean.
// ---------------------------------------------------------------------------

TEST(LintTree, RealTreeIsClean)
{
    Options opts;
    opts.root = kRepoRoot;
    opts.excludes = {"tests/lint/fixtures"};
    std::string error;
    const auto diags = runLint(opts, &error);
    EXPECT_EQ(error, "");
    for (const auto &d : diags)
        ADD_FAILURE() << eval::lint::formatDiagnostic(d);
}

} // namespace
