/** Tests for MetricsSampler (src/obs/metrics_sampler.hh): snapshot
 *  sequencing and history bounds, EWMA rate/ETA derivation, the
 *  rename-into-place publication contract (no torn reads), the
 *  ExitFlush crash snapshot, and both serialization formats. */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/metrics_sampler.hh"
#include "obs/progress.hh"
#include "stats/stat_registry.hh"
#include "trace/exit_flush.hh"
#include "valid/json_value.hh"

namespace eval {
namespace {

namespace fs = std::filesystem;

std::string
tempPath(const char *name)
{
    return (fs::path(::testing::TempDir()) / name).string();
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

class SamplerTest : public ::testing::Test
{
  protected:
    void SetUp() override { ProgressRegistry::global().reset(); }
};

TEST_F(SamplerTest, SeqIsMonotonicAndHistoryIsBounded)
{
    MetricsSampler sampler;
    SamplerConfig cfg;
    cfg.tool = "sampler_test";
    cfg.historyCap = 3;
    sampler.configure(cfg);

    for (int i = 1; i <= 5; ++i) {
        const StatusSnapshot snap = sampler.sampleNow();
        EXPECT_EQ(snap.seq, static_cast<std::uint64_t>(i));
        EXPECT_FALSE(snap.final);
        EXPECT_EQ(snap.tool, "sampler_test");
        EXPECT_GT(snap.pid, 0);
    }
    const auto hist = sampler.history();
    ASSERT_EQ(hist.size(), 3u); // bounded by historyCap
    EXPECT_EQ(hist.front().seq, 3u);
    EXPECT_EQ(hist.back().seq, 5u);
}

TEST_F(SamplerTest, ResourcesArePopulatedOnLinux)
{
    const ResourceSample res = sampleProcessResources();
#ifdef __linux__
    EXPECT_GT(res.rssKb, 0);
    EXPECT_GT(res.peakRssKb, 0);
    EXPECT_GE(res.cpuUserS + res.cpuSysS, 0.0);
    EXPECT_GE(res.threads, 1);
#else
    (void)res;
#endif
}

TEST_F(SamplerTest, RateAndEtaDeriveFromSuccessiveSnapshots)
{
    MetricsSampler sampler;
    sampler.configure({});
    ProgressTracker &t = ProgressRegistry::global().tracker("work");
    t.addTotal(1000);
    t.tick(100);

    const StatusSnapshot first = sampler.sampleNow();
    ASSERT_EQ(first.progress.size(), 1u);
    // Baselined against the tracker's own start stamp, so the very
    // first snapshot already carries a rate.
    EXPECT_GT(first.progress[0].ratePerS, 0.0);

    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    t.tick(100);
    const StatusSnapshot second = sampler.sampleNow();
    ASSERT_EQ(second.progress.size(), 1u);
    const ProgressSample &p = second.progress[0];
    EXPECT_EQ(p.name, "work");
    EXPECT_EQ(p.done, 200u);
    EXPECT_GT(p.ratePerS, 0.0);
    EXPECT_GT(p.etaS, 0.0); // 800 units left at a positive rate
    EXPECT_DOUBLE_EQ(p.fraction, 0.2);

    t.tick(800);
    const StatusSnapshot done = sampler.sampleNow();
    EXPECT_DOUBLE_EQ(done.progress[0].etaS, 0.0); // complete
}

TEST_F(SamplerTest, StatusJsonParsesWithStableTypes)
{
    MetricsSampler sampler;
    SamplerConfig cfg;
    cfg.tool = "json_test";
    sampler.configure(cfg);
    ProgressTracker &t = ProgressRegistry::global().tracker("chips");
    t.addTotal(10);
    t.tick(4);
    StatRegistry::global().counter("sampler.test.counter").inc(7);

    const std::string json =
        MetricsSampler::statusJson(sampler.sampleNow());
    const JsonValue doc = JsonValue::parse(json);
    EXPECT_EQ(doc.at("schema_version").asInt(), 1);
    EXPECT_EQ(doc.at("tool").asString(), "json_test");
    EXPECT_FALSE(doc.at("final").asBool());
    // Every numeric leaf that can hold a fraction must serialize as a
    // JSON double (never bare int) so readers see one stable shape.
    EXPECT_EQ(doc.at("uptime_s").type(), JsonValue::Type::Double);
    const JsonValue &row = doc.at("progress").asArray().at(0);
    EXPECT_EQ(row.at("name").asString(), "chips");
    EXPECT_EQ(row.at("fraction").type(), JsonValue::Type::Double);
    EXPECT_EQ(row.at("eta_s").type(), JsonValue::Type::Double);
    EXPECT_EQ(row.at("rate_per_s").type(), JsonValue::Type::Double);
    EXPECT_TRUE(doc.at("stats").has("sampler.test.counter"));
    EXPECT_DOUBLE_EQ(
        doc.at("stats").at("sampler.test.counter").asDouble(), 7.0);
}

TEST_F(SamplerTest, PrometheusTextExposesAllSeries)
{
    MetricsSampler sampler;
    SamplerConfig cfg;
    cfg.tool = "prom_test";
    sampler.configure(cfg);
    ProgressRegistry::global().tracker("chips").addTotal(5);

    const std::string text =
        MetricsSampler::prometheusText(sampler.sampleNow());
    EXPECT_NE(text.find("eval_up{run=\"prom_test\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("eval_uptime_seconds"), std::string::npos);
    EXPECT_NE(text.find("eval_rss_kb"), std::string::npos);
    EXPECT_NE(text.find(
                  "eval_progress_total{run=\"prom_test\",tracker="
                  "\"chips\"} 5"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE eval_progress_done gauge"),
              std::string::npos);
}

TEST_F(SamplerTest, PublishedFileIsNeverTorn)
{
    // The publication contract: write <path>.tmp, rename into place.
    // A reader polling the path mid-publication must always see a
    // complete, parseable document — never a partial write.
    const std::string path = tempPath("torn_read.status.json");
    std::remove(path.c_str());

    MetricsSampler sampler;
    SamplerConfig cfg;
    cfg.tool = "torn_test";
    cfg.statusPath = path;
    cfg.intervalMs = 1; // publish as fast as the loop allows
    sampler.configure(cfg);
    ProgressTracker &t = ProgressRegistry::global().tracker("chips");
    t.addTotal(100000);

    sampler.start();
    int parsed = 0;
    for (int i = 0; i < 300; ++i) {
        t.tick(16);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        const std::string text = slurp(path);
        if (text.empty())
            continue; // not yet published (or reader raced the rename)
        ASSERT_NO_THROW({
            const JsonValue doc = JsonValue::parse(text);
            ASSERT_TRUE(doc.has("schema_version"));
            ASSERT_TRUE(doc.has("progress"));
        }) << "torn read after " << parsed << " good reads";
        ++parsed;
    }
    sampler.stop();
    EXPECT_GT(parsed, 0);
    EXPECT_GE(sampler.published(), 2u);

    // Final snapshot on the normal stop path.
    const JsonValue last = JsonValue::parse(slurp(path));
    EXPECT_TRUE(last.at("final").asBool());
    std::remove(path.c_str());
}

TEST_F(SamplerTest, ExitFlushPublishesCrashSnapshot)
{
    // A run that dies without stop(): the ExitFlush hook registered
    // by start() must still publish one final snapshot.
    const std::string path = tempPath("crash.status.json");
    std::remove(path.c_str());

    MetricsSampler sampler;
    SamplerConfig cfg;
    cfg.tool = "crash_test";
    cfg.statusPath = path;
    cfg.intervalMs = 60000; // the loop alone would never re-publish
    sampler.configure(cfg);
    ProgressRegistry::global().tracker("chips").addTotal(10);

    sampler.start();
    ASSERT_TRUE(sampler.running());

    // Simulated abort: the process-teardown hook runs while the
    // sampler thread is still alive.
    ExitFlush::global().runNow();

    const JsonValue doc = JsonValue::parse(slurp(path));
    EXPECT_TRUE(doc.at("final").asBool());
    EXPECT_EQ(doc.at("tool").asString(), "crash_test");

    sampler.stop(); // cleanup; must not double-publish a final
    std::remove(path.c_str());
}

TEST_F(SamplerTest, StartStopAreIdempotent)
{
    MetricsSampler sampler;
    SamplerConfig cfg;
    cfg.tool = "idem_test";
    cfg.intervalMs = 50;
    sampler.configure(cfg);

    sampler.start();
    sampler.start(); // no-op
    EXPECT_TRUE(sampler.running());
    sampler.stop();
    sampler.stop(); // no-op
    EXPECT_FALSE(sampler.running());
    EXPECT_GE(sampler.history().size(), 1u);
}

} // namespace
} // namespace eval
