/** Tests for ProgressTracker/ProgressRegistry (src/obs/progress.hh):
 *  counting correctness, fraction clamping, the first-activity stamp,
 *  registry find-or-create idempotence, and — under --tsan — the
 *  concurrency of many ticking threads against a sampling reader. */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/progress.hh"

namespace eval {
namespace {

class ProgressTest : public ::testing::Test
{
  protected:
    void SetUp() override { ProgressRegistry::global().reset(); }
};

TEST_F(ProgressTest, CountsTotalsAndTicks)
{
    ProgressTracker t;
    EXPECT_EQ(t.total(), 0u);
    EXPECT_EQ(t.done(), 0u);
    EXPECT_DOUBLE_EQ(t.fraction(), 0.0);
    EXPECT_EQ(t.startNs(), 0u);
    EXPECT_DOUBLE_EQ(t.elapsedS(), 0.0);

    t.addTotal(40);
    t.addTotal(40); // cumulative across phases
    EXPECT_EQ(t.total(), 80u);
    t.tick();
    t.tick(19);
    EXPECT_EQ(t.done(), 20u);
    EXPECT_DOUBLE_EQ(t.fraction(), 0.25);
    EXPECT_GT(t.startNs(), 0u);
    EXPECT_GE(t.elapsedS(), 0.0);
}

TEST_F(ProgressTest, FractionClampsAndHandlesZeroTotal)
{
    ProgressTracker t;
    t.tick(5); // indeterminate: units counted, no total declared
    EXPECT_EQ(t.done(), 5u);
    EXPECT_DOUBLE_EQ(t.fraction(), 0.0);

    t.addTotal(4); // done already exceeds the declared total
    EXPECT_DOUBLE_EQ(t.fraction(), 1.0);
}

TEST_F(ProgressTest, ResetZeroesButKeepsIdentity)
{
    ProgressTracker &t = ProgressRegistry::global().tracker("r");
    t.addTotal(10);
    t.tick(3);
    t.reset();
    EXPECT_EQ(t.total(), 0u);
    EXPECT_EQ(t.done(), 0u);
    EXPECT_EQ(t.startNs(), 0u);
    EXPECT_EQ(&ProgressRegistry::global().tracker("r"), &t);
}

TEST_F(ProgressTest, RegistryFindOrCreateIsIdempotent)
{
    ProgressRegistry &reg = ProgressRegistry::global();
    ProgressTracker &a = reg.tracker("chips");
    ProgressTracker &b = reg.tracker("chips");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(reg.find("chips"), &a);
    EXPECT_EQ(reg.find("no-such"), nullptr);

    reg.tracker("alpha");
    const auto all = reg.all();
    ASSERT_GE(all.size(), 2u);
    for (std::size_t i = 1; i < all.size(); ++i)
        EXPECT_LT(all[i - 1].first, all[i].first); // name order
}

TEST_F(ProgressTest, DeclareTotalDedupesByNameAndRunId)
{
    // Regression: a resumed shard worker re-registering its chip range
    // used to addTotal() a second time, so the status JSON reported
    // twice the population and eval_top's ETA went negative.
    ProgressRegistry &reg = ProgressRegistry::global();
    ProgressTracker &t = reg.declareTotal("chips", "run-a", 100);
    EXPECT_EQ(t.total(), 100u);

    // Same (name, runId): a no-op, not an accumulation.
    EXPECT_EQ(&reg.declareTotal("chips", "run-a", 100), &t);
    EXPECT_EQ(t.total(), 100u);
    reg.declareTotal("chips", "run-a", 100);
    EXPECT_EQ(t.total(), 100u);
}

TEST_F(ProgressTest, DeclareTotalRevisionAdjustsByDelta)
{
    ProgressRegistry &reg = ProgressRegistry::global();
    ProgressTracker &t = reg.declareTotal("chips", "run-a", 100);
    // Revising the same run's declaration applies the signed delta.
    reg.declareTotal("chips", "run-a", 60);
    EXPECT_EQ(t.total(), 60u);
    reg.declareTotal("chips", "run-a", 160);
    EXPECT_EQ(t.total(), 160u);
}

TEST_F(ProgressTest, DeclareTotalAccumulatesAcrossRunIds)
{
    // Distinct runs (e.g. two shards of one campaign feeding the same
    // "chips" tracker) legitimately add up.
    ProgressRegistry &reg = ProgressRegistry::global();
    ProgressTracker &t = reg.declareTotal("chips", "shard=0/2", 50);
    EXPECT_EQ(&reg.declareTotal("chips", "shard=1/2", 50), &t);
    EXPECT_EQ(t.total(), 100u);
    // And re-declaring either shard still cannot double-count.
    reg.declareTotal("chips", "shard=0/2", 50);
    EXPECT_EQ(t.total(), 100u);
}

TEST_F(ProgressTest, HasDeclaredTracksRunIds)
{
    ProgressRegistry &reg = ProgressRegistry::global();
    EXPECT_FALSE(reg.hasDeclared("chips", "run-a"));
    reg.declareTotal("chips", "run-a", 10);
    EXPECT_TRUE(reg.hasDeclared("chips", "run-a"));
    EXPECT_FALSE(reg.hasDeclared("chips", "run-b"));
    EXPECT_FALSE(reg.hasDeclared("other", "run-a"));

    // reset() forgets declarations along with the counters, so the
    // next declaration repopulates from zero instead of deltaing
    // against a zeroed tracker.
    reg.reset();
    EXPECT_FALSE(reg.hasDeclared("chips", "run-a"));
    ProgressTracker &t = reg.declareTotal("chips", "run-a", 10);
    EXPECT_EQ(t.total(), 10u);
}

TEST_F(ProgressTest, ConcurrentTicksAreExact)
{
    // The TSan tier runs this binary (obs_ prefix): writers ticking
    // while readers poll fraction()/done() must be race-free, and no
    // tick may be lost.
    constexpr int kThreads = 8;
    constexpr int kTicks = 20000;
    ProgressTracker &t = ProgressRegistry::global().tracker("conc");
    t.addTotal(kThreads * kTicks);

    std::atomic<bool> stopReader{false};
    std::thread reader([&] {
        std::uint64_t lastDone = 0;
        while (!stopReader.load(std::memory_order_relaxed)) {
            const std::uint64_t d = t.done();
            EXPECT_GE(d, lastDone); // monotone under concurrency
            lastDone = d;
            (void)t.fraction();
            (void)t.elapsedS();
            (void)ProgressRegistry::global().all();
        }
    });

    std::vector<std::thread> writers;
    for (int w = 0; w < kThreads; ++w) {
        writers.emplace_back([&t] {
            for (int i = 0; i < kTicks; ++i)
                t.tick();
        });
    }
    for (auto &th : writers)
        th.join();
    stopReader.store(true, std::memory_order_relaxed);
    reader.join();

    EXPECT_EQ(t.done(), static_cast<std::uint64_t>(kThreads) * kTicks);
    EXPECT_DOUBLE_EQ(t.fraction(), 1.0);
}

TEST_F(ProgressTest, ConcurrentRegistryLookupsShareOneTracker)
{
    constexpr int kThreads = 8;
    std::vector<std::thread> threads;
    std::vector<ProgressTracker *> seen(kThreads, nullptr);
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([i, &seen] {
            ProgressTracker &t =
                ProgressRegistry::global().tracker("race");
            t.tick();
            seen[static_cast<std::size_t>(i)] = &t;
        });
    }
    for (auto &th : threads)
        th.join();
    for (int i = 1; i < kThreads; ++i)
        EXPECT_EQ(seen[0], seen[static_cast<std::size_t>(i)]);
    EXPECT_EQ(ProgressRegistry::global().tracker("race").done(),
              static_cast<std::uint64_t>(kThreads));
}

} // namespace
} // namespace eval
