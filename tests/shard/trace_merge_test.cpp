/** Tests for the fleet telemetry merge (src/shard/trace_merge):
 *  N-shard Chrome-trace merge onto per-shard pids, the profile merge
 *  property (associative / order-insensitive, mirroring the stats
 *  accumulator discipline), and the warn-and-skip supervisor path. */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "shard/trace_merge.hh"
#include "util/random.hh"
#include "valid/json_value.hh"
#include "valid/snapshot.hh"

namespace eval {
namespace {

namespace fs = std::filesystem;

/** One shard's Chrome trace with @p events complete spans (the pid
 *  is deliberately the worker's real pid — merge must rewrite it). */
std::string
shardTrace(int events, long pid)
{
    std::string out = "{\"traceEvents\": [";
    out += "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": " +
           std::to_string(pid) +
           ", \"tid\": 1, \"args\": {\"name\": \"worker\"}}";
    for (int i = 0; i < events; ++i) {
        out += ", {\"ph\": \"X\", \"name\": \"span" +
               std::to_string(i) + "\", \"ts\": " +
               std::to_string(10 * i) + ", \"dur\": 5, \"pid\": " +
               std::to_string(pid) + ", \"tid\": 1}";
    }
    out += "], \"displayTimeUnit\": \"ms\"}";
    return out;
}

ProfileBucket
bucket(const std::string &path, std::uint64_t count, std::uint64_t incl,
       std::uint64_t self)
{
    ProfileBucket b;
    b.path = path;
    b.name = path.rfind(';') == std::string::npos
                 ? path
                 : path.substr(path.rfind(';') + 1);
    b.count = count;
    b.inclNs = incl;
    b.selfNs = self;
    return b;
}

void
expectSameProfile(const SpanProfile &a, const SpanProfile &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (const auto &[path, bucketA] : a) {
        const auto it = b.find(path);
        ASSERT_NE(it, b.end()) << path;
        EXPECT_EQ(bucketA.count, it->second.count) << path;
        EXPECT_EQ(bucketA.inclNs, it->second.inclNs) << path;
        EXPECT_EQ(bucketA.selfNs, it->second.selfNs) << path;
    }
}

TEST(TraceMergeTest, PerPidSpanCountsEqualPerShardInputs)
{
    const std::vector<int> perShard{3, 5, 2, 7};
    std::vector<std::pair<std::uint32_t, std::string>> shards;
    for (std::size_t i = 0; i < perShard.size(); ++i)
        shards.emplace_back(static_cast<std::uint32_t>(i),
                            shardTrace(perShard[i], 4000 + (long)i));

    const JsonValue doc =
        JsonValue::parse(mergeShardTraces(shards));
    std::map<std::int64_t, int> xPerPid;
    std::map<std::int64_t, std::string> namePerPid;
    std::map<std::int64_t, std::int64_t> sortPerPid;
    for (const JsonValue &ev : doc.at("traceEvents").asArray()) {
        const std::int64_t pid = ev.at("pid").asInt();
        const std::string ph = ev.at("ph").asString();
        if (ph == "X") {
            ++xPerPid[pid];
        } else if (ph == "M" &&
                   ev.at("name").asString() == "process_name") {
            namePerPid[pid] = ev.at("args").at("name").asString();
        } else if (ph == "M" &&
                   ev.at("name").asString() == "process_sort_index") {
            sortPerPid[pid] =
                ev.at("args").at("sort_index").asInt();
        }
    }

    ASSERT_EQ(xPerPid.size(), perShard.size());
    for (std::size_t i = 0; i < perShard.size(); ++i) {
        const std::int64_t pid = static_cast<std::int64_t>(i);
        EXPECT_EQ(xPerPid[pid], perShard[i]) << "shard " << i;
        EXPECT_EQ(namePerPid[pid], "shard " + std::to_string(i));
        EXPECT_EQ(sortPerPid[pid], pid);
    }
}

TEST(TraceMergeTest, MalformedShardTraceThrowsSnapshotError)
{
    EXPECT_THROW(mergeShardTraces({{0, "{torn"}}), SnapshotError);
    EXPECT_THROW(mergeShardTraces({{0, "[1, 2]"}}), SnapshotError);
    EXPECT_THROW(parseProfileJson("{torn"), SnapshotError);
    EXPECT_THROW(parseProfileJson("{\"schema_version\": 99}"),
                 SnapshotError);
}

TEST(TraceMergeTest, ProfileJsonRoundTripsThroughParse)
{
    SpanProfile p;
    p["run"] = bucket("run", 1, 900, 100);
    p["run;solve"] = bucket("run;solve", 42, 800, 800);
    expectSameProfile(parseProfileJson(profileToJson(p)), p);
}

/** Random strictly-increasing split points partitioning [0, n). */
std::vector<std::size_t>
randomSplits(Rng &rng, std::size_t n, std::size_t parts)
{
    std::vector<std::size_t> cuts{0};
    for (std::size_t i = 1; i < parts; ++i)
        cuts.push_back(rng.next() % (n + 1));
    cuts.push_back(n);
    std::sort(cuts.begin(), cuts.end());
    return cuts;
}

TEST(TraceMergeProperty, ProfileMergeIsAssociativeAndOrderInsensitive)
{
    const std::vector<std::string> paths{
        "run", "run;sweep", "run;sweep;solve", "run;io", "flush"};
    Rng rng(2026);
    for (int trial = 0; trial < 50; ++trial) {
        // A stream of single-span closures (count 1 each), exactly
        // what per-thread aggregation folds at runtime.
        std::vector<ProfileBucket> closures(60);
        for (ProfileBucket &b : closures) {
            const std::string &path = paths[rng.next() % paths.size()];
            const std::uint64_t self = rng.next() % 5000;
            b = bucket(path, 1, self + rng.next() % 5000, self);
        }

        SpanProfile serial;
        for (const ProfileBucket &b : closures) {
            SpanProfile one;
            one[b.path] = b;
            mergeProfileInto(serial, one);
        }

        // Contiguous split into 4 shard profiles.
        const auto cuts = randomSplits(rng, closures.size(), 4);
        std::vector<SpanProfile> parts;
        for (std::size_t p = 0; p + 1 < cuts.size(); ++p) {
            SpanProfile shard;
            for (std::size_t i = cuts[p]; i < cuts[p + 1]; ++i) {
                SpanProfile one;
                one[closures[i].path] = closures[i];
                mergeProfileInto(shard, one);
            }
            parts.push_back(std::move(shard));
        }

        // Left fold: ((p0 + p1) + p2) + p3.
        SpanProfile left;
        for (const SpanProfile &p : parts)
            mergeProfileInto(left, p);

        // Right fold over a reversed order — u64 sums cannot tell.
        SpanProfile tail;
        for (std::size_t p = parts.size(); p-- > 1;)
            mergeProfileInto(tail, parts[p]);
        SpanProfile right;
        mergeProfileInto(right, parts[0]);
        mergeProfileInto(right, tail);

        expectSameProfile(left, serial);
        expectSameProfile(right, serial);
    }
}

TEST(TraceMergeTest, SupervisorMergeSkipsCorruptShardsAndSumsCounts)
{
    const std::string outDir =
        ::testing::TempDir() + "trace_merge_telemetry";
    fs::remove_all(outDir);
    fs::create_directories(shardTraceDir(outDir));

    SpanProfile p0;
    p0["run"] = bucket("run", 3, 3000, 1000);
    p0["run;solve"] = bucket("run;solve", 5, 2000, 2000);
    SpanProfile p1;
    p1["run"] = bucket("run", 2, 1000, 500);

    std::ofstream(shardTracePath(outDir, 0)) << shardTrace(2, 111);
    std::ofstream(shardProfilePath(outDir, 0)) << profileToJson(p0);
    std::ofstream(shardTracePath(outDir, 1)) << "{torn";
    std::ofstream(shardProfilePath(outDir, 1)) << profileToJson(p1);
    // shard 2's files are missing entirely.

    const FleetTelemetry tele =
        mergeShardTelemetry(3, outDir, "", "");
    EXPECT_EQ(tele.tracesMerged, 1u);   // torn + missing skipped
    EXPECT_EQ(tele.profilesMerged, 2u); // profiles were both fine
    EXPECT_TRUE(tele.wroteTrace);
    EXPECT_TRUE(tele.wroteProfile);

    std::ifstream in(fleetProfilePath(outDir));
    ASSERT_TRUE(in.good());
    const std::string text{std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>()};
    const SpanProfile fleet = parseProfileJson(text);
    ASSERT_EQ(fleet.size(), 2u);
    EXPECT_EQ(fleet.at("run").count, 5u); // 3 + 2: exact sum
    EXPECT_EQ(fleet.at("run").selfNs, 1500u);
    EXPECT_EQ(fleet.at("run;solve").count, 5u);
    fs::remove_all(outDir);
}

} // namespace
} // namespace eval
