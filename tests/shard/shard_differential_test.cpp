/** The shard-equivalence differential suite (the tentpole property):
 *  the merged output of a sharded Fig 13 campaign is BYTE-identical
 *  to the monolithic run at every tested shard count — snapshot
 *  bytes, stats JSON, and outcome digests, not just "close".
 *
 *  Ingredients under test together: Rng::split chip purity, lazy
 *  manufacture, the order-preserving accumulator merge, the shard
 *  planner, and the supervisor's merge path. */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "exec/thread_pool.hh"
#include "shard/supervisor.hh"
#include "shard/worker.hh"
#include "valid/snapshot.hh"

namespace eval {
namespace {

namespace fs = std::filesystem;

CampaignConfig
testCampaign()
{
    CampaignConfig campaign;
    campaign.experiment.seed = 11;
    campaign.experiment.chips = 8;
    campaign.experiment.simInsts = 20000;
    campaign.experiment.apps = {"gzip", "swim"};
    campaign.scheme = AdaptScheme::ExhDyn;
    return campaign;
}

std::string
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "cannot read " << path;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

TEST(ShardDifferentialTest, MergedEqualsMonolithicAtEveryShardCount)
{
    setGlobalThreads(0);
    const CampaignConfig campaign = testCampaign();
    const CampaignAccumulator mono = runMonolithic(campaign);

    // Monolithic reference bytes, written through the same path the
    // supervisor uses.
    const std::string monoDir =
        ::testing::TempDir() + "shard_diff_mono";
    fs::remove_all(monoDir);
    ASSERT_TRUE(writeMergedOutputs(mono, monoDir, true));
    const std::string refSnap =
        readFileBytes(mergedSnapshotPath(monoDir));
    const std::string refStats =
        readFileBytes(mergedStatsPath(monoDir));
    const std::string refText = mono.toSnapshot().dump(2);
    const std::string refBinary = encodeBinary(mono.toSnapshot());
    const double refDigest = mono.digest();

    for (std::uint32_t shards : {1u, 2u, 8u}) {
        const std::string dir = ::testing::TempDir() +
                                "shard_diff_s" +
                                std::to_string(shards);
        fs::remove_all(dir);

        ShardSupervisorOptions opts;
        opts.campaign = campaign;
        opts.shards = shards;
        opts.outDir = dir;
        opts.checkpointEvery = 3; // deliberately unaligned with 8
        ASSERT_EQ(runShardSupervisor(opts), 0)
            << shards << "-shard run failed";

        const CampaignAccumulator merged =
            mergeShardResults(campaign, shards, dir);

        // Every representation, byte for byte.
        EXPECT_EQ(merged.toSnapshot().dump(2), refText)
            << shards << " shards: text snapshot differs";
        EXPECT_EQ(encodeBinary(merged.toSnapshot()), refBinary)
            << shards << " shards: binary snapshot differs";
        EXPECT_EQ(merged.statsJson(), refStats)
            << shards << " shards: stats JSON differs";
        EXPECT_EQ(merged.digest(), refDigest)
            << shards << " shards: outcome digest differs";
        EXPECT_EQ(readFileBytes(mergedSnapshotPath(dir)), refSnap)
            << shards << " shards: merged.snap file differs";
        EXPECT_EQ(readFileBytes(mergedStatsPath(dir)), refStats)
            << shards << " shards: merged.stats.json file differs";
    }
}

TEST(ShardDifferentialTest, ShardResultsRoundTripThroughSnapshots)
{
    setGlobalThreads(0);
    const CampaignConfig campaign = testCampaign();
    const std::string dir =
        ::testing::TempDir() + "shard_diff_roundtrip";
    fs::remove_all(dir);

    ShardSupervisorOptions opts;
    opts.campaign = campaign;
    opts.shards = 2;
    opts.outDir = dir;
    ASSERT_EQ(runShardSupervisor(opts), 0);

    // Each shard result re-reads into an accumulator whose snapshot
    // re-encodes to the identical bytes (serialization is lossless
    // and canonical), and the planner's ranges tile the population.
    std::uint64_t expectBegin = 0;
    for (std::uint32_t i = 0; i < 2; ++i) {
        const CampaignAccumulator acc =
            readShardResult(campaign, i, 2, dir);
        EXPECT_EQ(acc.firstChip(), expectBegin);
        expectBegin = acc.nextChip();
        const CampaignAccumulator again =
            CampaignAccumulator::fromSnapshot(acc.toSnapshot());
        EXPECT_EQ(encodeBinary(again.toSnapshot()),
                  encodeBinary(acc.toSnapshot()));
    }
    EXPECT_EQ(expectBegin,
              static_cast<std::uint64_t>(campaign.experiment.chips));

    // Results refuse to be read under the wrong coordinates or a
    // different campaign fingerprint.
    EXPECT_THROW(readShardResult(campaign, 0, 3, dir), SnapshotError);
    CampaignConfig other = campaign;
    other.experiment.seed = 12;
    EXPECT_THROW(readShardResult(other, 0, 2, dir), SnapshotError);
}

} // namespace
} // namespace eval
