/** Checkpoint/resume equivalence: a shard killed after k chips and
 *  resumed produces a final result file BYTE-identical to the
 *  uninterrupted run — across repeated interruptions — and corrupt,
 *  truncated, or mismatched checkpoints are rejected with a clean
 *  SnapshotError / worker exit code, never a crash or a silent
 *  restart. */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "exec/thread_pool.hh"
#include "shard/worker.hh"
#include "valid/checkpoint.hh"
#include "valid/snapshot.hh"

namespace eval {
namespace {

namespace fs = std::filesystem;

CampaignConfig
testCampaign()
{
    CampaignConfig campaign;
    campaign.experiment.seed = 11;
    campaign.experiment.chips = 6;
    campaign.experiment.simInsts = 20000;
    campaign.experiment.apps = {"gzip", "swim"};
    campaign.scheme = AdaptScheme::ExhDyn;
    return campaign;
}

ShardWorkerOptions
workerOpts(const std::string &dir)
{
    ShardWorkerOptions w;
    w.campaign = testCampaign();
    w.spec = ShardSpec{0, 1};
    w.outDir = dir;
    w.checkpointEvery = 2;
    return w;
}

std::string
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "cannot read " << path;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
corruptByte(const std::string &path, std::size_t offset)
{
    std::string bytes = readFileBytes(path);
    ASSERT_LT(offset, bytes.size());
    bytes[offset] = static_cast<char>(bytes[offset] ^ 0x40);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

TEST(CheckpointResumeTest, InterruptedResumeIsByteIdentical)
{
    setGlobalThreads(0);

    // Reference: one uninterrupted run.
    const std::string refDir = ::testing::TempDir() + "ckpt_ref";
    fs::remove_all(refDir);
    ASSERT_EQ(runShardWorker(workerOpts(refDir)), kShardExitOk);
    const std::string refBytes =
        readFileBytes(shardResultPath(refDir, 0));
    // The worker cleans up its checkpoint once the result lands.
    EXPECT_FALSE(fs::exists(shardCheckpointPath(refDir, 0)));

    // Interrupted: stop after 2 chips, twice, then run to completion.
    const std::string dir = ::testing::TempDir() + "ckpt_resume";
    fs::remove_all(dir);
    ShardWorkerOptions stop = workerOpts(dir);
    stop.stopAfterChips = 2;
    ASSERT_EQ(runShardWorker(stop), kShardExitInterrupted);
    EXPECT_TRUE(fs::exists(shardCheckpointPath(dir, 0)));
    EXPECT_FALSE(fs::exists(shardResultPath(dir, 0)));

    // The checkpoint records the cursor mid-range.
    const ShardCheckpoint cp =
        readCheckpointFile(shardCheckpointPath(dir, 0));
    EXPECT_EQ(cp.nextChip, 2u);
    EXPECT_EQ(cp.rangeEnd, 6u);

    stop.resume = true;
    ASSERT_EQ(runShardWorker(stop), kShardExitInterrupted); // at 4
    ShardWorkerOptions finish = workerOpts(dir);
    finish.resume = true;
    ASSERT_EQ(runShardWorker(finish), kShardExitOk);

    EXPECT_EQ(readFileBytes(shardResultPath(dir, 0)), refBytes);
    EXPECT_FALSE(fs::exists(shardCheckpointPath(dir, 0)));

    // Resuming an already-complete shard is a fast no-op.
    ASSERT_EQ(runShardWorker(finish), kShardExitOk);
    EXPECT_EQ(readFileBytes(shardResultPath(dir, 0)), refBytes);
}

TEST(CheckpointResumeTest, CorruptCheckpointIsRejectedCleanly)
{
    setGlobalThreads(0);
    const std::string dir = ::testing::TempDir() + "ckpt_corrupt";
    fs::remove_all(dir);

    ShardWorkerOptions stop = workerOpts(dir);
    stop.stopAfterChips = 2;
    ASSERT_EQ(runShardWorker(stop), kShardExitInterrupted);
    const std::string ckpt = shardCheckpointPath(dir, 0);
    const std::string good = readFileBytes(ckpt);

    // A flipped byte anywhere must surface as SnapshotError on read
    // and as the clean kShardExitCorrupt from a resuming worker.
    corruptByte(ckpt, good.size() / 2);
    EXPECT_THROW(readCheckpointFile(ckpt), SnapshotError);
    ShardWorkerOptions resume = workerOpts(dir);
    resume.resume = true;
    EXPECT_EQ(runShardWorker(resume), kShardExitCorrupt);

    // Truncation (torn write without the atomic rename) likewise.
    {
        std::ofstream out(ckpt, std::ios::binary | std::ios::trunc);
        out.write(good.data(),
                  static_cast<std::streamsize>(good.size() / 3));
    }
    EXPECT_THROW(readCheckpointFile(ckpt), SnapshotError);
    EXPECT_EQ(runShardWorker(resume), kShardExitCorrupt);

    // Restoring the original bytes makes the same worker succeed —
    // the rejection was about the data, not lingering state.
    {
        std::ofstream out(ckpt, std::ios::binary | std::ios::trunc);
        out.write(good.data(),
                  static_cast<std::streamsize>(good.size()));
    }
    EXPECT_EQ(runShardWorker(resume), kShardExitOk);
}

TEST(CheckpointResumeTest, MismatchedCheckpointsAreRefused)
{
    setGlobalThreads(0);
    const std::string dir = ::testing::TempDir() + "ckpt_mismatch";
    fs::remove_all(dir);

    ShardWorkerOptions stop = workerOpts(dir);
    stop.stopAfterChips = 2;
    ASSERT_EQ(runShardWorker(stop), kShardExitInterrupted);

    // A checkpoint from a different campaign must not resume.
    ShardWorkerOptions other = workerOpts(dir);
    other.resume = true;
    other.campaign.experiment.seed = 99;
    EXPECT_EQ(runShardWorker(other), kShardExitCorrupt);

    // Nor one claiming different shard coordinates.
    ShardWorkerOptions wrongSpan = workerOpts(dir);
    wrongSpan.resume = true;
    wrongSpan.spec = ShardSpec{0, 2};
    EXPECT_EQ(runShardWorker(wrongSpan), kShardExitCorrupt);

    // An incomplete result file is not usable either.
    ShardWorkerOptions finish = workerOpts(dir);
    finish.resume = true;
    ASSERT_EQ(runShardWorker(finish), kShardExitOk);
    const std::string result = shardResultPath(dir, 0);
    const std::string bytes = readFileBytes(result);
    {
        std::ofstream out(result,
                          std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size() / 2));
    }
    EXPECT_FALSE(
        shardResultUsable(testCampaign(), 0, 1, dir));
    EXPECT_THROW(readShardResult(testCampaign(), 0, 1, dir),
                 SnapshotError);
}

} // namespace
} // namespace eval
