/** Tests for the eval_top core (tools/eval_top): status parsing,
 *  discovery of shard directories, rendering, and the --once --json
 *  machine output round-trip. */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "eval_top.hh"
#include "valid/json_value.hh"

namespace eval::top {
namespace {

namespace fs = std::filesystem;

const char *kStatusDoc = R"({
  "schema_version": 1,
  "tool": "fig13_outcomes",
  "pid": 4242,
  "seq": 7,
  "final": false,
  "uptime_s": 2.5,
  "interval_ms": 500,
  "resources": {"rss_kb": 10240, "peak_rss_kb": 20480,
                "cpu_user_s": 2.0, "cpu_sys_s": 0.1, "threads": 9},
  "progress": [{"name": "chips", "total": 96, "done": 48,
                "fraction": 0.5, "rate_per_s": 19.2, "eta_s": 2.5,
                "elapsed_s": 2.5}],
  "stats": {"chip.count": 48.0, "perf.cpi.mean": 1.25}
})";

TEST(EvalTopParse, ReadsEveryField)
{
    const RunStatus rs = parseStatus(kStatusDoc, "a.json");
    ASSERT_TRUE(rs.valid) << rs.error;
    EXPECT_EQ(rs.tool, "fig13_outcomes");
    EXPECT_EQ(rs.pid, 4242);
    EXPECT_EQ(rs.seq, 7u);
    EXPECT_FALSE(rs.final);
    EXPECT_DOUBLE_EQ(rs.uptimeS, 2.5);
    EXPECT_EQ(rs.intervalMs, 500u);
    EXPECT_EQ(rs.rssKb, 10240);
    EXPECT_EQ(rs.peakRssKb, 20480);
    EXPECT_EQ(rs.threads, 9);
    ASSERT_EQ(rs.progress.size(), 1u);
    EXPECT_EQ(rs.progress[0].name, "chips");
    EXPECT_EQ(rs.progress[0].done, 48u);
    EXPECT_DOUBLE_EQ(rs.progress[0].ratePerS, 19.2);
    ASSERT_EQ(rs.stats.size(), 2u);
}

TEST(EvalTopParse, MalformedInputIsInvalidNotFatal)
{
    EXPECT_FALSE(parseStatus("{torn", "x.json").valid);
    EXPECT_FALSE(parseStatus("[1,2]", "x.json").valid);
    EXPECT_FALSE(parseStatus("", "x.json").valid);
    const RunStatus rs = parseStatus("{torn", "x.json");
    EXPECT_EQ(rs.path, "x.json");
    EXPECT_FALSE(rs.error.empty());
}

TEST(EvalTopParse, MissingSectionsDefaultSafely)
{
    const RunStatus rs =
        parseStatus(R"({"tool": "t", "seq": 1})", "m.json");
    ASSERT_TRUE(rs.valid);
    EXPECT_TRUE(rs.progress.empty());
    EXPECT_TRUE(rs.stats.empty());
    EXPECT_EQ(rs.rssKb, 0);
}

TEST(EvalTopDiscover, FileAndDirectoryModes)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) / "eval_top_discover";
    fs::remove_all(dir);
    fs::create_directories(dir);
    for (const char *name : {"b.json", "a.json", "c.txt", "d.json.tmp"})
        std::ofstream(dir / name) << kStatusDoc;

    const auto files = discoverStatusFiles(dir.string());
    ASSERT_EQ(files.size(), 2u); // *.json only, .tmp/.txt skipped
    EXPECT_NE(files[0].find("a.json"), std::string::npos);
    EXPECT_NE(files[1].find("b.json"), std::string::npos);

    const auto single =
        discoverStatusFiles((dir / "a.json").string());
    ASSERT_EQ(single.size(), 1u);

    EXPECT_TRUE(
        discoverStatusFiles((dir / "nope.json").string()).empty());
    fs::remove_all(dir);
}

TEST(EvalTopRender, BarsDurationsAndHottestStats)
{
    EXPECT_EQ(progressBar(0.0, 4), "[----]");
    EXPECT_EQ(progressBar(0.5, 4), "[##--]");
    EXPECT_EQ(progressBar(1.0, 4), "[####]");
    EXPECT_EQ(progressBar(7.5, 4), "[####]"); // clamped

    EXPECT_EQ(formatDuration(-1.0), "--");
    EXPECT_EQ(formatDuration(5.25), "5.2s");
    EXPECT_EQ(formatDuration(185.0), "3m05s");
    EXPECT_EQ(formatDuration(7620.0), "2h07m");

    RunStatus cur = parseStatus(kStatusDoc, "a.json");
    RunStatus prev = cur;
    prev.uptimeS = 1.5;
    prev.stats[0].second = 28.0; // chip.count: +20 over 1s
    std::map<std::string, RunStatus> previous{{"a.json", prev}};

    const std::string frame = render({cur}, previous, 5);
    EXPECT_NE(frame.find("fig13_outcomes"), std::string::npos);
    EXPECT_NE(frame.find("chips"), std::string::npos);
    EXPECT_NE(frame.find("50.0%"), std::string::npos);
    EXPECT_NE(frame.find("hottest stats"), std::string::npos);
    EXPECT_NE(frame.find("chip.count"), std::string::npos);

    // No baseline: the frame renders without the hottest section.
    const std::string first = render({cur}, {}, 5);
    EXPECT_EQ(first.find("hottest stats"), std::string::npos);
}

TEST(EvalTopRender, JsonModeRoundTrips)
{
    const RunStatus rs = parseStatus(kStatusDoc, "a.json");
    const JsonValue doc = JsonValue::parse(renderJson({rs}));
    const JsonValue &run = doc.at("runs").asArray().at(0);
    EXPECT_TRUE(run.at("valid").asBool());
    EXPECT_EQ(run.at("tool").asString(), "fig13_outcomes");
    EXPECT_DOUBLE_EQ(
        run.at("progress").asArray().at(0).at("fraction").asDouble(),
        0.5);
    EXPECT_DOUBLE_EQ(run.at("stats").at("chip.count").asDouble(), 48.0);

    RunStatus bad;
    bad.path = "broken.json";
    bad.error = "cannot open file";
    const JsonValue doc2 = JsonValue::parse(renderJson({bad}));
    EXPECT_FALSE(doc2.at("runs").asArray().at(0).at("valid").asBool());
}

TEST(EvalTopFleet, SumsProgressRateAndRssAcrossShards)
{
    RunStatus a = parseStatus(kStatusDoc, "shard-0.json");
    RunStatus b = parseStatus(kStatusDoc, "shard-1.json");
    b.final = true;
    b.progress[0].done = 96;
    b.progress[0].ratePerS = 12.8;
    RunStatus torn = parseStatus("{torn", "shard-2.json");

    const FleetSummary fleet = fleetSummary({a, b, torn});
    EXPECT_EQ(fleet.runs, 2u);        // invalid shard skipped
    EXPECT_EQ(fleet.finished, 1u);
    EXPECT_EQ(fleet.done, 48u + 96u);
    EXPECT_EQ(fleet.total, 192u);
    EXPECT_DOUBLE_EQ(fleet.ratePerS, 19.2 + 12.8);
    EXPECT_NEAR(fleet.etaS, (192.0 - 144.0) / 32.0, 1e-12);
    EXPECT_EQ(fleet.rssKb, 2 * 10240);
    EXPECT_EQ(fleet.peakRssKb, 2 * 20480);

    // A single run is not a fleet: no footer, no json object.
    EXPECT_EQ(render({a}, {}, 0).find("fleet:"), std::string::npos);
    EXPECT_FALSE(JsonValue::parse(renderJson({a})).has("fleet"));

    const std::string frame = render({a, b}, {}, 0);
    EXPECT_NE(frame.find("fleet: 1/2 runs done"), std::string::npos);
    EXPECT_NE(frame.find("144/192 units"), std::string::npos);
}

TEST(EvalTopFleet, JsonFleetObjectIsPinned)
{
    RunStatus a = parseStatus(kStatusDoc, "shard-0.json");
    RunStatus b = parseStatus(kStatusDoc, "shard-1.json");
    const JsonValue doc = JsonValue::parse(renderJson({a, b}));
    ASSERT_TRUE(doc.has("fleet"));
    const JsonValue &fleet = doc.at("fleet");
    EXPECT_EQ(fleet.at("runs").asInt(), 2);
    EXPECT_EQ(fleet.at("finished").asInt(), 0);
    EXPECT_EQ(fleet.at("done").asInt(), 96);
    EXPECT_EQ(fleet.at("total").asInt(), 192);
    EXPECT_DOUBLE_EQ(fleet.at("rate_per_s").asDouble(), 38.4);
    EXPECT_DOUBLE_EQ(fleet.at("eta_s").asDouble(), 96.0 / 38.4);
    EXPECT_EQ(fleet.at("rss_kb").asInt(), 2 * 10240);
    EXPECT_EQ(fleet.at("peak_rss_kb").asInt(), 2 * 20480);
}

} // namespace
} // namespace eval::top
