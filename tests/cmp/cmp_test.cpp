/** Tests for chip-level (CMP) coordination. */

#include <gtest/gtest.h>

#include "cmp/cmp_system.hh"

namespace eval {
namespace {

class CmpTest : public ::testing::Test
{
  protected:
    static ExperimentContext &
    ctx()
    {
        static ExperimentConfig cfg = [] {
            ExperimentConfig c;
            c.chips = 2;
            c.simInsts = 60000;
            return c;
        }();
        static ExperimentContext context(cfg);
        return context;
    }
};

TEST_F(CmpTest, NamedMixesResolve)
{
    for (const WorkloadMix &mix :
         {intHeavyMix(), fpHeavyMix(), mixedMix(), memBoundMix()}) {
        for (const AppProfile *app : mix)
            ASSERT_NE(app, nullptr);
    }
    for (const AppProfile *app : intHeavyMix())
        EXPECT_FALSE(app->isFp);
    for (const AppProfile *app : fpHeavyMix())
        EXPECT_TRUE(app->isFp);
}

TEST_F(CmpTest, HeatsinkConsistentWithChipPower)
{
    CmpSystem cmp(ctx(), 0);
    const CmpRunResult res = cmp.runMix(intHeavyMix(),
                                        EnvironmentKind::TS_ASV,
                                        AdaptScheme::ExhDyn);
    HeatsinkModel hs;
    EXPECT_NEAR(res.heatsinkC, hs.tempC(res.chipPowerW), 1.0);
    double sum = 0.0;
    for (double p : res.corePowerW)
        sum += p;
    EXPECT_NEAR(sum, res.chipPowerW, 0.25 * res.chipPowerW);
}

TEST_F(CmpTest, HeatsinkConstraintHolds)
{
    CmpSystem cmp(ctx(), 0);
    const CmpRunResult res = cmp.runMix(mixedMix(),
                                        EnvironmentKind::TS_ASV_Q_FU,
                                        AdaptScheme::ExhDyn);
    EXPECT_LE(res.heatsinkC, ctx().config().constraints.thMaxC + 0.5);
}

TEST_F(CmpTest, ManagedBeatsBaselineThroughput)
{
    CmpSystem cmp(ctx(), 1);
    const CmpRunResult base = cmp.runMix(mixedMix(),
                                         EnvironmentKind::Baseline,
                                         AdaptScheme::Static);
    const CmpRunResult managed = cmp.runMix(mixedMix(),
                                            EnvironmentKind::TS_ASV,
                                            AdaptScheme::ExhDyn);
    EXPECT_GT(managed.throughputRel, base.throughputRel);
}

TEST_F(CmpTest, PerCoreResultsPopulated)
{
    CmpSystem cmp(ctx(), 0);
    const CmpRunResult res = cmp.runMix(fpHeavyMix(),
                                        EnvironmentKind::TS,
                                        AdaptScheme::ExhDyn);
    for (std::size_t c = 0; c < 4; ++c) {
        EXPECT_GT(res.coreFreqRel[c], 0.4) << c;
        EXPECT_GT(res.corePerfRel[c], 0.3) << c;
        EXPECT_GT(res.corePowerW[c], 3.0) << c;
        EXPECT_LT(res.corePowerW[c],
                  ctx().config().constraints.pMaxW + 1.0)
            << c;
    }
    EXPECT_NEAR(res.throughputRel,
                (res.corePerfRel[0] + res.corePerfRel[1] +
                 res.corePerfRel[2] + res.corePerfRel[3]) / 4.0,
                1e-9);
}

TEST(CmpThrottle, TightHeatsinkBudgetForcesGlobalThrottle)
{
    // With an artificially low TH_MAX the package saturates and the
    // chip-level loop must throttle all four cores to stay legal.
    ExperimentConfig cfg;
    cfg.chips = 1;
    cfg.simInsts = 50000;
    // Just below this mix's natural operating point (~66C) but above
    // the chip's minimum-power floor (~60C), so throttling both
    // engages and can succeed.
    cfg.constraints.thMaxC = 61.0;
    ExperimentContext ctx(cfg);
    CmpSystem cmp(ctx, 0);
    const CmpRunResult res = cmp.runMix(intHeavyMix(),
                                        EnvironmentKind::TS_ASV,
                                        AdaptScheme::ExhDyn);
    EXPECT_GT(res.throttleSteps, 0u);
    EXPECT_LE(res.heatsinkC, cfg.constraints.thMaxC + 0.5);
}

TEST_F(CmpTest, MemBoundMixRunsCooler)
{
    CmpSystem cmp(ctx(), 0);
    const CmpRunResult hot = cmp.runMix(intHeavyMix(),
                                        EnvironmentKind::Baseline,
                                        AdaptScheme::Static);
    const CmpRunResult cool = cmp.runMix(memBoundMix(),
                                         EnvironmentKind::Baseline,
                                         AdaptScheme::Static);
    // Memory-bound applications burn less core power.
    EXPECT_LT(cool.chipPowerW, hot.chipPowerW);
}

} // namespace
} // namespace eval
