/** Tests for fuzzy-controller persistence (the reserved-memory image). */

#include <sstream>

#include <gtest/gtest.h>

#include "fuzzy/fuzzy_controller.hh"

namespace eval {
namespace {

TEST(Serialization, NormalizerRoundTrip)
{
    InputNormalizer n;
    n.fit({{0.0, 5.0, -2.0}, {10.0, 6.0, 2.0}});
    std::stringstream ss;
    n.save(ss);
    const InputNormalizer m = InputNormalizer::load(ss);
    EXPECT_EQ(m.dims(), 3u);
    const auto a = n.normalize({3.0, 5.5, 0.0});
    const auto b = m.normalize({3.0, 5.5, 0.0});
    for (std::size_t j = 0; j < 3; ++j)
        EXPECT_DOUBLE_EQ(a[j], b[j]);
}

TEST(Serialization, FuzzyControllerRoundTrip)
{
    FuzzyController fc(8, 2);
    Rng rng(1);
    for (int k = 0; k < 2000; ++k) {
        const double a = rng.uniform(), b = rng.uniform();
        fc.train({a, b}, a + b, 0.04, rng);
    }

    std::stringstream ss;
    fc.save(ss);
    const FuzzyController copy = FuzzyController::load(ss);
    EXPECT_EQ(copy.numRules(), fc.numRules());
    EXPECT_EQ(copy.numInputs(), fc.numInputs());
    EXPECT_TRUE(copy.fullySeeded());

    Rng query(2);
    for (int k = 0; k < 100; ++k) {
        const std::vector<double> x{query.uniform(), query.uniform()};
        EXPECT_DOUBLE_EQ(copy.infer(x), fc.infer(x));
    }
}

TEST(Serialization, TrainedControllerRoundTrip)
{
    TrainedController tc(8, 1);
    Rng rng(3);
    std::vector<std::vector<double>> in;
    std::vector<double> out;
    for (int k = 0; k < 1000; ++k) {
        const double x = rng.uniform(2.0, 6.0);
        in.push_back({x});
        out.push_back(3e9 + x * 1e8);
    }
    tc.train(in, out, 0.04, rng);

    std::stringstream ss;
    tc.save(ss);
    const TrainedController copy = TrainedController::load(ss);
    EXPECT_TRUE(copy.trained());
    for (double x : {2.5, 4.0, 5.5})
        EXPECT_DOUBLE_EQ(copy.predict({x}), tc.predict({x}));
}

TEST(Serialization, RejectsGarbage)
{
    std::stringstream ss("not a controller image at all");
    EXPECT_DEATH(
        { FuzzyController::load(ss); }, "not a controller image");
}

TEST(Serialization, PartiallySeededControllerRoundTrips)
{
    FuzzyController fc(8, 1);
    Rng rng(4);
    fc.train({0.1}, 1.0, 0.04, rng);
    fc.train({0.9}, 2.0, 0.04, rng);
    EXPECT_FALSE(fc.fullySeeded());

    std::stringstream ss;
    fc.save(ss);
    const FuzzyController copy = FuzzyController::load(ss);
    EXPECT_FALSE(copy.fullySeeded());
    EXPECT_DOUBLE_EQ(copy.infer({0.1}), fc.infer({0.1}));
}

} // namespace
} // namespace eval
