/** Tests for the fuzzy controller (Appendix A). */

#include <cmath>

#include <gtest/gtest.h>

#include "fuzzy/fuzzy_controller.hh"
#include "util/random.hh"
#include "util/statistics.hh"

namespace eval {
namespace {

TEST(Normalizer, MapsRangeToUnit)
{
    InputNormalizer n;
    n.fit({{0.0, 10.0}, {2.0, 30.0}});
    const auto v = n.normalize({1.0, 20.0});
    EXPECT_NEAR(v[0], 0.5, 1e-12);
    EXPECT_NEAR(v[1], 0.5, 1e-12);
}

TEST(Normalizer, ConstantDimensionMapsToHalf)
{
    InputNormalizer n;
    n.fit({{5.0}, {5.0}});
    EXPECT_NEAR(n.normalize({5.0})[0], 0.5, 1e-12);
}

TEST(Normalizer, ScalarRoundTrip)
{
    InputNormalizer n;
    n.fitScalar({2.0, 4.0, 10.0});
    const double z = n.normalizeScalar(6.0);
    EXPECT_NEAR(n.denormalizeScalar(z), 6.0, 1e-12);
}

TEST(FuzzyController, SeedingReproducesSeedOutputs)
{
    FuzzyController fc(4, 2);
    Rng rng(1);
    fc.train({0.1, 0.1}, 1.0, 0.04, rng);
    fc.train({0.9, 0.9}, 2.0, 0.04, rng);
    fc.train({0.1, 0.9}, 3.0, 0.04, rng);
    fc.train({0.9, 0.1}, 4.0, 0.04, rng);
    EXPECT_TRUE(fc.fullySeeded());
    // Queries exactly at the rule centers return ~the seed outputs.
    EXPECT_NEAR(fc.infer({0.1, 0.1}), 1.0, 0.05);
    EXPECT_NEAR(fc.infer({0.9, 0.9}), 2.0, 0.05);
}

TEST(FuzzyController, SeededRulesStayBounded)
{
    // Freshly seeded rules are narrow (sigma < 0.1, Appendix A), so a
    // mid-point query is dominated by whichever rule reaches further —
    // it must stay within the convex hull of the rule outputs.
    FuzzyController fc(2, 1);
    Rng rng(2);
    fc.train({0.0}, 0.0, 0.04, rng);
    fc.train({1.0}, 1.0, 0.04, rng);
    const double mid = fc.infer({0.5});
    EXPECT_GE(mid, 0.0);
    EXPECT_LE(mid, 1.0);
}

TEST(FuzzyController, TrainingWidensInterpolation)
{
    // After gradient training on a dense line, mid-point queries do
    // interpolate.
    FuzzyController fc(8, 1);
    Rng rng(2);
    for (int k = 0; k < 4000; ++k) {
        const double x = rng.uniform();
        fc.train({x}, x, 0.04, rng);
    }
    EXPECT_NEAR(fc.infer({0.5}), 0.5, 0.1);
}

TEST(FuzzyController, FarQueryFallsBackToARule)
{
    FuzzyController fc(2, 1);
    Rng rng(3);
    fc.train({0.0}, 5.0, 0.04, rng);
    fc.train({0.2}, 7.0, 0.04, rng);
    // Way outside the support: must return one of the rule outputs
    // (membership-nearest), never NaN or an extrapolated value.
    const double out = fc.infer({50.0});
    EXPECT_TRUE(std::isfinite(out));
    EXPECT_TRUE(std::abs(out - 5.0) < 1e-6 ||
                std::abs(out - 7.0) < 1e-6);
}

TEST(FuzzyController, GradientTrainingReducesError)
{
    // Learn z = x1 + x2 on [0,1]^2.
    const std::size_t rules = 16;
    FuzzyController fc(rules, 2);
    Rng rng(4);
    auto target = [](double a, double b) { return a + b; };

    // Seed + train.
    for (int k = 0; k < 4000; ++k) {
        const double a = rng.uniform(), b = rng.uniform();
        fc.train({a, b}, target(a, b), 0.04, rng);
    }
    RunningStats err;
    for (int k = 0; k < 500; ++k) {
        const double a = rng.uniform(), b = rng.uniform();
        err.add(std::abs(fc.infer({a, b}) - target(a, b)));
    }
    EXPECT_LT(err.mean(), 0.08);
}

TEST(FuzzyController, LearnsNonLinearFunction)
{
    FuzzyController fc(25, 2);
    Rng rng(5);
    auto target = [](double a, double b) {
        return std::sin(3.0 * a) * b;
    };
    for (int k = 0; k < 12000; ++k) {
        const double a = rng.uniform(), b = rng.uniform();
        fc.train({a, b}, target(a, b), 0.04, rng);
    }
    RunningStats err;
    for (int k = 0; k < 500; ++k) {
        const double a = rng.uniform(), b = rng.uniform();
        err.add(std::abs(fc.infer({a, b}) - target(a, b)));
    }
    EXPECT_LT(err.mean(), 0.1);
}

TEST(FuzzyController, FootprintMatchesShape)
{
    FuzzyController fc(25, 7);
    // mu + sigma matrices (25x7 each) plus y vector (25 doubles).
    EXPECT_EQ(fc.footprintBytes(), sizeof(double) * (25 * 7 * 2 + 25));
}

TEST(TrainedController, RawUnitsEndToEnd)
{
    // Learn fmax ~ 5e9 - 2e9 * load in raw physical units.
    TrainedController tc(16, 1);
    Rng rng(6);
    std::vector<std::vector<double>> in;
    std::vector<double> out;
    for (int k = 0; k < 3000; ++k) {
        const double load = rng.uniform(0.0, 1.0);
        in.push_back({load});
        out.push_back(5e9 - 2e9 * load);
    }
    tc.train(in, out, 0.04, rng);
    EXPECT_TRUE(tc.trained());
    EXPECT_NEAR(tc.predict({0.25}), 4.5e9, 0.1e9);
    EXPECT_NEAR(tc.predict({0.75}), 3.5e9, 0.1e9);
}

/** Property: accuracy improves (or holds) with more training data. */
class TrainingSizeSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(TrainingSizeSweep, ErrorBoundedByBudget)
{
    const int examples = GetParam();
    FuzzyController fc(16, 1);
    Rng rng(7);
    for (int k = 0; k < examples; ++k) {
        const double a = rng.uniform();
        fc.train({a}, a * a, 0.04, rng);
    }
    RunningStats err;
    for (int k = 0; k < 300; ++k) {
        const double a = rng.uniform();
        err.add(std::abs(fc.infer({a}) - a * a));
    }
    // Generous budget: shrinking with training size.
    const double budget = examples >= 2000 ? 0.05 : 0.25;
    EXPECT_LT(err.mean(), budget);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TrainingSizeSweep,
                         ::testing::Values(100, 500, 2000, 8000));

} // namespace
} // namespace eval
