/** Tests for the Appendix A comparison regressors. */

#include <cmath>

#include <gtest/gtest.h>

#include "fuzzy/regressors.hh"
#include "util/random.hh"
#include "util/statistics.hh"

namespace eval {
namespace {

TEST(Perceptron, LearnsLinearFunction)
{
    PerceptronRegressor p(2, 0.1);
    Rng rng(1);
    for (int k = 0; k < 5000; ++k) {
        const double a = rng.uniform(), b = rng.uniform();
        p.train({a, b}, 0.3 * a - 0.5 * b + 0.2);
    }
    RunningStats err;
    for (int k = 0; k < 200; ++k) {
        const double a = rng.uniform(), b = rng.uniform();
        err.add(std::abs(p.predict({a, b}) - (0.3 * a - 0.5 * b + 0.2)));
    }
    EXPECT_LT(err.mean(), 0.01);
}

TEST(Perceptron, CannotLearnNonLinearFunction)
{
    // Appendix A's point: the perceptron's output is linear in the
    // inputs, so a product target defeats it.
    PerceptronRegressor p(2, 0.05);
    Rng rng(2);
    auto target = [](double a, double b) {
        return (a - 0.5) * (b - 0.5) * 4.0;
    };
    for (int k = 0; k < 10000; ++k) {
        const double a = rng.uniform(), b = rng.uniform();
        p.train({a, b}, target(a, b));
    }
    RunningStats err;
    for (int k = 0; k < 500; ++k) {
        const double a = rng.uniform(), b = rng.uniform();
        err.add(std::abs(p.predict({a, b}) - target(a, b)));
    }
    EXPECT_GT(err.mean(), 0.1);   // stuck near the best linear fit
}

TEST(Perceptron, FootprintIsTiny)
{
    PerceptronRegressor p(6);
    EXPECT_EQ(p.footprintBytes(), 7 * sizeof(double));
}

TEST(Table, LearnsWithEnoughCellsAndData)
{
    TableRegressor t(2, 8);
    Rng rng(3);
    auto target = [](double a, double b) { return a * b; };
    for (int k = 0; k < 20000; ++k) {
        const double a = rng.uniform(), b = rng.uniform();
        t.train({a, b}, target(a, b));
    }
    RunningStats err;
    for (int k = 0; k < 500; ++k) {
        const double a = rng.uniform(), b = rng.uniform();
        err.add(std::abs(t.predict({a, b}) - target(a, b)));
    }
    // In-cell averaging limits accuracy to ~cell size.
    EXPECT_LT(err.mean(), 0.08);
}

TEST(Table, UntouchedCellFallsBackToGlobalMean)
{
    TableRegressor t(1, 10);
    t.train({0.05}, 2.0);
    t.train({0.15}, 4.0);
    EXPECT_NEAR(t.predict({0.95}), 3.0, 1e-9);   // global mean
    EXPECT_NEAR(t.predict({0.05}), 2.0, 1e-9);
}

TEST(Table, EmptyPredictsZero)
{
    TableRegressor t(2, 4);
    EXPECT_DOUBLE_EQ(t.predict({0.5, 0.5}), 0.0);
}

TEST(Table, MemoryGrowsExponentiallyWithDims)
{
    TableRegressor small(2, 16);
    TableRegressor big(4, 16);
    EXPECT_GT(big.footprintBytes(), 50 * small.footprintBytes());
}

TEST(Table, ResolutionCapProtectsMemory)
{
    // 64 bins over 7 inputs would want 64^7 cells; the cap kicks in.
    TableRegressor t(7, 64);
    EXPECT_LE(t.cells(), std::size_t{1} << 22);
}

TEST(Table, ClampsOutOfRangeInputs)
{
    TableRegressor t(1, 4);
    t.train({5.0}, 1.0);     // clamps into the last bin
    t.train({-3.0}, -1.0);   // clamps into the first bin
    EXPECT_NEAR(t.predict({0.999}), 1.0, 1e-9);
    EXPECT_NEAR(t.predict({0.0}), -1.0, 1e-9);
}

} // namespace
} // namespace eval
