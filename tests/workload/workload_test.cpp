/** Tests for the synthetic SPEC-like workload suite and generator. */

#include <map>

#include <gtest/gtest.h>

#include "workload/generator.hh"
#include "workload/profile.hh"

namespace eval {
namespace {

TEST(Suite, TwentyFourApps)
{
    EXPECT_EQ(specSuite().size(), 24u);
    EXPECT_EQ(specIntNames().size(), 12u);
    EXPECT_EQ(specFpNames().size(), 12u);
}

TEST(Suite, LookupByName)
{
    EXPECT_EQ(appByName("swim").name, "swim");
    EXPECT_TRUE(appByName("swim").isFp);
    EXPECT_FALSE(appByName("gcc").isFp);
}

TEST(Suite, MixesArePositive)
{
    for (const auto &app : specSuite()) {
        double sum = 0.0;
        for (double m : app.mix)
            sum += m;
        EXPECT_NEAR(sum, 1.0, 0.05) << app.name;
        EXPECT_GT(app.depDistanceMean, 1.0) << app.name;
    }
}

TEST(Generator, Deterministic)
{
    const AppProfile &app = appByName("gzip");
    SyntheticTrace a(app, 42), b(app, 42);
    for (int i = 0; i < 5000; ++i) {
        MicroOp oa, ob;
        a.next(oa);
        b.next(ob);
        ASSERT_EQ(oa.pc, ob.pc);
        ASSERT_EQ(oa.cls, ob.cls);
        ASSERT_EQ(oa.addr, ob.addr);
        ASSERT_EQ(oa.taken, ob.taken);
    }
}

TEST(Generator, MixApproximatesProfile)
{
    const AppProfile &app = appByName("swim");
    SyntheticTrace t(app, 7);
    t.pinPhase(0);
    std::map<OpClass, int> counts;
    const int n = 100000;
    MicroOp op;
    for (int i = 0; i < n; ++i) {
        t.next(op);
        ++counts[op.cls];
    }
    const double fpShare =
        static_cast<double>(counts[OpClass::FpAdd] +
                            counts[OpClass::FpMul] +
                            counts[OpClass::FpDiv]) / n;
    EXPECT_GT(fpShare, 0.30);   // swim is FP heavy
    const double memShare = static_cast<double>(counts[OpClass::Load] +
                                                counts[OpClass::Store]) /
                            n;
    EXPECT_GT(memShare, 0.20);
    EXPECT_LT(memShare, 0.50);
}

TEST(Generator, IntAppHasNoFpOps)
{
    SyntheticTrace t(appByName("gzip"), 7);
    MicroOp op;
    for (int i = 0; i < 50000; ++i) {
        t.next(op);
        EXPECT_FALSE(isFpOp(op.cls));
    }
}

TEST(Generator, PhaseScriptCycles)
{
    const AppProfile &app = appByName("gcc");   // three phases
    SyntheticTrace t(app, 9);
    EXPECT_EQ(t.numPhases(), 3u);
    std::map<std::size_t, int> seen;
    MicroOp op;
    for (int i = 0; i < 900000; ++i) {
        t.next(op);
        ++seen[t.currentPhase()];
    }
    EXPECT_EQ(seen.size(), 3u);
    for (const auto &[phase, count] : seen)
        EXPECT_GT(count, 50000) << "phase " << phase;
}

TEST(Generator, PinPhaseHolds)
{
    SyntheticTrace t(appByName("gcc"), 9);
    t.pinPhase(2);
    MicroOp op;
    for (int i = 0; i < 500000; ++i) {
        t.next(op);
        ASSERT_EQ(t.currentPhase(), 2u);
    }
}

TEST(Generator, PhasesUseDistinctCodeRegions)
{
    SyntheticTrace t(appByName("gcc"), 9);
    MicroOp op;
    t.pinPhase(0);
    t.next(op);
    const std::uint64_t pc0 = op.pc;
    t.pinPhase(1);
    t.next(op);
    EXPECT_NE(pc0 >> 20, op.pc >> 20);
}

TEST(Generator, MemOpsHaveAddresses)
{
    SyntheticTrace t(appByName("mcf"), 11);
    MicroOp op;
    int memOps = 0;
    for (int i = 0; i < 20000; ++i) {
        t.next(op);
        if (isMemOp(op.cls)) {
            ++memOps;
            EXPECT_GE(op.addr, 0x10000000ULL);
        }
    }
    EXPECT_GT(memOps, 4000);
}

TEST(Generator, DependencyDistancesScaleWithIlp)
{
    auto meanDist = [](const std::string &name) {
        SyntheticTrace t(appByName(name), 13);
        t.pinPhase(0);
        MicroOp op;
        double sum = 0.0;
        int n = 0;
        for (int i = 0; i < 50000; ++i) {
            t.next(op);
            if (op.src1Dist > 0) {
                sum += op.src1Dist;
                ++n;
            }
        }
        return sum / n;
    };
    // lucas (ILP 8.8) must show larger distances than mcf (ILP 3.0).
    EXPECT_GT(meanDist("lucas"), meanDist("mcf") * 1.5);
}

} // namespace
} // namespace eval
