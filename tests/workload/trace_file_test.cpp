/** Tests for trace record/replay. */

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "arch/core.hh"
#include "workload/generator.hh"
#include "workload/trace_file.hh"

namespace eval {
namespace {

class TraceFileTest : public ::testing::Test
{
  protected:
    std::string
    path() const
    {
        return std::string(::testing::TempDir()) + "eval_trace_" +
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name() +
               ".trc";
    }

    void
    TearDown() override
    {
        std::remove(path().c_str());
    }
};

TEST_F(TraceFileTest, RoundTripPreservesOps)
{
    SyntheticTrace gen(appByName("gzip"), 42);
    std::vector<MicroOp> expected(5000);
    {
        SyntheticTrace copy(appByName("gzip"), 42);
        for (auto &op : expected)
            copy.next(op);
    }
    EXPECT_EQ(recordTrace(gen, 5000, path()), 5000u);

    FileTrace replay(path());
    EXPECT_EQ(replay.size(), 5000u);
    MicroOp op;
    for (const MicroOp &want : expected) {
        ASSERT_TRUE(replay.next(op));
        EXPECT_EQ(op.pc, want.pc);
        EXPECT_EQ(op.addr, want.addr);
        EXPECT_EQ(op.cls, want.cls);
        EXPECT_EQ(op.taken, want.taken);
        EXPECT_EQ(op.src1Dist, want.src1Dist);
        EXPECT_EQ(op.src2Dist, want.src2Dist);
    }
    EXPECT_FALSE(replay.next(op));   // exhausted, no loop
}

TEST_F(TraceFileTest, LoopingReplayWraps)
{
    SyntheticTrace gen(appByName("swim"), 7);
    recordTrace(gen, 100, path());
    FileTrace replay(path(), /*loop=*/true);
    MicroOp op;
    for (int i = 0; i < 1000; ++i)
        ASSERT_TRUE(replay.next(op));
}

TEST_F(TraceFileTest, CoreRunsFromFileDeterministically)
{
    SyntheticTrace gen(appByName("crafty"), 9);
    recordTrace(gen, 60000, path());

    auto run = [this]() {
        FileTrace replay(path(), true);
        CoreConfig cfg;
        Core core(cfg, 3);
        return core.run(replay, 40000);
    };
    const CoreStats a = run();
    const CoreStats b = run();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_GT(a.ipc(), 0.2);
}

TEST_F(TraceFileTest, ReplayMatchesLiveGeneration)
{
    // A core fed from the file must behave exactly like one fed from
    // the live generator emitting the same stream.
    SyntheticTrace gen(appByName("vpr"), 11);
    recordTrace(gen, 80000, path());

    CoreConfig cfg;
    CoreStats live, replayed;
    {
        SyntheticTrace fresh(appByName("vpr"), 11);
        Core core(cfg, 4);
        live = core.run(fresh, 50000);
    }
    {
        FileTrace file(path(), true);
        Core core(cfg, 4);
        replayed = core.run(file, 50000);
    }
    EXPECT_EQ(live.cycles, replayed.cycles);
    EXPECT_EQ(live.l2Misses, replayed.l2Misses);
    EXPECT_EQ(live.branchMispredicts, replayed.branchMispredicts);
}

TEST_F(TraceFileTest, RejectsGarbageFile)
{
    {
        std::ofstream out(path());
        out << "this is not a trace";
    }
    EXPECT_DEATH({ FileTrace t(path()); }, "not an EVAL trace");
}

} // namespace
} // namespace eval
