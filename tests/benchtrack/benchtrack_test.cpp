/** Tests for benchtrack: BENCH_JSON footer parsing, history ingest,
 *  and the regression/noise/improvement verdicts. */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "benchtrack.hh"

namespace eval {
namespace benchtrack {
namespace {

namespace fs = std::filesystem;

/** Fresh history directory per test, removed afterwards. */
class BenchtrackTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = (fs::path(::testing::TempDir()) /
                ("benchtrack_test_" +
                 std::string(::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->name())))
                   .string();
        fs::remove_all(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    /** Append @p n runs of @p bench with wall clock @p wallS each. */
    void
    seedHistory(const std::string &bench, int n, double wallS,
                double metric = 2.0, double chipsPerS = 0.0)
    {
        std::vector<Entry> entries;
        for (int i = 0; i < n; ++i) {
            Entry e;
            e.bench = bench;
            e.wallClockS = wallS;
            e.threads = 1;
            e.peakRssKb = 1000;
            e.metrics["fmax_ghz"] = metric;
            if (chipsPerS > 0.0)
                e.metrics["throughput_chips_per_s"] = chipsPerS;
            entries.push_back(e);
        }
        ASSERT_EQ(ingest(entries, dir_), static_cast<std::size_t>(n));
    }

    const MetricReport *
    row(const Report &rep, const std::string &metric) const
    {
        for (const MetricReport &r : rep.rows) {
            if (r.metric == metric)
                return &r;
        }
        return nullptr;
    }

    std::string dir_;
};

TEST_F(BenchtrackTest, ParsesFooterAndBareJsonlButNotProse)
{
    Entry e;
    ASSERT_TRUE(parseEntry(
        "BENCH_JSON {\"bench\": \"b\", \"wall_clock_s\": 1.5, "
        "\"threads\": 4, \"peak_rss_kb\": 2048, "
        "\"metrics\": {\"fmax_ghz\": 3.9, \"note\": \"text\"}}",
        e));
    EXPECT_EQ(e.bench, "b");
    EXPECT_DOUBLE_EQ(e.wallClockS, 1.5);
    EXPECT_EQ(e.threads, 4);
    EXPECT_EQ(e.peakRssKb, 2048);
    ASSERT_EQ(e.metrics.size(), 1u); // string metric dropped
    EXPECT_DOUBLE_EQ(e.metrics.at("fmax_ghz"), 3.9);

    // Bench stdout prefixes the footer with progress text.
    ASSERT_TRUE(parseEntry(
        "done. BENCH_JSON {\"bench\": \"c\", \"wall_clock_s\": 2}",
        e));
    EXPECT_EQ(e.bench, "c");

    // Bare JSONL (a history file line) parses too.
    ASSERT_TRUE(parseEntry(
        "{\"bench\": \"d\", \"wall_clock_s\": 3}", e));
    EXPECT_EQ(e.bench, "d");

    // Prose mentioning a brace is not an entry, nor is a footer
    // missing required keys.
    EXPECT_FALSE(parseEntry("running sweep {3 chips}...", e));
    EXPECT_FALSE(parseEntry("BENCH_JSON {\"bench\": \"x\"}", e));
    EXPECT_FALSE(parseEntry("BENCH_JSON {not json", e));
}

TEST_F(BenchtrackTest, IngestAppendsPerBenchJsonl)
{
    seedHistory("bench_a", 2, 1.0);
    seedHistory("bench_a", 1, 1.1);
    const std::vector<Entry> history =
        loadHistory((fs::path(dir_) / "bench_a.jsonl").string());
    ASSERT_EQ(history.size(), 3u);
    EXPECT_DOUBLE_EQ(history.back().wallClockS, 1.1);
    EXPECT_DOUBLE_EQ(history.front().metrics.at("fmax_ghz"), 2.0);
}

TEST_F(BenchtrackTest, TwentyPercentSlowdownIsAGatedRegression)
{
    seedHistory("bench_a", 4, 10.0);
    seedHistory("bench_a", 1, 12.0); // +20% wall clock

    const Report rep = report(dir_, 5, 10.0);
    const MetricReport *wall = row(rep, "wall_clock_s");
    ASSERT_NE(wall, nullptr);
    EXPECT_EQ(wall->verdict, Delta::Regression);
    EXPECT_TRUE(wall->gated);
    EXPECT_NEAR(wall->deltaPct, 20.0, 1e-9);
    EXPECT_EQ(wall->window, 4u);
    EXPECT_EQ(rep.regressions, 1u);

    const std::string md = rep.toMarkdown(10.0);
    EXPECT_NE(md.find("regression"), std::string::npos);
    EXPECT_NE(md.find("wall_clock_s"), std::string::npos);
}

TEST_F(BenchtrackTest, SmallJitterIsNoise)
{
    seedHistory("bench_a", 4, 10.0);
    seedHistory("bench_a", 1, 10.4); // +4%, under the 10% threshold

    const Report rep = report(dir_, 5, 10.0);
    for (const MetricReport &r : rep.rows)
        EXPECT_EQ(r.verdict, Delta::Noise) << r.metric;
    EXPECT_EQ(rep.regressions, 0u);
}

TEST_F(BenchtrackTest, SpeedupIsAnImprovementNotARegression)
{
    seedHistory("bench_a", 4, 10.0);
    seedHistory("bench_a", 1, 7.0); // -30% wall clock

    const Report rep = report(dir_, 5, 10.0);
    const MetricReport *wall = row(rep, "wall_clock_s");
    ASSERT_NE(wall, nullptr);
    EXPECT_EQ(wall->verdict, Delta::Improvement);
    EXPECT_EQ(rep.regressions, 0u);
}

TEST_F(BenchtrackTest, FirstEntryOfABenchIsNew)
{
    seedHistory("bench_fresh", 1, 5.0);
    const Report rep = report(dir_, 5, 10.0);
    ASSERT_FALSE(rep.rows.empty());
    for (const MetricReport &r : rep.rows)
        EXPECT_EQ(r.verdict, Delta::New) << r.metric;
    EXPECT_EQ(rep.regressions, 0u);
}

TEST_F(BenchtrackTest, DomainMetricChangesNeverGate)
{
    // fmax_ghz collapses by 50% — informational only.
    seedHistory("bench_a", 4, 10.0, 2.0);
    seedHistory("bench_a", 1, 10.0, 1.0);

    const Report rep = report(dir_, 5, 10.0);
    const MetricReport *fmax = row(rep, "fmax_ghz");
    ASSERT_NE(fmax, nullptr);
    EXPECT_FALSE(fmax->gated);
    EXPECT_NE(fmax->verdict, Delta::Noise);
    EXPECT_EQ(rep.regressions, 0u);
}

TEST(BenchtrackGateDir, PolicyKnowsBothGatedMetrics)
{
    EXPECT_EQ(gateDir("wall_clock_s"), GateDir::LowerBetter);
    EXPECT_EQ(gateDir("throughput_chips_per_s"), GateDir::HigherBetter);
    EXPECT_EQ(gateDir("fmax_ghz"), GateDir::None);
    EXPECT_EQ(gateDir("peak_rss_kb"), GateDir::None);
}

TEST_F(BenchtrackTest, ThroughputCollapseIsAGatedRegression)
{
    // Wall clock steady, chips/sec down 30%: higher-is-better gating
    // must flag it even though no lower-is-better metric moved.
    seedHistory("bench_a", 4, 10.0, 2.0, 100.0);
    seedHistory("bench_a", 1, 10.0, 2.0, 70.0);

    const Report rep = report(dir_, 5, 10.0);
    const MetricReport *thr = row(rep, "throughput_chips_per_s");
    ASSERT_NE(thr, nullptr);
    EXPECT_EQ(thr->verdict, Delta::Regression);
    EXPECT_TRUE(thr->gated);
    EXPECT_EQ(thr->dir, GateDir::HigherBetter);
    EXPECT_NEAR(thr->deltaPct, -30.0, 1e-9);
    EXPECT_EQ(rep.regressions, 1u);

    const std::string js = rep.toJson(10.0);
    EXPECT_NE(js.find("\"direction\": \"higher_better\""),
              std::string::npos);
}

TEST_F(BenchtrackTest, ThroughputGainIsAnImprovement)
{
    seedHistory("bench_a", 4, 10.0, 2.0, 100.0);
    seedHistory("bench_a", 1, 10.0, 2.0, 130.0);

    const Report rep = report(dir_, 5, 10.0);
    const MetricReport *thr = row(rep, "throughput_chips_per_s");
    ASSERT_NE(thr, nullptr);
    EXPECT_EQ(thr->verdict, Delta::Improvement);
    EXPECT_EQ(rep.regressions, 0u);
}

TEST_F(BenchtrackTest, SpanSelfMsRoundTripsThroughIngest)
{
    Entry e;
    ASSERT_TRUE(parseEntry(
        "BENCH_JSON {\"bench\": \"b\", \"wall_clock_s\": 1.5, "
        "\"span_self_ms\": {\"fig13.sweep\": 120.5, "
        "\"thermal.solve\": 40.25, \"bad\": \"text\"}, "
        "\"metrics\": {}}",
        e));
    ASSERT_EQ(e.spanSelfMs.size(), 2u); // non-numeric span dropped
    EXPECT_DOUBLE_EQ(e.spanSelfMs.at("fig13.sweep"), 120.5);
    EXPECT_DOUBLE_EQ(e.spanSelfMs.at("thermal.solve"), 40.25);

    ASSERT_EQ(ingest({e}, dir_), 1u);
    const std::vector<Entry> history =
        loadHistory((fs::path(dir_) / "b.jsonl").string());
    ASSERT_EQ(history.size(), 1u);
    EXPECT_EQ(history.back().spanSelfMs, e.spanSelfMs);
}

TEST_F(BenchtrackTest, WallClockRegressionBlamesTheGrownSpan)
{
    // Four steady runs, then a +20% wall-clock run where one span's
    // self time grew to match: the blame must name that span first.
    std::vector<Entry> entries;
    for (int i = 0; i < 4; ++i) {
        Entry e;
        e.bench = "bench_a";
        e.wallClockS = 10.0;
        e.spanSelfMs = {{"fig13.sweep", 8000.0},
                        {"thermal.solve", 1500.0}};
        entries.push_back(e);
    }
    Entry slow;
    slow.bench = "bench_a";
    slow.wallClockS = 12.0; // +20%
    slow.spanSelfMs = {{"fig13.sweep", 8100.0},
                       {"thermal.solve", 3400.0}}; // the culprit
    entries.push_back(slow);
    ASSERT_EQ(ingest(entries, dir_), 5u);

    const Report rep = report(dir_, 5, 10.0);
    ASSERT_EQ(rep.regressions, 1u);
    ASSERT_EQ(rep.blames.size(), 1u);
    const BenchBlame &blame = rep.blames[0];
    EXPECT_EQ(blame.bench, "bench_a");
    ASSERT_FALSE(blame.topSpans.empty());
    EXPECT_EQ(blame.topSpans[0].span, "thermal.solve");
    EXPECT_NEAR(blame.topSpans[0].baselineMs, 1500.0, 1e-9);
    EXPECT_NEAR(blame.topSpans[0].deltaMs, 1900.0, 1e-9);

    const std::string md = rep.toMarkdown(10.0);
    EXPECT_NE(md.find("## Blame: bench_a"), std::string::npos);
    EXPECT_NE(md.find("`thermal.solve`"), std::string::npos);
    const std::string js = rep.toJson(10.0);
    EXPECT_NE(js.find("\"blames\""), std::string::npos);
    EXPECT_NE(js.find("thermal.solve"), std::string::npos);
}

TEST_F(BenchtrackTest, UntracedRunsDontDiluteTheBlameBaseline)
{
    // Two untraced runs, two traced ones, then the regression: the
    // baseline mean divides by the traced entries only (2), so the
    // per-span baseline stays at the per-run value.
    std::vector<Entry> entries;
    for (int i = 0; i < 4; ++i) {
        Entry e;
        e.bench = "bench_a";
        e.wallClockS = 10.0;
        if (i >= 2)
            e.spanSelfMs = {{"fig13.sweep", 8000.0}};
        entries.push_back(e);
    }
    Entry slow;
    slow.bench = "bench_a";
    slow.wallClockS = 12.0;
    slow.spanSelfMs = {{"fig13.sweep", 9000.0}};
    entries.push_back(slow);
    ASSERT_EQ(ingest(entries, dir_), 5u);

    const Report rep = report(dir_, 5, 10.0);
    ASSERT_EQ(rep.blames.size(), 1u);
    ASSERT_FALSE(rep.blames[0].topSpans.empty());
    EXPECT_NEAR(rep.blames[0].topSpans[0].baselineMs, 8000.0, 1e-9);
    EXPECT_NEAR(rep.blames[0].topSpans[0].deltaMs, 1000.0, 1e-9);
}

TEST_F(BenchtrackTest, NoBlameWithoutSpanDataOrWithoutRegression)
{
    // Regression but no span data anywhere: report renders, blame
    // list stays empty.
    seedHistory("bench_a", 4, 10.0);
    seedHistory("bench_a", 1, 12.0);
    const Report rep = report(dir_, 5, 10.0);
    EXPECT_EQ(rep.regressions, 1u);
    EXPECT_TRUE(rep.blames.empty());
    EXPECT_EQ(rep.toMarkdown(10.0).find("## Blame"),
              std::string::npos);

    // Span data but no wall-clock regression: still no blame.
    fs::remove_all(dir_);
    std::vector<Entry> entries;
    for (int i = 0; i < 3; ++i) {
        Entry e;
        e.bench = "bench_b";
        e.wallClockS = 10.0;
        e.spanSelfMs = {{"fig13.sweep", 8000.0 + 100.0 * i}};
        entries.push_back(e);
    }
    ASSERT_EQ(ingest(entries, dir_), 3u);
    const Report steady = report(dir_, 5, 10.0);
    EXPECT_EQ(steady.regressions, 0u);
    EXPECT_TRUE(steady.blames.empty());
}

TEST_F(BenchtrackTest, CliGateExitCodeReflectsRegressions)
{
    seedHistory("bench_a", 4, 10.0);
    seedHistory("bench_a", 1, 12.5);

    const std::string md = (fs::path(dir_) / "report.md").string();
    const std::string js = (fs::path(dir_) / "report.json").string();
    EXPECT_EQ(runBenchtrack({"report", "--history", dir_, "--markdown",
                             md, "--json", js}),
              0); // no --gate: report only
    EXPECT_EQ(runBenchtrack({"report", "--history", dir_, "--markdown",
                             md, "--gate"}),
              1);
    std::ifstream in(md);
    ASSERT_TRUE(in.good());

    EXPECT_EQ(runBenchtrack({}), 2);
    EXPECT_EQ(runBenchtrack({"report"}), 2);
}

} // namespace
} // namespace benchtrack
} // namespace eval
