/**
 * @file
 * Scaling study of the parallel execution layer: the per-chip Monte
 * Carlo fan-out (manufacture + adapt one app per chip) at 1/2/4/8
 * threads over the same chip population.  Two properties are checked
 * and reported:
 *   - wall-clock speedup vs the single-thread run (the work is
 *     embarrassingly parallel, so it should approach the thread count
 *     on an idle multi-core host);
 *   - bit-identical results: every per-chip metric must match the
 *     1-thread run exactly at every thread count (the determinism
 *     contract of Rng::split + serial-order accumulation).
 *
 * EVAL_CHIPS resizes the population (default 32).
 */

#include <algorithm>
#include <cstring>

#include "bench_common.hh"

using namespace eval;

namespace {

struct ScalingRun
{
    double wallS = 0.0;
    std::vector<AppRunResult> runs;
};

bool
bitIdentical(const AppRunResult &a, const AppRunResult &b)
{
    return std::memcmp(&a.freqRel, &b.freqRel, sizeof a.freqRel) == 0 &&
           std::memcmp(&a.perfRel, &b.perfRel, sizeof a.perfRel) == 0 &&
           std::memcmp(&a.powerW, &b.powerW, sizeof a.powerW) == 0 &&
           std::memcmp(&a.pePerInstr, &b.pePerInstr,
                       sizeof a.pePerInstr) == 0;
}

/**
 * One full pipeline at @p threads: manufacture the population
 * (parallel variation-field FFTs), then adapt one app on every chip
 * (parallel per-chip fan-out).  The shared-cache prewarm between the
 * two segments (characterization + NoVar reference) is excluded from
 * the timing: it is inherently serial, identical at every thread
 * count, and not part of the parallel layer under study.
 */
ScalingRun
runAtThreads(const ExperimentConfig &cfg, std::size_t threads)
{
    setGlobalThreads(threads);
    const AppProfile &app = appByName("gzip");

    const auto t0 = std::chrono::steady_clock::now();
    ExperimentContext ctx(cfg);
    const auto t1 = std::chrono::steady_clock::now();

    ctx.novarPerf(app);   // untimed prewarm of the shared caches

    ProgressTracker &chipProgress =
        ProgressRegistry::global().tracker("chips");
    chipProgress.addTotal(static_cast<std::uint64_t>(cfg.chips));

    const auto t2 = std::chrono::steady_clock::now();
    auto runs = globalPool().parallelMap(
        static_cast<std::size_t>(cfg.chips), [&](std::size_t chip) {
            AppRunResult r =
                ctx.runApp(chip, 0, app, EnvironmentKind::TS_ASV,
                           AdaptScheme::ExhDyn);
            chipProgress.tick();
            return r;
        });
    const auto t3 = std::chrono::steady_clock::now();

    ScalingRun out;
    out.wallS = std::chrono::duration<double>(t1 - t0).count() +
                std::chrono::duration<double>(t3 - t2).count();
    out.runs = std::move(runs);
    return out;
}

} // namespace

int
main()
{
    BenchReporter reporter("parallel_scaling");
    ExperimentConfig cfg = ExperimentConfig::fromEnv();
    cfg.chips = benchChips(32);

    const std::vector<std::size_t> threadCounts = {1, 2, 4, 8};
    std::vector<ScalingRun> results;
    for (std::size_t n : threadCounts)
        results.push_back(runAtThreads(cfg, n));

    bool identical = true;
    for (std::size_t i = 1; i < results.size(); ++i) {
        for (int c = 0; c < cfg.chips; ++c) {
            if (!bitIdentical(results[0].runs[c], results[i].runs[c]))
                identical = false;
        }
    }

    TablePrinter table("Parallel scaling: per-chip fan-out");
    table.header({"threads", "wall (s)", "speedup"});
    const double base = results[0].wallS;
    for (std::size_t i = 0; i < threadCounts.size(); ++i) {
        table.row({std::to_string(threadCounts[i]),
                   formatDouble(results[i].wallS, 2),
                   formatDouble(base / results[i].wallS, 2)});
    }
    table.print();
    std::printf("\n%d chips, %u hardware threads; results %s across "
                "thread counts.\n",
                cfg.chips, std::thread::hardware_concurrency(),
                identical ? "BIT-IDENTICAL" : "DIVERGED");

    for (std::size_t i = 0; i < threadCounts.size(); ++i) {
        reporter.metric(
            "wall_s_" + std::to_string(threadCounts[i]) + "t",
            results[i].wallS);
    }
    reporter.metric("speedup_8t", base / results.back().wallS);
    reporter.metric("bit_identical", identical ? 1.0 : 0.0);
    reporter.metric("chips", cfg.chips);

    // Span-tracer overhead: the same single-thread pipeline with the
    // tracer off and on.  Off must record nothing at all (the
    // disabled path is one relaxed atomic load); on must record the
    // full timeline, and the wall-clock delta is the overhead the
    // ≤3% budget in DESIGN.md Sec 5e refers to.
    SpanTracer &tracer = SpanTracer::global();
    const bool wasTracing = tracer.enabled();
    constexpr int kOverheadReps = 3; // min-of-N tames scheduler noise
    constexpr double kOverheadBudgetPct = 3.0; // DESIGN.md Sec 5e

    tracer.setEnabled(false);
    const std::size_t eventsBefore = tracer.eventCount();
    double offWallS = runAtThreads(cfg, 1).wallS;
    double offMaxS = offWallS;
    for (int i = 1; i < kOverheadReps; ++i) {
        const double w = runAtThreads(cfg, 1).wallS;
        offWallS = std::min(offWallS, w);
        offMaxS = std::max(offMaxS, w);
    }
    EVAL_ASSERT(tracer.eventCount() == eventsBefore,
                "disabled tracer recorded span events");

    tracer.setEnabled(true);
    double onWallS = runAtThreads(cfg, 1).wallS;
    for (int i = 1; i < kOverheadReps; ++i)
        onWallS = std::min(onWallS, runAtThreads(cfg, 1).wallS);
    EVAL_ASSERT(tracer.eventCount() > eventsBefore,
                "enabled tracer recorded no span events");
    tracer.setEnabled(wasTracing);

    // The assertion tolerates the run-to-run spread of the tracer-off
    // samples on top of the budget: short EVAL_FAST windows jitter by
    // several percent under scheduler noise, and the budget polices
    // the tracer, not the machine.
    const double overheadPct =
        offWallS > 0.0 ? (onWallS / offWallS - 1.0) * 100.0 : 0.0;
    const double noisePct =
        offWallS > 0.0 ? (offMaxS / offWallS - 1.0) * 100.0 : 0.0;
    std::printf("span tracer overhead: %.2f%% (%zu events, budget "
                "%.0f%% + %.2f%% measured noise)\n",
                overheadPct, tracer.eventCount() - eventsBefore,
                kOverheadBudgetPct, noisePct);
    EVAL_ASSERT(overheadPct <= kOverheadBudgetPct + noisePct,
                "span tracer overhead exceeds the enabled budget");
    reporter.metric("span_overhead_pct", overheadPct);
    reporter.metric(
        "span_events",
        static_cast<double>(tracer.eventCount() - eventsBefore));

    // Metrics-sampler overhead: the same single-thread pipeline with
    // live telemetry off and on, budgeted at ≤2% (DESIGN.md Sec 5f).
    // A private sampler instance (own status file, 20x the default
    // sampling rate) keeps the measurement independent of any
    // EVAL_STATUS_OUT-driven global sampler, and over-stresses the
    // budget rather than flattering it.
    constexpr double kSamplerBudgetPct = 2.0; // DESIGN.md Sec 5f
    double samplerOffS = runAtThreads(cfg, 1).wallS;
    double samplerOffMaxS = samplerOffS;
    for (int i = 1; i < kOverheadReps; ++i) {
        const double w = runAtThreads(cfg, 1).wallS;
        samplerOffS = std::min(samplerOffS, w);
        samplerOffMaxS = std::max(samplerOffMaxS, w);
    }

    const std::string overheadStatus =
        "parallel_scaling.overhead.status.json";
    MetricsSampler sampler;
    SamplerConfig samplerCfg;
    samplerCfg.tool = "parallel_scaling_overhead";
    samplerCfg.statusPath = overheadStatus;
    samplerCfg.intervalMs = 25;
    sampler.configure(samplerCfg);
    sampler.start();
    double samplerOnS = runAtThreads(cfg, 1).wallS;
    for (int i = 1; i < kOverheadReps; ++i)
        samplerOnS = std::min(samplerOnS, runAtThreads(cfg, 1).wallS);
    sampler.stop();
    EVAL_ASSERT(sampler.published() >= 2,
                "sampler published too few snapshots");
    std::remove(overheadStatus.c_str());

    const double samplerPct =
        samplerOffS > 0.0 ? (samplerOnS / samplerOffS - 1.0) * 100.0
                          : 0.0;
    const double samplerNoisePct =
        samplerOffS > 0.0
            ? (samplerOffMaxS / samplerOffS - 1.0) * 100.0
            : 0.0;
    std::printf("metrics sampler overhead: %.2f%% (%llu snapshots, "
                "budget %.0f%% + %.2f%% measured noise)\n",
                samplerPct,
                static_cast<unsigned long long>(sampler.published()),
                kSamplerBudgetPct, samplerNoisePct);
    EVAL_ASSERT(samplerPct <= kSamplerBudgetPct + samplerNoisePct,
                "metrics sampler overhead exceeds the enabled budget");
    reporter.metric("sampler_overhead_pct", samplerPct);
    reporter.metric("sampler_snapshots",
                    static_cast<double>(sampler.published()));
    return identical ? 0 : 1;
}
