/**
 * @file
 * Shard-scaling bench: runs the Fig 13 population campaign through
 * the shard supervisor at shard counts {1, 2, 4} — real fork/exec
 * workers, the production protocol — plus the monolithic reference,
 * and fails loudly unless every merged.snap / merged.stats.json is
 * byte-identical across all of them (the differential property, at
 * bench scale, on every CI run that gates throughput).
 *
 * Footer metrics: wall seconds per shard count, fork-speedup ratios,
 * and throughput_chips_per_s for the benchtrack gate.
 *
 * The acceptance-scale run is the same binary at population size:
 *   EVAL_CHIPS=100000 ./bench_shard_scaling
 * Peak RSS stays bounded by the checkpoint block size regardless of
 * EVAL_CHIPS because workers manufacture chips lazily and evict each
 * block after folding it.
 *
 * Internal protocol: the supervisor re-execs this binary as
 *   bench_shard_scaling --shard-worker <outDir> --shard=i/N
 * Worker invocations print no BENCH_JSON footer (one footer per
 * bench run).
 */

#include <cstring>
#include <filesystem>
#include <fstream>

#include "bench_common.hh"
#include "exec/subprocess.hh"
#include "shard/supervisor.hh"
#include "shard/worker.hh"

using namespace eval;

namespace {

/** The campaign under test; every process (parent and workers) must
 *  build the identical config, so it only depends on the inherited
 *  environment (EVAL_CHIPS / EVAL_SEED / EVAL_FAST / ...). */
CampaignConfig
makeCampaign()
{
    CampaignConfig campaign;
    campaign.experiment = ExperimentConfig::fromEnv();
    campaign.experiment.chips = benchChips(12);
    // Pinned explicitly so workers cannot diverge via EVAL_APPS
    // defaulting differently, and to keep the per-chip unit modest.
    campaign.experiment.apps = {"gzip", "swim"};
    campaign.scheme = AdaptScheme::FuzzyDyn;
    return campaign;
}

std::string
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        EVAL_FATAL("cannot read ", path);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

int
runWorker(int argc, char **argv)
{
    if (argc < 4 || std::strncmp(argv[3], "--shard=", 8) != 0)
        EVAL_FATAL("worker usage: --shard-worker <outDir> --shard=i/N");
    setGlobalThreads(0);
    ShardWorkerOptions w;
    w.campaign = makeCampaign();
    w.outDir = argv[2];
    if (!parseShardSpec(argv[3] + 8, w.spec))
        EVAL_FATAL("bad shard spec '", argv[3], "'");
    w.checkpointEvery = 8;
    return runShardWorker(w);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--shard-worker") == 0)
        return runWorker(argc, argv);

    BenchReporter reporter("shard_scaling");
    const CampaignConfig campaign = makeCampaign();
    const auto chips =
        static_cast<std::uint64_t>(campaign.experiment.chips);
    const std::string base = "bench_shard_scaling.out";
    std::filesystem::remove_all(base);

    // Monolithic reference: runMonolithic declares + ticks the
    // "chips" tracker itself.
    const std::string monoDir = base + "/mono";
    const auto monoStart = std::chrono::steady_clock::now();
    const CampaignAccumulator mono = runMonolithic(campaign);
    const double monoS = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() -
                             monoStart)
                             .count();
    if (!writeMergedOutputs(mono, monoDir, /*binarySnapshots=*/true))
        EVAL_FATAL("cannot write monolithic reference outputs");
    const std::string refSnap =
        readFileBytes(mergedSnapshotPath(monoDir));
    const std::string refStats = readFileBytes(mergedStatsPath(monoDir));
    reporter.metric("wall_s_mono", monoS);
    std::printf("monolithic: %llu chips in %.2fs (digest %.0f)\n",
                static_cast<unsigned long long>(chips), monoS,
                mono.digest());

    ProgressTracker &chipProgress =
        ProgressRegistry::global().tracker("chips");

    double wall1 = 0.0;
    for (std::uint32_t shards : {1u, 2u, 4u}) {
        const std::string dir =
            base + "/s" + std::to_string(shards);
        ShardSupervisorOptions s;
        s.campaign = campaign;
        s.shards = shards;
        s.outDir = dir;
        s.checkpointEvery = 8;
        s.workerArgv = {Subprocess::selfExePath(), "--shard-worker",
                        dir};

        chipProgress.addTotal(chips);
        const auto start = std::chrono::steady_clock::now();
        const int rc = runShardSupervisor(s);
        const double wallS = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() -
                                 start)
                                 .count();
        // The workers ticked their own (per-process) trackers; credit
        // the completed population to this process's tracker so the
        // footer throughput covers the forked stages too.
        chipProgress.tick(chips);
        if (rc != 0)
            EVAL_FATAL("sharded run (", shards, " shards) failed: ",
                       rc);

        // The differential property, at bench scale: byte identity of
        // both merged artifacts against the monolithic reference.
        if (readFileBytes(mergedSnapshotPath(dir)) != refSnap)
            EVAL_FATAL(shards,
                       "-shard merged.snap differs from monolithic");
        if (readFileBytes(mergedStatsPath(dir)) != refStats)
            EVAL_FATAL(shards, "-shard merged.stats.json differs "
                               "from monolithic");

        if (shards == 1)
            wall1 = wallS;
        reporter.metric("wall_s_" + std::to_string(shards) + "shard",
                        wallS);
        if (shards > 1 && wallS > 0.0)
            reporter.metric("speedup_" + std::to_string(shards) +
                                "shard",
                            wall1 / wallS);
        std::printf("%u shards: %.2fs, merged outputs byte-identical "
                    "to monolithic\n",
                    shards, wallS);
    }

    reporter.metric("chips", static_cast<double>(chips));
    std::puts("shard differential property holds at every count");
    return 0;
}
