/**
 * @file
 * Figure 8: PE, power, and frequency are tradeable (swim on one sample
 * chip).
 *  (a) per-subsystem PE vs fR under TS (nominal voltages)
 *  (b) processor performance vs fR under TS
 *  (c) per-subsystem PE vs fR under TS+ASV+ABB set by Exhaustive
 *  (d) processor performance vs fR under TS+ASV+ABB
 */

#include "bench_common.hh"

using namespace eval;

namespace {

struct Sweep
{
    ExperimentContext &ctx;
    CoreSystemModel &core;
    PhaseCharacterization phase;
    double novar;
    double thC = 65.0;

    /** Emit one (a)+(b)-style block for the given knob policy. */
    void
    emit(const std::string &title, bool useExhaustiveKnobs)
    {
        const EnvCapabilities caps =
            environmentCaps(EnvironmentKind::TS_ASV_ABB);
        ExhaustiveOptimizer exh(caps, ctx.config().constraints);

        SeriesSet series(title, "fR");
        std::vector<std::size_t> cols;
        for (std::size_t i = 0; i < kNumSubsystems; ++i) {
            const auto id = static_cast<SubsystemId>(i);
            cols.push_back(series.addSeries(
                std::string(core.subsystem(id).info().name) + "_" +
                stageTypeName(core.subsystem(id).info().type)));
        }
        const std::size_t perfCol = series.addSeries("PerfR");
        const std::size_t peCol = series.addSeries("PE_total");

        double bestPerf = 0.0, bestFr = 0.0;
        for (double fr = 0.70; fr <= 1.30 + 1e-9; fr += 0.02) {
            OperatingPoint op = nominalOperatingPoint(ctx.config().process);
            op.freq = fr * ctx.config().process.freqNominal;
            if (useExhaustiveKnobs) {
                for (std::size_t i = 0; i < kNumSubsystems; ++i) {
                    const auto id = static_cast<SubsystemId>(i);
                    const auto k = exh.minimizePower(
                        core, id, false, op.freq, phase.act.alpha[i],
                        thC);
                    if (k)
                        op.knobsOf(id) = *k;
                    else
                        op.knobsOf(id) = {1.20, 0.50};   // best effort
                }
            }
            const CoreEvaluation ev = core.evaluate(op, phase.act, thC);
            series.addSample(fr);
            for (std::size_t i = 0; i < kNumSubsystems; ++i)
                series.setValue(cols[i], ev.peAccess[i]);
            const double perf =
                performance(op.freq, ev.pePerInstruction,
                            phase.perfFull) /
                novar;
            series.setValue(perfCol, perf);
            series.setValue(peCol, ev.pePerInstruction);
            if (perf > bestPerf) {
                bestPerf = perf;
                bestFr = fr;
            }
        }
        series.print();
        std::printf("# optimum: fR=%.2f PerfR=%.3f\n\n", bestFr, bestPerf);
    }
};

} // namespace

int
main()
{
    BenchReporter reporter("fig08_tradeoff");
    ExperimentConfig cfg = ExperimentConfig::fromEnv();
    cfg.chips = 1;
    ExperimentContext ctx(cfg);

    const AppProfile &app = appByName("swim");
    CoreSystemModel &core = ctx.coreModel(0, 0);
    core.setAppType(app.isFp);
    const PhaseCharacterization phase =
        ctx.characterizations().get(app).phases[0].chr;
    // Normalize against the no-variation processor at nominal f on
    // this same phase (avoids cross-phase weighting artifacts).
    const double novar =
        performance(cfg.process.freqNominal, 0.0, phase.perfFull);

    Sweep sweep{ctx, core, phase, novar};
    std::printf("baseline fR of this chip: %.3f\n\n",
                core.baselineFrequency() / cfg.process.freqNominal);
    sweep.emit("Figure 8(a)/(b): subsystem PE and PerfR vs fR under TS",
               false);
    sweep.emit("Figure 8(c)/(d): subsystem PE and PerfR vs fR under "
               "TS+ASV+ABB (Exhaustive)",
               true);
    reporter.metric("baseline_freq_rel",
                    core.baselineFrequency() / cfg.process.freqNominal);
    return 0;
}
