/**
 * @file
 * Figure 11: processor performance for each environment, normalized to
 * NoVar, under Static / Fuzzy-Dyn / Exh-Dyn adaptation.
 *
 * Paper shape: performance follows the frequency trends of Figure 10
 * with smaller magnitudes (memory time does not scale with f); the
 * preferred scheme gains ~40% over Baseline.
 */

#include "bench_common.hh"

using namespace eval;

int
main()
{
    BenchReporter reporter("fig11_performance");
    ExperimentContext ctx(benchConfig(16));
    const SweepResult sweep =
        runEnvironmentSweep(ctx, figureEnvironments(), allSchemes());

    printEnvironmentFigure(
        sweep, "Figure 11: relative performance (Perf / Perf_NoVar)",
        "perfRel", &SweepCell::perfRel);

    const auto &preferred = sweep.cells.at(SweepResult::key(
        EnvironmentKind::TS_ASV_Q_FU, AdaptScheme::FuzzyDyn));
    std::printf("headline: Baseline PerfR = %.3f; preferred "
                "(TS+ASV+Q+FU, Fuzzy-Dyn) PerfR = %.3f "
                "(+%.0f%% over Baseline)\n",
                sweep.baseline.perfRel.mean(),
                preferred.perfRel.mean(),
                100.0 * (preferred.perfRel.mean() /
                             sweep.baseline.perfRel.mean() -
                         1.0));
    reporter.metric("baseline_perf_rel", sweep.baseline.perfRel.mean());
    reporter.metric("preferred_perf_rel", preferred.perfRel.mean());
    reporter.metric("chips", ctx.config().chips);
    return 0;
}
