/**
 * @file
 * Microbench for the simulation inner loop: per-kernel ns/eval for the
 * PE(f) evaluation (exact and memo-cached), the alpha-power delay
 * scale, the max-frequency-for-budget query, the thermal fixed-point
 * solve, the whole-core evaluation, and the path-population build.
 *
 * Every metric lands in the BENCH_JSON footer so benchtrack can track
 * the per-kernel trajectory alongside the end-to-end figure benches.
 * The grids are fixed (no EVAL_FAST scaling) so runs are comparable
 * across machines and history entries.
 */

#include <array>
#include <chrono>
#include <cstdio>

#include "bench_common.hh"
#include "kernels/thermal_batch.hh"

using namespace eval;

namespace {

using Clock = std::chrono::steady_clock;

/** Run @p body @p iters times and return the mean latency in ns. */
template <typename Fn>
double
nsPerCall(std::size_t iters, Fn &&body)
{
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < iters; ++i)
        body(i);
    const auto t1 = Clock::now();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    return ns / static_cast<double>(iters);
}

/** Defeats dead-code elimination across timed sections. */
volatile double g_sink = 0.0;

} // namespace

int
main()
{
    BenchReporter reporter("inner_loop");
    ExperimentConfig cfg = ExperimentConfig::fromEnv();
    cfg.chips = 1;
    const ProcessParams proc = cfg.process;
    ChipFactory factory(proc, cfg.seed);
    const Chip chip = factory.manufacture();

    Rng rng = chip.forkRng(0x1007);
    StageErrorModel logic(
        proc, buildPathPopulation(chip, 0, SubsystemId::Decode,
                                  PathPopulationParams{}, rng));
    StageErrorModel memory(
        proc, buildPathPopulation(chip, 0, SubsystemId::Dcache,
                                  PathPopulationParams{}, rng));

    // Operating-condition grid shaped like an optimizer sweep: every
    // knob-grid Vdd, a band of temperatures, and a band of periods
    // around nominal.  64 x 9 x 5 = 2880 distinct keys -- small enough
    // to live in the PE memo (4096 entries) for the cached metric.
    const double tNom = 1.0 / proc.freqNominal;
    std::vector<double> periods, vdds, temps;
    for (int i = 0; i < 64; ++i)
        periods.push_back(tNom * (0.70 + 0.01 * i));
    for (int i = 0; i < 9; ++i)
        vdds.push_back(0.80 + 0.05 * i);
    for (int i = 0; i < 5; ++i)
        temps.push_back(45.0 + 15.0 * i);
    std::vector<OperatingConditions> ops;
    ops.reserve(vdds.size() * temps.size());
    for (double v : vdds)
        for (double t : temps)
            ops.push_back({v, 0.0, t});

    double sink = 0.0;
    const bool peCacheWas = peCacheEnabled();
    const bool peTableWas = peTableEnabled();

    // --- PE(f) evaluation, exact (memo off, tables off): the
    // golden-mode workhorse.  Alternate logic/memory stages like real
    // sweeps do.  Modes are pinned explicitly because BenchReporter
    // defaults EVAL_PE_TABLE on for end-to-end benches.
    setPeCacheEnabled(false);
    setPeTableEnabled(false);
    {
        const std::size_t n = periods.size() * ops.size();
        const double ns = nsPerCall(2 * n, [&](std::size_t i) {
            const StageErrorModel &m = (i & 1) ? memory : logic;
            const double p = periods[i % periods.size()];
            sink += m.errorRatePerAccess(p, ops[(i / 2) % ops.size()]);
        });
        reporter.metric("pe_eval_exact_ns", ns);
        std::printf("pe_eval_exact        %10.1f ns/eval\n", ns);
    }

    // --- PE(f) evaluation, table-accelerated scale (memo off): the
    // bench/optimizer fast path (EVAL_PE_TABLE).
    setPeTableEnabled(true);
    {
        const std::size_t n = periods.size() * ops.size();
        const double ns = nsPerCall(2 * n, [&](std::size_t i) {
            const StageErrorModel &m = (i & 1) ? memory : logic;
            const double p = periods[i % periods.size()];
            sink += m.errorRatePerAccess(p, ops[(i / 2) % ops.size()]);
        });
        reporter.metric("pe_eval_table_ns", ns);
        std::printf("pe_eval_table        %10.1f ns/eval\n", ns);
    }
    setPeTableEnabled(false);

    // --- PE(f) evaluation, memo-cached: steady-state repeat queries.
    // 64 periods x 5 conditions = 320 keys, far below the 4096-entry
    // direct-mapped memo so collisions stay rare and the metric tracks
    // the hit path, not eviction thrash.
    setPeCacheEnabled(true);
    {
        const std::size_t nOps = 5;
        const std::size_t n = periods.size() * nOps;
        for (std::size_t i = 0; i < n; ++i)   // warm the memo
            sink += logic.errorRatePerAccess(periods[i % periods.size()],
                                             ops[i / periods.size()]);
        const double ns = nsPerCall(64 * n, [&](std::size_t i) {
            const double p = periods[i % periods.size()];
            sink += logic.errorRatePerAccess(
                p, ops[(i / periods.size()) % nOps]);
        });
        reporter.metric("pe_eval_cached_ns", ns);
        std::printf("pe_eval_cached       %10.1f ns/eval\n", ns);
    }
    setPeCacheEnabled(peCacheWas);
    setPeTableEnabled(peTableWas);

    // --- Alpha-power delay scale (the per-condition scale factor
    // behind every PE query and fvar).
    {
        const double ns = nsPerCall(200000, [&](std::size_t i) {
            sink += logic.delayScale(ops[i % ops.size()]);
        });
        reporter.metric("delay_scale_ns", ns);
        std::printf("delay_scale          %10.1f ns/eval\n", ns);
    }

    // --- Max frequency for an error budget (the Freq algorithm's
    // inner query; hits the breakpoint walk).
    {
        const double budgets[] = {0.0, 1e-6, 1e-4, 1e-2};
        const double ns = nsPerCall(100000, [&](std::size_t i) {
            const StageErrorModel &m = (i & 1) ? memory : logic;
            sink += m.maxFrequencyForErrorRate(budgets[i % 4],
                                               ops[i % ops.size()]);
        });
        reporter.metric("max_freq_query_ns", ns);
        std::printf("max_freq_query       %10.1f ns/eval\n", ns);
    }

    // --- Thermal fixed-point solve (one subsystem, memo off: every
    // call runs the full Eq 6-9 iteration).
    const auto power = calibratePower(proc, cfg.powerCal);
    const auto thermal = std::make_shared<const ThermalModel>(proc);
    const bool thermalCacheWas = thermalCacheEnabled();
    setThermalCacheEnabled(false);
    {
        const auto &pp = power[static_cast<std::size_t>(SubsystemId::IntALU)];
        const double ns = nsPerCall(100000, [&](std::size_t i) {
            const double vdd = vdds[i % vdds.size()];
            const double freq = (3.0 + 0.001 * (i % 1000)) * 1e9;
            const SubsystemThermalState st = thermal->solveSubsystem(
                pp, SubsystemId::IntALU, proc.vtMean, vdd, 0.0, freq,
                0.8, 45.0 + (i % 7));
            sink += st.tempC + st.power();
        });
        reporter.metric("thermal_solve_ns", ns);
        std::printf("thermal_solve        %10.1f ns/solve\n", ns);
    }

    // --- Thermal solve, memo-cached: steady-state repeat queries
    // (9 Vdds x 7 sink temps = 63 keys, far below the 16384-entry
    // memo).
    setThermalCacheEnabled(true);
    {
        const auto &pp = power[static_cast<std::size_t>(SubsystemId::IntALU)];
        const double ns = nsPerCall(200000, [&](std::size_t i) {
            const double vdd = vdds[i % vdds.size()];
            const SubsystemThermalState st = thermal->solveSubsystem(
                pp, SubsystemId::IntALU, proc.vtMean, vdd, 0.0, 3.5e9,
                0.8, 45.0 + (i % 7));
            sink += st.tempC + st.power();
        });
        reporter.metric("thermal_solve_cached_ns", ns);
        std::printf("thermal_solve_cached %10.1f ns/solve\n", ns);
    }

    // --- Batched thermal solve: all 15 subsystems of a core in one
    // lockstep call, reported per lane (memo off isolates the solver).
    setThermalCacheEnabled(false);
    {
        std::array<SubsystemThermalRequest, kNumSubsystems> reqs;
        std::array<SubsystemThermalState, kNumSubsystems> out;
        for (std::size_t s = 0; s < kNumSubsystems; ++s) {
            reqs[s].power = power[s];
            reqs[s].id = static_cast<SubsystemId>(s);
            reqs[s].vt0 = proc.vtMean;
            reqs[s].vdd = 1.0;
            reqs[s].vbb = 0.0;
            reqs[s].freqHz = 3.5e9;
            reqs[s].alphaF = 0.8;
        }
        const double ns = nsPerCall(20000, [&](std::size_t i) {
            reqs[i % kNumSubsystems].vdd = vdds[i % vdds.size()];
            thermal->solveMany(reqs.data(), out.data(), kNumSubsystems,
                               45.0 + (i % 7));
            sink += out[i % kNumSubsystems].tempC;
        });
        reporter.metric("thermal_batch_lane_ns",
                        ns / static_cast<double>(kNumSubsystems));
        std::printf("thermal_batch_lane   %10.1f ns/lane\n",
                    ns / static_cast<double>(kNumSubsystems));
    }
    setThermalCacheEnabled(thermalCacheWas);

    // --- Whole-core evaluation (15 subsystems: thermal + PE + power),
    // the optimizer's candidate-cost unit.
    {
        CoreSystemModel core(chip, 0, power, cfg.powerCal, thermal);
        const OperatingPoint op = nominalOperatingPoint(proc);
        ActivityVector act;
        for (std::size_t s = 0; s < kNumSubsystems; ++s) {
            act.alpha[s] = 0.5;
            act.rho[s] = 0.4;
        }
        const double us = 1e-3 * nsPerCall(2000, [&](std::size_t i) {
            const CoreEvaluation ev =
                core.evaluate(op, act, 42.0 + 0.01 * (i % 256));
            sink += ev.totalPowerW + ev.pePerInstruction;
        });
        reporter.metric("core_evaluate_us", us);
        std::printf("core_evaluate        %10.2f us/eval\n", us);
    }

    // --- Path-population build (manufacturing-time cost; dominated by
    // the per-path alpha-power corner delay).
    {
        const double us = 1e-3 * nsPerCall(200, [&](std::size_t i) {
            Rng r = chip.forkRng(0x2000 + i);
            const PathPopulation pop = buildPathPopulation(
                chip, 0, SubsystemId::Icache, PathPopulationParams{}, r);
            sink += pop.paths.back().delayRef;
        });
        reporter.metric("path_build_us", us);
        std::printf("path_build           %10.2f us/build\n", us);
    }

    g_sink = sink;
    return 0;
}
