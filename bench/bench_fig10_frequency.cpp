/**
 * @file
 * Figure 10: processor frequency for each environment of Table 1,
 * normalized to NoVar, under Static / Fuzzy-Dyn / Exh-Dyn adaptation.
 *
 * Paper shape: Baseline ~0.78; TS adds ~12%; TS+ASV reaches ~0.97
 * static and >1 dynamic; ABB adds little; Q+FU push the dynamic
 * schemes well past NoVar; Fuzzy-Dyn ~ Exh-Dyn everywhere.
 */

#include "bench_common.hh"

using namespace eval;

int
main()
{
    BenchReporter reporter("fig10_frequency");
    ExperimentContext ctx(benchConfig(16));
    const SweepResult sweep =
        runEnvironmentSweep(ctx, figureEnvironments(), allSchemes());

    printEnvironmentFigure(sweep,
                           "Figure 10: relative frequency (f / f_NoVar)",
                           "freqRel", &SweepCell::freqRel);

    // Headline summary rows.
    const auto &preferred = sweep.cells.at(SweepResult::key(
        EnvironmentKind::TS_ASV_Q_FU, AdaptScheme::FuzzyDyn));
    std::printf("headline: Baseline fR = %.3f; preferred "
                "(TS+ASV+Q+FU, Fuzzy-Dyn) fR = %.3f "
                "(+%.0f%% over Baseline)\n",
                sweep.baseline.freqRel.mean(),
                preferred.freqRel.mean(),
                100.0 * (preferred.freqRel.mean() /
                             sweep.baseline.freqRel.mean() -
                         1.0));
    reporter.metric("baseline_freq_rel", sweep.baseline.freqRel.mean());
    reporter.metric("preferred_freq_rel", preferred.freqRel.mean());
    reporter.metric("chips", ctx.config().chips);
    return 0;
}
