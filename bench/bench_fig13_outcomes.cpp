/**
 * @file
 * Figure 13: outcome mix of the fuzzy controller system — for each
 * controller invocation the sensors either confirm the configuration
 * (NoChange), find head-room (LowFreq), or catch a violation (Error /
 * Temp / Power) that retuning corrects.
 *
 * Organization follows the paper: technique sets {No opt, FU opt,
 * Queue opt, FU+Queue opt} x voltage environments {A: TS, B: TS+ABB,
 * C: TS+ASV, D: TS+ABB+ASV}.
 */

#include <cctype>

#include "bench_common.hh"

using namespace eval;

namespace {

EnvCapabilities
makeCaps(bool abb, bool asv, bool fu, bool queue)
{
    EnvCapabilities caps;
    caps.timingSpec = true;
    caps.abb = abb;
    caps.asv = asv;
    caps.fuReplication = fu;
    caps.queueResize = queue;
    return caps;
}

} // namespace

int
main()
{
    BenchReporter reporter("fig13_outcomes");
    ExperimentContext ctx(benchConfig(10));
    const auto apps = ctx.selectedApps();

    struct Cell
    {
        std::map<RetuneOutcome, std::uint64_t> counts;
        std::uint64_t total = 0;
    };

    const std::vector<std::pair<std::string, std::pair<bool, bool>>>
        techniques = {{"No opt", {false, false}},
                      {"FU opt", {true, false}},
                      {"Queue opt", {false, true}},
                      {"FU+Queue opt", {true, true}}};
    const std::vector<std::pair<std::string, std::pair<bool, bool>>>
        voltages = {{"A:TS", {false, false}},
                    {"B:TS+ABB", {true, false}},
                    {"C:TS+ASV", {false, true}},
                    {"D:TS+ABB+ASV", {true, true}}};

    TablePrinter table("Figure 13: fuzzy controller outcomes (%)");
    table.header({"techniques", "environment", "NoChange", "LowFreq",
                  "Error", "Temp", "Power", "invocations"});

    std::uint64_t totalInvocations = 0, totalNoChange = 0;
    // Per-voltage-environment tallies (across all technique sets) for
    // the footer metrics: the NoChange+LowFreq share per environment
    // is the shape the golden paper-anchor test pins.
    std::map<std::string, Cell> perEnv;

    // Warm the per-app characterization cache before the chip fan-out
    // starts: the first cell's chips would otherwise all serialize on
    // the cache's call_once and the chips tracker would sit at zero
    // for most of the run.  Distinct apps characterize in parallel.
    // eval-lint: allow(obs-progress-units) warm-up is reported by the
    // characterize.phases tracker inside CharacterizationCache
    globalPool().parallelFor(std::size_t{0}, apps.size(), 1,
                             [&ctx, &apps](std::size_t a) {
                                 ctx.characterizations().get(*apps[a]);
                             });

    // Declare the whole campaign up front (4x4 cells x chips) so the
    // status file shows a true completion fraction from snapshot one.
    ProgressTracker &chipProgress =
        ProgressRegistry::global().tracker("chips");
    chipProgress.addTotal(techniques.size() * voltages.size() *
                          static_cast<std::uint64_t>(
                              ctx.config().chips));

    for (const auto &[techName, tech] : techniques) {
        for (const auto &[envName, volt] : voltages) {
            const EnvCapabilities caps = makeCaps(
                volt.first, volt.second, tech.first, tech.second);

            // One task per chip (each drives its own chip's models);
            // per-chip tallies merge serially in chip order.
            const auto perChip = globalPool().parallelMap(
                static_cast<std::size_t>(ctx.config().chips),
                [&ctx, &apps, &caps, &chipProgress](std::size_t chip) {
                    Cell local;
                    for (std::size_t a = 0; a < apps.size(); ++a) {
                        const AppProfile &app = *apps[a];
                        const std::size_t coreIdx = (chip + a) % 4;
                        CoreSystemModel &core =
                            ctx.coreModel(chip, coreIdx);
                        core.setAppType(app.isFp);
                        FuzzyOptimizer fuzzy(
                            ctx.coreFuzzy(chip, coreIdx, caps));
                        DynamicController ctl(fuzzy, caps,
                                              ctx.config().constraints,
                                              ctx.config().recovery);
                        const auto &chr =
                            ctx.characterizations().get(app);
                        for (std::size_t p = 0; p < chr.phases.size();
                             ++p) {
                            const PhaseAdaptation ad = ctl.adaptPhase(
                                core, p, chr.phases[p].chr, 65.0);
                            if (!ad.reusedSaved) {
                                ++local.counts[ad.outcome];
                                ++local.total;
                            }
                        }
                    }
                    chipProgress.tick();
                    return local;
                });
            Cell cell;
            for (const Cell &local : perChip) {
                for (const auto &[o, n] : local.counts)
                    cell.counts[o] += n;
                cell.total += local.total;
            }

            std::vector<std::string> row{techName, envName};
            for (RetuneOutcome o :
                 {RetuneOutcome::NoChange, RetuneOutcome::LowFreq,
                  RetuneOutcome::Error, RetuneOutcome::Temp,
                  RetuneOutcome::Power}) {
                const double pct =
                    cell.total
                        ? 100.0 * static_cast<double>(cell.counts[o]) /
                              static_cast<double>(cell.total)
                        : 0.0;
                row.push_back(formatDouble(pct, 1));
            }
            row.push_back(std::to_string(cell.total));
            table.row(row);
            totalInvocations += cell.total;
            totalNoChange += cell.counts[RetuneOutcome::NoChange];
            Cell &env = perEnv[envName];
            for (const auto &[o, n] : cell.counts)
                env.counts[o] += n;
            env.total += cell.total;
        }
    }
    table.print();
    std::printf("\npaper shape: NoChange dominates under TS; "
                "NoChange+LowFreq >= ~50%% in every bar; Temp is "
                "infrequent.\n");
    reporter.metric("invocations", static_cast<double>(totalInvocations));
    reporter.metric("no_change_share",
                    totalInvocations
                        ? static_cast<double>(totalNoChange) /
                              static_cast<double>(totalInvocations)
                        : 0.0);
    for (auto &[envName, env] : perEnv) {
        // "A:TS" -> "env_a", "D:TS+ABB+ASV" -> "env_d".
        std::string key = "env_";
        key.push_back(
            static_cast<char>(std::tolower(envName.front())));
        const double total = static_cast<double>(env.total);
        const double good = static_cast<double>(
            env.counts[RetuneOutcome::NoChange] +
            env.counts[RetuneOutcome::LowFreq]);
        reporter.metric(key + "_good_share", env.total ? good / total : 0.0);
        reporter.metric(key + "_error_share",
                        env.total
                            ? static_cast<double>(
                                  env.counts[RetuneOutcome::Error]) /
                                  total
                            : 0.0);
    }
    return 0;
}
