/**
 * @file
 * Figure 9: three-dimensional power vs error-rate vs frequency (a) and
 * power vs error-rate vs performance (b) surfaces for the integer ALU
 * of one sample chip, in the presence of per-subsystem ASV/ABB.
 *
 * For each (power budget, fR) cell we search the knob space for the
 * minimum realizable PE whose subsystem power fits the budget (the
 * Exhaustive construction of Sec 4.3.1).  Output is a long-format CSV
 * (powerW, fR, PE, PerfR).
 */

#include "bench_common.hh"

using namespace eval;

int
main()
{
    BenchReporter reporter("fig09_surfaces");
    ExperimentConfig cfg = ExperimentConfig::fromEnv();
    cfg.chips = 1;
    ExperimentContext ctx(cfg);

    const AppProfile &app = appByName("swim");
    CoreSystemModel &core = ctx.coreModel(0, 0);
    core.setAppType(app.isFp);
    const PhaseCharacterization phase =
        ctx.characterizations().get(app).phases[0].chr;
    // Normalize against the no-variation processor at nominal f on
    // this same phase (avoids cross-phase weighting artifacts).
    const double novar =
        performance(cfg.process.freqNominal, 0.0, phase.perfFull);
    const double thC = 65.0;

    const SubsystemId id = SubsystemId::IntALU;
    const auto idx = static_cast<std::size_t>(id);
    const double alphaF = phase.act.alpha[idx];
    const double rho = phase.act.rho[idx];
    KnobSpace knobs;   // full ASV+ABB space

    std::printf("# Figure 9: min-PE surface for IntALU (swim, chip 0)\n");
    std::printf("powerW,fR,PE,PerfR\n");
    std::size_t cells = 0;
    for (double budget = 0.4; budget <= 3.2 + 1e-9; budget += 0.4) {
        for (double fr = 0.80; fr <= 1.40 + 1e-9; fr += 0.05) {
            const double freq = fr * cfg.process.freqNominal;
            double bestPe = 1.0;
            bool feasible = false;
            for (double vdd : knobs.vdd.values()) {
                for (double vbb : knobs.vbb.values()) {
                    const auto sol = core.evaluateSubsystem(
                        id, false, freq, {vdd, vbb}, alphaF, rho, thC);
                    if (!sol.functional ||
                        sol.thermal.power() > budget ||
                        sol.thermal.tempC >
                            cfg.constraints.tMaxC) {
                        continue;
                    }
                    feasible = true;
                    bestPe = std::min(bestPe, sol.peAccess);
                }
            }
            if (!feasible)
                continue;
            // (b): performance if the rest of the processor were error
            // free and this subsystem contributed rho * PE recoveries.
            const double perf =
                performance(freq, rho * bestPe, phase.perfFull) / novar;
            std::printf("%.2f,%.2f,%.3e,%.4f\n", budget, fr, bestPe,
                        perf);
            ++cells;
        }
    }

    std::printf("\n# Reading the surface: at constant power, PE stays "
                "~0 then rises steeply with fR (line 1 of Fig 9a);\n"
                "# spending more power sustains a higher fR at the "
                "same PE (line 2).\n");
    reporter.metric("feasible_cells", static_cast<double>(cells));
    return 0;
}
