/**
 * @file
 * Related-work comparison (Sec 7): dynamic retiming (ReCycle-style)
 * vs the EVAL framework.  The paper argues EVAL is the more powerful
 * approach — retiming only redistributes slack at a safe clock, while
 * EVAL trades error rate for frequency, reshapes per-stage delay and
 * power with ASV, and manages several techniques at once — reporting
 * ~10-20% for retiming against ~40% for EVAL over the Baseline.
 */

#include "bench_common.hh"
#include "core/retiming.hh"

using namespace eval;

int
main()
{
    BenchReporter reporter("related_retiming");
    ExperimentContext ctx(benchConfig(12));
    const ExperimentConfig &cfg = ctx.config();
    const auto apps = ctx.selectedApps();

    RunningStats baseF, retimeF, evalF;
    RunningStats basePerf, evalPerf;

    for (int chip = 0; chip < cfg.chips; ++chip) {
        CoreSystemModel &core = ctx.coreModel(chip, chip % 4);
        baseF.add(core.baselineFrequency() / cfg.process.freqNominal);
        retimeF.add(retimedFrequency(core) / cfg.process.freqNominal);

        const AppProfile &app = *apps[chip % apps.size()];
        const AppRunResult base = ctx.runApp(
            chip, chip % 4, app, EnvironmentKind::Baseline,
            AdaptScheme::Static);
        const AppRunResult ev = ctx.runApp(
            chip, chip % 4, app, EnvironmentKind::TS_ASV_Q_FU,
            AdaptScheme::FuzzyDyn);
        basePerf.add(base.perfRel);
        evalF.add(ev.freqRel);
        evalPerf.add(ev.perfRel);
    }

    TablePrinter table("Sec 7: dynamic retiming vs EVAL");
    table.header({"scheme", "mean fR", "freq gain over Baseline"});
    table.row({"Baseline (worst-case rated)",
               formatDouble(baseF.mean(), 3), "-"});
    table.row({"Dynamic retiming (ReCycle-style)",
               formatDouble(retimeF.mean(), 3),
               formatPercent(retimeF.mean() / baseF.mean() - 1.0, 1)});
    table.row({"EVAL (TS+ASV+Q+FU, Fuzzy-Dyn)",
               formatDouble(evalF.mean(), 3),
               formatPercent(evalF.mean() / baseF.mean() - 1.0, 1)});
    table.print();

    std::printf("\nperformance: Baseline PerfR %.3f -> EVAL PerfR %.3f "
                "(+%.0f%%)\n",
                basePerf.mean(), evalPerf.mean(),
                100.0 * (evalPerf.mean() / basePerf.mean() - 1.0));
    std::printf("paper: retiming gains 10-20%%, EVAL ~40%% (Sec 7).\n");
    reporter.metric("retiming_freq_gain",
                    retimeF.mean() / baseF.mean() - 1.0);
    reporter.metric("eval_freq_gain", evalF.mean() / baseF.mean() - 1.0);
    return 0;
}
