/**
 * @file
 * Chip-level study (our extension of Sec 5's CMP setup): four-app
 * multiprogrammed mixes with per-core adaptation coupled through the
 * shared heat sink.  Shows the TH_MAX constraint in action: hot
 * integer mixes trigger global throttling that memory-bound mixes
 * never see.
 */

#include "bench_common.hh"
#include "cmp/cmp_system.hh"

using namespace eval;

int
main()
{
    BenchReporter reporter("cmp_mixes");
    ExperimentContext ctx(benchConfig(4));

    const std::vector<std::pair<std::string, WorkloadMix>> mixes = {
        {"int-heavy", intHeavyMix()},
        {"fp-heavy", fpHeavyMix()},
        {"mixed", mixedMix()},
        {"mem-bound", memBoundMix()},
    };
    const std::vector<std::pair<EnvironmentKind, AdaptScheme>> setups = {
        {EnvironmentKind::Baseline, AdaptScheme::Static},
        {EnvironmentKind::TS_ASV, AdaptScheme::ExhDyn},
        {EnvironmentKind::TS_ASV_Q_FU, AdaptScheme::FuzzyDyn},
    };

    TablePrinter table("CMP mixes: throughput / chip power / heat sink");
    table.header({"mix", "environment", "throughputRel", "chip W",
                  "TH (C)", "throttle steps"});

    // The campaign is mixes x setups x chips chip-runs; declare it
    // all so the live status fraction is meaningful from the start.
    ProgressTracker &chipProgress =
        ProgressRegistry::global().tracker("chips");
    chipProgress.addTotal(mixes.size() * setups.size() *
                          static_cast<std::uint64_t>(
                              ctx.config().chips));

    double totalThrottleSteps = 0.0;
    for (const auto &[mixName, mix] : mixes) {
        for (const auto &[env, scheme] : setups) {
            // One task per chip; each CmpSystem drives only its own
            // chip's core models.  Accumulate serially in chip order
            // so the stats match a serial run bit for bit.
            const auto perChip = globalPool().parallelMap(
                static_cast<std::size_t>(ctx.config().chips),
                [&ctx, &mix, &chipProgress, env = env, scheme = scheme]
                (std::size_t chip) {
                    CmpSystem cmp(ctx, chip);
                    CmpRunResult res = cmp.runMix(mix, env, scheme);
                    chipProgress.tick();
                    return res;
                });
            RunningStats tput, power, th, throttle;
            for (const CmpRunResult &res : perChip) {
                tput.add(res.throughputRel);
                power.add(res.chipPowerW);
                th.add(res.heatsinkC);
                throttle.add(res.throttleSteps);
                totalThrottleSteps += res.throttleSteps;
            }
            table.row({mixName,
                       std::string(environmentName(env)) + "/" +
                           adaptSchemeName(scheme),
                       formatDouble(tput.mean(), 3),
                       formatDouble(power.mean(), 1),
                       formatDouble(th.mean(), 1),
                       formatDouble(throttle.mean(), 1)});
        }
    }
    table.print();
    std::printf("\nTH_MAX = %.0f C; the heat sink couples the four "
                "per-core controllers (Sec 5's CMP).\n",
                ctx.config().constraints.thMaxC);
    reporter.metric("total_throttle_steps", totalThrottleSteps);
    reporter.metric("chips", ctx.config().chips);
    return 0;
}
