/**
 * @file
 * Ablation: the hardware phase detector (Sec 4.3.2 / Figure 7(a)).
 * Streams phase-scripted applications through the BBV detector and
 * measures (a) how much of execution is spent in stable, correctly
 * re-identified phases (the paper cites 90-95% for SPEC) and (b) how
 * the match threshold trades fragmentation against aliasing.
 */

#include "bench_common.hh"

using namespace eval;

namespace {

struct DetectorScore
{
    double stableShare = 0.0;   ///< intervals re-identified as known
    double purity = 0.0;        ///< majority ground-truth share per id
    std::size_t phases = 0;
};

DetectorScore
scoreDetector(const AppProfile &app, double threshold, int intervals,
              int intervalOps)
{
    SyntheticTrace trace(app, 11);
    PhaseDetector det(threshold, 64);

    std::map<std::size_t, std::map<std::size_t, int>> byDetected;
    int stable = 0;
    MicroOp op;
    std::uint32_t blockLen = 0;
    for (int i = 0; i < intervals; ++i) {
        BbvAccumulator bbv;
        const std::size_t truth = trace.currentPhase();
        for (int k = 0; k < intervalOps; ++k) {
            trace.next(op);
            ++blockLen;
            if (op.cls == OpClass::Branch) {
                bbv.note(op.pc, blockLen);
                blockLen = 0;
            }
        }
        const PhaseDecision d = det.endInterval(bbv);
        if (!d.isNewPhase)
            ++stable;
        ++byDetected[d.phaseId][truth];
    }

    DetectorScore score;
    score.stableShare = static_cast<double>(stable) / intervals;
    score.phases = det.numPhases();
    int pure = 0, total = 0;
    for (const auto &[id, truths] : byDetected) {
        (void)id;
        int best = 0, sum = 0;
        for (const auto &[truth, count] : truths) {
            (void)truth;
            best = std::max(best, count);
            sum += count;
        }
        pure += best;
        total += sum;
    }
    score.purity = total ? static_cast<double>(pure) / total : 0.0;
    return score;
}

} // namespace

int
main()
{
    BenchReporter reporter("ablation_phase");
    const std::vector<std::string> apps = {"gcc", "gzip", "perlbmk",
                                           "galgel", "apsi"};

    TablePrinter table("Phase detector: threshold sweep "
                       "(multi-phase apps, 60 intervals each)");
    table.header({"threshold", "stable share", "purity",
                  "phases found (truth: 2-3)"});

    for (double threshold : {0.05, 0.15, 0.25, 0.45, 0.8}) {
        RunningStats stable, purity, phases;
        for (const std::string &name : apps) {
            const DetectorScore s =
                scoreDetector(appByName(name), threshold, 60, 20000);
            stable.add(s.stableShare);
            purity.add(s.purity);
            phases.add(static_cast<double>(s.phases));
        }
        table.row({formatDouble(threshold, 2),
                   formatPercent(stable.mean(), 1),
                   formatPercent(purity.mean(), 1),
                   formatDouble(phases.mean(), 1)});
        // eval-lint: allow(num-float-eq) selects the default-threshold
        // row of the sweep; threshold iterates the literal list above,
        // so the compare is exact by construction.
        if (threshold == 0.25) {
            reporter.metric("stable_share_default", stable.mean());
            reporter.metric("purity_default", purity.mean());
        }
    }
    table.print();

    std::printf("\npaper (Sec 5): stable phases cover 90-95%% of "
                "execution; the default threshold (0.25) should hit "
                "that band with purity ~100%% and a phase count near "
                "the scripted ground truth.  Too tight fragments "
                "(many phases, low stable share); too loose aliases "
                "phases together (purity drops).\n");
    return 0;
}
