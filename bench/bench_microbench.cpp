/**
 * @file
 * Google-benchmark microbenchmarks for the library's hot paths, and
 * for the paper's runtime claims: the fuzzy controller routines take
 * ~6us per invocation on the managed CPU (Sec 4.3.3), which makes
 * phase-granularity adaptation essentially free.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "core/eval.hh"

namespace eval {
namespace {

ExperimentContext &
sharedContext()
{
    static ExperimentConfig cfg = [] {
        ExperimentConfig c = ExperimentConfig::fromEnv();
        c.chips = 1;
        c.simInsts = 60000;
        return c;
    }();
    static ExperimentContext ctx(cfg);
    return ctx;
}

const PhaseCharacterization &
swimPhase()
{
    static const PhaseCharacterization phase =
        sharedContext().characterizations().get(appByName("swim"))
            .phases[0].chr;
    return phase;
}

void
BM_FuzzyInference(benchmark::State &state)
{
    ExperimentContext &ctx = sharedContext();
    const EnvCapabilities caps = environmentCaps(EnvironmentKind::TS_ASV);
    const CoreFuzzySystem &fc = ctx.coreFuzzy(0, 0, caps);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            fc.predictFmax(SubsystemId::Icache, 65.0, 0.3, false));
    }
}
BENCHMARK(BM_FuzzyInference);

void
BM_FuzzyControllerFullInvocation(benchmark::State &state)
{
    // The "6us on a 4GHz processor" claim: one full controller pass
    // over all subsystems (Freq + Power algorithms via FCs).
    ExperimentContext &ctx = sharedContext();
    const EnvCapabilities caps =
        environmentCaps(EnvironmentKind::TS_ASV_Q_FU);
    FuzzyOptimizer fuzzy(ctx.coreFuzzy(0, 0, caps));
    CoreOptimizer opt(fuzzy, caps, ctx.config().constraints,
                      ctx.config().recovery);
    CoreSystemModel &core = ctx.coreModel(0, 0);
    core.setAppType(true);
    const PhaseCharacterization &phase = swimPhase();   // outside timing
    for (auto _ : state)
        benchmark::DoNotOptimize(opt.choose(core, phase, 65.0));
}
BENCHMARK(BM_FuzzyControllerFullInvocation);

void
BM_ExhaustiveFullInvocation(benchmark::State &state)
{
    // What the controller replaces: the same decision by exhaustive
    // search ("too expensive to execute on-the-fly", Sec 4.3.1).
    ExperimentContext &ctx = sharedContext();
    const EnvCapabilities caps =
        environmentCaps(EnvironmentKind::TS_ASV_Q_FU);
    ExhaustiveOptimizer exh(caps, ctx.config().constraints);
    CoreOptimizer opt(exh, caps, ctx.config().constraints,
                      ctx.config().recovery);
    CoreSystemModel &core = ctx.coreModel(0, 0);
    core.setAppType(true);
    const PhaseCharacterization &phase = swimPhase();   // outside timing
    for (auto _ : state)
        benchmark::DoNotOptimize(opt.choose(core, phase, 65.0));
}
BENCHMARK(BM_ExhaustiveFullInvocation);

void
BM_ThermalSolve(benchmark::State &state)
{
    ExperimentContext &ctx = sharedContext();
    const ThermalModel &thermal = *ctx.thermalModel();
    const auto &power =
        ctx.powerParams()[static_cast<std::size_t>(SubsystemId::IntALU)];
    for (auto _ : state) {
        benchmark::DoNotOptimize(thermal.solveSubsystem(
            power, SubsystemId::IntALU, 0.15, 1.1, 0.0, 4.5e9, 0.7,
            65.0));
    }
}
BENCHMARK(BM_ThermalSolve);

void
BM_ErrorRateQuery(benchmark::State &state)
{
    ExperimentContext &ctx = sharedContext();
    const CoreSystemModel &core = ctx.coreModel(0, 0);
    const StageErrorModel &model =
        core.subsystem(SubsystemId::Icache).errorModel(false);
    const OperatingConditions op{1.0, 0.0, 70.0};
    for (auto _ : state)
        benchmark::DoNotOptimize(model.errorRatePerAccess(2.4e-10, op));
}
BENCHMARK(BM_ErrorRateQuery);

void
BM_TraceGeneration(benchmark::State &state)
{
    SyntheticTrace trace(appByName("gcc"), 1);
    MicroOp op;
    for (auto _ : state) {
        trace.next(op);
        benchmark::DoNotOptimize(op);
    }
}
BENCHMARK(BM_TraceGeneration);

void
BM_CoreSimulation(benchmark::State &state)
{
    // Instructions simulated per second by the core model.
    CoreConfig cfg;
    Core core(cfg, 1);
    SyntheticTrace trace(appByName("gzip"), 1);
    core.run(trace, 50000);   // warm
    for (auto _ : state)
        benchmark::DoNotOptimize(core.run(trace, 10000));
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_CoreSimulation);

void
BM_ChipManufacture(benchmark::State &state)
{
    ProcessParams params;
    ChipFactory factory(params, 9);
    for (auto _ : state)
        benchmark::DoNotOptimize(factory.manufacture());
}
BENCHMARK(BM_ChipManufacture);

void
BM_CounterContended(benchmark::State &state)
{
    // StatRegistry hot-path increment under concurrency: parallel
    // per-chip tasks bump shared counters, so the relaxed fetch_add
    // must stay cheap when several threads hammer one cache line.
    static Counter &counter =
        StatRegistry::global().counter("microbench.contended");
    for (auto _ : state)
        counter.inc();
}
BENCHMARK(BM_CounterContended)->Threads(1)->Threads(4);

void
BM_ScopedTimerDisabled(benchmark::State &state)
{
    // The disabled ScopedTimer guarantee: one relaxed atomic load,
    // no lock — also under threads (profiling off is the hot case).
    static TimerStat &timer =
        StatRegistry::global().timer("microbench.disabled_timer");
    for (auto _ : state) {
        ScopedTimer scope(timer);
        benchmark::DoNotOptimize(&scope);
    }
}
BENCHMARK(BM_ScopedTimerDisabled)->Threads(1)->Threads(4);

void
BM_ErrorRateQueryCached(benchmark::State &state)
{
    // Same PE query from several threads: each thread has its own
    // memo cache, so the steady state is a thread-local hit.
    ExperimentContext &ctx = sharedContext();
    const CoreSystemModel &core = ctx.coreModel(0, 0);
    const StageErrorModel &model =
        core.subsystem(SubsystemId::Icache).errorModel(false);
    const OperatingConditions op{1.0, 0.0, 70.0};
    for (auto _ : state)
        benchmark::DoNotOptimize(model.errorRatePerAccess(2.4e-10, op));
}
BENCHMARK(BM_ErrorRateQueryCached)->Threads(4);

void
BM_ScopedSpanDisabled(benchmark::State &state)
{
    // The disabled ScopedSpan guarantee: one relaxed atomic load, no
    // clock read, no allocation — the cost every instrumented hot
    // path pays when --trace-spans is off.
    SpanTracer::global().setEnabled(false);
    for (auto _ : state) {
        ScopedSpan span("microbench.disabled");
        benchmark::DoNotOptimize(&span);
    }
}
BENCHMARK(BM_ScopedSpanDisabled)->Threads(1)->Threads(4);

void
BM_ScopedSpanEnabled(benchmark::State &state)
{
    // Enabled recording: two clock reads plus one append to the
    // thread's own ring under its uncontended mutex.
    SpanTracer::global().setEnabled(true);
    for (auto _ : state) {
        ScopedSpan span("microbench.enabled");
        benchmark::DoNotOptimize(&span);
    }
    SpanTracer::global().setEnabled(false);
    SpanTracer::global().clear();
}
BENCHMARK(BM_ScopedSpanEnabled)->Threads(1)->Threads(4);

void
BM_ScopedSpanEnabledArgs(benchmark::State &state)
{
    // Args are the expensive part (string formatting + vector push);
    // instrumented sites attach a handful at most.
    SpanTracer::global().setEnabled(true);
    for (auto _ : state) {
        ScopedSpan span("microbench.enabled_args");
        span.arg("index", std::size_t{42});
        span.arg("ratio", 0.5);
        benchmark::DoNotOptimize(&span);
    }
    SpanTracer::global().setEnabled(false);
    SpanTracer::global().clear();
}
BENCHMARK(BM_ScopedSpanEnabledArgs);

} // namespace
} // namespace eval

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    eval::BenchReporter reporter("microbench");
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
