/**
 * @file
 * Figure 7(d): itemized area overhead of the EVAL system.  The paper's
 * preferred configuration (no ABB) totals 10.6% of processor area.
 */

#include "bench_common.hh"

using namespace eval;

int
main()
{
    BenchReporter reporter("area_overhead");
    for (const bool withAbb : {false, true}) {
        AreaModelConfig cfg;
        cfg.includeAbb = withAbb;
        TablePrinter table(
            withAbb ? "Figure 7(d) area overhead (with ABB)"
                    : "Figure 7(d) area overhead (preferred, no ABB)");
        table.header({"source", "area (% processor)"});
        for (const AreaItem &item : areaOverhead(cfg))
            table.row({item.source, formatDouble(item.areaPercent, 1)});
        table.print();
        std::printf("\n");
        reporter.metric(withAbb ? "total_area_pct_abb"
                                : "total_area_pct_preferred",
                        totalAreaOverheadPercent(cfg));
    }
    return 0;
}
