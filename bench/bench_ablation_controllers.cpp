/**
 * @file
 * Appendix A comparison: fuzzy controllers vs a perceptron and a
 * quantized-table regressor on the Freq-algorithm learning task.
 * The paper's argument: perceptrons cannot represent non-linear
 * outputs, and table/tree approaches need far more states and memory.
 */

#include "bench_common.hh"
#include "fuzzy/regressors.hh"
#include "util/math_utils.hh"

using namespace eval;

int
main()
{
    BenchReporter reporter("ablation_controllers");
    ExperimentConfig cfg = ExperimentConfig::fromEnv();
    cfg.chips = 1;
    ExperimentContext ctx(cfg);
    CoreSystemModel &core = ctx.coreModel(0, 0);
    const EnvCapabilities caps = environmentCaps(EnvironmentKind::TS_ASV);
    ExhaustiveOptimizer exh(caps, cfg.constraints);
    const KnobSpace knobs = caps.knobSpace();
    const double fNom = cfg.process.freqNominal;

    // The Power-algorithm task: predict the power-optimal Vdd for a
    // subsystem at a given core frequency.  The output is an argmin
    // over a constrained knob scan — strongly non-linear in the
    // inputs, which is exactly the regime Appendix A argues about.
    // (The Freq task is near-linear and even a perceptron handles it.)
    const std::size_t trainN = 4000, evalN = 400;
    const SubsystemId id = SubsystemId::IntQ;
    const SubsystemModel &sub = core.subsystem(id);
    (void)fNom;

    auto sample = [&](Rng &rng, std::vector<double> &x, double &y) {
        for (;;) {
            const double thC = rng.uniform(45.0, 70.0);
            const double alphaF =
                sub.power().alphaRef * rng.uniform(0.1, 2.0);
            const double fmax =
                clamp(exh.maxFrequency(core, id, false, alphaF, thC),
                      knobs.freq.lo(), knobs.freq.hi());
            const double u = rng.uniform();
            const double fcore = knobs.freq.quantizeDown(
                fmax - (fmax - knobs.freq.lo()) * u * u);
            const auto best =
                exh.minimizePower(core, id, false, fcore, alphaF, thC);
            if (!best)
                continue;
            x = {(thC - 45.0) / 25.0,
                 alphaF / (2.0 * sub.power().alphaRef),
                 (fcore - knobs.freq.lo()) /
                     (knobs.freq.hi() - knobs.freq.lo())};
            y = best->vdd;
            return;
        }
    };

    Rng trainRng(11), evalRng(13);
    std::vector<std::vector<double>> trainX(trainN), evalX(evalN);
    std::vector<double> trainY(trainN), evalY(evalN);
    for (std::size_t k = 0; k < trainN; ++k)
        sample(trainRng, trainX[k], trainY[k]);
    for (std::size_t k = 0; k < evalN; ++k)
        sample(evalRng, evalX[k], evalY[k]);

    struct Entry
    {
        std::string name;
        std::unique_ptr<Regressor> reg;
    };
    std::vector<Entry> regressors;
    regressors.push_back({"perceptron (linear)",
                          std::make_unique<PerceptronRegressor>(3)});
    regressors.push_back({"table 4^3",
                          std::make_unique<TableRegressor>(3, 4)});
    regressors.push_back({"table 16^3",
                          std::make_unique<TableRegressor>(3, 16)});

    TablePrinter table("Appendix A: controller families on the "
                       "Power-algorithm Vdd task (IntQ)");
    table.header({"controller", "mean |err| (mV)", "state (bytes)"});

    // Fuzzy controller, trained with the Appendix A procedure.
    {
        FuzzyController fc(25, 3);
        Rng rng(17);
        for (std::size_t k = 0; k < trainN; ++k)
            fc.train(trainX[k], trainY[k], 0.04, rng);
        RunningStats err;
        for (std::size_t k = 0; k < evalN; ++k)
            err.add(std::abs(fc.infer(evalX[k]) - evalY[k]));
        table.row({"fuzzy (25 rules)",
                   formatDouble(err.mean() * 1000.0, 1),
                   std::to_string(fc.footprintBytes())});
        reporter.metric("fuzzy_err_mv", err.mean() * 1000.0);
        reporter.metric("fuzzy_footprint_bytes",
                        static_cast<double>(fc.footprintBytes()));
    }
    for (auto &entry : regressors) {
        for (std::size_t k = 0; k < trainN; ++k)
            entry.reg->train(trainX[k], trainY[k]);
        RunningStats err;
        for (std::size_t k = 0; k < evalN; ++k)
            err.add(std::abs(entry.reg->predict(evalX[k]) - evalY[k]));
        table.row({entry.name, formatDouble(err.mean() * 1000.0, 1),
                   std::to_string(entry.reg->footprintBytes())});
    }
    table.print();
    std::printf("\npaper claim (Appendix A): FCs beat perceptrons "
                "(non-linear outputs) and need fewer states/memory than "
                "table/tree learners at the same accuracy.\n"
                "observed: the FC clearly beats table learners per byte "
                "of state; our reproduced Vdd mapping is smooth enough "
                "that a linear model also does well here - the FC's "
                "edge (per the paper) is that it keeps working when "
                "the mapping is not linear, at the same tiny "
                "footprint.\n");
    return 0;
}
