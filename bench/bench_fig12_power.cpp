/**
 * @file
 * Figure 12: average power per processor (core + L1 + L2, plus the
 * checker in TS environments) for each environment and scheme.
 *
 * Paper shape: NoVar ~25W against a 30W cap, Baseline ~17W (it runs
 * slower), power rising as mitigation techniques are added, with the
 * preferred dynamic scheme using essentially the whole 30W budget.
 */

#include "bench_common.hh"

using namespace eval;

int
main()
{
    BenchReporter reporter("fig12_power");
    ExperimentContext ctx(benchConfig(16));
    const SweepResult sweep =
        runEnvironmentSweep(ctx, figureEnvironments(), allSchemes());

    printEnvironmentFigure(sweep,
                           "Figure 12: power per processor (W)",
                           "powerW", &SweepCell::powerW, 1);

    const auto &preferred = sweep.cells.at(SweepResult::key(
        EnvironmentKind::TS_ASV_Q_FU, AdaptScheme::FuzzyDyn));
    std::printf("headline: NoVar %.1f W, Baseline %.1f W, preferred "
                "(Fuzzy-Dyn) %.1f W against PMAX = %.0f W\n",
                sweep.novar.powerW.mean(), sweep.baseline.powerW.mean(),
                preferred.powerW.mean(),
                ctx.config().constraints.pMaxW);
    reporter.metric("baseline_power_w", sweep.baseline.powerW.mean());
    reporter.metric("preferred_power_w", preferred.powerW.mean());
    reporter.metric("pmax_w", ctx.config().constraints.pMaxW);
    return 0;
}
