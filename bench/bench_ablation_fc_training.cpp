/**
 * @file
 * Ablation: fuzzy-controller design space — rule count and training-set
 * size vs prediction error (the paper chose 25 rules and 10,000
 * examples per FC, Figure 7(a)).
 */

#include "bench_common.hh"

using namespace eval;

int
main()
{
    BenchReporter reporter("ablation_fc_training");
    ExperimentConfig cfg = ExperimentConfig::fromEnv();
    cfg.chips = 1;
    ExperimentContext ctx(cfg);
    CoreSystemModel &core = ctx.coreModel(0, 0);

    const EnvCapabilities caps = environmentCaps(EnvironmentKind::TS_ASV);
    ExhaustiveOptimizer exh(caps, cfg.constraints);
    const double fNom = cfg.process.freqNominal;

    TablePrinter table("Ablation: FC rules x training examples "
                       "(mean fmax error, % of nominal)");
    table.header({"rules", "100 ex", "400 ex", "1600 ex", "6400 ex"});

    double paperPointErr = 0.0;
    for (std::size_t rules : {9u, 25u, 49u}) {
        std::vector<std::string> row{std::to_string(rules)};
        for (std::size_t examples : {100u, 400u, 1600u, 6400u}) {
            FuzzyTrainingConfig tcfg;
            tcfg.rules = rules;
            tcfg.examplesPerFc = examples;
            tcfg.seed = 0xAB1A + rules + examples;
            CoreFuzzySystem fc(core, caps, cfg.constraints, tcfg);
            fc.train();

            Rng rng(0xE7A1);
            RunningStats err;
            for (int q = 0; q < 60; ++q) {
                const auto id = static_cast<SubsystemId>(
                    rng.uniformInt(kNumSubsystems));
                const SubsystemModel &sub = core.subsystem(id);
                const double thC = rng.uniform(48.0, 70.0);
                const double alphaF =
                    sub.power().alphaRef * rng.uniform(0.3, 1.8);
                const double fExh =
                    exh.maxFrequency(core, id, false, alphaF, thC);
                const double fFc =
                    fc.predictFmax(id, thC, alphaF, false);
                err.add(std::abs(fFc - fExh) / fNom);
            }
            row.push_back(formatPercent(err.mean(), 2));
            if (rules == 25u && examples == 6400u)
                paperPointErr = err.mean();
        }
        table.row(row);
    }
    table.print();
    std::printf("\npaper setting: 25 rules, 10,000 examples per FC.\n");
    reporter.metric("fmax_err_25rules_6400ex", paperPointErr);
    return 0;
}
