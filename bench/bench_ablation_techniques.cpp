/**
 * @file
 * Ablation: the error-mitigation techniques in isolation.
 *  - Queue resizing: CPI cost of the 3/4 queue vs the frequency gain
 *    of its shifted PE curve (Sec 3.3.2's "room to trade PE for f").
 *  - FU replication: frequency gained by the low-slope implementation
 *    and its power cost (Sec 3.3.1).
 *  - The paper's observation that Q+FU without ASV barely help
 *    (Sec 6.2: ~2%), because nothing pushes the FUs/queues critical.
 */

#include "bench_common.hh"

using namespace eval;

int
main()
{
    BenchReporter reporter("ablation_techniques");
    ExperimentContext ctx(benchConfig(6));
    const ExperimentConfig &cfg = ctx.config();

    // --- Queue resize CPI cost across the suite ---
    TablePrinter qt("Queue resize: CPIcomp full vs 3/4 (phase 0)");
    qt.header({"app", "CPI full", "CPI 3/4", "IPC loss"});
    for (const char *name : {"gzip", "crafty", "swim", "mcf", "lucas"}) {
        const auto &chr = ctx.characterizations().get(appByName(name));
        const double full = chr.phases[0].chr.perfFull.cpiComp;
        const double small = chr.phases[0].chr.perfSmall.cpiComp;
        qt.row({name, formatDouble(full, 3), formatDouble(small, 3),
                formatPercent(small / full - 1.0, 1)});
    }
    qt.print();
    std::printf("\n");

    // --- Per-technique frequency deltas, with and without ASV ---
    struct Combo
    {
        const char *name;
        bool asv, queue, fu;
    };
    const std::vector<Combo> combos = {
        {"TS", false, false, false},
        {"TS+Q", false, true, false},
        {"TS+FU", false, false, true},
        {"TS+Q+FU", false, true, true},
        {"TS+ASV", true, false, false},
        {"TS+ASV+Q", true, true, false},
        {"TS+ASV+FU", true, false, true},
        {"TS+ASV+Q+FU", true, true, true},
    };

    TablePrinter ft("Technique ablation: mean chosen fR (Exh-Dyn)");
    ft.header({"combo", "fR", "delta vs base"});
    std::map<std::string, double> fr;
    const auto apps = ctx.selectedApps();

    ProgressTracker &chipProgress =
        ProgressRegistry::global().tracker("chips");
    chipProgress.addTotal(combos.size() *
                          static_cast<std::uint64_t>(cfg.chips));

    for (const Combo &combo : combos) {
        EnvCapabilities caps;
        caps.timingSpec = true;
        caps.asv = combo.asv;
        caps.queueResize = combo.queue;
        caps.fuReplication = combo.fu;
        ExhaustiveOptimizer exh(caps, cfg.constraints);
        CoreOptimizer opt(exh, caps, cfg.constraints, cfg.recovery);

        // Per-chip fan-out (the shared CoreOptimizer only issues const
        // queries); serial chip-order accumulation keeps the stats
        // bit-identical to a serial run.
        const auto perChip = globalPool().parallelMap(
            static_cast<std::size_t>(cfg.chips),
            [&ctx, &apps, &opt, &cfg, &chipProgress](std::size_t chip) {
                std::vector<double> freqs;
                for (std::size_t a = 0; a < apps.size(); a += 3) {
                    const AppProfile &app = *apps[a];
                    CoreSystemModel &core =
                        ctx.coreModel(chip, (chip + a) % 4);
                    core.setAppType(app.isFp);
                    const auto &phase =
                        ctx.characterizations().get(app).phases[0].chr;
                    const AdaptationResult res =
                        opt.choose(core, phase, 65.0);
                    freqs.push_back(res.op.freq /
                                    cfg.process.freqNominal);
                }
                chipProgress.tick();
                return freqs;
            });
        RunningStats freq;
        for (const auto &freqs : perChip)
            for (double f : freqs)
                freq.add(f);
        fr[combo.name] = freq.mean();
        const double base = combo.asv ? fr["TS+ASV"] : fr["TS"];
        ft.row({combo.name, formatDouble(freq.mean(), 3),
                formatPercent(freq.mean() / base - 1.0, 1)});
    }
    ft.print();
    std::printf("\npaper shape: Q and FU add ~2%% without ASV but "
                "meaningfully more once ASV pushes the FUs and queues "
                "critical (Sec 6.2).\n");
    reporter.metric("freq_rel_ts", fr["TS"]);
    reporter.metric("freq_rel_ts_asv_q_fu", fr["TS+ASV+Q+FU"]);
    return 0;
}
