/**
 * @file
 * Table 2: mean |Fuzzy Controller - Exhaustive| for the selected
 * frequency, Vdd, and Vbb, split by subsystem type (memory / mixed /
 * logic), for the environments TS, TS+ABB, TS+ASV, TS+ABB+ASV.
 *
 * Paper shape: frequency errors of a few percent of nominal, Vdd
 * errors of a couple of percent, Vbb errors of roughly a hundred mV.
 */

#include "bench_common.hh"

using namespace eval;

namespace {

EnvCapabilities
makeCaps(bool abb, bool asv)
{
    EnvCapabilities caps;
    caps.timingSpec = true;
    caps.abb = abb;
    caps.asv = asv;
    return caps;
}

std::size_t
typeIndex(StageType t)
{
    switch (t) {
      case StageType::Memory: return 0;
      case StageType::Mixed:  return 1;
      case StageType::Logic:  return 2;
    }
    return 0;
}

} // namespace

int
main()
{
    BenchReporter reporter("table2_fuzzy_accuracy");
    ExperimentContext ctx(benchConfig(6));
    const double fNom = ctx.config().process.freqNominal;
    const int queriesPerCore =
        static_cast<int>(envInt("EVAL_T2_QUERIES", 40));

    TablePrinter table(
        "Table 2: |Fuzzy - Exhaustive| by subsystem type");
    table.header({"param", "environment", "Memory", "Mixed", "Logic"});

    struct EnvSpec
    {
        const char *name;
        bool abb;
        bool asv;
    };
    const std::vector<EnvSpec> envs = {{"TS", false, false},
                                       {"TS+ABB", true, false},
                                       {"TS+ASV", false, true},
                                       {"TS+ABB+ASV", true, true}};

    // errs[param][env][type]; param 0 = freq, 1 = vdd, 2 = vbb.
    std::vector<std::vector<std::array<RunningStats, 3>>> errs(
        3, std::vector<std::array<RunningStats, 3>>(envs.size()));

    for (std::size_t e = 0; e < envs.size(); ++e) {
        const EnvCapabilities caps = makeCaps(envs[e].abb, envs[e].asv);
        ExhaustiveOptimizer exh(caps, ctx.config().constraints);

        for (int chip = 0; chip < ctx.config().chips; ++chip) {
            const std::size_t coreIdx = chip % 4;
            CoreSystemModel &core = ctx.coreModel(chip, coreIdx);
            const CoreFuzzySystem &fc =
                ctx.coreFuzzy(chip, coreIdx, caps);
            Rng rng(0x7AB2 + chip);

            for (int q = 0; q < queriesPerCore; ++q) {
                const auto id = static_cast<SubsystemId>(
                    rng.uniformInt(kNumSubsystems));
                const SubsystemModel &sub = core.subsystem(id);
                const std::size_t type = typeIndex(sub.info().type);
                const double thC = rng.uniform(48.0, 70.0);
                const double alphaF =
                    sub.power().alphaRef * rng.uniform(0.3, 1.8);

                const double fExh =
                    exh.maxFrequency(core, id, false, alphaF, thC);
                const double fFc =
                    fc.predictFmax(id, thC, alphaF, false);
                errs[0][e][type].add(std::abs(fFc - fExh));

                if (!envs[e].abb && !envs[e].asv)
                    continue;
                const KnobSpace grid = caps.knobSpace();
                const double fcore = grid.freq.quantizeDown(
                    std::max(grid.freq.lo(), 0.9 * fExh));
                const auto kExh = exh.minimizePower(core, id, false,
                                                    fcore, alphaF, thC);
                if (!kExh)
                    continue;
                const SubsystemKnobs kFc =
                    fc.predictKnobs(id, thC, alphaF, false, fcore);
                if (envs[e].asv)
                    errs[1][e][type].add(std::abs(kFc.vdd - kExh->vdd));
                if (envs[e].abb)
                    errs[2][e][type].add(std::abs(kFc.vbb - kExh->vbb));
            }
        }
    }

    // Frequency rows (MHz and % of nominal).
    for (std::size_t e = 0; e < envs.size(); ++e) {
        std::vector<std::string> row{"Freq (MHz)", envs[e].name};
        for (int t = 0; t < 3; ++t) {
            const double mhz = errs[0][e][t].mean() / 1e6;
            row.push_back(formatDouble(mhz, 0) + " (" +
                          formatDouble(100.0 * mhz * 1e6 / fNom, 1) +
                          "%)");
        }
        table.row(row);
    }
    for (std::size_t e = 0; e < envs.size(); ++e) {
        if (!envs[e].asv)
            continue;
        std::vector<std::string> row{"Vdd (mV)", envs[e].name};
        for (int t = 0; t < 3; ++t)
            row.push_back(formatDouble(errs[1][e][t].mean() * 1e3, 0));
        table.row(row);
    }
    for (std::size_t e = 0; e < envs.size(); ++e) {
        if (!envs[e].abb)
            continue;
        std::vector<std::string> row{"Vbb (mV)", envs[e].name};
        for (int t = 0; t < 3; ++t)
            row.push_back(formatDouble(errs[2][e][t].mean() * 1e3, 0));
        table.row(row);
    }
    table.print();
    std::printf("\n%d queries per core, %d chips; paper reports "
                "~135-450 MHz freq error and ~14-24 mV Vdd error.\n",
                queriesPerCore, ctx.config().chips);
    RunningStats freqErrMhz;
    for (std::size_t e = 0; e < envs.size(); ++e) {
        for (int t = 0; t < 3; ++t)
            freqErrMhz.add(errs[0][e][t].mean() / 1e6);
    }
    reporter.metric("mean_freq_err_mhz", freqErrMhz.mean());
    reporter.metric("queries_per_core", queriesPerCore);
    return 0;
}
