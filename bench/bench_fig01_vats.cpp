/**
 * @file
 * Figure 1: the VATS view of variation-induced timing errors.
 *  (a) dynamic path-delay distribution without variation
 *  (b) the same distribution spread out by variation (Tvar > Tnom)
 *  (c) per-stage error rate PE vs frequency
 *  (d) error rate of a multi-stage pipeline (Eq 4)
 */

#include "bench_common.hh"

using namespace eval;

namespace {

Histogram
delayHistogram(const Chip &chip, SubsystemId id)
{
    Rng rng = chip.forkRng(0xF16);
    const PathPopulation pop =
        buildPathPopulation(chip, 0, id, PathPopulationParams{}, rng);
    Histogram h(0.4, 1.4, 50);
    const double tNom = 1.0 / chip.params().freqNominal;
    for (const auto &p : pop.paths)
        h.add(p.delayRef / tNom, p.sensitization);
    return h;
}

} // namespace

int
main()
{
    BenchReporter reporter("fig01_vats");
    ExperimentConfig cfg = ExperimentConfig::fromEnv();
    cfg.chips = 1;
    ProcessParams proc = cfg.process;
    ChipFactory factory(proc, cfg.seed);
    const Chip chip = factory.manufacture();
    const Chip ideal = factory.manufactureIdeal();

    // (a)/(b): sensitization-weighted dynamic path-delay distribution
    // of a logic stage, without and with variation.
    std::printf("== Figure 1(a): path delays without variation "
                "(Decode, delay / Tnom, weighted by exercise rate) ==\n");
    std::fputs(delayHistogram(ideal, SubsystemId::Decode).render(40).c_str(),
               stdout);
    std::printf("\n== Figure 1(b): path delays with variation ==\n");
    std::fputs(delayHistogram(chip, SubsystemId::Decode).render(40).c_str(),
               stdout);

    // (c)/(d): PE vs f per stage and for a 2-stage pipeline (Eq 4).
    Rng rng = chip.forkRng(0xF17);
    StageErrorModel logic(
        proc, buildPathPopulation(chip, 0, SubsystemId::Decode,
                                  PathPopulationParams{}, rng));
    StageErrorModel memory(
        proc, buildPathPopulation(chip, 0, SubsystemId::Icache,
                                  PathPopulationParams{}, rng));
    const OperatingConditions corner = OperatingConditions::nominal(proc);

    SeriesSet series("Figure 1(c)/(d): error rate vs frequency", "fR");
    const std::size_t sLogic = series.addSeries("PE_logic_stage");
    const std::size_t sMem = series.addSeries("PE_memory_stage");
    const std::size_t sPipe = series.addSeries("PE_pipeline_eq4");
    for (double fr = 0.70; fr <= 1.40 + 1e-9; fr += 0.01) {
        const double period = 1.0 / (fr * proc.freqNominal);
        const double peL = logic.errorRatePerAccess(period, corner);
        const double peM = memory.errorRatePerAccess(period, corner);
        series.addSample(fr);
        series.setValue(sLogic, peL);
        series.setValue(sMem, peM);
        // Two-stage pipeline: rho = accesses/instruction per stage.
        series.setValue(sPipe, processorErrorRate({peL, peM},
                                                  {0.8, 0.3}));
    }
    series.print();

    std::printf("\nfvar: logic %.2f GHz, memory %.2f GHz "
                "(Tnom period corresponds to %.2f GHz)\n",
                logic.fvar(corner) / 1e9, memory.fvar(corner) / 1e9,
                proc.freqNominal / 1e9);
    reporter.metric("fvar_logic_ghz", logic.fvar(corner) / 1e9);
    reporter.metric("fvar_memory_ghz", memory.fvar(corner) / 1e9);
    return 0;
}
