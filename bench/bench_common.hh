/**
 * @file
 * Shared driver for the figure/table benches: runs the (environment x
 * scheme x application x chip) sweep of Sec 6 and aggregates the
 * relative frequency / performance / power metrics.
 *
 * Conventions (DESIGN.md Sec 5): EVAL_CHIPS overrides the per-bench
 * default chip count (the paper uses 100); EVAL_SEED, EVAL_APPS and
 * EVAL_FAST are honoured through ExperimentConfig::fromEnv;
 * EVAL_THREADS sizes the global thread pool for the per-chip fan-out
 * (unset = hardware concurrency; results are bit-identical either
 * way, see DESIGN.md Sec 5c).
 *
 * Observability (DESIGN.md "Observability"): every bench constructs a
 * BenchReporter, which prints one machine-readable JSON footer line
 * ("BENCH_JSON {...}") with the bench name, wall-clock seconds, peak
 * RSS, and its key metrics.  The reporter also honours:
 *   EVAL_BENCH_JSON=path   append the footer line to a file
 *   EVAL_STATS_OUT=path    dump the stat registry (JSON, or CSV when
 *                          the path ends in .csv) on exit
 *   EVAL_TRACE_OUT=path    record and export the decision trace
 *   EVAL_TRACE_SPANS=path  record a span timeline, export
 *                          Chrome/Perfetto trace_event JSON
 *   EVAL_PROFILE_OUT=path  export the aggregated span profile
 *                          (profile.json schema, DESIGN.md Sec 5j);
 *                          either span env enables the tracer, and
 *                          the footer gains a compact span_self_ms
 *                          map benchtrack uses for regression blame
 *   EVAL_MANIFEST=path     write the run-provenance manifest
 *                          (default <bench>.manifest.json; set empty
 *                          to disable)
 *   EVAL_PROFILE=1         enable ScopedTimers, print the self-profile
 *   EVAL_STATUS_OUT=path   start the live MetricsSampler: publish a
 *                          status JSON snapshot (progress, chips/sec,
 *                          ETA, RSS, stats) to the path every
 *                          EVAL_STATUS_INTERVAL_MS (default 500) via
 *                          rename-into-place; watch it with eval_top
 *   EVAL_STATUS_PROM=path  also publish Prometheus text exposition
 * The telemetry dump is registered with ExitFlush at construction, so
 * files survive fatal()/uncaught-exception exits mid-bench; the
 * sampler likewise registers a final-snapshot closure.
 *
 * Benches account per-chip fan-out progress through the "chips"
 * ProgressTracker (the obs-progress-units lint rule enforces the
 * wiring); the reporter derives a throughput_chips_per_s footer
 * metric from it, which benchtrack gates as higher-is-better.
 */

#pragma once

#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/eval.hh"
#include "exec/thread_pool.hh"
#include "obs/metrics_sampler.hh"
#include "obs/progress.hh"
#include "stats/stats.hh"
#include "trace/exit_flush.hh"
#include "trace/manifest.hh"
#include "trace/span_tracer.hh"
#include "util/logging.hh"

namespace eval {

/**
 * Uniform bench footer: collects key metrics during the run and, on
 * destruction, prints exactly one line
 *   BENCH_JSON {"bench": "<name>", "wall_clock_s": W, "metrics": {...}}
 * so trajectory tooling can scrape every bench the same way.  Also
 * wires the EVAL_STATS_OUT / EVAL_TRACE_OUT / EVAL_PROFILE env hooks
 * described in the file header.
 */
class BenchReporter
{
  public:
    explicit BenchReporter(std::string name)
        : name_(std::move(name)),
          start_(std::chrono::steady_clock::now())
    {
        // Benches opt in to the parallel execution layer: EVAL_THREADS
        // when set, hardware concurrency otherwise (the library
        // default stays serial).  The resulting thread count is
        // reported in the footer.
        setGlobalThreads(0);
        // Benches default to the PE-table fast path (the library and
        // golden runs default to exact); an explicit EVAL_PE_TABLE in
        // the environment wins either way, so the perf-smoke CI job
        // can pin both modes.
        if (!envHas("EVAL_PE_TABLE"))
            setPeTableEnabled(true);
        if (!envString("EVAL_TRACE_OUT", "").empty())
            DecisionTrace::global().setEnabled(true);
        spansPath_ = envString("EVAL_TRACE_SPANS", "");
        profilePath_ = envString("EVAL_PROFILE_OUT", "");
        if (!spansPath_.empty() || !profilePath_.empty())
            SpanTracer::global().setEnabled(true);
        manifestPath_ =
            envString("EVAL_MANIFEST", name_ + ".manifest.json");
        if (envBool("EVAL_PROFILE", false))
            setProfilingEnabled(true);

        RunManifest::global().setTool(name_);
        RunManifest::global().setThreads(globalThreads());
        if (!spansPath_.empty())
            RunManifest::global().setOutput("trace_spans", spansPath_);
        if (!profilePath_.empty())
            RunManifest::global().setOutput("span_profile",
                                            profilePath_);

        // Live telemetry: publish status snapshots while the bench
        // runs (DESIGN.md Sec 5f).  The sampler registers its own
        // ExitFlush closure so the final snapshot survives crashes.
        const std::string statusPath = envString("EVAL_STATUS_OUT", "");
        const std::string promPath = envString("EVAL_STATUS_PROM", "");
        if (!statusPath.empty() || !promPath.empty()) {
            SamplerConfig sampler;
            sampler.tool = name_;
            sampler.statusPath = statusPath;
            sampler.promPath = promPath;
            sampler.intervalMs = static_cast<std::uint64_t>(
                envInt("EVAL_STATUS_INTERVAL_MS", 500));
            MetricsSampler::global().configure(sampler);
            MetricsSampler::global().start();
            if (!statusPath.empty())
                RunManifest::global().setOutput("status", statusPath);
        }

        // Registered up front so a bench that dies mid-run (fatal(),
        // uncaught exception) still flushes its telemetry files; the
        // destructor triggers the same closure on the normal path.
        flushId_ = ExitFlush::global().add(
            "bench." + name_ + ".telemetry",
            [spans = spansPath_, profile = profilePath_,
             manifest = manifestPath_] {
                const std::string statsPath =
                    envString("EVAL_STATS_OUT", "");
                if (!statsPath.empty()) {
                    if (statsPath.size() > 4 &&
                        statsPath.compare(statsPath.size() - 4, 4,
                                          ".csv") == 0) {
                        StatRegistry::global().writeCsv(statsPath);
                    } else {
                        StatRegistry::global().writeJson(statsPath);
                    }
                }
                const std::string tracePath =
                    envString("EVAL_TRACE_OUT", "");
                if (!tracePath.empty())
                    DecisionTrace::global().writeJsonl(tracePath);
                if (!spans.empty() &&
                    !SpanTracer::global().writeJson(spans))
                    warn("failed to write span trace to ", spans);
                if (!profile.empty() &&
                    !SpanTracer::global().writeProfileJson(profile))
                    warn("failed to write span profile to ", profile);
                if (!manifest.empty() &&
                    !RunManifest::global().write(manifest))
                    warn("failed to write manifest to ", manifest);
                if (envBool("EVAL_PROFILE", false))
                    StatRegistry::global().printProfile();
            });
    }

    BenchReporter(const BenchReporter &) = delete;
    BenchReporter &operator=(const BenchReporter &) = delete;

    void
    metric(const std::string &key, double value)
    {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.9g", value);
        metrics_.emplace_back(key, buf);
    }

    void
    metric(const std::string &key, const std::string &value)
    {
        metrics_.emplace_back(key, "\"" + value + "\"");
    }

    ~BenchReporter()
    {
        const double wallS =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count();

        // Per-chip throughput from the shared progress tracker, so a
        // wall-clock gate cannot hide per-chip regressions when chip
        // counts change (benchtrack gates this higher-is-better).
        if (const ProgressTracker *chips =
                ProgressRegistry::global().find("chips")) {
            const std::uint64_t done = chips->done();
            if (done > 0 && wallS > 0.0) {
                metric("throughput_chips_per_s",
                       static_cast<double>(done) / wallS);
            }
        }

        std::string json = "{\"bench\": \"" + name_ +
                           "\", \"wall_clock_s\": ";
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.3f", wallS);
        json += buf;
        json += ", \"threads\": " + std::to_string(globalThreads());
        json += ", \"peak_rss_kb\": " + std::to_string(peakRssKb());
        if (!spansPath_.empty())
            json += ", \"trace_spans\": \"" + spansPath_ + "\"";

        // Compact per-span self-time map (top spans by self time, in
        // ms) when tracing ran: benchtrack ingests it and names the
        // culprit spans when the wall-clock gate trips.
        if (SpanTracer::global().enabled()) {
            const auto spans = SpanTracer::global().selfTimeByName();
            std::string spanJson;
            std::size_t emitted = 0;
            for (const auto &[span, selfNs] : spans) {
                if (emitted == 8)
                    break;
                std::snprintf(buf, sizeof(buf), "%.3f",
                              static_cast<double>(selfNs) / 1e6);
                spanJson += (emitted ? ", \"" : "\"") + span +
                            "\": " + buf;
                ++emitted;
            }
            if (!spanJson.empty())
                json += ", \"span_self_ms\": {" + spanJson + "}";
        }

        json += ", \"metrics\": {";
        for (std::size_t i = 0; i < metrics_.size(); ++i) {
            json += (i ? ", \"" : "\"") + metrics_[i].first +
                    "\": " + metrics_[i].second;
        }
        json += "}}\n";
        std::fputs(("BENCH_JSON " + json).c_str(), stdout);

        // The file gets the bare object so it is valid JSONL.
        const std::string jsonPath = envString("EVAL_BENCH_JSON", "");
        if (!jsonPath.empty()) {
            if (std::FILE *f = std::fopen(jsonPath.c_str(), "a")) {
                std::fputs(json.c_str(), f);
                std::fclose(f);
            } else {
                warn("cannot append bench footer to '", jsonPath, "'");
            }
            RunManifest::global().setOutput("bench_json", jsonPath);
        }

        RunManifest::global().addStage(name_, wallS);
        // Stop the sampler first: stop() joins the thread, publishes
        // the final (100%-progress) snapshot, and unregisters its
        // ExitFlush closure before the blanket flush below.
        MetricsSampler::global().stop();
        // Normal exit: flush every registered closure (ours included)
        // now, exactly once; the atexit hook then finds nothing left.
        ExitFlush::global().runNow();
    }

  private:
    std::string name_;
    std::chrono::steady_clock::time_point start_;
    std::string spansPath_;
    std::string profilePath_;
    std::string manifestPath_;
    int flushId_ = 0;
    std::vector<std::pair<std::string, std::string>> metrics_;
};

/** Chip count: EVAL_CHIPS if set, otherwise the bench's default. */
inline int
benchChips(int dflt)
{
    int chips = static_cast<int>(envInt("EVAL_CHIPS", dflt));
    if (envBool("EVAL_FAST", false))
        chips = std::min(chips, 6);
    return std::max(chips, 1);
}

/** Build the experiment configuration for a bench (and stamp its
 *  seed + fingerprint into the run manifest). */
inline ExperimentConfig
benchConfig(int defaultChips)
{
    ExperimentConfig cfg = ExperimentConfig::fromEnv();
    cfg.chips = benchChips(defaultChips);
    RunManifest::global().setSeed(cfg.seed);
    RunManifest::global().setConfig(cfg.fingerprint());
    return cfg;
}

/** Aggregated metric set over (chip, app) samples. */
struct SweepCell
{
    RunningStats freqRel;
    RunningStats perfRel;
    RunningStats powerW;
    std::map<RetuneOutcome, std::uint64_t> outcomes;
    std::uint64_t invocations = 0;
};

/** Results of a full environment sweep. */
struct SweepResult
{
    /** [environment][scheme] */
    std::map<std::string, SweepCell> cells;
    SweepCell baseline;
    SweepCell novar;

    static std::string
    key(EnvironmentKind env, AdaptScheme scheme)
    {
        return std::string(environmentName(env)) + "/" +
               adaptSchemeName(scheme);
    }
};

/** The six managed environment groups of Figures 10-12. */
inline std::vector<EnvironmentKind>
figureEnvironments()
{
    return {EnvironmentKind::TS,          EnvironmentKind::TS_ASV,
            EnvironmentKind::TS_ASV_ABB,  EnvironmentKind::TS_ASV_Q,
            EnvironmentKind::TS_ASV_Q_FU, EnvironmentKind::ALL};
}

inline std::vector<AdaptScheme>
allSchemes()
{
    return {AdaptScheme::Static, AdaptScheme::FuzzyDyn,
            AdaptScheme::ExhDyn};
}

/** One chip's sweep samples: [app][baseline, novar, managed...]. */
struct ChipSweepRuns
{
    std::vector<AppRunResult> base;
    std::vector<AppRunResult> novar;
    /** [app * numManaged + (env, scheme) flat index] */
    std::vector<AppRunResult> managed;
};

/**
 * Run the Figure 10-12 sweep.  Each application runs on one core of
 * each chip (core rotates so all four quadrants are exercised).
 *
 * Chips fan out across the global thread pool (one task per chip —
 * each task drives its own per-chip core models; the shared context
 * caches are internally synchronized).  The per-chip samples are then
 * folded into the RunningStats serially in chip order, so the sweep
 * result is bit-identical for every thread count.
 */
inline SweepResult
runEnvironmentSweep(ExperimentContext &ctx,
                    const std::vector<EnvironmentKind> &envs,
                    const std::vector<AdaptScheme> &schemes,
                    bool progress = true)
{
    SweepResult result;
    const auto apps = ctx.selectedApps();
    const int chips = ctx.config().chips;
    const std::size_t numManaged = envs.size() * schemes.size();

    // Prewarm the shared caches (characterizations, NoVar reference)
    // serially so parallel chip tasks do not duplicate that work on
    // their first miss.
    for (const AppProfile *app : apps)
        ctx.novarPerf(*app);

    // Progress accounting is observational only (DESIGN.md Sec 5f):
    // tick() is one relaxed RMW off the bit-identical accumulation
    // path below.
    ProgressTracker &chipProgress =
        ProgressRegistry::global().tracker("chips");
    chipProgress.addTotal(static_cast<std::uint64_t>(chips));

    const auto perChip = globalPool().parallelMap(
        static_cast<std::size_t>(chips), [&](std::size_t chip) {
            ChipSweepRuns runs;
            runs.base.resize(apps.size());
            runs.novar.resize(apps.size());
            runs.managed.resize(apps.size() * numManaged);
            for (std::size_t a = 0; a < apps.size(); ++a) {
                const AppProfile &app = *apps[a];
                const std::size_t core = (chip + a) % 4;
                runs.base[a] = ctx.runApp(chip, core, app,
                                          EnvironmentKind::Baseline,
                                          AdaptScheme::Static);
                runs.novar[a] = ctx.runApp(chip, core, app,
                                           EnvironmentKind::NoVar,
                                           AdaptScheme::Static);
                std::size_t m = a * numManaged;
                for (EnvironmentKind env : envs)
                    for (AdaptScheme scheme : schemes)
                        runs.managed[m++] =
                            ctx.runApp(chip, core, app, env, scheme);
            }
            chipProgress.tick();
            if (progress && !isQuiet()) {
                std::fprintf(stderr, "[bench] chip %zu/%d done\n",
                             chip + 1, chips);
            }
            return runs;
        });

    // Serial accumulation in chip order: RunningStats additions follow
    // exactly the order the serial sweep would use.
    for (int chip = 0; chip < chips; ++chip) {
        const ChipSweepRuns &runs = perChip[chip];
        for (std::size_t a = 0; a < apps.size(); ++a) {
            const AppRunResult &base = runs.base[a];
            result.baseline.freqRel.add(base.freqRel);
            result.baseline.perfRel.add(base.perfRel);
            result.baseline.powerW.add(base.powerW);

            const AppRunResult &nv = runs.novar[a];
            result.novar.freqRel.add(nv.freqRel);
            result.novar.perfRel.add(nv.perfRel);
            result.novar.powerW.add(nv.powerW);

            std::size_t m = a * numManaged;
            for (EnvironmentKind env : envs) {
                for (AdaptScheme scheme : schemes) {
                    const AppRunResult &r = runs.managed[m++];
                    SweepCell &cell =
                        result.cells[SweepResult::key(env, scheme)];
                    cell.freqRel.add(r.freqRel);
                    cell.perfRel.add(r.perfRel);
                    cell.powerW.add(r.powerW);
                    for (RetuneOutcome o : r.outcomes) {
                        ++cell.outcomes[o];
                        ++cell.invocations;
                    }
                }
            }
        }
    }
    return result;
}

/** Print one Figure 10/11/12-style table for the chosen metric. */
inline void
printEnvironmentFigure(const SweepResult &sweep, const std::string &title,
                       const std::string &metricName,
                       RunningStats SweepCell::*metric, int precision = 3)
{
    TablePrinter table(title);
    table.header({"environment", "Static", "Fuzzy-Dyn", "Exh-Dyn"});
    for (EnvironmentKind env : figureEnvironments()) {
        std::vector<std::string> row{environmentName(env)};
        for (AdaptScheme scheme : allSchemes()) {
            const auto it =
                sweep.cells.find(SweepResult::key(env, scheme));
            row.push_back(it == sweep.cells.end()
                              ? "-"
                              : formatDouble((it->second.*metric).mean(),
                                             precision));
        }
        table.row(row);
    }
    table.row({"Baseline (ref)",
               formatDouble((sweep.baseline.*metric).mean(), precision),
               "", ""});
    table.row({"NoVar (ref)",
               formatDouble((sweep.novar.*metric).mean(), precision), "",
               ""});
    table.print();
    std::printf("samples per cell: %zu (%s)\n\n",
                sweep.baseline.freqRel.count(), metricName.c_str());
}

} // namespace eval

