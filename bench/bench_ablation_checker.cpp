/**
 * @file
 * Ablation over the timing-speculation architecture (Sec 3.1): EVAL
 * works with Diva-, Razor-, or Paceline-style error handling; the
 * recovery penalty rp shifts where Perf(f) peaks (Figure 2(a)) and the
 * checker's power overhead eats budget.  The paper picks Diva; this
 * bench shows how much the choice matters.
 */

#include "bench_common.hh"
#include "arch/checker.hh"

using namespace eval;

int
main()
{
    BenchReporter reporter("ablation_checker");
    ExperimentConfig base = ExperimentConfig::fromEnv();
    base.chips = benchChips(8);

    TablePrinter table("Checker architecture ablation "
                       "(TS+ASV, Exh-Dyn, suite mean)");
    table.header({"checker", "rp (cycles)", "power (W)", "area (%)",
                  "fR", "PerfR", "PE (err/inst)"});

    ProgressTracker &chipProgress =
        ProgressRegistry::global().tracker("chips");
    chipProgress.addTotal(CheckerModel::all().size() *
                          static_cast<std::uint64_t>(base.chips));

    RunningStats frSpread;
    for (const CheckerModel &checker : CheckerModel::all()) {
        ExperimentConfig cfg = base;
        cfg.recovery.penaltyCycles = checker.recoveryPenaltyCycles;
        cfg.powerCal.checkerPowerW = checker.powerW;
        ExperimentContext ctx(cfg);
        const auto apps = ctx.selectedApps();

        // Per-chip fan-out; serial chip-order accumulation keeps the
        // stats bit-identical to a serial run.
        const auto perChip = globalPool().parallelMap(
            static_cast<std::size_t>(cfg.chips),
            [&ctx, &apps, &chipProgress](std::size_t chip) {
                std::vector<AppRunResult> runs;
                for (std::size_t a = 0; a < apps.size(); a += 4) {
                    runs.push_back(ctx.runApp(
                        chip, (chip + a) % 4, *apps[a],
                        EnvironmentKind::TS_ASV, AdaptScheme::ExhDyn));
                }
                chipProgress.tick();
                return runs;
            });
        RunningStats fr, perf, pe;
        for (const auto &runs : perChip) {
            for (const AppRunResult &r : runs) {
                fr.add(r.freqRel);
                perf.add(r.perfRel);
                pe.add(r.pePerInstr);
            }
        }

        char peBuf[32];
        std::snprintf(peBuf, sizeof(peBuf), "%.1e", pe.mean());
        table.row({checkerKindName(checker.kind),
                   formatDouble(checker.recoveryPenaltyCycles, 0),
                   formatDouble(checker.powerW, 1),
                   formatDouble(checker.areaPercent, 1),
                   formatDouble(fr.mean(), 3),
                   formatDouble(perf.mean(), 3), peBuf});
        frSpread.add(fr.mean());
    }
    table.print();
    std::printf("\nthe Sec 4.1 argument makes EVAL robust to rp: at "
                "PE_MAX = 1e-4 even Paceline's ~250-cycle recovery "
                "costs ~2.5%% CPI, so the chosen frequency barely "
                "moves — timing speculation is a prerequisite, not a "
                "differentiator.\n");
    reporter.metric("freq_rel_spread", frSpread.max() - frSpread.min());
    reporter.metric("mean_freq_rel", frSpread.mean());
    return 0;
}
