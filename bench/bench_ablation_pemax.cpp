/**
 * @file
 * Ablation: sensitivity to the PE_MAX target (Sec 4.1's claim that the
 * frequency range between PE = 1e-4 and 1e-1 errors/instruction is
 * minuscule, so maximizing f subject to PE <= 1e-4 is near optimal).
 *
 * For one chip and application we sweep PE_MAX and report the chosen
 * frequency, true error rate, and Eq 5 performance.
 */

#include "bench_common.hh"

using namespace eval;

int
main()
{
    BenchReporter reporter("ablation_pemax");
    ExperimentConfig cfg = ExperimentConfig::fromEnv();
    cfg.chips = 1;
    ExperimentContext ctx(cfg);

    const AppProfile &app = appByName("swim");
    CoreSystemModel &core = ctx.coreModel(0, 0);
    core.setAppType(app.isFp);
    const PhaseCharacterization phase =
        ctx.characterizations().get(app).phases[0].chr;
    // Normalize against the no-variation processor at nominal f on
    // this same phase (avoids cross-phase weighting artifacts).
    const double novar =
        performance(cfg.process.freqNominal, 0.0, phase.perfFull);

    TablePrinter table("Ablation: PE_MAX sweep (swim, TS+ASV, Exh)");
    table.header({"PE_MAX (err/inst)", "fR chosen", "true PE",
                  "PerfR", "CPI recovery share"});

    double frAtPaperTarget = 0.0, perfAtPaperTarget = 0.0;
    for (double peMax : {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}) {
        Constraints constraints = cfg.constraints;
        constraints.peMax = peMax;
        const EnvCapabilities caps =
            environmentCaps(EnvironmentKind::TS_ASV);
        ExhaustiveOptimizer exh(caps, constraints);
        CoreOptimizer opt(exh, caps, constraints, cfg.recovery);

        const AdaptationResult res = opt.choose(core, phase, 65.0);
        const CoreEvaluation ev = core.evaluate(res.op, phase.act, 65.0);
        const double perf =
            performance(res.op.freq, ev.pePerInstruction,
                        phase.perfFull) / novar;
        const double recShare =
            ev.pePerInstruction * cfg.recovery.penaltyCycles /
            cpiAt(res.op.freq, ev.pePerInstruction, phase.perfFull);

        char peBuf[32];
        std::snprintf(peBuf, sizeof(peBuf), "%.0e", peMax);
        char trueBuf[32];
        std::snprintf(trueBuf, sizeof(trueBuf), "%.1e",
                      ev.pePerInstruction);
        table.row({peBuf,
                   formatDouble(res.op.freq / cfg.process.freqNominal, 3),
                   trueBuf, formatDouble(perf, 3),
                   formatPercent(recShare, 2)});
        // eval-lint: allow(num-float-eq) selects the PE=1e-4 row of the
        // sweep; peMax iterates the literal list above, so the compare
        // is exact by construction.
        if (peMax == 1e-4) {
            frAtPaperTarget = res.op.freq / cfg.process.freqNominal;
            perfAtPaperTarget = perf;
        }
    }
    table.print();
    std::printf("\npaper claim (Sec 4.1): the f range between PE=1e-4 "
                "and 1e-1 is only 2-3%%, and at 1e-4 the recovery CPI "
                "is negligible.\n");
    reporter.metric("freq_rel_at_pemax_1e-4", frAtPaperTarget);
    reporter.metric("perf_rel_at_pemax_1e-4", perfAtPaperTarget);
    return 0;
}
