/**
 * @file
 * eval_cli — command-line driver over the whole library.
 *
 *   eval_cli chips  [--chips N] [--seed S]
 *       rate each die (Baseline / retimed / limiting subsystem)
 *   eval_cli run    --app swim [--chip 0] [--core 0]
 *                   [--env TS+ASV+Q+FU] [--scheme fuzzy|exh|static]
 *       one adaptation run with per-subsystem detail
 *   eval_cli sweep  [--chips N] [--envs TS,TS+ASV,...]
 *       a mini Figure 10/11/12 table
 *   eval_cli record --app gcc --ops 100000 --out trace.trc
 *   eval_cli replay --trace trace.trc [--insts 50000]
 *   eval_cli fig13  [--chips N] [--seed S] [--apps gzip,swim,applu]
 *                   [--sim-insts K] [--scheme fuzzy|exh] [--out DIR]
 *                   [--shards N] [--in-process] [--resume]
 *                   [--checkpoint-every K] [--text-snapshots]
 *       the sharded Figure 13 population campaign.  With --shards N
 *       the process becomes a supervisor that re-execs itself once
 *       per shard (--shard=i/N workers, concurrent, each with its own
 *       checkpoint in DIR); --resume skips completed shards and
 *       replays interrupted ones from their checkpoints.  Without
 *       --shards it runs the monolithic reference path.  Either way
 *       DIR ends up with byte-identical merged.snap +
 *       merged.stats.json (tests/shard/shard_differential_test).
 *
 * Observability flags (any command; see DESIGN.md "Observability"):
 *   --stats-out=FILE   dump the stat registry on exit (JSON, or CSV
 *                      when FILE ends in .csv)
 *   --trace-out=FILE   record every adaptation decision, export JSONL
 *   --trace-spans=FILE record a span timeline, export Chrome/Perfetto
 *                      trace_event JSON (open in ui.perfetto.dev);
 *                      default from EVAL_TRACE_SPANS.  For a sharded
 *                      fig13 run FILE becomes the MERGED fleet
 *                      timeline (one pid per shard)
 *   --profile-out=FILE export the span profile (exact per-span
 *                      count/inclusive/self times, profile.json
 *                      schema; analyze with eval_prof); default from
 *                      EVAL_PROFILE_OUT, else derived from
 *                      --trace-spans (FILE.profile.json).  For a
 *                      sharded fig13 run this is the merged fleet
 *                      profile
 *   --manifest=FILE    write a run-provenance manifest (git SHA, build
 *                      flags, seed, stage wall times, peak RSS);
 *                      default from EVAL_MANIFEST, "" disables
 *   --profile          enable ScopedTimers and print the self-profile
 *   --status-out=FILE  publish live status snapshots (progress,
 *                      chips/sec, ETA, RSS, stats) to FILE every
 *                      --status-interval-ms (default 500) via
 *                      rename-into-place; watch with eval_top.
 *                      --status-prom=FILE adds Prometheus text
 *                      exposition.  Defaults from EVAL_STATUS_OUT /
 *                      EVAL_STATUS_PROM / EVAL_STATUS_INTERVAL_MS.
 * With any of these flags present the command defaults to `run`.
 * All telemetry files are registered with ExitFlush, so they are
 * written even when the run dies via fatal()/uncaught exception.
 *
 * Execution:
 *   --threads=N        size of the worker pool for the parallel loops
 *                      (default: EVAL_THREADS, else all hardware
 *                      threads; results are identical for any N)
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "core/eval.hh"
#include "exec/thread_pool.hh"
#include "exec/subprocess.hh"
#include "obs/metrics_sampler.hh"
#include "util/logging.hh"
#include "core/retiming.hh"
#include "shard/supervisor.hh"
#include "shard/trace_merge.hh"
#include "shard/worker.hh"
#include "stats/stats.hh"
#include "trace/exit_flush.hh"
#include "trace/manifest.hh"
#include "trace/span_tracer.hh"
#include "util/arg_parser.hh"
#include "workload/trace_file.hh"

using namespace eval;

namespace {

/** Set when a fig13 supervisor routes the span/profile outputs
 *  through the fleet merge: the generic exit-time writers must then
 *  leave those files alone (the merged timeline would be clobbered by
 *  the supervisor's own near-empty tracer). */
bool gFleetOwnsSpans = false;

/** The default profile path rides alongside the trace: x.json ->
 *  x.profile.json. */
std::string
deriveProfilePath(const std::string &spansPath)
{
    const std::string suffix = ".json";
    if (spansPath.size() > suffix.size() &&
        spansPath.compare(spansPath.size() - suffix.size(),
                          suffix.size(), suffix) == 0)
        return spansPath.substr(0, spansPath.size() - suffix.size()) +
               ".profile.json";
    return spansPath + ".profile.json";
}

/** Resolve --trace-spans / --profile-out (flags, env defaults, and
 *  the derived profile path).  Shared by main() and the fig13
 *  supervisor so both agree on where fleet telemetry lands. */
void
spanOutputPaths(const ArgParser &args, std::string &spansOut,
                std::string &profileOut)
{
    const char *spansEnv = std::getenv("EVAL_TRACE_SPANS");
    spansOut = args.getString("trace-spans", spansEnv ? spansEnv : "");
    const char *profEnv = std::getenv("EVAL_PROFILE_OUT");
    profileOut =
        args.getString("profile-out", profEnv ? profEnv : "");
    if (profileOut.empty() && !spansOut.empty())
        profileOut = deriveProfilePath(spansOut);
}

EnvironmentKind
parseEnv(const std::string &name)
{
    for (auto kind : {EnvironmentKind::Baseline, EnvironmentKind::TS,
                      EnvironmentKind::TS_ASV, EnvironmentKind::TS_ASV_ABB,
                      EnvironmentKind::TS_ASV_Q,
                      EnvironmentKind::TS_ASV_Q_FU, EnvironmentKind::ALL,
                      EnvironmentKind::NoVar}) {
        if (name == environmentName(kind))
            return kind;
    }
    EVAL_FATAL("unknown environment '", name,
               "' (try TS, TS+ASV, TS+ASV+Q+FU, ALL, Baseline, NoVar)");
}

AdaptScheme
parseScheme(const std::string &name)
{
    if (name == "static")
        return AdaptScheme::Static;
    if (name == "fuzzy")
        return AdaptScheme::FuzzyDyn;
    if (name == "exh")
        return AdaptScheme::ExhDyn;
    EVAL_FATAL("unknown scheme '", name, "' (static|fuzzy|exh)");
}

ExperimentConfig
configFrom(const ArgParser &args, int defaultChips)
{
    ExperimentConfig cfg = ExperimentConfig::fromEnv();
    cfg.chips = static_cast<int>(args.getInt("chips", defaultChips));
    cfg.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    RunManifest::global().setSeed(cfg.seed);
    RunManifest::global().setConfig(cfg.fingerprint());
    return cfg;
}

int
cmdChips(const ArgParser &args)
{
    ExperimentConfig cfg = configFrom(args, 8);
    ExperimentContext ctx(cfg);

    TablePrinter table("die ratings");
    table.header({"chip", "baseline (GHz)", "retimed (GHz)",
                  "limiting subsystem"});
    for (int c = 0; c < cfg.chips; ++c) {
        CoreSystemModel &core = ctx.coreModel(c, 0);
        const OperatingConditions corner{
            cfg.process.vddNominal * (1.0 - cfg.process.vddDroopGuardband),
            0.0, cfg.process.tempNominalC};
        std::string limiter;
        double fmin = 1e30;
        for (std::size_t i = 0; i < kNumSubsystems; ++i) {
            const auto id = static_cast<SubsystemId>(i);
            double f = core.subsystem(id).errorModel(false).fvar(corner);
            if (id == SubsystemId::Dcache || id == SubsystemId::Icache)
                f *= kRazorL1Margin;
            if (f < fmin) {
                fmin = f;
                limiter = core.subsystem(id).info().name;
            }
        }
        table.row({std::to_string(c),
                   formatDouble(core.baselineFrequency() / 1e9, 2),
                   formatDouble(retimedFrequency(core) / 1e9, 2),
                   limiter});
    }
    table.print();
    return 0;
}

int
cmdRun(const ArgParser &args)
{
    ExperimentConfig cfg = configFrom(args, 4);
    ExperimentContext ctx(cfg);

    const AppProfile &app =
        appByName(args.getString("app", "swim"));
    const auto chip = static_cast<std::size_t>(args.getInt("chip", 0));
    const auto core = static_cast<std::size_t>(args.getInt("core", 0));
    const EnvironmentKind env =
        parseEnv(args.getString("env", "TS+ASV+Q+FU"));
    const AdaptScheme scheme =
        parseScheme(args.getString("scheme", "fuzzy"));

    const AppRunResult r = ctx.runApp(chip, core, app, env, scheme);
    std::printf("%s on chip %zu core %zu under %s / %s:\n",
                app.name.c_str(), chip, core, environmentName(env),
                adaptSchemeName(scheme));
    std::printf("  frequency   %.2f GHz (%.2fx NoVar)\n",
                r.freqRel * cfg.process.freqNominal / 1e9, r.freqRel);
    std::printf("  performance %.2fx NoVar\n", r.perfRel);
    std::printf("  power       %.1f W (cap %.0f W)\n", r.powerW,
                cfg.constraints.pMaxW);
    std::printf("  error rate  %.2e err/inst (cap %.0e)\n", r.pePerInstr,
                cfg.constraints.peMax);
    for (RetuneOutcome o : r.outcomes)
        std::printf("  controller outcome: %s\n", retuneOutcomeName(o));
    return 0;
}

int
cmdSweep(const ArgParser &args)
{
    ExperimentConfig cfg = configFrom(args, 4);
    ExperimentContext ctx(cfg);
    const auto envNames = splitCsvList(
        args.getString("envs", "TS,TS+ASV,TS+ASV+Q+FU"));

    TablePrinter table("sweep (Fuzzy-Dyn, suite mean)");
    table.header({"environment", "fR", "PerfR", "power (W)"});
    const auto apps = ctx.selectedApps();
    for (const std::string &name : envNames) {
        const EnvironmentKind env = parseEnv(name);
        RunningStats fr, pr, pw;
        for (int chip = 0; chip < cfg.chips; ++chip) {
            for (std::size_t a = 0; a < apps.size(); a += 4) {
                const AppRunResult r = ctx.runApp(
                    chip, (chip + a) % 4, *apps[a], env,
                    AdaptScheme::FuzzyDyn);
                fr.add(r.freqRel);
                pr.add(r.perfRel);
                pw.add(r.powerW);
            }
        }
        table.row({name, formatDouble(fr.mean(), 3),
                   formatDouble(pr.mean(), 3),
                   formatDouble(pw.mean(), 1)});
    }
    table.print();
    return 0;
}

int
cmdRecord(const ArgParser &args)
{
    const AppProfile &app = appByName(args.getString("app", "gcc"));
    const auto ops = static_cast<std::uint64_t>(
        args.getInt("ops", 100000));
    const std::string out = args.getString("out", "trace.trc");
    SyntheticTrace trace(app,
                         static_cast<std::uint64_t>(args.getInt("seed",
                                                                1)));
    const std::uint64_t written = recordTrace(trace, ops, out);
    std::printf("recorded %llu ops of %s into %s\n",
                static_cast<unsigned long long>(written),
                app.name.c_str(), out.c_str());
    return 0;
}

int
cmdReplay(const ArgParser &args)
{
    const std::string path = args.getString("trace", "trace.trc");
    FileTrace trace(path, /*loop=*/true);
    CoreConfig cfg;
    Core core(cfg, static_cast<std::uint64_t>(args.getInt("seed", 1)));
    const auto insts = static_cast<std::uint64_t>(
        args.getInt("insts", 50000));
    const CoreStats s = core.run(trace, insts);
    std::printf("replayed %s: IPC %.2f, CPIcomp %.2f, "
                "L2 misses %.2f/1k inst, branch mpki %.1f\n",
                path.c_str(), s.ipc(), s.cpiComp(),
                1000.0 * s.missesPerInstruction(),
                1000.0 * static_cast<double>(s.branchMispredicts) /
                    static_cast<double>(s.instructions));
    return 0;
}

/** Campaign knobs shared by the fig13 worker/supervisor/monolithic
 *  paths.  Apps are pinned explicitly (not via EVAL_APPS) so every
 *  worker process of a sharded run resolves the same suite. */
CampaignConfig
fig13CampaignFrom(const ArgParser &args)
{
    CampaignConfig campaign;
    campaign.experiment = configFrom(args, 8);
    campaign.experiment.simInsts = static_cast<std::uint64_t>(
        args.getInt("sim-insts",
                    static_cast<std::int64_t>(
                        campaign.experiment.simInsts)));
    campaign.experiment.apps =
        splitCsvList(args.getString("apps", "gzip,swim,applu"));
    campaign.scheme = parseScheme(args.getString("scheme", "fuzzy"));
    if (campaign.scheme == AdaptScheme::Static)
        EVAL_FATAL("fig13 is a dynamic-controller campaign "
                   "(--scheme fuzzy|exh)");
    return campaign;
}

int
cmdFig13(const ArgParser &args)
{
    const CampaignConfig campaign = fig13CampaignFrom(args);
    const std::string outDir = args.getString("out", "fig13-out");
    const auto checkpointEvery = static_cast<std::uint64_t>(
        args.getInt("checkpoint-every", 16));
    const bool resume = args.getBool("resume", false);
    const bool binary = !args.getBool("text-snapshots", false);
    const std::string shardArg = args.getString("shard", "");

    if (!shardArg.empty()) {
        // Worker mode: one shard of a supervised run.
        ShardWorkerOptions w;
        if (!parseShardSpec(shardArg, w.spec))
            EVAL_FATAL("bad --shard '", shardArg, "' (want i/N)");
        w.campaign = campaign;
        w.outDir = outDir;
        w.checkpointEvery = checkpointEvery;
        w.resume = resume;
        w.binarySnapshots = binary;

        // Crash-injection hook for check.sh --shard-smoke: SIGKILL
        // the selected shard after K chips, before its checkpoint.
        const auto abortAfter = static_cast<std::uint64_t>(
            envInt("EVAL_SHARD_ABORT_AFTER", 0));
        const auto abortShard = static_cast<std::uint64_t>(
            envInt("EVAL_SHARD_ABORT_SHARD", 0));
        if (abortAfter > 0 && abortShard == w.spec.index)
            w.killAfterChips = abortAfter;

        // Fleet view: unless the user pointed --status-out somewhere,
        // publish this worker's live status under DIR/status/ where
        // `eval_top DIR/status` tails the whole fleet.
        if (!MetricsSampler::global().running()) {
            std::error_code ec;
            std::filesystem::create_directories(shardStatusDir(outDir),
                                                ec);
            SamplerConfig sampler;
            sampler.tool = "eval_cli.fig13";
            sampler.statusPath = shardStatusPath(outDir, w.spec.index);
            MetricsSampler::global().configure(sampler);
            MetricsSampler::global().start();
        }
        return runShardWorker(w);
    }

    const auto shards =
        static_cast<std::uint32_t>(args.getInt("shards", 0));
    if (shards > 0) {
        ShardSupervisorOptions s;
        s.campaign = campaign;
        s.shards = shards;
        s.outDir = outDir;
        s.checkpointEvery = checkpointEvery;
        s.resume = resume;
        s.binarySnapshots = binary;

        // Fleet telemetry: --trace-spans/--profile-out name the
        // MERGED outputs of a sharded run; the per-shard files live
        // under DIR/trace/.  The supervisor's own tracer output is
        // suppressed (gFleetOwnsSpans) so the exit-time writer cannot
        // clobber the merged timeline.
        std::string spansOut;
        std::string profileOut;
        spanOutputPaths(args, spansOut, profileOut);
        if (!spansOut.empty() || !profileOut.empty()) {
            s.traceSpans = true;
            s.mergedTraceOut = spansOut;
            s.fleetProfileOut = profileOut;
            gFleetOwnsSpans = true;
        }

        if (!args.getBool("in-process", false)) {
            // Re-exec this binary once per shard; the supervisor
            // appends --shard=i/N.  --manifest= keeps workers from
            // fighting over the default manifest path.
            s.workerArgv = {Subprocess::selfExePath(),
                            "fig13",
                            "--chips=" + std::to_string(
                                campaign.experiment.chips),
                            "--seed=" + std::to_string(
                                campaign.experiment.seed),
                            "--sim-insts=" + std::to_string(
                                campaign.experiment.simInsts),
                            "--apps=" + args.getString(
                                "apps", "gzip,swim,applu"),
                            "--scheme=" + args.getString(
                                "scheme", "fuzzy"),
                            "--out=" + outDir,
                            "--checkpoint-every=" + std::to_string(
                                checkpointEvery),
                            "--manifest="};
            if (resume)
                s.workerArgv.push_back("--resume");
            if (!binary)
                s.workerArgv.push_back("--text-snapshots");
        }
        const int rc = runShardSupervisor(s);
        if (rc != 0) {
            warn("fig13 sharded run failed (exit ", rc,
                 "); re-run with --resume to continue from the "
                 "checkpoints");
            return rc;
        }
        std::printf("fig13: %d chips across %u shards -> %s, %s\n",
                    campaign.experiment.chips, shards,
                    mergedSnapshotPath(outDir).c_str(),
                    mergedStatsPath(outDir).c_str());
        return 0;
    }

    // Monolithic reference path: same outputs, no sharding machinery.
    const CampaignAccumulator acc = runMonolithic(campaign);
    if (!writeMergedOutputs(acc, outDir, binary))
        return 1;
    std::printf("fig13: %d chips monolithic -> %s, %s "
                "(digest %.0f)\n",
                campaign.experiment.chips,
                mergedSnapshotPath(outDir).c_str(),
                mergedStatsPath(outDir).c_str(), acc.digest());
    return 0;
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: eval_cli <chips|run|sweep|record|replay"
                 "|fig13> "
                 "[--stats-out=FILE] [--trace-out=FILE] [--profile] "
                 "[--threads=N] [options]\n"
                 "(see the file header for options)\n");
    return 2;
}

/** Export stats/trace/profile per the observability flags. */
void
dumpObservability(const std::string &statsOut,
                  const std::string &traceOut, bool profile)
{
    if (!statsOut.empty()) {
        if (statsOut.size() > 4 &&
            statsOut.compare(statsOut.size() - 4, 4, ".csv") == 0) {
            StatRegistry::global().writeCsv(statsOut);
        } else {
            StatRegistry::global().writeJson(statsOut);
        }
    }
    if (!traceOut.empty())
        DecisionTrace::global().writeJsonl(traceOut);
    if (profile)
        StatRegistry::global().printProfile();
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args(argc, argv);

    const std::string statsOut = args.getString("stats-out", "");
    const std::string traceOut = args.getString("trace-out", "");
    std::string spansOut;
    std::string profileOut;
    spanOutputPaths(args, spansOut, profileOut);
    const char *manifestEnv = std::getenv("EVAL_MANIFEST");
    const std::string manifestOut = args.getString(
        "manifest", manifestEnv ? manifestEnv : "manifest.json");
    const bool profile = args.getBool("profile", false);
    const char *statusEnv = std::getenv("EVAL_STATUS_OUT");
    const std::string statusOut =
        args.getString("status-out", statusEnv ? statusEnv : "");
    const char *promEnv = std::getenv("EVAL_STATUS_PROM");
    const std::string statusProm =
        args.getString("status-prom", promEnv ? promEnv : "");
    const std::int64_t statusIntervalMs = args.getInt(
        "status-interval-ms", envInt("EVAL_STATUS_INTERVAL_MS", 500));
    // --threads=N overrides EVAL_THREADS / hardware concurrency (0 =
    // auto); results do not depend on the thread count.
    const std::int64_t threadsArg = args.getInt("threads", 0);
    setGlobalThreads(
        threadsArg > 0 ? static_cast<std::size_t>(threadsArg) : 0);
    if (!traceOut.empty())
        DecisionTrace::global().setEnabled(true);
    if (!spansOut.empty() || !profileOut.empty())
        SpanTracer::global().setEnabled(true);
    if (profile)
        setProfilingEnabled(true);

    RunManifest::global().setTool("eval_cli");
    RunManifest::global().setThreads(globalThreads());
    if (!statsOut.empty())
        RunManifest::global().setOutput("stats", statsOut);
    if (!traceOut.empty())
        RunManifest::global().setOutput("decision_trace", traceOut);
    if (!spansOut.empty())
        RunManifest::global().setOutput("trace_spans", spansOut);
    if (!profileOut.empty())
        RunManifest::global().setOutput("span_profile", profileOut);

    // Live telemetry: start the sampler before the command runs so
    // eval_top can watch the whole campaign (DESIGN.md Sec 5f).
    if (!statusOut.empty() || !statusProm.empty()) {
        SamplerConfig sampler;
        sampler.tool = "eval_cli";
        sampler.statusPath = statusOut;
        sampler.promPath = statusProm;
        sampler.intervalMs = statusIntervalMs > 0
                                 ? static_cast<std::uint64_t>(
                                       statusIntervalMs)
                                 : 500;
        MetricsSampler::global().configure(sampler);
        MetricsSampler::global().start();
        if (!statusOut.empty())
            RunManifest::global().setOutput("status", statusOut);
    }

    // Telemetry survives fatal()/uncaught exceptions: the flush runs
    // from the atexit/terminate hooks, and runNow() below makes the
    // normal path identical (closures run exactly once).
    ExitFlush::global().add(
        "eval_cli.telemetry",
        [statsOut, traceOut, profile, spansOut, profileOut,
         manifestOut] {
            dumpObservability(statsOut, traceOut, profile);
            if (!gFleetOwnsSpans) {
                if (!spansOut.empty() &&
                    !SpanTracer::global().writeJson(spansOut)) {
                    warn("failed to write span trace to ", spansOut);
                }
                if (!profileOut.empty() &&
                    !SpanTracer::global().writeProfileJson(
                        profileOut)) {
                    warn("failed to write span profile to ",
                         profileOut);
                }
            }
            if (!manifestOut.empty() &&
                !RunManifest::global().write(manifestOut)) {
                warn("failed to write manifest to ", manifestOut);
            }
        });

    // With observability flags but no command, default to `run`.
    const bool observing = !statsOut.empty() || !traceOut.empty() ||
                           !spansOut.empty() || !profileOut.empty() ||
                           !statusOut.empty() || profile;
    if (args.positional().empty() && !observing)
        return usage();
    const std::string cmd =
        args.positional().empty() ? "run" : args.positional().front();

    int rc;
    const std::string spanName = "cli." + cmd;
    const std::uint64_t cmdStart = traceNowNs();
    {
        ScopedSpan span(spanName.c_str());
        if (cmd == "chips")
            rc = cmdChips(args);
        else if (cmd == "run")
            rc = cmdRun(args);
        else if (cmd == "sweep")
            rc = cmdSweep(args);
        else if (cmd == "record")
            rc = cmdRecord(args);
        else if (cmd == "replay")
            rc = cmdReplay(args);
        else if (cmd == "fig13")
            rc = cmdFig13(args);
        else
            return usage();
    }
    RunManifest::global().addStage(
        cmd, static_cast<double>(traceNowNs() - cmdStart) / 1e9);

    // Stop the sampler (joins the thread, publishes the final
    // snapshot, removes its ExitFlush closure) before the blanket
    // flush.
    MetricsSampler::global().stop();
    ExitFlush::global().runNow();

    for (const std::string &key : args.unusedKeys())
        warn("unused option --", key);
    return rc;
}
