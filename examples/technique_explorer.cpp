/**
 * @file
 * The EVAL taxonomy of Figure 2: how Tilt, Shift, and Reshape move a
 * subsystem's PE-vs-frequency curve.
 *
 *  - Tilt:    low-slope FU replica (slower onset, same fvar)
 *  - Shift:   3/4-sized SRAM (whole curve moves right)
 *  - Reshape: ASV/ABB (slow subsystem sped up at a power cost)
 *
 * Prints one CSV block per technique; plot PE (log y) vs fR to see
 * the four panels of Figure 2.
 *
 * Run: ./build/examples/technique_explorer
 */

#include <cstdio>

#include "core/eval.hh"

using namespace eval;

namespace {

void
emitCurve(SeriesSet &series, std::size_t col, const StageErrorModel &model,
          const OperatingConditions &op, double fNom, bool newAxis)
{
    std::size_t idx = 0;
    for (double fr = 0.80; fr <= 1.35 + 1e-9; fr += 0.01, ++idx) {
        if (newAxis)
            series.addSample(fr);
        const double pe =
            model.errorRatePerAccess(1.0 / (fr * fNom), op);
        series.setValue(col, pe);
    }
}

} // namespace

int
main()
{
    ProcessParams proc;
    ChipFactory factory(proc, envInt("EVAL_SEED", 1));
    const Chip chip = factory.manufacture();
    const double fNom = proc.freqNominal;
    const OperatingConditions nominal{proc.vddNominal, 0.0, 70.0};

    // --- Tilt: normal vs low-slope FU (IntALU) ---
    {
        Rng rngA = chip.forkRng(1);
        Rng rngB = chip.forkRng(1);   // same variation draw
        PathPopulationParams normal = defaultPathParams(SubsystemId::IntALU);
        PathPopulationParams low = normal;
        low.lowSlope = true;
        StageErrorModel a(proc, buildPathPopulation(chip, 0,
                                                    SubsystemId::IntALU,
                                                    normal, rngA));
        StageErrorModel b(proc, buildPathPopulation(chip, 0,
                                                    SubsystemId::IntALU,
                                                    low, rngB));
        SeriesSet s("Figure 2(b) Tilt: FU replica", "fR");
        const std::size_t c1 = s.addSeries("normal");
        const std::size_t c2 = s.addSeries("low_slope");
        emitCurve(s, c1, a, nominal, fNom, true);
        emitCurve(s, c2, b, nominal, fNom, false);
        s.print();
        std::printf("# fvar: normal %.2f GHz, low-slope %.2f GHz "
                    "(unchanged wall, gentler onset)\n\n",
                    a.fvar(nominal) / 1e9, b.fvar(nominal) / 1e9);
    }

    // --- Shift: full vs 3/4 issue queue (IntQ) ---
    {
        Rng rngA = chip.forkRng(2);
        Rng rngB = chip.forkRng(2);
        PathPopulationParams full = defaultPathParams(SubsystemId::IntQ);
        PathPopulationParams small = full;
        small.shiftFactor = 0.92;
        StageErrorModel a(proc, buildPathPopulation(chip, 0,
                                                    SubsystemId::IntQ,
                                                    full, rngA));
        StageErrorModel b(proc, buildPathPopulation(chip, 0,
                                                    SubsystemId::IntQ,
                                                    small, rngB));
        SeriesSet s("Figure 2(c) Shift: queue resize", "fR");
        const std::size_t c1 = s.addSeries("full_68");
        const std::size_t c2 = s.addSeries("threequarter_51");
        emitCurve(s, c1, a, nominal, fNom, true);
        emitCurve(s, c2, b, nominal, fNom, false);
        s.print();
        std::printf("# fvar: full %.2f GHz, 3/4 %.2f GHz (whole curve "
                    "shifts right; IPC drops slightly)\n\n",
                    a.fvar(nominal) / 1e9, b.fvar(nominal) / 1e9);
    }

    // --- Reshape: ASV/ABB on a slow subsystem (Icache) ---
    {
        Rng rng = chip.forkRng(3);
        StageErrorModel m(proc,
                          buildPathPopulation(
                              chip, 0, SubsystemId::Icache,
                              defaultPathParams(SubsystemId::Icache),
                              rng));
        SeriesSet s("Figure 2(d) Reshape: ASV/ABB", "fR");
        const std::size_t c1 = s.addSeries("vdd_1.00");
        const std::size_t c2 = s.addSeries("vdd_1.15");
        const std::size_t c3 = s.addSeries("vdd_0.90_saves_power");
        emitCurve(s, c1, m, {1.00, 0.0, 70.0}, fNom, true);
        emitCurve(s, c2, m, {1.15, 0.0, 70.0}, fNom, false);
        emitCurve(s, c3, m, {0.90, 0.0, 70.0}, fNom, false);
        s.print();
        std::printf("# raising Vdd pushes the slow subsystem's curve "
                    "right (speed); lowering it on fast subsystems "
                    "saves power: together they reshape the processor "
                    "curve.\n");
    }
    return 0;
}
