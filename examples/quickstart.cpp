/**
 * @file
 * Quickstart: manufacture a variation-afflicted chip, inspect what the
 * variation does to each subsystem, and let the EVAL controller pick
 * an operating point for one application.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/eval.hh"

using namespace eval;

int
main()
{
    // --- 1. An experiment context: chips, calibration, workloads ---
    ExperimentConfig cfg = ExperimentConfig::fromEnv();
    cfg.chips = 4;
    ExperimentContext ctx(cfg);

    std::printf("EVAL quickstart: %d chips at %.1f GHz nominal, "
                "Vdd %.2f V\n\n",
                cfg.chips, cfg.process.freqNominal / 1e9,
                cfg.process.vddNominal);

    // --- 2. How variation slows down one core ---
    CoreSystemModel &core = ctx.coreModel(0, 0);
    TablePrinter table("subsystems of chip 0, core 0");
    table.header({"subsystem", "type", "Vt0 (mV)", "fvar (GHz)",
                  "Rth (K/W)"});
    for (std::size_t i = 0; i < kNumSubsystems; ++i) {
        const auto id = static_cast<SubsystemId>(i);
        const SubsystemModel &sub = core.subsystem(id);
        const OperatingConditions nominal{cfg.process.vddNominal, 0.0,
                                          cfg.process.tempNominalC};
        table.row({sub.info().name, stageTypeName(sub.info().type),
                   formatDouble(sub.vt0True() * 1000.0, 1),
                   formatDouble(sub.errorModel(false).fvar(nominal) / 1e9,
                                2),
                   formatDouble(core.thermal().rth(id), 2)});
    }
    table.print();

    const double fBase = core.baselineFrequency();
    std::printf("\nerror-free (baseline) frequency: %.2f GHz "
                "(%.0f%% of nominal)\n\n",
                fBase / 1e9, 100.0 * fBase / cfg.process.freqNominal);

    // --- 3. Run one application under the preferred environment ---
    const AppProfile &app = appByName("swim");
    for (const auto scheme : {AdaptScheme::Static, AdaptScheme::FuzzyDyn,
                              AdaptScheme::ExhDyn}) {
        const AppRunResult r = ctx.runApp(0, 0, app,
                                          EnvironmentKind::TS_ASV_Q_FU,
                                          scheme);
        std::printf("swim under TS+ASV+Q+FU / %-9s : f=%.2fx  perf=%.2fx "
                    " power=%.1fW  PE=%.1e err/inst\n",
                    adaptSchemeName(scheme), r.freqRel, r.perfRel,
                    r.powerW, r.pePerInstr);
    }

    // Reference points.
    const AppRunResult base = ctx.runApp(0, 0, app,
                                         EnvironmentKind::Baseline,
                                         AdaptScheme::Static);
    const AppRunResult novar = ctx.runApp(0, 0, app,
                                          EnvironmentKind::NoVar,
                                          AdaptScheme::Static);
    std::printf("swim under Baseline               : f=%.2fx  perf=%.2fx "
                " power=%.1fW\n",
                base.freqRel, base.perfRel, base.powerW);
    std::printf("swim under NoVar                  : f=%.2fx  perf=%.2fx "
                " power=%.1fW\n",
                novar.freqRel, novar.perfRel, novar.powerW);
    return 0;
}
