/**
 * @file
 * Speed binning under variation: the economics the paper's intro
 * motivates.  A manufacturer bins each die at its shipping frequency.
 * Worst-case (Baseline) rating wastes the silicon's potential; an
 * EVAL-style part ships with timing speculation + adaptation and bins
 * dramatically higher.
 *
 * Run: ./build/examples/chip_binning        (EVAL_CHIPS to resize)
 */

#include <cstdio>

#include "core/eval.hh"
#include "exec/thread_pool.hh"
#include "obs/progress.hh"

using namespace eval;

int
main()
{
    setGlobalThreads(0);   // EVAL_THREADS, else hardware concurrency
    ExperimentConfig cfg = ExperimentConfig::fromEnv();
    cfg.chips = static_cast<int>(envInt("EVAL_CHIPS", 40));
    ExperimentContext ctx(cfg);

    const AppProfile &app = appByName("gzip");   // binning workload
    const double fNom = cfg.process.freqNominal;

    Histogram baseBins(2.4, 5.2, 14);   // 200 MHz bins
    Histogram evalBins(2.4, 5.2, 14);
    RunningStats baseF, evalF, evalPower;

    // Bin the chips in parallel (one task per chip), then report in
    // chip order so the printout and stats match a serial run.
    struct BinRun
    {
        AppRunResult base, adapted;
    };
    ProgressTracker &chipProgress =
        ProgressRegistry::global().tracker("chips");
    chipProgress.addTotal(static_cast<std::uint64_t>(cfg.chips));
    const auto perChip = globalPool().parallelMap(
        static_cast<std::size_t>(cfg.chips), [&](std::size_t chip) {
            BinRun run;
            run.base = ctx.runApp(chip, 0, app,
                                  EnvironmentKind::Baseline,
                                  AdaptScheme::Static);
            run.adapted = ctx.runApp(chip, 0, app,
                                     EnvironmentKind::TS_ASV_Q_FU,
                                     AdaptScheme::FuzzyDyn);
            chipProgress.tick();
            return run;
        });

    for (int chip = 0; chip < cfg.chips; ++chip) {
        const AppRunResult &base = perChip[chip].base;
        const AppRunResult &adapted = perChip[chip].adapted;

        baseBins.add(base.freqRel * fNom / 1e9);
        evalBins.add(adapted.freqRel * fNom / 1e9);
        baseF.add(base.freqRel);
        evalF.add(adapted.freqRel);
        evalPower.add(adapted.powerW);
        std::printf("chip %2d: baseline %.1f GHz -> EVAL %.1f GHz "
                    "(%.1f W)\n",
                    chip, base.freqRel * fNom / 1e9,
                    adapted.freqRel * fNom / 1e9, adapted.powerW);
    }

    std::printf("\n== shipping-frequency bins, worst-case rated "
                "(GHz) ==\n%s",
                baseBins.render(40).c_str());
    std::printf("\n== shipping-frequency bins, EVAL "
                "(TS+ASV+Q+FU, Fuzzy-Dyn) ==\n%s",
                evalBins.render(40).c_str());
    std::printf("\nmean bin: %.2f GHz -> %.2f GHz (+%.0f%%), "
                "mean power %.1f W (cap %.0f W)\n",
                baseF.mean() * fNom / 1e9, evalF.mean() * fNom / 1e9,
                100.0 * (evalF.mean() / baseF.mean() - 1.0),
                evalPower.mean(), cfg.constraints.pMaxW);
    std::printf("median uplift ships ~%d bins higher at %.1f%% area "
                "cost (Figure 7(d)).\n",
                static_cast<int>((evalF.mean() - baseF.mean()) * fNom /
                                 0.2e9),
                totalAreaOverheadPercent(AreaModelConfig{}));
    return 0;
}
