/**
 * @file
 * Variation atlas: dump a manufactured chip's systematic Vt map as a
 * PGM image (viewable with any image tool) plus a per-subsystem table,
 * so you can *see* the within-die variation the whole framework is
 * built around — the fast and slow regions, the correlation range phi,
 * and where each core's subsystems landed.
 *
 * Run: ./build/examples/variation_atlas [seed]
 * Output: variation_atlas_vt.pgm in the working directory.
 */

#include <cstdio>
#include <fstream>

#include "core/eval.hh"

using namespace eval;

int
main(int argc, char **argv)
{
    const std::uint64_t seed =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                 : static_cast<std::uint64_t>(envInt("EVAL_SEED", 1));

    ProcessParams proc;
    ChipFactory factory(proc, seed);
    const Chip chip = factory.manufacture();

    // Render the systematic Vt field: darker = higher Vt = slower.
    const int res = 256;
    double lo = 1e9, hi = -1e9;
    std::vector<double> field(res * res);
    for (int y = 0; y < res; ++y) {
        for (int x = 0; x < res; ++x) {
            const double v = chip.map().vtSystematicAt(
                (x + 0.5) / res, (y + 0.5) / res);
            field[y * res + x] = v;
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
    }

    const char *path = "variation_atlas_vt.pgm";
    std::ofstream pgm(path, std::ios::binary);
    pgm << "P5\n" << res << " " << res << "\n255\n";
    for (double v : field) {
        const double t = (v - lo) / (hi - lo + 1e-12);
        pgm.put(static_cast<char>(255 - static_cast<int>(t * 255.0)));
    }
    pgm.close();

    std::printf("chip %llu: systematic Vt in [%.1f, %.1f] mV "
                "(mean %.1f mV, range phi = %.2f chip widths)\n",
                static_cast<unsigned long long>(chip.id()), lo * 1e3,
                hi * 1e3, proc.vtMean * 1e3, proc.phi);
    std::printf("wrote %s (darker = slower silicon)\n\n", path);

    // Where did each core's subsystems land?
    for (std::size_t core = 0; core < 4; ++core) {
        TablePrinter table("core " + std::to_string(core));
        table.header({"subsystem", "Vt_sys (mV)", "vs chip mean"});
        for (const auto &info : chip.floorplan().coreSubsystems(core)) {
            const double vt = chip.subsystemVtSys(core, info.id);
            table.row({info.name, formatDouble(vt * 1e3, 1),
                       formatDouble((vt - proc.vtMean) * 1e3, 1)});
        }
        table.print();
        std::printf("\n");
    }

    std::printf("re-run with another seed to stamp out a different "
                "die: ./build/examples/variation_atlas %llu\n",
                static_cast<unsigned long long>(seed + 1));
    return 0;
}
