/**
 * @file
 * End-to-end adaptation timeline (Figure 6): a long-running,
 * phase-changing application streams through the core while the
 * hardware phase detector watches basic-block vectors.  On every phase
 * change the fuzzy controller picks a new operating point (or reuses a
 * saved one), the retuning cycles polish it, and the log shows what
 * the machine did — like watching a server chip manage itself.
 *
 * Run: ./build/examples/adaptive_server
 */

#include <cstdio>

#include "core/eval.hh"

using namespace eval;

int
main()
{
    ExperimentConfig cfg = ExperimentConfig::fromEnv();
    cfg.chips = 1;
    ExperimentContext ctx(cfg);

    const AppProfile &app = appByName("gcc");   // three-phase workload
    CoreSystemModel &core = ctx.coreModel(0, 0);
    core.setAppType(app.isFp);
    const AppCharacterization &chr = ctx.characterizations().get(app);

    const EnvCapabilities caps =
        environmentCaps(EnvironmentKind::TS_ASV_Q_FU);
    FuzzyOptimizer fuzzy(ctx.coreFuzzy(0, 0, caps));
    DynamicController controller(fuzzy, caps, cfg.constraints,
                                 cfg.recovery);

    // Stream the trace; the detector sees one BBV interval per
    // "detection window" and triggers the controller on changes.
    SyntheticTrace trace(app, cfg.seed);
    PhaseDetector detector;
    const int intervalOps = 20000;
    const double intervalMs = cfg.timeline.phaseLengthS * 1000.0 / 6.0;

    std::printf("time(ms)  detector  truth  action      f(GHz)  "
                "Vdd(range)   power(W)  PE(err/inst)\n");

    double nowMs = 0.0;
    MicroOp op;
    std::uint32_t blockLen = 0;
    double thC = 65.0;

    for (int interval = 0; interval < 36; ++interval) {
        BbvAccumulator bbv;
        const std::size_t truth = trace.currentPhase();
        for (int i = 0; i < intervalOps; ++i) {
            trace.next(op);
            ++blockLen;
            if (op.cls == OpClass::Branch) {
                bbv.note(op.pc, blockLen);
                blockLen = 0;
            }
        }
        const PhaseDecision decision = detector.endInterval(bbv);
        nowMs += intervalMs;

        if (!decision.changed) {
            continue;   // same phase: keep running, no interruption
        }

        // The detector's phase id indexes the saved-configuration
        // table; characterization comes from the 20us profiling step
        // (precomputed per ground-truth phase here).
        const PhaseData &phase = chr.phases[truth % chr.phases.size()];
        const PhaseAdaptation ad = controller.adaptPhase(
            core, decision.phaseId, phase.chr, thC);

        double vddLo = 10.0, vddHi = 0.0;
        for (std::size_t i = 0; i < kNumSubsystems; ++i) {
            vddLo = std::min(vddLo, ad.op.knobs[i].vdd);
            vddHi = std::max(vddHi, ad.op.knobs[i].vdd);
        }
        const double power =
            ad.eval.totalPowerW +
            cfg.powerCal.checkerPowerW *
                (ad.op.freq / cfg.process.freqNominal);
        thC = HeatsinkModel{}.tempC(4.0 * power);

        std::printf("%8.1f  phase %-3zu  %-5zu  %-10s  %.2f    "
                    "%.2f-%.2f    %5.1f     %.1e  %s%s\n",
                    nowMs, decision.phaseId, truth,
                    ad.reusedSaved ? "reuse" :
                        retuneOutcomeName(ad.outcome),
                    ad.op.freq / 1e9, vddLo, vddHi, power,
                    ad.eval.pePerInstruction,
                    ad.op.smallQueue ? "[smallQ]" : "",
                    ad.op.lowSlopeFu ? "[lowSlopeFU]" : "");
    }

    std::printf("\ndetector found %zu phases; controller overhead per "
                "adaptation ~%.4f%% of a phase (Figure 6).\n",
                detector.numPhases(),
                100.0 * cfg.timeline.overheadFraction(4));
    return 0;
}
