#include "kernels/fast_math.hh"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "util/logging.hh"

namespace eval {

PowTable::PowTable(double exponent, double lo, double hi, std::size_t n)
    : exponent_(exponent), lo_(lo), hi_(hi)
{
    EVAL_ASSERT(n >= 2 && hi > lo && lo > 0.0,
                "pow table needs a positive range and >= 2 segments");
    const double step = (hi - lo) / static_cast<double>(n);
    invStep_ = static_cast<double>(n) / (hi - lo);
    value_.resize(n + 1);
    slope_.resize(n);
    for (std::size_t i = 0; i <= n; ++i)
        value_[i] = std::pow(lo + step * static_cast<double>(i), exponent);
    for (std::size_t i = 0; i < n; ++i)
        slope_[i] = (value_[i + 1] - value_[i]) * invStep_;

    // Measure the worst-case relative error by sampling every segment
    // densely (the error of a linear interpolant of a convex/concave
    // function peaks in the segment interior, so 8 probes per segment
    // bracket it tightly; the recorded bound gets a 2x safety factor).
    double worst = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        for (int k = 1; k < 8; ++k) {
            const double x =
                lo + step * (static_cast<double>(i) +
                             static_cast<double>(k) / 8.0);
            const double exact = std::pow(x, exponent);
            const double approx = (*this)(x);
            const double rel = std::abs(approx / exact - 1.0);
            if (rel > worst)
                worst = rel;
        }
    }
    maxRelError_ = 2.0 * worst;
}

double
PowTable::operator()(double x) const
{
    if (!(x >= lo_) || x > hi_)
        return std::pow(x, exponent_);   // exact fallback out of range
    std::size_t i = static_cast<std::size_t>((x - lo_) * invStep_);
    if (i >= slope_.size())
        i = slope_.size() - 1;           // x == hi lands on the last node
    const double x0 = lo_ + static_cast<double>(i) / invStep_;
    return value_[i] + slope_[i] * (x - x0);
}

namespace {

std::uint64_t
bitsOf(double v)
{
    std::uint64_t b;
    std::memcpy(&b, &v, sizeof(b));
    return b;
}

} // namespace

const PowTable &
powTableFor(double exponent, double lo, double hi, std::size_t n)
{
    using Key = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t,
                           std::size_t>;
    static std::mutex mutex;
    static std::map<Key, std::unique_ptr<PowTable>> tables;
    std::lock_guard<std::mutex> lock(mutex);
    auto &slot = tables[{bitsOf(exponent), bitsOf(lo), bitsOf(hi), n}];
    if (!slot)
        // eval-lint: allow(perf-hot-alloc) once-per-process table
        // registry; builds at first use, never on the per-op path
        slot = std::make_unique<PowTable>(exponent, lo, hi, n);
    return *slot;
}

} // namespace eval
