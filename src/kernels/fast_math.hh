/**
 * @file
 * Bounded-error fast-math tables for the kernel layer.
 *
 * The alpha-power delay expression spends nearly all of its time in
 * two `std::pow` calls with *fixed* exponents (overdrive^alpha and
 * the mobility temperature ratio^1.5).  A piecewise-linear table over
 * the reachable argument range replaces each with a lookup + one
 * multiply-add, at a relative error that is *measured at build time*
 * by densely sampling every segment and asserted against the bound
 * the PE-table mode advertises (see PeSurface::kScaleRelErrorBound).
 *
 * Tables are only ever used on the EVAL_PE_TABLE fast path; exact
 * mode and the golden record never touch them.
 */

#pragma once

#include <cstddef>
#include <vector>

namespace eval {

/**
 * Piecewise-linear approximation of x^exponent over [lo, hi].
 *
 * Arguments outside [lo, hi] fall back to `std::pow` (exact), so the
 * table is always safe to call; the bound only matters inside the
 * range.  Construction densely samples every segment and records the
 * worst relative error actually measured.
 */
class PowTable
{
  public:
    PowTable(double exponent, double lo, double hi, std::size_t n);

    double operator()(double x) const;

    double exponent() const { return exponent_; }
    double lo() const { return lo_; }
    double hi() const { return hi_; }
    /** Worst |approx/exact - 1| measured over the range at build. */
    double maxRelError() const { return maxRelError_; }

  private:
    double exponent_;
    double lo_;
    double hi_;
    double invStep_;
    double maxRelError_ = 0.0;
    /** Per-node value and per-segment slope (n segments, n+1 nodes). */
    std::vector<double> value_;
    std::vector<double> slope_;
};

/**
 * Process-wide table registry: one shared immutable PowTable per
 * (exponent, lo, hi, n) quadruple.  Thread-safe; tables are built on
 * first use and live for the process lifetime (they are tiny).
 */
const PowTable &powTableFor(double exponent, double lo, double hi,
                            std::size_t n);

} // namespace eval
