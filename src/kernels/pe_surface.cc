#include "kernels/pe_surface.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "kernels/fast_math.hh"
#include "util/logging.hh"

namespace eval {

namespace {

/** Table ranges: chosen to cover everything the knob grid and the
 *  clamped thermal solver can reach (Vdd in [0.80, 1.20], Vbb in
 *  [-0.5, 0.5], T in [-50, 400] C) with headroom; rare excursions
 *  fall back to exact std::pow inside PowTable::operator(). */
constexpr double kOdLo = 0.25, kOdHi = 1.5;
constexpr double kMobLo = 0.5, kMobHi = 1.75;
constexpr std::size_t kPowTableSize = 4096;

} // namespace

PeSurface::PeSurface(const ProcessParams &params, double vt0Mean,
                     double leffMean, std::vector<double> delays,
                     const std::vector<double> &survivalLog)
    : params_(params), delays_(std::move(delays))
{
    EVAL_ASSERT(!delays_.empty() &&
                    survivalLog.size() == delays_.size() + 1,
                "PE surface needs sorted delays + survival logs");

    // Hoisted constants of the legacy delayScale expression, computed
    // with the identical expression trees so per-query results keep
    // their exact bit patterns.
    const OperatingConditions corner = OperatingConditions::nominal(params_);
    const double vtCorner = effectiveVt(params_, params_.vtMean, corner);
    denomCorner_ = rawAlphaPowerDelay(params_, vtCorner, params_.leffMean,
                                      corner.vdd, corner.tempC);
    EVAL_ASSERT(denomCorner_ > 0.0 &&
                    denomCorner_ < kNonFunctionalDelayFactor,
                "design corner must be functional");
    vt0Amp_ = params_.vtMean +
              params_.delayVariationGain * (vt0Mean - params_.vtMean);
    leffAmp_ = params_.leffMean +
               params_.delayVariationGain * (leffMean - params_.leffMean);
    const double vtEffCorner = effectiveVt(params_, vt0Amp_, corner);
    const double numCorner = rawAlphaPowerDelay(
        params_, vtEffCorner, leffAmp_, corner.vdd, corner.tempC);
    EVAL_ASSERT(numCorner < kNonFunctionalDelayFactor,
                "stage must be functional at the design corner");
    atCorner_ = numCorner / denomCorner_;
    EVAL_ASSERT(atCorner_ > 0.0, "corner delay factor must be positive");
    tNomK_ = celsiusToKelvin(params_.tempNominalC);

    odPow_ = &powTableFor(params_.alphaPower, kOdLo, kOdHi, kPowTableSize);
    mobPow_ = &powTableFor(params_.mobilityTempExponent, kMobLo, kMobHi,
                           kPowTableSize);
    EVAL_ASSERT(odPow_->maxRelError() + mobPow_->maxRelError() <
                    0.5 * kScaleRelErrorBound,
                "pow tables must fit the advertised scale error bound");

    // PE levels, precomputed once with the legacy expression (so an
    // exact-mode query returns the very same double the old code
    // computed per call), then verified nonincreasing so the budget
    // walk can become a partition point.
    const std::size_t n = delays_.size();
    levels_.resize(n + 1);
    for (std::size_t i = 0; i <= n; ++i)
        levels_[i] = 1.0 - std::exp(survivalLog[i]);
    for (std::size_t i = 0; i + 1 <= n; ++i)
        EVAL_ASSERT(levels_[i] >= levels_[i + 1],
                    "PE levels must be nonincreasing");

    // Bucket index accelerating upper_bound: K ~= n uniform cells.
    const double lo = delays_.front();
    const double hi = delays_.back();
    if (hi > lo) {
        const std::size_t k = n;
        bucketLo_ = lo;
        bucketInvWidth_ = static_cast<double>(k) / (hi - lo);
        bucketStart_.resize(k);
        auto bucketOf = [&](double x) {
            const double f = (x - bucketLo_) * bucketInvWidth_;
            if (f <= 0.0)
                return std::size_t{0};
            if (f >= static_cast<double>(k))
                return k - 1;
            return static_cast<std::size_t>(f);
        };
        // bucketStart_[b] = first delay index whose bucket is >= b.
        std::size_t idx = 0;
        for (std::size_t b = 0; b < k; ++b) {
            while (idx < n && bucketOf(delays_[idx]) < b)
                ++idx;
            bucketStart_[b] = static_cast<std::uint32_t>(idx);
        }
    }
}

double
PeSurface::scaleExact(const OperatingConditions &op) const
{
    const double vtEff = effectiveVt(params_, vt0Amp_, op);
    const double num = rawAlphaPowerDelay(params_, vtEff, leffAmp_,
                                          op.vdd, op.tempC);
    if (num >= kNonFunctionalDelayFactor)
        return kNonFunctionalDelayFactor;
    const double atOp = num / denomCorner_;
    if (atOp >= kNonFunctionalDelayFactor)
        return kNonFunctionalDelayFactor;
    return atOp / atCorner_;
}

double
PeSurface::scaleFast(const OperatingConditions &op) const
{
    const double vtEff = effectiveVt(params_, vt0Amp_, op);
    const double overdrive = op.vdd - vtEff;
    if (overdrive <= 1e-3)
        return kNonFunctionalDelayFactor;
    const double tK = celsiusToKelvin(op.tempC);
    const double mobility = (*mobPow_)(tNomK_ / tK);
    const double num =
        op.vdd * leffAmp_ / (mobility * (*odPow_)(overdrive));
    if (num >= kNonFunctionalDelayFactor)
        return kNonFunctionalDelayFactor;
    const double atOp = num / denomCorner_;
    if (atOp >= kNonFunctionalDelayFactor)
        return kNonFunctionalDelayFactor;
    return atOp / atCorner_;
}

std::size_t
PeSurface::upperBoundIndex(double threshold) const
{
    const std::size_t n = delays_.size();
    if (bucketStart_.empty())
        return static_cast<std::size_t>(
            std::upper_bound(delays_.begin(), delays_.end(), threshold) -
            delays_.begin());
    const std::size_t k = bucketStart_.size();
    const double f = (threshold - bucketLo_) * bucketInvWidth_;
    std::size_t i;
    if (f <= 0.0) {
        i = 0;
    } else if (f >= static_cast<double>(k)) {
        i = bucketStart_[k - 1];
    } else {
        i = bucketStart_[static_cast<std::size_t>(f)];
    }
    // bucketStart_ guarantees delays_[j] <= threshold for all j < i
    // (their bucket is strictly lower), so this short scan lands on
    // exactly the std::upper_bound index.
    while (i < n && delays_[i] <= threshold)
        ++i;
    return i;
}

std::size_t
PeSurface::firstIndexWithinBudget(double peBudget) const
{
    const std::size_t n = delays_.size();
    // levels_[0..n) is nonincreasing (asserted at construction), so
    // the predicate (level > budget) is partitioned and the partition
    // point equals the index the legacy slowest-down walk found --
    // including the tie rule (level == budget keeps walking down).
    const auto it = std::partition_point(
        levels_.begin(), levels_.begin() + static_cast<std::ptrdiff_t>(n),
        [peBudget](double level) { return level > peBudget; });
    return static_cast<std::size_t>(it - levels_.begin());
}

} // namespace eval
