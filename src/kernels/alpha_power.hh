/**
 * @file
 * Alpha-power-law gate-delay model (Sakurai-Newton) with the Eq 9 Vt
 * modulation used throughout the paper:
 *
 *   Tg  ~  Vdd * Leff / (mu(T) * (Vdd - Vt)^alpha)          (Eq 1)
 *   Vt  =  Vt0 + k1 (T - T0) + k2 (Vdd - Vdd0) + k3 Vbb     (Eq 9)
 *
 * All delays in this library are expressed as *factors* relative to the
 * design corner (nominal Vdd, zero body bias, the design-corner
 * temperature, nominal Vt and Leff), so a factor of 1.10 means "10%
 * slower than a nominal gate at the corner".
 */

#pragma once

#include "variation/process_params.hh"

namespace eval {

/** An electrical operating point for a voltage/bias domain. */
struct OperatingConditions
{
    double vdd;    ///< supply voltage, V
    double vbb;    ///< body bias, V (positive = forward bias)
    double tempC;  ///< junction temperature, C

    static OperatingConditions
    nominal(const ProcessParams &p)
    {
        return {p.vddNominal, 0.0, p.tempNominalC};
    }
};

/**
 * Effective threshold voltage at the given conditions (Eq 9).
 *
 * @param p   process constants
 * @param vt0 threshold at the Vt reference temperature, nominal Vdd,
 *            zero bias (this is the quantity the tester measures)
 */
double effectiveVt(const ProcessParams &p, double vt0,
                   const OperatingConditions &op);

/**
 * Raw (unnormalized) alpha-power delay expression (Eq 1 numerator).
 * Mobility falls as T^-1.5, so delay carries a (T/Tc)^{+1.5} term.
 * Exposed so the kernel layer can hoist the design-corner denominator
 * out of hot loops; `gateDelayFactor` remains the normalized form.
 */
double rawAlphaPowerDelay(const ProcessParams &p, double vtEff, double leff,
                          double vdd, double tempC);

/**
 * Gate-delay factor relative to the design corner.
 *
 * @param p    process constants
 * @param vt0  local threshold voltage (reference conditions)
 * @param leff local normalized channel length
 * @param op   electrical operating point
 * @return delay multiplier; a gate with nominal vt0/leff at the design
 *         corner returns exactly 1.0.  Returns a large saturated value
 *         when Vdd fails to exceed the effective Vt (non-functional).
 */
double gateDelayFactor(const ProcessParams &p, double vt0, double leff,
                       const OperatingConditions &op);

/** Delay factor saturation used when Vdd <= Vt (gate cannot switch). */
constexpr double kNonFunctionalDelayFactor = 1.0e6;

} // namespace eval

