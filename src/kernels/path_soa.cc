#include "kernels/path_soa.hh"

#include <cmath>
#include <vector>

#include "kernels/alpha_power.hh"
#include "kernels/simd.hh"
#include "util/logging.hh"

namespace eval {

void
cornerPathDelays(const ProcessParams &p, double tNom,
                 const double *fraction, const double *vt0,
                 const double *leff, double *delayRef, std::size_t n)
{
    const OperatingConditions corner = OperatingConditions::nominal(p);
    const double vtCorner = effectiveVt(p, p.vtMean, corner);
    const double denom = rawAlphaPowerDelay(p, vtCorner, p.leffMean,
                                            corner.vdd, corner.tempC);
    EVAL_ASSERT(denom > 0.0 && denom < kNonFunctionalDelayFactor,
                "design corner must be functional");

    // eval-lint: allow(perf-hot-alloc) scratch sized once per call
    std::vector<double> od(n), leffAmp(n);

    // Pass 1: amplified deviations and overdrive (vectorizable).
    EVAL_SIMD
    for (std::size_t i = 0; i < n; ++i) {
        const double vt0Amp =
            p.vtMean + p.delayVariationGain * (vt0[i] - p.vtMean);
        leffAmp[i] =
            p.leffMean + p.delayVariationGain * (leff[i] - p.leffMean);
        const double vtEff = vt0Amp + p.k1 * (corner.tempC - p.vtRefTempC) +
                             p.k2 * (corner.vdd - p.vddNominal) +
                             p.k3 * corner.vbb;
        od[i] = corner.vdd - vtEff;
    }

    // Pass 2: the scalar pow.  At the corner T == Tnom, so the legacy
    // mobility factor is pow(1.0, e) == 1.0 exactly and drops out.
    for (std::size_t i = 0; i < n; ++i)
        od[i] = od[i] > 1e-3 ? std::pow(od[i], p.alphaPower) : -1.0;

    // Pass 3: normalize against the corner and scale into a reference
    // delay (vectorizable; the non-functional branch is a select).
    EVAL_SIMD
    for (std::size_t i = 0; i < n; ++i) {
        const double num = od[i] > 0.0
                               ? corner.vdd * leffAmp[i] / od[i]
                               : kNonFunctionalDelayFactor;
        const double factor = num >= kNonFunctionalDelayFactor
                                  ? kNonFunctionalDelayFactor
                                  : num / denom;
        delayRef[i] = fraction[i] * tNom * factor;
    }
}

} // namespace eval
