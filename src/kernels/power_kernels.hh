/**
 * @file
 * Inline single-source definitions of the Eq 7/8 power expressions.
 *
 * The batched thermal kernel (src/kernels/thermal_batch.cc) must
 * reproduce the per-subsystem solve bit-for-bit, which requires the
 * *same expression tree* as src/power/power_model.cc — but eval_power
 * links against eval_thermal's dependents, so the kernel layer cannot
 * link eval_power without a cycle.  These inline functions are that
 * single source: power_model.cc delegates to them, and the thermal
 * batch calls them directly.  Any change here changes both callers
 * identically, preserving bit-identity by construction.
 */

#pragma once

#include <cmath>

#include "variation/process_params.hh"

namespace eval {

/** Dynamic power (W): Eq 7, Pdyn = Kdyn * alpha_f * Vdd^2 * f. */
inline double
dynamicPowerEq7(double kdyn, double alphaF, double vdd, double freqHz)
{
    return kdyn * alphaF * vdd * vdd * freqHz;
}

/** Static (subthreshold leakage) power (W): Eq 8,
 *  Psta = Ksta * Vdd * T^2 * exp(-q Vt / k T).  @p tempC junction. */
inline double
staticPowerEq8(double ksta, double vdd, double tempC, double vtEff)
{
    const double tK = celsiusToKelvin(tempC);
    return ksta * vdd * tK * tK * std::exp(-kQOverK * vtEff / tK);
}

} // namespace eval
