#include "kernels/thermal_batch.hh"

#include <atomic>
#include <cmath>
#include <cstring>

#include "kernels/alpha_power.hh"
#include "kernels/power_kernels.hh"
#include "util/config.hh"
#include "util/logging.hh"
#include "util/math_utils.hh"

namespace eval {

namespace {

/**
 * Per-thread direct-mapped memo for solved lanes.  Keys are the exact
 * bit patterns of every input, so a hit returns precisely what a
 * recomputation would — results are independent of hit/miss history
 * and thread count.  16384 entries (~1.5 MB/thread) hold several
 * cores' worth of knob-grid sweeps across retune phases.
 */
struct ThermalCacheEntry
{
    std::uint64_t salt = 0;   ///< 0 = empty (salts start at 1)
    std::uint64_t rBits = 0;
    std::uint64_t pdynBits = 0;
    std::uint64_t kstaBits = 0;
    std::uint64_t vt0Bits = 0;
    std::uint64_t vddBits = 0;
    std::uint64_t vbbBits = 0;
    std::uint64_t thCBits = 0;
    double tempC = 0.0;
    double psta = 0.0;
    double vtEff = 0.0;
    bool runaway = false;
};

constexpr std::size_t kThermalCacheSize = 16384;   // power of two

thread_local ThermalCacheEntry thermalCache[kThermalCacheSize];

std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

/**
 * FNV-1a mix plus a murmur-style avalanche finalizer.  The finalizer
 * matters: FNV alone leaves the low slot-index bits a function of the
 * inputs' low mantissa bits only, and "round" doubles (integral
 * temperatures, nominal voltages) all have zero low mantissa bits, so
 * grid-shaped sweeps would collapse onto a handful of slots.
 */
template <std::size_t N>
std::uint64_t
mixKey(const std::uint64_t (&words)[N])
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::uint64_t w : words) {
        h ^= w;
        h *= 0x100000001b3ULL;
    }
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h;
}

/** -1 = follow EVAL_THERMAL_CACHE, otherwise the forced setting. */
std::atomic<int> thermalCacheOverride{-1};

} // namespace

void
setThermalCacheEnabled(bool enabled)
{
    // eval-lint: allow(atomics-relaxed) independent on/off override; readers
    // only ever see 0/1/-1 and no other memory is published with it.
    thermalCacheOverride.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

bool
thermalCacheEnabled()
{
    // eval-lint: allow(atomics-relaxed) single flag with no associated payload.
    const int forced = thermalCacheOverride.load(std::memory_order_relaxed);
    if (forced >= 0)
        return forced != 0;
    static const bool enabled = envBool("EVAL_THERMAL_CACHE", true);
    return enabled;
}

std::uint64_t
nextThermalSalt()
{
    static std::atomic<std::uint64_t> counter{1};
    // eval-lint: allow(atomics-relaxed) monotone id source; callers need
    // uniqueness, not ordering, and never read another thread's id.
    return counter.fetch_add(1, std::memory_order_relaxed);
}

void
solveThermalLanes(const ProcessParams &params, std::uint64_t salt,
                  ThermalLane *lanes, std::size_t n, double thC)
{
    const bool useCache = thermalCacheEnabled();
    const std::uint64_t thCBits = doubleBits(thC);

    // Lockstep per-lane iteration state.  `x` replays the legacy
    // scalar fixed point verbatim (damping 1.0, tol 1e-3, 120 steps):
    // each lane freezes at exactly the step the scalar solver stopped,
    // so the solved temperature keeps its bit pattern.
    constexpr std::size_t kMaxLanes = 64;
    EVAL_ASSERT(n <= kMaxLanes, "thermal batch wider than lane buffer");
    double x[kMaxLanes];
    bool done[kMaxLanes];
    bool converged[kMaxLanes];
    ThermalCacheEntry *slot[kMaxLanes];

    std::size_t active = 0;
    for (std::size_t i = 0; i < n; ++i) {
        ThermalLane &lane = lanes[i];
        lane.cacheHit = false;
        slot[i] = nullptr;
        if (useCache) {
            const std::uint64_t words[8] = {
                salt,
                doubleBits(lane.rth),
                doubleBits(lane.pdyn),
                doubleBits(lane.ksta),
                doubleBits(lane.vt0),
                doubleBits(lane.vdd),
                doubleBits(lane.vbb),
                thCBits,
            };
            const std::uint64_t h = mixKey(words);
            ThermalCacheEntry &e = thermalCache[h & (kThermalCacheSize - 1)];
            if (e.salt == words[0] && e.rBits == words[1] &&
                e.pdynBits == words[2] && e.kstaBits == words[3] &&
                e.vt0Bits == words[4] && e.vddBits == words[5] &&
                e.vbbBits == words[6] && e.thCBits == words[7]) {
                lane.tempC = e.tempC;
                lane.psta = e.psta;
                lane.vtEff = e.vtEff;
                lane.runaway = e.runaway;
                lane.cacheHit = true;
                done[i] = true;
                continue;
            }
            // Key + outputs are written together after the solve so a
            // duplicate key later in this batch can never observe a
            // half-filled entry.
            slot[i] = &e;
        }
        x[i] = thC + lane.rth * lane.pdyn;
        done[i] = false;
        converged[i] = false;
        ++active;
    }

    for (std::size_t iter = 0; iter < 120 && active > 0; ++iter) {
        for (std::size_t i = 0; i < n; ++i) {
            if (done[i])
                continue;
            const ThermalLane &lane = lanes[i];
            const double tSafe = clamp(x[i], -50.0, 400.0);
            const OperatingConditions op{lane.vdd, lane.vbb, tSafe};
            const double vtEff = effectiveVt(params, lane.vt0, op);
            const double psta =
                staticPowerEq8(lane.ksta, lane.vdd, tSafe, vtEff);
            const double fx =
                clamp(thC + lane.rth * (lane.pdyn + psta), -50.0, 400.0);
            const double next = (1.0 - 1.0) * x[i] + 1.0 * fx;
            if (std::abs(next - x[i]) < 1e-3) {
                x[i] = next;
                converged[i] = true;
                done[i] = true;
                --active;
                continue;
            }
            x[i] = next;
        }
    }

    for (std::size_t i = 0; i < n; ++i) {
        ThermalLane &lane = lanes[i];
        if (lane.cacheHit)
            continue;
        const double tSolved = clamp(x[i], -50.0, 400.0);
        lane.tempC = tSolved;
        const OperatingConditions op{lane.vdd, lane.vbb, tSolved};
        lane.vtEff = effectiveVt(params, lane.vt0, op);
        lane.psta = staticPowerEq8(lane.ksta, lane.vdd, tSolved, lane.vtEff);
        lane.runaway = !converged[i] || tSolved >= 399.0;
        if (slot[i] != nullptr) {
            ThermalCacheEntry &e = *slot[i];
            e.salt = salt;
            e.rBits = doubleBits(lane.rth);
            e.pdynBits = doubleBits(lane.pdyn);
            e.kstaBits = doubleBits(lane.ksta);
            e.vt0Bits = doubleBits(lane.vt0);
            e.vddBits = doubleBits(lane.vdd);
            e.vbbBits = doubleBits(lane.vbb);
            e.thCBits = thCBits;
            e.tempC = lane.tempC;
            e.psta = lane.psta;
            e.vtEff = lane.vtEff;
            e.runaway = lane.runaway;
        }
    }
}

} // namespace eval
