/**
 * @file
 * Precomputed PE(f) surface for one stage error model.
 *
 * The VATS error model answers "what fraction of accesses fail at
 * clock period Tc under conditions (Vdd, Vbb, T)?"  The legacy path
 * recomputed, on *every* query: the design-corner alpha-power
 * denominator (a model constant), the corner-normalization factor
 * (another constant), two `std::pow` calls, a binary search over the
 * path delays, and an `exp` over the survival log.  This class hoists
 * every model constant at construction and precomputes:
 *
 *  - `levels_[i]`  : the PE value when paths [i, n) fail, i.e.
 *    `1 - exp(survivalLog[i])`, evaluated once with the legacy
 *    expression so exact-mode queries return bit-identical doubles;
 *  - a uniform bucket index over the sorted path delays turning the
 *    `upper_bound` into an O(1) lookup plus a short scan;
 *  - the hoisted corner constants (`denomCorner`, `atCorner`,
 *    amplified Vt0/Leff) of the delay-scale expression.
 *
 * Two scale evaluators are exposed:
 *
 *  - `scaleExact` replays the legacy `delayScale` expression tree
 *    with the constants hoisted — bit-identical results (hoisting a
 *    subexpression that is recomputed from identical inputs cannot
 *    change its bits; no FMA contraction at baseline -march);
 *  - `scaleFast` substitutes the two fixed-exponent `std::pow` calls
 *    with piecewise-linear tables (kernels/fast_math.hh) whose
 *    measured relative error is asserted against
 *    `kScaleRelErrorBound` at construction.  Since PE(period) is a
 *    nonincreasing step function of period/scale, a relative scale
 *    error of delta is *exactly equivalent* to querying the exact
 *    surface at a period perturbed by at most delta (backward error):
 *    PE_exact(p*(1+delta)) <= PE_fast(p) <= PE_exact(p*(1-delta)).
 *    The golden record and all frequency-rating queries
 *    (fvar/maxDelay/maxFrequencyForErrorRate) never use this path.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "kernels/alpha_power.hh"
#include "variation/process_params.hh"

namespace eval {

class PowTable;

class PeSurface
{
  public:
    /** Asserted bound on |scaleFast/scaleExact - 1| (backward period
     *  perturbation of table-mode PE queries).  Derivation in
     *  DESIGN.md Sec 5g: two tables with measured relative error
     *  <= ~2.5e-7 each, plus rounding slack, with >10x margin. */
    static constexpr double kScaleRelErrorBound = 4.0e-6;

    /**
     * @param delays      sorted reference path delays (ascending)
     * @param survivalLog survivalLog[i] = log P(no path in [i,n) fails),
     *                    size delays.size() + 1, nondecreasing
     */
    PeSurface(const ProcessParams &params, double vt0Mean, double leffMean,
              std::vector<double> delays,
              const std::vector<double> &survivalLog);

    /** Bit-identical replay of the legacy delayScale expression. */
    double scaleExact(const OperatingConditions &op) const;

    /** Table-accelerated scale, within kScaleRelErrorBound of exact. */
    double scaleFast(const OperatingConditions &op) const;

    /** First index with delays[i] > threshold (== std::upper_bound). */
    std::size_t upperBoundIndex(double threshold) const;

    /** PE when paths [idx, n) fail: 1 - exp(survivalLog[idx]),
     *  precomputed with the legacy expression. */
    double level(std::size_t idx) const { return levels_[idx]; }

    /**
     * The index the legacy slowest-down budget walk produced: the
     * smallest i such that letting paths [i, n) fail keeps
     * PE <= peBudget.  O(log n) partition point over `levels_`,
     * whose monotonicity is verified at construction.
     */
    std::size_t firstIndexWithinBudget(double peBudget) const;

    const std::vector<double> &delays() const { return delays_; }
    std::size_t numPaths() const { return delays_.size(); }

  private:
    ProcessParams params_;
    double vt0Amp_;       ///< variation-amplified mean Vt0 (hoisted)
    double leffAmp_;      ///< variation-amplified mean Leff (hoisted)
    double denomCorner_;  ///< raw alpha-power delay at the corner
    double atCorner_;     ///< gateDelayFactor at the corner
    double tNomK_;        ///< design-corner temperature in kelvin
    const PowTable *odPow_;   ///< overdrive^alphaPower
    const PowTable *mobPow_;  ///< (Tnom/T)^mobilityTempExponent

    std::vector<double> delays_;   ///< ascending reference delays
    std::vector<double> levels_;   ///< PE per first-failing index, n+1

    /** Uniform bucket index over [delays front, back]: bucket b holds
     *  the first delay index whose bucket is >= b.  Empty when the
     *  delay range is degenerate (fall back to std::upper_bound). */
    std::vector<std::uint32_t> bucketStart_;
    double bucketLo_ = 0.0;
    double bucketInvWidth_ = 0.0;
};

} // namespace eval
