#include "kernels/alpha_power.hh"

#include <cmath>

#include "util/logging.hh"

namespace eval {

double
effectiveVt(const ProcessParams &p, double vt0, const OperatingConditions &op)
{
    return vt0 + p.k1 * (op.tempC - p.vtRefTempC) +
           p.k2 * (op.vdd - p.vddNominal) + p.k3 * op.vbb;
}

double
rawAlphaPowerDelay(const ProcessParams &p, double vtEff, double leff,
                   double vdd, double tempC)
{
    const double overdrive = vdd - vtEff;
    if (overdrive <= 1e-3)
        return kNonFunctionalDelayFactor;
    const double tK = celsiusToKelvin(tempC);
    const double tNomK = celsiusToKelvin(p.tempNominalC);
    const double mobility = std::pow(tNomK / tK, p.mobilityTempExponent);
    return vdd * leff / (mobility * std::pow(overdrive, p.alphaPower));
}

double
gateDelayFactor(const ProcessParams &p, double vt0, double leff,
                const OperatingConditions &op)
{
    const OperatingConditions corner = OperatingConditions::nominal(p);
    const double vtCorner = effectiveVt(p, p.vtMean, corner);
    const double denom =
        rawAlphaPowerDelay(p, vtCorner, p.leffMean, corner.vdd, corner.tempC);
    EVAL_ASSERT(denom > 0.0 && denom < kNonFunctionalDelayFactor,
                "design corner must be functional");

    // Amplify the variation-induced *deviations* only; the operating
    // point (Vdd/Vbb/T) acts with its physical sensitivity.
    const double vt0Amp = p.vtMean +
                          p.delayVariationGain * (vt0 - p.vtMean);
    const double leffAmp = p.leffMean +
                           p.delayVariationGain * (leff - p.leffMean);

    const double vtEff = effectiveVt(p, vt0Amp, op);
    const double num = rawAlphaPowerDelay(p, vtEff, leffAmp, op.vdd, op.tempC);
    if (num >= kNonFunctionalDelayFactor)
        return kNonFunctionalDelayFactor;
    return num / denom;
}

} // namespace eval
