/**
 * @file
 * Batched Eq 6-9 electro-thermal solves with an exact-bit memo.
 *
 * The legacy path solved each subsystem with a `std::function`-driven
 * fixed point, re-dispatching the update lambda per iteration and
 * re-solving identical (Rth, Pdyn, Ksta, Vt0, Vdd, Vbb, TH) queries
 * millions of times across optimizer sweeps, fuzzy training, and
 * retune cycles.  This kernel:
 *
 *  - solves all lanes of a core in one lockstep loop with the update
 *    expression inlined (no std::function, no per-iteration
 *    allocation), replicating the legacy iteration *verbatim* — each
 *    lane freezes independently at exactly the step the scalar solver
 *    would have stopped, so results are bit-identical;
 *  - memoizes solved lanes in a per-thread direct-mapped cache keyed
 *    by the exact bit patterns of every input (plus a per-model salt
 *    covering the process constants), so a hit returns precisely the
 *    value a recomputation would produce — results stay independent
 *    of hit/miss history and thread count.
 *
 * The memo is controlled by EVAL_THERMAL_CACHE (default on; it is
 * exact-bit, so the golden record is unaffected) and by
 * setThermalCacheEnabled for tests.
 */

#pragma once

#include <cstddef>
#include <cstdint>

#include "variation/process_params.hh"

namespace eval {

/**
 * One subsystem's solve: inputs + outputs, packed for lockstep.
 *
 * Deliberately trivial (no default initializers): lane buffers live on
 * the stack of a hot path and zeroing a 64-lane chunk per call costs
 * more than a single-lane solve.  Callers must set every input;
 * solveThermalLanes writes every output for each solved lane.
 */
struct ThermalLane
{
    // inputs
    double rth;     ///< K/W
    double pdyn;    ///< W (precomputed Eq 7)
    double ksta;    ///< Eq 8 coefficient
    double vt0;     ///< threshold at reference conditions
    double vdd;
    double vbb;
    // outputs
    double tempC;
    double psta;
    double vtEff;
    bool runaway;
    bool cacheHit;
};

/**
 * Solve @p n lanes against heat-sink temperature @p thC.
 *
 * @param params process constants (Eq 8/9)
 * @param salt   per-ThermalModel memo salt: two models with different
 *               process constants must never share memo entries
 */
void solveThermalLanes(const ProcessParams &params, std::uint64_t salt,
                       ThermalLane *lanes, std::size_t n, double thC);

/** EVAL_THERMAL_CACHE override (tests save/restore around this). */
void setThermalCacheEnabled(bool enabled);
bool thermalCacheEnabled();

/** Next unique memo salt (one per ThermalModel instance). */
std::uint64_t nextThermalSalt();

} // namespace eval
