/**
 * @file
 * Structure-of-arrays kernel for the path-population build.
 *
 * Building a path population evaluates the alpha-power corner delay
 * once per structural path; the legacy loop called the full
 * `gateDelayFactor` per path, recomputing the design-corner
 * denominator and a `pow(1.0, x)` mobility term (the corner queries
 * itself: T == Tnom) every time.  This kernel evaluates the same
 * expression over SoA buffers in three passes — a vectorizable
 * effective-Vt/overdrive pass, the scalar `std::pow` pass, and a
 * vectorizable normalization pass — with the corner constants hoisted.
 * Since 1.0 * x == x and pow(1.0, e) == 1.0 exactly in IEEE
 * arithmetic, dropping the corner mobility factor is bit-identical,
 * and the result matches the legacy per-path loop bit for bit.
 */

#pragma once

#include <cstddef>

#include "variation/process_params.hh"

namespace eval {

/**
 * delayRef[i] = fraction[i] * tNom
 *             * gateDelayFactor(p, vt0[i], leff[i], corner).
 *
 * All arrays hold @p n entries; inputs may not alias the output.
 */
void cornerPathDelays(const ProcessParams &p, double tNom,
                      const double *fraction, const double *vt0,
                      const double *leff, double *delayRef,
                      std::size_t n);

} // namespace eval
