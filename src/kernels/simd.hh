/**
 * @file
 * Portable vectorization hint for the kernel layer's inner loops.
 *
 * `EVAL_SIMD` expands to `#pragma omp simd` when the build probed
 * -fopenmp-simd successfully (see src/kernels/CMakeLists.txt) and to
 * nothing otherwise, so hot loops carry the hint without tripping
 * -Wunknown-pragmas on compilers that lack it.  The pragma only
 * vectorizes; it never spawns threads, so determinism is unaffected
 * as long as the loop body itself is order-independent.
 */

#pragma once

#if defined(EVAL_OPENMP_SIMD)
#define EVAL_SIMD _Pragma("omp simd")
#else
#define EVAL_SIMD
#endif
