/**
 * @file
 * Umbrella header for the observability subsystem: the hierarchical
 * stat registry (counters/gauges/histograms/timers + ScopedTimer
 * profiling) and the adaptation decision trace.
 */

#pragma once

#include "stats/decision_trace.hh"
#include "stats/stat_registry.hh"

