/**
 * @file
 * Umbrella header for the observability subsystem: the hierarchical
 * stat registry (counters/gauges/histograms/timers + ScopedTimer
 * profiling) and the adaptation decision trace.
 */

#ifndef EVAL_STATS_STATS_HH
#define EVAL_STATS_STATS_HH

#include "stats/decision_trace.hh"
#include "stats/stat_registry.hh"

#endif // EVAL_STATS_STATS_HH
