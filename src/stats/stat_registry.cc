#include "stats/stat_registry.hh"

// eval-lint: counters-only instruments are monotone relaxed counters and
// gauges read only at snapshot/dump time, off the model path.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/csv.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace eval {

const char *
statTypeName(StatType t)
{
    switch (t) {
      case StatType::Counter:   return "counter";
      case StatType::Gauge:     return "gauge";
      case StatType::Histogram: return "histogram";
      case StatType::Timer:     return "timer";
    }
    return "?";
}

void
HistogramStat::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    hist_ = Histogram(lo_, hi_, nbins_);
    moments_.reset();
}

namespace {

std::atomic<bool> profilingFlag{false};

/** JSON number: finite values via %.12g, otherwise null. */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

std::vector<std::string>
splitDotted(const std::string &name)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= name.size(); ++i) {
        if (i == name.size() || name[i] == '.') {
            parts.push_back(name.substr(start, i - start));
            start = i + 1;
        }
    }
    return parts;
}

} // namespace

void
setProfilingEnabled(bool enabled)
{
    profilingFlag.store(enabled, std::memory_order_relaxed);
}

bool
profilingEnabled()
{
    return profilingFlag.load(std::memory_order_relaxed);
}

StatRegistry &
StatRegistry::global()
{
    // Leaked: exit-flush hooks (stats dump, status snapshot) read the
    // registry during process teardown, after function-local statics
    // are destroyed.
    static StatRegistry *registry = new StatRegistry;
    return *registry;
}

StatRegistry::Slot &
StatRegistry::slot(const std::string &name, StatType type, double lo,
                   double hi, std::size_t bins)
{
    EVAL_ASSERT(!name.empty(), "stat name must not be empty");
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = stats_.find(name);
    if (it != stats_.end()) {
        const StatType existing =
            static_cast<StatType>(it->second->index());
        if (existing != type) {
            EVAL_FATAL("stat '", name, "' already registered as ",
                       statTypeName(existing), ", requested as ",
                       statTypeName(type));
        }
        return *it->second;
    }

    // A dotted name is a tree path: a leaf cannot double as a group.
    const std::string prefix = name + ".";
    for (const auto &[other, unused] : stats_) {
        (void)unused;
        if (other.compare(0, prefix.size(), prefix) == 0 ||
            name.compare(0, other.size() + 1, other + ".") == 0) {
            EVAL_FATAL("stat '", name, "' conflicts with the hierarchy "
                       "of existing stat '", other, "'");
        }
    }

    std::unique_ptr<Slot> made;
    switch (type) {
      case StatType::Counter:
        made = std::make_unique<Slot>(std::in_place_type<Counter>);
        break;
      case StatType::Gauge:
        made = std::make_unique<Slot>(std::in_place_type<Gauge>);
        break;
      case StatType::Histogram:
        made = std::make_unique<Slot>(
            std::in_place_type<HistogramStat>, lo, hi, bins);
        break;
      case StatType::Timer:
        made = std::make_unique<Slot>(std::in_place_type<TimerStat>);
        break;
    }
    it = stats_.emplace(name, std::move(made)).first;
    return *it->second;
}

Counter &
StatRegistry::counter(const std::string &name)
{
    return std::get<Counter>(slot(name, StatType::Counter));
}

Gauge &
StatRegistry::gauge(const std::string &name)
{
    return std::get<Gauge>(slot(name, StatType::Gauge));
}

HistogramStat &
StatRegistry::histogram(const std::string &name, double lo, double hi,
                        std::size_t bins)
{
    return std::get<HistogramStat>(
        slot(name, StatType::Histogram, lo, hi, bins));
}

TimerStat &
StatRegistry::timer(const std::string &name)
{
    return std::get<TimerStat>(slot(name, StatType::Timer));
}

bool
StatRegistry::has(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_.count(name) > 0;
}

std::size_t
StatRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_.size();
}

void
StatRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, s] : stats_) {
        (void)name;
        std::visit([](auto &stat) { stat.reset(); }, *s);
    }
}

std::string
StatRegistry::json() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream os;
    os << "{";
    std::vector<std::string> open;   // current group path
    bool firstEntry = true;

    const auto indent = [&os](std::size_t depth) {
        os << "\n";
        for (std::size_t i = 0; i < depth + 1; ++i)
            os << "  ";
    };

    for (const auto &[name, s] : stats_) {
        std::vector<std::string> parts = splitDotted(name);
        const std::string leaf = parts.back();
        parts.pop_back();

        std::size_t common = 0;
        while (common < open.size() && common < parts.size() &&
               open[common] == parts[common]) {
            ++common;
        }
        // Close groups below the common prefix.
        while (open.size() > common) {
            open.pop_back();
            indent(open.size());
            os << "}";
        }
        if (!firstEntry)
            os << ",";
        firstEntry = false;
        // Open the new groups.
        while (open.size() < parts.size()) {
            indent(open.size());
            os << "\"" << parts[open.size()] << "\": {";
            open.push_back(parts[open.size()]);
        }
        indent(open.size());

        os << "\"" << leaf << "\": ";
        std::visit(
            [&os](const auto &stat) {
                using T = std::decay_t<decltype(stat)>;
                if constexpr (std::is_same_v<T, Counter>) {
                    os << "{\"type\": \"counter\", \"value\": "
                       << stat.value() << "}";
                } else if constexpr (std::is_same_v<T, Gauge>) {
                    os << "{\"type\": \"gauge\", \"value\": "
                       << jsonNumber(stat.value()) << "}";
                } else if constexpr (std::is_same_v<T, HistogramStat>) {
                    os << "{\"type\": \"histogram\", \"count\": "
                       << stat.count()
                       << ", \"mean\": " << jsonNumber(stat.mean())
                       << ", \"stddev\": " << jsonNumber(stat.stddev())
                       << ", \"min\": " << jsonNumber(stat.min())
                       << ", \"max\": " << jsonNumber(stat.max())
                       << ", \"p50\": " << jsonNumber(stat.quantile(0.5))
                       << ", \"p90\": " << jsonNumber(stat.quantile(0.9))
                       << ", \"p95\": " << jsonNumber(stat.quantile(0.95))
                       << ", \"p99\": " << jsonNumber(stat.quantile(0.99))
                       << "}";
                } else {
                    os << "{\"type\": \"timer\", \"calls\": "
                       << stat.calls()
                       << ", \"total_ms\": "
                       << jsonNumber(static_cast<double>(stat.totalNs()) /
                                     1e6)
                       << ", \"mean_us\": "
                       << jsonNumber(stat.meanNs() / 1e3)
                       << ", \"min_us\": "
                       << jsonNumber(static_cast<double>(stat.minNs()) /
                                     1e3)
                       << ", \"max_us\": "
                       << jsonNumber(static_cast<double>(stat.maxNs()) /
                                     1e3)
                       << "}";
                }
            },
            *s);
    }
    while (!open.empty()) {
        open.pop_back();
        indent(open.size());
        os << "}";
    }
    os << "\n}\n";
    return os.str();
}

std::string
StatRegistry::csv() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    CsvTable table({"name", "type", "count", "value", "mean", "min",
                    "max", "p50", "p90", "p95", "p99"});
    for (const auto &[name, s] : stats_) {
        std::visit(
            [&table, &name = name](const auto &stat) {
                using T = std::decay_t<decltype(stat)>;
                if constexpr (std::is_same_v<T, Counter>) {
                    table.row({name, "counter", "",
                               std::to_string(stat.value()), "", "", "",
                               "", "", "", ""});
                } else if constexpr (std::is_same_v<T, Gauge>) {
                    table.row({name, "gauge", "",
                               formatDouble(stat.value(), 6), "", "",
                               "", "", "", "", ""});
                } else if constexpr (std::is_same_v<T, HistogramStat>) {
                    table.row({name, "histogram",
                               std::to_string(stat.count()), "",
                               formatDouble(stat.mean(), 6),
                               formatDouble(stat.min(), 6),
                               formatDouble(stat.max(), 6),
                               formatDouble(stat.quantile(0.5), 6),
                               formatDouble(stat.quantile(0.9), 6),
                               formatDouble(stat.quantile(0.95), 6),
                               formatDouble(stat.quantile(0.99), 6)});
                } else {
                    table.row({name, "timer",
                               std::to_string(stat.calls()),
                               formatDouble(static_cast<double>(
                                                stat.totalNs()) / 1e6,
                                            3),
                               formatDouble(stat.meanNs() / 1e3, 3),
                               formatDouble(static_cast<double>(
                                                stat.minNs()) / 1e3,
                                            3),
                               formatDouble(static_cast<double>(
                                                stat.maxNs()) / 1e3,
                                            3),
                               "", "", "", ""});
                }
            },
            *s);
    }
    return table.str();
}

std::vector<std::pair<std::string, double>>
StatRegistry::flat() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, double>> out;
    out.reserve(stats_.size());
    const auto push = [&out](const std::string &key, double v) {
        if (std::isfinite(v))
            out.emplace_back(key, v);
    };
    for (const auto &[name, s] : stats_) {
        std::visit(
            [&push, &name = name](const auto &stat) {
                using T = std::decay_t<decltype(stat)>;
                if constexpr (std::is_same_v<T, Counter>) {
                    push(name, static_cast<double>(stat.value()));
                } else if constexpr (std::is_same_v<T, Gauge>) {
                    push(name, stat.value());
                } else if constexpr (std::is_same_v<T, HistogramStat>) {
                    push(name + ".count",
                         static_cast<double>(stat.count()));
                    push(name + ".mean", stat.mean());
                    push(name + ".p50", stat.quantile(0.5));
                    push(name + ".p95", stat.quantile(0.95));
                    push(name + ".p99", stat.quantile(0.99));
                } else {
                    push(name + ".calls",
                         static_cast<double>(stat.calls()));
                    push(name + ".total_ms",
                         static_cast<double>(stat.totalNs()) / 1e6);
                }
            },
            *s);
    }
    return out;
}

namespace {

bool
writeTextFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot open '", path, "' for writing");
        return false;
    }
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    std::fclose(f);
    if (!ok)
        warn("short write to '", path, "'");
    return ok;
}

} // namespace

bool
StatRegistry::writeJson(const std::string &path) const
{
    return writeTextFile(path, json());
}

bool
StatRegistry::writeCsv(const std::string &path) const
{
    return writeTextFile(path, csv());
}

void
StatRegistry::printProfile() const
{
    struct Row
    {
        std::string name;
        const TimerStat *timer;
    };
    std::vector<Row> rows;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &[name, s] : stats_) {
            if (const auto *t = std::get_if<TimerStat>(s.get())) {
                if (t->calls() > 0)
                    rows.push_back({name, t});
            }
        }
    }
    if (rows.empty()) {
        inform("self-profile: no timer samples "
               "(enable with --profile / setProfilingEnabled)");
        return;
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) {
                  return a.timer->totalNs() > b.timer->totalNs();
              });
    double grandNs = 0.0;
    for (const Row &r : rows)
        grandNs += static_cast<double>(r.timer->totalNs());

    TablePrinter table("self-profile (wall-clock per instrumented region)");
    table.header({"region", "calls", "total (ms)", "mean (us)",
                  "max (us)", "share"});
    for (const Row &r : rows) {
        table.row({r.name, std::to_string(r.timer->calls()),
                   formatDouble(
                       static_cast<double>(r.timer->totalNs()) / 1e6, 3),
                   formatDouble(r.timer->meanNs() / 1e3, 2),
                   formatDouble(
                       static_cast<double>(r.timer->maxNs()) / 1e3, 2),
                   formatPercent(
                       static_cast<double>(r.timer->totalNs()) /
                       grandNs)});
    }
    table.print();
}

} // namespace eval
