/**
 * @file
 * Ring-buffer trace of adaptation decisions: every controller
 * invocation (new-phase optimization or saved-configuration reuse)
 * appends one record capturing the inputs it saw, the knob vector it
 * chose, and how the hardware's retuning cycle corrected it.
 *
 * The trace is disabled by default: record() then costs a single
 * branch and nothing is stored.  When enabled (the --trace-out flag,
 * or EVAL_TRACE_OUT for benches) the most recent `capacity` records
 * are kept and can be exported as JSONL, one decision per line.
 */

#pragma once

// eval-lint: counters-only the enable flag and drop counter are independent
// observational atomics; record payloads are guarded by the ring mutex.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace eval {

/** One adaptation decision (Sec 4.3 control loop). */
struct DecisionRecord
{
    std::uint64_t sequence = 0;  ///< stamped by DecisionTrace
    int chip = -1;               ///< from the trace context, -1 unknown
    int core = -1;
    std::uint64_t phaseId = 0;
    bool reusedSaved = false;    ///< configuration came from the table

    double thC = 0.0;            ///< heat-sink temperature input
    double freqHz = 0.0;         ///< chosen core frequency
    double meanVddV = 0.0;       ///< mean per-subsystem supply chosen
    double meanVbbV = 0.0;       ///< mean per-subsystem body bias
    bool smallQueue = false;
    bool lowSlopeFu = false;

    double predictedPe = 0.0;    ///< controller's error-rate estimate
    double realizedPe = 0.0;     ///< error rate after retuning
    double predictedPerf = 0.0;  ///< Eq 5 estimate at the chosen point
    double powerW = 0.0;         ///< core power after retuning

    std::string outcome;         ///< retuneOutcomeName of the cycle
    unsigned retuneSteps = 0;    ///< frequency moves during retuning
};

/**
 * Bounded in-memory decision log with JSONL export.  Safe for
 * concurrent record() calls from parallel per-chip tasks: appends are
 * mutex-guarded, the enabled check is one relaxed atomic load, and
 * the ambient (chip, core) context is per-thread, so each task's
 * records carry the chip it is simulating.  Under a multi-threaded
 * run the interleaving (and thus sequence stamps) follows completion
 * order, not chip order.
 */
class DecisionTrace
{
  public:
    static constexpr std::size_t kDefaultCapacity = 8192;

    explicit DecisionTrace(std::size_t capacity = kDefaultCapacity);

    /** The simulator-wide trace written by the controllers. */
    static DecisionTrace &global();

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }
    void
    setEnabled(bool enabled)
    {
        enabled_.store(enabled, std::memory_order_relaxed);
    }

    /** Resize the ring; drops buffered records. */
    void setCapacity(std::size_t capacity);

    /** Ambient (chip, core) stamped onto records from the calling
     *  thread (thread-local, so parallel chip tasks do not clobber
     *  each other's context). */
    void setContext(int chip, int core);

    /** Append a decision (no-op when disabled). */
    void record(DecisionRecord r);

    /** Records currently buffered (<= capacity). */
    std::size_t size() const;

    /** Total records ever accepted, including overwritten ones. */
    std::uint64_t totalRecorded() const;

    /** Buffered record @p i, oldest first. */
    const DecisionRecord &at(std::size_t i) const;

    /** Export the buffer as JSONL, oldest first. */
    std::string jsonl() const;
    bool writeJsonl(const std::string &path) const;

    void clear();

  private:
    std::atomic<bool> enabled_{false};
    mutable std::mutex mutex_;   ///< guards the ring fields below
    std::size_t capacity_;
    std::size_t head_ = 0;       ///< next write position
    std::uint64_t total_ = 0;
    std::vector<DecisionRecord> ring_;
};

} // namespace eval

