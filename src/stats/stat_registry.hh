/**
 * @file
 * Simulator-wide statistics registry in the spirit of gem5's Stats
 * framework: named Counter / Gauge / Histogram / Timer instruments,
 * registered under dotted hierarchical names
 * ("core0.controller.retunes", "chip.thermal.throttle_steps"),
 * snapshotable mid-run and dumpable as nested JSON or flat CSV.
 *
 * Conventions:
 *  - Registration is idempotent: asking for an existing name of the
 *    same type returns the same instrument; a type clash or a
 *    group/leaf clash ("a.b" vs "a.b.c") is a fatal error.
 *  - Instruments are never deallocated while the registry lives, so
 *    hot paths may cache references (typically as function-local
 *    statics).  reset() zeroes values but keeps registrations.
 *  - Every instrument is safe to update from concurrent parallelFor
 *    bodies: Counter and Gauge use relaxed atomics (an increment is
 *    one uncontended atomic RMW), Histogram and Timer samples take a
 *    per-instrument mutex.  Registration itself is mutex-protected.
 *  - Timers are driven by ScopedTimer and sample only while profiling
 *    is enabled (setProfilingEnabled); when disabled a ScopedTimer
 *    costs one relaxed atomic load and no clock reads (and takes no
 *    lock), preserving the disabled-path guarantee under threading.
 */

#pragma once

// eval-lint: counters-only instruments are monotone relaxed counters and
// gauges read only at snapshot/dump time, off the model path.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <variant>
#include <vector>

#include "util/statistics.hh"

namespace eval {

/** Kind tag of one registered instrument. */
enum class StatType { Counter, Gauge, Histogram, Timer };

const char *statTypeName(StatType t);

/**
 * Monotonic event counter.  Increments are relaxed atomic RMWs, so
 * hot loops may bump a cached Counter& from any pool thread; totals
 * are exact (the relaxed order only relaxes inter-stat ordering).
 */
class Counter
{
  public:
    void
    inc(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0, std::memory_order_relaxed); }

    /**
     * Fold @p other into this counter.  u64 addition is exact and
     * associative, so merging per-shard counters in any grouping
     * yields the same total as counting every event in one process —
     * the counter leg of the shard-equivalence guarantee
     * (DESIGN.md Sec 5h).
     */
    void merge(const Counter &other) { inc(other.value()); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-value instrument (temperatures, table sizes, ...).  Atomic
 *  store/load; concurrent setters race benignly (last writer wins). */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Binned distribution plus streaming moments: the fixed-bin histogram
 * answers quantile queries while RunningStats keeps exact
 * mean/min/max (the bins clamp out-of-range samples).
 */
class HistogramStat
{
  public:
    HistogramStat(double lo, double hi, std::size_t bins)
        : lo_(lo), hi_(hi), nbins_(bins), hist_(lo, hi, bins)
    {
    }

    void
    add(double x)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        hist_.add(x);
        moments_.add(x);
    }

    std::size_t
    count() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return moments_.count();
    }
    double
    mean() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return moments_.mean();
    }
    double
    stddev() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return moments_.stddev();
    }
    double
    min() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return moments_.min();
    }
    double
    max() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return moments_.max();
    }
    double
    quantile(double q) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return hist_.quantile(q);
    }
    /** Snapshot of the bins (by value: the live bins may be written
     *  concurrently). */
    Histogram
    bins() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return hist_;
    }

    void reset();

  private:
    mutable std::mutex mutex_;
    double lo_;
    double hi_;
    std::size_t nbins_;
    Histogram hist_;
    RunningStats moments_;
};

/** Accumulated wall-clock time of one instrumented region.  Samples
 *  are mutex-guarded; the lock is only ever taken while profiling is
 *  enabled (ScopedTimer skips the call entirely when disabled). */
class TimerStat
{
  public:
    void
    addSample(std::uint64_t ns)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++calls_;
        totalNs_ += ns;
        if (calls_ == 1 || ns < minNs_)
            minNs_ = ns;
        if (ns > maxNs_)
            maxNs_ = ns;
    }

    std::uint64_t
    calls() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return calls_;
    }
    std::uint64_t
    totalNs() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return totalNs_;
    }
    std::uint64_t
    minNs() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return calls_ ? minNs_ : 0;
    }
    std::uint64_t
    maxNs() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return maxNs_;
    }
    double
    meanNs() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return calls_ ? static_cast<double>(totalNs_) /
                            static_cast<double>(calls_)
                      : 0.0;
    }

    void
    reset()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        calls_ = totalNs_ = minNs_ = maxNs_ = 0;
    }

  private:
    mutable std::mutex mutex_;
    std::uint64_t calls_ = 0;
    std::uint64_t totalNs_ = 0;
    std::uint64_t minNs_ = 0;
    std::uint64_t maxNs_ = 0;
};

/** Globally enable/disable ScopedTimer sampling (the --profile flag). */
void setProfilingEnabled(bool enabled);
bool profilingEnabled();

/**
 * RAII region timer feeding a TimerStat.  When profiling is disabled
 * the constructor takes no clock sample, so the per-call overhead is
 * a single relaxed atomic load.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(TimerStat &timer)
        : timer_(profilingEnabled() ? &timer : nullptr)
    {
        if (timer_)
            start_ = std::chrono::steady_clock::now();
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer()
    {
        if (timer_) {
            const auto ns =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
            timer_->addSample(static_cast<std::uint64_t>(ns));
        }
    }

  private:
    TimerStat *timer_;
    std::chrono::steady_clock::time_point start_;
};

/**
 * The hierarchical instrument registry.  Most code uses the process
 * singleton (global()); tests may build private instances.
 */
class StatRegistry
{
  public:
    StatRegistry() = default;
    StatRegistry(const StatRegistry &) = delete;
    StatRegistry &operator=(const StatRegistry &) = delete;

    /** The simulator-wide registry. */
    static StatRegistry &global();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    HistogramStat &histogram(const std::string &name, double lo,
                             double hi, std::size_t bins);
    TimerStat &timer(const std::string &name);

    /** Whether @p name is registered (any type). */
    bool has(const std::string &name) const;

    std::size_t size() const;

    /** Zero every instrument, keeping registrations (and therefore
     *  any cached references) valid. */
    void reset();

    /** Nested-JSON snapshot of every instrument, grouped by the
     *  dotted-name hierarchy. */
    std::string json() const;

    /** Flat CSV snapshot:
     *  name,type,count,value,mean,min,max,p50,p90,p95,p99. */
    std::string csv() const;

    /** Flat numeric view for live-telemetry snapshots: one
     *  (dotted-name, value) pair per scalar, in name order.  Counters
     *  and gauges emit their value; histograms emit
     *  name.count/.mean/.p50/.p95/.p99; timers emit
     *  name.calls/.total_ms.  Non-finite values are skipped. */
    std::vector<std::pair<std::string, double>> flat() const;

    bool writeJson(const std::string &path) const;
    bool writeCsv(const std::string &path) const;

    /** Print the self-profile table (all timers, sorted by total
     *  time) to stdout.  No-op message when nothing was sampled. */
    void printProfile() const;

  private:
    using Slot =
        std::variant<Counter, Gauge, HistogramStat, TimerStat>;

    /** Find-or-create @p name; fatal on type or hierarchy clash. */
    Slot &slot(const std::string &name, StatType type,
               double lo = 0.0, double hi = 1.0, std::size_t bins = 1);

    mutable std::mutex mutex_;
    /** Ordered so dumps group hierarchy prefixes together. */
    std::map<std::string, std::unique_ptr<Slot>> stats_;
};

} // namespace eval

