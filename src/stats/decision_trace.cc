#include "stats/decision_trace.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/logging.hh"

namespace eval {

DecisionTrace::DecisionTrace(std::size_t capacity)
    : capacity_(capacity ? capacity : 1)
{
}

DecisionTrace &
DecisionTrace::global()
{
    static DecisionTrace trace;
    return trace;
}

void
DecisionTrace::setCapacity(std::size_t capacity)
{
    capacity_ = capacity ? capacity : 1;
    clear();
}

void
DecisionTrace::setContext(int chip, int core)
{
    chip_ = chip;
    core_ = core;
}

void
DecisionTrace::record(DecisionRecord r)
{
    if (!enabled_)
        return;
    r.sequence = total_++;
    if (r.chip < 0)
        r.chip = chip_;
    if (r.core < 0)
        r.core = core_;
    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(r));
    } else {
        ring_[head_] = std::move(r);
    }
    head_ = (head_ + 1) % capacity_;
}

std::size_t
DecisionTrace::size() const
{
    return ring_.size();
}

const DecisionRecord &
DecisionTrace::at(std::size_t i) const
{
    EVAL_ASSERT(i < ring_.size(), "trace index out of range");
    // Until the ring wraps, head_ == size and oldest is index 0.
    const std::size_t base = ring_.size() < capacity_ ? 0 : head_;
    return ring_[(base + i) % ring_.size()];
}

namespace {

std::string
num(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

} // namespace

std::string
DecisionTrace::jsonl() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < size(); ++i) {
        const DecisionRecord &r = at(i);
        os << "{\"seq\": " << r.sequence
           << ", \"chip\": " << r.chip
           << ", \"core\": " << r.core
           << ", \"phase_id\": " << r.phaseId
           << ", \"reused_saved\": " << (r.reusedSaved ? "true" : "false")
           << ", \"th_c\": " << num(r.thC)
           << ", \"freq_ghz\": " << num(r.freqHz / 1e9)
           << ", \"mean_vdd_v\": " << num(r.meanVddV)
           << ", \"mean_vbb_v\": " << num(r.meanVbbV)
           << ", \"small_queue\": " << (r.smallQueue ? "true" : "false")
           << ", \"low_slope_fu\": " << (r.lowSlopeFu ? "true" : "false")
           << ", \"predicted_pe\": " << num(r.predictedPe)
           << ", \"realized_pe\": " << num(r.realizedPe)
           << ", \"predicted_perf\": " << num(r.predictedPerf)
           << ", \"power_w\": " << num(r.powerW)
           << ", \"outcome\": \"" << r.outcome << "\""
           << ", \"retune_steps\": " << r.retuneSteps
           << "}\n";
    }
    return os.str();
}

bool
DecisionTrace::writeJsonl(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot open '", path, "' for writing");
        return false;
    }
    const std::string text = jsonl();
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    std::fclose(f);
    if (!ok)
        warn("short write to '", path, "'");
    return ok;
}

void
DecisionTrace::clear()
{
    ring_.clear();
    head_ = 0;
    total_ = 0;
}

} // namespace eval
