#include "stats/decision_trace.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/logging.hh"

namespace eval {

DecisionTrace::DecisionTrace(std::size_t capacity)
    : capacity_(capacity ? capacity : 1)
{
}

DecisionTrace &
DecisionTrace::global()
{
    static DecisionTrace trace;
    return trace;
}

namespace {

/** Per-thread ambient context: parallel chip tasks each set their
 *  own without synchronizing (see DecisionTrace::setContext). */
thread_local int traceChip = -1;
thread_local int traceCore = -1;

} // namespace

void
DecisionTrace::setCapacity(std::size_t capacity)
{
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = capacity ? capacity : 1;
    ring_.clear();
    head_ = 0;
    total_ = 0;
}

void
DecisionTrace::setContext(int chip, int core)
{
    traceChip = chip;
    traceCore = core;
}

void
DecisionTrace::record(DecisionRecord r)
{
    if (!enabled())
        return;
    if (r.chip < 0)
        r.chip = traceChip;
    if (r.core < 0)
        r.core = traceCore;
    std::lock_guard<std::mutex> lock(mutex_);
    r.sequence = total_++;
    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(r));
    } else {
        ring_[head_] = std::move(r);
    }
    head_ = (head_ + 1) % capacity_;
}

std::size_t
DecisionTrace::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ring_.size();
}

std::uint64_t
DecisionTrace::totalRecorded() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return total_;
}

const DecisionRecord &
DecisionTrace::at(std::size_t i) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    EVAL_ASSERT(i < ring_.size(), "trace index out of range");
    // Until the ring wraps, head_ == size and oldest is index 0.
    const std::size_t base = ring_.size() < capacity_ ? 0 : head_;
    return ring_[(base + i) % ring_.size()];
}

namespace {

std::string
num(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

} // namespace

std::string
DecisionTrace::jsonl() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream os;
    for (std::size_t i = 0; i < ring_.size(); ++i) {
        const std::size_t base =
            ring_.size() < capacity_ ? 0 : head_;
        const DecisionRecord &r = ring_[(base + i) % ring_.size()];
        os << "{\"seq\": " << r.sequence
           << ", \"chip\": " << r.chip
           << ", \"core\": " << r.core
           << ", \"phase_id\": " << r.phaseId
           << ", \"reused_saved\": " << (r.reusedSaved ? "true" : "false")
           << ", \"th_c\": " << num(r.thC)
           << ", \"freq_ghz\": " << num(r.freqHz / 1e9)
           << ", \"mean_vdd_v\": " << num(r.meanVddV)
           << ", \"mean_vbb_v\": " << num(r.meanVbbV)
           << ", \"small_queue\": " << (r.smallQueue ? "true" : "false")
           << ", \"low_slope_fu\": " << (r.lowSlopeFu ? "true" : "false")
           << ", \"predicted_pe\": " << num(r.predictedPe)
           << ", \"realized_pe\": " << num(r.realizedPe)
           << ", \"predicted_perf\": " << num(r.predictedPerf)
           << ", \"power_w\": " << num(r.powerW)
           << ", \"outcome\": \"" << r.outcome << "\""
           << ", \"retune_steps\": " << r.retuneSteps
           << "}\n";
    }
    return os.str();
}

bool
DecisionTrace::writeJsonl(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot open '", path, "' for writing");
        return false;
    }
    const std::string text = jsonl();
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    std::fclose(f);
    if (!ok)
        warn("short write to '", path, "'");
    return ok;
}

void
DecisionTrace::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.clear();
    head_ = 0;
    total_ = 0;
}

} // namespace eval
