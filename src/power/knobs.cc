#include "power/knobs.hh"

#include <cmath>

#include "util/logging.hh"

namespace eval {

KnobRange::KnobRange(double lo, double hi, double step)
    : step_(step)
{
    EVAL_ASSERT(step > 0.0 && hi >= lo, "bad knob range");
    const auto count =
        static_cast<std::size_t>(std::round((hi - lo) / step)) + 1;
    values_.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        values_.push_back(lo + static_cast<double>(i) * step);
}

double
KnobRange::quantize(double v) const
{
    return values_[indexOf(v)];
}

double
KnobRange::quantizeDown(double v) const
{
    if (v <= values_.front())
        return values_.front();
    if (v >= values_.back())
        return values_.back();
    const auto idx = static_cast<std::size_t>(
        std::floor((v - values_.front()) / step_ + 1e-9));
    return values_[idx];
}

double
KnobRange::quantizeUp(double v) const
{
    if (v <= values_.front())
        return values_.front();
    if (v >= values_.back())
        return values_.back();
    const auto idx = static_cast<std::size_t>(
        std::ceil((v - values_.front()) / step_ - 1e-9));
    return values_[std::min(idx, values_.size() - 1)];
}

std::size_t
KnobRange::indexOf(double v) const
{
    if (v <= values_.front())
        return 0;
    if (v >= values_.back())
        return values_.size() - 1;
    const auto idx = static_cast<std::size_t>(
        std::llround((v - values_.front()) / step_));
    return std::min(idx, values_.size() - 1);
}

std::vector<double>
KnobSpace::vddCandidates(double nominalVdd) const
{
    if (!hasAsv)
        return {vdd.quantize(nominalVdd)};
    return vdd.values();
}

std::vector<double>
KnobSpace::vbbCandidates() const
{
    if (!hasAbb)
        return {0.0};
    return vbb.values();
}

} // namespace eval
