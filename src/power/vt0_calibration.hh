/**
 * @file
 * Tester-side Vt0 measurement (Sec 4.1): with the clocks suspended the
 * tester powers each subsystem individually, measures its leakage at a
 * known temperature, and inverts Eq 8 for Vt0.  The inferred value
 * carries a small measurement error, which the fuzzy controllers (and
 * the retuning cycles) must absorb.
 */

#pragma once

#include "power/power_model.hh"
#include "util/random.hh"
#include "variation/process_params.hh"

namespace eval {

/** Tester configuration. */
struct TesterConfig
{
    double testTempC = 45.0;       ///< wafer/package test temperature
    double currentNoiseRel = 0.01; ///< relative leakage-meter noise
};

/**
 * Simulate the tester measurement for one subsystem.
 *
 * @param params   process constants
 * @param power    the subsystem's Ksta (known from CAD data)
 * @param trueVt0  the subsystem's actual mean Vt0 (reference temp)
 * @param cfg      tester setup
 * @param rng      measurement-noise stream
 * @return the inferred Vt0 in volts
 */
double measureVt0(const ProcessParams &params,
                  const SubsystemPowerParams &power, double trueVt0,
                  const TesterConfig &cfg, Rng &rng);

} // namespace eval

