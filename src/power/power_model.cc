#include "power/power_model.hh"

#include <cmath>

#include "kernels/power_kernels.hh"
#include "util/logging.hh"

namespace eval {

// Eqs 7/8 live in kernels/power_kernels.hh so the batched thermal
// solver and the scalar path evaluate the same inline expression —
// bit-identity between them holds by construction, not by parallel
// maintenance of two copies.

double
dynamicPower(double kdyn, double alphaF, double vdd, double freqHz)
{
    return dynamicPowerEq7(kdyn, alphaF, vdd, freqHz);
}

double
staticPower(double ksta, double vdd, double tempC, double vtEff)
{
    return staticPowerEq8(ksta, vdd, tempC, vtEff);
}

namespace {

/**
 * Typical unit-level dynamic power shares for a 3-issue core at its
 * reference activity (Wattch-style breakdown), indexed by SubsystemId.
 */
constexpr std::array<double, kNumSubsystems> kDynamicShare = {
    0.18,   // Dcache
    0.02,   // DTLB
    0.04,   // FPQ
    0.04,   // FPReg
    0.07,   // LdStQ
    0.10,   // FPUnit
    0.02,   // FPMap
    0.09,   // IntALU
    0.07,   // IntReg
    0.10,   // IntQ
    0.03,   // IntMap
    0.01,   // ITLB
    0.12,   // Icache
    0.05,   // BranchPred
    0.06,   // Decode
};

/** Reference accesses/cycle used to fold activity out of Kdyn;
 *  calibrated to the core model's measured activity on the suite. */
constexpr std::array<double, kNumSubsystems> kAlphaRef = {
    0.30,   // Dcache
    0.30,   // DTLB
    0.30,   // FPQ
    0.30,   // FPReg
    0.30,   // LdStQ
    0.25,   // FPUnit
    0.30,   // FPMap
    0.60,   // IntALU
    0.60,   // IntReg
    0.60,   // IntQ
    0.60,   // IntMap
    0.25,   // ITLB
    0.25,   // Icache
    0.15,   // BranchPred
    0.80,   // Decode
};

} // namespace

std::array<SubsystemPowerParams, kNumSubsystems>
calibratePower(const ProcessParams &params, const PowerCalibration &cal)
{
    // Normalize the dynamic shares defensively (they sum to ~1).
    double shareSum = 0.0;
    for (double s : kDynamicShare)
        shareSum += s;
    EVAL_ASSERT(shareSum > 0.0, "dynamic shares must be positive");

    // Static power splits by subsystem area.
    const Floorplan plan(1);
    double areaSum = 0.0;
    for (const auto &info : plan.coreSubsystems(0))
        areaSum += info.areaFraction;

    // The per-unit exponential factor at the calibration point.
    const OperatingConditions calOp{params.vddNominal, 0.0,
                                    cal.calibrationTempC};
    const double vtEff = effectiveVt(params, params.vtMean, calOp);
    const double tK = celsiusToKelvin(cal.calibrationTempC);
    const double staUnit = params.vddNominal * tK * tK *
                           std::exp(-kQOverK * vtEff / tK);
    EVAL_ASSERT(staUnit > 0.0, "degenerate static-power calibration");

    std::array<SubsystemPowerParams, kNumSubsystems> out;
    const double v2f = params.vddNominal * params.vddNominal *
                       params.freqNominal;
    for (std::size_t i = 0; i < kNumSubsystems; ++i) {
        const double dynTarget =
            cal.coreDynamicTargetW * kDynamicShare[i] / shareSum;
        out[i].alphaRef = kAlphaRef[i];
        out[i].kdyn = dynTarget / (kAlphaRef[i] * v2f);

        const double areaShare =
            plan.coreSubsystems(0)[i].areaFraction / areaSum;
        const double staTarget = cal.coreStaticTargetW * areaShare;
        out[i].ksta = staTarget / staUnit;
    }
    return out;
}

} // namespace eval
