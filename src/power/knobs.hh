/**
 * @file
 * Adaptation-knob spaces (Figure 7(a)): discrete frequency, ASV (Vdd),
 * and ABB (Vbb) settings, with quantization helpers.
 *
 *   f:   2.4 GHz .. 5.6 GHz in 100 MHz steps
 *   ASV: 800 mV .. 1200 mV in 50 mV steps
 *   ABB: -500 mV .. +500 mV in 50 mV steps
 */

#pragma once

#include <cstddef>
#include <vector>

namespace eval {

/** A discrete, uniformly spaced knob range. */
class KnobRange
{
  public:
    KnobRange(double lo, double hi, double step);

    std::size_t size() const { return values_.size(); }
    double value(std::size_t i) const { return values_[i]; }
    double lo() const { return values_.front(); }
    double hi() const { return values_.back(); }
    double step() const { return step_; }
    const std::vector<double> &values() const { return values_; }

    /** Nearest allowed value (round-to-nearest). */
    double quantize(double v) const;

    /** Largest allowed value <= v (or lo() if none). */
    double quantizeDown(double v) const;

    /** Smallest allowed value >= v (or hi() if none). */
    double quantizeUp(double v) const;

    /** Index of the nearest allowed value. */
    std::size_t indexOf(double v) const;

  private:
    double step_;
    std::vector<double> values_;
};

/** The knobs a domain exposes, per the environment's capabilities. */
struct KnobSpace
{
    KnobRange freq{2.4e9, 5.6e9, 0.1e9};
    KnobRange vdd{0.80, 1.20, 0.05};
    KnobRange vbb{-0.50, 0.50, 0.05};
    bool hasAsv = true;   ///< per-subsystem Vdd adjustable
    bool hasAbb = true;   ///< per-subsystem Vbb adjustable

    /** Vdd candidates honouring the ASV capability. */
    std::vector<double> vddCandidates(double nominalVdd) const;

    /** Vbb candidates honouring the ABB capability. */
    std::vector<double> vbbCandidates() const;
};

} // namespace eval

