/**
 * @file
 * Subsystem power models (Eqs 7 and 8 of the paper):
 *
 *   Pdyn = Kdyn * alpha_f * Vdd^2 * f        (C folded into Kdyn)
 *   Psta = Ksta * Vdd * T^2 * exp(-q Vt / k T)
 *
 * Kdyn and Ksta are per-subsystem constants the manufacturer derives
 * from CAD data; here they are calibrated so that the no-variation
 * 4GHz/1V processor lands at the paper's Figure 12 power levels
 * (~25W core+L1+L2 against a 30W per-core cap).
 */

#pragma once

#include <array>
#include <cstddef>

#include "timing/alpha_power.hh"
#include "variation/floorplan.hh"
#include "variation/process_params.hh"

namespace eval {

/** Dynamic power (W): Eq 7. */
double dynamicPower(double kdyn, double alphaF, double vdd, double freqHz);

/** Static (subthreshold leakage) power (W): Eq 8. @p tempC junction. */
double staticPower(double ksta, double vdd, double tempC, double vtEff);

/** Per-subsystem power constants plus the reference activity used for
 *  calibration. */
struct SubsystemPowerParams
{
    double kdyn = 0.0;      ///< W / (V^2 * Hz), activity folded out
    double ksta = 0.0;      ///< W / (V * K^2), before the exp(Vt) term
    double alphaRef = 0.0;  ///< reference accesses/cycle for calibration
};

/** Chip-level calibration targets (Figure 12 power levels). */
struct PowerCalibration
{
    double coreDynamicTargetW = 15.5;  ///< core+L1 dynamic at nominal
    double coreStaticTargetW = 6.5;    ///< core+L1 static at nominal
    double calibrationTempC = 75.0;    ///< junction temp for the static cal
    double l2DynamicW = 1.0;           ///< private L2, fixed domain
    double l2StaticW = 2.0;
    double checkerPowerW = 1.0;        ///< Diva checker (TS environments)
};

/**
 * Derive per-subsystem Kdyn/Ksta so the no-variation chip meets the
 * calibration targets: dynamic shares follow typical activity-weighted
 * unit power breakdowns, static shares follow area.
 */
std::array<SubsystemPowerParams, kNumSubsystems>
calibratePower(const ProcessParams &params, const PowerCalibration &cal);

} // namespace eval

