#include "power/vt0_calibration.hh"

#include <cmath>

#include "util/logging.hh"

namespace eval {

double
measureVt0(const ProcessParams &params, const SubsystemPowerParams &power,
           double trueVt0, const TesterConfig &cfg, Rng &rng)
{
    EVAL_ASSERT(power.ksta > 0.0, "Ksta must be known and positive");

    // Forward model: leakage at the test temperature with the true Vt0.
    const OperatingConditions op{params.vddNominal, 0.0, cfg.testTempC};
    const double vtAtTest = effectiveVt(params, trueVt0, op);
    const double psta =
        staticPower(power.ksta, params.vddNominal, cfg.testTempC, vtAtTest);

    // Meter noise.
    const double measured =
        psta * (1.0 + rng.gaussian(0.0, cfg.currentNoiseRel));
    EVAL_ASSERT(measured > 0.0, "non-physical leakage measurement");

    // Invert Eq 8 for the effective Vt at the test temperature, then
    // back out Vt0 at the reference conditions.
    const double tK = celsiusToKelvin(cfg.testTempC);
    const double base = power.ksta * params.vddNominal * tK * tK;
    const double vtEff = -(tK / kQOverK) * std::log(measured / base);
    const double vt0 = vtEff - params.k1 * (cfg.testTempC - params.vtRefTempC);
    return vt0;
}

} // namespace eval
