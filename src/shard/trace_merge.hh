/**
 * @file
 * Fleet telemetry merge: folds per-shard Chrome traces and span
 * profiles into one Perfetto timeline and one fleet profile.
 *
 * Each forked worker writes its own `trace/shard-<i>.json` (Chrome
 * trace_event format, from SpanTracer::writeJson) and
 * `trace/profile-shard-<i>.json` (the profile.json schema from
 * SpanTracer::profileJson).  After the campaign merge the supervisor
 * calls mergeShardTelemetry, which:
 *
 *  - rewrites every shard's events onto pid = shard index (with
 *    process_name "shard <i>" and process_sort_index = <i> metadata,
 *    so Perfetto renders the fleet as ordered process lanes while
 *    per-thread lanes keep their thread_name labels), and
 *  - sums profile buckets by span path.  Buckets are exact u64
 *    counters, so the fold is associative and order-insensitive —
 *    the same discipline CampaignAccumulator::merge enforces for
 *    stats, checked by tests/shard/trace_merge_test — and the merge
 *    walks shards in index order anyway to keep outputs byte-stable.
 *
 * Telemetry is observational: a missing or corrupt shard trace warns
 * and skips that shard, it never fails the campaign.  The parse
 * helpers themselves throw SnapshotError (the shard layer's error
 * contract) so tools (eval_prof) get a clean failure.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "trace/span_tracer.hh"

namespace eval {

/** Telemetry file layout inside the run directory. */
std::string shardTraceDir(const std::string &outDir);
std::string shardTracePath(const std::string &outDir,
                           std::uint32_t shardIndex);
std::string shardProfilePath(const std::string &outDir,
                             std::uint32_t shardIndex);
std::string mergedTracePath(const std::string &outDir);
std::string fleetProfilePath(const std::string &outDir);

/** A span profile keyed by path (the ProfileBucket::path field is
 *  kept in sync with the key). */
using SpanProfile = std::map<std::string, ProfileBucket>;

/** Parse a profile.json document (schema_version 1).  Throws
 *  SnapshotError on malformed JSON or a wrong schema. */
SpanProfile parseProfileJson(const std::string &text);

/** Fold @p other into @p into by summing buckets path-wise.
 *  Associative and order-insensitive (u64 sums). */
void mergeProfileInto(SpanProfile &into, const SpanProfile &other);

/** Serialize in the same schema SpanTracer::profileJson emits
 *  (sorted by path — a deterministic function of the profile). */
std::string profileToJson(const SpanProfile &profile);

/**
 * Merge per-shard Chrome traces into one timeline: every event of
 * shard i lands on pid i, each shard gains process_name /
 * process_sort_index metadata, thread metadata and span args pass
 * through.  Throws SnapshotError on malformed shard JSON.
 */
std::string mergeShardTraces(
    const std::vector<std::pair<std::uint32_t, std::string>> &shards);

/** What mergeShardTelemetry found and wrote. */
struct FleetTelemetry
{
    std::uint32_t tracesMerged = 0;   ///< shard traces folded in
    std::uint32_t profilesMerged = 0; ///< shard profiles folded in
    bool wroteTrace = false;
    bool wroteProfile = false;
};

/**
 * Read every shard's trace/profile under @p outDir, merge, and write
 * @p mergedTraceOut + @p fleetProfileOut (atomic renames; pass "" to
 * use the default locations under shardTraceDir).  Missing or corrupt
 * shard files warn and are skipped; nothing here throws.
 */
FleetTelemetry mergeShardTelemetry(std::uint32_t shards,
                                   const std::string &outDir,
                                   const std::string &mergedTraceOut,
                                   const std::string &fleetProfileOut);

} // namespace eval
