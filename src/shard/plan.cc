#include "shard/plan.hh"

#include <cstdlib>

#include "util/logging.hh"

namespace eval {

std::vector<ShardRange>
planShards(std::uint64_t chips, std::uint32_t shards)
{
    EVAL_ASSERT(shards > 0, "shard plan needs at least one shard");
    std::vector<ShardRange> plan;
    plan.reserve(shards);
    const std::uint64_t base = chips / shards;
    const std::uint64_t extra = chips % shards;
    std::uint64_t begin = 0;
    for (std::uint32_t i = 0; i < shards; ++i) {
        const std::uint64_t size = base + (i < extra ? 1 : 0);
        plan.push_back(ShardRange{begin, begin + size});
        begin += size;
    }
    return plan;
}

ShardRange
shardRangeFor(std::uint64_t chips, const ShardSpec &spec)
{
    EVAL_ASSERT(spec.index < spec.count, "shard index out of range");
    return planShards(chips, spec.count)[spec.index];
}

bool
parseShardSpec(const std::string &text, ShardSpec &out)
{
    const std::size_t slash = text.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= text.size()) {
        return false;
    }
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (i == slash)
            continue;
        if (text[i] < '0' || text[i] > '9')
            return false;
    }
    const unsigned long index =
        std::strtoul(text.substr(0, slash).c_str(), nullptr, 10);
    const unsigned long count =
        std::strtoul(text.substr(slash + 1).c_str(), nullptr, 10);
    if (count == 0 || index >= count)
        return false;
    out.index = static_cast<std::uint32_t>(index);
    out.count = static_cast<std::uint32_t>(count);
    return true;
}

std::string
formatShardSpec(const ShardSpec &spec)
{
    return std::to_string(spec.index) + "/" +
           std::to_string(spec.count);
}

} // namespace eval
