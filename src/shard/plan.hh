/**
 * @file
 * Shard planner: deterministic partition of a chip-id range across
 * workers, and the `--shard i/N` spec the worker protocol speaks.
 *
 * The partition is contiguous and balanced (the first `chips % N`
 * shards get one extra chip), so concatenating shard results in shard
 * order walks chip ids 0..chips-1 exactly once in increasing order —
 * the property the order-preserving accumulator merge() needs to
 * reproduce the monolithic serial fold bit-for-bit.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace eval {

/** Half-open chip-id range [begin, end) owned by one shard. */
struct ShardRange
{
    std::uint64_t begin = 0;
    std::uint64_t end = 0;

    std::uint64_t count() const { return end - begin; }
    bool empty() const { return end == begin; }
};

/** Parsed `--shard i/N` worker coordinate. */
struct ShardSpec
{
    std::uint32_t index = 0;
    std::uint32_t count = 1;
};

/**
 * Partition @p chips ids into @p shards contiguous balanced ranges
 * (some may be empty when shards > chips).  Pure: the plan depends
 * only on (chips, shards), so the supervisor and every worker compute
 * the same ranges independently.
 */
std::vector<ShardRange> planShards(std::uint64_t chips,
                                   std::uint32_t shards);

/** The range shard @p spec owns under planShards(chips, spec.count). */
ShardRange shardRangeFor(std::uint64_t chips, const ShardSpec &spec);

/** Parse "i/N" with 0 <= i < N; false on malformed input. */
bool parseShardSpec(const std::string &text, ShardSpec &out);

/** Render @p spec as "i/N". */
std::string formatShardSpec(const ShardSpec &spec);

} // namespace eval
