#include "shard/worker.hh"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <filesystem>

#include "exec/thread_pool.hh"
#include "obs/progress.hh"
#include "util/logging.hh"
#include "valid/checkpoint.hh"
#include "valid/snapshot.hh"

namespace eval {

namespace fs = std::filesystem;

namespace {

std::string
shardFile(const std::string &outDir, std::uint32_t shardIndex,
          const char *suffix)
{
    return (fs::path(outDir) /
            ("shard-" + std::to_string(shardIndex) + suffix))
        .string();
}

/** The tracker run-id: one declaration per (campaign, shard). */
std::string
progressRunId(const std::string &fingerprint, const ShardSpec &spec)
{
    return fingerprint + "#shard=" + formatShardSpec(spec);
}

} // namespace

std::string
shardResultPath(const std::string &outDir, std::uint32_t shardIndex)
{
    return shardFile(outDir, shardIndex, ".result.snap");
}

std::string
shardCheckpointPath(const std::string &outDir, std::uint32_t shardIndex)
{
    return shardFile(outDir, shardIndex, ".ckpt.snap");
}

std::string
shardStatusDir(const std::string &outDir)
{
    return (fs::path(outDir) / "status").string();
}

std::string
shardStatusPath(const std::string &outDir, std::uint32_t shardIndex)
{
    return (fs::path(shardStatusDir(outDir)) /
            ("shard-" + std::to_string(shardIndex) + ".json"))
        .string();
}

CampaignAccumulator
readShardResult(const CampaignConfig &campaign,
                std::uint32_t shardIndex, std::uint32_t shardCount,
                const std::string &outDir)
{
    // A completed result is a checkpoint whose cursor reached the end
    // of its range: one schema, one validator, one fuzz surface.
    const ShardCheckpoint cp =
        readCheckpointFile(shardResultPath(outDir, shardIndex));
    const ShardRange range = shardRangeFor(
        static_cast<std::uint64_t>(campaign.experiment.chips),
        ShardSpec{shardIndex, shardCount});
    if (cp.campaignFingerprint != campaign.fingerprint())
        throw SnapshotError("shard result is from a different "
                            "campaign: " +
                            cp.campaignFingerprint);
    if (cp.shardIndex != shardIndex || cp.shardCount != shardCount ||
        cp.rangeBegin != range.begin || cp.rangeEnd != range.end)
        throw SnapshotError("shard result coordinates disagree with "
                            "the shard plan");
    if (cp.nextChip != cp.rangeEnd)
        throw SnapshotError("shard result is incomplete (cursor " +
                            std::to_string(cp.nextChip) + " of " +
                            std::to_string(cp.rangeEnd) + ")");
    CampaignAccumulator acc =
        CampaignAccumulator::fromPayload(cp.accumulator);
    if (acc.firstChip() != range.begin || acc.nextChip() != range.end)
        throw SnapshotError(
            "shard result accumulator range disagrees with its "
            "envelope");
    return acc;
}

bool
shardResultUsable(const CampaignConfig &campaign,
                  std::uint32_t shardIndex, std::uint32_t shardCount,
                  const std::string &outDir)
{
    try {
        readShardResult(campaign, shardIndex, shardCount, outDir);
        return true;
    } catch (const SnapshotError &) {
        return false;
    }
}

int
runShardWorker(const ShardWorkerOptions &opts)
{
    const ShardSpec &spec = opts.spec;
    if (spec.count == 0 || spec.index >= spec.count ||
        opts.campaign.experiment.chips < 0) {
        warn("shard worker: bad shard spec or population");
        return kShardExitConfig;
    }
    const auto total =
        static_cast<std::uint64_t>(opts.campaign.experiment.chips);
    const ShardRange range = shardRangeFor(total, spec);
    const std::string fp = opts.campaign.fingerprint();

    std::error_code ec;
    fs::create_directories(opts.outDir, ec);
    const std::string resultPath =
        shardResultPath(opts.outDir, spec.index);
    const std::string ckptPath =
        shardCheckpointPath(opts.outDir, spec.index);

    if (opts.resume &&
        shardResultUsable(opts.campaign, spec.index, spec.count,
                          opts.outDir)) {
        inform("shard ", formatShardSpec(spec),
               " already complete, nothing to resume");
        return kShardExitOk;
    }

    // Recover the accumulator + cursor from the checkpoint, if any.
    // A corrupt/truncated/mismatched checkpoint is a *clean* error:
    // the operator must decide (delete it or fix the invocation),
    // because silently restarting would hide lost statistics.
    CampaignAccumulator acc(range.begin);
    std::uint64_t cursor = range.begin;
    if (opts.resume && fs::exists(ckptPath)) {
        try {
            const ShardCheckpoint cp = readCheckpointFile(ckptPath);
            if (cp.campaignFingerprint != fp)
                throw SnapshotError(
                    "checkpoint is from a different campaign");
            if (cp.shardIndex != spec.index ||
                cp.shardCount != spec.count ||
                cp.rangeBegin != range.begin ||
                cp.rangeEnd != range.end)
                throw SnapshotError("checkpoint coordinates disagree "
                                    "with the shard plan");
            acc = CampaignAccumulator::fromPayload(cp.accumulator);
            if (acc.firstChip() != range.begin ||
                acc.nextChip() != cp.nextChip)
                throw SnapshotError("checkpoint accumulator range "
                                    "disagrees with its cursor");
            cursor = cp.nextChip;
            inform("shard ", formatShardSpec(spec), " resuming at chip ",
                   cursor, " of [", range.begin, ", ", range.end, ")");
        } catch (const SnapshotError &e) {
            warn("cannot resume shard ", formatShardSpec(spec), ": ",
                 e.what());
            return kShardExitCorrupt;
        }
    }

    // A fresh context per worker: chip i is pure in (seed, i), so
    // this context produces the monolithic run's chips exactly,
    // manufactured lazily one block at a time.
    ExperimentContext ctx(opts.campaign.experiment);

    // Progress: totals dedupe by (tracker, run id) so a resumed
    // re-registration cannot double-count the range; the checkpointed
    // prefix counts as done only when this process has not already
    // ticked it live.
    const std::string runId = progressRunId(fp, spec);
    ProgressRegistry &registry = ProgressRegistry::global();
    const bool tickedBefore = registry.hasDeclared("chips", runId);
    ProgressTracker &progress =
        registry.declareTotal("chips", runId, range.count());
    if (cursor > range.begin && !tickedBefore)
        progress.tick(cursor - range.begin);

    const std::uint64_t blockChips =
        std::max<std::uint64_t>(1, opts.checkpointEvery);
    std::uint64_t processed = 0;
    while (cursor < range.end) {
        const std::uint64_t blockEnd =
            std::min(cursor + blockChips, range.end);
        const auto blockSize =
            static_cast<std::size_t>(blockEnd - cursor);

        // Parallel fan-out over the block, serial fold in chip order
        // (slot writes + ordered accumulation, PR 2 discipline).
        const auto results = globalPool().parallelMap(
            blockSize, [&](std::size_t i) {
                ChipCampaignResult r = runCampaignChip(
                    ctx, opts.campaign,
                    static_cast<std::size_t>(cursor) + i);
                progress.tick();
                return r;
            });
        for (std::size_t i = 0; i < blockSize; ++i)
            acc.addChip(cursor + i, results[i]);

        // Bound memory: this block's chips (and their model/fuzzy/
        // static-config cache entries) are dead weight now.
        for (std::uint64_t id = cursor; id < blockEnd; ++id)
            ctx.evictChip(static_cast<std::size_t>(id));

        cursor = blockEnd;
        processed += blockSize;

        if (opts.killAfterChips && processed >= opts.killAfterChips) {
            // Smoke-test hook: die like the OOM killer would, before
            // this block's checkpoint lands — resume must recompute
            // the block and still match bit-for-bit.
            std::raise(SIGKILL);
        }

        const ShardCheckpoint cp{fp,          spec.index, spec.count,
                                 range.begin, range.end,  cursor,
                                 acc.toPayload()};
        if (!writeCheckpointFile(ckptPath, cp,
                                 opts.binarySnapshots)) {
            warn("shard ", formatShardSpec(spec),
                 ": cannot write checkpoint");
            return kShardExitConfig;
        }

        if (opts.stopAfterChips && processed >= opts.stopAfterChips &&
            cursor < range.end) {
            inform("shard ", formatShardSpec(spec),
                   " stopping after ", processed,
                   " chips (checkpoint at ", cursor, ")");
            return kShardExitInterrupted;
        }
    }

    const ShardCheckpoint done{fp,          spec.index, spec.count,
                               range.begin, range.end,  range.end,
                               acc.toPayload()};
    if (!writeCheckpointFile(resultPath, done, opts.binarySnapshots)) {
        warn("shard ", formatShardSpec(spec),
             ": cannot write result");
        return kShardExitConfig;
    }
    std::remove(ckptPath.c_str());
    return kShardExitOk;
}

} // namespace eval
