#include "shard/campaign.hh"

#include "core/fuzzy_adaptation.hh"
#include "core/optimizer.hh"
#include "util/logging.hh"
#include "valid/snapshot.hh"
#include "workload/profile.hh"

namespace eval {

namespace {

/** Controller invocations happen at this heat-sink temperature
 *  (matches runFig13Micro / bench_fig13_outcomes). */
constexpr double kThC = 65.0;

/** Chip-binning histogram layout: 20 bins over [0, 1]; a perfect 1.0
 *  good-share clamps into the top bin by the Histogram edge rule. */
constexpr double kHistLo = 0.0;
constexpr double kHistHi = 1.0;
constexpr std::size_t kHistBins = 20;

const char *
outcomeKey(std::size_t outcome)
{
    return retuneOutcomeName(static_cast<RetuneOutcome>(outcome));
}

} // namespace

const std::array<VoltageEnv, kNumVoltageEnvs> &
fig13VoltageEnvs()
{
    static const std::array<VoltageEnv, kNumVoltageEnvs> envs = {{
        {"a_ts", false, false},
        {"b_ts_abb", true, false},
        {"c_ts_asv", false, true},
        {"d_ts_abb_asv", true, true},
    }};
    return envs;
}

EnvCapabilities
fig13Caps(const VoltageEnv &env)
{
    EnvCapabilities caps;
    caps.timingSpec = true;
    caps.abb = env.abb;
    caps.asv = env.asv;
    caps.fuReplication = true;
    caps.queueResize = true;
    return caps;
}

std::string
CampaignConfig::fingerprint() const
{
    return experiment.fingerprint() +
           ";scheme=" + adaptSchemeName(scheme) + ";campaign=fig13";
}

std::uint64_t
ChipCampaignResult::invocations() const
{
    std::uint64_t n = 0;
    for (const auto &env : outcomes)
        for (std::uint64_t c : env)
            n += c;
    return n;
}

double
ChipCampaignResult::goodShare() const
{
    const std::uint64_t total = invocations();
    if (total == 0)
        return 1.0;
    std::uint64_t good = 0;
    for (const auto &env : outcomes)
        good += env[static_cast<std::size_t>(RetuneOutcome::NoChange)];
    return static_cast<double>(good) / static_cast<double>(total);
}

ChipCampaignResult
runCampaignChip(ExperimentContext &ctx, const CampaignConfig &campaign,
                std::size_t chip)
{
    EVAL_ASSERT(campaign.scheme != AdaptScheme::Static,
                "the Fig 13 campaign is a dynamic-controller study");
    const auto apps = ctx.selectedApps();

    ChipCampaignResult result;
    for (std::size_t e = 0; e < kNumVoltageEnvs; ++e) {
        const EnvCapabilities caps = fig13Caps(fig13VoltageEnvs()[e]);
        for (std::size_t a = 0; a < apps.size(); ++a) {
            const AppProfile &app = *apps[a];
            const std::size_t coreIdx = (chip + a) % 4;
            CoreSystemModel &core = ctx.coreModel(chip, coreIdx);
            core.setAppType(app.isFp);

            // Fresh optimizer + controller per (env, app), exactly
            // like runFig13Micro: the controller's saved-config table
            // must not leak across environments.
            std::unique_ptr<ExhaustiveOptimizer> exh;
            std::unique_ptr<FuzzyOptimizer> fuzzy;
            SubsystemOptimizer *sub = nullptr;
            if (campaign.scheme == AdaptScheme::FuzzyDyn) {
                fuzzy = std::make_unique<FuzzyOptimizer>(
                    ctx.coreFuzzy(chip, coreIdx, caps));
                sub = fuzzy.get();
            } else {
                exh = std::make_unique<ExhaustiveOptimizer>(
                    caps, ctx.config().constraints);
                sub = exh.get();
            }
            DynamicController ctl(*sub, caps,
                                  ctx.config().constraints,
                                  ctx.config().recovery);

            const AppCharacterization &chr =
                ctx.characterizations().get(app);
            for (std::size_t p = 0; p < chr.phases.size(); ++p) {
                const PhaseAdaptation ad =
                    ctl.adaptPhase(core, p, chr.phases[p].chr, kThC);
                if (!ad.reusedSaved) {
                    ++result.outcomes[e][static_cast<std::size_t>(
                        ad.outcome)];
                }
            }
        }
    }
    return result;
}

CampaignAccumulator::CampaignAccumulator(std::uint64_t firstChip)
    : firstChip_(firstChip), nextChip_(firstChip),
      hist_(kHistLo, kHistHi, kHistBins)
{
}

CampaignAccumulator::CampaignAccumulator(
    const CampaignAccumulator &other)
    : hist_(kHistLo, kHistHi, kHistBins)
{
    assignFrom(other);
}

CampaignAccumulator &
CampaignAccumulator::operator=(const CampaignAccumulator &other)
{
    if (this != &other)
        assignFrom(other);
    return *this;
}

void
CampaignAccumulator::assignFrom(const CampaignAccumulator &other)
{
    firstChip_ = other.firstChip_;
    nextChip_ = other.nextChip_;
    for (std::size_t e = 0; e < kNumVoltageEnvs; ++e) {
        for (std::size_t o = 0; o < kNumRetuneOutcomes; ++o) {
            outcomes_[e][o].reset();
            outcomes_[e][o].inc(other.outcomes_[e][o].value());
        }
    }
    hist_ = other.hist_;
    shares_ = other.shares_;
}

void
CampaignAccumulator::addChip(std::uint64_t chipId,
                             const ChipCampaignResult &r)
{
    EVAL_ASSERT(chipId == nextChip_,
                "accumulator must be fed chips in id order");
    for (std::size_t e = 0; e < kNumVoltageEnvs; ++e)
        for (std::size_t o = 0; o < kNumRetuneOutcomes; ++o)
            outcomes_[e][o].inc(r.outcomes[e][o]);
    const double share = r.goodShare();
    hist_.add(share, 1.0);
    shares_.add(share);
    ++nextChip_;
}

void
CampaignAccumulator::merge(const CampaignAccumulator &other)
{
    EVAL_ASSERT(other.firstChip_ == nextChip_,
                "shard merge must preserve chip-id order "
                "(other accumulator does not start where this ends)");
    for (std::size_t e = 0; e < kNumVoltageEnvs; ++e)
        for (std::size_t o = 0; o < kNumRetuneOutcomes; ++o)
            outcomes_[e][o].merge(other.outcomes_[e][o]);
    hist_.merge(other.hist_);
    shares_.merge(other.shares_);
    nextChip_ = other.nextChip_;
}

std::uint64_t
CampaignAccumulator::outcomeCount(std::size_t env,
                                  RetuneOutcome outcome) const
{
    return outcomes_[env][static_cast<std::size_t>(outcome)].value();
}

std::uint64_t
CampaignAccumulator::envInvocations(std::size_t env) const
{
    std::uint64_t n = 0;
    for (std::size_t o = 0; o < kNumRetuneOutcomes; ++o)
        n += outcomes_[env][o].value();
    return n;
}

JsonValue
CampaignAccumulator::toPayload() const
{
    JsonValue payload = JsonValue::object();
    payload.set("first_chip", firstChip_);
    payload.set("next_chip", nextChip_);

    JsonValue envs = JsonValue::array();
    for (std::size_t e = 0; e < kNumVoltageEnvs; ++e) {
        JsonValue env = JsonValue::object();
        env.set("tag", fig13VoltageEnvs()[e].tag);
        JsonValue counts = JsonValue::object();
        for (std::size_t o = 0; o < kNumRetuneOutcomes; ++o)
            counts.set(outcomeKey(o), outcomes_[e][o].value());
        env.set("outcomes", std::move(counts));
        envs.push(std::move(env));
    }
    payload.set("envs", std::move(envs));

    // The histogram is derived state: it rebuilds exactly from the
    // ordered per-chip shares (weight-1 adds), so the payload stays
    // minimal and cannot go out of sync with its source samples.
    JsonValue shares = JsonValue::array();
    for (double s : shares_.samples())
        shares.push(s);
    payload.set("good_shares", std::move(shares));
    return payload;
}

CampaignAccumulator
CampaignAccumulator::fromPayload(const JsonValue &payload)
{
    for (const char *key : {"first_chip", "next_chip", "envs",
                            "good_shares"}) {
        if (!payload.has(key))
            throw SnapshotError(
                std::string("shard accumulator payload missing '") +
                key + "'");
    }
    CampaignAccumulator acc(payload.at("first_chip").asUint());
    const std::uint64_t next = payload.at("next_chip").asUint();
    if (next < acc.firstChip_)
        throw SnapshotError("shard accumulator range is inverted");

    const auto &envs = payload.at("envs").asArray();
    if (envs.size() != kNumVoltageEnvs)
        throw SnapshotError("shard accumulator env count mismatch");
    for (std::size_t e = 0; e < kNumVoltageEnvs; ++e) {
        const JsonValue &env = envs[e];
        if (!env.has("tag") ||
            env.at("tag").asString() != fig13VoltageEnvs()[e].tag)
            throw SnapshotError("shard accumulator env tag mismatch");
        const JsonValue &counts = env.at("outcomes");
        for (std::size_t o = 0; o < kNumRetuneOutcomes; ++o)
            acc.outcomes_[e][o].inc(
                counts.at(outcomeKey(o)).asUint());
    }

    const auto &shares = payload.at("good_shares").asArray();
    if (shares.size() != next - acc.firstChip_)
        throw SnapshotError(
            "shard accumulator sample count disagrees with its "
            "chip range");
    for (const JsonValue &s : shares) {
        acc.shares_.add(s.asDouble());
        acc.hist_.add(s.asDouble(), 1.0);
    }
    acc.nextChip_ = next;
    return acc;
}

JsonValue
CampaignAccumulator::toSnapshot() const
{
    return makeSnapshot("shard_result", 1, toPayload());
}

CampaignAccumulator
CampaignAccumulator::fromSnapshot(const JsonValue &snapshot)
{
    return fromPayload(snapshotPayload(snapshot, "shard_result", 1));
}

std::string
CampaignAccumulator::statsJson() const
{
    JsonValue doc = JsonValue::object();
    doc.set("kind", "fig13_campaign_stats");
    doc.set("first_chip", firstChip_);
    doc.set("chips", chipCount());

    JsonValue envs = JsonValue::array();
    for (std::size_t e = 0; e < kNumVoltageEnvs; ++e) {
        JsonValue env = JsonValue::object();
        env.set("tag", fig13VoltageEnvs()[e].tag);
        const std::uint64_t total = envInvocations(e);
        env.set("invocations", total);
        JsonValue counts = JsonValue::object();
        JsonValue sharesObj = JsonValue::object();
        for (std::size_t o = 0; o < kNumRetuneOutcomes; ++o) {
            const std::uint64_t n = outcomes_[e][o].value();
            counts.set(outcomeKey(o), n);
            sharesObj.set(outcomeKey(o),
                          total ? static_cast<double>(n) /
                                      static_cast<double>(total)
                                : 0.0);
        }
        env.set("outcomes", std::move(counts));
        env.set("outcome_shares", std::move(sharesObj));
        envs.push(std::move(env));
    }
    doc.set("envs", std::move(envs));

    JsonValue good = JsonValue::object();
    good.set("mean", shares_.mean());
    good.set("p50", shares_.percentile(0.50));
    good.set("p90", shares_.percentile(0.90));
    good.set("p99", shares_.percentile(0.99));
    doc.set("good_share", std::move(good));

    JsonValue binning = JsonValue::object();
    binning.set("lo", hist_.lo());
    binning.set("hi", hist_.hi());
    JsonValue bins = JsonValue::array();
    for (std::size_t i = 0; i < hist_.bins(); ++i)
        bins.push(hist_.count(i));
    binning.set("counts", std::move(bins));
    doc.set("chip_binning", std::move(binning));

    return doc.dump(2) + "\n";
}

double
CampaignAccumulator::digest() const
{
    return digest53(encodeBinary(toSnapshot()));
}

} // namespace eval
