/**
 * @file
 * Shard worker: runs one contiguous chip-id slice of the campaign
 * with bounded memory and crash-safe checkpoints.
 *
 * The worker manufactures chips lazily (ExperimentContext::chip) and
 * evicts each block's chips — with their core models, fuzzy
 * controllers and static configs — after folding the block into the
 * accumulator, so peak RSS is bounded by the block size, never the
 * population.  At every block boundary it atomically rewrites its
 * checkpoint ("shard_checkpoint" v2); a SIGKILL at any instant loses
 * at most one block of work, and --resume replays from the checkpoint
 * to a byte-identical final result (tests/shard/checkpoint_resume).
 *
 * Exit codes: 0 done, 2 usage/config error, 3 interrupted (graceful
 * stop hook), 4 corrupt or mismatched checkpoint/result (the "clean
 * error" path for torn files — never a crash).
 */

#pragma once

#include <cstdint>
#include <string>

#include "shard/campaign.hh"
#include "shard/plan.hh"

namespace eval {

constexpr int kShardExitOk = 0;
constexpr int kShardExitConfig = 2;
constexpr int kShardExitInterrupted = 3;
constexpr int kShardExitCorrupt = 4;

/** One worker invocation (one shard of one campaign). */
struct ShardWorkerOptions
{
    CampaignConfig campaign;
    ShardSpec spec;
    /** Directory for results/checkpoints/status (created on demand;
     *  shared by all shards of the run). */
    std::string outDir;
    /** Chips per block: the checkpoint cadence AND the memory bound
     *  (a block's chips stay resident until its fold completes). */
    std::uint64_t checkpointEvery = 16;
    bool resume = false;
    bool binarySnapshots = true;

    /** Test hook: stop gracefully (exit 3, checkpoint intact) once
     *  this many chips were processed this invocation; 0 = off. */
    std::uint64_t stopAfterChips = 0;
    /** Smoke-test hook: raise(SIGKILL) after folding this many chips,
     *  *before* the block's checkpoint is written — the harshest
     *  resume case (stale checkpoint, dead process); 0 = off.
     *  Wired to EVAL_SHARD_ABORT_AFTER by eval_cli. */
    std::uint64_t killAfterChips = 0;
};

/** Result/checkpoint file layout inside the run directory. */
std::string shardResultPath(const std::string &outDir,
                            std::uint32_t shardIndex);
std::string shardCheckpointPath(const std::string &outDir,
                                std::uint32_t shardIndex);
/** Per-shard status JSON (eval_top fleet view tails this dir). */
std::string shardStatusDir(const std::string &outDir);
std::string shardStatusPath(const std::string &outDir,
                            std::uint32_t shardIndex);

/**
 * Load shard @p shardIndex's completed result for @p campaign.
 * Throws SnapshotError when missing, corrupt, or from a different
 * campaign/shard-count.
 */
CampaignAccumulator readShardResult(const CampaignConfig &campaign,
                                    std::uint32_t shardIndex,
                                    std::uint32_t shardCount,
                                    const std::string &outDir);

/** Whether a valid completed result for this shard already exists
 *  (the supervisor's resume fast-path). */
bool shardResultUsable(const CampaignConfig &campaign,
                       std::uint32_t shardIndex,
                       std::uint32_t shardCount,
                       const std::string &outDir);

/** Run one shard to completion (or interruption); see exit codes. */
int runShardWorker(const ShardWorkerOptions &opts);

} // namespace eval
