#include "shard/supervisor.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "exec/subprocess.hh"
#include "exec/thread_pool.hh"
#include "obs/progress.hh"
#include "shard/trace_merge.hh"
#include "shard/worker.hh"
#include "trace/span_tracer.hh"
#include "util/logging.hh"
#include "valid/snapshot.hh"

namespace eval {

namespace fs = std::filesystem;

namespace {

/** Write @p bytes to @p path atomically (tmp + rename). */
bool
writeFileAtomic(const std::string &path, const std::string &bytes)
{
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        warn("cannot open ", tmp, " for writing");
        return false;
    }
    const bool wrote =
        std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    const bool closed = std::fclose(f) == 0;
    if (!wrote || !closed || std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("cannot write ", path);
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace

std::string
mergedSnapshotPath(const std::string &outDir)
{
    return (fs::path(outDir) / "merged.snap").string();
}

std::string
mergedStatsPath(const std::string &outDir)
{
    return (fs::path(outDir) / "merged.stats.json").string();
}

CampaignAccumulator
mergeShardResults(const CampaignConfig &campaign, std::uint32_t shards,
                  const std::string &outDir)
{
    EVAL_ASSERT(shards > 0, "merge needs at least one shard");
    // Shard 0 starts at chip 0 and each merge demands the next
    // contiguous range, so index order is the only order that
    // type-checks — and it reproduces the serial accumulation.
    CampaignAccumulator merged =
        readShardResult(campaign, 0, shards, outDir);
    for (std::uint32_t i = 1; i < shards; ++i)
        merged.merge(readShardResult(campaign, i, shards, outDir));
    return merged;
}

bool
writeMergedOutputs(const CampaignAccumulator &merged,
                   const std::string &outDir, bool binarySnapshots)
{
    std::error_code ec;
    fs::create_directories(outDir, ec);
    const JsonValue snap = merged.toSnapshot();
    const std::string snapBytes =
        binarySnapshots ? encodeBinary(snap) : snap.dump(2) + "\n";
    return writeFileAtomic(mergedSnapshotPath(outDir), snapBytes) &&
           writeFileAtomic(mergedStatsPath(outDir), merged.statsJson());
}

int
runShardSupervisor(const ShardSupervisorOptions &opts)
{
    if (opts.shards == 0 || opts.campaign.experiment.chips < 0) {
        warn("shard supervisor: bad shard count or population");
        return kShardExitConfig;
    }

    if (opts.traceSpans) {
        std::error_code ec;
        fs::create_directories(shardTraceDir(opts.outDir), ec);
    }

    if (opts.workerArgv.empty()) {
        // In-process mode (tests, benches): shards run sequentially,
        // each with its own fresh ExperimentContext inside
        // runShardWorker — the same isolation a forked worker gets,
        // minus the process boundary.
        for (std::uint32_t i = 0; i < opts.shards; ++i) {
            const ShardSpec spec{i, opts.shards};
            if (opts.resume &&
                shardResultUsable(opts.campaign, i, opts.shards,
                                  opts.outDir))
                continue;
            ShardWorkerOptions w;
            w.campaign = opts.campaign;
            w.spec = spec;
            w.outDir = opts.outDir;
            w.checkpointEvery = opts.checkpointEvery;
            w.resume = opts.resume;
            w.binarySnapshots = opts.binarySnapshots;
            int rc;
            if (opts.traceSpans) {
                // Scope the global tracer to this shard so the
                // per-shard files carry exactly this shard's spans —
                // the same isolation a forked worker gets for free.
                SpanTracer &tracer = SpanTracer::global();
                tracer.clear();
                tracer.setEnabled(true);
                rc = runShardWorker(w);
                tracer.setEnabled(false);
                tracer.writeJson(shardTracePath(opts.outDir, i));
                tracer.writeProfileJson(
                    shardProfilePath(opts.outDir, i));
                tracer.clear();
            } else {
                rc = runShardWorker(w);
            }
            if (rc != kShardExitOk) {
                warn("shard ", formatShardSpec(spec),
                     " failed with exit code ", rc);
                return rc;
            }
        }
    } else {
        // Forked mode: spawn every worker concurrently, reap all,
        // fail if any died (a signaled worker — e.g. the SIGKILL
        // smoke test — counts as failure; its checkpoint survives).
        std::vector<Subprocess> workers;
        std::vector<ShardSpec> specs;
        workers.reserve(opts.shards);
        for (std::uint32_t i = 0; i < opts.shards; ++i) {
            const ShardSpec spec{i, opts.shards};
            if (opts.resume &&
                shardResultUsable(opts.campaign, i, opts.shards,
                                  opts.outDir))
                continue;
            std::vector<std::string> argv = opts.workerArgv;
            if (opts.traceSpans) {
                argv.push_back("--trace-spans=" +
                               shardTracePath(opts.outDir, i));
                argv.push_back("--profile-out=" +
                               shardProfilePath(opts.outDir, i));
            }
            argv.push_back("--shard=" + formatShardSpec(spec));
            workers.push_back(Subprocess::spawn(argv));
            specs.push_back(spec);
        }
        bool allOk = true;
        for (std::size_t i = 0; i < workers.size(); ++i) {
            const SubprocessResult r = workers[i].wait();
            if (!r.ok()) {
                allOk = false;
                if (r.signaled)
                    warn("shard ", formatShardSpec(specs[i]),
                         " killed by signal ", r.termSignal);
                else
                    warn("shard ", formatShardSpec(specs[i]),
                         " exited with code ", r.exitCode);
            }
        }
        if (!allOk)
            return 1;
    }

    try {
        const CampaignAccumulator merged =
            mergeShardResults(opts.campaign, opts.shards, opts.outDir);
        if (!writeMergedOutputs(merged, opts.outDir,
                                opts.binarySnapshots))
            return kShardExitConfig;
    } catch (const SnapshotError &e) {
        warn("cannot merge shard results: ", e.what());
        return kShardExitCorrupt;
    }

    // Telemetry merges last and never fails the run: the campaign
    // outputs above are already durable, and a lost trace is a
    // warning, not a wasted compute budget.
    if (opts.traceSpans)
        mergeShardTelemetry(opts.shards, opts.outDir,
                            opts.mergedTraceOut, opts.fleetProfileOut);
    return kShardExitOk;
}

CampaignAccumulator
runMonolithic(const CampaignConfig &campaign)
{
    const auto total =
        static_cast<std::uint64_t>(campaign.experiment.chips);
    ExperimentContext ctx(campaign.experiment);

    ProgressTracker &progress = ProgressRegistry::global().declareTotal(
        "chips", campaign.fingerprint() + "#mono", total);

    // Same block-wise fan-out/fold/evict loop as the shard worker
    // (minus checkpoints), so even the reference path runs with
    // bounded memory — and the identical fold order makes "same
    // bytes" a statement about merging, not about scheduling.
    constexpr std::uint64_t kBlock = 16;
    CampaignAccumulator acc(0);
    std::uint64_t cursor = 0;
    while (cursor < total) {
        const std::uint64_t blockEnd = std::min(cursor + kBlock, total);
        const auto blockSize =
            static_cast<std::size_t>(blockEnd - cursor);
        const auto results = globalPool().parallelMap(
            blockSize, [&](std::size_t i) {
                ChipCampaignResult r = runCampaignChip(
                    ctx, campaign,
                    static_cast<std::size_t>(cursor) + i);
                progress.tick();
                return r;
            });
        for (std::size_t i = 0; i < blockSize; ++i)
            acc.addChip(cursor + i, results[i]);
        for (std::uint64_t id = cursor; id < blockEnd; ++id)
            ctx.evictChip(static_cast<std::size_t>(id));
        cursor = blockEnd;
    }
    return acc;
}

} // namespace eval
