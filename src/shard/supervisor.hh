/**
 * @file
 * Shard supervisor: plans the population split, drives the workers
 * (in-process for tests/benches, fork/exec for real runs), and merges
 * the per-shard results into the monolithic-equivalent outputs.
 *
 * Merging walks shards in index order; CampaignAccumulator::merge
 * refuses any other order, so the merged snapshot, stats JSON, and
 * digest are byte-identical to a monolithic run over the same chip
 * range — at any shard count, resumed or not.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "shard/campaign.hh"

namespace eval {

/** One supervised campaign run. */
struct ShardSupervisorOptions
{
    CampaignConfig campaign;
    std::uint32_t shards = 1;
    std::string outDir;
    std::uint64_t checkpointEvery = 16;
    bool resume = false;
    bool binarySnapshots = true;
    /**
     * Fork/exec worker protocol: argv prefix for one worker (the
     * executable plus every campaign/out-dir/resume flag); the
     * supervisor appends "--shard=i/N" per shard and runs all
     * workers concurrently.  Empty = run workers in-process,
     * sequentially, each with a fresh ExperimentContext.
     */
    std::vector<std::string> workerArgv;
    /**
     * Fleet telemetry: when true, every worker writes a Chrome trace
     * + span profile under <outDir>/trace (forked workers get
     * --trace-spans/--profile-out flags appended; in-process mode
     * drives the global SpanTracer around each shard, clearing it
     * between shards), and after the campaign merge the supervisor
     * folds them into one Perfetto timeline (pid = shard index) and
     * one fleet profile.json — see shard/trace_merge.hh.
     */
    bool traceSpans = false;
    /** Merged timeline destination; "" = <outDir>/trace/trace.json. */
    std::string mergedTraceOut;
    /** Fleet profile destination; "" = <outDir>/trace/profile.json. */
    std::string fleetProfileOut;
};

/** Merged outputs inside the run directory. */
std::string mergedSnapshotPath(const std::string &outDir);
std::string mergedStatsPath(const std::string &outDir);

/**
 * Merge the completed shard results in shard order.  Throws
 * SnapshotError when any shard result is missing, corrupt, or from a
 * different campaign.
 */
CampaignAccumulator mergeShardResults(const CampaignConfig &campaign,
                                      std::uint32_t shards,
                                      const std::string &outDir);

/** Write merged.snap + merged.stats.json (atomic renames). */
bool writeMergedOutputs(const CampaignAccumulator &merged,
                        const std::string &outDir,
                        bool binarySnapshots);

/**
 * Run every shard (skipping ones with usable results when resuming),
 * merge, and write the merged outputs.  Returns a process exit code:
 * 0 on success, the failing worker's code (in-process) or 1 (forked)
 * otherwise.
 */
int runShardSupervisor(const ShardSupervisorOptions &opts);

/**
 * The reference semantics: one context, every chip in id order, no
 * sharding machinery.  The differential suite compares everything
 * the supervisor produces against this.
 */
CampaignAccumulator runMonolithic(const CampaignConfig &campaign);

} // namespace eval
