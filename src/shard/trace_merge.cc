#include "shard/trace_merge.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/logging.hh"
#include "valid/json_value.hh"
#include "valid/snapshot.hh"

namespace eval {

namespace fs = std::filesystem;

namespace {

/** Write @p bytes to @p path atomically (tmp + rename). */
bool
writeFileAtomic(const std::string &path, const std::string &bytes)
{
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        warn("cannot open ", tmp, " for writing");
        return false;
    }
    const bool wrote =
        std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    const bool closed = std::fclose(f) == 0;
    if (!wrote || !closed || std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("cannot write ", path);
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

/** Whole-file slurp; false when the file cannot be opened. */
bool
readFileText(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream text;
    text << in.rdbuf();
    out = text.str();
    return true;
}

} // namespace

std::string
shardTraceDir(const std::string &outDir)
{
    return (fs::path(outDir) / "trace").string();
}

std::string
shardTracePath(const std::string &outDir, std::uint32_t shardIndex)
{
    return (fs::path(shardTraceDir(outDir)) /
            ("shard-" + std::to_string(shardIndex) + ".json"))
        .string();
}

std::string
shardProfilePath(const std::string &outDir, std::uint32_t shardIndex)
{
    return (fs::path(shardTraceDir(outDir)) /
            ("profile-shard-" + std::to_string(shardIndex) + ".json"))
        .string();
}

std::string
mergedTracePath(const std::string &outDir)
{
    return (fs::path(shardTraceDir(outDir)) / "trace.json").string();
}

std::string
fleetProfilePath(const std::string &outDir)
{
    return (fs::path(shardTraceDir(outDir)) / "profile.json").string();
}

SpanProfile
parseProfileJson(const std::string &text)
{
    SpanProfile out;
    try {
        const JsonValue doc = JsonValue::parse(text);
        if (doc.at("schema_version").asInt() != 1)
            throw SnapshotError(
                "unsupported profile schema_version " +
                std::to_string(doc.at("schema_version").asInt()));
        for (const JsonValue &span : doc.at("spans").asArray()) {
            const std::string &path = span.at("path").asString();
            ProfileBucket &b = out[path];
            b.path = path;
            b.name = span.at("name").asString();
            b.count += span.at("count").asUint();
            b.inclNs += span.at("incl_ns").asUint();
            b.selfNs += span.at("self_ns").asUint();
        }
    } catch (const JsonParseError &e) {
        throw SnapshotError(std::string("malformed profile JSON: ") +
                            e.what());
    } catch (const JsonTypeError &e) {
        throw SnapshotError(std::string("bad profile shape: ") +
                            e.what());
    }
    return out;
}

void
mergeProfileInto(SpanProfile &into, const SpanProfile &other)
{
    for (const auto &[path, bucket] : other) {
        ProfileBucket &b = into[path];
        if (b.path.empty()) {
            b.path = bucket.path;
            b.name = bucket.name;
        }
        b.count += bucket.count;
        b.inclNs += bucket.inclNs;
        b.selfNs += bucket.selfNs;
    }
}

std::string
profileToJson(const SpanProfile &profile)
{
    JsonValue spans = JsonValue::array();
    for (const auto &[path, b] : profile) {
        JsonValue span = JsonValue::object();
        span.set("path", path);
        span.set("name", b.name);
        span.set("count", b.count);
        span.set("incl_ns", b.inclNs);
        span.set("self_ns", b.selfNs);
        spans.push(std::move(span));
    }
    JsonValue doc = JsonValue::object();
    doc.set("schema_version", 1);
    doc.set("spans", std::move(spans));
    return doc.dump(2) + "\n";
}

std::string
mergeShardTraces(
    const std::vector<std::pair<std::uint32_t, std::string>> &shards)
{
    JsonValue events = JsonValue::array();
    for (const auto &[shardIndex, text] : shards) {
        JsonValue doc;
        try {
            doc = JsonValue::parse(text);
        } catch (const JsonParseError &e) {
            throw SnapshotError(
                std::string("malformed shard trace JSON: ") + e.what());
        }
        if (!doc.has("traceEvents"))
            throw SnapshotError("shard trace has no traceEvents");

        // The fleet lane for this shard: named, and sorted by shard
        // index regardless of Perfetto's default pid ordering.
        JsonValue procName = JsonValue::object();
        procName.set("name", "process_name");
        procName.set("ph", "M");
        procName.set("pid", static_cast<std::int64_t>(shardIndex));
        JsonValue procNameArgs = JsonValue::object();
        procNameArgs.set("name",
                         "shard " + std::to_string(shardIndex));
        procName.set("args", std::move(procNameArgs));
        events.push(std::move(procName));

        JsonValue procSort = JsonValue::object();
        procSort.set("name", "process_sort_index");
        procSort.set("ph", "M");
        procSort.set("pid", static_cast<std::int64_t>(shardIndex));
        JsonValue procSortArgs = JsonValue::object();
        procSortArgs.set("sort_index",
                         static_cast<std::int64_t>(shardIndex));
        procSort.set("args", std::move(procSortArgs));
        events.push(std::move(procSort));

        try {
            for (const JsonValue &ev : doc.at("traceEvents").asArray()) {
                JsonValue moved = ev;
                moved.set("pid",
                          static_cast<std::int64_t>(shardIndex));
                events.push(std::move(moved));
            }
        } catch (const JsonTypeError &e) {
            throw SnapshotError(std::string("bad shard trace shape: ") +
                                e.what());
        }
    }
    JsonValue doc = JsonValue::object();
    doc.set("traceEvents", std::move(events));
    doc.set("displayTimeUnit", "ms");
    return doc.dump(1) + "\n";
}

FleetTelemetry
mergeShardTelemetry(std::uint32_t shards, const std::string &outDir,
                    const std::string &mergedTraceOut,
                    const std::string &fleetProfileOut)
{
    FleetTelemetry result;
    std::vector<std::pair<std::uint32_t, std::string>> traces;
    SpanProfile fleet;
    for (std::uint32_t i = 0; i < shards; ++i) {
        std::string text;
        if (readFileText(shardTracePath(outDir, i), text)) {
            // Pre-validate so one torn shard file cannot take the
            // whole fleet timeline down with it.
            try {
                JsonValue::parse(text);
                traces.emplace_back(i, std::move(text));
            } catch (const JsonParseError &e) {
                warn("skipping trace of shard ", i, ": ", e.what());
            }
        } else {
            warn("no trace for shard ", i, ", skipping");
        }
        std::string profileText;
        if (readFileText(shardProfilePath(outDir, i), profileText)) {
            try {
                mergeProfileInto(fleet,
                                 parseProfileJson(profileText));
                ++result.profilesMerged;
            } catch (const SnapshotError &e) {
                warn("skipping profile of shard ", i, ": ", e.what());
            }
        } else {
            warn("no profile for shard ", i, ", skipping");
        }
    }

    const std::string tracePath = mergedTraceOut.empty()
                                      ? mergedTracePath(outDir)
                                      : mergedTraceOut;
    const std::string profilePath = fleetProfileOut.empty()
                                        ? fleetProfilePath(outDir)
                                        : fleetProfileOut;
    std::error_code ec;
    fs::create_directories(fs::path(tracePath).parent_path(), ec);
    fs::create_directories(fs::path(profilePath).parent_path(), ec);

    if (!traces.empty()) {
        try {
            const std::string merged = mergeShardTraces(traces);
            result.tracesMerged =
                static_cast<std::uint32_t>(traces.size());
            result.wroteTrace = writeFileAtomic(tracePath, merged);
        } catch (const SnapshotError &e) {
            warn("cannot merge shard traces: ", e.what());
        }
    }
    if (result.profilesMerged > 0)
        result.wroteProfile =
            writeFileAtomic(profilePath, profileToJson(fleet));
    return result;
}

} // namespace eval
