/**
 * @file
 * The sharded Fig 13 population campaign: a per-chip unit of work
 * that is a pure function of (campaign config, chip id), and an
 * order-preserving mergeable accumulator over per-chip results.
 *
 * Equivalence contract (proved by tests/shard/shard_differential_test
 * and enforced in CI by `check.sh --shard-smoke`): for any shard
 * count N,
 *
 *   merge(shard_0, shard_1, ..., shard_{N-1})  ==  monolithic run
 *
 * byte-for-byte, including the stats JSON and the snapshot digests.
 * The ingredients, each individually exact:
 *  - chip i is Rng::split-derived from (seed, i), so a fresh
 *    ExperimentContext inside any shard manufactures the same chip
 *    the monolithic context would (ChipFactory::manufactureAt);
 *  - per-chip tallies are u64 Counters (exact, associative);
 *  - the chip-binning histogram only ever takes weight-1 samples, so
 *    bin-wise merge equals serial accumulation exactly;
 *  - the good-share SampleSet merge is an ordered append.
 */

#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "core/controller.hh"
#include "core/environment.hh"
#include "stats/stat_registry.hh"
#include "util/statistics.hh"
#include "valid/json_value.hh"

namespace eval {

/** Number of RetuneOutcome values (Fig 13 outcome classes). */
constexpr std::size_t kNumRetuneOutcomes = 5;

/** The Fig 13 FU+Queue technique row sweeps these four voltage
 *  environments (same construction as bench_fig13_outcomes). */
struct VoltageEnv
{
    const char *tag;
    bool abb;
    bool asv;
};

constexpr std::size_t kNumVoltageEnvs = 4;

const std::array<VoltageEnv, kNumVoltageEnvs> &fig13VoltageEnvs();

/** Capabilities of one Fig 13 voltage environment (TS + FU + Queue
 *  plus the env's ABB/ASV bits). */
EnvCapabilities fig13Caps(const VoltageEnv &env);

/** What to run: the experiment population plus the adaptation
 *  scheme driving the controller. */
struct CampaignConfig
{
    ExperimentConfig experiment;
    AdaptScheme scheme = AdaptScheme::FuzzyDyn;

    /** Fingerprint of every result-changing knob; shard workers and
     *  checkpoints refuse to mix fingerprints. */
    std::string fingerprint() const;
};

/** Per-chip controller-outcome tallies across the voltage envs. */
struct ChipCampaignResult
{
    /** outcomes[env][RetuneOutcome] — fresh-retune invocations only,
     *  matching Fig 13 (saved-config reuses are not invocations). */
    std::array<std::array<std::uint64_t, kNumRetuneOutcomes>,
               kNumVoltageEnvs>
        outcomes{};

    std::uint64_t invocations() const;
    /** Fraction of invocations ending in NoChange (the chip runs at
     *  its tuned point without cuts); 1.0 when nothing retuned. */
    double goodShare() const;
};

/**
 * Run the campaign unit for one chip.  Pure in (campaign, chip id):
 * only per-chip caches of @p ctx are touched, so a fresh context
 * inside a shard worker reproduces the monolithic result exactly.
 */
ChipCampaignResult runCampaignChip(ExperimentContext &ctx,
                                   const CampaignConfig &campaign,
                                   std::size_t chip);

/**
 * Order-preserving mergeable accumulator over a contiguous chip-id
 * range.  addChip() must be fed chip ids in increasing order starting
 * at firstChip; merge() only accepts the accumulator that starts
 * exactly where this one ends, so any merge tree that type-checks
 * reproduces the one serial accumulation order (PR 2's bit-identity
 * property, lifted across process boundaries).
 */
class CampaignAccumulator
{
  public:
    explicit CampaignAccumulator(std::uint64_t firstChip = 0);

    CampaignAccumulator(const CampaignAccumulator &other);
    CampaignAccumulator &operator=(const CampaignAccumulator &other);

    std::uint64_t firstChip() const { return firstChip_; }
    /** One past the last accumulated chip id. */
    std::uint64_t nextChip() const { return nextChip_; }
    std::uint64_t chipCount() const { return nextChip_ - firstChip_; }

    /** Fold in chip @p chipId's result; must be nextChip(). */
    void addChip(std::uint64_t chipId, const ChipCampaignResult &r);

    /** Append @p other (which must start at nextChip()). */
    void merge(const CampaignAccumulator &other);

    std::uint64_t outcomeCount(std::size_t env,
                               RetuneOutcome outcome) const;
    std::uint64_t envInvocations(std::size_t env) const;
    const Histogram &goodShareHistogram() const { return hist_; }
    const SampleSet &goodShares() const { return shares_; }

    /** Serialize to / rebuild from a JSON payload (checkpoints and
     *  shard results).  fromPayload throws SnapshotError on shape
     *  violations. */
    JsonValue toPayload() const;
    static CampaignAccumulator fromPayload(const JsonValue &payload);

    /** Wrap the payload in a "shard_result" snapshot envelope. */
    JsonValue toSnapshot() const;
    static CampaignAccumulator fromSnapshot(const JsonValue &snapshot);

    /** Canonical human-readable statistics document: per-env outcome
     *  tallies and shares, good-share percentiles, and the
     *  chip-binning histogram.  Byte-deterministic. */
    std::string statsJson() const;

    /** digest53 over the binary-encoded snapshot — the outcome
     *  digest the differential suite compares. */
    double digest() const;

  private:
    void assignFrom(const CampaignAccumulator &other);

    std::uint64_t firstChip_ = 0;
    std::uint64_t nextChip_ = 0;
    /** [env][outcome] fresh-retune tallies. */
    std::array<std::array<Counter, kNumRetuneOutcomes>, kNumVoltageEnvs>
        outcomes_;
    /** Chip-binning curve: one weight-1 sample per chip at its
     *  good-share (integer weights keep bin-wise merge exact). */
    Histogram hist_;
    /** Per-chip good shares in chip order (exact tail percentiles). */
    SampleSet shares_;
};

} // namespace eval
