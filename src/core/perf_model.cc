#include "core/perf_model.hh"

#include "util/logging.hh"

namespace eval {

PerfInputs
PerfInputs::fromStats(const CoreStats &stats, double refFreqHz,
                      double recoveryPenaltyCycles)
{
    EVAL_ASSERT(refFreqHz > 0.0, "reference frequency must be positive");
    PerfInputs in;
    in.cpiComp = stats.cpiComp();
    in.missesPerInst = stats.missesPerInstruction();
    in.memPenaltySec = stats.missPenaltyCycles() / refFreqHz;
    in.recoveryPenaltyCycles = recoveryPenaltyCycles;
    return in;
}

double
cpiAt(double freqHz, double pePerInstruction, const PerfInputs &in)
{
    EVAL_ASSERT(freqHz > 0.0, "frequency must be positive");
    const double mp = in.memPenaltySec * freqHz;   // cycles per miss
    return in.cpiComp + in.missesPerInst * mp +
           pePerInstruction * in.recoveryPenaltyCycles;
}

double
performance(double freqHz, double pePerInstruction, const PerfInputs &in)
{
    return freqHz / cpiAt(freqHz, pePerInstruction, in);
}

} // namespace eval
