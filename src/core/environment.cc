#include "core/environment.hh"

#include <algorithm>
#include <sstream>

#include "core/perf_model.hh"
#include "stats/decision_trace.hh"
#include "stats/stat_registry.hh"
#include "trace/span_tracer.hh"
#include "util/logging.hh"
#include "util/math_utils.hh"

namespace eval {

const char *
environmentName(EnvironmentKind kind)
{
    switch (kind) {
      case EnvironmentKind::Baseline:     return "Baseline";
      case EnvironmentKind::TS:           return "TS";
      case EnvironmentKind::TS_ASV:       return "TS+ASV";
      case EnvironmentKind::TS_ASV_ABB:   return "TS+ASV+ABB";
      case EnvironmentKind::TS_ASV_Q:     return "TS+ASV+Q";
      case EnvironmentKind::TS_ASV_Q_FU:  return "TS+ASV+Q+FU";
      case EnvironmentKind::ALL:          return "ALL";
      case EnvironmentKind::NoVar:        return "NoVar";
    }
    return "?";
}

EnvCapabilities
environmentCaps(EnvironmentKind kind)
{
    EnvCapabilities caps;
    switch (kind) {
      case EnvironmentKind::Baseline:
      case EnvironmentKind::NoVar:
        break;
      case EnvironmentKind::TS:
        caps.timingSpec = true;
        break;
      case EnvironmentKind::TS_ASV:
        caps.timingSpec = caps.asv = true;
        break;
      case EnvironmentKind::TS_ASV_ABB:
        caps.timingSpec = caps.asv = caps.abb = true;
        break;
      case EnvironmentKind::TS_ASV_Q:
        caps.timingSpec = caps.asv = caps.queueResize = true;
        break;
      case EnvironmentKind::TS_ASV_Q_FU:
        caps.timingSpec = caps.asv = caps.queueResize =
            caps.fuReplication = true;
        break;
      case EnvironmentKind::ALL:
        caps.timingSpec = caps.asv = caps.abb = caps.queueResize =
            caps.fuReplication = true;
        break;
    }
    return caps;
}

const char *
adaptSchemeName(AdaptScheme s)
{
    switch (s) {
      case AdaptScheme::Static:   return "Static";
      case AdaptScheme::FuzzyDyn: return "Fuzzy-Dyn";
      case AdaptScheme::ExhDyn:   return "Exh-Dyn";
    }
    return "?";
}

ExperimentConfig
ExperimentConfig::fromEnv()
{
    ExperimentConfig cfg;
    const RunConfig rc = RunConfig::fromEnv();
    cfg.seed = rc.seed;
    cfg.chips = rc.chips;
    cfg.simInsts = static_cast<std::uint64_t>(
        envInt("EVAL_SIM_INSTS", 160000));
    cfg.apps = rc.apps;
    if (rc.fast) {
        cfg.chips = std::min(cfg.chips, 8);
        cfg.simInsts = std::min<std::uint64_t>(cfg.simInsts, 60000);
    }
    return cfg;
}

std::string
ExperimentConfig::fingerprint() const
{
    std::ostringstream os;
    os << "seed=" << seed << ";chips=" << chips
       << ";insts=" << simInsts << ";apps=";
    for (std::size_t i = 0; i < apps.size(); ++i)
        os << (i ? "," : "") << apps[i];
    os << ";fnom=" << process.freqNominal
       << ";vdd=" << process.vddNominal
       << ";vt_sigma=" << process.vtSigmaOverMu
       << ";tmax=" << constraints.tMaxC
       << ";pe_budget=" << constraints.peMax
       << ";recovery=" << recovery.penaltyCycles;
    return os.str();
}

ExperimentContext::ExperimentContext(const ExperimentConfig &cfg)
    : cfg_(cfg),
      power_(calibratePower(cfg.process, cfg.powerCal)),
      thermal_(std::make_shared<ThermalModel>(cfg.process)),
      factory_(cfg.process, cfg.seed),
      chars_(cfg.recovery, cfg.process.freqNominal, cfg.seed ^ 0x5EED,
             cfg.simInsts)
{
    // Population chips are manufactured lazily by chip(); only the
    // ideal (NoVar) reference is built up front.  Its identity is the
    // id the old eager constructor gave it — the cursor position
    // after manufacturing the whole population — because the ideal
    // chip's personality depends on its id and every golden pins it.
    idealChip_ = std::make_unique<Chip>(factory_.manufactureIdealAt(
        static_cast<std::uint64_t>(cfg_.chips)));
}

const Chip &
ExperimentContext::chip(std::size_t index)
{
    EVAL_ASSERT(index < numChips(), "chip index out of range");
    {
        std::lock_guard<std::mutex> lock(chipsMutex_);
        auto it = chipCache_.find(index);
        if (it != chipCache_.end())
            return *it->second;
    }
    // Manufacture outside the lock (per-chip tasks materialize
    // distinct chips); emplace keeps the first copy if two tasks
    // raced, and map nodes are stable so references survive inserts.
    auto made = std::make_unique<Chip>(
        factory_.manufactureAt(static_cast<std::uint64_t>(index)));
    std::lock_guard<std::mutex> lock(chipsMutex_);
    return *chipCache_.emplace(index, std::move(made)).first->second;
}

void
ExperimentContext::evictChip(std::size_t index)
{
    // Dependents first (models reference the chip; fuzzy controllers
    // and static configs were derived from the models), chip last.
    {
        std::lock_guard<std::mutex> lock(fuzzyMutex_);
        for (auto it = fuzzy_.begin(); it != fuzzy_.end();) {
            if (std::get<0>(it->first) == index)
                it = fuzzy_.erase(it);
            else
                ++it;
        }
    }
    {
        std::lock_guard<std::mutex> lock(staticMutex_);
        for (auto it = staticConfigs_.begin();
             it != staticConfigs_.end();) {
            if (std::get<0>(it->first) == index)
                it = staticConfigs_.erase(it);
            else
                ++it;
        }
    }
    {
        std::lock_guard<std::mutex> lock(modelsMutex_);
        for (auto it = models_.begin(); it != models_.end();) {
            if (it->first.first == index)
                it = models_.erase(it);
            else
                ++it;
        }
    }
    std::lock_guard<std::mutex> lock(chipsMutex_);
    chipCache_.erase(index);
}

std::vector<const AppProfile *>
ExperimentContext::selectedApps() const
{
    std::vector<std::string> names = cfg_.apps;
    if (names.empty())
        names = RunConfig::fromEnv().apps;
    std::vector<const AppProfile *> apps;
    if (names.empty()) {
        for (const auto &p : specSuite())
            apps.push_back(&p);
    } else {
        for (const auto &name : names)
            apps.push_back(&appByName(name));
    }
    return apps;
}

CoreSystemModel &
ExperimentContext::coreModel(std::size_t chipIndex, std::size_t core)
{
    EVAL_ASSERT(chipIndex < numChips(), "chip index out of range");
    const auto key = std::make_pair(chipIndex, core);
    {
        std::lock_guard<std::mutex> lock(modelsMutex_);
        auto it = models_.find(key);
        if (it != models_.end())
            return *it->second;
    }
    // Build outside the lock: per-chip tasks construct distinct
    // models, so serializing construction would flatten the fan-out.
    // std::map nodes are stable, so references survive later inserts;
    // emplace keeps the first entry if someone raced us to this key.
    auto model = std::make_unique<CoreSystemModel>(
        chip(chipIndex), core, power_, cfg_.powerCal, thermal_);
    std::lock_guard<std::mutex> lock(modelsMutex_);
    return *models_.emplace(key, std::move(model)).first->second;
}

CoreSystemModel &
ExperimentContext::idealCoreModel()
{
    std::lock_guard<std::mutex> lock(idealMutex_);
    if (!idealModel_) {
        idealModel_ = std::make_unique<CoreSystemModel>(
            *idealChip_, 0, power_, cfg_.powerCal, thermal_);
    }
    return *idealModel_;
}

const CoreFuzzySystem &
ExperimentContext::coreFuzzy(std::size_t chipIndex, std::size_t core,
                             const EnvCapabilities &caps)
{
    const int capsKey = (caps.asv ? 1 : 0) | (caps.abb ? 2 : 0);
    const auto key = std::make_tuple(chipIndex, core, capsKey);
    {
        std::lock_guard<std::mutex> lock(fuzzyMutex_);
        auto it = fuzzy_.find(key);
        if (it != fuzzy_.end())
            return *it->second;
    }
    // Train outside the lock (training is the expensive part and each
    // chip task trains its own key); emplace keeps the winner if two
    // tasks ever raced on the same key.
    FuzzyTrainingConfig tcfg;
    tcfg.examplesPerFc = static_cast<std::size_t>(envInt(
        "EVAL_FC_EXAMPLES",
        static_cast<std::int64_t>(tcfg.examplesPerFc)));
    tcfg.seed = cfg_.seed ^ (chipIndex * 131 + core * 17 + capsKey);
    auto sys = std::make_unique<CoreFuzzySystem>(
        coreModel(chipIndex, core), caps, cfg_.constraints, tcfg);
    inform("training fuzzy controllers for chip ", chipIndex,
           " core ", core, " (", tcfg.examplesPerFc,
           " examples per FC)");
    sys->train();
    std::lock_guard<std::mutex> lock(fuzzyMutex_);
    return *fuzzy_.emplace(key, std::move(sys)).first->second;
}

const OperatingPoint &
ExperimentContext::staticConfig(std::size_t chipIndex, std::size_t core,
                                const EnvCapabilities &caps, bool fpApp)
{
    const int capsKey = (caps.asv ? 1 : 0) | (caps.abb ? 2 : 0) |
                        (caps.queueResize ? 4 : 0) |
                        (caps.fuReplication ? 8 : 0);
    const auto key = std::make_tuple(chipIndex, core, capsKey, fpApp);
    {
        std::lock_guard<std::mutex> lock(staticMutex_);
        auto it = staticConfigs_.find(key);
        if (it != staticConfigs_.end())
            return it->second;
    }
    // Qualify outside the lock: it drives this chip's own core model,
    // which only this chip's task touches.
    CoreSystemModel &model = coreModel(chipIndex, core);
    model.setAppType(fpApp);
    ExhaustiveOptimizer exh(caps, cfg_.constraints);
    StaticQualifier qualifier(exh, caps, cfg_.constraints,
                              cfg_.recovery);
    const PhaseCharacterization stress = stressCharacterization(
        power_, cfg_.recovery, cfg_.process.freqNominal);
    OperatingPoint op =
        qualifier.qualify(model, stress, cfg_.constraints.thMaxC);
    std::lock_guard<std::mutex> lock(staticMutex_);
    return staticConfigs_.emplace(key, op).first->second;
}

ExperimentContext::EnvRun
ExperimentContext::evaluateFixed(CoreSystemModel &core,
                                 const OperatingPoint &op,
                                 const PhaseData &phase, double thC,
                                 bool includeChecker,
                                 double pePerInstr) const
{
    const CoreEvaluation ev = core.evaluate(op, phase.chr.act, thC);
    EnvRun run;
    run.freq = op.freq;
    run.pe = pePerInstr >= 0.0 ? pePerInstr : ev.pePerInstruction;
    const PerfInputs &in =
        op.smallQueue ? phase.chr.perfSmall : phase.chr.perfFull;
    run.perf = performance(op.freq, run.pe, in);
    run.power = ev.totalPowerW;
    if (includeChecker) {
        run.power += cfg_.powerCal.checkerPowerW *
                     (op.freq / cfg_.process.freqNominal);
    }
    return run;
}

AppRunResult
ExperimentContext::runNoVar(const AppProfile &app)
{
    // Characterize before taking the ideal-model lock (chars_ has its
    // own synchronization; no need to serialize on both).
    const AppCharacterization &chr = chars_.get(app);

    // The ideal model is shared by every task, and this run mutates
    // it (setAppType) and iterates it, so the whole run serializes.
    std::lock_guard<std::mutex> lock(idealMutex_);
    if (!idealModel_) {
        idealModel_ = std::make_unique<CoreSystemModel>(
            *idealChip_, 0, power_, cfg_.powerCal, thermal_);
    }
    CoreSystemModel &core = *idealModel_;
    core.setAppType(app.isFp);
    const OperatingPoint op = nominalOperatingPoint(cfg_.process);

    double thC = 60.0;
    AppRunResult result;
    for (int iter = 0; iter < 2; ++iter) {
        double wSum = 0.0, freq = 0.0, perf = 0.0, power = 0.0, pe = 0.0;
        for (const PhaseData &phase : chr.phases) {
            const EnvRun run =
                evaluateFixed(core, op, phase, thC, false, 0.0);
            wSum += phase.weight;
            freq += phase.weight * run.freq;
            perf += phase.weight * run.perf;
            power += phase.weight * run.power;
            pe += phase.weight * run.pe;
        }
        result.freqRel = freq / wSum / cfg_.process.freqNominal;
        result.powerW = power / wSum;
        result.pePerInstr = pe / wSum;
        result.perfRel = perf / wSum;   // absolute for now
        thC = heatsink_.tempC(4.0 * result.powerW);
    }
    return result;
}

const AppRunResult &
ExperimentContext::novarRun(const AppProfile &app)
{
    {
        std::lock_guard<std::mutex> lock(novarMutex_);
        auto it = novarRunCache_.find(app.name);
        if (it != novarRunCache_.end())
            return it->second;
    }
    // runNoVar is deterministic per app, so a concurrent first miss
    // computes the same value twice; emplace keeps one copy.  Map
    // nodes are stable, so the returned reference outlives later
    // inserts.
    const AppRunResult res = runNoVar(app);
    std::lock_guard<std::mutex> lock(novarMutex_);
    return novarRunCache_.emplace(app.name, res).first->second;
}

double
ExperimentContext::novarPerf(const AppProfile &app)
{
    return novarRun(app).perfRel;
}

AppRunResult
ExperimentContext::runBaseline(CoreSystemModel &core,
                               const AppCharacterization &app)
{
    // The plain processor ships at its worst-case safe frequency;
    // no checker, no knobs.
    KnobSpace grid;
    const double rated = grid.freq.quantizeDown(
        std::min(core.baselineFrequency(),
                 cfg_.process.freqNominal * 1.4));

    OperatingPoint op = nominalOperatingPoint(cfg_.process);
    op.freq = std::max(rated, grid.freq.lo());

    double thC = 60.0;
    AppRunResult result;
    for (int iter = 0; iter < 2; ++iter) {
        double wSum = 0.0, perf = 0.0, power = 0.0;
        for (const PhaseData &phase : app.phases) {
            const EnvRun run =
                evaluateFixed(core, op, phase, thC, false, 0.0);
            wSum += phase.weight;
            perf += phase.weight * run.perf;
            power += phase.weight * run.power;
        }
        result.freqRel = op.freq / cfg_.process.freqNominal;
        result.perfRel = perf / wSum;   // normalized by caller
        result.powerW = power / wSum;
        result.pePerInstr = 0.0;
        thC = heatsink_.tempC(4.0 * result.powerW);
    }
    return result;
}

AppRunResult
ExperimentContext::runManaged(std::size_t chipIndex, std::size_t coreIdx,
                              const AppCharacterization &app,
                              EnvironmentKind env, AdaptScheme scheme)
{
    const EnvCapabilities caps = environmentCaps(env);
    EVAL_ASSERT(caps.timingSpec, "managed run requires TS");
    CoreSystemModel &core = coreModel(chipIndex, coreIdx);
    DecisionTrace::global().setContext(static_cast<int>(chipIndex),
                                       static_cast<int>(coreIdx));

    // Pick the per-subsystem optimizer.
    std::unique_ptr<ExhaustiveOptimizer> exh;
    std::unique_ptr<FuzzyOptimizer> fuzzy;
    SubsystemOptimizer *sub = nullptr;
    if (scheme == AdaptScheme::FuzzyDyn) {
        fuzzy = std::make_unique<FuzzyOptimizer>(
            coreFuzzy(chipIndex, coreIdx, caps));
        sub = fuzzy.get();
    } else {
        exh = std::make_unique<ExhaustiveOptimizer>(caps,
                                                    cfg_.constraints);
        sub = exh.get();
    }

    AppRunResult result;
    const KnobSpace grid = caps.knobSpace();

    if (scheme == AdaptScheme::Static) {
        const OperatingPoint op = staticConfig(chipIndex, coreIdx, caps,
                                               app.isFp);

        double thC = 65.0;
        for (int iter = 0; iter < 2; ++iter) {
            double wSum = 0.0, freq = 0.0, perf = 0.0, power = 0.0,
                   pe = 0.0;
            for (const PhaseData &phase : app.phases) {
                // Runtime safety governor: throttle (downward only)
                // if the fixed configuration violates under this app.
                OperatingPoint phaseOp = op;
                RetuningController sentinel(cfg_.constraints, grid, true);
                for (int guard = 0; guard < 40; ++guard) {
                    const CoreEvaluation ev =
                        core.evaluate(phaseOp, phase.chr.act, thC);
                    const bool bad =
                        !ev.meets(cfg_.constraints) ||
                        sentinel.sensedPower(core, ev, phaseOp.freq) >
                            cfg_.constraints.pMaxW;
                    if (!bad || phaseOp.freq <= grid.freq.lo())
                        break;
                    phaseOp.freq = grid.freq.quantizeDown(
                        phaseOp.freq - grid.freq.step());
                }
                const CoreEvaluation ev =
                    core.evaluate(phaseOp, phase.chr.act, thC);
                const EnvRun run = evaluateFixed(
                    core, phaseOp, phase, thC, true,
                    ev.pePerInstruction);
                wSum += phase.weight;
                freq += phase.weight * phaseOp.freq;
                perf += phase.weight * run.perf;
                power += phase.weight * run.power;
                pe += phase.weight * run.pe;
            }
            result.freqRel = freq / wSum / cfg_.process.freqNominal;
            result.perfRel = perf / wSum;
            result.powerW = power / wSum;
            result.pePerInstr = pe / wSum;
            thC = heatsink_.tempC(4.0 * result.powerW);
        }
        return result;
    }

    // Dynamic schemes: phase-triggered adaptation with saved configs.
    DynamicController ctl(*sub, caps, cfg_.constraints, cfg_.recovery);
    double thC = 65.0;
    for (int iter = 0; iter < 2; ++iter) {
        double wSum = 0.0, freq = 0.0, perf = 0.0, power = 0.0, pe = 0.0;
        for (std::size_t p = 0; p < app.phases.size(); ++p) {
            const PhaseData &phase = app.phases[p];
            const PhaseAdaptation ad =
                ctl.adaptPhase(core, p, phase.chr, thC);

            const PerfInputs &in = ad.op.smallQueue
                                       ? phase.chr.perfSmall
                                       : phase.chr.perfFull;
            const double overhead =
                ad.reusedSaved
                    ? cfg_.timeline.transitionS / cfg_.timeline.phaseLengthS
                    : cfg_.timeline.overheadFraction(ad.retuneSteps);
            const double phasePerf =
                performance(ad.op.freq, ad.eval.pePerInstruction, in) *
                (1.0 - clamp(overhead, 0.0, 0.5));
            const double phasePower =
                ad.eval.totalPowerW +
                cfg_.powerCal.checkerPowerW *
                    (ad.op.freq / cfg_.process.freqNominal);

            wSum += phase.weight;
            freq += phase.weight * ad.op.freq;
            perf += phase.weight * phasePerf;
            power += phase.weight * phasePower;
            pe += phase.weight * ad.eval.pePerInstruction;

            if (iter == 0 && !ad.reusedSaved)
                result.outcomes.push_back(ad.outcome);
        }
        result.freqRel = freq / wSum / cfg_.process.freqNominal;
        result.perfRel = perf / wSum;
        result.powerW = power / wSum;
        result.pePerInstr = pe / wSum;
        thC = heatsink_.tempC(4.0 * result.powerW);
    }
    return result;
}

AppRunResult
ExperimentContext::runApp(std::size_t chipIndex, std::size_t core,
                          const AppProfile &app, EnvironmentKind env,
                          AdaptScheme scheme)
{
    static TimerStat &timer =
        StatRegistry::global().timer("profile.experiment.run_app");
    ScopedTimer scope(timer);
    ScopedSpan span("experiment.run_app");
    span.arg("app", app.name);
    span.arg("chip", chipIndex);
    span.arg("core", core);
    span.arg("env", environmentName(env));
    StatRegistry::global().counter("experiment.app_runs").inc();

    if (env == EnvironmentKind::NoVar) {
        AppRunResult res = novarRun(app);
        res.perfRel = 1.0;
        res.freqRel = 1.0;
        return res;
    }

    CoreSystemModel &model = coreModel(chipIndex, core);
    model.setAppType(app.isFp);
    const AppCharacterization &chr = chars_.get(app);
    const double reference = novarPerf(app);

    AppRunResult res;
    if (env == EnvironmentKind::Baseline)
        res = runBaseline(model, chr);
    else
        res = runManaged(chipIndex, core, chr, env, scheme);

    res.perfRel = reference > 0.0 ? res.perfRel / reference : 0.0;
    return res;
}

} // namespace eval
