#include "core/eval_params.hh"

namespace eval {

double
TimelineParams::overheadFraction(unsigned retuneSteps) const
{
    const double cost = measureS + controllerS + transitionS +
                        retuneStepS * retuneSteps;
    return cost / phaseLengthS;
}

} // namespace eval
