/**
 * @file
 * Umbrella header for the EVAL library: include this to get the whole
 * public API (variation modeling, timing-error models, power/thermal,
 * the core simulator, workloads, and the adaptation framework).
 */

#pragma once

#include "arch/core.hh"
#include "cmp/cmp_system.hh"
#include "core/area_model.hh"
#include "core/characterization.hh"
#include "core/controller.hh"
#include "core/environment.hh"
#include "core/eval_params.hh"
#include "core/fuzzy_adaptation.hh"
#include "core/optimizer.hh"
#include "core/perf_model.hh"
#include "core/retiming.hh"
#include "core/subsystem_model.hh"
#include "fuzzy/fuzzy_controller.hh"
#include "fuzzy/regressors.hh"
#include "phase/phase_detector.hh"
#include "phase/phase_table.hh"
#include "power/knobs.hh"
#include "power/power_model.hh"
#include "power/vt0_calibration.hh"
#include "thermal/sensors.hh"
#include "thermal/thermal_model.hh"
#include "timing/alpha_power.hh"
#include "timing/error_model.hh"
#include "timing/path_population.hh"
#include "util/config.hh"
#include "util/csv.hh"
#include "util/statistics.hh"
#include "util/table.hh"
#include "variation/chip.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

