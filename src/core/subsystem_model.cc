#include "core/subsystem_model.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/math_utils.hh"

namespace eval {

namespace {

/** Delay shrink when an SRAM structure runs at 3/4 capacity: shorter
 *  buses to charge speed up most paths (Sec 3.3.2). */
constexpr double kQueueResizeShift = 0.92;
/** Low-slope FU area/power premium (Augsburger & Nikolic data). */
constexpr double kLowSlopePowerFactor = 1.30;
/** Power scale of a 3/4-capacity SRAM (fewer active sections). */
constexpr double kSmallQueuePowerFactor = 0.85;

bool
isFuSubsystem(SubsystemId id)
{
    return id == SubsystemId::IntALU || id == SubsystemId::FPUnit;
}

bool
isQueueSubsystem(SubsystemId id)
{
    return id == SubsystemId::IntQ || id == SubsystemId::FPQ;
}

} // namespace

SubsystemModel::SubsystemModel(const SubsystemInfo &info,
                               StageErrorModel primaryModel,
                               std::optional<StageErrorModel> altModel,
                               const SubsystemPowerParams &power,
                               double vt0True, double vt0Measured)
    : info_(info), primary_(std::move(primaryModel)),
      alt_(std::move(altModel)), power_(power), vt0True_(vt0True),
      vt0Measured_(vt0Measured)
{
}

double
SubsystemModel::powerFactor(bool useAlternate) const
{
    if (!useAlternate || !alt_)
        return 1.0;
    if (isFuSubsystem(info_.id))
        return kLowSlopePowerFactor;
    if (isQueueSubsystem(info_.id))
        return kSmallQueuePowerFactor;
    return 1.0;
}

bool
CoreEvaluation::violatesTemp(const Constraints &c) const
{
    return maxTempC > c.tMaxC;
}

bool
CoreEvaluation::violatesPower(const Constraints &c) const
{
    return totalPowerW > c.pMaxW;
}

bool
CoreEvaluation::violatesError(const Constraints &c) const
{
    return pePerInstruction > c.peMax;
}

bool
CoreEvaluation::meets(const Constraints &c) const
{
    return functional && !violatesTemp(c) && !violatesPower(c) &&
           !violatesError(c);
}

CoreSystemModel::CoreSystemModel(
    const Chip &chip, std::size_t core,
    const std::array<SubsystemPowerParams, kNumSubsystems> &power,
    const PowerCalibration &cal,
    std::shared_ptr<const ThermalModel> thermal, bool buildAlternates)
    : params_(chip.params()), cal_(cal), thermal_(std::move(thermal))
{
    EVAL_ASSERT(thermal_ != nullptr, "core model needs a thermal model");
    subsystems_.reserve(kNumSubsystems);

    TesterConfig testerCfg;
    Rng testerRng = chip.forkRng(0x7E57 + core);

    for (std::size_t i = 0; i < kNumSubsystems; ++i) {
        const auto id = static_cast<SubsystemId>(i);
        const SubsystemInfo &info = chip.floorplan().subsystem(core, id);

        Rng popRng = chip.forkRng(0xA000 + core * 64 + i);
        const PathPopulationParams pp = defaultPathParams(id);
        PathPopulation primary = buildPathPopulation(chip, core, id, pp,
                                                     popRng);

        std::optional<StageErrorModel> alt;
        if (buildAlternates &&
            (isFuSubsystem(id) || isQueueSubsystem(id))) {
            Rng altRng = chip.forkRng(0xB000 + core * 64 + i);
            PathPopulationParams altPp = pp;
            if (isFuSubsystem(id))
                altPp.lowSlope = true;
            else
                altPp.shiftFactor = kQueueResizeShift;
            alt.emplace(params_,
                        buildPathPopulation(chip, core, id, altPp, altRng));
        }

        const double vt0True = primary.vt0Mean;
        const double vt0Measured = measureVt0(params_, power[i], vt0True,
                                              testerCfg, testerRng);
        subsystems_.emplace_back(info,
                                 StageErrorModel(params_,
                                                 std::move(primary)),
                                 std::move(alt), power[i], vt0True,
                                 vt0Measured);
    }
}

const SubsystemModel &
CoreSystemModel::subsystem(SubsystemId id) const
{
    return subsystems_[static_cast<std::size_t>(id)];
}

SubsystemId
CoreSystemModel::fuSubsystem() const
{
    return fpApp_ ? SubsystemId::FPUnit : SubsystemId::IntALU;
}

SubsystemId
CoreSystemModel::queueSubsystem() const
{
    return fpApp_ ? SubsystemId::FPQ : SubsystemId::IntQ;
}

bool
CoreSystemModel::usesAlternate(SubsystemId id,
                               const OperatingPoint &op) const
{
    if (op.lowSlopeFu && id == fuSubsystem())
        return true;
    if (op.smallQueue && id == queueSubsystem())
        return true;
    return false;
}

CoreSystemModel::SubsystemSolution
CoreSystemModel::evaluateSubsystem(SubsystemId id, bool useAlternate,
                                   double freq,
                                   const SubsystemKnobs &knobs,
                                   double alphaF, double rho,
                                   double thC) const
{
    const SubsystemModel &sub = subsystem(id);
    SubsystemSolution sol;
    sol.thermal = thermal_->solveSubsystem(sub.power(), id, sub.vt0True(),
                                           knobs.vdd, knobs.vbb, freq,
                                           alphaF, thC);
    const double pf = sub.powerFactor(useAlternate);
    sol.thermal.pdyn *= pf;
    sol.thermal.psta *= pf;

    const OperatingConditions op{knobs.vdd, knobs.vbb, sol.thermal.tempC};
    sol.peAccess = sub.errorModel(useAlternate)
                       .errorRatePerAccess(1.0 / freq, op);
    sol.pePerInstruction = rho * sol.peAccess;
    sol.functional = !sol.thermal.runaway && sol.peAccess < 1.0;
    return sol;
}

CoreEvaluation
CoreSystemModel::evaluate(const OperatingPoint &op,
                          const ActivityVector &act, double thC) const
{
    // All subsystems share one heat-sink temperature, so their Eq 6-9
    // fixed points are independent — solve them as one batch (a single
    // lockstep iteration, one memo pass) instead of 15 scalar calls.
    // Each lane is bit-identical to the solveSubsystem it replaces.
    std::array<SubsystemThermalRequest, kNumSubsystems> reqs;
    std::array<SubsystemThermalState, kNumSubsystems> solved;
    for (std::size_t i = 0; i < kNumSubsystems; ++i) {
        const auto id = static_cast<SubsystemId>(i);
        const SubsystemModel &sub = subsystem(id);
        const SubsystemKnobs &knobs = op.knobsOf(id);
        reqs[i].power = sub.power();
        reqs[i].id = id;
        reqs[i].vt0 = sub.vt0True();
        reqs[i].vdd = knobs.vdd;
        reqs[i].vbb = knobs.vbb;
        reqs[i].freqHz = op.freq;
        reqs[i].alphaF = act.alpha[i];
    }
    thermal_->solveMany(reqs.data(), solved.data(), kNumSubsystems, thC);

    CoreEvaluation ev;
    for (std::size_t i = 0; i < kNumSubsystems; ++i) {
        const auto id = static_cast<SubsystemId>(i);
        const bool alt = usesAlternate(id, op);
        const SubsystemModel &sub = subsystem(id);
        const SubsystemKnobs &knobs = op.knobsOf(id);

        SubsystemSolution sol;
        sol.thermal = solved[i];
        const double pf = sub.powerFactor(alt);
        sol.thermal.pdyn *= pf;
        sol.thermal.psta *= pf;
        const OperatingConditions cond{knobs.vdd, knobs.vbb,
                                       sol.thermal.tempC};
        sol.peAccess = sub.errorModel(alt).errorRatePerAccess(
            1.0 / op.freq, cond);
        sol.pePerInstruction = act.rho[i] * sol.peAccess;
        sol.functional = !sol.thermal.runaway && sol.peAccess < 1.0;

        ev.thermal[i] = sol.thermal;
        ev.peAccess[i] = sol.peAccess;
        ev.pePerInstruction += sol.pePerInstruction;
        ev.subsystemPowerW += sol.thermal.power();
        ev.maxTempC = std::max(ev.maxTempC, sol.thermal.tempC);
        ev.functional = ev.functional && sol.functional;
    }

    // Fixed (non-adapted) power components, scaled with frequency:
    // the private L2 and, in timing-speculation environments, the
    // checker (accounted by the environment when present).
    const double fScale = op.freq / params_.freqNominal;
    ev.totalPowerW = ev.subsystemPowerW + cal_.l2StaticW +
                     cal_.l2DynamicW * fScale;
    return ev;
}

double
CoreSystemModel::baselineFrequency() const
{
    const OperatingConditions corner{
        params_.vddNominal * (1.0 - params_.vddDroopGuardband), 0.0,
        params_.tempNominalC};
    double fvarMin = 1e12;
    for (std::size_t i = 0; i < kNumSubsystems; ++i) {
        const auto id = static_cast<SubsystemId>(i);
        double fvar = subsystem(id).errorModel(false).fvar(corner);
        // The plain processor has no SRAM-Razor sense amps: its cache
        // reads must fit the cycle without the late-sampling margin.
        if (id == SubsystemId::Dcache || id == SubsystemId::Icache)
            fvar *= kRazorL1Margin;
        fvarMin = std::min(fvarMin, fvar);
    }
    return fvarMin;
}

OperatingPoint
nominalOperatingPoint(const ProcessParams &params)
{
    OperatingPoint op;
    op.freq = params.freqNominal;
    for (auto &k : op.knobs) {
        k.vdd = params.vddNominal;
        k.vbb = 0.0;
    }
    return op;
}

} // namespace eval
