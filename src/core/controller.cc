#include "core/controller.hh"

#include <algorithm>

#include "stats/decision_trace.hh"
#include "stats/stat_registry.hh"
#include "trace/span_tracer.hh"
#include "util/logging.hh"

namespace eval {

namespace {

/** Append one adaptation decision to the global trace and counters. */
void
recordDecision(std::size_t phaseId, double thC,
               const PhaseAdaptation &ad, double predictedPe,
               double predictedPerf)
{
    static Counter &adaptations =
        StatRegistry::global().counter("controller.adaptations");
    static Counter &reuses =
        StatRegistry::global().counter("controller.saved_reuse");
    static Counter &steps =
        StatRegistry::global().counter("controller.retune_steps");
    adaptations.inc();
    if (ad.reusedSaved)
        reuses.inc();
    steps.inc(ad.retuneSteps);
    StatRegistry::global()
        .counter(std::string("controller.outcome.") +
                 retuneOutcomeName(ad.outcome))
        .inc();

    DecisionTrace &trace = DecisionTrace::global();
    if (!trace.enabled())
        return;
    DecisionRecord r;
    r.phaseId = phaseId;
    r.reusedSaved = ad.reusedSaved;
    r.thC = thC;
    r.freqHz = ad.op.freq;
    double vdd = 0.0, vbb = 0.0;
    for (const SubsystemKnobs &k : ad.op.knobs) {
        vdd += k.vdd;
        vbb += k.vbb;
    }
    r.meanVddV = vdd / static_cast<double>(ad.op.knobs.size());
    r.meanVbbV = vbb / static_cast<double>(ad.op.knobs.size());
    r.smallQueue = ad.op.smallQueue;
    r.lowSlopeFu = ad.op.lowSlopeFu;
    r.predictedPe = predictedPe;
    r.realizedPe = ad.eval.pePerInstruction;
    r.predictedPerf = predictedPerf;
    r.powerW = ad.eval.totalPowerW;
    r.outcome = retuneOutcomeName(ad.outcome);
    r.retuneSteps = ad.retuneSteps;
    trace.record(std::move(r));
}

} // namespace

const char *
retuneOutcomeName(RetuneOutcome o)
{
    switch (o) {
      case RetuneOutcome::NoChange: return "NoChange";
      case RetuneOutcome::LowFreq:  return "LowFreq";
      case RetuneOutcome::Error:    return "Error";
      case RetuneOutcome::Temp:     return "Temp";
      case RetuneOutcome::Power:    return "Power";
    }
    return "?";
}

RetuningController::RetuningController(const Constraints &constraints,
                                       const KnobSpace &knobs,
                                       bool includeChecker)
    : constraints_(constraints), knobs_(knobs),
      includeChecker_(includeChecker)
{
}

double
RetuningController::sensedPower(const CoreSystemModel &core,
                                const CoreEvaluation &ev,
                                double freq) const
{
    double p = ev.totalPowerW;
    if (includeChecker_) {
        p += core.calibration().checkerPowerW *
             (freq / core.params().freqNominal);
    }
    return p;
}

std::optional<RetuneOutcome>
RetuningController::violation(const CoreSystemModel &core,
                              const CoreEvaluation &ev, double freq) const
{
    // The PE counter trips within microseconds, thermal/power sensors
    // within a thermal time constant (Sec 4.3.3) — so error
    // violations are detected (and classified) first.
    if (!ev.functional || ev.violatesError(constraints_))
        return RetuneOutcome::Error;
    if (ev.maxTempC > constraints_.tMaxC)
        return RetuneOutcome::Temp;
    if (sensedPower(core, ev, freq) > constraints_.pMaxW)
        return RetuneOutcome::Power;
    return std::nullopt;
}

RetuneResult
RetuningController::retune(const CoreSystemModel &core, OperatingPoint op,
                           const ActivityVector &act, double thC) const
{
    RetuneResult res;
    CoreEvaluation ev = core.evaluate(op, act, thC);
    const auto firstViolation = violation(core, ev, op.freq);

    if (firstViolation) {
        // Exponential back-off: 1, 2, 4, 8 steps (then repeated 8s),
        // without re-running the controller.
        res.outcome = *firstViolation;
        unsigned stepCount = 1;
        while (op.freq > knobs_.freq.lo()) {
            op.freq = std::max(knobs_.freq.lo(),
                               op.freq - stepCount * knobs_.freq.step());
            op.freq = knobs_.freq.quantize(op.freq);
            ++res.steps;
            ev = core.evaluate(op, act, thC);
            if (!violation(core, ev, op.freq))
                break;
            stepCount = std::min(stepCount * 2, 8u);
        }
        // Ramp back up in single steps to just below the violation
        // point (the back-off may have overshot).
        while (op.freq < knobs_.freq.hi()) {
            OperatingPoint probe = op;
            probe.freq = knobs_.freq.quantize(op.freq +
                                              knobs_.freq.step());
            const CoreEvaluation probeEv = core.evaluate(probe, act, thC);
            if (violation(core, probeEv, probe.freq))
                break;
            op = probe;
            ev = probeEv;
            ++res.steps;
        }
    } else {
        // No violation: probe upward.  If the very first raise fails,
        // the controller's pick was (near) optimal: NoChange.
        unsigned raises = 0;
        while (op.freq < knobs_.freq.hi()) {
            OperatingPoint probe = op;
            probe.freq = knobs_.freq.quantize(op.freq +
                                              knobs_.freq.step());
            const CoreEvaluation probeEv = core.evaluate(probe, act, thC);
            if (violation(core, probeEv, probe.freq))
                break;
            op = probe;
            ev = probeEv;
            ++raises;
            ++res.steps;
        }
        res.outcome = raises == 0 ? RetuneOutcome::NoChange
                                  : RetuneOutcome::LowFreq;
    }

    res.op = op;
    res.eval = ev;
    return res;
}

DynamicController::DynamicController(SubsystemOptimizer &sub,
                                     const EnvCapabilities &caps,
                                     const Constraints &constraints,
                                     const RecoveryModel &recovery,
                                     double measurementNoiseRel,
                                     std::uint64_t seed)
    : optimizer_(sub, caps, constraints, recovery),
      retuner_(constraints, caps.knobSpace(), caps.timingSpec),
      measurementNoiseRel_(measurementNoiseRel), rng_(seed)
{
}

PhaseAdaptation
DynamicController::adaptPhase(const CoreSystemModel &core,
                              std::size_t phaseId,
                              const PhaseCharacterization &phase,
                              double thC)
{
    static TimerStat &timer =
        StatRegistry::global().timer("profile.controller.adapt_phase");
    ScopedTimer scope(timer);
    ScopedSpan span("controller.adapt_phase");
    span.arg("phase", phaseId);
    span.arg("reused", saved_.lookup(phaseId).has_value());

    PhaseAdaptation out;

    if (auto savedOp = saved_.lookup(phaseId)) {
        // Known phase: reuse the stored configuration (Figure 6).  The
        // sensors still guard it; a violation (e.g. different TH)
        // triggers retuning and the table is refreshed.
        const RetuneResult res = retuner_.retune(core, *savedOp,
                                                 phase.act, thC);
        out.op = res.op;
        out.eval = res.eval;
        out.outcome = res.outcome;
        out.retuneSteps = res.steps;
        out.reusedSaved = true;
        saved_.save(phaseId, res.op);
        // The "prediction" of a reused configuration is the table's
        // expectation that it still holds: the realized state itself.
        recordDecision(phaseId, thC, out, res.eval.pePerInstruction,
                       0.0);
        return out;
    }

    // The controller decides from the 20us profiling snapshot, which
    // samples the phase's activity imperfectly; retuning then faces
    // the phase's true behaviour.
    PhaseCharacterization measured = phase;
    if (measurementNoiseRel_ > 0.0) {
        for (double &a : measured.act.alpha)
            a = std::max(0.0,
                         a * (1.0 + rng_.gaussian(0.0,
                                                  measurementNoiseRel_)));
        for (double &r : measured.act.rho)
            r = std::max(0.0,
                         r * (1.0 + rng_.gaussian(0.0,
                                                  measurementNoiseRel_)));
    }

    const AdaptationResult choice = optimizer_.choose(core, measured, thC);
    const RetuneResult res = retuner_.retune(core, choice.op, phase.act,
                                             thC);
    out.op = res.op;
    out.eval = res.eval;
    out.outcome = res.outcome;
    out.retuneSteps = res.steps;
    saved_.save(phaseId, res.op);
    recordDecision(phaseId, thC, out, choice.predictedPe,
                   choice.predictedPerf);
    return out;
}

StaticQualifier::StaticQualifier(SubsystemOptimizer &sub,
                                 const EnvCapabilities &caps,
                                 const Constraints &constraints,
                                 const RecoveryModel &recovery)
    : optimizer_(sub, caps, constraints, recovery),
      retuner_(constraints, caps.knobSpace(), caps.timingSpec),
      caps_(caps)
{
}

OperatingPoint
StaticQualifier::qualify(const CoreSystemModel &core,
                         const PhaseCharacterization &stress, double thC)
{
    const AdaptationResult choice = optimizer_.choose(core, stress, thC);
    // The static configuration must be safe under stress conditions;
    // retune against them once and freeze the result.
    const RetuneResult res = retuner_.retune(core, choice.op, stress.act,
                                             thC);
    return res.op;
}

PhaseCharacterization
stressCharacterization(
    const std::array<SubsystemPowerParams, kNumSubsystems> &power,
    const RecoveryModel &recovery, double refFreqHz)
{
    PhaseCharacterization stress;
    stress.isFp = false;

    // Worst-case activity: every subsystem at 1.4x its reference rate,
    // with conservative accesses-per-instruction.
    for (std::size_t i = 0; i < kNumSubsystems; ++i) {
        stress.act.alpha[i] = power[i].alphaRef * 1.4;
        stress.act.rho[i] = stress.act.alpha[i] * 1.2;
    }

    PerfInputs in;
    in.cpiComp = 0.9;
    in.missesPerInst = 1.5e-3;
    in.memPenaltySec = 150.0 / refFreqHz;
    in.recoveryPenaltyCycles = recovery.penaltyCycles;
    stress.perfFull = in;
    in.cpiComp = 0.95;   // 3/4 queue costs some IPC
    stress.perfSmall = in;
    return stress;
}

} // namespace eval
