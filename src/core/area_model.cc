#include "core/area_model.hh"

namespace eval {

std::vector<AreaItem>
areaOverhead(const AreaModelConfig &cfg)
{
    std::vector<AreaItem> items;
    // A replica adds one full copy scaled by the low-slope premium.
    items.push_back({"IntALU Repl",
                     cfg.intAluAreaPercent * cfg.lowSlopeAreaFactor});
    items.push_back({"FPAdd/Mul Repl",
                     cfg.fpAddMulAreaPercent * cfg.lowSlopeAreaFactor});
    items.push_back({"I-Queue Resize", 0.0});
    items.push_back({"ASV", 0.0});
    if (cfg.includeAbb)
        items.push_back({"ABB", cfg.abbAreaPercent});
    items.push_back({"Phase Detector", cfg.phaseDetectorAreaPercent});
    items.push_back({"Sensors", cfg.sensorsAreaPercent});
    items.push_back({"Checker", cfg.checkerAreaPercent});

    double total = 0.0;
    for (const auto &item : items)
        total += item.areaPercent;
    items.push_back({"Total", total});
    return items;
}

double
totalAreaOverheadPercent(const AreaModelConfig &cfg)
{
    return areaOverhead(cfg).back().areaPercent;
}

} // namespace eval
