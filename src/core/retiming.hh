/**
 * @file
 * Dynamic-retiming baseline (ReCycle-style, compared against in
 * Sec 7): instead of tolerating timing errors, clock-skew slack
 * passing redistributes cycle time between pipeline stages, so the
 * clock is set by something between the average and the worst stage
 * delay — bounded because stages on tight loops (issue-wakeup,
 * branch-resolve) cannot donate or borrow freely.
 *
 * The processor is always clocked safely (zero errors, no checker),
 * which is exactly why the paper finds it weaker than EVAL: it cannot
 * trade error rate for frequency, cannot change stage delay or power
 * (no ASV/ABB), and manages a single global variable.
 */

#pragma once

#include "core/subsystem_model.hh"

namespace eval {

/** Configuration of the retiming baseline. */
struct RetimingConfig
{
    /**
     * Fraction of the inter-stage slack that skew tweaking can
     * actually recycle (loop-carried stages pin the rest).  The
     * default is calibrated so the baseline gains land in ReCycle's
     * reported 10-20% band.
     */
    double slackPassEfficiency = 0.75;
};

/**
 * Safe frequency of the dynamically retimed pipeline on this core,
 * rated at the same worst-case corner as the Baseline.
 */
double retimedFrequency(const CoreSystemModel &core,
                        const RetimingConfig &cfg = RetimingConfig());

} // namespace eval

