/**
 * @file
 * Per-core EVAL system model: the 15 subsystems of one core on one
 * manufactured chip, each carrying its error model (with alternate
 * configurations for the FU-replication and queue-resize techniques),
 * power constants, tester-measured Vt0, and ABB/ASV knobs — plus the
 * whole-core evaluation used by the optimizers and the "ground truth"
 * the retuning cycles observe.
 */

#pragma once

#include <array>
#include <memory>
#include <optional>
#include <vector>

#include "core/eval_params.hh"
#include "power/power_model.hh"
#include "power/vt0_calibration.hh"
#include "thermal/thermal_model.hh"
#include "timing/error_model.hh"
#include "variation/chip.hh"

namespace eval {

/** ASV/ABB setting of one subsystem. */
struct SubsystemKnobs
{
    double vdd = 1.0;
    double vbb = 0.0;
};

/** Activity of the running application, from the core simulator. */
struct ActivityVector
{
    std::array<double, kNumSubsystems> alpha{};  ///< accesses / cycle
    std::array<double, kNumSubsystems> rho{};    ///< accesses / instr

    double alphaOf(SubsystemId id) const
    {
        return alpha[static_cast<std::size_t>(id)];
    }
    double rhoOf(SubsystemId id) const
    {
        return rho[static_cast<std::size_t>(id)];
    }
};

/** Full operating point of one core. */
struct OperatingPoint
{
    double freq = 4.0e9;
    std::array<SubsystemKnobs, kNumSubsystems> knobs{};
    /** FU replication choice (Sec 3.3.1): low-slope implementation
     *  enabled for the critical FU cluster. */
    bool lowSlopeFu = false;
    /** Issue-queue resize choice (Sec 3.3.2): 3/4-sized queue. */
    bool smallQueue = false;

    SubsystemKnobs &
    knobsOf(SubsystemId id)
    {
        return knobs[static_cast<std::size_t>(id)];
    }
    const SubsystemKnobs &
    knobsOf(SubsystemId id) const
    {
        return knobs[static_cast<std::size_t>(id)];
    }
};

/** One subsystem of one core on one chip. */
class SubsystemModel
{
  public:
    SubsystemModel(const SubsystemInfo &info,
                   StageErrorModel primaryModel,
                   std::optional<StageErrorModel> altModel,
                   const SubsystemPowerParams &power, double vt0True,
                   double vt0Measured);

    const SubsystemInfo &info() const { return info_; }
    const SubsystemPowerParams &power() const { return power_; }

    /** True mean Vt0 (volts at reference conditions). */
    double vt0True() const { return vt0True_; }
    /** Tester-inferred Vt0 available to the controller. */
    double vt0Measured() const { return vt0Measured_; }

    /** Whether this subsystem has an alternate configuration. */
    bool hasAlternate() const { return alt_.has_value(); }

    /** Error model for the selected configuration. */
    const StageErrorModel &
    errorModel(bool useAlternate) const
    {
        return (useAlternate && alt_) ? *alt_ : primary_;
    }

    /** Power multiplier of the selected configuration (low-slope FUs
     *  burn ~30% more power; small queues slightly less). */
    double powerFactor(bool useAlternate) const;

  private:
    SubsystemInfo info_;
    StageErrorModel primary_;
    std::optional<StageErrorModel> alt_;
    SubsystemPowerParams power_;
    double vt0True_;
    double vt0Measured_;
};

/** Result of evaluating a whole core at an operating point. */
struct CoreEvaluation
{
    std::array<SubsystemThermalState, kNumSubsystems> thermal{};
    std::array<double, kNumSubsystems> peAccess{};
    double pePerInstruction = 0.0;
    double subsystemPowerW = 0.0;   ///< 15 adapted subsystems
    double totalPowerW = 0.0;       ///< + L2 + checker (Figure 12 scope)
    double maxTempC = 0.0;
    bool functional = true;         ///< all domains can switch

    bool violatesTemp(const Constraints &c) const;
    bool violatesPower(const Constraints &c) const;
    bool violatesError(const Constraints &c) const;
    bool meets(const Constraints &c) const;
};

/**
 * The EVAL model of one core on one chip: subsystems + thermal model +
 * fixed power components (private L2, checker).
 */
class CoreSystemModel
{
  public:
    /** Build from a manufactured chip (path populations, tester cal). */
    CoreSystemModel(const Chip &chip, std::size_t core,
                    const std::array<SubsystemPowerParams,
                                     kNumSubsystems> &power,
                    const PowerCalibration &cal,
                    std::shared_ptr<const ThermalModel> thermal,
                    bool buildAlternates = true);

    const SubsystemModel &subsystem(SubsystemId id) const;
    const ThermalModel &thermal() const { return *thermal_; }
    const ProcessParams &params() const { return params_; }
    const PowerCalibration &calibration() const { return cal_; }
    bool isFpApp() const { return fpApp_; }

    /** Select which FU cluster / queue the techniques act on (integer
     *  vs FP applications, Sec 4.1 "Outputs"). */
    void setAppType(bool fpApp) { fpApp_ = fpApp; }

    /** Subsystem adapted by FU replication for the current app type. */
    SubsystemId fuSubsystem() const;
    /** Subsystem adapted by queue resizing for the current app type. */
    SubsystemId queueSubsystem() const;

    /** Whether a subsystem currently uses its alternate config. */
    bool usesAlternate(SubsystemId id, const OperatingPoint &op) const;

    /**
     * Evaluate the full core at @p op with activity @p act and
     * heat-sink temperature @p thC.  This is the "physics" both the
     * Exhaustive optimizer and the retuning hardware observe.
     */
    CoreEvaluation evaluate(const OperatingPoint &op,
                            const ActivityVector &act, double thC) const;

    /**
     * Evaluate a single subsystem (used by the per-subsystem Freq and
     * Power algorithms).
     */
    struct SubsystemSolution
    {
        SubsystemThermalState thermal;
        double peAccess = 0.0;
        double pePerInstruction = 0.0;
        bool functional = true;
    };
    SubsystemSolution
    evaluateSubsystem(SubsystemId id, bool useAlternate, double freq,
                      const SubsystemKnobs &knobs, double alphaF,
                      double rho, double thC) const;

    /**
     * Rated frequency of the plain (Baseline) processor: the minimum
     * error-free frequency over all subsystems, evaluated at the
     * worst-case design corner (TMAX junction temperature, nominal
     * Vdd) — a worst-case design cannot assume it will run cooler.
     * The no-variation chip rates at exactly the nominal frequency by
     * construction.
     */
    double baselineFrequency() const;

  private:
    ProcessParams params_;
    PowerCalibration cal_;
    std::shared_ptr<const ThermalModel> thermal_;
    std::vector<SubsystemModel> subsystems_;
    bool fpApp_ = false;
};

/** Default operating point: nominal Vdd, zero bias, nominal f. */
OperatingPoint nominalOperatingPoint(const ProcessParams &params);

} // namespace eval

