/**
 * @file
 * Machine-learning implementation of the Freq and Power algorithms
 * (Sec 4.3.1): per-subsystem fuzzy controllers, trained at
 * manufacturer test time by running the Exhaustive optimizer on a
 * software model of the *specific chip* (Sec 4.3.1 "populating the
 * FCs"), then deployed as a SubsystemOptimizer that answers in
 * microseconds.
 *
 * Controller inputs follow Figure 3: {TH, Rth, Kdyn, Ksta, Vt0,
 * alpha_f} plus one configuration bit for subsystems with an alternate
 * implementation (low-slope FU / resized queue — the paper runs the
 * Freq algorithm once per configuration, which is equivalent to the
 * controller knowing the configuration).  The Power-algorithm
 * controllers additionally take fcore and output Vdd and Vbb.  Four of
 * the inputs are per-subsystem constants; they are kept as inputs for
 * fidelity with the paper even though each trained FC sees them fixed.
 */

#pragma once

#include <array>
#include <memory>

#include "core/optimizer.hh"
#include "fuzzy/fuzzy_controller.hh"

namespace eval {

/** Training setup for one chip's controller set. */
struct FuzzyTrainingConfig
{
    std::size_t rules = 25;           ///< Figure 7(a)
    /**
     * Training examples per FC.  The paper uses 10,000 on the
     * manufacturer's tester; the default here keeps full-suite bench
     * runs tractable and EVAL_FC_EXAMPLES restores the paper setting.
     */
    std::size_t examplesPerFc = 400;
    double learningRate = 0.04;       ///< Appendix A
    std::uint64_t seed = 0x7E57ED;
};

/**
 * The trained fuzzy controllers of one core on one chip, for one
 * knob-capability combination (ASV/ABB availability).
 */
class CoreFuzzySystem
{
  public:
    CoreFuzzySystem(const CoreSystemModel &core,
                    const EnvCapabilities &caps,
                    const Constraints &constraints,
                    const FuzzyTrainingConfig &cfg);

    /** Generate examples with Exhaustive on this core and train. */
    void train();

    bool trained() const { return trained_; }
    const EnvCapabilities &caps() const { return caps_; }

    /** Freq-algorithm query: fmax prediction in Hz. */
    double predictFmax(SubsystemId id, double thC, double alphaF,
                       bool altConfig) const;

    /** Power-algorithm query: Vdd/Vbb prediction at fcore. */
    SubsystemKnobs predictKnobs(SubsystemId id, double thC, double alphaF,
                                bool altConfig, double fcore) const;

  private:
    std::vector<double> freqInput(SubsystemId id, double thC,
                                  double alphaF, bool altConfig) const;

    const CoreSystemModel &core_;
    EnvCapabilities caps_;
    Constraints constraints_;
    FuzzyTrainingConfig cfg_;
    bool trained_ = false;

    std::array<std::unique_ptr<TrainedController>, kNumSubsystems>
        fmaxFc_;
    std::array<std::unique_ptr<TrainedController>, kNumSubsystems>
        vddFc_;
    std::array<std::unique_ptr<TrainedController>, kNumSubsystems>
        vbbFc_;
};

/** SubsystemOptimizer backed by a chip's trained controllers. */
class FuzzyOptimizer : public SubsystemOptimizer
{
  public:
    explicit FuzzyOptimizer(const CoreFuzzySystem &system);

    double maxFrequency(const CoreSystemModel &core, SubsystemId id,
                        bool useAlternate, double alphaF,
                        double thC) override;

    std::optional<SubsystemKnobs>
    minimizePower(const CoreSystemModel &core, SubsystemId id,
                  bool useAlternate, double fcore, double alphaF,
                  double thC) override;

  private:
    const CoreFuzzySystem &system_;
    KnobSpace knobs_;
};

} // namespace eval

