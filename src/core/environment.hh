/**
 * @file
 * The Table 1 environments and the experiment driver used by every
 * bench: manufacture chips, characterize workloads, run an application
 * on a core under an environment + adaptation scheme, and report the
 * relative frequency / performance / power metrics of Figures 10-12.
 */

#pragma once

#include <map>
#include <mutex>
#include <tuple>
#include <memory>
#include <string>
#include <vector>

#include "core/characterization.hh"
#include "core/controller.hh"
#include "core/fuzzy_adaptation.hh"
#include "core/subsystem_model.hh"
#include "thermal/thermal_model.hh"
#include "util/config.hh"
#include "variation/chip.hh"

namespace eval {

/** Table 1. */
enum class EnvironmentKind {
    Baseline,       ///< plain processor with variation effects
    TS,             ///< + Diva checker (timing speculation)
    TS_ASV,         ///< + per-subsystem adaptive supply voltage
    TS_ASV_ABB,     ///< + adaptive body bias
    TS_ASV_Q,       ///< TS+ASV + issue-queue resizing
    TS_ASV_Q_FU,    ///< + FU replication (the preferred scheme)
    ALL,            ///< everything incl. ABB
    NoVar           ///< plain processor without variation
};

const char *environmentName(EnvironmentKind kind);
EnvCapabilities environmentCaps(EnvironmentKind kind);

/** Adaptation scheme applied to TS-family environments (Sec 6.2). */
enum class AdaptScheme { Static, FuzzyDyn, ExhDyn };

const char *adaptSchemeName(AdaptScheme s);

/** Per-(app, chip, core, environment, scheme) result. */
struct AppRunResult
{
    double freqRel = 0.0;    ///< time-weighted f / f_nominal
    double perfRel = 0.0;    ///< vs NoVar on the same application
    double powerW = 0.0;     ///< core + L1 + L2 (+ checker), Figure 12
    double pePerInstr = 0.0;
    /** Controller outcomes, one per *new-phase* invocation (Fig 13). */
    std::vector<RetuneOutcome> outcomes;
};

/** Experiment-wide configuration. */
struct ExperimentConfig
{
    std::uint64_t seed = 1;
    int chips = 30;
    std::uint64_t simInsts = 160000;
    /** Application subset by name; empty = EVAL_APPS env, then the
     *  full suite.  Validation experiments pin this explicitly so
     *  golden runs do not depend on the caller's environment. */
    std::vector<std::string> apps;
    ProcessParams process;
    Constraints constraints;
    RecoveryModel recovery;
    PowerCalibration powerCal;
    TimelineParams timeline;

    static ExperimentConfig fromEnv();

    /** Human-readable one-line fingerprint of every knob that changes
     *  results (seed, population, workload, process, constraints).
     *  Hash it (fnv1a) for the manifest's config_hash; two runs with
     *  equal fingerprints are replays of the same experiment. */
    std::string fingerprint() const;
};

/**
 * Owns the shared state of one experiment: the chip population, the
 * power/thermal calibration, the workload characterizations, and the
 * per-core EVAL models (built lazily).
 *
 * Thread-safety: designed for a per-chip fan-out (ThreadPool
 * parallelFor with one task per chip).  The lazy caches (core models,
 * fuzzy controllers, static configs, NoVar reference performance,
 * characterizations) are internally synchronized; each (chip, core)
 * pair must be driven by at most one task at a time because the
 * returned CoreSystemModel is stateful (setAppType, thermal iterate).
 * The ideal-chip model is shared across tasks, so runNoVar/novarPerf
 * serialize on it internally — prewarm novarPerf for the selected
 * apps before fanning out to keep that serialization off the
 * parallel path.
 */
class ExperimentContext
{
  public:
    explicit ExperimentContext(const ExperimentConfig &cfg);

    const ExperimentConfig &config() const { return cfg_; }

    /** Population size (chips are manufactured lazily; this is the
     *  configured count, not the resident count). */
    std::size_t
    numChips() const
    {
        return static_cast<std::size_t>(cfg_.chips);
    }

    /**
     * Chip @p index, manufactured on first use.  Chip @p i is a pure
     * function of (seed, i), so lazy manufacture returns exactly the
     * chip the old eager constructor held — but a shard worker
     * walking a [begin, end) slice only ever materializes its own
     * slice, bounding resident VariationMaps to the slice size
     * (ROADMAP item 2 / DESIGN.md Sec 5h).
     */
    const Chip &chip(std::size_t index);

    /**
     * Drop chip @p index and every per-chip cache entry built from it
     * (core models, fuzzy controllers, static configs).  The caller
     * must no longer hold references into those caches for this chip.
     * Re-requesting the chip later remanufactures it bit-identically;
     * eviction is purely a memory-bound lever for streaming drivers.
     */
    void evictChip(std::size_t index);
    const std::array<SubsystemPowerParams, kNumSubsystems> &
    powerParams() const
    {
        return power_;
    }
    const std::shared_ptr<const ThermalModel> &thermalModel() const
    {
        return thermal_;
    }
    CharacterizationCache &characterizations() { return chars_; }

    /** Applications selected by EVAL_APPS (default: full suite). */
    std::vector<const AppProfile *> selectedApps() const;

    /** Core model for (chip index, core), cached. */
    CoreSystemModel &coreModel(std::size_t chipIndex, std::size_t core);

    /** Core model of the ideal (no-variation) chip. */
    CoreSystemModel &idealCoreModel();

    /**
     * Trained fuzzy controllers for one core under a knob-capability
     * combination (trained lazily, cached for the context lifetime).
     */
    const CoreFuzzySystem &coreFuzzy(std::size_t chipIndex,
                                     std::size_t core,
                                     const EnvCapabilities &caps);

    /** Qualification-time static configuration for one core under a
     *  capability set (cached: qualification happens once per chip). */
    const OperatingPoint &staticConfig(std::size_t chipIndex,
                                       std::size_t core,
                                       const EnvCapabilities &caps,
                                       bool fpApp);

    /**
     * Run one application on one core under an environment/scheme.
     * For Baseline and NoVar the scheme is ignored.
     */
    AppRunResult runApp(std::size_t chipIndex, std::size_t core,
                        const AppProfile &app, EnvironmentKind env,
                        AdaptScheme scheme);

    /** NoVar performance of an application (instructions/s), cached. */
    double novarPerf(const AppProfile &app);

  private:
    struct EnvRun
    {
        double freq = 0.0;
        double perf = 0.0;
        double power = 0.0;
        double pe = 0.0;
    };

    /** Evaluate one phase at a fixed operating point (no adaptation). */
    EnvRun evaluateFixed(CoreSystemModel &core, const OperatingPoint &op,
                         const PhaseData &phase, double thC,
                         bool includeChecker, double pePerInstr) const;

    AppRunResult runNoVar(const AppProfile &app);
    /** Cached runNoVar (per app; runNoVar is deterministic). */
    const AppRunResult &novarRun(const AppProfile &app);
    AppRunResult runBaseline(CoreSystemModel &core,
                             const AppCharacterization &app);
    AppRunResult runManaged(std::size_t chipIndex, std::size_t core,
                            const AppCharacterization &app,
                            EnvironmentKind env, AdaptScheme scheme);

    ExperimentConfig cfg_;
    std::array<SubsystemPowerParams, kNumSubsystems> power_;
    std::shared_ptr<const ThermalModel> thermal_;
    HeatsinkModel heatsink_;
    /** Stamps population chips on demand (pure in (seed, id)). */
    ChipFactory factory_;
    mutable std::mutex chipsMutex_;  ///< guards chipCache_ map shape
    std::map<std::size_t, std::unique_ptr<Chip>> chipCache_;
    std::unique_ptr<Chip> idealChip_;
    CharacterizationCache chars_;
    std::mutex modelsMutex_;   ///< guards models_ map shape
    std::map<std::pair<std::size_t, std::size_t>,
             std::unique_ptr<CoreSystemModel>> models_;
    /** Serializes idealModel_ creation and every runNoVar, which
     *  mutates the shared ideal model (setAppType). */
    std::mutex idealMutex_;
    std::unique_ptr<CoreSystemModel> idealModel_;
    std::mutex novarMutex_;    ///< guards novarRunCache_
    std::map<std::string, AppRunResult> novarRunCache_;
    std::mutex fuzzyMutex_;    ///< guards fuzzy_ map shape
    /** key: (chip, core, asv|abb<<1) */
    std::map<std::tuple<std::size_t, std::size_t, int>,
             std::unique_ptr<CoreFuzzySystem>> fuzzy_;
    std::mutex staticMutex_;   ///< guards staticConfigs_ map shape
    /** key: (chip, core, full caps bits, fpApp) */
    std::map<std::tuple<std::size_t, std::size_t, int, bool>,
             OperatingPoint> staticConfigs_;
};

} // namespace eval

