/**
 * @file
 * Workload characterization: runs the cycle-level core model once per
 * (application, phase, queue configuration) and distills the results
 * into the PhaseCharacterization records the controller consumes —
 * exactly the 20us profiling step of the Figure 6 timeline, done once
 * and cached because it depends only on the application (not on the
 * chip's variation).
 */

#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/eval_params.hh"
#include "core/optimizer.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

namespace eval {

/** One behaviour phase of an application, with its run-time share. */
struct PhaseData
{
    double weight = 1.0;
    PhaseCharacterization chr;
};

/** All phases of one application. */
struct AppCharacterization
{
    std::string name;
    bool isFp = false;
    std::vector<PhaseData> phases;

    double totalWeight() const;
};

/** Cached characterization runner. */
class CharacterizationCache
{
  public:
    /**
     * @param recovery recovery-cost model (for Eq 5's rp)
     * @param refFreqHz frequency the simulator's latencies assume
     * @param seed      trace-generation seed
     * @param simInsts  instructions simulated per measurement
     */
    CharacterizationCache(const RecoveryModel &recovery, double refFreqHz,
                          std::uint64_t seed, std::uint64_t simInsts);

    /**
     * Characterize (or fetch the cached) application.  Safe to call
     * from parallel per-chip tasks: each application is characterized
     * exactly once (other callers block on it), and the returned
     * reference stays valid for the cache's lifetime.
     */
    const AppCharacterization &get(const AppProfile &profile);

  private:
    /** Cache slot: call_once gates the (expensive) characterization
     *  so concurrent first requests do not duplicate the work. */
    struct Entry
    {
        std::once_flag once;
        AppCharacterization chr;
    };

    AppCharacterization characterize(const AppProfile &profile);

    RecoveryModel recovery_;
    double refFreqHz_;
    std::uint64_t seed_;
    std::uint64_t simInsts_;
    std::mutex mutex_;   ///< guards the map shape (not the entries)
    /// std::map, not unordered: the handful of apps makes lookup cost
    /// irrelevant, and any future iteration (e.g. dumping every
    /// characterization) must be name-ordered (det-unordered).
    std::map<std::string, std::unique_ptr<Entry>> cache_;
};

} // namespace eval

