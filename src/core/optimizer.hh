/**
 * @file
 * The Freq and Power algorithms of Sec 4.2/4.3.1, and the whole-core
 * optimizer that composes them with the FU-replication and issue-queue
 * decision rules.
 *
 * SubsystemOptimizer is the interface both implementations share:
 * ExhaustiveOptimizer scans the discrete (f, Vdd, Vbb) space against
 * the physical models; FuzzyOptimizer (fuzzy_adaptation.hh) answers
 * the same queries from trained fuzzy controllers in microseconds.
 */

#pragma once

#include <array>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/eval_params.hh"
#include "core/perf_model.hh"
#include "core/subsystem_model.hh"
#include "power/knobs.hh"

namespace eval {

/** Which techniques an environment provides (Table 1). */
struct EnvCapabilities
{
    bool timingSpec = false;     ///< Diva checker present
    bool asv = false;            ///< per-subsystem Vdd
    bool abb = false;            ///< per-subsystem Vbb
    bool queueResize = false;    ///< 3/4 issue queues
    bool fuReplication = false;  ///< low-slope FU replicas

    KnobSpace knobSpace() const;
};

/** Per-phase characterization consumed by the optimizer. */
struct PhaseCharacterization
{
    bool isFp = false;
    ActivityVector act;
    PerfInputs perfFull;    ///< Eq 5 inputs with the full queue
    PerfInputs perfSmall;   ///< Eq 5 inputs with the 3/4 queue
};

/** Per-subsystem query interface (the boxes of Figure 3). */
class SubsystemOptimizer
{
  public:
    virtual ~SubsystemOptimizer() = default;

    /**
     * Freq algorithm: the highest frequency at which subsystem @p id
     * can run (using any available Vdd/Vbb) without exceeding TMAX or
     * its share PEMAX/n of the error budget.
     *
     * @return the chosen frequency in Hz (knob-grid value), or 0 when
     *         no setting is feasible.
     */
    virtual double maxFrequency(const CoreSystemModel &core,
                                SubsystemId id, bool useAlternate,
                                double alphaF, double thC) = 0;

    /**
     * Power algorithm: the Vdd/Vbb that minimizes the subsystem's
     * power at @p fcore while meeting TMAX and PEMAX/n.
     */
    virtual std::optional<SubsystemKnobs>
    minimizePower(const CoreSystemModel &core, SubsystemId id,
                  bool useAlternate, double fcore, double alphaF,
                  double thC) = 0;
};

/** Exhaustive implementation (Sec 4.3.1). */
class ExhaustiveOptimizer : public SubsystemOptimizer
{
  public:
    ExhaustiveOptimizer(const EnvCapabilities &caps,
                        const Constraints &constraints);

    double maxFrequency(const CoreSystemModel &core, SubsystemId id,
                        bool useAlternate, double alphaF,
                        double thC) override;

    std::optional<SubsystemKnobs>
    minimizePower(const CoreSystemModel &core, SubsystemId id,
                  bool useAlternate, double fcore, double alphaF,
                  double thC) override;

    const KnobSpace &knobs() const { return knobs_; }

  private:
    /** The discrete Vdd/Vbb scan lists, hoisted out of the per-query
     *  loops (vddCandidates/vbbCandidates allocate on every call, and
     *  feasibleAt runs once per binary-search probe). */
    struct KnobCandidates
    {
        double vddNominal = 0.0;
        std::vector<double> vdds;
        std::vector<double> vbbs;
    };

    /** Lazily built, rebuilt only if @p vddNominal changes (it is a
     *  process constant, so in practice built once).  Returned shared
     *  so concurrent per-subsystem queries stay safe. */
    std::shared_ptr<const KnobCandidates> candidates(double vddNominal);

    KnobSpace knobs_;
    Constraints constraints_;
    std::mutex candMutex_;
    std::shared_ptr<const KnobCandidates> cand_;
};

/**
 * Convert the per-subsystem error-rate budget PEMAX/n (per
 * instruction) into a per-access budget using the activity proxy
 * alphaF (rho ~= alphaF * CPI with CPI ~ 1); Sec 4.2 sets this
 * conservatively, and the retuning cycles absorb the residual.
 */
double perAccessErrorBudget(const Constraints &c, double alphaF);

/** Outcome of a whole-core optimization. */
struct AdaptationResult
{
    OperatingPoint op;
    bool feasible = true;
    double predictedPerf = 0.0;   ///< instructions/second via Eq 5
    double predictedPe = 0.0;     ///< err/instr expected at `op`
    std::array<double, kNumSubsystems> fmax{};   ///< diagnostics
};

/**
 * Whole-core controller algorithm (Figure 3 + Figure 4 + the queue
 * rule of Sec 4.2 + the PMAX check).
 */
class CoreOptimizer
{
  public:
    CoreOptimizer(SubsystemOptimizer &sub, const EnvCapabilities &caps,
                  const Constraints &constraints,
                  const RecoveryModel &recovery);

    AdaptationResult choose(const CoreSystemModel &core,
                            const PhaseCharacterization &phase,
                            double thC);

  private:
    /** Run the Freq algorithm over every subsystem for one
     *  (queue, FU) configuration and return the core frequency plus
     *  the per-subsystem values. */
    double freqForConfig(const CoreSystemModel &core,
                         const PhaseCharacterization &phase, double thC,
                         bool smallQueue, bool &lowSlopeChosen,
                         std::array<double, kNumSubsystems> &fmaxOut);

    SubsystemOptimizer &sub_;
    EnvCapabilities caps_;
    Constraints constraints_;
    RecoveryModel recovery_;
    KnobSpace knobs_;
};

} // namespace eval

