/**
 * @file
 * The runtime side of high-dimensional dynamic adaptation (Sec 4.3):
 *
 *  - RetuningController: after the (fuzzy or exhaustive) controller
 *    picks a configuration, sensors observe the true behaviour; on a
 *    violation the frequency backs off exponentially (1, 2, 4, 8
 *    steps), and when head-room remains it ramps up in single steps —
 *    all without re-running the controller (Sec 4.3.3).
 *  - DynamicController: phase-triggered adaptation with a saved-
 *    configuration table (Figure 6 timeline).
 *  - StaticQualifier: the Static scheme of Sec 6.2 — one conservative
 *    configuration chosen at qualification time with stress activity.
 */

#pragma once

#include <optional>

#include "core/optimizer.hh"
#include "phase/phase_table.hh"

namespace eval {

/** Outcome classification of one controller invocation (Figure 13). */
enum class RetuneOutcome { NoChange, LowFreq, Error, Temp, Power };

const char *retuneOutcomeName(RetuneOutcome o);

/** Result of retuning one configuration against the real hardware. */
struct RetuneResult
{
    OperatingPoint op;          ///< final configuration
    RetuneOutcome outcome = RetuneOutcome::NoChange;
    unsigned steps = 0;         ///< frequency moves performed
    CoreEvaluation eval;        ///< state at the final configuration
};

/** Applies the retuning-cycle policy of Sec 4.3.3. */
class RetuningController
{
  public:
    RetuningController(const Constraints &constraints,
                       const KnobSpace &knobs, bool includeChecker);

    RetuneResult retune(const CoreSystemModel &core, OperatingPoint op,
                        const ActivityVector &act, double thC) const;

    /** Total power including the checker when present (what the
     *  core-wide power sensor reports). */
    double sensedPower(const CoreSystemModel &core,
                       const CoreEvaluation &ev, double freq) const;

  private:
    /** First violated constraint, if any (errors detected soonest). */
    std::optional<RetuneOutcome>
    violation(const CoreSystemModel &core, const CoreEvaluation &ev,
              double freq) const;

    Constraints constraints_;
    KnobSpace knobs_;
    bool includeChecker_;
};

/** What one phase adaptation produced. */
struct PhaseAdaptation
{
    OperatingPoint op;
    CoreEvaluation eval;
    RetuneOutcome outcome = RetuneOutcome::NoChange;
    bool reusedSaved = false;   ///< configuration came from the table
    unsigned retuneSteps = 0;
};

/**
 * Phase-triggered dynamic adaptation: on a new phase, run the
 * controller algorithm then retune; on a known phase, reuse the saved
 * configuration (Sec 4.3.3).
 */
class DynamicController
{
  public:
    /**
     * @param measurementNoiseRel relative sampling error of the 20us
     *        activity-profiling window (Figure 6): the controller
     *        decides from this imperfect snapshot while the hardware
     *        experiences the phase's true average behaviour — one of
     *        the reasons retuning exists.
     */
    DynamicController(SubsystemOptimizer &sub, const EnvCapabilities &caps,
                      const Constraints &constraints,
                      const RecoveryModel &recovery,
                      double measurementNoiseRel = 0.03,
                      std::uint64_t seed = 0x5EED);

    PhaseAdaptation adaptPhase(const CoreSystemModel &core,
                               std::size_t phaseId,
                               const PhaseCharacterization &phase,
                               double thC);

    /** Forget saved configurations (e.g. heat-sink change). */
    void invalidateSaved() { saved_.invalidate(); }

  private:
    CoreOptimizer optimizer_;
    RetuningController retuner_;
    PhaseTable<OperatingPoint> saved_;
    double measurementNoiseRel_;
    Rng rng_;
};

/** The Static scheme: one qualification-time configuration. */
class StaticQualifier
{
  public:
    StaticQualifier(SubsystemOptimizer &sub, const EnvCapabilities &caps,
                    const Constraints &constraints,
                    const RecoveryModel &recovery);

    /**
     * Choose the fixed configuration for this core using conservative
     * stress activity (@p stress), then verify against the physical
     * model and throttle until safe.
     */
    OperatingPoint qualify(const CoreSystemModel &core,
                           const PhaseCharacterization &stress,
                           double thC);

  private:
    CoreOptimizer optimizer_;
    RetuningController retuner_;
    EnvCapabilities caps_;
};

/** Conservative stress characterization used by StaticQualifier. */
PhaseCharacterization
stressCharacterization(const std::array<SubsystemPowerParams,
                                        kNumSubsystems> &power,
                       const RecoveryModel &recovery, double refFreqHz);

} // namespace eval

