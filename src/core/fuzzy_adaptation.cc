#include "core/fuzzy_adaptation.hh"

#include "stats/stat_registry.hh"
#include "trace/span_tracer.hh"
#include "util/config.hh"
#include "util/logging.hh"
#include "util/math_utils.hh"

namespace eval {

CoreFuzzySystem::CoreFuzzySystem(const CoreSystemModel &core,
                                 const EnvCapabilities &caps,
                                 const Constraints &constraints,
                                 const FuzzyTrainingConfig &cfg)
    : core_(core), caps_(caps), constraints_(constraints), cfg_(cfg)
{
}

std::vector<double>
CoreFuzzySystem::freqInput(SubsystemId id, double thC, double alphaF,
                           bool altConfig) const
{
    const SubsystemModel &sub = core_.subsystem(id);
    return {thC,
            core_.thermal().rth(id),
            sub.power().kdyn,
            sub.power().ksta,
            sub.vt0Measured(),
            alphaF,
            altConfig ? 1.0 : 0.0};
}

void
CoreFuzzySystem::train()
{
    static TimerStat &timer =
        StatRegistry::global().timer("profile.fuzzy.train");
    ScopedTimer scope(timer);
    ScopedSpan span("fuzzy.train");
    StatRegistry::global().counter("fuzzy.trainings").inc();

    ExhaustiveOptimizer exhaustive(caps_, constraints_);
    const KnobSpace knobs = caps_.knobSpace();
    Rng rng(cfg_.seed);

    for (std::size_t i = 0; i < kNumSubsystems; ++i) {
        const auto id = static_cast<SubsystemId>(i);
        const SubsystemModel &sub = core_.subsystem(id);
        Rng subRng = rng.fork(0x5B + i);

        std::vector<std::vector<double>> fmaxIn, vddIn, vbbIn;
        std::vector<double> fmaxOut, vddOut, vbbOut;
        fmaxIn.reserve(cfg_.examplesPerFc);

        for (std::size_t k = 0; k < cfg_.examplesPerFc; ++k) {
            const double thC = subRng.uniform(45.0, 70.0);
            const double alphaF =
                sub.power().alphaRef * subRng.uniform(0.1, 2.0);
            const bool alt = sub.hasAlternate() && subRng.bernoulli(0.5);

            const double fmax = clamp(
                exhaustive.maxFrequency(core_, id, alt, alphaF, thC),
                knobs.freq.lo(), knobs.freq.hi());
            fmaxIn.push_back(freqInput(id, thC, alphaF, alt));
            fmaxOut.push_back(fmax);

            if (caps_.asv || caps_.abb) {
                // Deployment queries the Power algorithm at fcore just
                // below the chosen core frequency, so bias training
                // toward the high end of [lo, fmax].
                const double u = subRng.uniform();
                const double fcore = knobs.freq.quantizeDown(
                    fmax - (fmax - knobs.freq.lo()) * u * u);
                const auto best = exhaustive.minimizePower(
                    core_, id, alt, fcore, alphaF, thC);
                if (best) {
                    auto in = freqInput(id, thC, alphaF, alt);
                    in.push_back(fcore);
                    if (caps_.asv) {
                        vddIn.push_back(in);
                        vddOut.push_back(best->vdd);
                    }
                    if (caps_.abb) {
                        vbbIn.push_back(in);
                        vbbOut.push_back(best->vbb);
                    }
                }
            }
        }

        EVAL_ASSERT(fmaxIn.size() >= cfg_.rules,
                    "too few training examples for the rule base");
        Rng trainRng = subRng.fork(0x7124);

        fmaxFc_[i] = std::make_unique<TrainedController>(
            cfg_.rules, fmaxIn.front().size());
        fmaxFc_[i]->train(fmaxIn, fmaxOut, cfg_.learningRate, trainRng);

        if (caps_.asv && vddIn.size() >= cfg_.rules) {
            vddFc_[i] = std::make_unique<TrainedController>(
                cfg_.rules, vddIn.front().size());
            vddFc_[i]->train(vddIn, vddOut, cfg_.learningRate, trainRng);
        }
        if (caps_.abb && vbbIn.size() >= cfg_.rules) {
            vbbFc_[i] = std::make_unique<TrainedController>(
                cfg_.rules, vbbIn.front().size());
            vbbFc_[i]->train(vbbIn, vbbOut, cfg_.learningRate, trainRng);
        }
    }
    trained_ = true;
}

double
CoreFuzzySystem::predictFmax(SubsystemId id, double thC, double alphaF,
                             bool altConfig) const
{
    EVAL_ASSERT(trained_, "fuzzy system queried before training");
    static TimerStat &timer =
        StatRegistry::global().timer("profile.fuzzy.predict");
    static Counter &inferences =
        StatRegistry::global().counter("fuzzy.inferences");
    ScopedTimer scope(timer);
    ScopedSpan span("fuzzy.predict_fmax");
    inferences.inc();
    return fmaxFc_[static_cast<std::size_t>(id)]->predict(
        freqInput(id, thC, alphaF, altConfig));
}

SubsystemKnobs
CoreFuzzySystem::predictKnobs(SubsystemId id, double thC, double alphaF,
                              bool altConfig, double fcore) const
{
    EVAL_ASSERT(trained_, "fuzzy system queried before training");
    static TimerStat &timer =
        StatRegistry::global().timer("profile.fuzzy.predict");
    static Counter &inferences =
        StatRegistry::global().counter("fuzzy.inferences");
    ScopedTimer scope(timer);
    ScopedSpan span("fuzzy.predict_knobs");
    inferences.inc();
    SubsystemKnobs k{core_.params().vddNominal, 0.0};
    auto in = freqInput(id, thC, alphaF, altConfig);
    in.push_back(fcore);

    const auto &vddFc = vddFc_[static_cast<std::size_t>(id)];
    if (caps_.asv && vddFc)
        k.vdd = vddFc->predict(in);
    const auto &vbbFc = vbbFc_[static_cast<std::size_t>(id)];
    if (caps_.abb && vbbFc)
        k.vbb = vbbFc->predict(in);
    return k;
}

FuzzyOptimizer::FuzzyOptimizer(const CoreFuzzySystem &system)
    : system_(system), knobs_(system.caps().knobSpace())
{
    EVAL_ASSERT(system.trained(), "fuzzy optimizer needs a trained system");
}

double
FuzzyOptimizer::maxFrequency(const CoreSystemModel &core, SubsystemId id,
                             bool useAlternate, double alphaF, double thC)
{
    (void)core;
    // Deployment guardband: half a grid step down.  The FC's residual
    // is roughly symmetric, and overshooting a memory subsystem's
    // error cliff costs a sensor trip plus retuning; biasing low lets
    // the cheap upward retuning probes recover the head-room instead.
    const double raw = system_.predictFmax(id, thC, alphaF, useAlternate) -
                       0.5 * knobs_.freq.step();
    return knobs_.freq.quantizeDown(
        clamp(raw, knobs_.freq.lo(), knobs_.freq.hi()));
}

std::optional<SubsystemKnobs>
FuzzyOptimizer::minimizePower(const CoreSystemModel &core, SubsystemId id,
                              bool useAlternate, double fcore,
                              double alphaF, double thC)
{
    (void)core;
    SubsystemKnobs k =
        system_.predictKnobs(id, thC, alphaF, useAlternate, fcore);
    // Deployment guardbands: undershooting Vdd/Vbb on a critical
    // subsystem trips the PE sensor and forfeits frequency in
    // retuning, while overshooting merely wastes some power (which
    // the power sensor polices).  Round the supply up by half a step
    // and bias the body bias forward by one step before quantizing.
    k.vdd = knobs_.vdd.quantizeUp(
        clamp(k.vdd + 0.5 * knobs_.vdd.step(), knobs_.vdd.lo(),
              knobs_.vdd.hi()));
    // The Vdd and Vbb controllers predict independently, so their
    // errors compound when both knobs exist; the body bias carries a
    // correspondingly larger forward guardband.
    k.vbb += (system_.caps().asv ? 2.0 : 1.0) * knobs_.vbb.step();
    k.vbb = system_.caps().abb
                ? knobs_.vbb.quantize(clamp(k.vbb, knobs_.vbb.lo(),
                                            knobs_.vbb.hi()))
                : 0.0;
    return k;
}

} // namespace eval
