#include "core/retiming.hh"

#include <algorithm>

#include "timing/path_population.hh"
#include "util/logging.hh"

namespace eval {

double
retimedFrequency(const CoreSystemModel &core, const RetimingConfig &cfg)
{
    EVAL_ASSERT(cfg.slackPassEfficiency >= 0.0 &&
                    cfg.slackPassEfficiency <= 1.0,
                "slack-pass efficiency in [0,1]");

    const ProcessParams &p = core.params();
    const OperatingConditions corner{
        p.vddNominal * (1.0 - p.vddDroopGuardband), 0.0, p.tempNominalC};

    // Worst-case per-stage delays at the rating corner, without the
    // EVAL checker's Razor assist (a plain retimed pipeline).
    double maxDelay = 0.0;
    double sumDelay = 0.0;
    for (std::size_t i = 0; i < kNumSubsystems; ++i) {
        const auto id = static_cast<SubsystemId>(i);
        double d = core.subsystem(id).errorModel(false).maxDelay(corner);
        if (id == SubsystemId::Dcache || id == SubsystemId::Icache)
            d /= kRazorL1Margin;
        maxDelay = std::max(maxDelay, d);
        sumDelay += d;
    }
    const double meanDelay = sumDelay / static_cast<double>(kNumSubsystems);

    // Slack passing moves the cycle time from the worst stage toward
    // the mean, limited by the efficiency.
    const double period = cfg.slackPassEfficiency * meanDelay +
                          (1.0 - cfg.slackPassEfficiency) * maxDelay;
    return 1.0 / period;
}

} // namespace eval
