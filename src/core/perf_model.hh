/**
 * @file
 * The Eq 5 performance model:
 *
 *   Perf(f) = f / (CPIcomp + mr * mp(f) + PE(f) * rp)
 *
 * CPIcomp and mr come from one characterization run of the cycle-level
 * core model; mp grows linearly with f because main-memory time is
 * fixed in nanoseconds; PE comes from the subsystem error models; rp
 * is the Diva recovery penalty.
 */

#pragma once

#include "arch/core.hh"

namespace eval {

/** Application/phase inputs to Eq 5. */
struct PerfInputs
{
    double cpiComp = 1.0;           ///< computation CPI
    double missesPerInst = 0.0;     ///< mr, L2 misses / instruction
    double memPenaltySec = 0.0;     ///< non-overlapped seconds / miss
    double recoveryPenaltyCycles = 14.0;   ///< rp

    /** Build from a characterization run at frequency @p refFreqHz. */
    static PerfInputs fromStats(const CoreStats &stats, double refFreqHz,
                                double recoveryPenaltyCycles);
};

/** Eq 5 denominator: total CPI at frequency @p freqHz. */
double cpiAt(double freqHz, double pePerInstruction,
             const PerfInputs &in);

/** Eq 5: performance in instructions per second. */
double performance(double freqHz, double pePerInstruction,
                   const PerfInputs &in);

} // namespace eval

