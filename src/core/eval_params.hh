/**
 * @file
 * EVAL framework constants: the optimization constraints of Sec 4.1 /
 * Figure 7(a) and the error-recovery cost model of Sec 3.1.
 */

#pragma once

namespace eval {

/** Constraints of the optimization problem (Figure 7(a)). */
struct Constraints
{
    double tMaxC = 85.0;      ///< max junction temperature
    double thMaxC = 70.0;     ///< max heat-sink temperature
    double pMaxW = 30.0;      ///< max per-processor power
    double peMax = 1e-4;      ///< max errors per instruction
};

/** Cost model for timing-speculation recovery (Diva-style checker). */
struct RecoveryModel
{
    /** Cycles per recovery: pipeline flush + restart, equal to the
     *  branch misprediction penalty (Sec 3.1). */
    double penaltyCycles = 14.0;
};

/** Timeline parameters of the adaptation system (Figure 6). */
struct TimelineParams
{
    double phaseLengthS = 0.120;        ///< mean stable phase
    double measureS = 20e-6;            ///< activity/CPI profiling
    double controllerS = 6e-6;          ///< fuzzy routines on the CPU
    double transitionS = 10e-6;         ///< f/V change (XScale-like)
    double retuneStepS = 0.5e-6;        ///< one retuning frequency move
    double sensorCheckS = 2e-3;         ///< violation detection latency

    /** Fraction of a phase lost to one full adaptation. */
    double overheadFraction(unsigned retuneSteps) const;
};

} // namespace eval

