#include "core/optimizer.hh"

#include <algorithm>
#include <cmath>

#include "exec/thread_pool.hh"
#include "obs/progress.hh"
#include "stats/stat_registry.hh"
#include "trace/span_tracer.hh"
#include "util/logging.hh"
#include "util/math_utils.hh"

namespace eval {

KnobSpace
EnvCapabilities::knobSpace() const
{
    KnobSpace ks;
    ks.hasAsv = asv;
    ks.hasAbb = abb;
    return ks;
}

double
perAccessErrorBudget(const Constraints &c, double alphaF)
{
    const double perInstrBudget =
        c.peMax / static_cast<double>(kNumSubsystems);
    // Accesses per instruction ~= accesses per cycle x CPI; the
    // controller senses only alpha_f, so it assumes a conservative
    // CPI.  (Sec 4.2 sets the whole per-subsystem budget
    // "conservatively"; the retuning cycles absorb the residual.)
    constexpr double kConservativeCpi = 1.3;
    const double rhoProxy = std::max(alphaF * kConservativeCpi, 1e-3);
    return perInstrBudget / rhoProxy;
}

ExhaustiveOptimizer::ExhaustiveOptimizer(const EnvCapabilities &caps,
                                         const Constraints &constraints)
    : knobs_(caps.knobSpace()), constraints_(constraints)
{
}

std::shared_ptr<const ExhaustiveOptimizer::KnobCandidates>
ExhaustiveOptimizer::candidates(double vddNominal)
{
    std::lock_guard<std::mutex> lock(candMutex_);
    if (!cand_ || cand_->vddNominal != vddNominal) {
        auto built = std::make_shared<KnobCandidates>();
        built->vddNominal = vddNominal;
        built->vdds = knobs_.vddCandidates(vddNominal);
        built->vbbs = knobs_.vbbCandidates();
        cand_ = std::move(built);
    }
    return cand_;
}

double
ExhaustiveOptimizer::maxFrequency(const CoreSystemModel &core,
                                  SubsystemId id, bool useAlternate,
                                  double alphaF, double thC)
{
    static TimerStat &timer =
        StatRegistry::global().timer("profile.optimizer.max_frequency");
    static Counter &queries =
        StatRegistry::global().counter("optimizer.freq_queries");
    ScopedTimer scope(timer);
    ScopedSpan span("optimizer.max_frequency");
    span.arg("subsystem", static_cast<std::size_t>(id));
    span.arg("alt", useAlternate);
    queries.inc();

    // The answer is the highest grid frequency at which ANY (Vdd, Vbb)
    // setting is feasible.  The legacy search binary-searched the
    // frequency grid with a full knob scan (and a thermal solve per
    // setting) at every probe; this search flips the nesting: walk the
    // settings fast-first and let each setting advance a shared
    // "best feasible index" with its own gallop + binary search.  A
    // setting only pays thermal solves when it can still beat the
    // current best, and almost all settings are eliminated by one
    // memoized PE query at the temperature floor.  Both searches rest
    // on the same invariant the legacy prefilters used: PE rises with
    // f and T and falls with Vdd and Vbb (fast settings first), and
    // the solved junction temperature is at least TH + Rth * Pdyn, so
    // a setting that misses the budget at the floor can never pass the
    // post-solve check — the prunes only skip settings that would have
    // failed, keeping the chosen frequency bit-identical.
    const double budget = perAccessErrorBudget(constraints_, alphaF);
    const auto cand = candidates(core.params().vddNominal);
    const auto &vdds = cand->vdds;
    const auto &vbbs = cand->vbbs;
    const auto &freqs = knobs_.freq;
    const std::size_t n = freqs.size();

    const StageErrorModel &em =
        core.subsystem(id).errorModel(useAlternate);
    const double r = core.thermal().rth(id);
    const double kdyn = core.subsystem(id).power().kdyn;
    const double tMaxC = constraints_.tMaxC;
    const bool tempPrunable = tMaxC < 400.0;

    // Exact per-setting feasibility at grid index fi, with the two
    // decision-invariant prechecks (temperature floor, PE at floor)
    // ahead of the thermal solve.
    const auto feasible = [&](double vdd, double vbb, std::size_t fi) {
        const double f = freqs.value(fi);
        if (tempPrunable &&
            thC + r * dynamicPower(kdyn, alphaF, vdd, f) > tMaxC)
            return false;
        const OperatingConditions cool{vdd, vbb, thC};
        if (em.errorRatePerAccess(1.0 / f, cool) > budget)
            return false;
        const auto sol = core.evaluateSubsystem(
            id, useAlternate, f, SubsystemKnobs{vdd, vbb}, alphaF,
            alphaF, thC);
        return sol.functional && sol.thermal.tempC <= tMaxC &&
               sol.peAccess <= budget;
    };

    std::ptrdiff_t best = -1;   // highest grid index known feasible
    const double vbbFast = vbbs.back();
    for (auto vddIt = vdds.rbegin(); vddIt != vdds.rend(); ++vddIt) {
        const double vdd = *vddIt;
        std::size_t probe = static_cast<std::size_t>(best + 1);
        if (probe >= n)
            break;   // best already at the top of the grid

        // Row head: if even the row's fastest Vbb misses the budget at
        // the floor temperature for the next frequency to beat, every
        // setting in this row fails there — and PE only grows as Vdd
        // drops, so every remaining row fails too.  One memoized PE
        // query retires the rest of the scan.
        {
            const OperatingConditions head{vdd, vbbFast, thC};
            if (em.errorRatePerAccess(1.0 / freqs.value(probe), head) >
                budget)
                break;
        }
        // Temperature floor is Vbb-free: a row whose floor exceeds
        // TMAX at the probe frequency cannot beat best at any Vbb
        // (but cooler, lower-Vdd rows still might — keep scanning).
        if (tempPrunable &&
            thC + r * dynamicPower(kdyn, alphaF, vdd,
                                   freqs.value(probe)) > tMaxC)
            continue;

        for (auto vbbIt = vbbs.rbegin(); vbbIt != vbbs.rend(); ++vbbIt) {
            const double vbb = *vbbIt;
            probe = static_cast<std::size_t>(best + 1);
            if (probe >= n)
                break;
            // Reverse bias only raises PE: once a Vbb misses the
            // budget at the floor, the rest of the row misses it too.
            const OperatingConditions cool{vdd, vbb, thC};
            if (em.errorRatePerAccess(1.0 / freqs.value(probe), cool) >
                budget)
                break;
            if (!feasible(vdd, vbb, probe))
                continue;

            // This setting beats the best — gallop upward to bracket
            // its own maximum, then binary-search the bracket.
            // Per-setting feasibility is monotone in f (PE and T both
            // rise), the same invariant the legacy frequency binary
            // search relied on.
            std::size_t lo = probe;   // known feasible (this setting)
            std::size_t hi = n;       // first known-infeasible, n=none
            // Gallop only when the bracket starts above the grid
            // bottom (best + 1 is usually close to the answer); from
            // the bottom a plain binary search over the whole grid
            // needs fewer probes than doubling through it.
            if (probe > 0) {
                for (std::size_t step = 1; lo + step < n; step <<= 1) {
                    const std::size_t t = lo + step;
                    if (feasible(vdd, vbb, t)) {
                        lo = t;
                    } else {
                        hi = t;
                        break;
                    }
                }
            }
            while (hi - lo > 1) {
                const std::size_t mid = (lo + hi) / 2;
                if (feasible(vdd, vbb, mid))
                    lo = mid;
                else
                    hi = mid;
            }
            best = static_cast<std::ptrdiff_t>(lo);
        }
    }
    return best < 0 ? 0.0 : freqs.value(static_cast<std::size_t>(best));
}

std::optional<SubsystemKnobs>
ExhaustiveOptimizer::minimizePower(const CoreSystemModel &core,
                                   SubsystemId id, bool useAlternate,
                                   double fcore, double alphaF,
                                   double thC)
{
    static TimerStat &timer =
        StatRegistry::global().timer("profile.optimizer.minimize_power");
    static Counter &queries =
        StatRegistry::global().counter("optimizer.power_queries");
    ScopedTimer scope(timer);
    ScopedSpan span("optimizer.minimize_power");
    span.arg("subsystem", static_cast<std::size_t>(id));
    queries.inc();

    const double budget = perAccessErrorBudget(constraints_, alphaF);
    const auto cand = candidates(core.params().vddNominal);
    const auto &vdds = cand->vdds;
    const auto &vbbs = cand->vbbs;

    const SubsystemModel &sub = core.subsystem(id);
    const StageErrorModel &em = sub.errorModel(useAlternate);
    const double r = core.thermal().rth(id);
    const double kdyn = sub.power().kdyn;
    const double pf = sub.powerFactor(useAlternate);
    const bool tempPrunable = constraints_.tMaxC < 400.0;

    std::optional<SubsystemKnobs> best;
    double bestPower = 1e30;
    for (double vdd : vdds) {
        // Pdyn depends only on Vdd here, giving two Vbb-row prunes:
        // the temperature floor TH + Rth * Pdyn (leakage only adds
        // heat) exceeding TMAX means no Vbb can cool the row into
        // feasibility, and pf * Pdyn alone already beating the best
        // power means no Vbb can win (Psta > 0).
        const double pdyn = dynamicPower(kdyn, alphaF, vdd, fcore);
        if (tempPrunable && thC + r * pdyn > constraints_.tMaxC)
            continue;
        if (pf * pdyn >= bestPower)
            continue;
        // Optimistic PE prefilter at T = TH: PE only falls as Vbb
        // swings toward forward bias, so the Vbbs that meet the error
        // budget at the floor form a suffix of the ascending row —
        // binary-search its start instead of filtering linearly.  The
        // skipped queries are exactly the ones the linear filter would
        // have rejected, so the chosen setting is unchanged.
        std::size_t firstOk = 0;
        {
            std::size_t lo = 0, hi = vbbs.size();
            while (lo < hi) {
                const std::size_t mid = (lo + hi) / 2;
                const OperatingConditions cool{vdd, vbbs[mid], thC};
                if (em.errorRatePerAccess(1.0 / fcore, cool) <= budget)
                    hi = mid;
                else
                    lo = mid + 1;
            }
            firstOk = lo;
        }
        for (std::size_t vi = firstOk; vi < vbbs.size(); ++vi) {
            const double vbb = vbbs[vi];
            SubsystemKnobs k{vdd, vbb};
            const auto sol = core.evaluateSubsystem(
                id, useAlternate, fcore, k, alphaF, alphaF, thC);
            if (!sol.functional ||
                sol.thermal.tempC > constraints_.tMaxC ||
                sol.peAccess > budget) {
                continue;
            }
            const double p = sol.thermal.power();
            if (p < bestPower) {
                bestPower = p;
                best = k;
            }
            // Pdyn is Vbb-free and Psta only grows with forward bias
            // (Eq 8: Vbb lowers Vt, raising leakage exponentially, and
            // the extra heat compounds it), so the first feasible Vbb
            // in this ascending scan is the row's cheapest — the rest
            // of the row cannot beat it.
            break;
        }
    }
    return best;
}

CoreOptimizer::CoreOptimizer(SubsystemOptimizer &sub,
                             const EnvCapabilities &caps,
                             const Constraints &constraints,
                             const RecoveryModel &recovery)
    : sub_(sub), caps_(caps), constraints_(constraints),
      recovery_(recovery), knobs_(caps.knobSpace())
{
    EVAL_ASSERT(caps.timingSpec,
                "the adaptation controller requires timing speculation");
}

double
CoreOptimizer::freqForConfig(const CoreSystemModel &core,
                             const PhaseCharacterization &phase,
                             double thC, bool smallQueue,
                             bool &lowSlopeChosen,
                             std::array<double, kNumSubsystems> &fmaxOut)
{
    const SubsystemId fuId = core.fuSubsystem();
    const SubsystemId queueId = core.queueSubsystem();

    double fNormal = 0.0;
    double fLowSlope = 0.0;

    // The per-subsystem Freq queries are independent const scans, so
    // fan them out; every task writes its own slot (the FU task its
    // own two locals), and the min-reduction below runs serially, so
    // the result is bit-identical to the serial loop.  The progress
    // tick is observational only — one relaxed RMW never read back
    // by model code (DESIGN.md Sec 5f).
    static ProgressTracker &subProgress =
        ProgressRegistry::global().tracker("optimizer.subsystems");
    subProgress.addTotal(kNumSubsystems);
    globalPool().parallelFor(0, kNumSubsystems, 1, [&](std::size_t i) {
        const auto id = static_cast<SubsystemId>(i);
        const double alphaF = phase.act.alpha[i];

        if (caps_.fuReplication && id == fuId) {
            fNormal = sub_.maxFrequency(core, id, false, alphaF, thC);
            fLowSlope = sub_.maxFrequency(core, id, true, alphaF, thC);
            subProgress.tick();
            return;
        }
        const bool alt = smallQueue && id == queueId;
        fmaxOut[i] = sub_.maxFrequency(core, id, alt, alphaF, thC);
        subProgress.tick();
    });

    double minRest = 1e30;
    for (std::size_t i = 0; i < kNumSubsystems; ++i) {
        if (caps_.fuReplication && static_cast<SubsystemId>(i) == fuId)
            continue;
        minRest = std::min(minRest, fmaxOut[i]);
    }

    if (!caps_.fuReplication) {
        return minRest;
    }

    // Figure 4: enable the low-slope FU only when the normal FU would
    // limit the core frequency (cases i and ii); otherwise save power.
    // Guard against the replica not paying off (a temperature-limited
    // FU gets hotter from the replica's 30% power premium).
    lowSlopeChosen = fNormal < minRest && fLowSlope > fNormal;
    const double fFu = lowSlopeChosen ? fLowSlope : fNormal;
    fmaxOut[static_cast<std::size_t>(fuId)] = fFu;
    return std::min(minRest, fFu);
}

AdaptationResult
CoreOptimizer::choose(const CoreSystemModel &core,
                      const PhaseCharacterization &phase, double thC)
{
    static TimerStat &timer =
        StatRegistry::global().timer("profile.optimizer.choose");
    static Counter &calls =
        StatRegistry::global().counter("optimizer.choose_calls");
    ScopedTimer scope(timer);
    ScopedSpan span("optimizer.choose");
    calls.inc();

    AdaptationResult result;

    // --- Freq algorithm per candidate queue configuration ---
    bool lowSlopeFull = false;
    std::array<double, kNumSubsystems> fmaxFull{};
    const double rawFull = freqForConfig(core, phase, thC, false,
                                         lowSlopeFull, fmaxFull);

    bool smallQueue = false;
    bool lowSlope = lowSlopeFull;
    double rawFreq = rawFull;
    std::array<double, kNumSubsystems> fmax = fmaxFull;

    if (caps_.queueResize) {
        bool lowSlopeSmall = false;
        std::array<double, kNumSubsystems> fmaxSmall{};
        const double rawSmall = freqForConfig(core, phase, thC, true,
                                              lowSlopeSmall, fmaxSmall);

        // Sec 4.2: compare Eq 5 performance of (CPIcomp_1.00,
        // fcore_1.00) against (CPIcomp_0.75, fcore_0.75).
        const double peTarget = constraints_.peMax;
        const double perfFull = rawFull > 0.0
            ? performance(rawFull, peTarget, phase.perfFull) : 0.0;
        const double perfSmall = rawSmall > 0.0
            ? performance(rawSmall, peTarget, phase.perfSmall) : 0.0;
        if (perfSmall > perfFull) {
            smallQueue = true;
            lowSlope = lowSlopeSmall;
            rawFreq = rawSmall;
            fmax = fmaxSmall;
        }
    }

    result.fmax = fmax;
    if (rawFreq <= 0.0) {
        // No subsystem setting is feasible even at the slowest clock;
        // fall back to the bottom of the range and flag it.
        result.feasible = false;
        rawFreq = knobs_.freq.lo();
    }

    OperatingPoint op = nominalOperatingPoint(core.params());
    op.freq = knobs_.freq.quantizeDown(std::min(rawFreq, knobs_.freq.hi()));
    op.smallQueue = smallQueue;
    op.lowSlopeFu = caps_.fuReplication && lowSlope;

    // --- Power algorithm + PMAX check (Figure 3 right box) ---
    const PerfInputs &perfIn =
        smallQueue ? phase.perfSmall : phase.perfFull;
    for (int guard = 0; guard < 40; ++guard) {
        // Independent per-subsystem Power queries: fan out, then fold
        // the per-slot answers into op serially (op is read by every
        // task via usesAlternate, so tasks must not write it).
        std::array<std::optional<SubsystemKnobs>, kNumSubsystems> picks;
        static ProgressTracker &subProgress =
            ProgressRegistry::global().tracker("optimizer.subsystems");
        subProgress.addTotal(kNumSubsystems);
        globalPool().parallelFor(0, kNumSubsystems, 1,
                                 [&](std::size_t i) {
            const auto id = static_cast<SubsystemId>(i);
            const bool alt = core.usesAlternate(id, op);
            picks[i] = sub_.minimizePower(core, id, alt, op.freq,
                                          phase.act.alpha[i], thC);
            subProgress.tick();
        });
        for (std::size_t i = 0; i < kNumSubsystems; ++i) {
            const auto id = static_cast<SubsystemId>(i);
            if (picks[i]) {
                op.knobsOf(id) = {knobs_.vdd.quantize(picks[i]->vdd),
                                  knobs_.vbb.quantize(picks[i]->vbb)};
            } else {
                // Best effort: fastest available setting.
                op.knobsOf(id) = {knobs_.vdd.hi(),
                                  caps_.abb ? knobs_.vbb.hi() : 0.0};
                result.feasible = false;
            }
        }

        const CoreEvaluation ev = core.evaluate(op, phase.act, thC);
        const double checker =
            core.calibration().checkerPowerW *
            (op.freq / core.params().freqNominal);
        if (ev.totalPowerW + checker <= constraints_.pMaxW ||
            op.freq <= knobs_.freq.lo()) {
            result.predictedPerf =
                performance(op.freq, ev.pePerInstruction, perfIn);
            result.predictedPe = ev.pePerInstruction;
            break;
        }
        op.freq = knobs_.freq.quantizeDown(op.freq - knobs_.freq.step());
    }

    if (!result.feasible)
        StatRegistry::global().counter("optimizer.infeasible").inc();

    result.op = op;
    return result;
}

} // namespace eval
