#include "core/optimizer.hh"

#include <algorithm>
#include <cmath>

#include "exec/thread_pool.hh"
#include "obs/progress.hh"
#include "stats/stat_registry.hh"
#include "trace/span_tracer.hh"
#include "util/logging.hh"
#include "util/math_utils.hh"

namespace eval {

KnobSpace
EnvCapabilities::knobSpace() const
{
    KnobSpace ks;
    ks.hasAsv = asv;
    ks.hasAbb = abb;
    return ks;
}

double
perAccessErrorBudget(const Constraints &c, double alphaF)
{
    const double perInstrBudget =
        c.peMax / static_cast<double>(kNumSubsystems);
    // Accesses per instruction ~= accesses per cycle x CPI; the
    // controller senses only alpha_f, so it assumes a conservative
    // CPI.  (Sec 4.2 sets the whole per-subsystem budget
    // "conservatively"; the retuning cycles absorb the residual.)
    constexpr double kConservativeCpi = 1.3;
    const double rhoProxy = std::max(alphaF * kConservativeCpi, 1e-3);
    return perInstrBudget / rhoProxy;
}

ExhaustiveOptimizer::ExhaustiveOptimizer(const EnvCapabilities &caps,
                                         const Constraints &constraints)
    : knobs_(caps.knobSpace()), constraints_(constraints)
{
}

bool
ExhaustiveOptimizer::feasibleAt(const CoreSystemModel &core, SubsystemId id,
                                bool useAlternate, double freq,
                                double alphaF, double thC,
                                double vddNominal)
{
    const double budget = perAccessErrorBudget(constraints_, alphaF);
    const auto vdds = knobs_.vddCandidates(vddNominal);
    const auto vbbs = knobs_.vbbCandidates();

    // Optimistic prefilter: even at the fastest setting and at the
    // coolest possible junction temperature (T >= TH always), does the
    // error rate fit the budget?  If not, no thermal solve can help —
    // this skips the full knob scan for clearly infeasible frequencies.
    {
        const OperatingConditions fastest{vdds.back(), vbbs.back(), thC};
        const double peOptimistic =
            core.subsystem(id).errorModel(useAlternate)
                .errorRatePerAccess(1.0 / freq, fastest);
        if (peOptimistic > budget)
            return false;
    }

    // Fast settings first: high Vdd and forward bias minimize PE; if a
    // setting overheats, the scan continues toward cooler ones.
    for (auto vddIt = vdds.rbegin(); vddIt != vdds.rend(); ++vddIt) {
        for (auto vbbIt = vbbs.rbegin(); vbbIt != vbbs.rend(); ++vbbIt) {
            SubsystemKnobs k{*vddIt, *vbbIt};
            const auto sol = core.evaluateSubsystem(
                id, useAlternate, freq, k, alphaF, alphaF, thC);
            if (sol.functional &&
                sol.thermal.tempC <= constraints_.tMaxC &&
                sol.peAccess <= budget) {
                return true;
            }
        }
    }
    return false;
}

double
ExhaustiveOptimizer::maxFrequency(const CoreSystemModel &core,
                                  SubsystemId id, bool useAlternate,
                                  double alphaF, double thC)
{
    static TimerStat &timer =
        StatRegistry::global().timer("profile.optimizer.max_frequency");
    static Counter &queries =
        StatRegistry::global().counter("optimizer.freq_queries");
    ScopedTimer scope(timer);
    ScopedSpan span("optimizer.max_frequency");
    span.arg("subsystem", static_cast<std::size_t>(id));
    span.arg("alt", useAlternate);
    queries.inc();

    const double vddNom = core.params().vddNominal;
    const auto &freqs = knobs_.freq;

    if (!feasibleAt(core, id, useAlternate, freqs.lo(), alphaF, thC,
                    vddNom)) {
        return 0.0;
    }
    if (feasibleAt(core, id, useAlternate, freqs.hi(), alphaF, thC,
                   vddNom)) {
        return freqs.hi();
    }

    // Feasibility is monotone in f (PE and T both rise), so binary
    // search over the knob grid.
    std::size_t lo = 0;                      // known feasible
    std::size_t hi = freqs.size() - 1;       // known infeasible
    while (hi - lo > 1) {
        const std::size_t mid = (lo + hi) / 2;
        if (feasibleAt(core, id, useAlternate, freqs.value(mid), alphaF,
                       thC, vddNom)) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return freqs.value(lo);
}

std::optional<SubsystemKnobs>
ExhaustiveOptimizer::minimizePower(const CoreSystemModel &core,
                                   SubsystemId id, bool useAlternate,
                                   double fcore, double alphaF,
                                   double thC)
{
    static TimerStat &timer =
        StatRegistry::global().timer("profile.optimizer.minimize_power");
    static Counter &queries =
        StatRegistry::global().counter("optimizer.power_queries");
    ScopedTimer scope(timer);
    ScopedSpan span("optimizer.minimize_power");
    span.arg("subsystem", static_cast<std::size_t>(id));
    queries.inc();

    const double budget = perAccessErrorBudget(constraints_, alphaF);
    const auto vdds = knobs_.vddCandidates(core.params().vddNominal);
    const auto vbbs = knobs_.vbbCandidates();

    const StageErrorModel &em =
        core.subsystem(id).errorModel(useAlternate);

    std::optional<SubsystemKnobs> best;
    double bestPower = 1e30;
    for (double vdd : vdds) {
        for (double vbb : vbbs) {
            SubsystemKnobs k{vdd, vbb};
            // Optimistic PE prefilter at T = TH skips the thermal
            // solve for settings that cannot meet the error budget.
            const OperatingConditions cool{vdd, vbb, thC};
            if (em.errorRatePerAccess(1.0 / fcore, cool) > budget)
                continue;
            const auto sol = core.evaluateSubsystem(
                id, useAlternate, fcore, k, alphaF, alphaF, thC);
            if (!sol.functional ||
                sol.thermal.tempC > constraints_.tMaxC ||
                sol.peAccess > budget) {
                continue;
            }
            const double p = sol.thermal.power();
            if (p < bestPower) {
                bestPower = p;
                best = k;
            }
        }
    }
    return best;
}

CoreOptimizer::CoreOptimizer(SubsystemOptimizer &sub,
                             const EnvCapabilities &caps,
                             const Constraints &constraints,
                             const RecoveryModel &recovery)
    : sub_(sub), caps_(caps), constraints_(constraints),
      recovery_(recovery), knobs_(caps.knobSpace())
{
    EVAL_ASSERT(caps.timingSpec,
                "the adaptation controller requires timing speculation");
}

double
CoreOptimizer::freqForConfig(const CoreSystemModel &core,
                             const PhaseCharacterization &phase,
                             double thC, bool smallQueue,
                             bool &lowSlopeChosen,
                             std::array<double, kNumSubsystems> &fmaxOut)
{
    const SubsystemId fuId = core.fuSubsystem();
    const SubsystemId queueId = core.queueSubsystem();

    double fNormal = 0.0;
    double fLowSlope = 0.0;

    // The per-subsystem Freq queries are independent const scans, so
    // fan them out; every task writes its own slot (the FU task its
    // own two locals), and the min-reduction below runs serially, so
    // the result is bit-identical to the serial loop.  The progress
    // tick is observational only — one relaxed RMW never read back
    // by model code (DESIGN.md Sec 5f).
    static ProgressTracker &subProgress =
        ProgressRegistry::global().tracker("optimizer.subsystems");
    subProgress.addTotal(kNumSubsystems);
    globalPool().parallelFor(0, kNumSubsystems, 1, [&](std::size_t i) {
        const auto id = static_cast<SubsystemId>(i);
        const double alphaF = phase.act.alpha[i];

        if (caps_.fuReplication && id == fuId) {
            fNormal = sub_.maxFrequency(core, id, false, alphaF, thC);
            fLowSlope = sub_.maxFrequency(core, id, true, alphaF, thC);
            subProgress.tick();
            return;
        }
        const bool alt = smallQueue && id == queueId;
        fmaxOut[i] = sub_.maxFrequency(core, id, alt, alphaF, thC);
        subProgress.tick();
    });

    double minRest = 1e30;
    for (std::size_t i = 0; i < kNumSubsystems; ++i) {
        if (caps_.fuReplication && static_cast<SubsystemId>(i) == fuId)
            continue;
        minRest = std::min(minRest, fmaxOut[i]);
    }

    if (!caps_.fuReplication) {
        return minRest;
    }

    // Figure 4: enable the low-slope FU only when the normal FU would
    // limit the core frequency (cases i and ii); otherwise save power.
    // Guard against the replica not paying off (a temperature-limited
    // FU gets hotter from the replica's 30% power premium).
    lowSlopeChosen = fNormal < minRest && fLowSlope > fNormal;
    const double fFu = lowSlopeChosen ? fLowSlope : fNormal;
    fmaxOut[static_cast<std::size_t>(fuId)] = fFu;
    return std::min(minRest, fFu);
}

AdaptationResult
CoreOptimizer::choose(const CoreSystemModel &core,
                      const PhaseCharacterization &phase, double thC)
{
    static TimerStat &timer =
        StatRegistry::global().timer("profile.optimizer.choose");
    static Counter &calls =
        StatRegistry::global().counter("optimizer.choose_calls");
    ScopedTimer scope(timer);
    ScopedSpan span("optimizer.choose");
    calls.inc();

    AdaptationResult result;

    // --- Freq algorithm per candidate queue configuration ---
    bool lowSlopeFull = false;
    std::array<double, kNumSubsystems> fmaxFull{};
    const double rawFull = freqForConfig(core, phase, thC, false,
                                         lowSlopeFull, fmaxFull);

    bool smallQueue = false;
    bool lowSlope = lowSlopeFull;
    double rawFreq = rawFull;
    std::array<double, kNumSubsystems> fmax = fmaxFull;

    if (caps_.queueResize) {
        bool lowSlopeSmall = false;
        std::array<double, kNumSubsystems> fmaxSmall{};
        const double rawSmall = freqForConfig(core, phase, thC, true,
                                              lowSlopeSmall, fmaxSmall);

        // Sec 4.2: compare Eq 5 performance of (CPIcomp_1.00,
        // fcore_1.00) against (CPIcomp_0.75, fcore_0.75).
        const double peTarget = constraints_.peMax;
        const double perfFull = rawFull > 0.0
            ? performance(rawFull, peTarget, phase.perfFull) : 0.0;
        const double perfSmall = rawSmall > 0.0
            ? performance(rawSmall, peTarget, phase.perfSmall) : 0.0;
        if (perfSmall > perfFull) {
            smallQueue = true;
            lowSlope = lowSlopeSmall;
            rawFreq = rawSmall;
            fmax = fmaxSmall;
        }
    }

    result.fmax = fmax;
    if (rawFreq <= 0.0) {
        // No subsystem setting is feasible even at the slowest clock;
        // fall back to the bottom of the range and flag it.
        result.feasible = false;
        rawFreq = knobs_.freq.lo();
    }

    OperatingPoint op = nominalOperatingPoint(core.params());
    op.freq = knobs_.freq.quantizeDown(std::min(rawFreq, knobs_.freq.hi()));
    op.smallQueue = smallQueue;
    op.lowSlopeFu = caps_.fuReplication && lowSlope;

    // --- Power algorithm + PMAX check (Figure 3 right box) ---
    const PerfInputs &perfIn =
        smallQueue ? phase.perfSmall : phase.perfFull;
    for (int guard = 0; guard < 40; ++guard) {
        // Independent per-subsystem Power queries: fan out, then fold
        // the per-slot answers into op serially (op is read by every
        // task via usesAlternate, so tasks must not write it).
        std::array<std::optional<SubsystemKnobs>, kNumSubsystems> picks;
        static ProgressTracker &subProgress =
            ProgressRegistry::global().tracker("optimizer.subsystems");
        subProgress.addTotal(kNumSubsystems);
        globalPool().parallelFor(0, kNumSubsystems, 1,
                                 [&](std::size_t i) {
            const auto id = static_cast<SubsystemId>(i);
            const bool alt = core.usesAlternate(id, op);
            picks[i] = sub_.minimizePower(core, id, alt, op.freq,
                                          phase.act.alpha[i], thC);
            subProgress.tick();
        });
        for (std::size_t i = 0; i < kNumSubsystems; ++i) {
            const auto id = static_cast<SubsystemId>(i);
            if (picks[i]) {
                op.knobsOf(id) = {knobs_.vdd.quantize(picks[i]->vdd),
                                  knobs_.vbb.quantize(picks[i]->vbb)};
            } else {
                // Best effort: fastest available setting.
                op.knobsOf(id) = {knobs_.vdd.hi(),
                                  caps_.abb ? knobs_.vbb.hi() : 0.0};
                result.feasible = false;
            }
        }

        const CoreEvaluation ev = core.evaluate(op, phase.act, thC);
        const double checker =
            core.calibration().checkerPowerW *
            (op.freq / core.params().freqNominal);
        if (ev.totalPowerW + checker <= constraints_.pMaxW ||
            op.freq <= knobs_.freq.lo()) {
            result.predictedPerf =
                performance(op.freq, ev.pePerInstruction, perfIn);
            result.predictedPe = ev.pePerInstruction;
            break;
        }
        op.freq = knobs_.freq.quantizeDown(op.freq - knobs_.freq.step());
    }

    if (!result.feasible)
        StatRegistry::global().counter("optimizer.infeasible").inc();

    result.op = op;
    return result;
}

} // namespace eval
