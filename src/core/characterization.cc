#include "core/characterization.hh"

#include "arch/core.hh"
#include "obs/progress.hh"
#include "stats/stat_registry.hh"
#include "util/logging.hh"

namespace eval {

double
AppCharacterization::totalWeight() const
{
    double w = 0.0;
    for (const auto &p : phases)
        w += p.weight;
    return w;
}

CharacterizationCache::CharacterizationCache(const RecoveryModel &recovery,
                                             double refFreqHz,
                                             std::uint64_t seed,
                                             std::uint64_t simInsts)
    : recovery_(recovery), refFreqHz_(refFreqHz), seed_(seed),
      simInsts_(simInsts)
{
    EVAL_ASSERT(simInsts > 1000, "characterization needs a real sample");
}

const AppCharacterization &
CharacterizationCache::get(const AppProfile &profile)
{
    Entry *entry;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::unique_ptr<Entry> &slot = cache_[profile.name];
        if (!slot)
            slot = std::make_unique<Entry>();
        entry = slot.get();
    }
    // Characterize outside the map lock so distinct apps proceed in
    // parallel; call_once makes concurrent requests for the *same*
    // app wait for one characterization instead of duplicating it.
    std::call_once(entry->once, [this, entry, &profile] {
        entry->chr = characterize(profile);
    });
    return entry->chr;
}

AppCharacterization
CharacterizationCache::characterize(const AppProfile &profile)
{
    static TimerStat &timer =
        StatRegistry::global().timer("profile.characterize.app");
    ScopedTimer scope(timer);
    AppCharacterization app;
    app.name = profile.name;
    app.isFp = profile.isFp;

    SyntheticTrace probe(profile, seed_);
    const std::size_t numPhases = probe.numPhases();
    const std::vector<PhaseSpec> &script =
        profile.phases.empty() ? std::vector<PhaseSpec>{PhaseSpec{}}
                               : profile.phases;

    // Characterization dominates a cold start (two Core::run probes
    // per phase), so report it phase by phase — otherwise the status
    // file shows nothing moving until the cache is warm.  Ticks are
    // observational only; the characterization itself never reads
    // them back.
    static ProgressTracker &progress =
        ProgressRegistry::global().tracker("characterize.phases");
    progress.addTotal(numPhases);

    for (std::size_t p = 0; p < numPhases; ++p) {
        PhaseData data;
        data.weight = script[p].weight;
        data.chr.isFp = profile.isFp;

        CoreStats fullStats;
        static constexpr double kQueueFracs[] = {1.0, 0.75};
        for (std::size_t qi = 0; qi < 2; ++qi) {
            const bool fullQueues = qi == 0;
            CoreConfig cfg;
            cfg.queueCapacityFraction = kQueueFracs[qi];

            SyntheticTrace trace(profile, seed_ ^ (p * 7919));
            trace.pinPhase(p);
            Core core(cfg, seed_ ^ 0xC0DE ^ p);
            // Warm caches and predictors, then measure.
            core.run(trace, simInsts_);
            const CoreStats stats = core.run(trace, simInsts_);

            const PerfInputs in = PerfInputs::fromStats(
                stats, refFreqHz_, recovery_.penaltyCycles);
            if (fullQueues) {
                data.chr.perfFull = in;
                fullStats = stats;
            } else {
                data.chr.perfSmall = in;
            }
        }

        // Activity comes from the full-queue configuration.
        for (std::size_t i = 0; i < kNumSubsystems; ++i) {
            const auto id = static_cast<SubsystemId>(i);
            data.chr.act.alpha[i] = fullStats.alpha(id);
            data.chr.act.rho[i] = fullStats.rho(id);
        }
        app.phases.push_back(data);
        progress.tick();
    }
    return app;
}

} // namespace eval
