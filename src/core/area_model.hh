/**
 * @file
 * Area-overhead accounting of the EVAL system (Figure 7(d)): the
 * checker, FU replicas, phase detector, and sensors add 10.6% of the
 * processor area.
 */

#pragma once

#include <string>
#include <vector>

namespace eval {

/** One contributor to the area overhead. */
struct AreaItem
{
    std::string source;
    double areaPercent;   ///< % of processor area
};

/** Inputs to the accounting. */
struct AreaModelConfig
{
    /** Low-slope replicas add ~30% of the replicated unit's area
     *  on top of a full copy (Augsburger & Nikolic). */
    double lowSlopeAreaFactor = 1.30;
    double intAluAreaPercent = 0.55;    ///< Figure 7(a), die photo
    double fpAddMulAreaPercent = 1.90;  ///< Figure 7(a), die photo
    double checkerAreaPercent = 7.0;    ///< Diva checker + L0s + queue
    double phaseDetectorAreaPercent = 0.3;  ///< CACTI estimate
    double sensorsAreaPercent = 0.1;
    bool includeAbb = false;            ///< ABB adds ~2% when used
    double abbAreaPercent = 2.0;
};

/** Compute the itemized area overhead (last row is the total). */
std::vector<AreaItem> areaOverhead(const AreaModelConfig &cfg);

/** Total overhead percentage. */
double totalAreaOverheadPercent(const AreaModelConfig &cfg);

} // namespace eval

