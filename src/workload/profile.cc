#include "workload/profile.hh"

#include "util/logging.hh"

namespace eval {

namespace {

using Mix = std::array<double, kNumOpClasses>;

/** Build a mix from shares (IntAlu, IntMul, FpAdd, FpMul, FpDiv, Load,
 *  Store, Branch); normalized later by the generator. */
constexpr Mix
mix(double ialu, double imul, double fadd, double fmul, double fdiv,
    double load, double store, double branch)
{
    return {ialu, imul, fadd, fmul, fdiv, load, store, branch};
}

LocalityProfile
locality(double hot, double warm, double cold)
{
    LocalityProfile l;
    l.hotFraction = hot;
    l.warmFraction = warm;
    l.coldFraction = cold;
    return l;
}

AppProfile
makeInt(const std::string &name, Mix m, double ilp,
        std::size_t staticBranches, double biased, LocalityProfile loc,
        std::vector<PhaseSpec> phases)
{
    AppProfile p;
    p.name = name;
    p.isFp = false;
    p.mix = m;
    p.depDistanceMean = ilp;
    p.staticBranches = staticBranches;
    p.biasedBranchFraction = biased;
    p.locality = loc;
    p.phases = std::move(phases);
    return p;
}

AppProfile
makeFp(const std::string &name, Mix m, double ilp,
       std::size_t staticBranches, double biased, LocalityProfile loc,
       std::vector<PhaseSpec> phases)
{
    AppProfile p = makeInt(name, m, ilp, staticBranches, biased, loc,
                           std::move(phases));
    p.isFp = true;
    return p;
}

/** Common phase scripts. */
std::vector<PhaseSpec>
uniformPhases()
{
    return {};
}

std::vector<PhaseSpec>
twoPhases(double memSwing, double ilpSwing)
{
    return {
        {0.55, 1.0, 1.0, 1.0, 1.0},
        {0.45, memSwing, 1.0, ilpSwing, memSwing},
    };
}

std::vector<PhaseSpec>
threePhases()
{
    return {
        {0.40, 1.0, 1.0, 1.0, 1.0},
        {0.35, 1.5, 0.8, 0.8, 2.0},
        {0.25, 0.7, 1.2, 1.3, 0.5},
    };
}

std::vector<AppProfile>
buildSuite()
{
    std::vector<AppProfile> suite;

    // ----- SPECint 2000 -----
    suite.push_back(makeInt("gzip",
        mix(0.42, 0.01, 0, 0, 0, 0.25, 0.12, 0.20), 4.5, 300, 0.90,
        locality(0.850, 0.148, 0.002), twoPhases(1.3, 0.9)));
    suite.push_back(makeInt("vpr",
        mix(0.38, 0.02, 0.04, 0.02, 0, 0.28, 0.10, 0.16), 4.0, 800, 0.82,
        locality(0.720, 0.277, 0.003), twoPhases(1.2, 1.1)));
    suite.push_back(makeInt("gcc",
        mix(0.40, 0.01, 0, 0, 0, 0.26, 0.14, 0.19), 3.6, 4000, 0.78,
        locality(0.700, 0.296, 0.004), threePhases()));
    suite.push_back(makeInt("mcf",
        mix(0.35, 0.01, 0, 0, 0, 0.33, 0.08, 0.23), 3.0, 400, 0.80,
        locality(0.530, 0.350, 0.120), twoPhases(1.4, 0.9)));
    suite.push_back(makeInt("crafty",
        mix(0.48, 0.02, 0, 0, 0, 0.24, 0.09, 0.17), 5.5, 1500, 0.85,
        locality(0.880, 0.119, 0.001), uniformPhases()));
    suite.push_back(makeInt("parser",
        mix(0.40, 0.01, 0, 0, 0, 0.27, 0.12, 0.20), 3.8, 1200, 0.80,
        locality(0.750, 0.246, 0.004), twoPhases(1.25, 1.0)));
    suite.push_back(makeInt("eon",
        mix(0.36, 0.02, 0.08, 0.06, 0.01, 0.25, 0.11, 0.11), 5.0, 900,
        0.88, locality(0.860, 0.1395, 0.0005), uniformPhases()));
    suite.push_back(makeInt("perlbmk",
        mix(0.41, 0.01, 0, 0, 0, 0.26, 0.13, 0.19), 4.2, 2500, 0.83,
        locality(0.760, 0.237, 0.003), threePhases()));
    suite.push_back(makeInt("gap",
        mix(0.44, 0.03, 0, 0, 0, 0.25, 0.11, 0.17), 4.8, 700, 0.86,
        locality(0.720, 0.276, 0.004), twoPhases(1.3, 1.1)));
    suite.push_back(makeInt("vortex",
        mix(0.38, 0.01, 0, 0, 0, 0.28, 0.15, 0.18), 4.4, 2000, 0.84,
        locality(0.700, 0.296, 0.004), threePhases()));
    suite.push_back(makeInt("bzip2",
        mix(0.45, 0.01, 0, 0, 0, 0.24, 0.12, 0.18), 4.6, 350, 0.88,
        locality(0.780, 0.215, 0.005), twoPhases(1.35, 0.95)));
    suite.push_back(makeInt("twolf",
        mix(0.40, 0.03, 0.02, 0.01, 0, 0.27, 0.10, 0.17), 3.9, 900, 0.81,
        locality(0.730, 0.267, 0.003), uniformPhases()));

    // ----- SPECfp 2000 -----
    suite.push_back(makeFp("wupwise",
        mix(0.18, 0.01, 0.22, 0.20, 0.01, 0.24, 0.10, 0.04), 7.5, 200,
        0.96, locality(0.720, 0.274, 0.006), uniformPhases()));
    suite.push_back(makeFp("swim",
        mix(0.12, 0.01, 0.26, 0.22, 0.01, 0.24, 0.11, 0.03), 8.5, 120,
        0.97, locality(0.600, 0.366, 0.034), twoPhases(1.2, 1.0)));
    suite.push_back(makeFp("mgrid",
        mix(0.14, 0.01, 0.25, 0.21, 0.01, 0.26, 0.09, 0.03), 8.0, 150,
        0.97, locality(0.620, 0.368, 0.012), uniformPhases()));
    suite.push_back(makeFp("applu",
        mix(0.15, 0.01, 0.24, 0.20, 0.02, 0.25, 0.10, 0.03), 7.8, 250,
        0.96, locality(0.600, 0.378, 0.022), twoPhases(1.25, 1.05)));
    suite.push_back(makeFp("mesa",
        mix(0.28, 0.02, 0.16, 0.12, 0.01, 0.24, 0.10, 0.07), 5.8, 600,
        0.90, locality(0.820, 0.1785, 0.0015), uniformPhases()));
    suite.push_back(makeFp("galgel",
        mix(0.14, 0.01, 0.27, 0.22, 0.01, 0.24, 0.08, 0.03), 8.2, 180,
        0.96, locality(0.650, 0.342, 0.008), threePhases()));
    suite.push_back(makeFp("art",
        mix(0.20, 0.01, 0.22, 0.18, 0.00, 0.28, 0.06, 0.05), 6.5, 90,
        0.95, locality(0.480, 0.430, 0.090), twoPhases(1.15, 1.0)));
    suite.push_back(makeFp("equake",
        mix(0.18, 0.01, 0.23, 0.19, 0.02, 0.26, 0.07, 0.04), 6.8, 220,
        0.94, locality(0.550, 0.418, 0.032), twoPhases(1.3, 0.9)));
    suite.push_back(makeFp("ammp",
        mix(0.19, 0.01, 0.22, 0.18, 0.03, 0.26, 0.07, 0.04), 6.2, 320,
        0.93, locality(0.620, 0.366, 0.014), uniformPhases()));
    suite.push_back(makeFp("lucas",
        mix(0.13, 0.02, 0.26, 0.23, 0.01, 0.24, 0.08, 0.03), 8.8, 100,
        0.97, locality(0.600, 0.378, 0.022), uniformPhases()));
    suite.push_back(makeFp("sixtrack",
        mix(0.20, 0.02, 0.23, 0.20, 0.02, 0.22, 0.08, 0.03), 7.0, 400,
        0.95, locality(0.840, 0.159, 0.001), uniformPhases()));
    suite.push_back(makeFp("apsi",
        mix(0.17, 0.01, 0.24, 0.20, 0.02, 0.24, 0.09, 0.03), 7.4, 350,
        0.95, locality(0.660, 0.329, 0.011), threePhases()));

    return suite;
}

} // namespace

const std::vector<AppProfile> &
specSuite()
{
    static const std::vector<AppProfile> suite = buildSuite();
    return suite;
}

const AppProfile &
appByName(const std::string &name)
{
    for (const auto &p : specSuite()) {
        if (p.name == name)
            return p;
    }
    EVAL_FATAL("unknown application: ", name);
}

std::vector<std::string>
specIntNames()
{
    std::vector<std::string> names;
    for (const auto &p : specSuite()) {
        if (!p.isFp)
            names.push_back(p.name);
    }
    return names;
}

std::vector<std::string>
specFpNames()
{
    std::vector<std::string> names;
    for (const auto &p : specSuite()) {
        if (p.isFp)
            names.push_back(p.name);
    }
    return names;
}

} // namespace eval
