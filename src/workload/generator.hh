/**
 * @file
 * Synthetic trace generator.
 *
 * Each behaviour phase of an application is modeled as a loop of
 * static micro-ops ("the phase's code") whose per-op properties are
 * fixed at phase-construction time: opcode class, branch bias, memory
 * region and access pattern, and dependency-distance distribution.
 * Walking the loop repeatedly produces a dynamic stream that is
 * statistically stationary within a phase — so basic-block vectors are
 * stable, branch predictors can learn, and caches see realistic reuse
 * — while phase transitions change all of it at once.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "arch/isa.hh"
#include "util/random.hh"
#include "workload/profile.hh"

namespace eval {

/** Generation knobs. */
struct TraceConfig
{
    /** Static ops in one phase's loop body. */
    std::size_t staticOpsPerPhase = 2048;
    /** Dynamic ops executed before moving to the next script phase
     *  (scaled by the phase weight). */
    std::size_t opsPerScriptCycle = 400000;
    /** Mean basic-block length (ops between branches). */
    double meanBlockLength = 6.0;
};

/** Pull-based synthetic trace for one application. */
class SyntheticTrace : public TraceSource
{
  public:
    SyntheticTrace(const AppProfile &profile, std::uint64_t seed,
                   TraceConfig cfg = TraceConfig());

    /** Infinite stream; always returns true. */
    bool next(MicroOp &op) override;

    /** Ground-truth phase index (for phase-detector validation). */
    std::size_t currentPhase() const { return phaseIndex_; }

    std::size_t numPhases() const { return phases_.size(); }

    /** Force a specific phase (for per-phase characterization runs). */
    void pinPhase(std::size_t phase);

  private:
    struct StaticOp
    {
        OpClass cls;
        std::uint64_t pc;
        double takenBias;        ///< branches: probability taken
        int region;              ///< 0 hot, 1 warm, 2 cold
        bool streaming;          ///< stride vs random addressing
        std::uint64_t addrBase;
        std::uint64_t addrSpan;  ///< bytes addressable by this op
        std::uint32_t stride;
        double depMean;          ///< mean dependency distance
        /** log(1 - d) of the geometric dependency draw, hoisted from
         *  the per-op path: it depends only on depMean, and the
         *  exp/log pair per dynamic op dominated next(). */
        double logOneMinusD;
    };

    struct Phase
    {
        std::vector<StaticOp> ops;
        std::size_t dynamicLength;   ///< ops before switching
    };

    void buildPhases(const AppProfile &profile);
    Phase buildPhase(const AppProfile &profile, const PhaseSpec &spec,
                     std::size_t index);

    TraceConfig cfg_;
    Rng rng_;
    std::vector<Phase> phases_;
    std::size_t phaseIndex_ = 0;
    std::size_t posInPhase_ = 0;     ///< static-op cursor
    std::size_t opsInPhase_ = 0;     ///< dynamic ops since phase entry
    bool pinned_ = false;
    std::vector<std::uint64_t> opCounters_;  ///< per-static-op visit count
};

} // namespace eval

