#include "workload/trace_file.hh"

#include <cstring>
#include <fstream>

#include "util/logging.hh"

namespace eval {

namespace {

constexpr char kMagic[8] = {'E', 'V', 'A', 'L', 'T', 'R', 'C', '1'};

/** On-disk record: fixed layout independent of struct padding. */
struct DiskOp
{
    std::uint64_t pc;
    std::uint64_t addr;
    std::uint16_t src1Dist;
    std::uint16_t src2Dist;
    std::uint8_t cls;
    std::uint8_t taken;
    std::uint8_t pad[2];
};
static_assert(sizeof(DiskOp) == 24, "stable record size");

} // namespace

std::uint64_t
recordTrace(TraceSource &source, std::uint64_t count,
            const std::string &path)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        EVAL_FATAL("cannot open trace file for writing: ", path);

    out.write(kMagic, sizeof(kMagic));
    std::uint64_t written = 0;
    out.write(reinterpret_cast<const char *>(&written), sizeof(written));

    MicroOp op;
    for (std::uint64_t i = 0; i < count; ++i) {
        if (!source.next(op))
            break;
        DiskOp rec{};
        rec.pc = op.pc;
        rec.addr = op.addr;
        rec.src1Dist = op.src1Dist;
        rec.src2Dist = op.src2Dist;
        rec.cls = static_cast<std::uint8_t>(op.cls);
        rec.taken = op.taken ? 1 : 0;
        out.write(reinterpret_cast<const char *>(&rec), sizeof(rec));
        ++written;
    }

    // Back-patch the count.
    out.seekp(sizeof(kMagic));
    out.write(reinterpret_cast<const char *>(&written), sizeof(written));
    EVAL_ASSERT(out.good(), "trace write failed");
    return written;
}

FileTrace::FileTrace(const std::string &path, bool loop)
    : loop_(loop)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        EVAL_FATAL("cannot open trace file: ", path);

    char magic[8];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        EVAL_FATAL("not an EVAL trace file: ", path);

    std::uint64_t count = 0;
    in.read(reinterpret_cast<char *>(&count), sizeof(count));
    EVAL_ASSERT(in.good() && count < (1ULL << 32),
                "corrupt trace header");

    ops_.reserve(count);
    DiskOp rec;
    for (std::uint64_t i = 0; i < count; ++i) {
        in.read(reinterpret_cast<char *>(&rec), sizeof(rec));
        if (!in)
            EVAL_FATAL("truncated trace file: ", path);
        MicroOp op;
        EVAL_ASSERT(rec.cls < kNumOpClasses, "corrupt op class");
        op.cls = static_cast<OpClass>(rec.cls);
        op.pc = rec.pc;
        op.addr = rec.addr;
        op.taken = rec.taken != 0;
        op.src1Dist = rec.src1Dist;
        op.src2Dist = rec.src2Dist;
        ops_.push_back(op);
    }
}

bool
FileTrace::next(MicroOp &op)
{
    if (cursor_ >= ops_.size()) {
        if (!loop_ || ops_.empty())
            return false;
        cursor_ = 0;
    }
    op = ops_[cursor_++];
    return true;
}

} // namespace eval
