#include "workload/generator.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/math_utils.hh"

namespace eval {

namespace {

constexpr std::uint64_t kHotBase = 0x10000000ULL;
constexpr std::uint64_t kWarmBase = 0x20000000ULL;
constexpr std::uint64_t kColdBase = 0x40000000ULL;
constexpr std::uint64_t kCodeBase = 0x00400000ULL;
constexpr std::uint64_t kPhaseCodeStride = 0x00100000ULL;

} // namespace

SyntheticTrace::SyntheticTrace(const AppProfile &profile, std::uint64_t seed,
                               TraceConfig cfg)
    : cfg_(cfg), rng_(seed)
{
    buildPhases(profile);
    opCounters_.assign(cfg_.staticOpsPerPhase * phases_.size(), 0);
}

void
SyntheticTrace::buildPhases(const AppProfile &profile)
{
    std::vector<PhaseSpec> script = profile.phases;
    if (script.empty())
        script.push_back(PhaseSpec{});

    double weightSum = 0.0;
    for (const auto &s : script)
        weightSum += s.weight;
    EVAL_ASSERT(weightSum > 0.0, "phase weights must be positive");

    for (std::size_t i = 0; i < script.size(); ++i) {
        Phase ph = buildPhase(profile, script[i], i);
        ph.dynamicLength = static_cast<std::size_t>(
            cfg_.opsPerScriptCycle * script[i].weight / weightSum);
        ph.dynamicLength = std::max<std::size_t>(ph.dynamicLength, 1000);
        phases_.push_back(std::move(ph));
    }
}

SyntheticTrace::Phase
SyntheticTrace::buildPhase(const AppProfile &profile, const PhaseSpec &spec,
                           std::size_t index)
{
    Rng rng = rng_.fork(0xBEEF + index);

    // Phase-adjusted opcode mix.
    std::array<double, kNumOpClasses> mix = profile.mix;
    auto scale = [&mix](OpClass c, double factor) {
        mix[static_cast<std::size_t>(c)] *= factor;
    };
    scale(OpClass::Load, spec.memIntensity);
    scale(OpClass::Store, spec.memIntensity);
    scale(OpClass::FpAdd, spec.fpIntensity);
    scale(OpClass::FpMul, spec.fpIntensity);
    scale(OpClass::FpDiv, spec.fpIntensity);

    double mixSum = 0.0;
    for (double m : mix)
        mixSum += m;
    EVAL_ASSERT(mixSum > 0.0, "profile mix must be positive");

    // Phase-adjusted locality.
    LocalityProfile loc = profile.locality;
    loc.coldFraction = clamp(loc.coldFraction * spec.coldScale, 0.0, 0.9);
    const double locSum =
        loc.hotFraction + loc.warmFraction + loc.coldFraction;

    // Branch placement: on average one branch per meanBlockLength ops.
    // The branch share of the mix is respected approximately by
    // sampling from the mix; additionally, block boundaries get branch
    // ops so the detector sees block structure.
    Phase phase;
    phase.ops.reserve(cfg_.staticOpsPerPhase);

    const std::uint64_t codeBase = kCodeBase + index * kPhaseCodeStride;
    double nextBranchIn = rng.uniform(1.0, 2.0 * cfg_.meanBlockLength);

    for (std::size_t i = 0; i < cfg_.staticOpsPerPhase; ++i) {
        StaticOp op{};
        op.pc = codeBase + i * 4;

        nextBranchIn -= 1.0;
        if (nextBranchIn <= 0.0) {
            op.cls = OpClass::Branch;
            nextBranchIn = rng.uniform(1.0, 2.0 * cfg_.meanBlockLength);
        } else {
            // Sample from the non-branch portion of the mix.
            double r = rng.uniform() *
                       (mixSum -
                        mix[static_cast<std::size_t>(OpClass::Branch)]);
            op.cls = OpClass::IntAlu;
            for (std::size_t c = 0; c < kNumOpClasses; ++c) {
                if (c == static_cast<std::size_t>(OpClass::Branch))
                    continue;
                if (r < mix[c]) {
                    op.cls = static_cast<OpClass>(c);
                    break;
                }
                r -= mix[c];
            }
        }

        if (op.cls == OpClass::Branch) {
            const bool biased =
                rng.bernoulli(profile.biasedBranchFraction);
            op.takenBias = biased ? (rng.bernoulli(0.5) ? 0.97 : 0.03)
                                  : rng.uniform(0.25, 0.75);
        }

        if (isMemOp(op.cls)) {
            const double r = rng.uniform() * locSum;
            if (r < loc.hotFraction) {
                op.region = 0;
                op.addrBase = kHotBase;
                op.addrSpan = loc.hotBytes;
            } else if (r < loc.hotFraction + loc.warmFraction) {
                op.region = 1;
                op.addrBase = kWarmBase;
                op.addrSpan = loc.warmBytes;
            } else {
                op.region = 2;
                op.addrBase = kColdBase;
                op.addrSpan = loc.coldBytes;
            }
            // Cold data is usually streamed; hot data reused randomly.
            op.streaming = op.region == 2 ? rng.bernoulli(0.8)
                                          : rng.bernoulli(0.3);
            op.stride = op.streaming
                            ? (rng.bernoulli(0.7) ? 64 : 8)
                            : 0;
            // Give each op a private sub-range so streams don't alias.
            const std::uint64_t span = std::max<std::uint64_t>(
                op.addrSpan / 16, 256);
            op.addrBase += (rng.uniformInt(16)) * span;
            op.addrSpan = span;
        }

        op.depMean =
            std::max(1.0, profile.depDistanceMean * spec.ilpScale);
        {
            const double d = 1.0 - std::exp(-1.0 / op.depMean);
            op.logOneMinusD = std::log(1.0 - d);
        }
        phase.ops.push_back(op);
    }
    phase.dynamicLength = 0;
    return phase;
}

void
SyntheticTrace::pinPhase(std::size_t phase)
{
    EVAL_ASSERT(phase < phases_.size(), "phase index out of range");
    phaseIndex_ = phase;
    posInPhase_ = 0;
    opsInPhase_ = 0;
    pinned_ = true;
}

bool
SyntheticTrace::next(MicroOp &out)
{
    Phase &ph = phases_[phaseIndex_];
    const StaticOp &sop = ph.ops[posInPhase_];

    out = MicroOp{};
    out.cls = sop.cls;
    out.pc = sop.pc;

    if (sop.cls == OpClass::Branch) {
        out.taken = rng_.bernoulli(sop.takenBias);
    } else if (isMemOp(sop.cls)) {
        const std::size_t counterIdx =
            phaseIndex_ * cfg_.staticOpsPerPhase + posInPhase_;
        std::uint64_t &counter = opCounters_[counterIdx];
        if (sop.streaming) {
            out.addr = sop.addrBase +
                       (counter * sop.stride) % sop.addrSpan;
            ++counter;
        } else {
            out.addr = sop.addrBase + (rng_.uniformInt(sop.addrSpan) & ~7ULL);
        }
    }

    // Dependency distances: geometric-ish around the phase ILP level.
    auto drawDist = [this, &sop]() -> std::uint16_t {
        const double u = rng_.uniform();
        if (u < 0.15)
            return 0;   // immediate operand / no register source
        const double g = std::floor(std::log(1.0 - rng_.uniform()) /
                                    sop.logOneMinusD);
        return static_cast<std::uint16_t>(clamp(1.0 + g, 1.0, 512.0));
    };
    out.src1Dist = drawDist();
    out.src2Dist = (out.cls == OpClass::Branch || isMemOp(out.cls))
                       ? (rng_.bernoulli(0.5) ? drawDist() : 0)
                       : drawDist();

    // Advance cursors.
    ++posInPhase_;
    if (posInPhase_ >= ph.ops.size())
        posInPhase_ = 0;
    ++opsInPhase_;
    if (!pinned_ && opsInPhase_ >= ph.dynamicLength) {
        opsInPhase_ = 0;
        posInPhase_ = 0;
        phaseIndex_ = (phaseIndex_ + 1) % phases_.size();
    }
    return true;
}

} // namespace eval
