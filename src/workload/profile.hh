/**
 * @file
 * Application behaviour profiles for the synthetic SPEC CPU2000-like
 * workload suite.
 *
 * We do not have SPEC binaries or an ISA front-end, so each benchmark
 * is described by the statistics that drive the core model: opcode
 * mix, branch predictability, memory locality (expressed as region
 * residency, which the real cache hierarchy turns into miss rates),
 * instruction-level parallelism (dependency distances), and a phase
 * script that modulates these over the run (exercising the phase
 * detector and dynamic adaptation).
 */

#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "arch/isa.hh"

namespace eval {

/** Memory-locality description: probabilities of touching each
 *  working-set region; the regions' sizes determine where accesses
 *  hit in a real cache hierarchy. */
struct LocalityProfile
{
    double hotFraction = 0.75;    ///< fits in L1
    double warmFraction = 0.20;   ///< fits in L2
    double coldFraction = 0.05;   ///< streams through memory
    std::size_t hotBytes = 32 * 1024;
    std::size_t warmBytes = 128 * 1024;
    std::size_t coldBytes = 64 * 1024 * 1024;
};

/** One behaviour phase: multipliers over the base profile. */
struct PhaseSpec
{
    double weight = 1.0;          ///< share of the run
    double memIntensity = 1.0;    ///< scales load/store mix share
    double fpIntensity = 1.0;     ///< scales FP mix share
    double ilpScale = 1.0;        ///< scales dependency distances
    double coldScale = 1.0;       ///< scales cold-region residency
};

/** Full description of one benchmark. */
struct AppProfile
{
    std::string name;
    bool isFp = false;            ///< SPECfp vs SPECint

    /** Base opcode mix (normalized at generation time). */
    std::array<double, kNumOpClasses> mix{};

    /** Mean backward dependency distance (higher = more ILP). */
    double depDistanceMean = 5.0;

    /** Number of distinct static branches (aliasing pressure). */
    std::size_t staticBranches = 512;
    /** Fraction of branches that are strongly biased (predictable). */
    double biasedBranchFraction = 0.85;

    LocalityProfile locality;

    /** Phase script; empty = single uniform phase. */
    std::vector<PhaseSpec> phases;
};

/** The 24-app synthetic SPEC CPU2000 suite. */
const std::vector<AppProfile> &specSuite();

/** Look up a profile by name (fatal on unknown). */
const AppProfile &appByName(const std::string &name);

/** Names of integer / FP subsets. */
std::vector<std::string> specIntNames();
std::vector<std::string> specFpNames();

} // namespace eval

