/**
 * @file
 * Trace persistence: record any TraceSource (e.g. the synthetic
 * generator) into a compact binary file, and replay such files through
 * the core model.  This is the bring-your-own-trace hook: anything
 * that can be converted to the MicroOp format — including traces
 * captured from a real machine — can drive the simulator.
 *
 * Format: 16-byte header ("EVALTRC1" + little-endian op count),
 * followed by fixed-size little-endian MicroOp records.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/isa.hh"

namespace eval {

/**
 * Record @p count micro-ops from @p source into @p path.
 * @return the number of ops actually written (less than @p count only
 *         if the source ends early).
 */
std::uint64_t recordTrace(TraceSource &source, std::uint64_t count,
                          const std::string &path);

/**
 * Replays a recorded trace file.  The trace loops when @p loop is set
 * (so long simulations can run from short captures); otherwise next()
 * returns false at end of file.
 */
class FileTrace : public TraceSource
{
  public:
    explicit FileTrace(const std::string &path, bool loop = false);

    bool next(MicroOp &op) override;

    std::uint64_t size() const { return ops_.size(); }
    void rewind() { cursor_ = 0; }

  private:
    std::vector<MicroOp> ops_;
    std::uint64_t cursor_ = 0;
    bool loop_;
};

} // namespace eval

