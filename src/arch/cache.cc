#include "arch/cache.hh"

#include "util/logging.hh"

namespace eval {

Cache::Cache(const CacheConfig &cfg)
    : cfg_(cfg)
{
    EVAL_ASSERT(cfg.lineBytes > 0 && cfg.ways > 0 && cfg.sizeBytes > 0,
                "cache geometry must be positive");
    numSets_ = cfg.sizeBytes / (cfg.lineBytes * cfg.ways);
    EVAL_ASSERT(numSets_ > 0, "cache must have at least one set");
    EVAL_ASSERT((numSets_ & (numSets_ - 1)) == 0,
                "number of sets must be a power of two");
    lines_.resize(numSets_ * cfg.ways);
}

std::size_t
Cache::setOf(std::uint64_t addr) const
{
    return static_cast<std::size_t>((addr / cfg_.lineBytes) &
                                    (numSets_ - 1));
}

std::uint64_t
Cache::tagOf(std::uint64_t addr) const
{
    return addr / cfg_.lineBytes / numSets_;
}

bool
Cache::access(std::uint64_t addr)
{
    const std::size_t set = setOf(addr);
    const std::uint64_t tag = tagOf(addr);
    Line *base = &lines_[set * cfg_.ways];
    ++clock_;

    Line *victim = base;
    for (std::size_t w = 0; w < cfg_.ways; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lru = clock_;
            ++hits_;
            return true;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lru < victim->lru) {
            victim = &line;
        }
    }

    ++misses_;
    victim->valid = true;
    victim->tag = tag;
    victim->lru = clock_;
    return false;
}

bool
Cache::contains(std::uint64_t addr) const
{
    const std::size_t set = setOf(addr);
    const std::uint64_t tag = tagOf(addr);
    const Line *base = &lines_[set * cfg_.ways];
    for (std::size_t w = 0; w < cfg_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

CacheHierarchy::CacheHierarchy(const CacheConfig &l1, Cache &sharedL2,
                               const MemLatencies &lat)
    : l1_(l1), l2_(sharedL2), lat_(lat)
{
}

MemAccessResult
CacheHierarchy::access(std::uint64_t addr)
{
    ++accessCount_;
    if (l1_.access(addr))
        return {MemLevel::L1, lat_.l1};
    if (l2_.access(addr))
        return {MemLevel::L2, lat_.l2};
    ++l2MissCount_;
    return {MemLevel::Memory, lat_.memory};
}

} // namespace eval
