/**
 * @file
 * Gshare branch predictor with 2-bit saturating counters.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace eval {

/** Gshare: PC xor global-history indexed pattern table. */
class GsharePredictor
{
  public:
    /**
     * @param tableBits  log2 of the pattern-table size
     * @param historyBits global-history length (<= tableBits)
     */
    explicit GsharePredictor(unsigned tableBits = 12,
                             unsigned historyBits = 12);

    /** Predict the direction of the branch at @p pc. */
    bool predict(std::uint64_t pc) const;

    /** Update with the actual outcome (also shifts the history). */
    void update(std::uint64_t pc, bool taken);

    std::uint64_t predictions() const { return predictions_; }
    std::uint64_t mispredictions() const { return mispredictions_; }

    /** Record one prediction/outcome pair and return mispredicted?. */
    bool predictAndUpdate(std::uint64_t pc, bool taken);

  private:
    std::size_t index(std::uint64_t pc) const;

    unsigned historyBits_;
    std::uint64_t history_ = 0;
    std::vector<std::uint8_t> table_;   ///< 2-bit counters
    std::uint64_t predictions_ = 0;
    std::uint64_t mispredictions_ = 0;
};

} // namespace eval

