/**
 * @file
 * Trace-driven out-of-order core model (the SESC substitute).
 *
 * Models a 3-issue core in the style of the paper's AMD Athlon 64
 * baseline: fetch/dispatch, separate integer and FP issue queues
 * (resizable to 3/4 capacity, Sec 3.3.2), a unified ROB, an LSQ, a
 * gshare branch predictor, two cache levels with the Figure 7(a)
 * latencies, per-class functional units, and a Diva-style checker
 * hook that injects timing-error recoveries at retirement.
 *
 * The simulator produces exactly what Eq 5 consumes: CPIcomp, the L2
 * miss rate and observed non-overlapped miss penalty, and the
 * per-subsystem activity factors (accesses per cycle and per
 * instruction) that drive the power/thermal models and the error
 * model's rho_i weights.
 */

#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "arch/branch_predictor.hh"
#include "arch/cache.hh"
#include "arch/isa.hh"
#include "util/random.hh"
#include "variation/floorplan.hh"

namespace eval {

/** Static core configuration. */
struct CoreConfig
{
    unsigned fetchWidth = 3;
    unsigned issueWidth = 3;
    unsigned retireWidth = 3;
    unsigned robSize = 96;
    unsigned lsqSize = 44;

    /** Full-sized issue queues (Figure 7(a)). */
    unsigned intQueueFull = 68;
    unsigned fpQueueFull = 32;
    /** 1.0 or 0.75 (the resizing technique of Sec 3.3.2). */
    double queueCapacityFraction = 1.0;

    /** Functional-unit counts (3 add/shift + 1 mult integer cluster;
     *  1 FP adder + 1 FP multiplier, Figure 7(a)). */
    unsigned intAluCount = 3;
    unsigned intMulCount = 1;
    unsigned fpAddCount = 1;
    unsigned fpMulCount = 1;

    /** Front-end depth: cycles to refill after a redirect. */
    unsigned frontendDepth = 10;

    /** Miss-status holding registers: outstanding-miss limit. */
    unsigned mshrs = 16;

    /** Next-line prefetch into the data hierarchy on an L1D miss. */
    bool prefetchNextLine = false;

    /**
     * FU replication (Sec 3.3.1) inserts one stage between register
     * read and execute, lengthening branch-resolution loops by one
     * cycle without hurting back-to-back ALU ops.
     */
    bool fuReplicated = false;

    CacheConfig l1i{64 * 1024, 64, 2};
    CacheConfig l1d{64 * 1024, 64, 2};
    CacheConfig l2{1024 * 1024, 64, 8};
    MemLatencies memLat{};

    unsigned intQueueCapacity() const;
    unsigned fpQueueCapacity() const;
};

/** Counters collected by a simulation run. */
struct CoreStats
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t branches = 0;
    std::uint64_t branchMispredicts = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t l2MissesIStream = 0;   ///< subset of l2Misses
    std::uint64_t l1dMisses = 0;
    std::uint64_t l1iMisses = 0;
    std::uint64_t memStallCycles = 0;       ///< retire blocked on memory
    std::uint64_t errorRecoveries = 0;      ///< checker-triggered flushes
    std::uint64_t recoveryStallCycles = 0;
    std::array<std::uint64_t, kNumSubsystems> accesses{};

    double cpi() const;
    double ipc() const;
    /** Computation CPI: total minus memory and recovery stalls. */
    double cpiComp() const;
    /** L2 misses per instruction (Eq 5's mr). */
    double missesPerInstruction() const;
    /** Observed non-overlapped penalty per miss, cycles (Eq 5's mp). */
    double missPenaltyCycles() const;
    /** Accesses per cycle for a subsystem (alpha_f). */
    double alpha(SubsystemId id) const;
    /** Accesses per instruction for a subsystem (rho_i). */
    double rho(SubsystemId id) const;
};

/** The core simulator. */
class Core
{
  public:
    Core(const CoreConfig &cfg, std::uint64_t seed);

    /**
     * Enable checker-recovery injection: each retiring instruction
     * flushes the pipeline with probability @p perInstProbability and
     * costs ~@p penaltyCycles (Diva recovery, Sec 3.1).
     */
    void setErrorInjection(double perInstProbability,
                           unsigned penaltyCycles);

    /** Run until @p numInstructions retire; returns the counters. */
    CoreStats run(TraceSource &trace, std::uint64_t numInstructions);

  private:
    struct InFlight
    {
        MicroOp op;
        std::uint64_t seq = 0;
        std::uint64_t readyCycle = 0;    ///< operands available
        std::uint64_t completeCycle = 0; ///< result available
        /** Intrusive wait chain: seqs of unissued consumers parked on
         *  this entry, woken when it issues (kNoWaiter = none). */
        std::uint64_t firstWaiter = kNoWaiter;
        std::uint64_t nextWaiter = kNoWaiter;
        bool issued = false;
        bool isFpSide = false;
        bool missInFlight = false;       ///< occupies an MSHR
    };

    /** Sentinel seq for the InFlight waiter chains. */
    static constexpr std::uint64_t kNoWaiter = ~0ULL;

    void dispatch(TraceSource &trace, std::uint64_t now);
    void issue(std::uint64_t now);
    unsigned retire(std::uint64_t now, unsigned maxRetire);
    /** Squash every in-flight op back to the fetch queue. */
    void squashAll(std::uint64_t resumeCycle);
    unsigned execLatency(const MicroOp &op, std::uint64_t now);
    void count(SubsystemId id, std::uint64_t n = 1);

    CoreConfig cfg_;
    Rng rng_;
    GsharePredictor bpred_;
    Cache l2_;
    CacheHierarchy icache_;
    CacheHierarchy dcache_;

    double errorProb_ = 0.0;
    unsigned errorPenalty_ = 14;

    // Transient machine state.
    std::deque<MicroOp> fetchQueue_;
    std::deque<InFlight> rob_;
    /** Completion cycles of issued loads occupying an MSHR.  Replaces
     *  the per-cycle ROB scan that used to recount them: entries are
     *  pushed when a missing load issues, lazily pruned once their
     *  cycle passes (time only moves forward within a run), and
     *  cleared on a squash — the count matches the old scan exactly.
     *  Bounded by cfg_.mshrs (the issue stage stops allocating at the
     *  limit). */
    std::vector<std::uint64_t> missComplete_;
    /**
     * Event-driven issue scheduling.  Instead of scanning the whole
     * ROB every cycle, issue() only visits `issueCand_`: the seqs
     * (ascending, i.e. program order) of unissued entries that could
     * plausibly issue this cycle.  An entry that fails its dependency
     * check leaves the candidate list and parks on one of two wake
     * lists:
     *   - `sleepers_` (a min-heap on wake cycle) when the blocking
     *     producer had issued — readiness is then purely a matter of
     *     reaching the producer's completion cycle;
     *   - the blocking producer's intrusive waiter chain when it had
     *     not issued — nothing can change for the consumer until that
     *     specific producer issues, at which point the chain is walked
     *     into `pendingWake_` for the next cycle's pass.
     * Woken seqs are merged back in seq order before the pass, so the
     * entries visited in any cycle are a superset of those that could
     * issue, in exactly the ROB-scan order: issue order, stats, and
     * cycle counts are unchanged.  A deferred wake is sound because a
     * parked entry's recheck would provably have hit `continue`.
     *
     * Candidates carry the op class so a structurally blocked entry
     * (functional unit exhausted, MSHRs full, issue width reached) is
     * skipped without touching the ROB at all.
     */
    struct IssueCand
    {
        std::uint64_t seq;
        OpClass cls;
    };
    struct Sleeper
    {
        std::uint64_t wakeCycle;
        std::uint64_t seq;
        OpClass cls;
    };
    std::vector<IssueCand> issueCand_;
    std::vector<Sleeper> sleepers_;
    std::vector<IssueCand> pendingWake_;
    std::vector<IssueCand> wakeScratch_;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t fetchResumeCycle_ = 0;
    std::uint64_t pendingBranchSeq_ = 0;
    bool fetchBlockedOnBranch_ = false;
    unsigned intQueueOcc_ = 0;
    unsigned fpQueueOcc_ = 0;
    unsigned lsqOcc_ = 0;
    std::uint64_t fpDivBusyUntil_ = 0;

    CoreStats stats_;
};

} // namespace eval

