#include "arch/isa.hh"

namespace eval {

const char *
opClassName(OpClass c)
{
    switch (c) {
      case OpClass::IntAlu: return "IntAlu";
      case OpClass::IntMul: return "IntMul";
      case OpClass::FpAdd:  return "FpAdd";
      case OpClass::FpMul:  return "FpMul";
      case OpClass::FpDiv:  return "FpDiv";
      case OpClass::Load:   return "Load";
      case OpClass::Store:  return "Store";
      case OpClass::Branch: return "Branch";
      default:              return "?";
    }
}

} // namespace eval
