/**
 * @file
 * The micro-op vocabulary shared by the workload generator and the
 * core model.  Traces are streams of MicroOps; dependencies are
 * expressed as backward distances in the dynamic instruction stream
 * (a standard trace-driven simplification).
 */

#pragma once

#include <array>
#include <cstdint>
#include <cstddef>

namespace eval {

/** Micro-op classes executed by the core. */
enum class OpClass : std::uint8_t {
    IntAlu, IntMul, FpAdd, FpMul, FpDiv, Load, Store, Branch,
    NumClasses
};

constexpr std::size_t kNumOpClasses =
    static_cast<std::size_t>(OpClass::NumClasses);

/** Printable op-class name. */
const char *opClassName(OpClass c);

/** True for loads and stores. */
constexpr bool
isMemOp(OpClass c)
{
    return c == OpClass::Load || c == OpClass::Store;
}

/** True for floating-point ops. */
constexpr bool
isFpOp(OpClass c)
{
    return c == OpClass::FpAdd || c == OpClass::FpMul ||
           c == OpClass::FpDiv;
}

/** One dynamic micro-op. */
struct MicroOp
{
    OpClass cls = OpClass::IntAlu;
    std::uint64_t pc = 0;       ///< static instruction address
    std::uint64_t addr = 0;     ///< effective address for mem ops
    bool taken = false;         ///< actual outcome for branches
    /** Backward dependency distances in dynamic ops; 0 = no operand. */
    std::uint16_t src1Dist = 0;
    std::uint16_t src2Dist = 0;
};

/** Pull-based instruction source fed to the core model. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Produce the next micro-op; returns false at end of trace. */
    virtual bool next(MicroOp &op) = 0;
};

} // namespace eval

