/**
 * @file
 * Error-detection/correction architectures for timing speculation
 * (Sec 3.1): the paper's preferred Diva-style retirement checker, the
 * Razor-style in-pipeline latch scheme, and the Paceline-style checker
 * core.  Each trades recovery penalty against power/area overhead —
 * EVAL works with any of them, which is part of the framework's claim.
 */

#pragma once

#include <string>
#include <vector>

namespace eval {

/** The timing-speculation architectures of Sec 3.1. */
enum class CheckerKind {
    Diva,       ///< retirement checker clocked safely (the paper's pick)
    Razor,      ///< shadow latches in every stage [8]
    Paceline    ///< leader/checker core pair [9]
};

const char *checkerKindName(CheckerKind kind);

/** Cost/behaviour model of one checker architecture. */
struct CheckerModel
{
    CheckerKind kind = CheckerKind::Diva;
    /**
     * Cycles lost per recovered error.  Diva: flush + restart from the
     * faulty instruction (= branch misprediction penalty).  Razor:
     * local stage replay, much cheaper.  Paceline: re-sync the
     * follower core, more expensive.
     */
    double recoveryPenaltyCycles = 14.0;
    /** Power at nominal frequency (scales with f). */
    double powerW = 1.0;
    /** Area as % of processor area (Figure 7(d) charges 7% for Diva
     *  including its L0 caches and retirement queue). */
    double areaPercent = 7.0;

    /** The standard parameterizations. */
    static CheckerModel diva();
    static CheckerModel razor();
    static CheckerModel paceline();

    static const std::vector<CheckerModel> &all();
};

} // namespace eval

