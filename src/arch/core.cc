#include "arch/core.hh"

#include <algorithm>
#include <cstring>

#include "stats/stat_registry.hh"
#include "util/logging.hh"

namespace eval {

unsigned
CoreConfig::intQueueCapacity() const
{
    return static_cast<unsigned>(intQueueFull * queueCapacityFraction);
}

unsigned
CoreConfig::fpQueueCapacity() const
{
    return static_cast<unsigned>(fpQueueFull * queueCapacityFraction);
}

double
CoreStats::cpi() const
{
    return instructions ? static_cast<double>(cycles) /
                              static_cast<double>(instructions)
                        : 0.0;
}

double
CoreStats::ipc() const
{
    return cycles ? static_cast<double>(instructions) /
                        static_cast<double>(cycles)
                  : 0.0;
}

double
CoreStats::cpiComp() const
{
    if (!instructions)
        return 0.0;
    const std::uint64_t stall = memStallCycles + recoveryStallCycles;
    const std::uint64_t comp = cycles > stall ? cycles - stall : 0;
    return static_cast<double>(comp) / static_cast<double>(instructions);
}

double
CoreStats::missesPerInstruction() const
{
    return instructions ? static_cast<double>(l2Misses) /
                              static_cast<double>(instructions)
                        : 0.0;
}

double
CoreStats::missPenaltyCycles() const
{
    return l2Misses ? static_cast<double>(memStallCycles) /
                          static_cast<double>(l2Misses)
                    : 0.0;
}

double
CoreStats::alpha(SubsystemId id) const
{
    return cycles ? static_cast<double>(
                        accesses[static_cast<std::size_t>(id)]) /
                        static_cast<double>(cycles)
                  : 0.0;
}

double
CoreStats::rho(SubsystemId id) const
{
    return instructions ? static_cast<double>(
                              accesses[static_cast<std::size_t>(id)]) /
                              static_cast<double>(instructions)
                        : 0.0;
}

// Synthetic traces carry no inter-branch history correlation, so a
// long gshare history only adds aliasing noise; a short history keeps
// the per-PC bias information that is actually learnable.
Core::Core(const CoreConfig &cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed), bpred_(12, 4), l2_(cfg.l2),
      icache_(cfg.l1i, l2_, cfg.memLat),
      dcache_(cfg.l1d, l2_, cfg.memLat)
{
    EVAL_ASSERT(cfg.queueCapacityFraction > 0.0 &&
                    cfg.queueCapacityFraction <= 1.0,
                "queue capacity fraction in (0,1]");
}

void
Core::setErrorInjection(double perInstProbability, unsigned penaltyCycles)
{
    EVAL_ASSERT(perInstProbability >= 0.0 && perInstProbability <= 1.0,
                "error probability in [0,1]");
    errorProb_ = perInstProbability;
    errorPenalty_ = penaltyCycles;
}

void
Core::count(SubsystemId id, std::uint64_t n)
{
    stats_.accesses[static_cast<std::size_t>(id)] += n;
}

unsigned
Core::execLatency(const MicroOp &op, std::uint64_t now)
{
    switch (op.cls) {
      case OpClass::IntAlu:
      case OpClass::Branch:
        return 1;
      case OpClass::IntMul:
        return 4;
      case OpClass::FpAdd:
        return 3;
      case OpClass::FpMul:
        return 4;
      case OpClass::FpDiv:
        return 16;
      case OpClass::Store: {
        // Stores complete at address generation; the write-allocate
        // fill drains from the store buffer off the critical path, so
        // it costs no latency but does occupy the caches.
        count(SubsystemId::Dcache);
        count(SubsystemId::DTLB);
        const MemAccessResult res = dcache_.access(op.addr);
        if (res.level != MemLevel::L1)
            ++stats_.l1dMisses;
        if (res.level == MemLevel::Memory)
            ++stats_.l2Misses;
        return 1;
      }
      case OpClass::Load: {
        count(SubsystemId::Dcache);
        count(SubsystemId::DTLB);
        const MemAccessResult res = dcache_.access(op.addr);
        if (res.level != MemLevel::L1) {
            ++stats_.l1dMisses;
            // Optional next-line prefetch: fill the following line so
            // streaming accesses hit.  The fill happens off the
            // critical path (no latency charged here).
            if (cfg_.prefetchNextLine)
                dcache_.access(op.addr + cfg_.l1d.lineBytes);
        }
        if (res.level == MemLevel::Memory)
            ++stats_.l2Misses;
        return 1 + res.latency;
      }
      default:
        EVAL_PANIC("unknown op class ", static_cast<int>(op.cls), " at ",
                   now);
    }
}

void
Core::dispatch(TraceSource &trace, std::uint64_t now)
{
    if (now < fetchResumeCycle_ || fetchBlockedOnBranch_)
        return;

    bool accessedIcache = false;
    for (unsigned slot = 0; slot < cfg_.fetchWidth; ++slot) {
        if (rob_.size() >= cfg_.robSize)
            break;

        // Obtain the next op (replayed ops first).
        MicroOp op;
        if (!fetchQueue_.empty()) {
            op = fetchQueue_.front();
        } else {
            if (!trace.next(op))
                break;
            fetchQueue_.push_back(op);
        }

        // Structural checks before consuming the op.
        const bool fpSide = isFpOp(op.cls);
        if (fpSide) {
            if (fpQueueOcc_ >= cfg_.fpQueueCapacity())
                break;
        } else {
            if (intQueueOcc_ >= cfg_.intQueueCapacity())
                break;
        }
        if (isMemOp(op.cls) && lsqOcc_ >= cfg_.lsqSize)
            break;

        // I-cache: one access per active fetch cycle; a miss stalls
        // the front end for the fill latency.
        if (!accessedIcache) {
            accessedIcache = true;
            count(SubsystemId::Icache);
            count(SubsystemId::ITLB);
            const MemAccessResult res = icache_.access(op.pc);
            if (res.level != MemLevel::L1) {
                ++stats_.l1iMisses;
                if (res.level == MemLevel::Memory) {
                    ++stats_.l2Misses;
                    ++stats_.l2MissesIStream;
                }
                fetchResumeCycle_ = now + res.latency;
                break;
            }
        }

        fetchQueue_.pop_front();

        InFlight inf;
        inf.op = op;
        inf.seq = nextSeq_++;
        inf.isFpSide = fpSide;
        rob_.push_back(inf);
        // Seqs only grow, so appending keeps the candidates sorted.
        issueCand_.push_back(IssueCand{inf.seq, op.cls});

        count(SubsystemId::Decode);
        count(fpSide ? SubsystemId::FPMap : SubsystemId::IntMap);
        count(fpSide ? SubsystemId::FPQ : SubsystemId::IntQ);
        if (fpSide)
            ++fpQueueOcc_;
        else
            ++intQueueOcc_;
        if (isMemOp(op.cls)) {
            ++lsqOcc_;
            count(SubsystemId::LdStQ);
        }

        if (op.cls == OpClass::Branch) {
            count(SubsystemId::BranchPred);
            ++stats_.branches;
            const bool mispredicted = bpred_.predictAndUpdate(op.pc,
                                                              op.taken);
            if (mispredicted) {
                ++stats_.branchMispredicts;
                fetchBlockedOnBranch_ = true;
                pendingBranchSeq_ = inf.seq;
                break;
            }
        }
    }
}

void
Core::issue(std::uint64_t now)
{
    unsigned issued = 0;
    unsigned aluUsed = 0, mulUsed = 0, faddUsed = 0, fmulUsed = 0;

    // MSHR occupancy: drop completed fills (now is monotone within a
    // run, so a pruned entry can never count again), count the rest.
    missComplete_.erase(
        std::remove_if(missComplete_.begin(), missComplete_.end(),
                       [now](std::uint64_t c) { return c <= now; }),
        missComplete_.end());
    unsigned missesInFlight =
        static_cast<unsigned>(missComplete_.size());

    // Wake parked entries whose gate has opened: sleepers whose wake
    // cycle has arrived, and consumers whose producer issued last
    // cycle.  Merging the wakes back in seq order keeps the candidate
    // visit order identical to a full ROB scan.
    const auto byWake = [](const Sleeper &a, const Sleeper &b) {
        return a.wakeCycle > b.wakeCycle;
    };
    wakeScratch_.clear();
    while (!sleepers_.empty() && sleepers_.front().wakeCycle <= now) {
        std::pop_heap(sleepers_.begin(), sleepers_.end(), byWake);
        wakeScratch_.push_back(
            IssueCand{sleepers_.back().seq, sleepers_.back().cls});
        sleepers_.pop_back();
    }
    if (!pendingWake_.empty()) {
        wakeScratch_.insert(wakeScratch_.end(), pendingWake_.begin(),
                            pendingWake_.end());
        pendingWake_.clear();
    }
    if (!wakeScratch_.empty()) {
        // A cycle wakes a handful of entries at most: insertion sort
        // beats a general sort at this size, and a backward
        // two-pointer merge into the widened vector avoids
        // inplace_merge's temporary buffer.
        for (std::size_t i = 1; i < wakeScratch_.size(); ++i) {
            const IssueCand v = wakeScratch_[i];
            std::size_t j = i;
            while (j > 0 && wakeScratch_[j - 1].seq > v.seq) {
                wakeScratch_[j] = wakeScratch_[j - 1];
                --j;
            }
            wakeScratch_[j] = v;
        }
        const std::size_t oldN = issueCand_.size();
        issueCand_.resize(oldN + wakeScratch_.size());
        std::ptrdiff_t a = static_cast<std::ptrdiff_t>(oldN) - 1;
        std::ptrdiff_t b =
            static_cast<std::ptrdiff_t>(wakeScratch_.size()) - 1;
        std::ptrdiff_t w =
            static_cast<std::ptrdiff_t>(issueCand_.size()) - 1;
        while (b >= 0) {
            if (a >= 0 && issueCand_[a].seq > wakeScratch_[b].seq)
                issueCand_[w--] = issueCand_[a--];
            else
                issueCand_[w--] = wakeScratch_[b--];
        }
    }

    // Visit the candidates in seq (= ROB) order, compacting in place:
    // entries that issue or park drop out, the rest stay for the next
    // cycle.  A class-level structural gate runs first so an entry
    // whose functional-unit class is already exhausted this cycle is
    // kept without touching the ROB or rechecking dependencies — the
    // full scan would have reached the same `continue` after the dep
    // check, and the dep check writes nothing, so skipping it is
    // unobservable.
    std::size_t keepCand = 0;
    const std::size_t numCand = issueCand_.size();
    for (std::size_t r = 0; r < numCand; ++r) {
        const IssueCand c = issueCand_[r];
        if (issued >= cfg_.issueWidth) {
            // Width exhausted: nothing later can issue — bulk-keep
            // the remaining tail in one move.
            std::memmove(issueCand_.data() + keepCand,
                         issueCand_.data() + r,
                         (numCand - r) * sizeof(IssueCand));
            keepCand += numCand - r;
            break;
        }

        bool fuBlocked = false;
        switch (c.cls) {
          case OpClass::Load:
            // A load that may miss needs an MSHR; when all are busy
            // the load waits (memory-level-parallelism limit).
            fuBlocked = missesInFlight >= cfg_.mshrs ||
                        aluUsed >= cfg_.intAluCount;
            break;
          case OpClass::IntAlu:
          case OpClass::Branch:
          case OpClass::Store:
            fuBlocked = aluUsed >= cfg_.intAluCount;
            break;
          case OpClass::IntMul:
            fuBlocked = mulUsed >= cfg_.intMulCount;
            break;
          case OpClass::FpAdd:
            fuBlocked = faddUsed >= cfg_.fpAddCount;
            break;
          case OpClass::FpMul:
            fuBlocked = fmulUsed >= cfg_.fpMulCount;
            break;
          case OpClass::FpDiv:
            fuBlocked = fmulUsed >= cfg_.fpMulCount ||
                        fpDivBusyUntil_ > now;
            break;
          default:
            EVAL_PANIC("unknown op class in issue");
        }
        if (fuBlocked) {
            // Structural conflicts carry no wake event — stay a
            // candidate and retry next cycle.
            issueCand_[keepCand++] = c;
            continue;
        }

        InFlight &inf = rob_[c.seq - rob_.front().seq];

        // Operand readiness via backward dependency distances.
        bool ready = true;
        std::uint64_t readyCycle = 0;
        std::uint64_t blockCycle = 0;
        std::uint64_t blockProdSeq = kNoWaiter;
        auto checkDep = [&](std::uint16_t dist) {
            if (!ready || dist == 0)
                return;
            if (dist > inf.seq)
                return;   // producer predates the trace window
            const std::uint64_t prodSeq = inf.seq - dist;
            const std::uint64_t oldestSeq = rob_.front().seq;
            if (prodSeq < oldestSeq)
                return;   // producer already retired
            const InFlight &prod = rob_[prodSeq - oldestSeq];
            if (!prod.issued) {
                // No time bound exists until the producer issues —
                // park on that producer's waiter chain.
                ready = false;
                blockProdSeq = prodSeq;
                return;
            }
            if (prod.completeCycle > now) {
                ready = false;
                blockCycle = prod.completeCycle;
                return;
            }
            readyCycle = std::max(readyCycle, prod.completeCycle);
        };
        checkDep(inf.op.src1Dist);
        checkDep(inf.op.src2Dist);
        if (!ready) {
            // Park until the gate opens; the skipped rechecks could
            // only have hit this same branch again.
            if (blockProdSeq != kNoWaiter) {
                InFlight &prod =
                    rob_[blockProdSeq - rob_.front().seq];
                inf.nextWaiter = prod.firstWaiter;
                prod.firstWaiter = c.seq;
            } else {
                sleepers_.push_back(Sleeper{blockCycle, c.seq, c.cls});
                std::push_heap(sleepers_.begin(), sleepers_.end(), byWake);
            }
            continue;
        }

        // The structural gate above already reserved this entry a
        // unit; allocate it and issue.
        switch (inf.op.cls) {
          case OpClass::Load:
          case OpClass::IntAlu:
          case OpClass::Branch:
          case OpClass::Store:
            ++aluUsed;
            count(SubsystemId::IntALU);
            count(SubsystemId::IntReg);
            break;
          case OpClass::IntMul:
            ++mulUsed;
            count(SubsystemId::IntALU);
            count(SubsystemId::IntReg);
            break;
          case OpClass::FpAdd:
            ++faddUsed;
            count(SubsystemId::FPUnit);
            count(SubsystemId::FPReg);
            break;
          case OpClass::FpMul:
          case OpClass::FpDiv:
            ++fmulUsed;
            count(SubsystemId::FPUnit);
            count(SubsystemId::FPReg);
            break;
          default:
            EVAL_PANIC("unknown op class in issue");
        }

        inf.issued = true;
        // Wake the consumers parked on this entry; they re-enter the
        // candidate list next cycle, by which point this result is at
        // least a cycle from completing — exactly when the full scan
        // would first have seen them unblocked.
        for (std::uint64_t ws = inf.firstWaiter; ws != kNoWaiter;) {
            InFlight &waiter = rob_[ws - rob_.front().seq];
            pendingWake_.push_back(IssueCand{ws, waiter.op.cls});
            const std::uint64_t nxt = waiter.nextWaiter;
            waiter.nextWaiter = kNoWaiter;
            ws = nxt;
        }
        inf.firstWaiter = kNoWaiter;
        inf.completeCycle = now + execLatency(inf.op, now);
        if (inf.op.cls == OpClass::FpDiv)
            fpDivBusyUntil_ = inf.completeCycle;
        if (inf.op.cls == OpClass::Load &&
            inf.completeCycle - now > cfg_.memLat.l1 + 1) {
            inf.missInFlight = true;
            ++missesInFlight;
            missComplete_.push_back(inf.completeCycle);
        }
        ++issued;

        if (inf.isFpSide) {
            EVAL_ASSERT(fpQueueOcc_ > 0, "fp queue underflow");
            --fpQueueOcc_;
        } else {
            EVAL_ASSERT(intQueueOcc_ > 0, "int queue underflow");
            --intQueueOcc_;
        }

        // A mispredicted branch redirects the front end once it
        // resolves; FU replication adds one cycle to this loop.
        if (fetchBlockedOnBranch_ && inf.seq == pendingBranchSeq_) {
            const std::uint64_t redirect =
                inf.completeCycle + 1 + cfg_.frontendDepth +
                (cfg_.fuReplicated ? 1 : 0);
            fetchBlockedOnBranch_ = false;
            fetchResumeCycle_ = std::max(fetchResumeCycle_, redirect);
        }
    }
    issueCand_.resize(keepCand);
}

void
Core::squashAll(std::uint64_t resumeCycle)
{
    // Return the squashed ops to the front of the fetch queue in
    // program order; they will be re-fetched and re-executed.
    for (std::size_t i = rob_.size(); i-- > 0;)
        fetchQueue_.push_front(rob_[i].op);
    rob_.clear();
    missComplete_.clear();
    issueCand_.clear();
    sleepers_.clear();
    pendingWake_.clear();

    intQueueOcc_ = fpQueueOcc_ = lsqOcc_ = 0;
    fetchBlockedOnBranch_ = false;
    fetchResumeCycle_ = std::max(fetchResumeCycle_, resumeCycle);
}

unsigned
Core::retire(std::uint64_t now, unsigned maxRetire)
{
    unsigned retired = 0;
    const unsigned width = std::min(cfg_.retireWidth, maxRetire);
    while (retired < width && !rob_.empty()) {
        InFlight &head = rob_.front();
        if (!head.issued || head.completeCycle > now)
            break;

        if (isMemOp(head.op.cls)) {
            EVAL_ASSERT(lsqOcc_ > 0, "lsq underflow");
            --lsqOcc_;
        }

        ++stats_.instructions;
        ++retired;

        rob_.pop_front();

        // Diva checker: with probability errorProb_ the result was a
        // variation-induced timing error; the checker supplies the
        // correct value and the pipeline restarts after this
        // instruction (Sec 3.1).
        if (errorProb_ > 0.0 && rng_.bernoulli(errorProb_)) {
            ++stats_.errorRecoveries;
            stats_.recoveryStallCycles += errorPenalty_;
            squashAll(now + errorPenalty_);
            return retired;
        }
    }
    return retired;
}

CoreStats
Core::run(TraceSource &trace, std::uint64_t numInstructions)
{
    static TimerStat &timer =
        StatRegistry::global().timer("profile.arch.core_run");
    ScopedTimer scope(timer);
    stats_ = CoreStats{};
    rob_.clear();
    fetchQueue_.clear();
    missComplete_.clear();
    missComplete_.reserve(cfg_.mshrs);
    issueCand_.clear();
    issueCand_.reserve(cfg_.robSize);
    sleepers_.clear();
    sleepers_.reserve(cfg_.robSize);
    pendingWake_.clear();
    pendingWake_.reserve(cfg_.robSize);
    wakeScratch_.reserve(cfg_.robSize);
    nextSeq_ = 0;
    fetchResumeCycle_ = 0;
    fetchBlockedOnBranch_ = false;
    intQueueOcc_ = fpQueueOcc_ = lsqOcc_ = 0;
    fpDivBusyUntil_ = 0;

    std::uint64_t now = 0;
    std::uint64_t lastProgress = 0;
    std::uint64_t lastInstCount = 0;

    while (stats_.instructions < numInstructions) {
        const unsigned remaining = static_cast<unsigned>(std::min<
            std::uint64_t>(numInstructions - stats_.instructions,
                           cfg_.retireWidth));
        const unsigned retired = retire(now, remaining);

        // Account a memory-stall cycle when retirement is fully
        // blocked by a load still waiting on main memory.
        if (retired == 0 && !rob_.empty()) {
            const InFlight &head = rob_.front();
            if (head.issued && head.op.cls == OpClass::Load &&
                head.completeCycle > now &&
                head.completeCycle - now >= cfg_.memLat.l2) {
                ++stats_.memStallCycles;
            }
        }

        issue(now);
        dispatch(trace, now);
        ++now;

        if (stats_.instructions != lastInstCount) {
            lastInstCount = stats_.instructions;
            lastProgress = now;
        } else if (now - lastProgress > 200000) {
            EVAL_PANIC("core deadlock at cycle ", now, " after ",
                       stats_.instructions, " instructions");
        }
    }
    stats_.cycles = now;
    return stats_;
}

} // namespace eval
