#include "arch/checker.hh"

namespace eval {

const char *
checkerKindName(CheckerKind kind)
{
    switch (kind) {
      case CheckerKind::Diva:     return "Diva";
      case CheckerKind::Razor:    return "Razor";
      case CheckerKind::Paceline: return "Paceline";
    }
    return "?";
}

CheckerModel
CheckerModel::diva()
{
    return CheckerModel{CheckerKind::Diva, 14.0, 1.0, 7.0};
}

CheckerModel
CheckerModel::razor()
{
    // Local replay costs ~1 bubble per stage error; the shadow
    // latches and metastability detectors tax every pipeline stage's
    // power but little area.
    return CheckerModel{CheckerKind::Razor, 2.0, 1.6, 3.0};
}

CheckerModel
CheckerModel::paceline()
{
    // Re-synchronizing the follower costs hundreds of cycles, but the
    // checker is a whole second core (area charged elsewhere in a CMP).
    return CheckerModel{CheckerKind::Paceline, 250.0, 4.0, 0.5};
}

const std::vector<CheckerModel> &
CheckerModel::all()
{
    static const std::vector<CheckerModel> kAll = {diva(), razor(),
                                                   paceline()};
    return kAll;
}

} // namespace eval
