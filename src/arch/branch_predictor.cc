#include "arch/branch_predictor.hh"

#include "util/logging.hh"

namespace eval {

GsharePredictor::GsharePredictor(unsigned tableBits, unsigned historyBits)
    : historyBits_(historyBits),
      table_(std::size_t{1} << tableBits, 2)   // weakly taken
{
    EVAL_ASSERT(tableBits >= 4 && tableBits <= 24, "tableBits sane range");
    EVAL_ASSERT(historyBits <= tableBits, "history fits the table index");
}

std::size_t
GsharePredictor::index(std::uint64_t pc) const
{
    const std::uint64_t mask = table_.size() - 1;
    const std::uint64_t histMask = (1ULL << historyBits_) - 1;
    return static_cast<std::size_t>(((pc >> 2) ^ (history_ & histMask)) &
                                    mask);
}

bool
GsharePredictor::predict(std::uint64_t pc) const
{
    return table_[index(pc)] >= 2;
}

void
GsharePredictor::update(std::uint64_t pc, bool taken)
{
    std::uint8_t &ctr = table_[index(pc)];
    if (taken && ctr < 3)
        ++ctr;
    else if (!taken && ctr > 0)
        --ctr;
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

bool
GsharePredictor::predictAndUpdate(std::uint64_t pc, bool taken)
{
    const bool pred = predict(pc);
    ++predictions_;
    const bool wrong = pred != taken;
    if (wrong)
        ++mispredictions_;
    update(pc, taken);
    return wrong;
}

} // namespace eval
