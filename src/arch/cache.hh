/**
 * @file
 * Set-associative cache model with true LRU, and a two-level
 * hierarchy with the paper's latencies (L1: 2 cycles, L2: 8 cycles,
 * memory: 208 cycles round trip, Figure 7(a)).
 */

#pragma once

#include <cstdint>
#include <vector>

namespace eval {

/** Geometry of one cache level. */
struct CacheConfig
{
    std::size_t sizeBytes = 64 * 1024;
    std::size_t lineBytes = 64;
    std::size_t ways = 2;
};

/** One set-associative cache with LRU replacement. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /** Access a byte address; returns true on hit (allocates on miss). */
    bool access(std::uint64_t addr);

    /** Probe without allocating or touching LRU. */
    bool contains(std::uint64_t addr) const;

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    void resetStats() { hits_ = misses_ = 0; }

    const CacheConfig &config() const { return cfg_; }

  private:
    struct Line
    {
        std::uint64_t tag = ~0ULL;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    std::size_t setOf(std::uint64_t addr) const;
    std::uint64_t tagOf(std::uint64_t addr) const;

    CacheConfig cfg_;
    std::size_t numSets_;
    std::vector<Line> lines_;   ///< [set * ways + way]
    std::uint64_t clock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

/** Where an access was satisfied. */
enum class MemLevel { L1, L2, Memory };

/** Latency configuration for the hierarchy (cycles at nominal f). */
struct MemLatencies
{
    unsigned l1 = 2;
    unsigned l2 = 8;
    unsigned memory = 208;
};

/** Result of a hierarchy access. */
struct MemAccessResult
{
    MemLevel level;
    unsigned latency;
};

/**
 * One L1 in front of a (possibly shared) unified L2 and memory.  The
 * L2 is owned by the caller so the instruction and data sides of a
 * core can share it.
 */
class CacheHierarchy
{
  public:
    CacheHierarchy(const CacheConfig &l1, Cache &sharedL2,
                   const MemLatencies &lat);

    MemAccessResult access(std::uint64_t addr);

    const Cache &l1() const { return l1_; }
    const Cache &l2() const { return l2_; }
    std::uint64_t l2Misses() const { return l2MissCount_; }
    std::uint64_t accesses() const { return accessCount_; }
    const MemLatencies &latencies() const { return lat_; }

  private:
    Cache l1_;
    Cache &l2_;
    MemLatencies lat_;
    std::uint64_t l2MissCount_ = 0;
    std::uint64_t accessCount_ = 0;
};

} // namespace eval

