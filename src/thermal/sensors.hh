/**
 * @file
 * The controller-visible sensor suite (Sec 4.3.2): a heat-sink
 * temperature sensor, per-subsystem thermal sensors for overheating,
 * a core-wide power sensor, and the checker's PE counter.  Sensors add
 * bounded measurement noise so the controller never sees exact model
 * state.
 */

#pragma once

#include "util/random.hh"

namespace eval {

/** Gaussian-noise scalar sensor with saturation. */
class NoisySensor
{
  public:
    NoisySensor(double sigma, double lo, double hi)
        : sigma_(sigma), lo_(lo), hi_(hi)
    {
    }

    /** Read the sensor given the true value. */
    double read(double truth, Rng &rng) const;

  private:
    double sigma_;
    double lo_;
    double hi_;
};

/** Sensor package attached to one core. */
struct SensorSuite
{
    NoisySensor heatsink{0.25, -20.0, 150.0};   ///< TH, refreshed ~2-3s
    NoisySensor subsystemTemp{0.5, -20.0, 200.0};
    NoisySensor corePower{0.15, 0.0, 200.0};    ///< W
    /**
     * The PE counter is digital (exact error counts from the checker),
     * but the *rate* estimate carries sampling noise over short
     * windows; model it as relative noise on the rate.
     */
    double peRateRelativeNoise = 0.05;

    double readPeRate(double truth, Rng &rng) const;
};

} // namespace eval

