/**
 * @file
 * Steady-state thermal model (Eq 6) and the coupled electro-thermal
 * solver over Eqs 6-9:
 *
 *   T    = TH + Rth * (Pdyn + Psta)
 *   Psta = Ksta * Vdd * T^2 * exp(-q Vt / k T)
 *   Vt   = Vt0 + k1 (T - T0) + k2 (Vdd - Vdd0) + k3 Vbb
 *
 * These form a feedback system (leakage heats the block, heat raises
 * leakage); we solve each subsystem by damped fixed-point iteration,
 * which also detects thermal runaway.
 */

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "power/power_model.hh"
#include "variation/floorplan.hh"
#include "variation/process_params.hh"

namespace eval {

/** Solved thermal/electrical state of one subsystem. */
struct SubsystemThermalState
{
    double tempC = 0.0;     ///< junction temperature
    double pdyn = 0.0;      ///< W
    double psta = 0.0;      ///< W
    double vtEff = 0.0;     ///< effective Vt at tempC
    bool runaway = false;   ///< fixed point failed to converge

    double power() const { return pdyn + psta; }
};

/** One subsystem's solve inputs for ThermalModel::solveMany. */
struct SubsystemThermalRequest
{
    SubsystemPowerParams power;
    SubsystemId id = SubsystemId::Dcache;
    double vt0 = 0.0;       ///< threshold at reference conditions
    double vdd = 0.0;       ///< supply voltage (ASV setting)
    double vbb = 0.0;       ///< body bias (ABB setting)
    double freqHz = 0.0;    ///< clock frequency
    double alphaF = 0.0;    ///< activity in accesses/cycle
};

/** Heat-sink model: TH rises with total chip power. */
struct HeatsinkModel
{
    double ambientC = 40.0;
    double rthSinkKPerW = 0.25;   ///< chip-total thermal resistance

    double
    tempC(double chipPowerW) const
    {
        return ambientC + rthSinkKPerW * chipPowerW;
    }
};

/**
 * Per-subsystem thermal resistances and the Eq 6-9 solver.
 *
 * Rth follows a spreading-resistance law Rth = c / A^p with p < 0.5:
 * small, power-dense blocks (integer ALU, issue queues) sit above the
 * heat sink while large caches stay close to it, but sub-mm^2 blocks
 * benefit strongly from lateral spreading into their neighbours
 * (HotSpot behaviour), hence the sub-square-root exponent.
 */
class ThermalModel
{
  public:
    /**
     * @param params       process constants
     * @param coreAreaMm2  physical core area
     * @param spreadCoeff  c in Rth = c / A_mm2^p, K/W at 1 mm^2
     * @param spreadExponent p in the spreading law
     */
    ThermalModel(const ProcessParams &params, double coreAreaMm2 = 20.0,
                 double spreadCoeff = 2.5, double spreadExponent = 0.35);

    /** Thermal resistance of a subsystem, K/W. */
    double rth(SubsystemId id) const;

    /**
     * Solve the Eq 6-9 fixed point for one subsystem.
     *
     * @param power   subsystem Kdyn/Ksta
     * @param vt0     subsystem threshold at reference conditions
     * @param vdd     supply voltage (ASV setting)
     * @param vbb     body bias (ABB setting)
     * @param freqHz  clock frequency
     * @param alphaF  activity in accesses/cycle
     * @param thC     heat-sink temperature
     */
    SubsystemThermalState
    solveSubsystem(const SubsystemPowerParams &power, SubsystemId id,
                   double vt0, double vdd, double vbb, double freqHz,
                   double alphaF, double thC) const;

    /**
     * Solve @p n subsystems against one heat-sink temperature in a
     * single lockstep fixed-point iteration (kernels/thermal_batch.hh).
     * Each lane freezes independently at exactly the step the scalar
     * solver would have stopped at, so @p out[i] is bit-identical to
     * the corresponding solveSubsystem call.  Solves are memoized on
     * the exact input bits (EVAL_THERMAL_CACHE, default on; hits are
     * exact-bit so the golden record is unaffected).
     */
    void solveMany(const SubsystemThermalRequest *requests,
                   SubsystemThermalState *out, std::size_t n,
                   double thC) const;

    const ProcessParams &params() const { return params_; }
    double coreAreaMm2() const { return coreAreaMm2_; }

  private:
    ProcessParams params_;
    double coreAreaMm2_;
    std::array<double, kNumSubsystems> rth_;
    /** Memo salt: models with different process constants must not
     *  share thermal memo entries. */
    std::uint64_t salt_;
};

} // namespace eval

