#include "thermal/sensors.hh"

#include "util/math_utils.hh"

namespace eval {

double
NoisySensor::read(double truth, Rng &rng) const
{
    return clamp(truth + rng.gaussian(0.0, sigma_), lo_, hi_);
}

double
SensorSuite::readPeRate(double truth, Rng &rng) const
{
    if (truth <= 0.0)
        return 0.0;
    const double noisy =
        truth * (1.0 + rng.gaussian(0.0, peRateRelativeNoise));
    return noisy > 0.0 ? noisy : 0.0;
}

} // namespace eval
