#include "thermal/thermal_model.hh"

#include <cmath>

#include "stats/stat_registry.hh"
#include "trace/span_tracer.hh"
#include "util/logging.hh"
#include "util/math_utils.hh"

namespace eval {

ThermalModel::ThermalModel(const ProcessParams &params, double coreAreaMm2,
                           double spreadCoeff, double spreadExponent)
    : params_(params), coreAreaMm2_(coreAreaMm2)
{
    EVAL_ASSERT(coreAreaMm2 > 0.0 && spreadCoeff > 0.0,
                "thermal model needs positive area/coefficient");
    EVAL_ASSERT(spreadExponent > 0.0 && spreadExponent < 1.0,
                "spreading exponent in (0,1)");
    const Floorplan plan(1);
    for (std::size_t i = 0; i < kNumSubsystems; ++i) {
        const double areaMm2 =
            plan.coreSubsystems(0)[i].areaFraction * coreAreaMm2;
        rth_[i] = spreadCoeff / std::pow(areaMm2, spreadExponent);
    }
}

double
ThermalModel::rth(SubsystemId id) const
{
    return rth_[static_cast<std::size_t>(id)];
}

SubsystemThermalState
ThermalModel::solveSubsystem(const SubsystemPowerParams &power,
                             SubsystemId id, double vt0, double vdd,
                             double vbb, double freqHz, double alphaF,
                             double thC) const
{
    static Counter &solves =
        StatRegistry::global().counter("thermal.solves");
    static TimerStat &timer =
        StatRegistry::global().timer("profile.thermal.solve_subsystem");
    ScopedTimer scope(timer);
    // Sampled 1-in-64: called per subsystem per candidate operating
    // point, far too hot for an every-call span (DESIGN.md Sec 5e).
    static thread_local std::uint64_t spanTick = 0;
    ScopedSpan span("thermal.solve", (spanTick++ & 63) == 0);
    solves.inc();

    const double r = rth(id);
    const double pdyn = dynamicPower(power.kdyn, alphaF, vdd, freqHz);

    // T = TH + Rth * (Pdyn + Psta(T)); solve for T.  The update is
    // clamped so a thermally divergent setting saturates at the upper
    // bound (reported as runaway) instead of overflowing.
    auto update = [&](double tC) {
        const double tSafe = clamp(tC, -50.0, 400.0);
        const OperatingConditions op{vdd, vbb, tSafe};
        const double vtEff = effectiveVt(params_, vt0, op);
        const double psta = staticPower(power.ksta, vdd, tSafe, vtEff);
        return clamp(thC + r * (pdyn + psta), -50.0, 400.0);
    };

    // The leakage feedback is a mild contraction (Rth * dPsta/dT well
    // below 1 at sane settings), so undamped iteration converges in a
    // handful of steps; divergent (runaway) settings hit the clamp and
    // the iteration budget.
    bool converged = false;
    const double tSolved = clamp(
        fixedPoint(update, thC + r * pdyn, 1.0, 1e-3, 120, &converged),
        -50.0, 400.0);

    SubsystemThermalState st;
    st.tempC = tSolved;
    st.pdyn = pdyn;
    const OperatingConditions op{vdd, vbb, tSolved};
    st.vtEff = effectiveVt(params_, vt0, op);
    st.psta = staticPower(power.ksta, vdd, tSolved, st.vtEff);
    st.runaway = !converged || tSolved >= 399.0;
    span.arg("temp_c", st.tempC);
    span.arg("runaway", st.runaway);
    if (st.runaway)
        StatRegistry::global().counter("thermal.runaways").inc();
    return st;
}

} // namespace eval
