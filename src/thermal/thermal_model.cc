#include "thermal/thermal_model.hh"

#include <cmath>

#include "kernels/thermal_batch.hh"
#include "stats/stat_registry.hh"
#include "trace/span_tracer.hh"
#include "util/logging.hh"
#include "util/math_utils.hh"

namespace eval {

ThermalModel::ThermalModel(const ProcessParams &params, double coreAreaMm2,
                           double spreadCoeff, double spreadExponent)
    : params_(params), coreAreaMm2_(coreAreaMm2), salt_(nextThermalSalt())
{
    EVAL_ASSERT(coreAreaMm2 > 0.0 && spreadCoeff > 0.0,
                "thermal model needs positive area/coefficient");
    EVAL_ASSERT(spreadExponent > 0.0 && spreadExponent < 1.0,
                "spreading exponent in (0,1)");
    const Floorplan plan(1);
    for (std::size_t i = 0; i < kNumSubsystems; ++i) {
        const double areaMm2 =
            plan.coreSubsystems(0)[i].areaFraction * coreAreaMm2;
        rth_[i] = spreadCoeff / std::pow(areaMm2, spreadExponent);
    }
}

double
ThermalModel::rth(SubsystemId id) const
{
    return rth_[static_cast<std::size_t>(id)];
}

void
ThermalModel::solveMany(const SubsystemThermalRequest *requests,
                        SubsystemThermalState *out, std::size_t n,
                        double thC) const
{
    static Counter &solves =
        StatRegistry::global().counter("thermal.solves");
    static Counter &cacheHits =
        StatRegistry::global().counter("thermal.cache_hits");
    static Counter &runaways =
        StatRegistry::global().counter("thermal.runaways");
    static TimerStat &timer =
        StatRegistry::global().timer("profile.thermal.solve_subsystem");
    ScopedTimer scope(timer);
    // Sampled 1-in-64: called per candidate operating point, far too
    // hot for an every-call span (DESIGN.md Sec 5e).
    static thread_local std::uint64_t spanTick = 0;
    ScopedSpan span("thermal.solve", (spanTick++ & 63) == 0);
    span.arg("lanes", static_cast<double>(n));

    // The batch kernel solves at most 64 lanes per call; a core has 15
    // subsystems, so one chunk covers every current caller.
    constexpr std::size_t kChunk = 64;
    ThermalLane lanes[kChunk];
    for (std::size_t base = 0; base < n; base += kChunk) {
        const std::size_t m = n - base < kChunk ? n - base : kChunk;
        for (std::size_t i = 0; i < m; ++i) {
            const SubsystemThermalRequest &req = requests[base + i];
            ThermalLane &lane = lanes[i];
            lane.rth = rth(req.id);
            lane.pdyn = dynamicPower(req.power.kdyn, req.alphaF, req.vdd,
                                     req.freqHz);
            lane.ksta = req.power.ksta;
            lane.vt0 = req.vt0;
            lane.vdd = req.vdd;
            lane.vbb = req.vbb;
        }
        solveThermalLanes(params_, salt_, lanes, m, thC);
        for (std::size_t i = 0; i < m; ++i) {
            const ThermalLane &lane = lanes[i];
            SubsystemThermalState &st = out[base + i];
            st.tempC = lane.tempC;
            st.pdyn = lane.pdyn;
            st.psta = lane.psta;
            st.vtEff = lane.vtEff;
            st.runaway = lane.runaway;
            solves.inc();
            if (lane.cacheHit)
                cacheHits.inc();
            // Counted per query (memo hits included): the counter
            // tracks how often callers probe runaway settings, not how
            // often the iteration diverges afresh.
            if (lane.runaway)
                runaways.inc();
        }
    }
}

SubsystemThermalState
ThermalModel::solveSubsystem(const SubsystemPowerParams &power,
                             SubsystemId id, double vt0, double vdd,
                             double vbb, double freqHz, double alphaF,
                             double thC) const
{
    SubsystemThermalRequest req;
    req.power = power;
    req.id = id;
    req.vt0 = vt0;
    req.vdd = vdd;
    req.vbb = vbb;
    req.freqHz = freqHz;
    req.alphaF = alphaF;
    SubsystemThermalState st;
    solveMany(&req, &st, 1, thC);
    return st;
}

} // namespace eval
