/**
 * @file
 * Minimal command-line argument parser for the CLI tool and examples:
 * `--key value`, `--key=value`, and boolean `--flag` options, plus
 * positional arguments.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace eval {

/** Parsed command line. */
class ArgParser
{
  public:
    /** Parse argv[1..); fatal on malformed options. */
    ArgParser(int argc, const char *const *argv);

    /** Positional arguments in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    bool has(const std::string &key) const;

    std::string getString(const std::string &key,
                          const std::string &fallback) const;
    std::int64_t getInt(const std::string &key,
                        std::int64_t fallback) const;
    double getDouble(const std::string &key, double fallback) const;
    bool getBool(const std::string &key, bool fallback = false) const;

    /** Keys that were provided but never queried (typo detection). */
    std::vector<std::string> unusedKeys() const;

  private:
    std::map<std::string, std::string> options_;
    mutable std::map<std::string, bool> queried_;
    std::vector<std::string> positional_;
};

} // namespace eval

