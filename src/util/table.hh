/**
 * @file
 * ASCII table formatting for the benchmark harness.  Every bench binary
 * prints its figure/table as a TablePrinter so the output is uniform
 * and machine-parseable (a CSV dump is also available).
 */

#pragma once

#include <initializer_list>
#include <string>
#include <vector>

namespace eval {

/** Column-aligned ASCII table with a title and header row. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::string title);

    /** Set the header row. */
    void header(std::vector<std::string> names);

    /** Append a row of preformatted cells. */
    void row(std::vector<std::string> cells);

    /** Convenience: format doubles with the given precision. */
    void rowValues(const std::string &label,
                   const std::vector<double> &values, int precision = 3);

    /** Render the table to a string. */
    std::string str() const;

    /** Render as CSV (no alignment, comma separated, title as comment). */
    std::string csv() const;

    /** Print to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision. */
std::string formatDouble(double v, int precision = 3);

/** Format a value as a percentage string, e.g. 0.14 -> "14.0%". */
std::string formatPercent(double fraction, int precision = 1);

} // namespace eval

