#include "util/table.hh"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>

namespace eval {

std::string
formatDouble(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
formatPercent(double fraction, int precision)
{
    return formatDouble(fraction * 100.0, precision) + "%";
}

TablePrinter::TablePrinter(std::string title)
    : title_(std::move(title))
{
}

void
TablePrinter::header(std::vector<std::string> names)
{
    header_ = std::move(names);
}

void
TablePrinter::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TablePrinter::rowValues(const std::string &label,
                        const std::vector<double> &values, int precision)
{
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(label);
    for (double v : values)
        cells.push_back(formatDouble(v, precision));
    row(std::move(cells));
}

std::string
TablePrinter::str() const
{
    // Compute column widths.
    std::vector<std::size_t> widths;
    auto grow = [&widths](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    auto renderRow = [&widths](std::ostringstream &os,
                               const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell = i < cells.size() ? cells[i] : "";
            os << (i == 0 ? "| " : " | ") << std::left
               << std::setw(static_cast<int>(widths[i])) << cell;
        }
        os << " |\n";
    };

    std::size_t total = 1;
    for (std::size_t w : widths)
        total += w + 3;

    std::ostringstream os;
    os << "== " << title_ << " ==\n";
    const std::string rule(total, '-');
    if (!header_.empty()) {
        os << rule << "\n";
        renderRow(os, header_);
    }
    os << rule << "\n";
    for (const auto &r : rows_)
        renderRow(os, r);
    os << rule << "\n";
    return os.str();
}

std::string
TablePrinter::csv() const
{
    std::ostringstream os;
    os << "# " << title_ << "\n";
    auto emit = [&os](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i)
            os << (i ? "," : "") << cells[i];
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &r : rows_)
        emit(r);
    return os.str();
}

void
TablePrinter::print() const
{
    // eval-lint: allow(hyg-iostream) TablePrinter is the sanctioned
    // console sink: every bench/CLI figure goes through it, so this is
    // the one place library code may write to stdout directly.
    std::fputs(str().c_str(), stdout);
}

} // namespace eval
