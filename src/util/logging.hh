/**
 * @file
 * Status-message and error-reporting helpers, in the spirit of gem5's
 * base/logging facilities.
 *
 * panic() is for internal invariant violations (simulator bugs); it
 * aborts.  fatal() is for user errors (bad configuration, impossible
 * parameters); it exits with an error code.  warn() and inform() print
 * status without stopping the run.
 *
 * Output filtering (thread-safe):
 *  - EVAL_LOG_LEVEL=info|warn|fatal|quiet sets the minimum severity
 *    printed ("quiet" silences everything below fatal, like
 *    setQuiet(true)); setMinLogLevel() overrides it programmatically.
 *  - EVAL_LOG_TIMESTAMPS=1 prefixes each line with "+S.mmms": seconds
 *    on the monotonic trace clock since process start (traceNowNs()),
 *    so log lines line up with span-trace timestamps and never jump
 *    on wall-clock adjustments.
 *  - EVAL_LOG_THREADS=1 prefixes each line with "[tN span.name]": the
 *    stable trace thread id plus the innermost open span on the
 *    calling thread, tying interleaved parallel log output back to
 *    the timeline.
 */

#pragma once

#include <cstdlib>
#include <sstream>
#include <string>

namespace eval {

/** Severity of a log message. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

namespace detail {

/** Print a formatted log line and, for Fatal/Panic, terminate. */
[[noreturn]] void terminateWithMessage(LogLevel level,
                                       const std::string &msg,
                                       const char *file, int line);

void printMessage(LogLevel level, const std::string &msg);

/** Fold a parameter pack into one string. */
template <typename... Args>
std::string
concatenate(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Abort with a message: only for internal invariant violations. */
template <typename... Args>
[[noreturn]] void
panic(const char *file, int line, Args &&...args)
{
    detail::terminateWithMessage(LogLevel::Panic,
                                 detail::concatenate(args...), file, line);
}

/** Exit with a message: for user/configuration errors. */
template <typename... Args>
[[noreturn]] void
fatal(const char *file, int line, Args &&...args)
{
    detail::terminateWithMessage(LogLevel::Fatal,
                                 detail::concatenate(args...), file, line);
}

/** Print a warning and continue. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::printMessage(LogLevel::Warn, detail::concatenate(args...));
}

/** Print an informational message and continue. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::printMessage(LogLevel::Inform, detail::concatenate(args...));
}

/** Globally silence inform()/warn() output (used by benches). */
void setQuiet(bool quiet);
bool isQuiet();

/** Minimum severity that is printed (default from EVAL_LOG_LEVEL). */
void setMinLogLevel(LogLevel level);
LogLevel minLogLevel();

/** Prefix log lines with monotonic run timestamps
 *  (EVAL_LOG_TIMESTAMPS). */
void setLogTimestamps(bool enabled);
bool logTimestamps();

/** Prefix log lines with thread id + span context (EVAL_LOG_THREADS). */
void setLogThreads(bool enabled);
bool logThreads();

} // namespace eval

#define EVAL_PANIC(...) ::eval::panic(__FILE__, __LINE__, __VA_ARGS__)
#define EVAL_FATAL(...) ::eval::fatal(__FILE__, __LINE__, __VA_ARGS__)

/** Assert an internal invariant; active in all build types. */
#define EVAL_ASSERT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::eval::panic(__FILE__, __LINE__, "assertion '" #cond           \
                          "' failed: ", ##__VA_ARGS__);                     \
        }                                                                   \
    } while (0)

