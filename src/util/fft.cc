#include "util/fft.hh"

#include <cmath>

#include "exec/thread_pool.hh"
#include "util/logging.hh"

namespace eval {

bool
isPowerOfTwo(std::size_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

void
fft(std::vector<Complex> &data, bool inverse)
{
    const std::size_t n = data.size();
    EVAL_ASSERT(isPowerOfTwo(n), "fft length must be a power of two");

    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(data[i], data[j]);
    }

    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double ang =
            (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
        const Complex wlen(std::cos(ang), std::sin(ang));
        for (std::size_t i = 0; i < n; i += len) {
            Complex w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                const Complex u = data[i + k];
                const Complex v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }
}

void
fft2d(std::vector<Complex> &data, std::size_t rows, std::size_t cols,
      bool inverse)
{
    EVAL_ASSERT(data.size() == rows * cols, "fft2d size mismatch");
    EVAL_ASSERT(isPowerOfTwo(rows) && isPowerOfTwo(cols),
                "fft2d dims must be powers of two");

    // Rows (and then columns) are independent 1-D transforms over
    // disjoint data, so the fan-out is race-free and bit-identical to
    // the serial loop for any thread count.  A few rows per chunk
    // amortizes scheduling; nested calls (e.g. from a parallel
    // per-chip loop) run inline via the pool's nesting fallback.
    ThreadPool &pool = globalPool();

    // Transform rows (contiguous, in place).
    pool.parallelFor(0, rows, 4, [&data, cols, inverse](std::size_t r) {
        std::vector<Complex> scratch(
            data.begin() + static_cast<std::ptrdiff_t>(r * cols),
            data.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols));
        fft(scratch, inverse);
        std::copy(scratch.begin(), scratch.end(),
                  data.begin() + static_cast<std::ptrdiff_t>(r * cols));
    });

    // Transform columns (strided gather/scatter).
    pool.parallelFor(0, cols, 4,
                     [&data, rows, cols, inverse](std::size_t c) {
        std::vector<Complex> scratch(rows);
        for (std::size_t r = 0; r < rows; ++r)
            scratch[r] = data[r * cols + c];
        fft(scratch, inverse);
        for (std::size_t r = 0; r < rows; ++r)
            data[r * cols + c] = scratch[r];
    });
}

} // namespace eval
