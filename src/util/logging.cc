#include "util/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <ctime>

#include <sys/time.h>

namespace eval {

namespace {

std::atomic<bool> quietFlag{false};
std::atomic<bool> timestampsFlag{[] {
    const char *v = std::getenv("EVAL_LOG_TIMESTAMPS");
    return v && (std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
                 std::strcmp(v, "yes") == 0);
}()};

LogLevel
levelFromEnv()
{
    const char *v = std::getenv("EVAL_LOG_LEVEL");
    if (!v)
        return LogLevel::Inform;
    if (std::strcmp(v, "info") == 0 || std::strcmp(v, "inform") == 0)
        return LogLevel::Inform;
    if (std::strcmp(v, "warn") == 0 || std::strcmp(v, "warning") == 0)
        return LogLevel::Warn;
    if (std::strcmp(v, "fatal") == 0 || std::strcmp(v, "quiet") == 0 ||
        std::strcmp(v, "none") == 0) {
        return LogLevel::Fatal;
    }
    std::fprintf(stderr,
                 "[warn] unknown EVAL_LOG_LEVEL '%s' "
                 "(info|warn|fatal|quiet); using info\n",
                 v);
    return LogLevel::Inform;
}

std::atomic<int> minLevel{static_cast<int>(levelFromEnv())};

} // namespace

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
isQuiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

void
setMinLogLevel(LogLevel level)
{
    minLevel.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel
minLogLevel()
{
    return static_cast<LogLevel>(
        minLevel.load(std::memory_order_relaxed));
}

void
setLogTimestamps(bool enabled)
{
    timestampsFlag.store(enabled, std::memory_order_relaxed);
}

bool
logTimestamps()
{
    return timestampsFlag.load(std::memory_order_relaxed);
}

namespace detail {

namespace {

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

/** "HH:MM:SS.mmm " prefix, or an empty string when disabled. */
std::string
timestampPrefix()
{
    if (!logTimestamps())
        return "";
    struct timeval tv;
    gettimeofday(&tv, nullptr);
    struct tm tmBuf;
    localtime_r(&tv.tv_sec, &tmBuf);
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d.%03d ", tmBuf.tm_hour,
                  tmBuf.tm_min, tmBuf.tm_sec,
                  static_cast<int>(tv.tv_usec / 1000));
    return buf;
}

bool
suppressed(LogLevel level)
{
    if (level == LogLevel::Fatal || level == LogLevel::Panic)
        return false;
    if (isQuiet())
        return true;
    return static_cast<int>(level) <
           static_cast<int>(minLogLevel());
}

} // namespace

void
printMessage(LogLevel level, const std::string &msg)
{
    if (suppressed(level))
        return;
    std::fprintf(stderr, "%s[%s] %s\n", timestampPrefix().c_str(),
                 levelTag(level), msg.c_str());
}

void
terminateWithMessage(LogLevel level, const std::string &msg,
                     const char *file, int line)
{
    std::fprintf(stderr, "%s[%s] %s (%s:%d)\n",
                 timestampPrefix().c_str(), levelTag(level), msg.c_str(),
                 file, line);
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

} // namespace detail

} // namespace eval
