#include "util/logging.hh"

#include <cstdio>

namespace eval {

namespace {
bool quietFlag = false;
} // namespace

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
isQuiet()
{
    return quietFlag;
}

namespace detail {

namespace {

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

} // namespace

void
printMessage(LogLevel level, const std::string &msg)
{
    if (quietFlag && (level == LogLevel::Inform || level == LogLevel::Warn))
        return;
    std::fprintf(stderr, "[%s] %s\n", levelTag(level), msg.c_str());
}

void
terminateWithMessage(LogLevel level, const std::string &msg,
                     const char *file, int line)
{
    std::fprintf(stderr, "[%s] %s (%s:%d)\n", levelTag(level), msg.c_str(),
                 file, line);
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

} // namespace detail

} // namespace eval
