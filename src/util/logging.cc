#include "util/logging.hh"

// eval-lint: counters-only quiet/level/timestamp/thread flags are independent
// logging config reads with no payload to order against.

#include <atomic>
#include <cstdio>
#include <cstring>

#include "trace/span_tracer.hh"

namespace eval {

namespace {

bool
envTruthy(const char *name)
{
    const char *v = std::getenv(name);
    return v && (std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
                 std::strcmp(v, "yes") == 0);
}

std::atomic<bool> quietFlag{false};
std::atomic<bool> timestampsFlag{envTruthy("EVAL_LOG_TIMESTAMPS")};
std::atomic<bool> threadsFlag{envTruthy("EVAL_LOG_THREADS")};

LogLevel
levelFromEnv()
{
    const char *v = std::getenv("EVAL_LOG_LEVEL");
    if (!v)
        return LogLevel::Inform;
    if (std::strcmp(v, "info") == 0 || std::strcmp(v, "inform") == 0)
        return LogLevel::Inform;
    if (std::strcmp(v, "warn") == 0 || std::strcmp(v, "warning") == 0)
        return LogLevel::Warn;
    if (std::strcmp(v, "fatal") == 0 || std::strcmp(v, "quiet") == 0 ||
        std::strcmp(v, "none") == 0) {
        return LogLevel::Fatal;
    }
    std::fprintf(stderr,
                 "[warn] unknown EVAL_LOG_LEVEL '%s' "
                 "(info|warn|fatal|quiet); using info\n",
                 v);
    return LogLevel::Inform;
}

std::atomic<int> minLevel{static_cast<int>(levelFromEnv())};

} // namespace

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
isQuiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

void
setMinLogLevel(LogLevel level)
{
    minLevel.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel
minLogLevel()
{
    return static_cast<LogLevel>(
        minLevel.load(std::memory_order_relaxed));
}

void
setLogTimestamps(bool enabled)
{
    timestampsFlag.store(enabled, std::memory_order_relaxed);
}

bool
logTimestamps()
{
    return timestampsFlag.load(std::memory_order_relaxed);
}

void
setLogThreads(bool enabled)
{
    threadsFlag.store(enabled, std::memory_order_relaxed);
}

bool
logThreads()
{
    return threadsFlag.load(std::memory_order_relaxed);
}

namespace detail {

namespace {

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

/** "+S.mmms " prefix on the monotonic trace clock, or an empty
 *  string when disabled.  Monotonic (not wall-clock) so prefixes
 *  match span-trace timestamps and survive clock adjustments. */
std::string
timestampPrefix()
{
    if (!logTimestamps())
        return "";
    const std::uint64_t ns = traceNowNs();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "+%llu.%03llus ",
                  static_cast<unsigned long long>(ns / 1000000000ULL),
                  static_cast<unsigned long long>(ns / 1000000ULL %
                                                  1000ULL));
    return buf;
}

/** "[tN span.name] " prefix, or an empty string when disabled. */
std::string
threadPrefix()
{
    if (!logThreads())
        return "";
    std::string out = "[t" + std::to_string(traceThreadId());
    const char *span = SpanTracer::currentSpanName();
    if (span && span[0] != '\0') {
        out += ' ';
        out += span;
    }
    out += "] ";
    return out;
}

bool
suppressed(LogLevel level)
{
    if (level == LogLevel::Fatal || level == LogLevel::Panic)
        return false;
    if (isQuiet())
        return true;
    return static_cast<int>(level) <
           static_cast<int>(minLogLevel());
}

} // namespace

void
printMessage(LogLevel level, const std::string &msg)
{
    if (suppressed(level))
        return;
    std::fprintf(stderr, "%s%s[%s] %s\n", timestampPrefix().c_str(),
                 threadPrefix().c_str(), levelTag(level), msg.c_str());
}

void
terminateWithMessage(LogLevel level, const std::string &msg,
                     const char *file, int line)
{
    std::fprintf(stderr, "%s%s[%s] %s (%s:%d)\n",
                 timestampPrefix().c_str(), threadPrefix().c_str(),
                 levelTag(level), msg.c_str(), file, line);
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

} // namespace detail

} // namespace eval
