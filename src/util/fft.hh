/**
 * @file
 * Minimal in-place radix-2 FFT (1-D and 2-D) used by the circulant-
 * embedding generator of spatially-correlated variation fields.
 *
 * Only power-of-two sizes are supported; the variation grid is chosen
 * accordingly.
 */

#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace eval {

using Complex = std::complex<double>;

/** True when n is a power of two (and nonzero). */
bool isPowerOfTwo(std::size_t n);

/**
 * In-place iterative Cooley-Tukey FFT.
 *
 * @param data    sequence of complex samples; length must be a power of two
 * @param inverse when true computes the (unnormalized) inverse transform
 */
void fft(std::vector<Complex> &data, bool inverse);

/**
 * In-place 2-D FFT over a row-major rows x cols array.
 * Both dimensions must be powers of two.  The inverse transform is
 * unnormalized; callers divide by rows*cols.
 */
void fft2d(std::vector<Complex> &data, std::size_t rows, std::size_t cols,
           bool inverse);

} // namespace eval

