/**
 * @file
 * Streaming statistics accumulators and histograms used by the
 * simulator, the benchmark harness, and the tests.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace eval {

/**
 * Welford-style streaming accumulator for mean/variance/min/max.
 * Numerically stable for long runs.
 */
class RunningStats
{
  public:
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

    std::size_t count() const { return count_; }
    double mean() const;
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;
    double sum() const { return mean() * static_cast<double>(count_); }

    void reset();

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-bin histogram over [lo, hi); out-of-range samples clamp to
 * the edge bins and NaN samples are dropped, so every summary query
 * (quantile, render) is defined and NaN-free even before the first
 * sample.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x, double weight = 1.0);

    /**
     * Fold another histogram (identical lo/hi/bin layout) into this
     * one, bin by bin.  Because each bin is a plain sum, merging the
     * per-shard histograms in shard order reproduces the serial
     * accumulation exactly whenever the weights are integers below
     * 2^53 (every integer-weighted sum is exact in a double, so the
     * grouping cannot change the value).  The shard campaign only
     * ever adds weight-1 samples, so its merged histograms — and
     * every quantile() read off them — are bit-identical to the
     * monolithic run's.  Fatal on a bin-layout mismatch.
     */
    void merge(const Histogram &other);

    std::size_t bins() const { return counts_.size(); }
    double lo() const { return lo_; }
    double hi() const { return hi_; }
    double binLow(std::size_t i) const;
    double binCenter(std::size_t i) const;
    double binWidth() const { return width_; }
    double count(std::size_t i) const { return counts_[i]; }
    double totalWeight() const { return total_; }

    /** Weighted quantile (q in [0, 1]) using linear in-bin blending;
     *  lo() when the histogram holds no weight. */
    double quantile(double q) const;

    /** Render as a one-line-per-bin ASCII bar chart. */
    std::string render(std::size_t barWidth = 50) const;

  private:
    double lo_;
    double hi_;
    double width_;
    double total_ = 0.0;
    std::vector<double> counts_;
};

/** Exact sample-set percentile helper (stores all samples). */
class SampleSet
{
  public:
    void add(double x) { samples_.push_back(x); }

    /**
     * Append @p other's samples after this set's, preserving both
     * insertion orders.  Merging per-shard sets in shard order yields
     * the exact sample vector of the serial run (percentile() sorts a
     * copy, so every summary is bit-identical too).
     */
    void merge(const SampleSet &other)
    {
        samples_.insert(samples_.end(), other.samples_.begin(),
                        other.samples_.end());
    }

    std::size_t size() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }
    /** Linear-interpolated percentile; 0.0 on an empty set. */
    double percentile(double p) const;
    double mean() const;
    const std::vector<double> &samples() const { return samples_; }

  private:
    std::vector<double> samples_;
};

} // namespace eval

